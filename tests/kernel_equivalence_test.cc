// Differential tests proving the PR-3 fast kernels compute the same answers
// as the retained reference implementations:
//   - prefix-sum Dnorm (DnormContext) vs the naive window re-accumulation,
//   - batched range search vs one RangeSearch per probe,
//   - threshold-aware window profile vs the unbounded one,
//   - the dispatched SIMD kernels (src/util/simd.h) vs their retained
//     scalar references, across odd dimensionalities, odd lengths, and
//     tail remainders that do not fill a vector lane.
// The fast paths are only allowed to differ where the contract says so
// (~1 ulp reassociation in partially-counted Dnorm windows; +inf for
// provably-disqualified bounded-profile windows; bounded reassociation in
// the blocked SIMD point-sum).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/mbr_distance.h"
#include "core/partitioning.h"
#include "gen/fractal.h"
#include "index/linear_index.h"
#include "index/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_rtree.h"
#include "util/random.h"
#include "util/simd.h"

namespace mdseq {
namespace {

// ---------------------------------------------------------------------------
// Dnorm: prefix-sum context vs naive reference.
// ---------------------------------------------------------------------------

void ExpectSameWindows(const std::vector<NormalizedDistanceResult>& fast,
                       const std::vector<NormalizedDistanceResult>& ref) {
  ASSERT_EQ(fast.size(), ref.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].point_begin, ref[i].point_begin) << "window " << i;
    EXPECT_EQ(fast[i].point_end, ref[i].point_end) << "window " << i;
    EXPECT_NEAR(fast[i].distance, ref[i].distance, 1e-12) << "window " << i;
  }
}

void CheckDnormAgreement(const Partition& target, const Mbr& probe,
                         size_t probe_count, double epsilon) {
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  const DnormContext context = MakeDnormContext(target, dmbr);
  for (size_t j = 0; j < target.size(); ++j) {
    const NormalizedDistanceResult ref =
        ReferenceNormalizedDistance(probe_count, target, j, dmbr);
    const NormalizedDistanceResult fast =
        NormalizedDistance(probe_count, context, j);
    EXPECT_NEAR(fast.distance, ref.distance, 1e-12) << "j=" << j;
    EXPECT_EQ(fast.point_begin, ref.point_begin) << "j=" << j;
    EXPECT_EQ(fast.point_end, ref.point_end) << "j=" << j;

    std::vector<NormalizedDistanceResult> fast_windows;
    std::vector<NormalizedDistanceResult> ref_windows;
    const double fast_min = QualifyingDnormWindows(probe_count, context, j,
                                                   epsilon, &fast_windows);
    const double ref_min = ReferenceQualifyingDnormWindows(
        probe_count, target, j, dmbr, epsilon, &ref_windows);
    EXPECT_NEAR(fast_min, ref_min, 1e-12) << "j=" << j;
    ExpectSameWindows(fast_windows, ref_windows);
  }
}

TEST(DnormEquivalenceTest, RandomPartitionsAgreeWithReference) {
  Rng rng(401);
  for (int trial = 0; trial < 30; ++trial) {
    const Sequence data =
        GenerateFractalSequence(40 + 8 * trial, FractalOptions(), &rng);
    PartitioningOptions part;
    part.max_points = static_cast<size_t>(rng.UniformInt(3, 20));
    const Partition target = PartitionSequence(data.View(), part);
    const Sequence probe_seq =
        GenerateFractalSequence(20, FractalOptions(), &rng);
    const Mbr probe = probe_seq.BoundingBox();
    const size_t probe_count = static_cast<size_t>(rng.UniformInt(1, 60));
    const double epsilon = rng.Uniform() * 0.6;
    CheckDnormAgreement(target, probe, probe_count, epsilon);
  }
}

TEST(DnormEquivalenceTest, SingleMbrTarget) {
  Rng rng(402);
  const Sequence data = GenerateFractalSequence(9, FractalOptions(), &rng);
  Partition target;  // whole sequence in one MBR
  target.push_back(SequenceMbr{data.BoundingBox(), 0, data.size()});
  const Mbr probe(Point{0.1, 0.1}, Point{0.2, 0.2});
  // Case 1 (count >= probe_count) and Case 3 (whole sequence shorter).
  CheckDnormAgreement(target, probe, 4, 0.3);
  CheckDnormAgreement(target, probe, 50, 0.3);
}

TEST(DnormEquivalenceTest, ProbeCountExceedsTotalPointsIsBitIdentical) {
  // Case 3 accumulates left to right in both paths, so it must match the
  // reference exactly, not just within reassociation error.
  Rng rng(403);
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence data = GenerateFractalSequence(30, FractalOptions(), &rng);
    PartitioningOptions part;
    part.max_points = 4;
    const Partition target = PartitionSequence(data.View(), part);
    const Sequence probe_seq =
        GenerateFractalSequence(10, FractalOptions(), &rng);
    const Mbr probe = probe_seq.BoundingBox();
    const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
    const DnormContext context = MakeDnormContext(target, dmbr);
    const size_t probe_count = data.size() + 17;  // more than total points
    for (size_t j = 0; j < target.size(); ++j) {
      const NormalizedDistanceResult ref =
          ReferenceNormalizedDistance(probe_count, target, j, dmbr);
      const NormalizedDistanceResult fast =
          NormalizedDistance(probe_count, context, j);
      EXPECT_DOUBLE_EQ(fast.distance, ref.distance);
      EXPECT_EQ(fast.point_begin, ref.point_begin);
      EXPECT_EQ(fast.point_end, ref.point_end);
    }
  }
}

TEST(DnormEquivalenceTest, ZeroEpsilonKeepsOnlyExactWindows) {
  Rng rng(404);
  const Sequence data = GenerateFractalSequence(60, FractalOptions(), &rng);
  PartitioningOptions part;
  part.max_points = 6;
  const Partition target = PartitionSequence(data.View(), part);
  // A probe overlapping the whole space: many zero-distance MBRs.
  const Mbr probe(Point{-1.0, -1.0}, Point{2.0, 2.0});
  CheckDnormAgreement(target, probe, 12, 0.0);
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  const DnormContext context = MakeDnormContext(target, dmbr);
  for (size_t j = 0; j < target.size(); ++j) {
    std::vector<NormalizedDistanceResult> windows;
    QualifyingDnormWindows(12, context, j, 0.0, &windows);
    for (const NormalizedDistanceResult& w : windows) {
      EXPECT_EQ(w.distance, 0.0);
    }
  }
}

TEST(DnormEquivalenceTest, ContextPrefixSumsMatchPartition) {
  Rng rng(405);
  const Sequence data = GenerateFractalSequence(80, FractalOptions(), &rng);
  PartitioningOptions part;
  part.max_points = 7;
  const Partition target = PartitionSequence(data.View(), part);
  const Mbr probe(Point{0.3, 0.3}, Point{0.4, 0.4});
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  const DnormContext context = MakeDnormContext(target, dmbr);
  ASSERT_EQ(context.prefix_count.size(), target.size() + 1);
  size_t points = 0;
  double min_dmbr = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < target.size(); ++t) {
    EXPECT_EQ(context.prefix_count[t], points);
    points += target[t].count();
    min_dmbr = std::min(min_dmbr, dmbr[t]);
  }
  EXPECT_EQ(context.prefix_count.back(), points);
  EXPECT_EQ(context.total_points, points);
  EXPECT_EQ(context.min_dmbr, min_dmbr);
}

// ---------------------------------------------------------------------------
// Batched range search vs per-probe reference.
// ---------------------------------------------------------------------------

std::vector<Mbr> MakeProbes(Rng* rng, size_t count) {
  std::vector<Mbr> probes;
  for (size_t i = 0; i < count; ++i) {
    Point low{rng->Uniform(), rng->Uniform(), rng->Uniform()};
    Point high = low;
    for (double& v : high) v += 0.1 * rng->Uniform();
    probes.emplace_back(low, high);
  }
  return probes;
}

std::vector<IndexEntry> MakeEntries(Rng* rng, size_t count) {
  std::vector<IndexEntry> entries;
  for (uint64_t i = 0; i < count; ++i) {
    Point low{rng->Uniform(), rng->Uniform(), rng->Uniform()};
    Point high = low;
    for (double& v : high) v += 0.05 * rng->Uniform();
    entries.push_back(IndexEntry{Mbr(low, high), i});
  }
  return entries;
}

// Batch results must equal one single-probe search per query: same payload
// sets, and each hit's dist2 must be the probe/entry MinDist2.
void CheckBatchAgainstSingles(const SpatialIndex& index,
                              const std::vector<IndexEntry>& entries,
                              const std::vector<Mbr>& probes, double epsilon) {
  std::vector<std::vector<SpatialIndex::BatchHit>> batch;
  const uint64_t batch_visits =
      index.RangeSearchBatch(probes, epsilon, &batch);
  ASSERT_EQ(batch.size(), probes.size());
  uint64_t single_visits = 0;
  for (size_t q = 0; q < probes.size(); ++q) {
    std::vector<uint64_t> expected;
    single_visits += index.RangeSearch(probes[q], epsilon, &expected);
    std::sort(expected.begin(), expected.end());
    std::vector<uint64_t> actual;
    for (const SpatialIndex::BatchHit& hit : batch[q]) {
      actual.push_back(hit.value);
      const double d2 = probes[q].MinDist2(entries[hit.value].mbr);
      EXPECT_DOUBLE_EQ(hit.dist2, d2) << "probe " << q;
    }
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "probe " << q;
  }
  // The batch descends once, so it can never touch more nodes than the
  // per-probe searches combined.
  EXPECT_LE(batch_visits, single_visits);
}

TEST(BatchRangeSearchTest, RStarTreeMatchesSingleProbeSearches) {
  Rng rng(406);
  auto entries = MakeEntries(&rng, 3000);
  const RStarTree tree = RStarTree::BulkLoad(3, entries);
  for (int trial = 0; trial < 10; ++trial) {
    const auto probes =
        MakeProbes(&rng, static_cast<size_t>(rng.UniformInt(1, 12)));
    CheckBatchAgainstSingles(tree, entries, probes, rng.Uniform() * 0.2);
  }
}

TEST(BatchRangeSearchTest, RStarTreeEmptyBatchAndEmptyTree) {
  const RStarTree empty(3);
  std::vector<std::vector<SpatialIndex::BatchHit>> out{{}};
  EXPECT_EQ(empty.RangeSearchBatch({}, 0.1, &out), 0u);
  EXPECT_TRUE(out.empty());
  Rng rng(407);
  const auto probes = MakeProbes(&rng, 3);
  empty.RangeSearchBatch(probes, 0.1, &out);
  ASSERT_EQ(out.size(), 3u);
  for (const auto& hits : out) EXPECT_TRUE(hits.empty());
}

TEST(BatchRangeSearchTest, LinearIndexMatchesSingleProbeSearches) {
  Rng rng(408);
  auto entries = MakeEntries(&rng, 500);
  LinearIndex index(16);
  for (const IndexEntry& e : entries) index.Insert(e.mbr, e.value);
  for (int trial = 0; trial < 5; ++trial) {
    const auto probes = MakeProbes(&rng, 6);
    CheckBatchAgainstSingles(index, entries, probes, rng.Uniform() * 0.3);
  }
}

TEST(BatchRangeSearchTest, ZeroEpsilonBatchMatchesSingles) {
  Rng rng(409);
  auto entries = MakeEntries(&rng, 1000);
  const RStarTree tree = RStarTree::BulkLoad(3, entries);
  const auto probes = MakeProbes(&rng, 8);
  CheckBatchAgainstSingles(tree, entries, probes, 0.0);
}

class PagedBatchTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = testing::TempDir() + "/kernel_equiv_rtree.db";
};

TEST_F(PagedBatchTest, PagedRTreeBatchMatchesSinglesAndSavesPages) {
  Rng rng(410);
  auto entries = MakeEntries(&rng, 4000);
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::Build(3, entries, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 256);
  PagedRTree tree(3, &pool, file);
  ASSERT_TRUE(tree.valid());
  for (int trial = 0; trial < 8; ++trial) {
    const auto probes =
        MakeProbes(&rng, static_cast<size_t>(rng.UniformInt(1, 10)));
    const double epsilon = rng.Uniform() * 0.2;
    std::vector<std::vector<SpatialIndex::BatchHit>> batch;
    uint64_t batch_pages = 0;
    ASSERT_TRUE(tree.RangeSearchBatch(probes, epsilon, &batch, &batch_pages));
    ASSERT_EQ(batch.size(), probes.size());
    uint64_t single_pages = 0;
    for (size_t q = 0; q < probes.size(); ++q) {
      std::vector<uint64_t> expected;
      ASSERT_TRUE(
          tree.RangeSearch(probes[q], epsilon, &expected, &single_pages));
      std::sort(expected.begin(), expected.end());
      std::vector<uint64_t> actual;
      for (const SpatialIndex::BatchHit& hit : batch[q]) {
        actual.push_back(hit.value);
        EXPECT_DOUBLE_EQ(hit.dist2,
                         probes[q].MinDist2(entries[hit.value].mbr));
      }
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected) << "probe " << q;
    }
    EXPECT_LE(batch_pages, single_pages);
  }
}

// ---------------------------------------------------------------------------
// Bounded window profile / bounded sequence distance vs reference.
// ---------------------------------------------------------------------------

TEST(BoundedProfileTest, CompletedWindowsAreBitIdentical) {
  Rng rng(411);
  for (int trial = 0; trial < 25; ++trial) {
    const Sequence data =
        GenerateFractalSequence(80 + trial, FractalOptions(), &rng);
    const Sequence query =
        GenerateFractalSequence(static_cast<size_t>(rng.UniformInt(1, 40)),
                                FractalOptions(), &rng);
    const double epsilon = rng.Uniform() * 0.5;
    const std::vector<double> ref =
        WindowDistanceProfile(query.View(), data.View());
    const std::vector<double> bounded =
        WindowDistanceProfileBounded(query.View(), data.View(), epsilon);
    ASSERT_EQ(bounded.size(), ref.size());
    for (size_t j = 0; j < ref.size(); ++j) {
      if (std::isinf(bounded[j])) {
        // Abandoned windows must be genuinely disqualified.
        EXPECT_GT(ref[j], epsilon) << "j=" << j;
      } else {
        // Completed windows reproduce the reference exactly.
        EXPECT_DOUBLE_EQ(bounded[j], ref[j]) << "j=" << j;
      }
      // The qualification decision is never changed by the bound.
      EXPECT_EQ(bounded[j] <= epsilon, ref[j] <= epsilon) << "j=" << j;
    }
  }
}

TEST(BoundedProfileTest, ZeroEpsilonKeepsExactAlignments) {
  Rng rng(412);
  Sequence data = GenerateFractalSequence(50, FractalOptions(), &rng);
  // Plant an exact copy of the query inside data.
  const size_t offset = 17;
  const size_t k = 9;
  const SequenceView query = data.Slice(offset, offset + k);
  const std::vector<double> bounded =
      WindowDistanceProfileBounded(query, data.View(), 0.0);
  EXPECT_EQ(bounded[offset], 0.0);
  EXPECT_EQ(SequenceDistanceBounded(query, data.View(), 0.0), 0.0);
}

TEST(BoundedSequenceDistanceTest, MatchesReferenceWithinThreshold) {
  Rng rng(413);
  for (int trial = 0; trial < 30; ++trial) {
    const Sequence a = GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(1, 60)), FractalOptions(), &rng);
    const Sequence b = GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(1, 60)), FractalOptions(), &rng);
    const double epsilon = rng.Uniform() * 0.6;
    const double ref = SequenceDistance(a.View(), b.View());
    const double bounded = SequenceDistanceBounded(a.View(), b.View(), epsilon);
    if (ref <= epsilon) {
      EXPECT_DOUBLE_EQ(bounded, ref);
    } else {
      EXPECT_TRUE(std::isinf(bounded)) << "ref=" << ref << " eps=" << epsilon;
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD kernels vs scalar references. Parameterized over forced-scalar
// (trivially scalar-vs-scalar, proving the override routes correctly) and
// the host's native dispatch level (the real differential). Shapes cover
// odd dims (1, 3, 5, 7), counts below one vector lane, and counts that
// leave every possible tail remainder.
// ---------------------------------------------------------------------------

constexpr size_t kSimdDims[] = {1, 2, 3, 4, 5, 7, 8};
constexpr size_t kSimdCounts[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 31, 64, 65};

class SimdKernelTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { simd::SetForceScalarForTesting(GetParam()); }
  void TearDown() override { simd::ReinitFromEnvForTesting(); }
};

TEST_P(SimdKernelTest, MinDist2BatchIsBitIdenticalToScalarAndMbr) {
  Rng rng(420);
  for (const size_t dim : kSimdDims) {
    for (const size_t n : kSimdCounts) {
      Point qlo(dim), qhi(dim);
      for (size_t k = 0; k < dim; ++k) {
        qlo[k] = rng.Uniform();
        qhi[k] = qlo[k] + 0.3 * rng.Uniform();
      }
      const Mbr probe(qlo, qhi);
      std::vector<double> lo(dim * n), hi(dim * n);
      std::vector<Mbr> rects;
      for (size_t i = 0; i < n; ++i) {
        Point low(dim), high(dim);
        for (size_t k = 0; k < dim; ++k) {
          low[k] = 2.0 * rng.Uniform() - 0.5;
          high[k] = low[k] + 0.2 * rng.Uniform();
          lo[k * n + i] = low[k];
          hi[k * n + i] = high[k];
        }
        rects.emplace_back(low, high);
      }
      std::vector<double> fast(n), ref(n);
      simd::MinDist2Batch(qlo.data(), qhi.data(), lo.data(), hi.data(), n,
                          dim, fast.data());
      simd::MinDist2BatchScalar(qlo.data(), qhi.data(), lo.data(), hi.data(),
                                n, dim, ref.data());
      for (size_t i = 0; i < n; ++i) {
        // Bit-identical to the scalar kernel *and* to the geometry the
        // scalar kernel mirrors.
        EXPECT_DOUBLE_EQ(fast[i], ref[i])
            << "dim=" << dim << " n=" << n << " i=" << i;
        EXPECT_DOUBLE_EQ(fast[i], probe.MinDist2(rects[i]))
            << "dim=" << dim << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_P(SimdKernelTest, SquaredDistBatchIsBitIdenticalToScalar) {
  Rng rng(421);
  for (const size_t dim : kSimdDims) {
    for (const size_t n : kSimdCounts) {
      std::vector<double> point(dim);
      for (double& v : point) v = rng.Uniform();
      std::vector<double> points(dim * n);
      for (double& v : points) v = 2.0 * rng.Uniform() - 0.5;
      std::vector<double> fast(n), ref(n);
      simd::SquaredDistBatch(point.data(), points.data(), n, dim,
                             fast.data());
      simd::SquaredDistBatchScalar(point.data(), points.data(), n, dim,
                                   ref.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(fast[i], ref[i])
            << "dim=" << dim << " n=" << n << " i=" << i;
        // Independent accumulation in dimension order.
        double want = 0.0;
        for (size_t k = 0; k < dim; ++k) {
          const double diff = point[k] - points[k * n + i];
          want += diff * diff;
        }
        EXPECT_DOUBLE_EQ(fast[i], want)
            << "dim=" << dim << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_P(SimdKernelTest, PointSumBoundedMatchesScalarWithinReassociation) {
  Rng rng(422);
  const double inf = std::numeric_limits<double>::infinity();
  for (const size_t dim : kSimdDims) {
    for (const size_t n : kSimdCounts) {
      std::vector<double> a(n * dim), b(n * dim);
      for (double& v : a) v = rng.Uniform();
      for (double& v : b) v = rng.Uniform();
      bool fast_abandoned = true;
      const double fast = simd::PointSumBounded(a.data(), b.data(), n, dim,
                                                inf, &fast_abandoned);
      bool ref_abandoned = true;
      const double ref = simd::PointSumBoundedScalar(
          a.data(), b.data(), n, dim, inf, &ref_abandoned);
      EXPECT_FALSE(fast_abandoned);
      EXPECT_FALSE(ref_abandoned);
      // The blocked kernel reassociates the per-point additions; the error
      // is a few ulps of an O(n)-sized sum.
      EXPECT_NEAR(fast, ref, 1e-9 * (1.0 + ref))
          << "dim=" << dim << " n=" << n;
    }
  }
}

TEST_P(SimdKernelTest, PointSumBoundedAbandonDecisionsAgree) {
  Rng rng(423);
  const double inf = std::numeric_limits<double>::infinity();
  for (const size_t dim : kSimdDims) {
    for (const size_t n : kSimdCounts) {
      std::vector<double> a(n * dim), b(n * dim);
      for (double& v : a) v = rng.Uniform();
      for (double& v : b) v = rng.Uniform();
      const double total = simd::PointSumBoundedScalar(a.data(), b.data(), n,
                                                       dim, inf, nullptr);
      // Bounds well inside / outside the total: both kernels check partial
      // sums that increase monotonically to the (reassociation-equal)
      // total, so the flag must agree whenever the bound is not within
      // rounding error of it.
      for (const double bound : {0.5 * total, 2.0 * total + 1.0}) {
        bool fast_abandoned = false;
        const double fast = simd::PointSumBounded(a.data(), b.data(), n, dim,
                                                  bound, &fast_abandoned);
        bool ref_abandoned = false;
        const double ref = simd::PointSumBoundedScalar(
            a.data(), b.data(), n, dim, bound, &ref_abandoned);
        EXPECT_EQ(fast_abandoned, ref_abandoned)
            << "dim=" << dim << " n=" << n << " bound=" << bound;
        EXPECT_EQ(fast_abandoned, total > bound)
            << "dim=" << dim << " n=" << n << " bound=" << bound;
        if (fast_abandoned) {
          // Early exits may stop at different points, but both must have
          // genuinely exceeded the bound.
          EXPECT_GT(fast, bound);
          EXPECT_GT(ref, bound);
        } else {
          EXPECT_NEAR(fast, ref, 1e-9 * (1.0 + ref));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NativeAndForcedScalar, SimdKernelTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "ForcedScalar" : "Native";
                         });

}  // namespace
}  // namespace mdseq
