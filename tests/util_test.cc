#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/table.h"
#include "util/csv.h"
#include "util/flags.h"

namespace mdseq {
namespace {

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.AddRow(std::vector<std::string>{"1", "x"});
  csv.AddRow(std::vector<double>{0.5, 2.0});
  EXPECT_EQ(csv.num_rows(), 2u);
  EXPECT_EQ(csv.ToString(), "a,b\n1,x\n0.5,2\n");
}

TEST(CsvWriterTest, WriteFileRoundTrips) {
  CsvWriter csv({"v"});
  csv.AddRow(std::vector<double>{0.1});
  const std::string path = testing::TempDir() + "/mdseq_csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {};
  const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buffer, n), "v\n0.1\n");
  std::remove(path.c_str());
}

TEST(FormatDoubleTest, RoundTripsExactly) {
  for (double v : {0.0, 1.0, 0.1, 1.0 / 3.0, 1e-17, 123456.789}) {
    const std::string s = FormatDouble(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

class FlagsTest : public ::testing::Test {
 protected:
  Flags Parse(std::vector<std::string> args) {
    argv_storage_ = std::move(args);
    argv_storage_.insert(argv_storage_.begin(), "prog");
    argv_.clear();
    for (std::string& s : argv_storage_) argv_.push_back(s.data());
    return Flags(static_cast<int>(argv_.size()), argv_.data());
  }

  std::vector<std::string> argv_storage_;
  std::vector<char*> argv_;
};

TEST_F(FlagsTest, ParsesKeyValuePairs) {
  const Flags flags = Parse({"--count=42", "--eps=0.25", "--name=abc"});
  EXPECT_EQ(flags.GetSize("count", 0), 42u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.25);
  EXPECT_EQ(flags.GetString("name", ""), "abc");
}

TEST_F(FlagsTest, DefaultsWhenMissing) {
  const Flags flags = Parse({});
  EXPECT_FALSE(flags.Has("count"));
  EXPECT_EQ(flags.GetSize("count", 7), 7u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.5), 0.5);
  EXPECT_EQ(flags.GetString("name", "default"), "default");
}

TEST_F(FlagsTest, BareFlagStoresOne) {
  const Flags flags = Parse({"--verbose"});
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_EQ(flags.GetSize("verbose", 0), 1u);
}

TEST_F(FlagsTest, PositionalArgumentsCollected) {
  const Flags flags = Parse({"query", "--eps=0.1", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "query");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST_F(FlagsTest, ValueWithEqualsSign) {
  const Flags flags = Parse({"--path=/a/b=c"});
  EXPECT_EQ(flags.GetString("path", ""), "/a/b=c");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"eps", "value"});
  table.AddRow({"0.05", "1"});
  table.AddNumericRow({0.5, 123.456}, 2);
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find(" eps   value\n"), std::string::npos);
  EXPECT_NE(rendered.find("0.05       1\n"), std::string::npos);
  EXPECT_NE(rendered.find("0.50  123.46\n"), std::string::npos);
}

}  // namespace
}  // namespace mdseq
