#include <algorithm>
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "gen/walk.h"
#include "ts/dft.h"
#include "ts/sliding_window.h"
#include "ts/whole_matching.h"
#include "util/random.h"

namespace mdseq {
namespace {

std::vector<double> Values(SequenceView s) {
  std::vector<double> v(s.size());
  for (size_t i = 0; i < s.size(); ++i) v[i] = s[i][0];
  return v;
}

TEST(SlidingWindowTest, EmbedShapes) {
  const Sequence series = Sequence::FromScalars({1, 2, 3, 4, 5});
  const Sequence embedded = SlidingWindowEmbed(series.View(), 3);
  EXPECT_EQ(embedded.dim(), 3u);
  ASSERT_EQ(embedded.size(), 3u);
  EXPECT_DOUBLE_EQ(embedded[0][0], 1.0);
  EXPECT_DOUBLE_EQ(embedded[0][2], 3.0);
  EXPECT_DOUBLE_EQ(embedded[2][0], 3.0);
  EXPECT_DOUBLE_EQ(embedded[2][2], 5.0);
}

TEST(SlidingWindowTest, WindowOfOneIsIdentityLike) {
  const Sequence series = Sequence::FromScalars({4, 5, 6});
  const Sequence embedded = SlidingWindowEmbed(series.View(), 1);
  EXPECT_EQ(embedded.size(), 3u);
  EXPECT_EQ(embedded.dim(), 1u);
}

TEST(SlidingWindowTest, RestoreRoundTrips) {
  Rng rng(1);
  const Sequence series = GenerateRandomWalk(64, WalkOptions(), &rng);
  for (size_t w : {1u, 2u, 5u, 16u, 64u}) {
    const Sequence embedded = SlidingWindowEmbed(series.View(), w);
    const Sequence restored = SlidingWindowRestore(embedded.View());
    ASSERT_EQ(restored.size(), series.size()) << "w=" << w;
    EXPECT_EQ(Values(restored.View()), Values(series.View()));
  }
}

TEST(DftTest, ConstantSeriesConcentratesInDc) {
  const std::vector<double> series(8, 1.0);
  const auto freq = Dft(series);
  EXPECT_NEAR(freq[0].real(), std::sqrt(8.0), 1e-9);
  for (size_t f = 1; f < freq.size(); ++f) {
    EXPECT_NEAR(std::abs(freq[f]), 0.0, 1e-9);
  }
}

TEST(DftTest, InverseRoundTrips) {
  Rng rng(2);
  std::vector<double> series(17);
  for (double& v : series) v = rng.Uniform();
  const std::vector<double> restored = InverseDft(Dft(series));
  ASSERT_EQ(restored.size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_NEAR(restored[i], series[i], 1e-9);
  }
}

TEST(DftTest, ParsevalEnergyPreservation) {
  Rng rng(3);
  std::vector<double> series(32);
  for (double& v : series) v = rng.Uniform(-1.0, 1.0);
  const auto freq = Dft(series);
  double time_energy = 0.0;
  for (double v : series) time_energy += v * v;
  double freq_energy = 0.0;
  for (const auto& c : freq) freq_energy += std::norm(c);
  EXPECT_NEAR(time_energy, freq_energy, 1e-9);
}

// The F-index guarantee: distance on a DFT coefficient prefix never exceeds
// the true series distance.
TEST(DftTest, FeatureDistanceLowerBoundsSeriesDistance) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a = GenerateRandomWalk(40, WalkOptions(), &rng);
    const Sequence b = GenerateRandomWalk(40, WalkOptions(), &rng);
    const double exact = WholeSeriesDistance(a.View(), b.View());
    for (size_t fc : {1u, 2u, 4u, 8u}) {
      const Point fa = DftFeature(a.View(), fc);
      const Point fb = DftFeature(b.View(), fc);
      EXPECT_LE(PointDistance(fa, fb), exact + 1e-9)
          << "fc=" << fc << " trial=" << trial;
    }
  }
}

TEST(WholeMatchingTest, ExactDuplicateIsFoundAtZeroEpsilon) {
  Rng rng(5);
  WholeMatchingIndex index(64, 4);
  std::vector<Sequence> stored;
  for (int i = 0; i < 30; ++i) {
    stored.push_back(GenerateRandomWalk(64, WalkOptions(), &rng));
    index.Add(stored.back());
  }
  const std::vector<size_t> hits = index.Search(stored[11].View(), 1e-9);
  ASSERT_FALSE(hits.empty());
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 11u) != hits.end());
}

TEST(WholeMatchingTest, NoFalseDismissalsAndExactVerification) {
  Rng rng(6);
  WholeMatchingIndex index(32, 3);
  std::vector<Sequence> stored;
  for (int i = 0; i < 80; ++i) {
    stored.push_back(GenerateRandomWalk(32, WalkOptions(), &rng));
    index.Add(stored.back());
  }
  const Sequence query = GenerateRandomWalk(32, WalkOptions(), &rng);
  for (double epsilon : {0.1, 0.5, 1.5}) {
    std::vector<size_t> expected;
    for (size_t id = 0; id < stored.size(); ++id) {
      if (WholeSeriesDistance(query.View(), stored[id].View()) <= epsilon) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(index.Search(query.View(), epsilon), expected);
    // Candidates form a superset of the answers.
    const std::vector<size_t> candidates =
        index.SearchCandidates(query.View(), epsilon);
    for (size_t id : expected) {
      EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), id) !=
                  candidates.end());
    }
  }
}

TEST(WholeMatchingTest, HaarFeatureBackendIsAlsoCorrect) {
  Rng rng(8);
  WholeMatchingIndex index(32, 4, WholeMatchingIndex::Feature::kHaar);
  std::vector<Sequence> stored;
  for (int i = 0; i < 60; ++i) {
    stored.push_back(GenerateRandomWalk(32, WalkOptions(), &rng));
    index.Add(stored.back());
  }
  const Sequence query = GenerateRandomWalk(32, WalkOptions(), &rng);
  for (double epsilon : {0.2, 0.8}) {
    std::vector<size_t> expected;
    for (size_t id = 0; id < stored.size(); ++id) {
      if (WholeSeriesDistance(query.View(), stored[id].View()) <= epsilon) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(index.Search(query.View(), epsilon), expected);
  }
}

TEST(WholeMatchingTest, PaaFeatureBackendIsAlsoCorrect) {
  Rng rng(9);
  WholeMatchingIndex index(32, 4, WholeMatchingIndex::Feature::kPaa);
  std::vector<Sequence> stored;
  for (int i = 0; i < 60; ++i) {
    stored.push_back(GenerateRandomWalk(32, WalkOptions(), &rng));
    index.Add(stored.back());
  }
  const Sequence query = GenerateRandomWalk(32, WalkOptions(), &rng);
  for (double epsilon : {0.2, 0.8}) {
    std::vector<size_t> expected;
    for (size_t id = 0; id < stored.size(); ++id) {
      if (WholeSeriesDistance(query.View(), stored[id].View()) <= epsilon) {
        expected.push_back(id);
      }
    }
    EXPECT_EQ(index.Search(query.View(), epsilon), expected);
  }
}

TEST(WholeMatchingTest, FilterIsSelective) {
  // With smooth (walk) data, a 3-coefficient filter should prune most of
  // the database at a small threshold.
  Rng rng(7);
  WholeMatchingIndex index(32, 3);
  for (int i = 0; i < 200; ++i) {
    index.Add(GenerateRandomWalk(32, WalkOptions(), &rng));
  }
  const Sequence query = GenerateRandomWalk(32, WalkOptions(), &rng);
  const std::vector<size_t> candidates =
      index.SearchCandidates(query.View(), 0.1);
  EXPECT_LT(candidates.size(), 100u);
}

}  // namespace
}  // namespace mdseq
