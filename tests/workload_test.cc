// Workload flight recorder + deterministic replay harness
// (src/obs/workload_log.* and src/engine/workload_recorder.* /
// workload_replay.*): the CRC-framed log (round trips, byte-budget
// rotation, torn-tail tolerance, CRC parity with the ingest WAL), the
// record codec, the result-digest and query-signature functions, the
// engine-integrated recorder, and the replay/diff loop — including the
// headline determinism proof that replaying a recorded workload on the
// same build reproduces byte-identical result digests and cascade
// counters across in-memory, on-disk, and 4-shard coordinator
// configurations, and that an injected regression (prefilter disabled) is
// flagged with per-query, per-shard attribution.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "engine/workload_recorder.h"
#include "engine/workload_replay.h"
#include "eval/experiment.h"
#include "ingest/wal.h"
#include "obs/workload_log.h"
#include "shard/coordinator.h"
#include "shard/shard_set.h"
#include "shard/transport.h"
#include "storage/disk_database.h"

namespace mdseq {
namespace {

std::string TempPath(const char* tag) {
  return "/tmp/mdseq_workload_test_" + std::string(tag);
}

void RemoveLog(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

uint64_t FileSizeOf(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return 0;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fclose(file);
  return size > 0 ? static_cast<uint64_t>(size) : 0;
}

Workload SmallWorkload(uint64_t seed) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 60;
  config.min_length = 56;
  config.max_length = 160;
  config.num_queries = 10;
  config.seed = seed;
  return BuildWorkload(config);
}

// ---------------------------------------------------------------------------
// Framed log: CRC, round trips, rotation, torn tails
// ---------------------------------------------------------------------------

TEST(WorkloadLogTest, CrcMatchesIngestWalCrc) {
  // The log reuses the WAL's frame discipline; the two CRC32
  // implementations must stay bit-identical so the framing idiom is one
  // idiom, not two that happen to look alike.
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> bytes(static_cast<size_t>(rng() % 512));
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng());
    EXPECT_EQ(obs::WorkloadCrc32(bytes.data(), bytes.size()),
              WalCrc32(bytes.data(), bytes.size()));
  }
  EXPECT_EQ(obs::WorkloadCrc32(nullptr, 0), WalCrc32(nullptr, 0));
}

TEST(WorkloadLogTest, AppendScanRoundTrip) {
  const std::string path = TempPath("roundtrip.mdwl");
  RemoveLog(path);
  std::vector<std::vector<uint8_t>> payloads;
  {
    obs::WorkloadLogWriter writer;
    ASSERT_TRUE(writer.Open(path));
    std::mt19937_64 rng(11);
    for (int i = 0; i < 20; ++i) {
      std::vector<uint8_t> payload(static_cast<size_t>(rng() % 300));
      for (uint8_t& b : payload) b = static_cast<uint8_t>(rng());
      ASSERT_TRUE(writer.Append(static_cast<uint8_t>(1 + i % 3),
                                payload.data(), payload.size()));
      payloads.push_back(std::move(payload));
    }
    EXPECT_EQ(writer.rotations(), 0u);
  }
  const obs::WorkloadScanResult scan = obs::ScanWorkloadLog(path);
  EXPECT_TRUE(scan.clean_eof);
  ASSERT_EQ(scan.frames.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(scan.frames[i].type, static_cast<uint8_t>(1 + i % 3));
    EXPECT_EQ(scan.frames[i].payload, payloads[i]);
  }
  RemoveLog(path);
}

TEST(WorkloadLogTest, MissingFileScansCleanAndEmpty) {
  const obs::WorkloadScanResult scan =
      obs::ScanWorkloadLog(TempPath("never_written.mdwl"));
  EXPECT_TRUE(scan.clean_eof);
  EXPECT_TRUE(scan.frames.empty());
}

TEST(WorkloadLogTest, TornTailDropsOnlyTheLastFrame) {
  const std::string path = TempPath("torn.mdwl");
  RemoveLog(path);
  {
    obs::WorkloadLogWriter writer;
    ASSERT_TRUE(writer.Open(path));
    const std::vector<uint8_t> payload(100, 0xAB);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.Append(1, payload.data(), payload.size()));
    }
  }
  // Truncate mid-frame: a crash between fwrite and the end of the record.
  const uint64_t full = FileSizeOf(path);
  ASSERT_TRUE(::truncate(path.c_str(), static_cast<off_t>(full - 7)) == 0);
  const obs::WorkloadScanResult scan = obs::ScanWorkloadLog(path);
  EXPECT_FALSE(scan.clean_eof);
  EXPECT_EQ(scan.frames.size(), 4u);

  // A flipped payload byte inside the (now) last intact frame is a CRC
  // mismatch: the scan keeps only the frames before it. Frames are
  // 4 (crc) + 4 (length) + 1 (type) + 100 (payload) = 109 bytes, so the
  // fourth frame's payload spans [336, 436).
  {
    std::FILE* file = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 3 * 109 + 9 + 50, SEEK_SET);
    std::fputc(0x5C, file);
    std::fclose(file);
  }
  const obs::WorkloadScanResult corrupt = obs::ScanWorkloadLog(path);
  EXPECT_FALSE(corrupt.clean_eof);
  EXPECT_EQ(corrupt.frames.size(), 3u);
  RemoveLog(path);
}

TEST(WorkloadLogTest, RotationBoundsFootprintAndScanSeesBothGenerations) {
  const std::string path = TempPath("rotate.mdwl");
  RemoveLog(path);
  obs::WorkloadLogWriter::Options options;
  options.max_bytes = 1024;
  obs::WorkloadLogWriter writer;
  ASSERT_TRUE(writer.Open(path, options));
  const std::vector<uint8_t> payload(100, 0x42);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(writer.Append(1, payload.data(), payload.size()));
  }
  EXPECT_GT(writer.rotations(), 0u);
  // One rotated generation: footprint stays within ~2x the budget.
  EXPECT_LE(writer.current_file_bytes(), options.max_bytes);
  EXPECT_LE(FileSizeOf(path) + FileSizeOf(path + ".1"),
            2 * options.max_bytes);
  writer.Close();

  const obs::WorkloadScanResult both =
      obs::ScanWorkloadLogWithRotation(path);
  EXPECT_TRUE(both.clean_eof);
  // The two generations together retain the most recent frames, more than
  // a single budget's worth.
  EXPECT_GT(both.frames.size(), 9u);
  RemoveLog(path);
}

// ---------------------------------------------------------------------------
// Record codec, signature, digest
// ---------------------------------------------------------------------------

WorkloadQueryRecord SampleRecord(uint64_t id) {
  WorkloadQueryRecord record;
  record.id = id;
  record.arrival_unix = 1.7e9 + static_cast<double>(id);
  record.completion_unix = record.arrival_unix + 0.25;
  record.outcome = static_cast<uint8_t>(QueryStatus::kOk);
  record.epsilon = 0.375;
  record.verified = true;
  record.opt_prefilter = true;
  record.opt_composite = false;
  record.approximate = true;
  record.opt_max_candidates = 64;
  record.opt_max_epsilon_rounds = 5;
  record.tenant = 2;
  record.deadline_us = 250000;
  record.signature = 0x1234567890abcdefull;
  record.result_digest = 0xfedcba0987654321ull;
  record.matches = 2;
  record.interrupted = false;
  record.stats.node_accesses = 17;
  record.stats.query_mbrs = 4;
  record.stats.phase2_candidates = 23;
  record.stats.phase3_matches = 5;
  record.stats.filter_matches = 5;
  record.stats.dnorm_evaluations = 311;
  record.stats.probe_abandons = 9;
  record.stats.prefilter_abandons = 6;
  record.stats.prefilter_survivors = 17;
  record.stats.bytes_read = 4096;
  record.stats.shards_total = 2;
  record.stats.approx_candidates_skipped = 7;
  record.stats.approx_certified_epsilon = 0.25;
  ShardQueryStats shard;
  shard.shard = 3;
  shard.ok = true;
  shard.rpc_ns = 5555;
  shard.num_sequences = 15;
  shard.digest = 0xabcdabcd1234ull;
  shard.stats.dnorm_evaluations = 150;
  record.shards.push_back(shard);
  Sequence query(2);
  const double points[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  query.Extend(SequenceView(points, 3, 2));
  record.query = query;
  return record;
}

TEST(WorkloadRecordTest, EncodeDecodeRoundTrip) {
  const WorkloadQueryRecord record = SampleRecord(42);
  const std::vector<uint8_t> payload = EncodeWorkloadRecord(record);
  WorkloadQueryRecord decoded;
  ASSERT_TRUE(
      DecodeWorkloadRecord(payload.data(), payload.size(), &decoded));
  EXPECT_EQ(decoded.id, record.id);
  EXPECT_EQ(decoded.arrival_unix, record.arrival_unix);
  EXPECT_EQ(decoded.completion_unix, record.completion_unix);
  EXPECT_EQ(decoded.outcome, record.outcome);
  EXPECT_EQ(decoded.epsilon, record.epsilon);
  EXPECT_EQ(decoded.verified, record.verified);
  EXPECT_EQ(decoded.opt_prefilter, record.opt_prefilter);
  EXPECT_EQ(decoded.opt_composite, record.opt_composite);
  EXPECT_EQ(decoded.approximate, record.approximate);
  EXPECT_EQ(decoded.opt_max_candidates, record.opt_max_candidates);
  EXPECT_EQ(decoded.opt_max_epsilon_rounds, record.opt_max_epsilon_rounds);
  EXPECT_EQ(decoded.tenant, record.tenant);
  EXPECT_EQ(decoded.deadline_us, record.deadline_us);
  EXPECT_EQ(decoded.signature, record.signature);
  EXPECT_EQ(decoded.result_digest, record.result_digest);
  EXPECT_EQ(decoded.matches, record.matches);
  EXPECT_EQ(decoded.stats.node_accesses, record.stats.node_accesses);
  EXPECT_EQ(decoded.stats.phase2_candidates,
            record.stats.phase2_candidates);
  EXPECT_EQ(decoded.stats.dnorm_evaluations,
            record.stats.dnorm_evaluations);
  EXPECT_EQ(decoded.stats.prefilter_abandons,
            record.stats.prefilter_abandons);
  EXPECT_EQ(decoded.stats.bytes_read, record.stats.bytes_read);
  EXPECT_EQ(decoded.stats.shards_total, record.stats.shards_total);
  EXPECT_EQ(decoded.stats.approx_candidates_skipped,
            record.stats.approx_candidates_skipped);
  EXPECT_EQ(decoded.stats.approx_certified_epsilon,
            record.stats.approx_certified_epsilon);
  ASSERT_EQ(decoded.shards.size(), 1u);
  EXPECT_EQ(decoded.shards[0].shard, 3u);
  EXPECT_EQ(decoded.shards[0].ok, true);
  EXPECT_EQ(decoded.shards[0].rpc_ns, 5555u);
  EXPECT_EQ(decoded.shards[0].num_sequences, 15u);
  EXPECT_EQ(decoded.shards[0].digest, 0xabcdabcd1234ull);
  EXPECT_EQ(decoded.shards[0].stats.dnorm_evaluations, 150u);
  EXPECT_EQ(decoded.query.dim(), 2u);
  EXPECT_EQ(decoded.query.size(), 3u);
  EXPECT_EQ(decoded.query.data(), record.query.data());
}

TEST(WorkloadRecordTest, DecodeRejectsVersionAndTruncation) {
  const WorkloadQueryRecord record = SampleRecord(1);
  std::vector<uint8_t> payload = EncodeWorkloadRecord(record);
  WorkloadQueryRecord decoded;
  // Unknown version byte.
  std::vector<uint8_t> wrong_version = payload;
  wrong_version[0] = 99;
  EXPECT_FALSE(DecodeWorkloadRecord(wrong_version.data(),
                                    wrong_version.size(), &decoded));
  // Any truncation fails cleanly rather than reading past the end.
  for (size_t cut : {payload.size() - 1, payload.size() / 2, size_t{3}}) {
    EXPECT_FALSE(DecodeWorkloadRecord(payload.data(), cut, &decoded))
        << "cut=" << cut;
  }
}

TEST(WorkloadRecordTest, SignatureCanonicalizesTheQuery) {
  const Workload workload = SmallWorkload(60);
  const SequenceView query = workload.queries[0].View();
  SearchOptions options;
  const uint64_t base = WorkloadQuerySignature(query, 0.1, true, options);
  // Deterministic across calls.
  EXPECT_EQ(base, WorkloadQuerySignature(query, 0.1, true, options));
  // Every canonical component moves the signature.
  EXPECT_NE(base, WorkloadQuerySignature(query, 0.2, true, options));
  EXPECT_NE(base, WorkloadQuerySignature(query, 0.1, false, options));
  SearchOptions no_prefilter = options;
  no_prefilter.prefilter = false;
  EXPECT_NE(base, WorkloadQuerySignature(query, 0.1, true, no_prefilter));
  SearchOptions composite = options;
  composite.composite_bound = true;
  EXPECT_NE(base, WorkloadQuerySignature(query, 0.1, true, composite));
  SearchOptions budgeted = options;
  budgeted.max_candidates = 32;
  EXPECT_NE(base, WorkloadQuerySignature(query, 0.1, true, budgeted));
  SearchOptions rounds = options;
  rounds.max_epsilon_rounds = 3;
  EXPECT_NE(base, WorkloadQuerySignature(query, 0.1, true, rounds));
  EXPECT_NE(base, WorkloadQuerySignature(workload.queries[1].View(), 0.1,
                                         true, options));
}

TEST(WorkloadRecordTest, ResultDigestIsOrderInvariantAndValueSensitive) {
  std::vector<SequenceMatch> matches(3);
  matches[0].sequence_id = 7;
  matches[0].exact_distance = 0.25;
  matches[1].sequence_id = 2;
  matches[1].exact_distance = 0.5;
  matches[2].sequence_id = 11;
  matches[2].exact_distance = 0.125;
  const uint64_t digest = ResultDigest(matches, true);

  std::vector<SequenceMatch> shuffled = {matches[2], matches[0],
                                         matches[1]};
  EXPECT_EQ(digest, ResultDigest(shuffled, true));

  std::vector<SequenceMatch> perturbed = matches;
  perturbed[1].exact_distance += 1e-3;
  EXPECT_NE(digest, ResultDigest(perturbed, true));
  std::vector<SequenceMatch> relabeled = matches;
  relabeled[0].sequence_id = 8;
  EXPECT_NE(digest, ResultDigest(relabeled, true));
  // Unverified digests hash min_dnorm instead of exact_distance.
  EXPECT_NE(digest, ResultDigest(matches, false));
  EXPECT_EQ(ResultDigest(std::vector<SequenceMatch>(), true),
            ResultDigest(std::vector<SequenceMatch>(), true));
}

// ---------------------------------------------------------------------------
// Recorder: sampling, ring, read-back
// ---------------------------------------------------------------------------

TEST(WorkloadRecorderTest, SamplingAndRecentRing) {
  const std::string path = TempPath("recorder.mdwl");
  RemoveLog(path);
  WorkloadRecorder::Options options;
  options.path = path;
  options.sample_every = 2;
  options.recent_capacity = 3;
  WorkloadRecorder recorder(options);
  ASSERT_TRUE(recorder.ok());
  for (uint64_t id = 1; id <= 10; ++id) {
    recorder.Record(SampleRecord(id));
  }
  EXPECT_EQ(recorder.records_written(), 5u);
  EXPECT_EQ(recorder.sampled_out(), 5u);
  EXPECT_GT(recorder.bytes_written(), 0u);

  // The ring holds the newest `recent_capacity` kept records, newest
  // first: ids 9, 7, 5 (every other id is sampled out).
  const std::vector<WorkloadQueryRecord> recent = recorder.Recent(8);
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].id, 9u);
  EXPECT_EQ(recent[1].id, 7u);
  EXPECT_EQ(recent[2].id, 5u);
  EXPECT_EQ(recorder.Recent(1).size(), 1u);

  const WorkloadReadResult read = ReadWorkloadRecords(path);
  EXPECT_TRUE(read.clean);
  ASSERT_EQ(read.records.size(), 5u);
  EXPECT_EQ(read.records.front().id, 1u);
  EXPECT_EQ(read.records.back().id, 9u);
  RemoveLog(path);
}

TEST(WorkloadRecorderTest, UnopenablePathCountsFailuresInsteadOfCrashing) {
  WorkloadRecorder::Options options;
  options.path = "/nonexistent-dir/never/workload.mdwl";
  WorkloadRecorder recorder(options);
  EXPECT_FALSE(recorder.ok());
  recorder.Record(SampleRecord(1));
  EXPECT_EQ(recorder.records_written(), 0u);
  EXPECT_EQ(recorder.write_failures(), 1u);
}

// ---------------------------------------------------------------------------
// The determinism contract, per configuration
// ---------------------------------------------------------------------------

// Runs `workload` through an engine built over `database`, recording into
// a fresh log, and returns the recorded records.
template <typename Database>
std::vector<WorkloadQueryRecord> RecordRun(Database* database,
                                           const Workload& workload,
                                           const std::string& path,
                                           double epsilon) {
  RemoveLog(path);
  EngineOptions options;
  options.num_threads = 2;
  options.workload_log_path = path;
  QueryEngine engine(database, options);
  QueryOptions query_options;
  query_options.epsilon = epsilon;
  query_options.verified = true;
  auto futures = engine.SubmitBatch(workload.queries, query_options);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
  engine.Shutdown();
  const WorkloadReadResult read = ReadWorkloadRecords(path);
  EXPECT_TRUE(read.clean);
  EXPECT_EQ(read.records.size(), workload.queries.size());
  return read.records;
}

// Replays `recording` against a fresh engine over `database` and asserts
// the byte-identical digest + deterministic-counter contract.
template <typename Database>
void ExpectCleanReplay(Database* database,
                       const std::vector<WorkloadQueryRecord>& recording) {
  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(database, options);
  const ReplayReport report = RunReplay(&engine, recording);
  engine.Shutdown();
  ASSERT_EQ(report.replayed, recording.size());
  EXPECT_EQ(report.ok, recording.size());
  const ReplayDiff diff = DiffWorkloads(recording, report.records);
  EXPECT_EQ(diff.compared, recording.size());
  EXPECT_TRUE(diff.clean()) << ReplayDiffJson(diff);
  // Spot-check the strongest claim explicitly: every digest matched
  // byte for byte.
  for (size_t i = 0; i < recording.size(); ++i) {
    EXPECT_EQ(recording[i].result_digest, report.records[i].result_digest);
  }
}

TEST(WorkloadReplayTest, InMemoryReplayReproducesDigestsAndCounters) {
  const Workload workload = SmallWorkload(70);
  const std::string path = TempPath("replay_mem.mdwl");
  const std::vector<WorkloadQueryRecord> recording =
      RecordRun(workload.database.get(), workload, path, 0.2);
  ExpectCleanReplay(workload.database.get(), recording);
  RemoveLog(path);
}

TEST(WorkloadReplayTest, DiskReplayReproducesDigestsAndCounters) {
  const Workload workload = SmallWorkload(71);
  const std::string db_path = TempPath("replay_disk.db");
  std::remove(db_path.c_str());
  ASSERT_TRUE(DiskDatabase::Save(*workload.database, db_path));

  DiskDatabase recorded(db_path, 64);
  ASSERT_TRUE(recorded.valid());
  const std::string path = TempPath("replay_disk.mdwl");
  const std::vector<WorkloadQueryRecord> recording =
      RecordRun(&recorded, workload, path, 0.2);

  // A separate instance with a smaller pool: page hits/misses will differ
  // wildly, digests and deterministic counters must not.
  DiskDatabase replayed(db_path, 8);
  ASSERT_TRUE(replayed.valid());
  ExpectCleanReplay(&replayed, recording);
  RemoveLog(path);
  std::remove(db_path.c_str());
}

TEST(WorkloadReplayTest, FourShardReplayReproducesDigestsPerShard) {
  const Workload workload = SmallWorkload(72);
  const std::string path = TempPath("replay_shard.mdwl");

  const std::unique_ptr<ShardSet> record_set =
      ShardSet::BuildInMemory(*workload.database, 4, PlacementPolicy::kHash);
  LoopbackTransport record_transport(record_set->nodes());
  Coordinator record_coordinator(&record_transport,
                                 record_set->placement());
  const std::vector<WorkloadQueryRecord> recording =
      RecordRun(&record_coordinator, workload, path, 0.25);

  // Every record carries the 4-way shard breakdown with per-shard
  // digests; at least one shard contributed matches somewhere.
  bool any_shard_digest = false;
  for (const WorkloadQueryRecord& record : recording) {
    EXPECT_EQ(record.shards.size(), 4u);
    for (const ShardQueryStats& shard : record.shards) {
      any_shard_digest = any_shard_digest || shard.digest != 0;
    }
  }
  EXPECT_TRUE(any_shard_digest);

  // A freshly built, identical shard stack replays clean.
  const std::unique_ptr<ShardSet> replay_set =
      ShardSet::BuildInMemory(*workload.database, 4, PlacementPolicy::kHash);
  LoopbackTransport replay_transport(replay_set->nodes());
  Coordinator replay_coordinator(&replay_transport,
                                 replay_set->placement());
  ExpectCleanReplay(&replay_coordinator, recording);
  RemoveLog(path);
}

TEST(WorkloadReplayTest, RecordedPaceReplaysInArrivalOrder) {
  const Workload workload = SmallWorkload(73);
  const std::string path = TempPath("replay_pace.mdwl");
  const std::vector<WorkloadQueryRecord> recording =
      RecordRun(workload.database.get(), workload, path, 0.2);

  EngineOptions options;
  options.num_threads = 1;
  QueryEngine engine(workload.database.get(), options);
  ReplayOptions replay_options;
  replay_options.pace = ReplayOptions::Pace::kRecorded;
  replay_options.speed = 1000.0;  // accelerated: sub-ms recorded gaps
  const ReplayReport report =
      RunReplay(&engine, recording, replay_options);
  engine.Shutdown();
  EXPECT_EQ(report.replayed, recording.size());
  EXPECT_TRUE(DiffWorkloads(recording, report.records).clean());
  RemoveLog(path);
}

// ---------------------------------------------------------------------------
// The diff harness flags injected regressions
// ---------------------------------------------------------------------------

TEST(WorkloadReplayTest, PrefilterRegressionFlaggedByCountersNotDigests) {
  const Workload workload = SmallWorkload(74);
  const std::string path = TempPath("replay_prefilter.mdwl");
  const std::vector<WorkloadQueryRecord> recording =
      RecordRun(workload.database.get(), workload, path, 0.2);

  EngineOptions options;
  options.num_threads = 2;
  options.search.prefilter = false;  // the injected regression
  QueryEngine engine(workload.database.get(), options);
  const ReplayReport report = RunReplay(&engine, recording);
  engine.Shutdown();

  const ReplayDiff diff = DiffWorkloads(recording, report.records);
  // The prefilter is sound: answers (digests) never move, but the
  // pruning-cascade counters do — and that is what the diff reports.
  EXPECT_EQ(diff.digest_divergences, 0u);
  EXPECT_EQ(diff.outcome_divergences, 0u);
  EXPECT_GT(diff.counter_divergences, 0u);
  ASSERT_FALSE(diff.divergences.empty());
  bool saw_prefilter_row = false;
  for (const ReplayDivergence& d : diff.divergences) {
    for (const std::string& row : d.counter_diffs) {
      saw_prefilter_row =
          saw_prefilter_row ||
          row.find("prefilter_abandons") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_prefilter_row);

  // The JSON payload carries the same verdict for the bench guardrail.
  const std::string json = ReplayDiffJson(diff);
  EXPECT_NE(json.find("\"digest_divergences\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
  RemoveLog(path);
}

TEST(WorkloadReplayTest, ShardedRegressionLocalizedToDivergingShards) {
  const Workload workload = SmallWorkload(75);
  const std::string path = TempPath("replay_shard_reg.mdwl");

  const std::unique_ptr<ShardSet> record_set =
      ShardSet::BuildInMemory(*workload.database, 4, PlacementPolicy::kHash);
  LoopbackTransport record_transport(record_set->nodes());
  Coordinator record_coordinator(&record_transport,
                                 record_set->placement());
  const std::vector<WorkloadQueryRecord> recording =
      RecordRun(&record_coordinator, workload, path, 0.25);

  // Same corpus and placement, but the shard nodes run with the prefilter
  // disabled: the divergence must be attributed to specific shards.
  SearchOptions no_prefilter;
  no_prefilter.prefilter = false;
  const std::unique_ptr<ShardSet> replay_set = ShardSet::BuildInMemory(
      *workload.database, 4, PlacementPolicy::kHash, no_prefilter);
  LoopbackTransport replay_transport(replay_set->nodes());
  Coordinator replay_coordinator(&replay_transport,
                                 replay_set->placement());
  EngineOptions options;
  options.num_threads = 2;
  options.search.prefilter = false;
  QueryEngine engine(&replay_coordinator, options);
  const ReplayReport report = RunReplay(&engine, recording);
  engine.Shutdown();

  const ReplayDiff diff = DiffWorkloads(recording, report.records);
  EXPECT_EQ(diff.digest_divergences, 0u);
  EXPECT_GT(diff.counter_divergences, 0u);
  bool saw_shard_attribution = false;
  for (const ReplayDivergence& d : diff.divergences) {
    if (d.diverging_shards.empty()) continue;
    for (const std::string& row : d.counter_diffs) {
      saw_shard_attribution =
          saw_shard_attribution || row.rfind("shard ", 0) == 0;
    }
  }
  EXPECT_TRUE(saw_shard_attribution);
  RemoveLog(path);
}

TEST(WorkloadReplayTest, DiffPairsByIdAndCountsUnmatched) {
  std::vector<WorkloadQueryRecord> a = {SampleRecord(1), SampleRecord(2),
                                        SampleRecord(3)};
  std::vector<WorkloadQueryRecord> b = {SampleRecord(2), SampleRecord(3),
                                        SampleRecord(4)};
  for (std::vector<WorkloadQueryRecord>* v : {&a, &b}) {
    for (WorkloadQueryRecord& r : *v) r.approximate = false;
  }
  b[0].result_digest ^= 1;  // id 2 diverges in digest
  b[1].stats.node_accesses += 5;  // id 3 diverges in a counter
  const ReplayDiff diff = DiffWorkloads(a, b);
  EXPECT_EQ(diff.compared, 2u);
  EXPECT_EQ(diff.unmatched, 2u);  // id 1 only in a, id 4 only in b
  EXPECT_EQ(diff.digest_divergences, 1u);
  EXPECT_EQ(diff.counter_divergences, 1u);
  EXPECT_FALSE(diff.clean());
  ASSERT_EQ(diff.divergences.size(), 2u);
}

TEST(WorkloadReplayTest, DiffSkipsDigestsButNotCountersForApproximate) {
  // An approximate record's cut position — and therefore its digest — may
  // legitimately move between builds; only the counters stay contractual.
  std::vector<WorkloadQueryRecord> a = {SampleRecord(1), SampleRecord(2)};
  std::vector<WorkloadQueryRecord> b = {SampleRecord(1), SampleRecord(2)};
  ASSERT_TRUE(a[0].approximate);
  b[0].result_digest ^= 1;          // ignored: approximate
  b[0].shards[0].digest ^= 1;       // ignored: approximate
  b[1].stats.approx_candidates_skipped += 3;  // still contractual
  const ReplayDiff diff = DiffWorkloads(a, b);
  EXPECT_EQ(diff.digest_divergences, 0u);
  EXPECT_EQ(diff.counter_divergences, 1u);
  ASSERT_EQ(diff.divergences.size(), 1u);
  EXPECT_EQ(diff.divergences[0].id, 2u);
}

}  // namespace
}  // namespace mdseq
