#include "ts/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "gen/video.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  // diag(3, 1): eigenvalues 3, 1 with axis eigenvectors.
  std::vector<double> eigenvalues;
  std::vector<Point> eigenvectors;
  SymmetricEigen({3.0, 0.0, 0.0, 1.0}, 2, &eigenvalues, &eigenvectors);
  ASSERT_EQ(eigenvalues.size(), 2u);
  EXPECT_NEAR(eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eigenvalues[1], 1.0, 1e-12);
  EXPECT_NEAR(std::abs(eigenvectors[0][0]), 1.0, 1e-12);
  EXPECT_NEAR(eigenvectors[0][1], 0.0, 1e-12);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]]: eigenvalues 3 and 1, eigenvectors (1,1) and (1,-1).
  std::vector<double> eigenvalues;
  std::vector<Point> eigenvectors;
  SymmetricEigen({2.0, 1.0, 1.0, 2.0}, 2, &eigenvalues, &eigenvectors);
  EXPECT_NEAR(eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eigenvalues[1], 1.0, 1e-9);
  EXPECT_NEAR(std::abs(eigenvectors[0][0]), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(eigenvectors[0][0], eigenvectors[0][1], 1e-9);
}

TEST(SymmetricEigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(1);
  const size_t n = 6;
  // Random symmetric matrix.
  std::vector<double> m(n * n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = r; c < n; ++c) {
      m[r * n + c] = m[c * n + r] = rng.Uniform(-1.0, 1.0);
    }
  }
  std::vector<double> eigenvalues;
  std::vector<Point> eigenvectors;
  SymmetricEigen(m, n, &eigenvalues, &eigenvectors);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (size_t k = 0; k < n; ++k) {
        dot += eigenvectors[i][k] * eigenvectors[j][k];
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9) << i << "," << j;
    }
  }
  // A v = lambda v for each pair.
  for (size_t i = 0; i < n; ++i) {
    for (size_t r = 0; r < n; ++r) {
      double av = 0.0;
      for (size_t k = 0; k < n; ++k) {
        av += m[r * n + k] * eigenvectors[i][k];
      }
      EXPECT_NEAR(av, eigenvalues[i] * eigenvectors[i][r], 1e-8);
    }
  }
}

// A corpus whose points live (noisily) on a line: the first component must
// capture nearly all variance.
TEST(PcaTest, RecoversDominantDirection) {
  Rng rng(2);
  Sequence seq(3);
  for (int i = 0; i < 500; ++i) {
    const double t = rng.Uniform(-1.0, 1.0);
    seq.Append(Point{t + rng.Normal(0, 0.01), 2 * t + rng.Normal(0, 0.01),
                     -t + rng.Normal(0, 0.01)});
  }
  const PcaModel model = PcaModel::Fit({seq}, 1);
  ASSERT_EQ(model.output_dim(), 1u);
  // Direction proportional to (1, 2, -1)/sqrt(6): check via projection of
  // the direction itself.
  const Point p1 = model.Project(Point{1.0, 2.0, -1.0});
  const Point p0 = model.Project(Point{0.0, 0.0, 0.0});
  EXPECT_NEAR(std::abs(p1[0] - p0[0]), std::sqrt(6.0), 0.05);
  EXPECT_GT(model.explained_variance()[0], 0.5);
}

// The property that keeps MBR filtering correct on reduced sequences.
TEST(PcaTest, ProjectionIsAContraction) {
  Rng rng(3);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(GenerateVideoSequence(100, VideoOptions(), &rng));
  }
  for (size_t k : {1u, 2u, 3u}) {
    const PcaModel model = PcaModel::Fit(corpus, k);
    for (int trial = 0; trial < 100; ++trial) {
      const Point a{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      const Point b{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      EXPECT_LE(PointDistance(model.Project(a), model.Project(b)),
                PointDistance(a, b) + 1e-9)
          << "k=" << k;
    }
  }
}

TEST(PcaTest, FullRankProjectionPreservesDistances) {
  Rng rng(4);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateVideoSequence(200, VideoOptions(), &rng));
  const PcaModel model = PcaModel::Fit(corpus, 3);
  for (int trial = 0; trial < 50; ++trial) {
    const Point a{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    const Point b{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    EXPECT_NEAR(PointDistance(model.Project(a), model.Project(b)),
                PointDistance(a, b), 1e-9);
  }
}

TEST(PcaTest, ReconstructionInvertsFullRankProjection) {
  Rng rng(5);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateVideoSequence(150, VideoOptions(), &rng));
  const PcaModel model = PcaModel::Fit(corpus, 3);
  const Point p{0.3, 0.7, 0.2};
  const Point restored = model.Reconstruct(model.Project(p));
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(restored[k], p[k], 1e-9);
  }
}

TEST(PcaTest, ProjectSequencePreservesLength) {
  Rng rng(6);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateVideoSequence(80, VideoOptions(), &rng));
  const PcaModel model = PcaModel::Fit(corpus, 2);
  const Sequence projected = model.ProjectSequence(corpus[0].View());
  EXPECT_EQ(projected.size(), corpus[0].size());
  EXPECT_EQ(projected.dim(), 2u);
}

TEST(PcaTest, ExplainedVarianceIsDescending) {
  Rng rng(7);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 5; ++i) {
    corpus.push_back(GenerateVideoSequence(100, VideoOptions(), &rng));
  }
  const PcaModel model = PcaModel::Fit(corpus, 3);
  const auto& variance = model.explained_variance();
  ASSERT_EQ(variance.size(), 3u);
  EXPECT_GE(variance[0], variance[1]);
  EXPECT_GE(variance[1], variance[2]);
  EXPECT_GE(variance[2], 0.0);
}

}  // namespace
}  // namespace mdseq
