// Read-while-ingest churn: reader threads hammer Search/SearchVerified on
// a LiveDatabase while a writer ingests, commits, and checkpoints. Built
// with -DMDSEQ_SANITIZE=thread this is the TSan proof of the snapshot
// protocol; on any build it asserts snapshot *consistency* — a reader's
// match count for a fixed query is monotone non-decreasing (data only
// grows) and lands exactly on the offline result once the writer stops.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "gen/fractal.h"
#include "ingest/live_database.h"
#include "storage/disk_database.h"
#include "util/random.h"

namespace mdseq {
namespace {

class IngestChurnTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p :
         {live_, live_ + ".wal", live_ + ".wal.new", disk_}) {
      std::remove(p.c_str());
    }
  }
  std::string live_ = testing::TempDir() + "/ingest_churn_test.db";
  std::string disk_ = testing::TempDir() + "/ingest_churn_disk.db";
};

TEST_F(IngestChurnTest, ReadersSeeMonotoneConsistentSnapshots) {
  constexpr size_t kSequences = 30;
  constexpr size_t kReaders = 4;
  Rng rng(2024);
  std::vector<Sequence> corpus;
  for (size_t i = 0; i < kSequences; ++i) {
    corpus.push_back(GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(30, 80)), FractalOptions(),
        &rng));
  }
  const Sequence probe =
      GenerateFractalSequence(30, FractalOptions(), &rng);
  const double epsilon = 2.0;

  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());

  std::atomic<bool> stop{false};
  std::atomic<bool> writer_failed{false};
  std::vector<std::thread> readers;
  std::vector<size_t> reader_queries(kReaders, 0);
  std::vector<bool> reader_monotone(kReaders, true);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t last_matches = 0;
      size_t last_sequences = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const SearchResult result =
            (r % 2 == 0) ? live.Search(probe.View(), epsilon)
                         : live.SearchVerified(probe.View(), epsilon);
        const size_t sequences = live.num_sequences();
        // Data only grows, so both gauges are monotone per reader; a
        // regression would mean a snapshot exposed torn or rolled-back
        // state.
        if (result.matches.size() < last_matches ||
            sequences < last_sequences) {
          reader_monotone[r] = false;
        }
        last_matches = result.matches.size();
        last_sequences = sequences;
        ++reader_queries[r];
      }
    });
  }

  std::thread writer([&] {
    Rng wrng(7);
    for (size_t s = 0; s < corpus.size(); ++s) {
      const uint64_t id = live.BeginSequence();
      size_t offset = 0;
      while (offset < corpus[s].size()) {
        const size_t chunk = std::min<size_t>(
            static_cast<size_t>(wrng.UniformInt(1, 16)),
            corpus[s].size() - offset);
        if (!live.AppendPoints(
                id, corpus[s].View().Slice(offset, offset + chunk))) {
          writer_failed.store(true);
          return;
        }
        offset += chunk;
        if (wrng.Uniform() < 0.2 && !live.Commit()) {
          writer_failed.store(true);
          return;
        }
      }
      if (!live.SealSequence(id) || !live.Commit()) {
        writer_failed.store(true);
        return;
      }
      if (s % 7 == 6 && !live.Checkpoint()) {
        writer_failed.store(true);
        return;
      }
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  ASSERT_FALSE(writer_failed.load());
  for (size_t r = 0; r < kReaders; ++r) {
    EXPECT_TRUE(reader_monotone[r]) << "reader " << r;
    EXPECT_GT(reader_queries[r], 0u) << "reader " << r;
  }

  // Quiesced: the final snapshot must equal the offline pipeline exactly.
  SequenceDatabase memory(corpus[0].dim());
  for (const Sequence& s : corpus) memory.Add(s);
  ASSERT_TRUE(DiskDatabase::Save(memory, disk_));
  DiskDatabase reference(disk_, 128);
  ASSERT_TRUE(reference.valid());
  const SearchResult live_result = live.SearchVerified(probe.View(), epsilon);
  const SearchResult ref_result =
      reference.SearchVerified(probe.View(), epsilon);
  ASSERT_EQ(live_result.matches.size(), ref_result.matches.size());
  for (size_t i = 0; i < live_result.matches.size(); ++i) {
    EXPECT_EQ(live_result.matches[i].sequence_id,
              ref_result.matches[i].sequence_id);
    EXPECT_DOUBLE_EQ(live_result.matches[i].exact_distance,
                     ref_result.matches[i].exact_distance);
  }
}

// The engine-level version: queries and ingest batches share one worker
// pool; every future must resolve and the engine must shut down cleanly
// with ingest still arriving — the shape the serve-bench CLI runs.
TEST_F(IngestChurnTest, EngineServesQueriesWhileIngestBatchesLand) {
  Rng rng(99);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 12; ++i) {
    corpus.push_back(
        GenerateFractalSequence(50, FractalOptions(), &rng));
  }
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  // Seed a little data so early queries have something to chew on.
  {
    const uint64_t id = live.BeginSequence();
    ASSERT_TRUE(live.AppendPoints(id, corpus[0].View()));
    ASSERT_TRUE(live.SealSequence(id));
    ASSERT_TRUE(live.Commit());
  }
  EngineOptions options;
  options.num_threads = 3;
  options.max_pending_ingest = 2;
  QueryEngine engine(&live, options);

  std::vector<std::future<IngestOutcome>> ingest_futures;
  std::vector<std::future<QueryOutcome>> query_futures;
  QueryOptions qopts;
  qopts.epsilon = 1.5;
  qopts.verified = true;
  for (size_t s = 1; s < corpus.size(); ++s) {
    IngestBatch batch;
    IngestOp op;
    op.points = corpus[s];
    op.seal = true;
    batch.ops.push_back(std::move(op));
    batch.checkpoint = (s % 5 == 0);
    ingest_futures.push_back(engine.SubmitIngest(std::move(batch)));
    query_futures.push_back(engine.Submit(corpus[0], qopts));
  }
  uint64_t applied = 0;
  for (auto& f : ingest_futures) {
    const IngestOutcome outcome = f.get();
    // Back-pressure may reject some batches; whatever was accepted must
    // have been durably applied.
    if (!outcome.rejected) {
      EXPECT_TRUE(outcome.ok);
      ++applied;
    }
  }
  for (auto& f : query_futures) {
    const QueryOutcome outcome = f.get();
    EXPECT_EQ(outcome.status, QueryStatus::kOk);
  }
  engine.Shutdown();
  EXPECT_EQ(live.num_sequences(), 1 + applied);
}

}  // namespace
}  // namespace mdseq
