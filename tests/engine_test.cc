// Unit and stress tests for the concurrent query engine (src/engine):
// admission-queue overload policies, the thread-pool executor, the
// lock-free latency histogram, deadline/cancellation handling, and the
// headline guarantee — N threads hammering one shared database produce
// results bit-for-bit identical to the serial three-phase search.
//
// The whole binary carries the `tsan` ctest label; build with
// -DMDSEQ_SANITIZE=thread and run `ctest -L tsan` to prove the shared
// read path race-free.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/admission_queue.h"
#include "engine/cancellation.h"
#include "engine/latency_histogram.h"
#include "engine/query_engine.h"
#include "engine/thread_pool.h"
#include "eval/experiment.h"
#include "storage/disk_database.h"

namespace mdseq {
namespace {

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

TEST(AdmissionQueueTest, FifoOrder) {
  AdmissionQueue<int> queue(8, OverloadPolicy::kReject);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(queue.Push(i), AdmitResult::kAdmitted);
  }
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(AdmissionQueueTest, RejectPolicyRefusesWhenFull) {
  AdmissionQueue<int> queue(2, OverloadPolicy::kReject);
  EXPECT_EQ(queue.Push(1), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Push(2), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Push(3), AdmitResult::kRejected);
  EXPECT_EQ(queue.size(), 2u);
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);  // the rejected item never entered
  EXPECT_EQ(queue.Push(4), AdmitResult::kAdmitted);
}

TEST(AdmissionQueueTest, ShedOldestEvictsFront) {
  AdmissionQueue<int> queue(2, OverloadPolicy::kShedOldest);
  EXPECT_EQ(queue.Push(1), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Push(2), AdmitResult::kAdmitted);
  std::optional<int> shed;
  EXPECT_EQ(queue.Push(3, &shed), AdmitResult::kShed);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(*shed, 1);  // oldest out, newest in
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(AdmissionQueueTest, BlockPolicyWaitsForConsumer) {
  AdmissionQueue<int> queue(1, OverloadPolicy::kBlock);
  EXPECT_EQ(queue.Push(1), AdmitResult::kAdmitted);
  std::atomic<bool> second_admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(2), AdmitResult::kAdmitted);  // blocks until pop
    second_admitted.store(true);
  });
  // The producer must be parked, not spinning past the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_admitted.load());
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(second_admitted.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(AdmissionQueueTest, CloseDrainsThenStopsConsumers) {
  AdmissionQueue<int> queue(4, OverloadPolicy::kBlock);
  EXPECT_EQ(queue.Push(1), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Push(2), AdmitResult::kAdmitted);
  queue.Close();
  EXPECT_EQ(queue.Push(3), AdmitResult::kRejected);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

TEST(AdmissionQueueTest, CloseWakesBlockedProducer) {
  AdmissionQueue<int> queue(1, OverloadPolicy::kBlock);
  EXPECT_EQ(queue.Push(1), AdmitResult::kAdmitted);
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(2), AdmitResult::kRejected);  // woken by Close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  producer.join();
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, BucketMapping) {
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketOf(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketOf(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1023), 10u);
  EXPECT_EQ(LatencyHistogram::BucketOf(1024), 11u);
  EXPECT_EQ(LatencyHistogram::UpperBound(0), 0u);
  EXPECT_EQ(LatencyHistogram::UpperBound(10), 1023u);
}

TEST(LatencyHistogramTest, PercentilesAndStats) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.PercentileMicros(50.0), 0u);
  // 90 fast samples at ~10us, 10 slow at ~5000us.
  for (int i = 0; i < 90; ++i) hist.Record(10);
  for (int i = 0; i < 10; ++i) hist.Record(5000);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.MaxMicros(), 5000u);
  const uint64_t p50 = hist.PercentileMicros(50.0);
  const uint64_t p99 = hist.PercentileMicros(99.0);
  EXPECT_GE(p50, 10u);
  EXPECT_LT(p50, 32u);  // within the 2x bucket bound of 10us
  EXPECT_GE(p99, 5000u);
  EXPECT_LT(p99, 16384u);
  EXPECT_NEAR(hist.MeanMicros(), 0.9 * 10 + 0.1 * 5000, 1.0);
}

TEST(LatencyHistogramTest, EmptyAndSingleSampleAreExact) {
  LatencyHistogram hist;
  // Empty: every percentile is 0, not a bucket upper bound.
  EXPECT_EQ(hist.PercentileMicros(0.0), 0u);
  EXPECT_EQ(hist.PercentileMicros(50.0), 0u);
  EXPECT_EQ(hist.PercentileMicros(100.0), 0u);
  // One sample: every percentile is that sample (737 sits in the [512,1023]
  // bucket, whose upper bound 1023 would be the wrong answer).
  hist.Record(737);
  EXPECT_EQ(hist.PercentileMicros(0.0), 737u);
  EXPECT_EQ(hist.PercentileMicros(50.0), 737u);
  EXPECT_EQ(hist.PercentileMicros(99.0), 737u);
}

TEST(LatencyHistogramTest, PercentileClampedToRecordedMax) {
  LatencyHistogram hist;
  // Both samples land in the [512, 1023] bucket; without the max clamp any
  // percentile would report 1023.
  hist.Record(600);
  hist.Record(700);
  EXPECT_EQ(hist.PercentileMicros(99.0), 700u);
  EXPECT_LE(hist.PercentileMicros(50.0), 700u);
}

TEST(LatencyHistogramTest, ConcurrentRecord) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(i % 1000));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.MaxMicros(), 999u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryAdmittedTask) {
  ThreadPool::Options options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(options);
    for (int i = 0; i < 200; ++i) {
      PoolTask task;
      task.run = [&ran] { ran.fetch_add(1); };
      EXPECT_EQ(pool.Submit(std::move(task)), AdmitResult::kAdmitted);
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, ShedOldestRunsOnShedExactlyOnce) {
  ThreadPool::Options options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.policy = OverloadPolicy::kShedOldest;
  options.start_suspended = true;
  std::atomic<int> ran{0};
  std::atomic<int> shed{0};
  {
    ThreadPool pool(options);
    for (int i = 0; i < 5; ++i) {
      PoolTask task;
      task.run = [&ran] { ran.fetch_add(1); };
      task.on_shed = [&shed] { shed.fetch_add(1); };
      const AdmitResult result = pool.Submit(std::move(task));
      EXPECT_EQ(result,
                i < 2 ? AdmitResult::kAdmitted : AdmitResult::kShed);
    }
    pool.Start();
  }
  // 5 submissions into a depth-2 queue with a parked worker: 3 shed, 2 ran.
  EXPECT_EQ(ran.load() + shed.load(), 5);
  EXPECT_EQ(shed.load(), 3);
}

TEST(ThreadPoolTest, SuspendedWorkersDoNotConsumeUntilStart) {
  ThreadPool::Options options;
  options.num_threads = 2;
  options.queue_capacity = 16;
  options.start_suspended = true;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    PoolTask task;
    task.run = [&ran] { ran.fetch_add(1); };
    EXPECT_EQ(pool.Submit(std::move(task)), AdmitResult::kAdmitted);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(pool.queue_depth(), 4u);
  pool.Start();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 4);
}

// ---------------------------------------------------------------------------
// QueryEngine
// ---------------------------------------------------------------------------

Workload SmallWorkload(DataKind kind, uint64_t seed) {
  WorkloadConfig config;
  config.kind = kind;
  config.num_sequences = 120;
  config.min_length = 56;
  config.max_length = 256;
  config.num_queries = 24;
  config.seed = seed;
  return BuildWorkload(config);
}

void ExpectSameResult(const SearchResult& serial,
                      const SearchResult& concurrent) {
  ASSERT_EQ(serial.candidates.size(), concurrent.candidates.size());
  EXPECT_EQ(serial.candidates, concurrent.candidates);
  ASSERT_EQ(serial.matches.size(), concurrent.matches.size());
  for (size_t m = 0; m < serial.matches.size(); ++m) {
    const SequenceMatch& a = serial.matches[m];
    const SequenceMatch& b = concurrent.matches[m];
    EXPECT_EQ(a.sequence_id, b.sequence_id);
    // Bit-for-bit: the same code ran over the same inputs with no shared
    // mutable state, so even the floating-point results are identical.
    EXPECT_EQ(a.min_dnorm, b.min_dnorm);
    EXPECT_EQ(a.exact_distance, b.exact_distance);
    EXPECT_EQ(a.solution_interval, b.solution_interval);
  }
  EXPECT_EQ(serial.stats.node_accesses, concurrent.stats.node_accesses);
  EXPECT_EQ(serial.stats.phase2_candidates,
            concurrent.stats.phase2_candidates);
  EXPECT_EQ(serial.stats.phase3_matches, concurrent.stats.phase3_matches);
  EXPECT_EQ(serial.stats.dnorm_evaluations,
            concurrent.stats.dnorm_evaluations);
  EXPECT_FALSE(concurrent.interrupted);
}

// N submitter threads x M queries against one shared in-memory database,
// compared query-by-query against the serial path.
TEST(QueryEngineStressTest, MatchesSerialSearchInMemory) {
  const Workload workload = SmallWorkload(DataKind::kSynthetic, 7);
  const double epsilon = 0.15;

  SimilaritySearch serial(workload.database.get());
  std::vector<SearchResult> expected;
  expected.reserve(workload.queries.size());
  for (const Sequence& q : workload.queries) {
    expected.push_back(serial.Search(q.View(), epsilon));
  }

  EngineOptions options;
  options.num_threads = 8;
  options.queue_capacity = 256;
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = epsilon;

  constexpr int kRounds = 6;
  constexpr size_t kSubmitters = 4;
  std::vector<std::vector<QueryOutcome>> outcomes(kSubmitters);
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::future<QueryOutcome>> futures;
        futures.reserve(workload.queries.size());
        for (const Sequence& q : workload.queries) {
          futures.push_back(engine.Submit(q, query_options));
        }
        for (auto& f : futures) outcomes[s].push_back(f.get());
      }
    });
  }
  for (auto& t : submitters) t.join();

  for (size_t s = 0; s < kSubmitters; ++s) {
    ASSERT_EQ(outcomes[s].size(), kRounds * workload.queries.size());
    for (size_t i = 0; i < outcomes[s].size(); ++i) {
      const QueryOutcome& outcome = outcomes[s][i];
      ASSERT_EQ(outcome.status, QueryStatus::kOk);
      const SearchResult& want = expected[i % workload.queries.size()];
      ExpectSameResult(want, outcome.result);
    }
  }

  const EngineStats stats = engine.stats();
  const uint64_t total = kSubmitters * kRounds * workload.queries.size();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.served, total);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_GT(stats.node_accesses, 0u);
  EXPECT_GT(stats.dnorm_evaluations, 0u);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
}

// The same guarantee against the disk-resident database: concurrent
// readers share one buffer pool (and its latch) yet report exactly the
// serial candidates, matches, and per-query page counts.
TEST(QueryEngineStressTest, MatchesSerialSearchOnDisk) {
  const Workload workload = SmallWorkload(DataKind::kVideo, 11);
  const double epsilon = 0.12;
  const std::string path = ::testing::TempDir() + "/engine_stress.mdb";
  ASSERT_TRUE(DiskDatabase::Save(*workload.database, path));

  DiskDatabase disk(path, /*pool_pages=*/64);
  ASSERT_TRUE(disk.valid());

  std::vector<SearchResult> expected;
  for (const Sequence& q : workload.queries) {
    expected.push_back(disk.SearchVerified(q.View(), epsilon));
  }

  EngineOptions options;
  options.num_threads = 8;
  options.queue_capacity = 256;
  QueryEngine engine(&disk, options);

  QueryOptions query_options;
  query_options.epsilon = epsilon;
  query_options.verified = true;

  constexpr size_t kSubmitters = 4;
  std::vector<std::vector<QueryOutcome>> outcomes(kSubmitters);
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      std::vector<std::future<QueryOutcome>> futures;
      for (const Sequence& q : workload.queries) {
        futures.push_back(engine.Submit(q, query_options));
      }
      for (auto& f : futures) outcomes[s].push_back(f.get());
    });
  }
  for (auto& t : submitters) t.join();

  for (size_t s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < outcomes[s].size(); ++i) {
      ASSERT_EQ(outcomes[s][i].status, QueryStatus::kOk);
      ExpectSameResult(expected[i], outcomes[s][i].result);
    }
  }
}

TEST(QueryEngineTest, SubmitBatchFansOut) {
  const Workload workload = SmallWorkload(DataKind::kSynthetic, 3);
  EngineOptions options;
  options.num_threads = 4;
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto futures = engine.SubmitBatch(workload.queries, query_options);
  ASSERT_EQ(futures.size(), workload.queries.size());
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
  EXPECT_EQ(engine.stats().served, workload.queries.size());
}

TEST(QueryEngineTest, ExpiredDeadlineNeverRuns) {
  const Workload workload = SmallWorkload(DataKind::kSynthetic, 5);
  EngineOptions options;
  options.num_threads = 1;
  options.start_suspended = true;  // hold the query in the queue
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  query_options.deadline = std::chrono::microseconds(1);
  auto future = engine.Submit(workload.queries[0], query_options);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  engine.Start();

  const QueryOutcome outcome = future.get();
  EXPECT_EQ(outcome.status, QueryStatus::kDeadlineExpired);
  EXPECT_TRUE(outcome.result.candidates.empty());
  EXPECT_EQ(engine.stats().deadline_expired, 1u);
  EXPECT_EQ(engine.stats().served, 0u);
}

TEST(QueryEngineTest, CancelledWhileQueued) {
  const Workload workload = SmallWorkload(DataKind::kSynthetic, 5);
  EngineOptions options;
  options.num_threads = 1;
  options.start_suspended = true;
  QueryEngine engine(workload.database.get(), options);

  CancellationSource source;
  QueryOptions query_options;
  query_options.epsilon = 0.1;
  query_options.cancel = source.token();
  auto future = engine.Submit(workload.queries[0], query_options);
  source.Cancel();
  engine.Start();

  EXPECT_EQ(future.get().status, QueryStatus::kCancelled);
  EXPECT_EQ(engine.stats().cancelled, 1u);
}

TEST(QueryEngineTest, RejectPolicyOverflow) {
  const Workload workload = SmallWorkload(DataKind::kSynthetic, 9);
  EngineOptions options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  options.policy = OverloadPolicy::kReject;
  options.start_suspended = true;
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto f1 = engine.Submit(workload.queries[0], query_options);
  auto f2 = engine.Submit(workload.queries[1], query_options);
  auto f3 = engine.Submit(workload.queries[2], query_options);
  // The third was refused at the door and resolves before service starts.
  EXPECT_EQ(f3.get().status, QueryStatus::kRejected);
  engine.Start();
  EXPECT_EQ(f1.get().status, QueryStatus::kOk);
  EXPECT_EQ(f2.get().status, QueryStatus::kOk);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(QueryEngineTest, ShedOldestOverflow) {
  const Workload workload = SmallWorkload(DataKind::kSynthetic, 9);
  EngineOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.policy = OverloadPolicy::kShedOldest;
  options.start_suspended = true;
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto f1 = engine.Submit(workload.queries[0], query_options);
  auto f2 = engine.Submit(workload.queries[1], query_options);
  auto f3 = engine.Submit(workload.queries[2], query_options);
  // Each newcomer evicted its predecessor; only the newest survives.
  EXPECT_EQ(f1.get().status, QueryStatus::kShed);
  EXPECT_EQ(f2.get().status, QueryStatus::kShed);
  engine.Start();
  EXPECT_EQ(f3.get().status, QueryStatus::kOk);
  EXPECT_EQ(engine.stats().shed, 2u);
  EXPECT_EQ(engine.stats().served, 1u);
}

TEST(QueryEngineTest, ShutdownCompletesAdmittedQueries) {
  const Workload workload = SmallWorkload(DataKind::kSynthetic, 13);
  EngineOptions options;
  options.num_threads = 2;
  auto engine = std::make_unique<QueryEngine>(workload.database.get(),
                                              options);
  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto futures = engine->SubmitBatch(workload.queries, query_options);
  engine.reset();  // shutdown drains: every future must resolve kOk
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
}

}  // namespace
}  // namespace mdseq
