#include "storage/disk_database.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "gen/video.h"
#include "util/random.h"

namespace mdseq {
namespace {

class DiskDatabaseTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  // Builds an in-memory database + corpus, saves it to disk.
  void BuildAndSave(size_t count, uint64_t seed, bool video = false) {
    Rng rng(seed);
    memory_ = std::make_unique<SequenceDatabase>(3);
    for (size_t i = 0; i < count; ++i) {
      const size_t length = static_cast<size_t>(rng.UniformInt(56, 300));
      corpus_.push_back(
          video ? GenerateVideoSequence(length, VideoOptions(), &rng)
                : GenerateFractalSequence(length, FractalOptions(), &rng));
      memory_->Add(corpus_.back());
    }
    ASSERT_TRUE(DiskDatabase::Save(*memory_, path_));
  }

  std::string path_ = testing::TempDir() + "/disk_database_test.db";
  std::vector<Sequence> corpus_;
  std::unique_ptr<SequenceDatabase> memory_;
};

TEST_F(DiskDatabaseTest, OpensWithCorrectCatalog) {
  BuildAndSave(25, 1);
  DiskDatabase disk(path_, /*pool_pages=*/64);
  ASSERT_TRUE(disk.valid());
  EXPECT_EQ(disk.dim(), 3u);
  EXPECT_EQ(disk.num_sequences(), 25u);
}

TEST_F(DiskDatabaseTest, ReadSequenceRoundTrips) {
  BuildAndSave(10, 2);
  DiskDatabase disk(path_, 64);
  ASSERT_TRUE(disk.valid());
  for (size_t id = 0; id < corpus_.size(); ++id) {
    const auto loaded = disk.ReadSequence(id);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->data(), corpus_[id].data());
  }
}

TEST_F(DiskDatabaseTest, SearchMatchesInMemoryEngineExactly) {
  BuildAndSave(40, 3);
  DiskDatabase disk(path_, 128);
  ASSERT_TRUE(disk.valid());
  SimilaritySearch memory_engine(memory_.get());

  Rng rng(30);
  QueryWorkloadOptions query_options;
  query_options.noise = 0.03;
  for (int trial = 0; trial < 5; ++trial) {
    const Sequence query = DrawQuery(corpus_, query_options, &rng);
    for (double epsilon : {0.05, 0.2}) {
      const SearchResult mem = memory_engine.Search(query.View(), epsilon);
      const SearchResult dsk = disk.Search(query.View(), epsilon);
      EXPECT_EQ(dsk.candidates, mem.candidates);
      ASSERT_EQ(dsk.matches.size(), mem.matches.size());
      for (size_t i = 0; i < mem.matches.size(); ++i) {
        EXPECT_EQ(dsk.matches[i].sequence_id, mem.matches[i].sequence_id);
        EXPECT_DOUBLE_EQ(dsk.matches[i].min_dnorm,
                         mem.matches[i].min_dnorm);
        EXPECT_EQ(dsk.matches[i].solution_interval,
                  mem.matches[i].solution_interval);
      }
    }
  }
}

TEST_F(DiskDatabaseTest, SearchVerifiedMatchesScanGroundTruth) {
  BuildAndSave(30, 4, /*video=*/true);
  DiskDatabase disk(path_, 128);
  ASSERT_TRUE(disk.valid());
  SequentialScan scan(memory_.get());

  Rng rng(31);
  QueryWorkloadOptions query_options;
  query_options.noise = 0.02;
  const Sequence query = DrawQuery(corpus_, query_options, &rng);
  const double epsilon = 0.1;
  const SearchResult verified = disk.SearchVerified(query.View(), epsilon);
  const std::vector<ScanMatch> truth = scan.Search(query.View(), epsilon);
  ASSERT_EQ(verified.matches.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(verified.matches[i].sequence_id, truth[i].sequence_id);
    EXPECT_DOUBLE_EQ(verified.matches[i].exact_distance, truth[i].distance);
    EXPECT_EQ(verified.matches[i].solution_interval,
              truth[i].solution_interval);
  }
}

TEST_F(DiskDatabaseTest, QueriesCostPageMisses) {
  BuildAndSave(40, 5);
  DiskDatabase disk(path_, 16);  // small pool: re-reads miss
  ASSERT_TRUE(disk.valid());
  Rng rng(32);
  const Sequence query = DrawQuery(corpus_, QueryWorkloadOptions(), &rng);
  disk.mutable_pool()->ResetStats();
  const SearchResult result = disk.SearchVerified(query.View(), 0.15);
  EXPECT_GT(disk.pool().misses(), 0u);
  EXPECT_GT(result.stats.node_accesses, 0u);
}

TEST_F(DiskDatabaseTest, OpeningGarbageFileIsInvalid) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    std::fclose(f);
  }
  DiskDatabase disk(path_, 8);
  EXPECT_FALSE(disk.valid());
}

TEST_F(DiskDatabaseTest, CompositeOptionAppliesOnDiskToo) {
  BuildAndSave(40, 6);
  SearchOptions composite;
  composite.composite_bound = true;
  DiskDatabase strict(path_, 128, composite);
  DiskDatabase loose(path_, 128);
  ASSERT_TRUE(strict.valid() && loose.valid());
  Rng rng(33);
  const Sequence query = DrawQuery(corpus_, QueryWorkloadOptions(), &rng);
  const SearchResult a = strict.Search(query.View(), 0.3);
  const SearchResult b = loose.Search(query.View(), 0.3);
  EXPECT_LE(a.matches.size(), b.matches.size());
}

}  // namespace
}  // namespace mdseq
