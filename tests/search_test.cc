#include "core/search.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "core/distance.h"
#include "eval/metrics.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "gen/video.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(MergeIntervalsTest, EmptyAndSingle) {
  std::vector<Interval> v;
  MergeIntervals(&v);
  EXPECT_TRUE(v.empty());
  v = {{3, 7}};
  MergeIntervals(&v);
  EXPECT_EQ(v, (std::vector<Interval>{{3, 7}}));
}

TEST(MergeIntervalsTest, MergesOverlappingAndAdjacent) {
  std::vector<Interval> v = {{5, 9}, {0, 3}, {2, 6}, {9, 12}, {20, 25}};
  MergeIntervals(&v);
  EXPECT_EQ(v, (std::vector<Interval>{{0, 12}, {20, 25}}));
}

TEST(MergeIntervalsTest, KeepsDisjointSorted) {
  std::vector<Interval> v = {{10, 12}, {0, 2}, {5, 7}};
  MergeIntervals(&v);
  EXPECT_EQ(v, (std::vector<Interval>{{0, 2}, {5, 7}, {10, 12}}));
}

TEST(MergeIntervalsTest, ContainedIntervalsCollapse) {
  std::vector<Interval> v = {{0, 10}, {2, 4}, {5, 10}};
  MergeIntervals(&v);
  EXPECT_EQ(v, (std::vector<Interval>{{0, 10}}));
}

TEST(CoveredPointsTest, SumsLengths) {
  EXPECT_EQ(CoveredPoints({}), 0u);
  EXPECT_EQ(CoveredPoints({{0, 4}, {10, 11}}), 5u);
}

class SearchEngineTest : public ::testing::Test {
 protected:
  // A small database of fractal sequences plus the raw corpus.
  void BuildDatabase(size_t count, uint64_t seed,
                     DatabaseOptions options = DatabaseOptions()) {
    Rng rng(seed);
    database_ = std::make_unique<SequenceDatabase>(3, options);
    FractalOptions gen;
    for (size_t i = 0; i < count; ++i) {
      const size_t length = static_cast<size_t>(rng.UniformInt(56, 300));
      corpus_.push_back(GenerateFractalSequence(length, gen, &rng));
      database_->Add(corpus_.back());
    }
  }

  std::vector<Sequence> corpus_;
  std::unique_ptr<SequenceDatabase> database_;
};

TEST_F(SearchEngineTest, ExactSubsequenceIsAlwaysFound) {
  BuildDatabase(30, 21);
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t id = static_cast<size_t>(rng.UniformInt(0, 29));
    const Sequence& source = corpus_[id];
    const size_t len = std::min<size_t>(40, source.size());
    const size_t offset = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(source.size() - len)));
    const Sequence query = source.Slice(offset, offset + len).Materialize();

    SimilaritySearch engine(database_.get());
    const SearchResult result = engine.Search(query.View(), 0.01);
    const bool found = std::any_of(
        result.matches.begin(), result.matches.end(),
        [&](const SequenceMatch& m) { return m.sequence_id == id; });
    EXPECT_TRUE(found) << "trial " << trial << " id " << id;
  }
}

// The central correctness property (Lemmas 1-3): no false dismissal at the
// sequence level — every sequence within the threshold appears both among
// the Phase-2 candidates and the Phase-3 matches.
TEST_F(SearchEngineTest, NoFalseDismissalVersusExactScan) {
  BuildDatabase(60, 22);
  Rng rng(55);
  QueryWorkloadOptions query_options;
  query_options.min_length = 16;
  query_options.max_length = 100;
  query_options.noise = 0.05;
  SimilaritySearch engine(database_.get());
  SequentialScan scan(database_.get());

  for (int trial = 0; trial < 8; ++trial) {
    const Sequence query = DrawQuery(corpus_, query_options, &rng);
    for (double epsilon : {0.05, 0.15, 0.30}) {
      const SearchResult result = engine.Search(query.View(), epsilon);
      const std::vector<ScanMatch> exact = scan.Search(query.View(),
                                                       epsilon);
      const std::set<size_t> candidates(result.candidates.begin(),
                                        result.candidates.end());
      std::set<size_t> matched;
      for (const SequenceMatch& m : result.matches) {
        matched.insert(m.sequence_id);
      }
      for (const ScanMatch& truth : exact) {
        EXPECT_TRUE(candidates.count(truth.sequence_id))
            << "phase 2 dismissed sequence " << truth.sequence_id
            << " at eps " << epsilon;
        EXPECT_TRUE(matched.count(truth.sequence_id))
            << "phase 3 dismissed sequence " << truth.sequence_id
            << " at eps " << epsilon;
      }
      // Phase 3 never widens phase 2 (ASnorm subset of ASmbr).
      EXPECT_LE(result.matches.size(), result.candidates.size());
    }
  }
}

TEST_F(SearchEngineTest, MinDnormLowerBoundsExactDistance) {
  BuildDatabase(40, 23);
  Rng rng(56);
  QueryWorkloadOptions query_options;
  query_options.noise = 0.1;
  const Sequence query = DrawQuery(corpus_, query_options, &rng);
  SimilaritySearch engine(database_.get());
  const SearchResult result = engine.Search(query.View(), 0.4);
  for (const SequenceMatch& match : result.matches) {
    const double exact = SequenceDistance(
        query.View(), database_->sequence(match.sequence_id).View());
    EXPECT_LE(match.min_dnorm, exact + 1e-9);
  }
}

TEST_F(SearchEngineTest, SolutionIntervalsCoverExactIntervals) {
  // Recall property on which the paper reports 98-100%: here we verify the
  // (stronger) guarantee on windows *fully contained* in qualifying Dnorm
  // spans implicitly, by checking aggregate recall is high.
  BuildDatabase(50, 24);
  Rng rng(57);
  QueryWorkloadOptions query_options;
  query_options.min_length = 24;
  query_options.max_length = 64;
  SimilaritySearch engine(database_.get());

  size_t scan_points = 0;
  size_t covered = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Sequence query = DrawQuery(corpus_, query_options, &rng);
    const double epsilon = 0.15;
    const SearchResult result = engine.Search(query.View(), epsilon);
    for (const SequenceMatch& match : result.matches) {
      const std::vector<Interval> exact = ExactSolutionInterval(
          query.View(), database_->sequence(match.sequence_id).View(),
          epsilon);
      scan_points += CoveredPoints(exact);
      covered += IntervalIntersectionSize(exact, match.solution_interval);
    }
  }
  ASSERT_GT(scan_points, 0u);
  EXPECT_GE(static_cast<double>(covered) / scan_points, 0.95);
}

TEST_F(SearchEngineTest, SolutionIntervalsAreMergedAndInBounds) {
  BuildDatabase(40, 25);
  Rng rng(58);
  QueryWorkloadOptions query_options;
  const Sequence query = DrawQuery(corpus_, query_options, &rng);
  SimilaritySearch engine(database_.get());
  const SearchResult result = engine.Search(query.View(), 0.25);
  for (const SequenceMatch& match : result.matches) {
    const size_t length = database_->sequence(match.sequence_id).size();
    ASSERT_FALSE(match.solution_interval.empty());
    size_t previous_end = 0;
    for (size_t i = 0; i < match.solution_interval.size(); ++i) {
      const Interval& iv = match.solution_interval[i];
      EXPECT_LT(iv.begin, iv.end);
      EXPECT_LE(iv.end, length);
      if (i > 0) {
        EXPECT_GT(iv.begin, previous_end);  // disjoint, ascending
      }
      previous_end = iv.end;
    }
  }
}

TEST_F(SearchEngineTest, LongQueriesAreSupported) {
  // Data sequences of <= 300 points; query of 400 points. Definition 3
  // swaps roles: the engine must find sequences similar to query
  // subsequences, with no false dismissal.
  BuildDatabase(40, 26);
  Rng rng(59);
  // Make the query an extension of a stored sequence so a true match
  // exists.
  const Sequence& source = corpus_[5];
  Sequence query(3);
  query.Extend(source.View());
  FractalOptions gen;
  const Sequence padding = GenerateFractalSequence(
      400 - std::min<size_t>(400, source.size()), gen, &rng);
  query.Extend(padding.View());
  ASSERT_GT(query.size(), 300u);

  SimilaritySearch engine(database_.get());
  SequentialScan scan(database_.get());
  const double epsilon = 0.1;
  const SearchResult result = engine.Search(query.View(), epsilon);
  const std::vector<ScanMatch> exact = scan.Search(query.View(), epsilon);
  ASSERT_FALSE(exact.empty());
  std::set<size_t> matched;
  for (const SequenceMatch& m : result.matches) matched.insert(m.sequence_id);
  for (const ScanMatch& truth : exact) {
    EXPECT_TRUE(matched.count(truth.sequence_id))
        << "long query dismissed sequence " << truth.sequence_id;
  }
}

TEST_F(SearchEngineTest, LinearIndexBackendGivesSameCandidates) {
  DatabaseOptions linear;
  linear.index_kind = DatabaseOptions::IndexKind::kLinear;
  BuildDatabase(30, 27, linear);

  SequenceDatabase rstar_db(3);
  for (const Sequence& s : corpus_) rstar_db.Add(s);

  Rng rng(60);
  QueryWorkloadOptions query_options;
  const Sequence query = DrawQuery(corpus_, query_options, &rng);

  SimilaritySearch linear_engine(database_.get());
  SimilaritySearch rstar_engine(&rstar_db);
  for (double epsilon : {0.05, 0.2}) {
    EXPECT_EQ(linear_engine.SearchCandidates(query.View(), epsilon),
              rstar_engine.SearchCandidates(query.View(), epsilon));
  }
}

TEST_F(SearchEngineTest, SearchVerifiedEqualsSequentialScan) {
  BuildDatabase(50, 31);
  Rng rng(62);
  QueryWorkloadOptions query_options;
  query_options.noise = 0.03;
  SimilaritySearch engine(database_.get());
  SequentialScan scan(database_.get());
  for (int trial = 0; trial < 5; ++trial) {
    const Sequence query = DrawQuery(corpus_, query_options, &rng);
    for (double epsilon : {0.05, 0.2}) {
      const SearchResult verified =
          engine.SearchVerified(query.View(), epsilon);
      const std::vector<ScanMatch> exact = scan.Search(query.View(),
                                                       epsilon);
      ASSERT_EQ(verified.matches.size(), exact.size());
      for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(verified.matches[i].sequence_id, exact[i].sequence_id);
        EXPECT_DOUBLE_EQ(verified.matches[i].exact_distance,
                         exact[i].distance);
        EXPECT_EQ(verified.matches[i].solution_interval,
                  exact[i].solution_interval);
      }
    }
  }
}

TEST_F(SearchEngineTest, CompositeBoundKeepsNoFalseDismissal) {
  BuildDatabase(60, 33);
  Rng rng(63);
  QueryWorkloadOptions query_options;
  query_options.noise = 0.05;
  SearchOptions composite;
  composite.composite_bound = true;
  SimilaritySearch paper_engine(database_.get());
  SimilaritySearch composite_engine(database_.get(), composite);
  SequentialScan scan(database_.get());

  for (int trial = 0; trial < 6; ++trial) {
    const Sequence query = DrawQuery(corpus_, query_options, &rng);
    for (double epsilon : {0.05, 0.2, 0.4}) {
      const SearchResult paper = paper_engine.Search(query.View(), epsilon);
      const SearchResult tighter =
          composite_engine.Search(query.View(), epsilon);
      // The composite bound only removes matches, never adds.
      EXPECT_LE(tighter.matches.size(), paper.matches.size());
      // ... and never a truly relevant one.
      std::set<size_t> matched;
      for (const SequenceMatch& m : tighter.matches) {
        matched.insert(m.sequence_id);
      }
      for (const ScanMatch& truth : scan.Search(query.View(), epsilon)) {
        EXPECT_TRUE(matched.count(truth.sequence_id))
            << "composite bound dismissed sequence " << truth.sequence_id;
      }
    }
  }
}

TEST_F(SearchEngineTest, SearchNearestMatchesBruteForceTopK) {
  BuildDatabase(40, 34);
  Rng rng(64);
  const Sequence query = DrawQuery(corpus_, QueryWorkloadOptions(), &rng);
  SimilaritySearch engine(database_.get());

  std::vector<std::pair<double, size_t>> truth;
  for (size_t id = 0; id < corpus_.size(); ++id) {
    truth.emplace_back(
        SequenceDistance(query.View(), corpus_[id].View()), id);
  }
  std::sort(truth.begin(), truth.end());

  for (size_t k : {1u, 3u, 10u}) {
    const std::vector<SequenceMatch> nearest =
        engine.SearchNearest(query.View(), k);
    ASSERT_EQ(nearest.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(nearest[i].sequence_id, truth[i].second) << "k=" << k;
      EXPECT_NEAR(nearest[i].exact_distance, truth[i].first, 1e-12);
    }
  }
  // k larger than the database returns everything.
  EXPECT_EQ(engine.SearchNearest(query.View(), 1000).size(), corpus_.size());
  EXPECT_TRUE(engine.SearchNearest(query.View(), 0).empty());
}

TEST_F(SearchEngineTest, PlainSearchLeavesExactDistanceUnset) {
  BuildDatabase(10, 32);
  const Sequence query = corpus_[0].Slice(0, 20).Materialize();
  SimilaritySearch engine(database_.get());
  const SearchResult result = engine.Search(query.View(), 0.2);
  ASSERT_FALSE(result.matches.empty());
  for (const SequenceMatch& m : result.matches) {
    EXPECT_EQ(m.exact_distance, -1.0);
  }
}

TEST_F(SearchEngineTest, ZeroEpsilonFindsOnlyExactContainment) {
  BuildDatabase(20, 28);
  const Sequence query = corpus_[3].Slice(10, 30).Materialize();
  SimilaritySearch engine(database_.get());
  const SearchResult result = engine.Search(query.View(), 0.0);
  bool found = false;
  for (const SequenceMatch& m : result.matches) {
    if (m.sequence_id == 3) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(SearchEngineTest, StatsAreFilled) {
  BuildDatabase(30, 29);
  Rng rng(61);
  const Sequence query = DrawQuery(corpus_, QueryWorkloadOptions(), &rng);
  SimilaritySearch engine(database_.get());
  const SearchResult result = engine.Search(query.View(), 0.2);
  EXPECT_GT(result.stats.node_accesses, 0u);
  EXPECT_EQ(result.stats.phase2_candidates, result.candidates.size());
  EXPECT_EQ(result.stats.phase3_matches, result.matches.size());
  if (!result.candidates.empty()) {
    EXPECT_GT(result.stats.dnorm_evaluations, 0u);
  }
}

}  // namespace
}  // namespace mdseq
