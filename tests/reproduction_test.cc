// Regression tests pinning the *shapes* of the paper's evaluation (Section
// 4) at a reduced scale, so a change that silently breaks the reproduction
// fails CI rather than only showing up in the benchmark output:
//   - pruning rates sit in a high band and decrease with the threshold,
//   - Dnorm prunes at least as well as Dmbr at every threshold,
//   - solution-interval recall stays near 1,
//   - the method beats the sequential scan.
// Scale is ~1/8 of the paper's (seeded, deterministic), so bands are
// slightly looser than EXPERIMENTS.md reports at full scale.

#include <gtest/gtest.h>

#include "eval/experiment.h"

namespace mdseq {
namespace {

WorkloadConfig SmallPaperConfig(DataKind kind) {
  WorkloadConfig config;
  config.kind = kind;
  config.num_sequences = 200;
  config.min_length = 56;
  config.max_length = 512;
  config.num_queries = 8;
  config.query.min_length = 24;
  config.query.max_length = 64;
  config.seed = 42;
  return config;
}

class ReproductionTest : public ::testing::TestWithParam<DataKind> {};

TEST_P(ReproductionTest, PruningAndIntervalShapesHold) {
  const Workload workload = BuildWorkload(SmallPaperConfig(GetParam()));
  SweepOptions options;
  options.measure_time = false;
  options.evaluate_intervals = true;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, PaperEpsilons(), options);
  ASSERT_EQ(rows.size(), 10u);

  for (const SweepRow& row : rows) {
    // Figures 6-7 band (loosened for the reduced scale).
    EXPECT_GE(row.pr_dmbr, 0.45) << "eps " << row.epsilon;
    EXPECT_LE(row.pr_dmbr, 1.0);
    // Dnorm never prunes less than Dmbr (Lemma 3 makes it a larger bound).
    EXPECT_GE(row.pr_dnorm, row.pr_dmbr - 1e-9) << "eps " << row.epsilon;
    // Figures 8-9: the approximated interval covers nearly all of the
    // exact one (paper: 98-100%).
    EXPECT_GE(row.recall, 0.90) << "eps " << row.epsilon;
    // ... while pruning a substantial portion of the selected sequences.
    EXPECT_GE(row.pr_si, 0.40) << "eps " << row.epsilon;
    // No false dismissal at the sequence level, ever.
    EXPECT_GE(row.avg_candidates, row.avg_relevant - 1e-9);
    EXPECT_GE(row.avg_matches, row.avg_relevant - 1e-9);
  }

  // Monotone-ish decline: the tightest threshold prunes strictly better
  // than the loosest (the paper's curves fall from left to right).
  EXPECT_GT(rows.front().pr_dmbr, rows.back().pr_dmbr);
  EXPECT_GT(rows.front().pr_dnorm, rows.back().pr_dnorm);
  // Selectivity grows with the threshold.
  EXPECT_LT(rows.front().avg_relevant, rows.back().avg_relevant);
  EXPECT_LT(rows.front().avg_candidates, rows.back().avg_candidates);
}

TEST_P(ReproductionTest, MethodBeatsSequentialScan) {
  // Figure 10's qualitative claim at reduced scale: the filter phases are
  // far cheaper than the exact scan at a selective threshold.
  WorkloadConfig config = SmallPaperConfig(GetParam());
  config.num_queries = 4;
  const Workload workload = BuildWorkload(config);
  SweepOptions options;
  options.measure_time = true;
  options.evaluate_intervals = false;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, {0.10}, options);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].time_ratio, 2.0);
}

INSTANTIATE_TEST_SUITE_P(PaperWorkloads, ReproductionTest,
                         ::testing::Values(DataKind::kSynthetic,
                                           DataKind::kVideo),
                         [](const ::testing::TestParamInfo<DataKind>& info) {
                           return info.param == DataKind::kSynthetic
                                      ? "Synthetic"
                                      : "Video";
                         });

}  // namespace
}  // namespace mdseq
