#include "index/rstar_tree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "index/linear_index.h"
#include "util/random.h"

namespace mdseq {
namespace {

Mbr RandomBox(Rng* rng, size_t dim, double max_side = 0.1) {
  Point low(dim);
  Point high(dim);
  for (size_t k = 0; k < dim; ++k) {
    low[k] = rng->Uniform();
    high[k] = low[k] + rng->Uniform() * max_side;
  }
  return Mbr(std::move(low), std::move(high));
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(RStarTreeTest, EmptyTreeQueriesReturnNothing) {
  RStarTree tree(2);
  std::vector<uint64_t> out;
  tree.RangeSearch(Mbr(Point{0.0, 0.0}, Point{1.0, 1.0}), 0.5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, SingleInsertIsFound) {
  RStarTree tree(2);
  const Mbr box(Point{0.4, 0.4}, Point{0.5, 0.5});
  tree.Insert(box, 7);
  std::vector<uint64_t> out;
  tree.RangeSearch(box, 0.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, OptionsForFanoutFollowBeckmannRecommendations) {
  const RStarTreeOptions o = RStarTreeOptions::ForFanout(50);
  EXPECT_EQ(o.max_entries, 50u);
  EXPECT_EQ(o.min_entries, 20u);       // 40%
  EXPECT_EQ(o.reinsert_entries, 15u);  // 30%
}

TEST(RStarTreeTest, GrowsAndKeepsInvariantsUnderManyInserts) {
  Rng rng(1);
  RStarTree tree(3, RStarTreeOptions::ForFanout(8));
  for (uint64_t i = 0; i < 500; ++i) {
    tree.Insert(RandomBox(&rng, 3), i);
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GT(tree.height(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, RangeSearchMatchesBruteForce) {
  Rng rng(2);
  const size_t dim = 3;
  RStarTree tree(dim, RStarTreeOptions::ForFanout(8));
  std::vector<IndexEntry> reference;
  for (uint64_t i = 0; i < 400; ++i) {
    const Mbr box = RandomBox(&rng, dim);
    tree.Insert(box, i);
    reference.push_back(IndexEntry{box, i});
  }
  for (int trial = 0; trial < 50; ++trial) {
    const Mbr query = RandomBox(&rng, dim, 0.3);
    const double epsilon = rng.Uniform() * 0.4;
    const double eps2 = epsilon * epsilon;
    std::vector<uint64_t> expected;
    for (const IndexEntry& e : reference) {
      if (query.MinDist2(e.mbr) <= eps2) expected.push_back(e.value);
    }
    std::vector<uint64_t> actual;
    tree.RangeSearch(query, epsilon, &actual);
    EXPECT_EQ(Sorted(std::move(actual)), expected) << "trial " << trial;
  }
}

TEST(RStarTreeTest, IntersectSearchMatchesBruteForce) {
  Rng rng(3);
  RStarTree tree(2, RStarTreeOptions::ForFanout(6));
  std::vector<IndexEntry> reference;
  for (uint64_t i = 0; i < 300; ++i) {
    const Mbr box = RandomBox(&rng, 2);
    tree.Insert(box, i);
    reference.push_back(IndexEntry{box, i});
  }
  for (int trial = 0; trial < 30; ++trial) {
    const Mbr query = RandomBox(&rng, 2, 0.4);
    std::vector<uint64_t> expected;
    for (const IndexEntry& e : reference) {
      if (query.Intersects(e.mbr)) expected.push_back(e.value);
    }
    std::vector<uint64_t> actual;
    tree.IntersectSearch(query, &actual);
    EXPECT_EQ(Sorted(std::move(actual)), expected);
  }
}

TEST(RStarTreeTest, DuplicateBoxesAreAllRetained) {
  RStarTree tree(2, RStarTreeOptions::ForFanout(4));
  const Mbr box(Point{0.5, 0.5}, Point{0.6, 0.6});
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(box, i);
  std::vector<uint64_t> out;
  tree.RangeSearch(box, 0.0, &out);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, RemoveDeletesExactlyOneEntry) {
  Rng rng(4);
  RStarTree tree(2, RStarTreeOptions::ForFanout(6));
  std::vector<IndexEntry> entries;
  for (uint64_t i = 0; i < 200; ++i) {
    const Mbr box = RandomBox(&rng, 2);
    tree.Insert(box, i);
    entries.push_back(IndexEntry{box, i});
  }
  // Remove half, verify the rest remain findable and invariants hold.
  for (size_t i = 0; i < entries.size(); i += 2) {
    EXPECT_TRUE(tree.Remove(entries[i].mbr, entries[i].value)) << i;
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
  for (size_t i = 0; i < entries.size(); ++i) {
    std::vector<uint64_t> out;
    tree.RangeSearch(entries[i].mbr, 0.0, &out);
    const bool found =
        std::find(out.begin(), out.end(), entries[i].value) != out.end();
    EXPECT_EQ(found, i % 2 == 1) << "entry " << i;
  }
}

TEST(RStarTreeTest, RemoveMissingEntryReturnsFalse) {
  RStarTree tree(2);
  tree.Insert(Mbr(Point{0.1, 0.1}, Point{0.2, 0.2}), 1);
  EXPECT_FALSE(tree.Remove(Mbr(Point{0.1, 0.1}, Point{0.2, 0.2}), 2));
  EXPECT_FALSE(tree.Remove(Mbr(Point{0.3, 0.3}, Point{0.4, 0.4}), 1));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RStarTreeTest, RemoveEverythingLeavesEmptyValidTree) {
  Rng rng(5);
  RStarTree tree(2, RStarTreeOptions::ForFanout(4));
  std::vector<IndexEntry> entries;
  for (uint64_t i = 0; i < 120; ++i) {
    const Mbr box = RandomBox(&rng, 2);
    tree.Insert(box, i);
    entries.push_back(IndexEntry{box, i});
  }
  std::shuffle(entries.begin(), entries.end(), rng.engine());
  for (const IndexEntry& e : entries) {
    ASSERT_TRUE(tree.Remove(e.mbr, e.value));
    ASSERT_TRUE(tree.CheckInvariants());
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
}

TEST(RStarTreeTest, NodeAccessCountingAndReset) {
  Rng rng(6);
  RStarTree tree(2, RStarTreeOptions::ForFanout(8));
  for (uint64_t i = 0; i < 300; ++i) tree.Insert(RandomBox(&rng, 2), i);
  EXPECT_EQ(tree.node_accesses(), 0u);
  std::vector<uint64_t> out;
  tree.RangeSearch(RandomBox(&rng, 2, 0.2), 0.1, &out);
  EXPECT_GT(tree.node_accesses(), 0u);
  tree.ResetNodeAccesses();
  EXPECT_EQ(tree.node_accesses(), 0u);
}

TEST(RStarTreeTest, SelectiveQueryTouchesFewerNodesThanFullScanWould) {
  Rng rng(7);
  RStarTree tree(3, RStarTreeOptions::ForFanout(16));
  for (uint64_t i = 0; i < 2000; ++i) {
    tree.Insert(RandomBox(&rng, 3, 0.02), i);
  }
  tree.ResetNodeAccesses();
  std::vector<uint64_t> out;
  tree.RangeSearch(Mbr(Point{0.1, 0.1, 0.1}, Point{0.12, 0.12, 0.12}), 0.01,
                   &out);
  EXPECT_LT(tree.node_accesses(), tree.node_count() / 2);
}

TEST(RStarTreeTest, BulkLoadMatchesInsertResults) {
  Rng rng(8);
  const size_t dim = 3;
  std::vector<IndexEntry> entries;
  for (uint64_t i = 0; i < 700; ++i) {
    entries.push_back(IndexEntry{RandomBox(&rng, dim), i});
  }
  RStarTree inserted(dim, RStarTreeOptions::ForFanout(8));
  for (const IndexEntry& e : entries) inserted.Insert(e.mbr, e.value);
  RStarTree bulk = RStarTree::BulkLoad(dim, entries,
                                       RStarTreeOptions::ForFanout(8));
  EXPECT_EQ(bulk.size(), 700u);
  EXPECT_TRUE(bulk.CheckInvariants());
  for (int trial = 0; trial < 25; ++trial) {
    const Mbr query = RandomBox(&rng, dim, 0.3);
    const double epsilon = rng.Uniform() * 0.3;
    std::vector<uint64_t> a;
    std::vector<uint64_t> b;
    inserted.RangeSearch(query, epsilon, &a);
    bulk.RangeSearch(query, epsilon, &b);
    EXPECT_EQ(Sorted(std::move(a)), Sorted(std::move(b)));
  }
}

TEST(RStarTreeTest, BulkLoadEmptyAndTiny) {
  RStarTree empty = RStarTree::BulkLoad(2, {});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.CheckInvariants());

  std::vector<IndexEntry> one = {
      IndexEntry{Mbr(Point{0.1, 0.1}, Point{0.2, 0.2}), 42}};
  RStarTree tiny = RStarTree::BulkLoad(2, one);
  EXPECT_EQ(tiny.size(), 1u);
  std::vector<uint64_t> out;
  tiny.RangeSearch(one[0].mbr, 0.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
}

TEST(RStarTreeTest, BulkLoadPacksNodesTightly) {
  Rng rng(9);
  std::vector<IndexEntry> entries;
  for (uint64_t i = 0; i < 1024; ++i) {
    entries.push_back(IndexEntry{RandomBox(&rng, 2), i});
  }
  RStarTree bulk = RStarTree::BulkLoad(2, entries,
                                       RStarTreeOptions::ForFanout(16));
  RStarTree inserted(2, RStarTreeOptions::ForFanout(16));
  for (const IndexEntry& e : entries) inserted.Insert(e.mbr, e.value);
  EXPECT_LE(bulk.node_count(), inserted.node_count());
}

// All tree variants must maintain invariants and agree with brute force.
class RTreeVariantTest : public ::testing::TestWithParam<RTreeVariant> {};

TEST_P(RTreeVariantTest, InsertQueryRemoveAgainstBruteForce) {
  Rng rng(200);
  RStarTree tree(3, RStarTreeOptions::ForFanout(8, GetParam()));
  std::vector<IndexEntry> reference;
  for (uint64_t i = 0; i < 400; ++i) {
    const Mbr box = RandomBox(&rng, 3);
    tree.Insert(box, i);
    reference.push_back(IndexEntry{box, i});
  }
  EXPECT_TRUE(tree.CheckInvariants());
  for (int trial = 0; trial < 20; ++trial) {
    const Mbr query = RandomBox(&rng, 3, 0.3);
    const double epsilon = rng.Uniform() * 0.3;
    const double eps2 = epsilon * epsilon;
    std::vector<uint64_t> expected;
    for (const IndexEntry& e : reference) {
      if (query.MinDist2(e.mbr) <= eps2) expected.push_back(e.value);
    }
    std::vector<uint64_t> actual;
    tree.RangeSearch(query, epsilon, &actual);
    EXPECT_EQ(Sorted(std::move(actual)), expected);
  }
  for (size_t i = 0; i < reference.size(); i += 4) {
    EXPECT_TRUE(tree.Remove(reference[i].mbr, reference[i].value));
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Variants, RTreeVariantTest,
                         ::testing::Values(RTreeVariant::kRStar,
                                           RTreeVariant::kGuttmanQuadratic,
                                           RTreeVariant::kGuttmanLinear));

TEST(RStarTreeTest, NearestNeighborsMatchBruteForce) {
  Rng rng(201);
  RStarTree tree(3, RStarTreeOptions::ForFanout(8));
  std::vector<IndexEntry> reference;
  for (uint64_t i = 0; i < 500; ++i) {
    const Mbr box = RandomBox(&rng, 3);
    tree.Insert(box, i);
    reference.push_back(IndexEntry{box, i});
  }
  for (int trial = 0; trial < 15; ++trial) {
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    for (size_t k : {1u, 5u, 20u}) {
      const std::vector<IndexEntry> nearest = tree.NearestNeighbors(query,
                                                                    k);
      ASSERT_EQ(nearest.size(), k);
      // Distances are ascending and match the brute-force k-th distance.
      std::vector<double> all;
      for (const IndexEntry& e : reference) {
        all.push_back(query.MinDist2(e.mbr));
      }
      std::sort(all.begin(), all.end());
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(query.MinDist2(nearest[i].mbr), all[i], 1e-12)
            << "k=" << k << " i=" << i;
        if (i > 0) {
          EXPECT_GE(query.MinDist2(nearest[i].mbr),
                    query.MinDist2(nearest[i - 1].mbr));
        }
      }
    }
  }
}

TEST(RStarTreeTest, NearestNeighborsEdgeCases) {
  RStarTree tree(2);
  EXPECT_TRUE(tree.NearestNeighbors(Mbr::FromPoint(Point{0.5, 0.5}), 3)
                  .empty());
  tree.Insert(Mbr::FromPoint(Point{0.1, 0.1}), 7);
  const auto nearest =
      tree.NearestNeighbors(Mbr::FromPoint(Point{0.5, 0.5}), 3);
  ASSERT_EQ(nearest.size(), 1u);  // fewer stored than requested
  EXPECT_EQ(nearest[0].value, 7u);
  EXPECT_TRUE(
      tree.NearestNeighbors(Mbr::FromPoint(Point{0.5, 0.5}), 0).empty());
}

// The same correctness harness, run against both SpatialIndex backends.
class SpatialIndexTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<SpatialIndex> MakeIndex(size_t dim) {
    if (std::string(GetParam()) == "rstar") {
      return std::make_unique<RStarTree>(dim,
                                         RStarTreeOptions::ForFanout(8));
    }
    return std::make_unique<LinearIndex>(8);
  }
};

TEST_P(SpatialIndexTest, InsertSearchRemoveAgreeWithBruteForce) {
  Rng rng(100);
  auto index = MakeIndex(2);
  std::vector<IndexEntry> reference;
  for (uint64_t i = 0; i < 250; ++i) {
    const Mbr box = RandomBox(&rng, 2);
    index->Insert(box, i);
    reference.push_back(IndexEntry{box, i});
  }
  EXPECT_EQ(index->size(), reference.size());
  for (int trial = 0; trial < 20; ++trial) {
    const Mbr query = RandomBox(&rng, 2, 0.3);
    const double epsilon = rng.Uniform() * 0.3;
    const double eps2 = epsilon * epsilon;
    std::vector<uint64_t> expected;
    for (const IndexEntry& e : reference) {
      if (query.MinDist2(e.mbr) <= eps2) expected.push_back(e.value);
    }
    std::sort(expected.begin(), expected.end());
    std::vector<uint64_t> actual;
    index->RangeSearch(query, epsilon, &actual);
    EXPECT_EQ(Sorted(std::move(actual)), expected);
  }
  // Remove a third and re-check one query.
  for (size_t i = 0; i < reference.size(); i += 3) {
    EXPECT_TRUE(index->Remove(reference[i].mbr, reference[i].value));
  }
  const Mbr query(Point{0.0, 0.0}, Point{1.0, 1.0});
  std::vector<uint64_t> survivors;
  index->RangeSearch(query, 0.0, &survivors);
  std::vector<uint64_t> expected;
  for (size_t i = 0; i < reference.size(); ++i) {
    if (i % 3 != 0) expected.push_back(reference[i].value);
  }
  EXPECT_EQ(Sorted(std::move(survivors)), expected);
}

INSTANTIATE_TEST_SUITE_P(Backends, SpatialIndexTest,
                         ::testing::Values("rstar", "linear"));

}  // namespace
}  // namespace mdseq
