// Tests for the observability layer (src/obs): the metrics registry and its
// Prometheus/JSON exposition, per-query span traces and their Chrome
// trace_event export, the bounded sharded trace store, the JSON validator,
// and the EXPLAIN path — including the contract that an EXPLAIN report is
// consistent with the engine's own SearchStats by construction.
//
// The binary carries the `tsan` ctest label (registry and trace-store
// writers are exercised from many threads); build with
// -DMDSEQ_SANITIZE=thread and run `ctest -L tsan`.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/search.h"
#include "engine/query_engine.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "obs/explain.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace mdseq {
namespace {

// ---------------------------------------------------------------------------
// JSON validator
// ---------------------------------------------------------------------------

TEST(JsonTest, AcceptsValidDocuments) {
  EXPECT_TRUE(obs::JsonValidate("{}"));
  EXPECT_TRUE(obs::JsonValidate("[]"));
  EXPECT_TRUE(obs::JsonValidate("  {\"a\": [1, 2.5, -3e8], \"b\": null, "
                                "\"c\": {\"d\": true, \"e\": \"x\\n\"}} "));
  EXPECT_TRUE(obs::JsonValidate("\"just a string\""));
  EXPECT_TRUE(obs::JsonValidate("-0.125"));
}

TEST(JsonTest, RejectsInvalidDocuments) {
  EXPECT_FALSE(obs::JsonValidate(""));
  EXPECT_FALSE(obs::JsonValidate("{"));
  EXPECT_FALSE(obs::JsonValidate("{\"a\": }"));
  EXPECT_FALSE(obs::JsonValidate("{\"a\": 1,}"));
  EXPECT_FALSE(obs::JsonValidate("[1 2]"));
  EXPECT_FALSE(obs::JsonValidate("{} trailing"));
  EXPECT_FALSE(obs::JsonValidate("{'a': 1}"));  // single quotes
  EXPECT_FALSE(obs::JsonValidate("nul"));
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(obs::JsonQuote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  // The escaped form must itself be valid JSON.
  EXPECT_TRUE(obs::JsonValidate(obs::JsonQuote(std::string("\x01\t\x1f"))));
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("c_total", "help");
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);

  obs::Gauge* gauge = registry.GetGauge("g");
  gauge->Set(2.5);
  gauge->Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.0);

  obs::Histogram* hist =
      registry.GetHistogram("h", "help", {1.0, 2.0, 5.0});
  hist->Observe(0.5);   // bucket 0 (le 1)
  hist->Observe(2.0);   // bucket 1 (le 2, inclusive upper bound)
  hist->Observe(100.0);  // +Inf bucket
  EXPECT_EQ(hist->count(), 3u);
  EXPECT_DOUBLE_EQ(hist->sum(), 102.5);
  EXPECT_EQ(hist->bucket_count(0), 1u);
  EXPECT_EQ(hist->bucket_count(1), 1u);
  EXPECT_EQ(hist->bucket_count(2), 0u);
  EXPECT_EQ(hist->bucket_count(3), 1u);  // +Inf
}

TEST(MetricsTest, ReRegistrationReturnsTheSameHandle) {
  obs::MetricsRegistry registry;
  obs::Counter* first = registry.GetCounter("shared_total", "first help");
  obs::Counter* second = registry.GetCounter("shared_total", "other help");
  EXPECT_EQ(first, second);
  first->Increment();
  EXPECT_EQ(second->value(), 1u);
}

TEST(MetricsTest, ValidatesPrometheusNames) {
  EXPECT_TRUE(obs::MetricsRegistry::ValidName("mdseq_queries_total"));
  EXPECT_TRUE(obs::MetricsRegistry::ValidName("a:b_c9"));
  EXPECT_TRUE(obs::MetricsRegistry::ValidName("_x"));
  EXPECT_FALSE(obs::MetricsRegistry::ValidName(""));
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("9abc"));
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("has-dash"));
  EXPECT_FALSE(obs::MetricsRegistry::ValidName("has space"));
}

// Exact-total contract the engine relies on: concurrent relaxed increments
// lose nothing once the writers join.
TEST(MetricsTest, ConcurrentWritersProduceExactTotals) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the same names — registration is also part
      // of the concurrency surface.
      obs::Counter* counter = registry.GetCounter("hits_total");
      obs::Gauge* gauge = registry.GetGauge("g");
      obs::Histogram* hist = registry.GetHistogram("h", "", {10.0, 100.0});
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(1.0);
        hist->Observe(static_cast<double>(i % 200));
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t total =
      static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kPerThread);
  EXPECT_EQ(registry.GetCounter("hits_total")->value(), total);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g")->value(),
                   static_cast<double>(total));
  EXPECT_EQ(registry.GetHistogram("h", "", {})->count(), total);
}

TEST(MetricsTest, PrometheusTextGoldenFormat) {
  obs::MetricsRegistry registry;
  registry.GetCounter("b_total", "counts things")->Increment(3);
  registry.GetGauge("a_gauge", "a level")->Set(1.5);
  obs::Histogram* hist = registry.GetHistogram("lat_seconds", "latency",
                                               {0.25, 1.0});
  // Exactly representable doubles, so the sum round-trips verbatim.
  hist->Observe(0.125);
  hist->Observe(0.125);
  hist->Observe(7.0);
  // Name-ordered, cumulative buckets, +Inf == _count.
  const std::string expected =
      "# HELP a_gauge a level\n"
      "# TYPE a_gauge gauge\n"
      "a_gauge 1.5\n"
      "# HELP b_total counts things\n"
      "# TYPE b_total counter\n"
      "b_total 3\n"
      "# HELP lat_seconds latency\n"
      "# TYPE lat_seconds histogram\n"
      "lat_seconds_bucket{le=\"0.25\"} 2\n"
      "lat_seconds_bucket{le=\"1\"} 2\n"
      "lat_seconds_bucket{le=\"+Inf\"} 3\n"
      "lat_seconds_sum 7.25\n"
      "lat_seconds_count 3\n";
  EXPECT_EQ(registry.PrometheusText(), expected);
}

TEST(MetricsTest, JsonTextIsValidAndComplete) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c_total")->Increment(7);
  registry.GetGauge("g")->Set(-2.25);
  registry.GetHistogram("h", "", {1.0})->Observe(0.5);
  const std::string json = registry.JsonText();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"c_total\""), std::string::npos);
  EXPECT_NE(json.find("\"g\""), std::string::npos);
  EXPECT_NE(json.find("\"h\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
}

TEST(MetricsTest, DefaultLatencyBoundsAreAscending) {
  const std::vector<double> bounds = obs::DefaultLatencyBoundsSeconds();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// Prometheus requires histogram buckets to be cumulative and the +Inf
// bucket to equal _count. Parse the rendered text and check, rather than
// trusting the writer.
TEST(MetricsTest, HistogramBucketsAreCumulativeThroughInf) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("cum", "", {1.0, 5.0, 25.0});
  for (int i = 0; i < 50; ++i) hist->Observe(static_cast<double>(i));
  const std::string text = registry.PrometheusText();

  std::vector<uint64_t> counts;
  size_t pos = 0;
  while ((pos = text.find("cum_bucket{le=\"", pos)) != std::string::npos) {
    const size_t value_pos = text.find("} ", pos);
    ASSERT_NE(value_pos, std::string::npos);
    counts.push_back(
        std::strtoull(text.c_str() + value_pos + 2, nullptr, 10));
    pos = value_pos;
  }
  ASSERT_EQ(counts.size(), 4u);  // three finite bounds plus +Inf
  // Observed 0..49 with inclusive upper bounds: le=1 holds {0,1}, le=5
  // holds {0..5}, le=25 holds {0..25}, +Inf holds all 50.
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 6u);
  EXPECT_EQ(counts[2], 26u);
  EXPECT_EQ(counts[3], 50u);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]);
  }
  EXPECT_EQ(counts.back(), hist->count());
  EXPECT_NE(text.find("cum_bucket{le=\"+Inf\"} 50"), std::string::npos);
}

TEST(MetricsTest, EscapesLabelValues) {
  EXPECT_EQ(obs::MetricsRegistry::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::MetricsRegistry::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::MetricsRegistry::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::MetricsRegistry::EscapeLabelValue("a\nb"), "a\\nb");

  obs::MetricsRegistry registry;
  registry
      .GetCounter("odd_total", "help",
                  obs::Labels{{"path", "a\"b\\c\nd"}})
      ->Increment();
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("odd_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(MetricsTest, LabeledMetricsRenderTheirSuffix) {
  obs::MetricsRegistry registry;
  registry
      .GetGauge("tagged", "help",
                obs::Labels{{"shard", "3"}, {"kind", "x"}})
      ->Set(2.5);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("tagged{shard=\"3\",kind=\"x\"} 2.5"),
            std::string::npos)
      << text;
  // JSON exposition carries the labels too, and stays valid.
  const std::string json = registry.JsonText();
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"shard\": \"3\""), std::string::npos);
}

TEST(MetricsTest, RegisterBuildInfoExportsTheIdiomaticGauge) {
  obs::MetricsRegistry registry;
  obs::RegisterBuildInfo(&registry);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE mdseq_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find("mdseq_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("build_type=\""), std::string::npos);
  EXPECT_NE(text.find("\"} 1\n"), std::string::npos);
  // Idempotent: a second call reuses the registration.
  obs::RegisterBuildInfo(&registry);
  EXPECT_EQ(registry.PrometheusText(), text);
}

// ---------------------------------------------------------------------------
// Trace / SpanScope / TraceStore
// ---------------------------------------------------------------------------

TEST(TraceTest, SpansNestAndOrder) {
  obs::Trace trace;
  {
    obs::SpanScope outer(&trace, "outer");
    outer.Arg("k", 7);
    {
      obs::SpanScope inner(&trace, "inner");
      obs::SpanScope innermost(&trace, "innermost");
    }
    obs::SpanScope sibling(&trace, "sibling");
  }
  const std::vector<obs::TraceSpan>& spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Begin order is a pre-order walk.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_STREQ(spans[2].name, "innermost");
  EXPECT_STREQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  EXPECT_EQ(spans[3].depth, 1u);
  // Children begin and end inside their parent.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns, spans[0].start_ns);
    EXPECT_LE(spans[i].end_ns, spans[0].end_ns);
  }
  EXPECT_LE(spans[1].start_ns, spans[2].start_ns);
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_STREQ(spans[0].args[0].first, "k");
  EXPECT_EQ(spans[0].args[0].second, 7u);
}

TEST(TraceTest, NullTraceIsANoOp) {
  // The zero-cost-when-disabled contract: SpanScope over a null trace does
  // nothing (and must not crash).
  obs::SpanScope scope(nullptr, "ignored");
  scope.Arg("ignored", 1);
}

TEST(TraceTest, ChromeTraceJsonIsValidAndRebased) {
  obs::Trace trace;
  trace.set_query_id(9);
  {
    obs::SpanScope root(&trace, "query");
    obs::SpanScope child(&trace, "partition");
  }
  std::vector<obs::Trace> traces;
  traces.push_back(std::move(trace));
  const std::string json = obs::ChromeTraceJson(traces);
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"partition\""), std::string::npos);
  EXPECT_NE(json.find("\"query_id\": 9"), std::string::npos);
  // Rebased: the earliest event starts at ts 0.
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
}

TEST(TraceStoreTest, ConcurrentAddThenTakeKeepsEverythingUnderCapacity) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  obs::TraceStore store(kThreads * kPerThread, kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Trace trace;
        { obs::SpanScope span(&trace, "work"); }
        store.Add(std::move(trace));
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::vector<obs::Trace> taken = store.Take();
  // Capacity is sliced per shard, so a perfectly balanced load fits in
  // full; threads hash to shards unevenly, so allow drops but require the
  // accounting to be exact.
  EXPECT_EQ(taken.size() + store.dropped(),
            static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(store.Take().empty());  // drained
}

TEST(TraceStoreTest, DropsWhenFullAndCounts) {
  obs::TraceStore store(2, 1);  // one shard, two slots
  for (int i = 0; i < 5; ++i) store.Add(obs::Trace());
  EXPECT_EQ(store.Take().size(), 2u);
  EXPECT_EQ(store.dropped(), 3u);
}

// The store is a ring: a full shard evicts its OLDEST trace, so the most
// recent queries are the ones still inspectable via /debug/trace.
TEST(TraceStoreTest, FullShardEvictsOldestKeepsNewest) {
  obs::TraceStore store(4, 1);
  for (uint64_t id = 1; id <= 10; ++id) {
    obs::Trace trace;
    trace.set_query_id(id);
    const bool dropped = store.Add(std::move(trace));
    EXPECT_EQ(dropped, id > 4);  // eviction starts once the ring is full
  }
  EXPECT_EQ(store.dropped(), 6u);
  const std::vector<obs::Trace> kept = store.Take();
  ASSERT_EQ(kept.size(), 4u);
  std::vector<bool> seen(11, false);
  for (const obs::Trace& trace : kept) seen[trace.query_id()] = true;
  for (uint64_t id = 7; id <= 10; ++id) {
    EXPECT_TRUE(seen[id]) << "newest trace " << id << " was evicted";
  }
}

TEST(TraceStoreTest, SnapshotByIdDoesNotDrain) {
  obs::TraceStore store(16, 2);
  for (uint64_t id : {1u, 2u, 2u, 3u}) {
    obs::Trace trace;
    trace.set_query_id(id);
    { obs::SpanScope span(&trace, "work"); }
    store.Add(std::move(trace));
  }
  EXPECT_EQ(store.Snapshot(2).size(), 2u);
  EXPECT_EQ(store.Snapshot(99).size(), 0u);
  // Snapshot copied; Take still drains everything.
  EXPECT_EQ(store.Take().size(), 4u);
  EXPECT_TRUE(store.Take().empty());
}

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

// A small indexed database plus one query drawn from it.
struct ExplainFixture {
  SequenceDatabase database{3};
  Sequence query{3};

  ExplainFixture() {
    Rng rng(7);
    std::vector<Sequence> corpus;
    for (int i = 0; i < 40; ++i) {
      corpus.push_back(GenerateFractalSequence(
          64 + static_cast<size_t>(rng.UniformInt(0, 128)), FractalOptions(),
          &rng));
    }
    for (const Sequence& s : corpus) database.Add(s);
    query = DrawQueries(corpus, 1, QueryWorkloadOptions(), &rng).front();
  }
};

TEST(ExplainTest, StatsAreConsistentWithSearchStats) {
  ExplainFixture fixture;
  const double epsilon = 0.25;
  SimilaritySearch engine(&fixture.database);

  obs::Trace trace;
  SearchControl control;
  control.trace = &trace;
  const SearchResult result =
      engine.Search(fixture.query.View(), epsilon, control);

  const obs::ExplainStats stats = ToExplainStats(
      result, fixture.query.size(), fixture.database.dim(), epsilon,
      /*verified=*/false, /*disk=*/false,
      fixture.database.num_sequences());

  // Every EXPLAIN number is the corresponding SearchStats number.
  EXPECT_EQ(stats.query_mbrs, result.stats.query_mbrs);
  EXPECT_EQ(stats.phase2_candidates, result.stats.phase2_candidates);
  EXPECT_EQ(stats.phase3_matches, result.stats.filter_matches);
  EXPECT_EQ(stats.node_accesses, result.stats.node_accesses);
  EXPECT_EQ(stats.dnorm_evaluations, result.stats.dnorm_evaluations);
  EXPECT_EQ(stats.partition_ns, result.stats.partition_ns);
  EXPECT_EQ(stats.first_pruning_ns, result.stats.first_pruning_ns);
  EXPECT_EQ(stats.second_pruning_ns, result.stats.second_pruning_ns);
  EXPECT_EQ(stats.interval_assembly_ns, result.stats.interval_assembly_ns);
  EXPECT_EQ(stats.TotalNs(), result.stats.TotalPhaseNs());

  // Phase clocks actually ran, and the sub-slice stays inside its phase.
  EXPECT_GT(stats.partition_ns, 0u);
  EXPECT_GT(stats.first_pruning_ns, 0u);
  EXPECT_GT(stats.second_pruning_ns, 0u);
  EXPECT_LE(stats.interval_assembly_ns, stats.second_pruning_ns);

  // Funnel shape: candidates never grow across phases.
  EXPECT_LE(stats.phase2_candidates, stats.database_sequences);
  EXPECT_LE(stats.phase3_matches, stats.phase2_candidates);

  // The trace covers all three phases with correctly nested spans.
  bool saw_partition = false;
  bool saw_first = false;
  bool saw_second = false;
  for (const obs::TraceSpan& span : trace.spans()) {
    ASSERT_GE(span.end_ns, span.start_ns);
    const std::string name = span.name;
    saw_partition |= name == "partition";
    saw_first |= name == "range_search";
    saw_second |= name == "second_pruning";
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_first);
  EXPECT_TRUE(saw_second);
}

TEST(ExplainTest, VerifiedSearchFillsRefinementFields) {
  ExplainFixture fixture;
  const double epsilon = 0.25;
  SimilaritySearch engine(&fixture.database);
  const SearchResult result =
      engine.SearchVerified(fixture.query.View(), epsilon);
  const obs::ExplainStats stats = ToExplainStats(
      result, fixture.query.size(), fixture.database.dim(), epsilon,
      /*verified=*/true, /*disk=*/false, fixture.database.num_sequences());
  EXPECT_TRUE(stats.verified);
  // filter_matches is |ASnorm| before refinement; verification only drops.
  EXPECT_EQ(stats.phase3_matches, result.stats.filter_matches);
  EXPECT_EQ(stats.verified_matches, result.stats.phase3_matches);
  EXPECT_LE(stats.verified_matches, stats.phase3_matches);
  EXPECT_EQ(stats.verified_matches, result.matches.size());
}

TEST(ExplainTest, ReportAndJsonRender) {
  ExplainFixture fixture;
  SimilaritySearch engine(&fixture.database);
  const SearchResult result = engine.Search(fixture.query.View(), 0.25);
  const obs::ExplainStats stats = ToExplainStats(
      result, fixture.query.size(), fixture.database.dim(), 0.25,
      /*verified=*/false, /*disk=*/false, fixture.database.num_sequences());

  const std::string report = obs::RenderExplainReport(stats);
  EXPECT_NE(report.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(report.find("phase 1: partition"), std::string::npos);
  EXPECT_NE(report.find("phase 2: first pruning"), std::string::npos);
  EXPECT_NE(report.find("phase 3: second pruning"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);

  const std::string json = obs::ExplainJson(stats);
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"phase2_candidates\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(EngineObsTest, RegistryMatchesEngineStatsExactly) {
  ExplainFixture fixture;
  Rng rng(11);
  std::vector<Sequence> corpus;
  for (size_t id = 0; id < fixture.database.num_sequences(); ++id) {
    corpus.push_back(fixture.database.sequence(id));
  }
  std::vector<Sequence> queries =
      DrawQueries(corpus, 24, QueryWorkloadOptions(), &rng);

  obs::MetricsRegistry registry;
  EngineOptions options;
  options.num_threads = 4;
  options.metrics = &registry;
  options.trace_capacity = 64;
  QueryEngine engine(&fixture.database, options);

  QueryOptions query_options;
  query_options.epsilon = 0.2;
  auto futures = engine.SubmitBatch(std::move(queries), query_options);
  for (auto& f : futures) f.get();
  engine.Shutdown();

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.submitted, 24u);
  EXPECT_EQ(stats.served, 24u);
  // One source of truth: the registry's counters equal the engine's own
  // atomics, query for query.
  EXPECT_EQ(registry.GetCounter("mdseq_queries_submitted_total")->value(),
            stats.submitted);
  EXPECT_EQ(registry.GetCounter("mdseq_queries_served_total")->value(),
            stats.served);
  EXPECT_EQ(registry.GetCounter("mdseq_index_node_accesses_total")->value(),
            stats.node_accesses);
  EXPECT_EQ(registry.GetCounter("mdseq_phase2_candidates_total")->value(),
            stats.phase2_candidates);
  EXPECT_EQ(registry.GetCounter("mdseq_phase3_matches_total")->value(),
            stats.phase3_matches);
  EXPECT_EQ(registry.GetCounter("mdseq_dnorm_evaluations_total")->value(),
            stats.dnorm_evaluations);
  EXPECT_EQ(registry.GetCounter("mdseq_phase_partition_ns_total")->value(),
            stats.partition_ns);
  EXPECT_EQ(
      registry.GetCounter("mdseq_phase_first_pruning_ns_total")->value(),
      stats.first_pruning_ns);
  EXPECT_EQ(
      registry.GetCounter("mdseq_phase_second_pruning_ns_total")->value(),
      stats.second_pruning_ns);
  EXPECT_EQ(registry
                .GetHistogram("mdseq_query_latency_seconds", "",
                              obs::DefaultLatencyBoundsSeconds())
                ->count(),
            stats.served);
  EXPECT_GT(stats.partition_ns, 0u);
  EXPECT_GT(stats.first_pruning_ns, 0u);
  EXPECT_GT(stats.second_pruning_ns, 0u);

  // Exposition of the live registry is well-formed.
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(registry.JsonText(), &error)) << error;
  EXPECT_NE(registry.PrometheusText().find("# TYPE"), std::string::npos);
}

TEST(EngineObsTest, CollectsOneTracePerServedQuery) {
  ExplainFixture fixture;
  Rng rng(13);
  std::vector<Sequence> corpus;
  for (size_t id = 0; id < fixture.database.num_sequences(); ++id) {
    corpus.push_back(fixture.database.sequence(id));
  }
  std::vector<Sequence> queries =
      DrawQueries(corpus, 12, QueryWorkloadOptions(), &rng);

  EngineOptions options;
  options.num_threads = 3;
  options.trace_capacity = 1024;  // roomy: no shard should drop
  QueryEngine engine(&fixture.database, options);
  auto futures = engine.SubmitBatch(std::move(queries),
                                    QueryOptions{.epsilon = 0.2});
  for (auto& f : futures) f.get();
  engine.Shutdown();

  const std::vector<obs::Trace> traces = engine.TakeTraces();
  EXPECT_EQ(traces.size() + engine.stats().traces_dropped, 12u);
  std::vector<bool> seen(13, false);
  for (const obs::Trace& trace : traces) {
    ASSERT_FALSE(trace.spans().empty());
    EXPECT_STREQ(trace.spans().front().name, "query");
    EXPECT_EQ(trace.spans().front().depth, 0u);
    ASSERT_GE(trace.query_id(), 1u);
    ASSERT_LE(trace.query_id(), 12u);
    EXPECT_FALSE(seen[trace.query_id()]);  // ids are distinct
    seen[trace.query_id()] = true;
  }
  // The batch renders to loadable Chrome trace JSON.
  std::string error;
  EXPECT_TRUE(obs::JsonValidate(obs::ChromeTraceJson(traces), &error))
      << error;
}

TEST(EngineObsTest, TracingOffMeansNoTraces) {
  ExplainFixture fixture;
  QueryEngine engine(&fixture.database, EngineOptions{.num_threads = 2});
  auto future = engine.Submit(fixture.query, QueryOptions{.epsilon = 0.2});
  EXPECT_EQ(future.get().status, QueryStatus::kOk);
  engine.Shutdown();
  EXPECT_TRUE(engine.TakeTraces().empty());
  EXPECT_EQ(engine.stats().traces_dropped, 0u);
}

}  // namespace
}  // namespace mdseq
