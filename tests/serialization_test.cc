#include "io/serialization.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "gen/fractal.h"
#include "util/random.h"

namespace mdseq {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializationTest, BinaryRoundTripsCorpus) {
  Rng rng(1);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateFractalSequence(56, FractalOptions(), &rng));
  corpus.push_back(GenerateFractalSequence(1, FractalOptions(), &rng));
  corpus.push_back(Sequence::FromScalars({1.5, -2.0, 3.25}));

  const std::string path = TempPath("corpus.mdsq");
  ASSERT_TRUE(WriteSequences(path, corpus));
  const auto loaded = ReadSequences(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ((*loaded)[i].dim(), corpus[i].dim());
    EXPECT_EQ((*loaded)[i].data(), corpus[i].data());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyCorpusRoundTrips) {
  const std::string path = TempPath("empty.mdsq");
  ASSERT_TRUE(WriteSequences(path, {}));
  const auto loaded = ReadSequences(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileFails) {
  EXPECT_FALSE(ReadSequences("/nonexistent/dir/corpus.mdsq").has_value());
  EXPECT_FALSE(WriteSequences("/nonexistent/dir/corpus.mdsq", {}));
}

TEST(SerializationTest, BadMagicRejected) {
  const std::string path = TempPath("bad_magic.mdsq");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE         garbage        ";
  }
  EXPECT_FALSE(ReadSequences(path).has_value());
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedPayloadRejected) {
  Rng rng(2);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateFractalSequence(40, FractalOptions(), &rng));
  const std::string path = TempPath("truncated.mdsq");
  ASSERT_TRUE(WriteSequences(path, corpus));
  // Chop the file short.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_FALSE(ReadSequences(path).has_value());
  std::remove(path.c_str());
}

TEST(SerializationTest, RandomCorruptionNeverCrashes) {
  // Fuzz-ish robustness: flip random bytes / truncate at random points; the
  // reader must fail cleanly or return data, never crash or hang.
  Rng rng(99);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 5; ++i) {
    corpus.push_back(GenerateFractalSequence(64, FractalOptions(), &rng));
  }
  const std::string path = TempPath("fuzz.mdsq");
  ASSERT_TRUE(WriteSequences(path, corpus));
  std::ifstream in(path, std::ios::binary);
  const std::string original((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  in.close();

  for (int trial = 0; trial < 50; ++trial) {
    std::string mutated = original;
    const int mutations = static_cast<int>(rng.UniformInt(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const size_t at = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[at] = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (rng.Bernoulli(0.3)) {
      mutated.resize(static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(mutated.size()))));
    }
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
    }
    // Either outcome is acceptable; surviving the call is the assertion.
    const auto result = ReadSequences(path);
    if (result.has_value()) {
      for (const Sequence& s : *result) {
        EXPECT_GT(s.dim(), 0u);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, CsvRoundTrips) {
  Rng rng(3);
  const Sequence s = GenerateFractalSequence(25, FractalOptions(), &rng);
  const std::string path = TempPath("seq.csv");
  ASSERT_TRUE(WriteSequenceCsv(path, s.View()));
  const auto loaded = ReadSequenceCsv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->dim(), s.dim());
  ASSERT_EQ(loaded->size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t k = 0; k < s.dim(); ++k) {
      EXPECT_DOUBLE_EQ((*loaded)[i][k], s[i][k]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, CsvWithoutHeaderParses) {
  const std::string path = TempPath("headerless.csv");
  {
    std::ofstream out(path);
    out << "0.5,0.25\n0.75,1\n";
  }
  const auto loaded = ReadSequenceCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->dim(), 2u);
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_DOUBLE_EQ((*loaded)[1][0], 0.75);
  std::remove(path.c_str());
}

TEST(SerializationTest, RaggedCsvRejected) {
  const std::string path = TempPath("ragged.csv");
  {
    std::ofstream out(path);
    out << "0.5,0.25\n0.75\n";
  }
  EXPECT_FALSE(ReadSequenceCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(SerializationTest, NonNumericCsvBodyRejected) {
  const std::string path = TempPath("textual.csv");
  {
    std::ofstream out(path);
    out << "a,b\n1,2\nx,y\n";
  }
  EXPECT_FALSE(ReadSequenceCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(SerializationTest, EmptyCsvRejected) {
  const std::string path = TempPath("empty.csv");
  {
    std::ofstream out(path);
  }
  EXPECT_FALSE(ReadSequenceCsv(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mdseq
