#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "gen/video.h"
#include "gen/walk.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(FractalTest, GeneratesRequestedLengthAndDim) {
  Rng rng(1);
  FractalOptions options;
  for (size_t length : {1u, 2u, 3u, 57u, 512u}) {
    const Sequence s = GenerateFractalSequence(length, options, &rng);
    EXPECT_EQ(s.size(), length);
    EXPECT_EQ(s.dim(), options.dim);
  }
}

TEST(FractalTest, PointsStayInUnitCube) {
  Rng rng(2);
  FractalOptions options;
  options.dev_max = 0.9;  // extreme amplitude still clamps
  const Sequence s = GenerateFractalSequence(300, options, &rng);
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t k = 0; k < s.dim(); ++k) {
      EXPECT_GE(s[i][k], 0.0);
      EXPECT_LT(s[i][k], 1.0);
    }
  }
}

TEST(FractalTest, DeterministicGivenSeed) {
  FractalOptions options;
  Rng a(7);
  Rng b(7);
  const Sequence sa = GenerateFractalSequence(100, options, &a);
  const Sequence sb = GenerateFractalSequence(100, options, &b);
  EXPECT_EQ(sa.data(), sb.data());
}

TEST(FractalTest, TrailIsLocallySmooth) {
  // Midpoint displacement with decaying dev yields small consecutive steps
  // relative to the sequence's overall extent.
  Rng rng(3);
  FractalOptions options;
  const Sequence s = GenerateFractalSequence(256, options, &rng);
  double max_step = 0.0;
  for (size_t i = 1; i < s.size(); ++i) {
    max_step = std::max(max_step, PointDistance(s[i - 1], s[i]));
  }
  const Mbr box = s.BoundingBox();
  double diag = 0.0;
  for (size_t k = 0; k < 3; ++k) diag += box.Side(k) * box.Side(k);
  diag = std::sqrt(diag);
  EXPECT_LT(max_step, std::max(0.2, diag));
}

TEST(FractalTest, LiteralPaperDisplacementAlsoWorks) {
  Rng rng(4);
  FractalOptions options;
  options.centered_displacement = false;
  const Sequence s = GenerateFractalSequence(128, options, &rng);
  EXPECT_EQ(s.size(), 128u);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_LT(s[i][0], 1.0);
    EXPECT_GE(s[i][0], 0.0);
  }
}

TEST(VideoTest, StreamHasRequestedFramesAndCoveringShots) {
  Rng rng(5);
  const VideoOptions options;
  const VideoStream stream = GenerateVideoStream(200, options, &rng);
  EXPECT_EQ(stream.frames.size(), 200u);
  ASSERT_FALSE(stream.shots.empty());
  EXPECT_EQ(stream.shots.front().first, 0u);
  EXPECT_EQ(stream.shots.back().second, 200u);
  for (size_t i = 1; i < stream.shots.size(); ++i) {
    EXPECT_EQ(stream.shots[i - 1].second, stream.shots[i].first);
    EXPECT_LT(stream.shots[i].first, stream.shots[i].second);
  }
}

TEST(VideoTest, FramesHaveRightRasterSize) {
  Rng rng(6);
  VideoOptions options;
  options.frame_width = 8;
  options.frame_height = 6;
  const VideoStream stream = GenerateVideoStream(10, options, &rng);
  for (const Frame& frame : stream.frames) {
    EXPECT_EQ(frame.width, 8u);
    EXPECT_EQ(frame.height, 6u);
    EXPECT_EQ(frame.rgb.size(), 3u * 8u * 6u);
  }
}

TEST(VideoTest, FeatureExtractionAveragesPixels) {
  Frame frame;
  frame.width = 2;
  frame.height = 1;
  frame.rgb = {0, 255, 0, 255, 255, 0};  // pixels (0,255,0) and (255,255,0)
  const Point feature = ExtractFrameFeature(frame);
  ASSERT_EQ(feature.size(), 3u);
  EXPECT_NEAR(feature[0], 0.5, 1e-9);
  EXPECT_NEAR(feature[1], 1.0, 1e-9);
  EXPECT_NEAR(feature[2], 0.0, 1e-9);
}

TEST(VideoTest, FeatureSequenceMatchesFrameCountAndRange) {
  Rng rng(7);
  const Sequence s = GenerateVideoSequence(150, VideoOptions(), &rng);
  EXPECT_EQ(s.size(), 150u);
  EXPECT_EQ(s.dim(), 3u);
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t k = 0; k < 3; ++k) {
      EXPECT_GE(s[i][k], 0.0);
      EXPECT_LE(s[i][k], 1.0);
    }
  }
}

TEST(VideoTest, FramesWithinShotAreCloserThanAcrossCuts) {
  // The property the paper relies on (Section 4.2.2): frames in the same
  // shot have very similar features.
  Rng rng(8);
  VideoOptions options;
  options.dissolve_probability = 0.0;  // hard cuts only, crisp shot borders
  const VideoStream stream = GenerateVideoStream(300, options, &rng);
  const Sequence features = ExtractColorFeatures(stream);

  double intra = 0.0;
  size_t intra_count = 0;
  for (const auto& [begin, end] : stream.shots) {
    for (size_t i = begin + 1; i < end; ++i) {
      intra += PointDistance(features[i - 1], features[i]);
      ++intra_count;
    }
  }
  double inter = 0.0;
  size_t inter_count = 0;
  for (size_t s = 1; s < stream.shots.size(); ++s) {
    const size_t boundary = stream.shots[s].first;
    inter += PointDistance(features[boundary - 1], features[boundary]);
    ++inter_count;
  }
  ASSERT_GT(intra_count, 0u);
  ASSERT_GT(inter_count, 0u);
  EXPECT_LT(intra / intra_count, 0.3 * (inter / inter_count));
}

TEST(QueryWorkloadTest, LengthWithinBoundsAndClampedToSource) {
  Rng rng(9);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateFractalSequence(40, FractalOptions(), &rng));
  QueryWorkloadOptions options;
  options.min_length = 30;
  options.max_length = 100;  // longer than the 40-point source
  for (int trial = 0; trial < 10; ++trial) {
    const Sequence q = DrawQuery(corpus, options, &rng);
    EXPECT_GE(q.size(), 30u);
    EXPECT_LE(q.size(), 40u);
  }
}

TEST(QueryWorkloadTest, QueriesStayNearSourceData) {
  Rng rng(10);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateFractalSequence(200, FractalOptions(), &rng));
  QueryWorkloadOptions options;
  options.noise = 0.02;
  for (int trial = 0; trial < 5; ++trial) {
    const Sequence q = DrawQuery(corpus, options, &rng);
    // The query must be within noise * sqrt(3) of some alignment.
    double best = 1e9;
    const SequenceView data = corpus[0].View();
    for (size_t off = 0; off + q.size() <= data.size(); ++off) {
      double sum = 0.0;
      for (size_t i = 0; i < q.size(); ++i) {
        sum += PointDistance(q[i], data[off + i]);
      }
      best = std::min(best, sum / q.size());
    }
    EXPECT_LE(best, 0.02 * std::sqrt(3.0) + 1e-9);
  }
}

TEST(QueryWorkloadTest, DrawQueriesReturnsRequestedCount) {
  Rng rng(11);
  std::vector<Sequence> corpus;
  corpus.push_back(GenerateFractalSequence(100, FractalOptions(), &rng));
  const std::vector<Sequence> queries =
      DrawQueries(corpus, 7, QueryWorkloadOptions(), &rng);
  EXPECT_EQ(queries.size(), 7u);
}

TEST(RngTest, DeterminismAndRanges) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
  Rng r(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
    const int64_t n = r.UniformInt(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
  }
}

}  // namespace
}  // namespace mdseq
