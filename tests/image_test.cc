#include "gen/image.h"

#include <gtest/gtest.h>

#include "geom/point.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(ImageTest, GridShapeAndColorRange) {
  Rng rng(1);
  ImageOptions options;
  options.side = 16;
  const RegionGrid grid = SynthesizeImage(options, &rng);
  EXPECT_EQ(grid.side, 16u);
  ASSERT_EQ(grid.colors.size(), 256u);
  for (const Point& color : grid.colors) {
    ASSERT_EQ(color.size(), 3u);
    for (double c : color) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0);
    }
  }
}

TEST(ImageTest, DeterministicGivenSeed) {
  const ImageOptions options;
  Rng a(9);
  Rng b(9);
  const RegionGrid ga = SynthesizeImage(options, &a);
  const RegionGrid gb = SynthesizeImage(options, &b);
  EXPECT_EQ(ga.colors, gb.colors);
}

TEST(ImageTest, NeighboringRegionsCorrelate) {
  // Soft blobs make adjacent regions more similar than far-apart ones.
  Rng rng(2);
  ImageOptions options;
  options.side = 8;
  double adjacent = 0.0;
  double distant = 0.0;
  int samples = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const RegionGrid grid = SynthesizeImage(options, &rng);
    for (size_t y = 0; y < 8; ++y) {
      for (size_t x = 0; x + 1 < 8; ++x) {
        adjacent += PointDistance(grid.at(x, y), grid.at(x + 1, y));
        distant += PointDistance(grid.at(x, y),
                                 grid.at(7 - x, 7 - y));
        ++samples;
      }
    }
  }
  EXPECT_LT(adjacent / samples, distant / samples);
}

TEST(ImageTest, SequenceFollowsTheChosenCurve) {
  Rng rng(3);
  const ImageOptions options;
  const RegionGrid grid = SynthesizeImage(options, &rng);
  for (CurveKind curve :
       {CurveKind::kRowMajor, CurveKind::kMorton, CurveKind::kHilbert}) {
    const Sequence seq = RegionsToSequence(grid, curve);
    ASSERT_EQ(seq.size(), grid.colors.size());
    const auto order = GridOrder(static_cast<uint32_t>(grid.side), curve);
    for (size_t i = 0; i < order.size(); ++i) {
      const Point& expected = grid.at(order[i].first, order[i].second);
      for (size_t c = 0; c < 3; ++c) {
        EXPECT_DOUBLE_EQ(seq[i][c], expected[c]);
      }
    }
  }
}

TEST(ImageTest, GenerateImageSequenceConvenience) {
  Rng rng(4);
  const Sequence seq =
      GenerateImageSequence(ImageOptions(), CurveKind::kHilbert, &rng);
  EXPECT_EQ(seq.size(), 64u);
  EXPECT_EQ(seq.dim(), 3u);
}

}  // namespace
}  // namespace mdseq
