// Stress tests: randomized mixed workloads (inserts, removals, queries)
// checked against brute-force models on every step batch. These catch
// structural bugs that single-operation unit tests miss — box maintenance
// after condensation, tombstone bookkeeping under interleaved queries.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "core/search.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace mdseq {
namespace {

Mbr RandomBox(Rng* rng, double max_side = 0.08) {
  Point low{rng->Uniform(), rng->Uniform(), rng->Uniform()};
  Point high = low;
  for (double& v : high) v += rng->Uniform() * max_side;
  return Mbr(std::move(low), std::move(high));
}

// The brute-force model: a map from value to box, mirroring live entries.
class RTreeChurnTest : public ::testing::TestWithParam<RTreeVariant> {};

TEST_P(RTreeChurnTest, MixedWorkloadAgreesWithModel) {
  Rng rng(404);
  RStarTree tree(3, RStarTreeOptions::ForFanout(8, GetParam()));
  std::map<uint64_t, Mbr> model;
  uint64_t next_value = 0;

  for (int step = 0; step < 2000; ++step) {
    const double action = rng.Uniform();
    if (action < 0.55 || model.empty()) {
      const Mbr box = RandomBox(&rng);
      tree.Insert(box, next_value);
      model.emplace(next_value, box);
      ++next_value;
    } else if (action < 0.85) {
      // Remove a random live entry.
      auto it = model.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.UniformInt(
                           0, static_cast<int64_t>(model.size()) - 1)));
      ASSERT_TRUE(tree.Remove(it->second, it->first)) << "step " << step;
      model.erase(it);
    } else {
      // Query and compare.
      const Mbr query = RandomBox(&rng, 0.3);
      const double epsilon = rng.Uniform() * 0.2;
      const double eps2 = epsilon * epsilon;
      std::vector<uint64_t> expected;
      for (const auto& [value, box] : model) {
        if (query.MinDist2(box) <= eps2) expected.push_back(value);
      }
      std::vector<uint64_t> actual;
      tree.RangeSearch(query, epsilon, &actual);
      std::sort(actual.begin(), actual.end());
      ASSERT_EQ(actual, expected) << "step " << step;
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(tree.CheckInvariants()) << "step " << step;
      ASSERT_EQ(tree.size(), model.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, RTreeChurnTest,
                         ::testing::Values(RTreeVariant::kRStar,
                                           RTreeVariant::kGuttmanQuadratic,
                                           RTreeVariant::kGuttmanLinear),
                         [](const auto& info) {
                           switch (info.param) {
                             case RTreeVariant::kRStar:
                               return "RStar";
                             case RTreeVariant::kGuttmanQuadratic:
                               return "GuttmanQuadratic";
                             case RTreeVariant::kGuttmanLinear:
                               return "GuttmanLinear";
                           }
                           return "Unknown";
                         });

TEST(DatabaseChurnTest, AddRemoveSearchStaysConsistentWithScan) {
  Rng rng(405);
  SequenceDatabase db(3);
  std::set<size_t> live;
  std::vector<Sequence> by_id;  // all ever added, indexed by id
  const FractalOptions gen;
  QueryWorkloadOptions query_options;
  query_options.min_length = 16;
  query_options.max_length = 48;
  query_options.noise = 0.05;
  SimilaritySearch engine(&db);
  SequentialScan scan(&db);

  for (int step = 0; step < 60; ++step) {
    const double action = rng.Uniform();
    if (action < 0.5 || live.size() < 5) {
      const size_t length = static_cast<size_t>(rng.UniformInt(56, 200));
      by_id.push_back(GenerateFractalSequence(length, gen, &rng));
      const size_t id = db.Add(by_id.back());
      ASSERT_EQ(id, by_id.size() - 1);
      live.insert(id);
    } else if (action < 0.7) {
      auto it = live.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.UniformInt(
                           0, static_cast<int64_t>(live.size()) - 1)));
      ASSERT_TRUE(db.Remove(*it));
      live.erase(it);
    } else {
      // Query: the engine must still dominate the exact scan over the
      // live set (no false dismissal) and never return tombstones.
      std::vector<Sequence> corpus;
      for (size_t id : live) corpus.push_back(db.sequence(id));
      const Sequence query = DrawQuery(corpus, query_options, &rng);
      const double epsilon = rng.Uniform(0.05, 0.3);
      const SearchResult result = engine.Search(query.View(), epsilon);
      std::set<size_t> matched;
      for (const SequenceMatch& m : result.matches) {
        EXPECT_TRUE(live.count(m.sequence_id)) << "tombstone returned";
        matched.insert(m.sequence_id);
      }
      for (const ScanMatch& truth : scan.Search(query.View(), epsilon)) {
        EXPECT_TRUE(matched.count(truth.sequence_id))
            << "step " << step << " dismissed " << truth.sequence_id;
      }
    }
  }
  EXPECT_EQ(db.num_live_sequences(), live.size());
}

}  // namespace
}  // namespace mdseq
