// Serving QoS subsystem (src/serve + engine integration): the approximate
// search tier (quality budgets with certified distance-error bounds — the
// headline soundness proof that no exact match below the certified bound
// is ever dismissed, across dimensionalities 1-8), the snapshot-stamped
// result cache (LRU byte budget, TTL, single-flight collapse, and the
// exactness of LiveDatabase commit invalidation), and the per-tenant
// admission classes (weighted fair service, shed-by-class isolation).

#include <chrono>
#include <cstdio>
#include <future>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/search.h"
#include "engine/query_engine.h"
#include "eval/experiment.h"
#include "gen/walk.h"
#include "ingest/live_database.h"
#include "serve/result_cache.h"
#include "serve/tenant_queue.h"
#include "storage/disk_database.h"
#include "util/random.h"

namespace mdseq {
namespace {

Workload SmallWorkload(uint64_t seed) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 60;
  config.min_length = 56;
  config.max_length = 160;
  config.num_queries = 8;
  config.seed = seed;
  return BuildWorkload(config);
}

// A small corpus of `dim`-dimensional random walks.
std::vector<Sequence> WalkCorpus(size_t dim, size_t count, uint64_t seed) {
  Rng rng(seed);
  WalkOptions walk;
  walk.dim = dim;
  std::vector<Sequence> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t length = 40 + static_cast<size_t>(rng.UniformInt(0, 60));
    corpus.push_back(GenerateRandomWalk(length, walk, &rng));
  }
  return corpus;
}

SearchResult MakeResult(size_t num_matches) {
  SearchResult result;
  result.matches.resize(num_matches);
  for (size_t i = 0; i < num_matches; ++i) {
    result.matches[i].sequence_id = i;
    result.matches[i].exact_distance = 0.5;
  }
  return result;
}

// ---------------------------------------------------------------------------
// ResultCache: LRU byte budget, TTL, stamps, single-flight
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, ZeroBudgetDisablesEverything) {
  ResultCache::Options options;
  options.bytes = 0;
  ResultCache cache(options);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(1, 0, MakeResult(1));
  EXPECT_FALSE(cache.Lookup(1, 0).has_value());
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 0u);  // disabled lookups are not even misses
}

TEST(ResultCacheTest, HitReturnsTheStoredResult) {
  ResultCache::Options options;
  options.bytes = 1 << 20;
  ResultCache cache(options);
  const SearchResult stored = MakeResult(3);
  EXPECT_FALSE(cache.Lookup(7, 5).has_value());
  cache.Insert(7, 5, stored);
  const auto hit = cache.Lookup(7, 5);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->matches.size(), stored.matches.size());
  EXPECT_EQ(ResultDigest(hit->matches, true),
            ResultDigest(stored.matches, true));
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, StampMismatchInvalidatesOnTheSpot) {
  ResultCache::Options options;
  options.bytes = 1 << 20;
  ResultCache cache(options);
  cache.Insert(7, 5, MakeResult(2));
  // A newer snapshot epoch: the entry must be dropped, not served.
  EXPECT_FALSE(cache.Lookup(7, 6).has_value());
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // Gone for good — even the original stamp misses now.
  EXPECT_FALSE(cache.Lookup(7, 5).has_value());
  stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 1u);  // only the first probe invalidated
}

TEST(ResultCacheTest, LruEvictionKeepsTheShardUnderItsByteBudget) {
  const size_t entry_bytes = ResultCache::EstimateBytes(MakeResult(4));
  ResultCache::Options options;
  options.shards = 1;  // deterministic: all keys share one budget
  options.bytes = entry_bytes * 3;
  ResultCache cache(options);
  for (uint64_t key = 1; key <= 4; ++key) {
    cache.Insert(key, 0, MakeResult(4));
  }
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, entry_bytes * 3);
  // The oldest entry went; the newest three remain.
  EXPECT_FALSE(cache.Lookup(1, 0).has_value());
  EXPECT_TRUE(cache.Lookup(2, 0).has_value());
  EXPECT_TRUE(cache.Lookup(3, 0).has_value());
  EXPECT_TRUE(cache.Lookup(4, 0).has_value());
}

TEST(ResultCacheTest, LookupRefreshesRecency) {
  const size_t entry_bytes = ResultCache::EstimateBytes(MakeResult(4));
  ResultCache::Options options;
  options.shards = 1;
  options.bytes = entry_bytes * 2;
  ResultCache cache(options);
  cache.Insert(1, 0, MakeResult(4));
  cache.Insert(2, 0, MakeResult(4));
  ASSERT_TRUE(cache.Lookup(1, 0).has_value());  // 1 is now most recent
  cache.Insert(3, 0, MakeResult(4));            // evicts 2, not 1
  EXPECT_TRUE(cache.Lookup(1, 0).has_value());
  EXPECT_FALSE(cache.Lookup(2, 0).has_value());
  EXPECT_TRUE(cache.Lookup(3, 0).has_value());
}

TEST(ResultCacheTest, OversizedResultsAreNeverCached) {
  ResultCache::Options options;
  options.shards = 1;
  options.bytes = 64;  // smaller than any real result
  ResultCache cache(options);
  cache.Insert(1, 0, MakeResult(100));
  EXPECT_EQ(cache.GetStats().insertions, 0u);
  EXPECT_FALSE(cache.Lookup(1, 0).has_value());
}

TEST(ResultCacheTest, TtlExpiryCountsAsEviction) {
  ResultCache::Options options;
  options.bytes = 1 << 20;
  options.ttl = std::chrono::milliseconds(1);
  ResultCache cache(options);
  cache.Insert(1, 0, MakeResult(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(cache.Lookup(1, 0).has_value());
  const ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(ResultCacheTest, SingleFlightCollapsesConcurrentMisses) {
  ResultCache::Options options;
  options.bytes = 1 << 20;
  ResultCache cache(options);
  ASSERT_TRUE(cache.JoinOrLead(42));  // this thread leads
  std::thread follower([&cache] {
    // Blocks until the leader completes, then reports follower status.
    EXPECT_FALSE(cache.JoinOrLead(42));
  });
  // Give the follower time to actually block on the leader.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cache.Insert(42, 0, MakeResult(1));
  cache.Complete(42);
  follower.join();
  EXPECT_EQ(cache.GetStats().singleflight_waits, 1u);
  EXPECT_TRUE(cache.Lookup(42, 0).has_value());
  // A fresh key after completion leads immediately again.
  EXPECT_TRUE(cache.JoinOrLead(42));
  cache.Complete(42);
}

// ---------------------------------------------------------------------------
// TenantQueue: weighted fair service, per-class overload isolation
// ---------------------------------------------------------------------------

TEST(TenantQueueTest, WeightedRoundRobinServesByCredit) {
  const std::vector<TenantClassSpec> classes = {{"gold", 2}, {"bronze", 1}};
  // Capacity 18 = quotas 12/6, so all pushes below admit without blocking.
  TenantQueue<int> queue(18, OverloadPolicy::kBlock, classes);
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(queue.Push(100 + i, 0), AdmitResult::kAdmitted);
    ASSERT_EQ(queue.Push(200 + i, 1), AdmitResult::kAdmitted);
  }
  // Weight 2:1 — the service pattern is gold, gold, bronze repeating.
  std::vector<int> order;
  int value = 0;
  while (queue.TryPop(&value)) order.push_back(value);
  ASSERT_EQ(order.size(), 12u);
  const std::vector<int> expected = {100, 101, 200, 102, 103, 201,
                                     104, 105, 202, 203, 204, 205};
  EXPECT_EQ(order, expected);
}

TEST(TenantQueueTest, IdleClassDonatesItsShare) {
  const std::vector<TenantClassSpec> classes = {{"gold", 2}, {"bronze", 1}};
  TenantQueue<int> queue(12, OverloadPolicy::kBlock, classes);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(queue.Push(200 + i, 1), AdmitResult::kAdmitted);
  }
  // Gold is empty: bronze drains back-to-back (work-conserving).
  std::vector<int> order;
  int value = 0;
  while (queue.TryPop(&value)) order.push_back(value);
  EXPECT_EQ(order, (std::vector<int>{200, 201, 202}));
}

TEST(TenantQueueTest, ShedEvictsOnlyWithinTheClass) {
  const std::vector<TenantClassSpec> classes = {{"t0", 1}, {"t1", 1}};
  TenantQueue<int> queue(4, OverloadPolicy::kShedOldest, classes);
  // Quota 2 per class.
  ASSERT_EQ(queue.Push(100, 0), AdmitResult::kAdmitted);
  ASSERT_EQ(queue.Push(101, 0), AdmitResult::kAdmitted);
  ASSERT_EQ(queue.Push(200, 1), AdmitResult::kAdmitted);
  std::optional<int> shed;
  ASSERT_EQ(queue.Push(102, 0, &shed), AdmitResult::kShed);
  // The victim is tenant 0's own oldest item, never tenant 1's.
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(*shed, 100);
  const std::vector<TenantClassStats> stats = queue.Stats();
  EXPECT_EQ(stats[0].shed, 1u);
  EXPECT_EQ(stats[1].shed, 0u);
  EXPECT_EQ(stats[0].depth, 2u);
  EXPECT_EQ(stats[1].depth, 1u);
}

TEST(TenantQueueTest, RejectAppliesPerClassQuota) {
  const std::vector<TenantClassSpec> classes = {{"t0", 1}, {"t1", 1}};
  TenantQueue<int> queue(4, OverloadPolicy::kReject, classes);
  ASSERT_EQ(queue.Push(100, 0), AdmitResult::kAdmitted);
  ASSERT_EQ(queue.Push(101, 0), AdmitResult::kAdmitted);
  // Tenant 0 is at quota; tenant 1 still has room.
  EXPECT_EQ(queue.Push(102, 0), AdmitResult::kRejected);
  EXPECT_EQ(queue.Push(200, 1), AdmitResult::kAdmitted);
  const std::vector<TenantClassStats> stats = queue.Stats();
  EXPECT_EQ(stats[0].rejected, 1u);
  EXPECT_EQ(stats[1].rejected, 0u);
}

TEST(TenantQueueTest, OutOfRangeTenantFallsIntoClassZero) {
  const std::vector<TenantClassSpec> classes = {{"t0", 1}, {"t1", 1}};
  TenantQueue<int> queue(8, OverloadPolicy::kBlock, classes);
  ASSERT_EQ(queue.Push(1, 99), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Stats()[0].submitted, 1u);
  EXPECT_EQ(queue.Stats()[0].depth, 1u);
}

// ---------------------------------------------------------------------------
// Approximate tier: certified-bound soundness
// ---------------------------------------------------------------------------

// An unbinding budget must be invisible: byte-identical digests, zero
// skipped candidates, and the certified bound equal to the requested
// threshold — in memory and on disk.
TEST(ApproxTierTest, UnbindingBudgetIsByteIdenticalToExact) {
  const Workload workload = SmallWorkload(91);
  SearchOptions exact_options;
  SearchOptions budgeted_options;
  budgeted_options.max_candidates = 1u << 20;  // far beyond any corpus
  const SimilaritySearch exact(workload.database.get(), exact_options);
  const SimilaritySearch budgeted(workload.database.get(),
                                  budgeted_options);

  const std::string db_path =
      testing::TempDir() + "/serve_test_approx.db";
  std::remove(db_path.c_str());
  ASSERT_TRUE(DiskDatabase::Save(*workload.database, db_path));
  DiskDatabase disk_exact(db_path, 64, exact_options);
  DiskDatabase disk_budgeted(db_path, 64, budgeted_options);
  ASSERT_TRUE(disk_exact.valid());
  ASSERT_TRUE(disk_budgeted.valid());

  const double epsilon = 0.2;
  for (const Sequence& query : workload.queries) {
    const SearchResult a = exact.SearchVerified(query.View(), epsilon);
    const SearchResult b = budgeted.SearchVerified(query.View(), epsilon);
    EXPECT_EQ(b.stats.approx_candidates_skipped, 0u);
    EXPECT_EQ(b.stats.approx_certified_epsilon, epsilon);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(ResultDigest(a.matches, true), ResultDigest(b.matches, true));

    const SearchResult da =
        disk_exact.SearchVerified(query.View(), epsilon);
    const SearchResult db =
        disk_budgeted.SearchVerified(query.View(), epsilon);
    EXPECT_EQ(db.stats.approx_candidates_skipped, 0u);
    EXPECT_EQ(db.stats.approx_certified_epsilon, epsilon);
    EXPECT_EQ(ResultDigest(da.matches, true),
              ResultDigest(db.matches, true));
    EXPECT_EQ(ResultDigest(a.matches, true),
              ResultDigest(da.matches, true));
  }
  std::remove(db_path.c_str());
}

// The soundness contract, across dimensionalities 1-8: under any budget,
// (a) the certified bound never exceeds the requested threshold, (b) the
// approximate matches are a subset of the exact ones, (c) every exact
// match strictly below the certified bound is present — recall below the
// bound is perfect, never merely probable — and (d) tightening the budget
// never decreases the skip count.
TEST(ApproxTierTest, CertifiedBoundNeverViolatedAcrossDims1To8) {
  for (size_t dim = 1; dim <= 8; ++dim) {
    const std::vector<Sequence> corpus = WalkCorpus(dim, 40, 1000 + dim);
    SequenceDatabase database(dim);
    for (const Sequence& s : corpus) database.Add(s);
    // Corpus-drawn queries guarantee non-trivial match sets.
    const double epsilon = 0.6;
    uint64_t prev_skipped = ~0ull;
    SearchOptions exact_options;
    const SimilaritySearch exact(&database, exact_options);
    const SearchResult exact_result =
        exact.SearchVerified(corpus[5].View(), epsilon);
    ASSERT_GT(exact_result.matches.size(), 0u) << "dim=" << dim;

    for (const uint64_t budget : {1ull, 2ull, 4ull, 8ull, 16ull}) {
      SearchOptions options;
      options.max_candidates = budget;
      const SimilaritySearch approx(&database, options);
      const SearchResult result =
          approx.SearchVerified(corpus[5].View(), epsilon);
      const double certified = result.stats.approx_certified_epsilon;
      EXPECT_LE(certified, epsilon) << "dim=" << dim;
      if (result.stats.approx_candidates_skipped == 0) {
        EXPECT_EQ(certified, epsilon);
      }
      // Monotone: a larger budget skips no more than a smaller one.
      EXPECT_LE(result.stats.approx_candidates_skipped, prev_skipped);
      prev_skipped = result.stats.approx_candidates_skipped;

      std::set<size_t> exact_ids;
      for (const SequenceMatch& m : exact_result.matches) {
        exact_ids.insert(m.sequence_id);
      }
      std::set<size_t> approx_ids;
      for (const SequenceMatch& m : result.matches) {
        approx_ids.insert(m.sequence_id);
        // (b) no fabricated matches.
        EXPECT_TRUE(exact_ids.count(m.sequence_id)) << "dim=" << dim;
      }
      // (c) perfect recall below the certified bound.
      for (const SequenceMatch& m : exact_result.matches) {
        if (m.exact_distance < certified - 1e-12) {
          EXPECT_TRUE(approx_ids.count(m.sequence_id))
              << "dim=" << dim << " budget=" << budget
              << " distance=" << m.exact_distance
              << " certified=" << certified;
        }
      }
    }
  }
}

// A bounded SearchNearest returns a prefix of the unbounded ranking:
// every reported neighbor is exact and correctly ordered, only the tail
// may be missing.
TEST(ApproxTierTest, EpsilonRoundCapReturnsExactPrefix) {
  const Workload workload = SmallWorkload(92);
  SearchOptions unbounded;
  SearchOptions capped;
  capped.max_epsilon_rounds = 2;
  const SimilaritySearch full(workload.database.get(), unbounded);
  const SimilaritySearch budgeted(workload.database.get(), capped);
  const size_t k = 5;
  for (const Sequence& query : workload.queries) {
    const std::vector<SequenceMatch> want =
        full.SearchNearest(query.View(), k);
    const std::vector<SequenceMatch> got =
        budgeted.SearchNearest(query.View(), k);
    ASSERT_LE(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].sequence_id, want[i].sequence_id);
      EXPECT_EQ(got[i].exact_distance, want[i].exact_distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Engine integration: cache hits, commit invalidation, tenant shed
// ---------------------------------------------------------------------------

TEST(ServeEngineTest, RepeatQueryHitsTheCacheWithIdenticalResults) {
  const Workload workload = SmallWorkload(93);
  EngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 1 << 20;
  QueryEngine engine(workload.database.get(), options);
  ASSERT_NE(engine.result_cache(), nullptr);

  QueryOptions query_options;
  query_options.epsilon = 0.2;
  query_options.verified = true;
  const QueryOutcome first =
      engine.Submit(workload.queries[0], query_options).get();
  ASSERT_EQ(first.status, QueryStatus::kOk);
  EXPECT_EQ(engine.result_cache()->GetStats().hits, 0u);

  const QueryOutcome second =
      engine.Submit(workload.queries[0], query_options).get();
  ASSERT_EQ(second.status, QueryStatus::kOk);
  EXPECT_EQ(engine.result_cache()->GetStats().hits, 1u);
  EXPECT_EQ(ResultDigest(first.result.matches, true),
            ResultDigest(second.result.matches, true));

  // Different epsilon = different signature = different entry.
  query_options.epsilon = 0.25;
  const QueryOutcome third =
      engine.Submit(workload.queries[0], query_options).get();
  ASSERT_EQ(third.status, QueryStatus::kOk);
  EXPECT_EQ(engine.result_cache()->GetStats().hits, 1u);
  engine.Shutdown();
}

TEST(ServeEngineTest, CommitInvalidatesExactlyTheStaleEntries) {
  const std::string path = testing::TempDir() + "/serve_test_live.db";
  std::remove(path.c_str());
  const size_t dim = 2;
  ASSERT_TRUE(LiveDatabase::Create(path, dim));
  LiveDatabase database(path);
  ASSERT_TRUE(database.valid());

  EngineOptions options;
  options.num_threads = 1;
  options.cache_bytes = 1 << 20;
  QueryEngine engine(&database, options);
  ASSERT_NE(engine.result_cache(), nullptr);

  const std::vector<Sequence> corpus = WalkCorpus(dim, 10, 2024);
  const auto ingest = [&](size_t from, size_t to) {
    IngestBatch batch;
    for (size_t i = from; i < to; ++i) {
      IngestOp op;
      op.points = corpus[i];
      op.seal = true;
      batch.ops.push_back(std::move(op));
    }
    const IngestOutcome outcome = engine.SubmitIngest(std::move(batch)).get();
    ASSERT_FALSE(outcome.rejected);
  };
  ingest(0, 8);

  QueryOptions query_options;
  query_options.epsilon = 0.5;
  query_options.verified = true;
  const Sequence& query_a = corpus[0];
  const Sequence& query_b = corpus[1];

  // Warm, then hit.
  ASSERT_EQ(engine.Submit(query_a, query_options).get().status,
            QueryStatus::kOk);
  ASSERT_EQ(engine.Submit(query_a, query_options).get().status,
            QueryStatus::kOk);
  ResultCache::Stats stats = engine.result_cache()->GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.invalidations, 0u);

  // A commit publishes a new snapshot: the warm entry is now stale and
  // must be invalidated — not served — on the next probe.
  ingest(8, 10);
  const QueryOutcome refreshed =
      engine.Submit(query_a, query_options).get();
  ASSERT_EQ(refreshed.status, QueryStatus::kOk);
  stats = engine.result_cache()->GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.invalidations, 1u);

  // The refreshed entry is stamped with the new snapshot: it hits again.
  ASSERT_EQ(engine.Submit(query_a, query_options).get().status,
            QueryStatus::kOk);
  stats = engine.result_cache()->GetStats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.invalidations, 1u);

  // Exactness: entries created after the commit are not collateral damage.
  ASSERT_EQ(engine.Submit(query_b, query_options).get().status,
            QueryStatus::kOk);
  ASSERT_EQ(engine.Submit(query_b, query_options).get().status,
            QueryStatus::kOk);
  stats = engine.result_cache()->GetStats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.invalidations, 1u);

  engine.Shutdown();
  std::remove(path.c_str());
}

TEST(ServeEngineTest, TenantShedStaysWithinTheClass) {
  const Workload workload = SmallWorkload(94);
  EngineOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;  // quota 2 per class
  options.policy = OverloadPolicy::kShedOldest;
  options.start_suspended = true;  // deterministic: everything queues
  options.tenant_classes = {{"t0", 1}, {"t1", 1}};
  QueryEngine engine(workload.database.get(), options);

  QueryOptions t0;
  t0.epsilon = 0.2;
  t0.tenant = 0;
  QueryOptions t1 = t0;
  t1.tenant = 1;

  std::vector<std::future<QueryOutcome>> t0_futures;
  std::vector<std::future<QueryOutcome>> t1_futures;
  t0_futures.push_back(engine.Submit(workload.queries[0], t0));
  t0_futures.push_back(engine.Submit(workload.queries[1], t0));
  t1_futures.push_back(engine.Submit(workload.queries[2], t1));
  t1_futures.push_back(engine.Submit(workload.queries[3], t1));
  // Tenant 0 overflows its quota: its own oldest query is shed; tenant
  // 1's queue is untouched.
  t0_futures.push_back(engine.Submit(workload.queries[4], t0));
  engine.Start();

  size_t t0_shed = 0;
  for (auto& f : t0_futures) {
    const QueryOutcome outcome = f.get();
    if (outcome.status == QueryStatus::kShed) ++t0_shed;
  }
  EXPECT_EQ(t0_shed, 1u);
  for (auto& f : t1_futures) {
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
  const std::vector<TenantClassStats> stats = engine.TenantStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].shed, 1u);
  EXPECT_EQ(stats[1].shed, 0u);
  engine.Shutdown();
}

// Acceptance: with the whole subsystem enabled but no budget binding,
// exact-mode results are byte-identical to a fully disabled engine.
TEST(ServeEngineTest, QoSEnabledExactModeMatchesDisabledDigests) {
  const Workload workload = SmallWorkload(95);
  QueryOptions query_options;
  query_options.epsilon = 0.2;
  query_options.verified = true;

  std::vector<uint64_t> disabled_digests;
  {
    EngineOptions options;
    options.num_threads = 2;
    QueryEngine engine(workload.database.get(), options);
    for (const Sequence& query : workload.queries) {
      const QueryOutcome outcome =
          engine.Submit(query, query_options).get();
      ASSERT_EQ(outcome.status, QueryStatus::kOk);
      disabled_digests.push_back(ResultDigest(outcome.result.matches, true));
    }
    engine.Shutdown();
  }

  EngineOptions options;
  options.num_threads = 2;
  options.cache_bytes = 1 << 20;
  options.tenant_classes = {{"gold", 3}, {"bronze", 1}};
  QueryEngine engine(workload.database.get(), options);
  for (size_t pass = 0; pass < 2; ++pass) {  // second pass serves from cache
    for (size_t i = 0; i < workload.queries.size(); ++i) {
      QueryOptions tenant_options = query_options;
      tenant_options.tenant = static_cast<uint32_t>(i % 2);
      const QueryOutcome outcome =
          engine.Submit(workload.queries[i], tenant_options).get();
      ASSERT_EQ(outcome.status, QueryStatus::kOk);
      EXPECT_EQ(ResultDigest(outcome.result.matches, true),
                disabled_digests[i]);
    }
  }
  EXPECT_GT(engine.result_cache()->GetStats().hits, 0u);
  engine.Shutdown();
}

}  // namespace
}  // namespace mdseq
