#include "geom/mbr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geom/point.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(MbrTest, StartsInvalidAndBecomesValidOnExpand) {
  Mbr m(2);
  EXPECT_FALSE(m.is_valid());
  m.Expand(Point{0.5, 0.25});
  EXPECT_TRUE(m.is_valid());
  EXPECT_EQ(m.low(), (Point{0.5, 0.25}));
  EXPECT_EQ(m.high(), (Point{0.5, 0.25}));
}

TEST(MbrTest, ExpandGrowsToCoverPoints) {
  Mbr m(2);
  m.Expand(Point{0.2, 0.8});
  m.Expand(Point{0.6, 0.1});
  EXPECT_EQ(m.low(), (Point{0.2, 0.1}));
  EXPECT_EQ(m.high(), (Point{0.6, 0.8}));
  EXPECT_TRUE(m.Contains(Point{0.4, 0.5}));
  EXPECT_FALSE(m.Contains(Point{0.7, 0.5}));
}

TEST(MbrTest, ExpandWithMbrCoversBoth) {
  Mbr a(Point{0.0, 0.0}, Point{0.2, 0.2});
  const Mbr b(Point{0.5, 0.6}, Point{0.7, 0.9});
  a.Expand(b);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_EQ(a.low(), (Point{0.0, 0.0}));
  EXPECT_EQ(a.high(), (Point{0.7, 0.9}));
}

TEST(MbrTest, ExpandWithInvalidMbrIsNoOp) {
  Mbr a(Point{0.0, 0.0}, Point{1.0, 1.0});
  const Mbr invalid(2);
  a.Expand(invalid);
  EXPECT_EQ(a.low(), (Point{0.0, 0.0}));
  EXPECT_EQ(a.high(), (Point{1.0, 1.0}));
}

TEST(MbrTest, ExpandInvalidWithValidCopies) {
  Mbr a(2);
  const Mbr b(Point{0.1, 0.2}, Point{0.3, 0.4});
  a.Expand(b);
  EXPECT_TRUE(a.is_valid());
  EXPECT_EQ(a, b);
}

TEST(MbrTest, VolumeAndMargin) {
  const Mbr m(Point{0.0, 0.0, 0.0}, Point{0.5, 0.2, 1.0});
  EXPECT_DOUBLE_EQ(m.Volume(), 0.5 * 0.2 * 1.0);
  EXPECT_DOUBLE_EQ(m.Margin(), 0.5 + 0.2 + 1.0);
}

TEST(MbrTest, DegeneratePointMbrHasZeroVolume) {
  const Mbr m = Mbr::FromPoint(Point{0.3, 0.3});
  EXPECT_DOUBLE_EQ(m.Volume(), 0.0);
  EXPECT_TRUE(m.Contains(Point{0.3, 0.3}));
}

TEST(MbrTest, IntersectsOverlappingAndTouching) {
  const Mbr a(Point{0.0, 0.0}, Point{0.5, 0.5});
  const Mbr b(Point{0.4, 0.4}, Point{0.9, 0.9});
  const Mbr touching(Point{0.5, 0.0}, Point{0.8, 0.5});
  const Mbr disjoint(Point{0.6, 0.6}, Point{0.9, 0.9});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_TRUE(a.Intersects(touching));  // shared boundary counts
  EXPECT_FALSE(a.Intersects(disjoint));
}

TEST(MbrTest, OverlapVolume) {
  const Mbr a(Point{0.0, 0.0}, Point{0.5, 0.5});
  const Mbr b(Point{0.25, 0.25}, Point{0.75, 0.75});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.25 * 0.25);
  const Mbr c(Point{0.6, 0.6}, Point{0.9, 0.9});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
}

TEST(MbrTest, EnlargementOfContainedIsZero) {
  const Mbr a(Point{0.0, 0.0}, Point{1.0, 1.0});
  const Mbr inside(Point{0.2, 0.2}, Point{0.4, 0.4});
  EXPECT_DOUBLE_EQ(a.Enlargement(inside), 0.0);
  const Mbr outside(Point{0.5, 0.5}, Point{1.5, 1.0});
  EXPECT_DOUBLE_EQ(a.Enlargement(outside), 1.5 * 1.0 - 1.0);
}

// Figure 2 of the paper: the three relative placements in 2-d.
TEST(MbrTest, MbrDistanceMatchesFigureTwoCases) {
  // Overlapping rectangles: distance zero.
  const Mbr a(Point{0.0, 0.0}, Point{0.5, 0.5});
  const Mbr b(Point{0.4, 0.4}, Point{0.9, 0.9});
  EXPECT_DOUBLE_EQ(MbrDistance(a, b), 0.0);

  // Separated along one axis only: the axis gap.
  const Mbr c(Point{0.7, 0.1}, Point{0.9, 0.4});
  EXPECT_DOUBLE_EQ(MbrDistance(a, c), 0.7 - 0.5);

  // Separated along both axes: the corner-to-corner distance.
  const Mbr d(Point{0.8, 0.9}, Point{0.9, 1.0});
  EXPECT_DOUBLE_EQ(MbrDistance(a, d),
                   std::hypot(0.8 - 0.5, 0.9 - 0.5));
}

TEST(MbrTest, MbrDistanceIsSymmetric) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    Mbr a(3);
    Mbr b(3);
    for (int i = 0; i < 3; ++i) {
      a.Expand(Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
      b.Expand(Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    }
    EXPECT_DOUBLE_EQ(MbrDistance(a, b), MbrDistance(b, a));
  }
}

// Observation 1: Dmbr lower-bounds the distance between any contained
// point pair.
TEST(MbrTest, MinDistLowerBoundsContainedPointDistances) {
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Point> pa;
    std::vector<Point> pb;
    Mbr a(3);
    Mbr b(3);
    for (int i = 0; i < 5; ++i) {
      pa.push_back(Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
      pb.push_back(Point{rng.Uniform(0.5, 1.5), rng.Uniform(0.5, 1.5),
                         rng.Uniform(0.5, 1.5)});
      a.Expand(pa.back());
      b.Expand(pb.back());
    }
    const double dmbr = MbrDistance(a, b);
    for (const Point& x : pa) {
      for (const Point& y : pb) {
        EXPECT_LE(dmbr, PointDistance(x, y) + 1e-12);
      }
    }
  }
}

TEST(MbrTest, MinDistToPoint) {
  const Mbr m(Point{0.0, 0.0}, Point{1.0, 1.0});
  EXPECT_DOUBLE_EQ(m.MinDist2(Point{0.5, 0.5}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(m.MinDist2(Point{1.5, 0.5}), 0.25);  // right of box
  EXPECT_DOUBLE_EQ(m.MinDist2(Point{1.5, 1.5}), 0.5);   // diagonal corner
}

TEST(MbrTest, MaxDistIsAtLeastMinDist) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    Mbr a(2);
    Mbr b(2);
    for (int i = 0; i < 3; ++i) {
      a.Expand(Point{rng.Uniform(), rng.Uniform()});
      b.Expand(Point{rng.Uniform(), rng.Uniform()});
    }
    EXPECT_GE(a.MaxDist2(b), a.MinDist2(b));
  }
}

TEST(MbrTest, InflateGrowsEverySide) {
  Mbr m(Point{0.3, 0.3}, Point{0.5, 0.6});
  m.Inflate(0.1);
  EXPECT_NEAR(m.low()[0], 0.2, 1e-15);
  EXPECT_NEAR(m.low()[1], 0.2, 1e-15);
  EXPECT_NEAR(m.high()[0], 0.6, 1e-15);
  EXPECT_NEAR(m.high()[1], 0.7, 1e-15);
}

TEST(MbrTest, InflatePreservesRangeSemantics) {
  // A box is within distance eps of another iff the eps-inflated box
  // intersects it, when the gap is along a single axis.
  const Mbr a(Point{0.0, 0.0}, Point{0.2, 1.0});
  const Mbr b(Point{0.45, 0.0}, Point{0.6, 1.0});
  EXPECT_GT(MbrDistance(a, b), 0.2);
  Mbr inflated = a;
  inflated.Inflate(0.25);
  EXPECT_TRUE(inflated.Intersects(b));
}

TEST(MbrTest, ToStringIsReadable) {
  const Mbr m(Point{0.0, 0.5}, Point{1.0, 0.75});
  EXPECT_EQ(m.ToString(), "[(0, 0.5), (1, 0.75)]");
  EXPECT_EQ(Mbr(2).ToString(), "[invalid]");
}

}  // namespace
}  // namespace mdseq
