// Independent-reference tests: key quantities recomputed with a second,
// deliberately different implementation strategy, so a shared bug in the
// production code and its unit tests cannot hide.

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/mbr_distance.h"
#include "core/partitioning.h"
#include "gen/fractal.h"
#include "gen/video.h"
#include "index/rstar_tree.h"
#include "util/random.h"

namespace mdseq {
namespace {

// Reference Dnorm: enumerate every contiguous MBR window [k, l] of the
// target, every feasible split of the probe count into a left-partial,
// fully-counted middle (which must contain j), and right-partial — the
// brute-force reading of Definition 5 restricted to windows with a single
// partial member at one end (LD/RD). Deliberately structured differently
// from VisitDnormWindows.
double ReferenceDnorm(size_t probe_count, const Partition& target, size_t j,
                      const std::vector<double>& dmbr) {
  if (target[j].count() >= probe_count) return dmbr[j];
  size_t total = 0;
  for (const SequenceMbr& piece : target) total += piece.count();
  if (total < probe_count) {
    double weighted = 0.0;
    for (size_t t = 0; t < target.size(); ++t) {
      weighted += dmbr[t] * static_cast<double>(target[t].count());
    }
    return weighted / static_cast<double>(total);
  }

  double best = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < target.size(); ++k) {
    for (size_t l = k; l < target.size(); ++l) {
      if (j < k || j > l) continue;  // window must contain j
      // Try partial-on-right (LD): members k..l-1 full, l partial.
      {
        size_t full = 0;
        double weighted = 0.0;
        for (size_t t = k; t < l; ++t) {
          full += target[t].count();
          weighted += dmbr[t] * static_cast<double>(target[t].count());
        }
        if (j < l && full < probe_count &&
            probe_count <= full + target[l].count()) {
          const size_t partial = probe_count - full;
          const double value =
              (weighted + dmbr[l] * static_cast<double>(partial)) /
              static_cast<double>(probe_count);
          best = std::min(best, value);
        }
      }
      // Try partial-on-left (RD): members k+1..l full, k partial.
      {
        size_t full = 0;
        double weighted = 0.0;
        for (size_t t = k + 1; t <= l; ++t) {
          full += target[t].count();
          weighted += dmbr[t] * static_cast<double>(target[t].count());
        }
        if (j > k && full < probe_count &&
            probe_count <= full + target[k].count()) {
          const size_t partial = probe_count - full;
          const double value =
              (weighted + dmbr[k] * static_cast<double>(partial)) /
              static_cast<double>(probe_count);
          best = std::min(best, value);
        }
      }
    }
  }
  return best;
}

TEST(IndependentReferenceTest, DnormAgreesWithBruteForceEnumeration) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const bool video = rng.Bernoulli(0.5);
    const size_t length = static_cast<size_t>(rng.UniformInt(8, 200));
    const Sequence data =
        video ? GenerateVideoSequence(length, VideoOptions(), &rng)
              : GenerateFractalSequence(length, FractalOptions(), &rng);
    PartitioningOptions part;
    part.max_points = static_cast<size_t>(rng.UniformInt(4, 32));
    const Partition target = PartitionSequence(data.View(), part);

    const Sequence probe_seq =
        GenerateFractalSequence(20, FractalOptions(), &rng);
    const Mbr probe = probe_seq.BoundingBox();
    const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
    const size_t probe_count =
        static_cast<size_t>(rng.UniformInt(1, 80));

    for (size_t j = 0; j < target.size(); ++j) {
      const double reference =
          ReferenceDnorm(probe_count, target, j, dmbr);
      const double actual =
          NormalizedDistance(probe_count, target, j, dmbr).distance;
      ASSERT_NEAR(actual, reference, 1e-12)
          << "trial " << trial << " j " << j << " probe " << probe_count;
    }
  }
}

// Reference SequenceDistance computed point-by-point without the profile
// machinery (nested loops, no subviews).
double ReferenceSequenceDistance(const Sequence& a, const Sequence& b) {
  const Sequence& shorter = a.size() <= b.size() ? a : b;
  const Sequence& longer = a.size() <= b.size() ? b : a;
  double best = std::numeric_limits<double>::infinity();
  for (size_t offset = 0; offset + shorter.size() <= longer.size();
       ++offset) {
    double sum = 0.0;
    for (size_t i = 0; i < shorter.size(); ++i) {
      double square = 0.0;
      for (size_t k = 0; k < shorter.dim(); ++k) {
        const double diff = shorter[i][k] - longer[offset + i][k];
        square += diff * diff;
      }
      sum += std::sqrt(square);
    }
    best = std::min(best, sum / static_cast<double>(shorter.size()));
  }
  return best;
}

TEST(IndependentReferenceTest, SequenceDistanceAgrees) {
  Rng rng(2025);
  for (int trial = 0; trial < 30; ++trial) {
    const Sequence a = GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(1, 60)), FractalOptions(), &rng);
    const Sequence b = GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(1, 60)), FractalOptions(), &rng);
    EXPECT_NEAR(SequenceDistance(a.View(), b.View()),
                ReferenceSequenceDistance(a, b), 1e-12);
  }
}

// kNN with extended (box) queries, against brute force — the point-query
// case is covered elsewhere.
TEST(IndependentReferenceTest, BoxQueryNearestNeighborsAgree) {
  Rng rng(2026);
  RStarTree tree(2, RStarTreeOptions::ForFanout(8));
  std::vector<IndexEntry> reference;
  for (uint64_t i = 0; i < 300; ++i) {
    Point low{rng.Uniform(), rng.Uniform()};
    Point high = low;
    for (double& v : high) v += 0.05 * rng.Uniform();
    Mbr box(low, high);
    tree.Insert(box, i);
    reference.push_back(IndexEntry{box, i});
  }
  for (int trial = 0; trial < 10; ++trial) {
    Point low{rng.Uniform(), rng.Uniform()};
    Point high = low;
    for (double& v : high) v += 0.2 * rng.Uniform();
    const Mbr query(low, high);
    const auto nearest = tree.NearestNeighbors(query, 7);
    ASSERT_EQ(nearest.size(), 7u);
    std::vector<double> all;
    for (const IndexEntry& e : reference) {
      all.push_back(query.MinDist2(e.mbr));
    }
    std::sort(all.begin(), all.end());
    for (size_t i = 0; i < nearest.size(); ++i) {
      EXPECT_NEAR(query.MinDist2(nearest[i].mbr), all[i], 1e-12);
    }
  }
}

}  // namespace
}  // namespace mdseq
