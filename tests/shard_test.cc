// Scatter-gather serving (src/shard): placement, wire codec, and the
// coordinator's global query semantics.
//
// The load-bearing suites are the differentials: for every backend the
// sharded answer must be byte-identical to the single-database answer —
// same candidates, same matches, same distances, same intervals — across
// shard counts {1, 2, 4, 7}, both placement policies, and all three query
// kinds (Search, SearchVerified, and the distributed SearchNearest cutoff
// exchange). A concurrent suite appends into a live shard set while
// coordinator queries run (the tsan target), then re-checks equality at
// rest.
//
// Labels: `shard` and `tsan` (build with -DMDSEQ_SANITIZE=thread and run
// `ctest -L tsan`).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "eval/experiment.h"
#include "gen/walk.h"
#include "ingest/live_database.h"
#include "obs/http/server.h"
#include "obs/metrics.h"
#include "shard/coordinator.h"
#include "shard/message.h"
#include "shard/placement.h"
#include "shard/shard_node.h"
#include "shard/shard_set.h"
#include "shard/transport.h"
#include "storage/disk_database.h"
#include "util/random.h"

namespace mdseq {
namespace {

Workload SmallWorkload(uint64_t seed, size_t sequences = 90) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = sequences;
  config.min_length = 56;
  config.max_length = 200;
  config.num_queries = 6;
  config.seed = seed;
  return BuildWorkload(config);
}

void ExpectSameResult(const SearchResult& single, const SearchResult& sharded,
                      const char* what) {
  ASSERT_EQ(single.candidates.size(), sharded.candidates.size()) << what;
  for (size_t i = 0; i < single.candidates.size(); ++i) {
    EXPECT_EQ(single.candidates[i], sharded.candidates[i]) << what;
  }
  ASSERT_EQ(single.matches.size(), sharded.matches.size()) << what;
  for (size_t i = 0; i < single.matches.size(); ++i) {
    const SequenceMatch& a = single.matches[i];
    const SequenceMatch& b = sharded.matches[i];
    EXPECT_EQ(a.sequence_id, b.sequence_id) << what;
    EXPECT_EQ(a.min_dnorm, b.min_dnorm) << what << " id " << a.sequence_id;
    EXPECT_EQ(a.exact_distance, b.exact_distance)
        << what << " id " << a.sequence_id;
    ASSERT_EQ(a.solution_interval.size(), b.solution_interval.size())
        << what << " id " << a.sequence_id;
    for (size_t j = 0; j < a.solution_interval.size(); ++j) {
      EXPECT_EQ(a.solution_interval[j].begin, b.solution_interval[j].begin);
      EXPECT_EQ(a.solution_interval[j].end, b.solution_interval[j].end);
    }
  }
  EXPECT_FALSE(sharded.interrupted) << what;
}

void ExpectSameNearest(const std::vector<SequenceMatch>& single,
                       const std::vector<SequenceMatch>& sharded,
                       const char* what) {
  ASSERT_EQ(single.size(), sharded.size()) << what;
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i].sequence_id, sharded[i].sequence_id) << what;
    EXPECT_EQ(single[i].exact_distance, sharded[i].exact_distance)
        << what << " rank " << i;
    EXPECT_EQ(single[i].min_dnorm, sharded[i].min_dnorm)
        << what << " rank " << i;
    ASSERT_EQ(single[i].solution_interval.size(),
              sharded[i].solution_interval.size())
        << what << " rank " << i;
    for (size_t j = 0; j < single[i].solution_interval.size(); ++j) {
      EXPECT_EQ(single[i].solution_interval[j].begin,
                sharded[i].solution_interval[j].begin);
      EXPECT_EQ(single[i].solution_interval[j].end,
                sharded[i].solution_interval[j].end);
    }
  }
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(PlacementTest, PureAndStable) {
  for (const PlacementPolicy policy :
       {PlacementPolicy::kHash, PlacementPolicy::kHilbert}) {
    for (uint64_t id = 0; id < 500; ++id) {
      const uint32_t shard = PlaceSequence(id, 7, policy);
      EXPECT_LT(shard, 7u);
      EXPECT_EQ(shard, PlaceSequence(id, 7, policy));
    }
  }
  // One shard is always shard 0.
  EXPECT_EQ(PlaceSequence(123, 1, PlacementPolicy::kHash), 0u);
  EXPECT_EQ(PlaceSequence(123, 1, PlacementPolicy::kHilbert), 0u);
}

TEST(PlacementTest, BothPoliciesBalanceDenseIds) {
  // Dense ids starting at 0 are the universal case (every database numbers
  // from zero); no shard may end up empty or hoarding.
  for (const PlacementPolicy policy :
       {PlacementPolicy::kHash, PlacementPolicy::kHilbert}) {
    constexpr size_t kCount = 4000;
    constexpr size_t kShards = 5;
    std::vector<size_t> sizes(kShards, 0);
    for (uint64_t id = 0; id < kCount; ++id) {
      ++sizes[PlaceSequence(id, kShards, policy)];
    }
    for (size_t shard = 0; shard < kShards; ++shard) {
      EXPECT_GT(sizes[shard], kCount / kShards / 2)
          << PlacementPolicyName(policy) << " shard " << shard;
      EXPECT_LT(sizes[shard], kCount * 2 / kShards)
          << PlacementPolicyName(policy) << " shard " << shard;
    }
  }
}

TEST(PlacementTest, MapRoundTripsAndRejectsUnknownIds) {
  const std::unique_ptr<ShardPlacement> placement =
      ShardPlacement::Build(300, 4, PlacementPolicy::kHash);
  EXPECT_EQ(placement->num_sequences(), 300u);
  size_t total = 0;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    total += placement->shard_size(shard);
  }
  EXPECT_EQ(total, 300u);
  for (uint64_t id = 0; id < 300; ++id) {
    const uint32_t shard = placement->ShardOf(id);
    const uint64_t local = placement->LocalOf(id);
    EXPECT_EQ(placement->GlobalOf(shard, local), id);
  }
  // Unknown (shard, local) pairs translate to the invalid sentinel rather
  // than tripping a check — a lagging shard may answer with ids the
  // coordinator's placement has not registered.
  EXPECT_EQ(placement->GlobalOf(0, 1u << 20), ShardPlacement::kInvalidId);
  EXPECT_EQ(placement->GlobalOf(9, 0), ShardPlacement::kInvalidId);
}

TEST(PlacementTest, ParseNames) {
  PlacementPolicy policy;
  EXPECT_TRUE(ParsePlacementPolicy("hash", &policy));
  EXPECT_EQ(policy, PlacementPolicy::kHash);
  EXPECT_TRUE(ParsePlacementPolicy("hilbert", &policy));
  EXPECT_EQ(policy, PlacementPolicy::kHilbert);
  EXPECT_FALSE(ParsePlacementPolicy("range", &policy));
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(ShardCodecTest, RequestRoundTrip) {
  ShardRequest request;
  request.rpc = ShardRpc::kVerify;
  request.deadline_us = 12345;
  request.epsilon = 0.375;
  request.cutoff = 0.125;
  WalkOptions walk;
  walk.dim = 3;
  Rng rng(7);
  request.query = GenerateRandomWalk(41, walk, &rng);
  request.ids = {0, 5, 9, 1u << 30};

  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(EncodeShardRequest(request), &decoded));
  EXPECT_EQ(decoded.rpc, ShardRpc::kVerify);
  EXPECT_EQ(decoded.deadline_us, 12345u);
  EXPECT_EQ(decoded.epsilon, 0.375);
  EXPECT_EQ(decoded.cutoff, 0.125);
  ASSERT_EQ(decoded.query.size(), request.query.size());
  ASSERT_EQ(decoded.query.dim(), 3u);
  for (size_t i = 0; i < request.query.size(); ++i) {
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(decoded.query[i][d], request.query[i][d]);
    }
  }
  EXPECT_EQ(decoded.ids, request.ids);
}

TEST(ShardCodecTest, ResponseRoundTrip) {
  ShardResponse response;
  response.ok = true;
  response.interrupted = true;
  response.num_sequences = 77;
  response.candidates = {1, 2, 40};
  ShardMatch match;
  match.local_id = 40;
  match.min_dnorm = 0.25;
  match.exact_distance = 0.5;
  match.intervals = {{3, 9}, {12, 30}};
  response.matches.push_back(match);
  response.stats.node_accesses = 11;
  response.stats.dnorm_evaluations = 42;
  response.stats.verify_ns = 9999;

  ShardResponse decoded;
  ASSERT_TRUE(DecodeShardResponse(EncodeShardResponse(response), &decoded));
  EXPECT_TRUE(decoded.ok);
  EXPECT_TRUE(decoded.interrupted);
  EXPECT_EQ(decoded.num_sequences, 77u);
  EXPECT_EQ(decoded.candidates, response.candidates);
  ASSERT_EQ(decoded.matches.size(), 1u);
  EXPECT_EQ(decoded.matches[0].local_id, 40u);
  EXPECT_EQ(decoded.matches[0].min_dnorm, 0.25);
  EXPECT_EQ(decoded.matches[0].exact_distance, 0.5);
  ASSERT_EQ(decoded.matches[0].intervals.size(), 2u);
  EXPECT_EQ(decoded.matches[0].intervals[1].end, 30u);
  EXPECT_EQ(decoded.stats.node_accesses, 11u);
  EXPECT_EQ(decoded.stats.dnorm_evaluations, 42u);
  EXPECT_EQ(decoded.stats.verify_ns, 9999u);
}

TEST(ShardCodecTest, TruncatedAndCorruptPayloadsFailCleanly) {
  ShardRequest request;
  request.rpc = ShardRpc::kSearch;
  WalkOptions walk;
  walk.dim = 2;
  Rng rng(3);
  request.query = GenerateRandomWalk(20, walk, &rng);
  const std::string bytes = EncodeShardRequest(request);

  ShardRequest decoded;
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    EXPECT_FALSE(DecodeShardRequest(bytes.substr(0, cut), &decoded))
        << "cut at " << cut;
  }
  // Trailing garbage and a flipped magic must fail too.
  EXPECT_FALSE(DecodeShardRequest(bytes + "x", &decoded));
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x40;
  EXPECT_FALSE(DecodeShardRequest(bad_magic, &decoded));

  ShardResponse ok_response;
  ok_response.ok = true;
  const std::string response_bytes = EncodeShardResponse(ok_response);
  ShardResponse decoded_response;
  for (size_t cut = 0; cut < response_bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeShardResponse(response_bytes.substr(0, cut),
                                     &decoded_response));
  }
}

// ---------------------------------------------------------------------------
// Differential: sharded == single database, every backend and policy
// ---------------------------------------------------------------------------

class ShardDifferentialTest
    : public ::testing::TestWithParam<std::tuple<size_t, PlacementPolicy>> {};

TEST_P(ShardDifferentialTest, InMemoryThresholdAndNearest) {
  const size_t num_shards = std::get<0>(GetParam());
  const PlacementPolicy policy = std::get<1>(GetParam());
  const Workload workload = SmallWorkload(17);
  SimilaritySearch single(workload.database.get());

  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*workload.database, num_shards, policy);
  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());

  for (const Sequence& query : workload.queries) {
    for (const double epsilon : {0.05, 0.2, 0.6}) {
      ExpectSameResult(single.Search(query.View(), epsilon),
                       coordinator.Search(query.View(), epsilon), "Search");
      ExpectSameResult(single.SearchVerified(query.View(), epsilon),
                       coordinator.SearchVerified(query.View(), epsilon),
                       "SearchVerified");
    }
    for (const size_t k : {1u, 5u, 23u}) {
      ExpectSameNearest(single.SearchNearest(query.View(), k),
                        coordinator.SearchNearest(query.View(), k),
                        "SearchNearest");
    }
  }
}

TEST_P(ShardDifferentialTest, OnDiskRoundTrip) {
  const size_t num_shards = std::get<0>(GetParam());
  const PlacementPolicy policy = std::get<1>(GetParam());
  const Workload workload = SmallWorkload(29, 60);
  SimilaritySearch single(workload.database.get());

  const std::string dir = ::testing::TempDir() + "shard_set_" +
                          std::to_string(num_shards) + "_" +
                          PlacementPolicyName(policy);
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  ASSERT_TRUE(ShardSet::BuildOnDisk(*workload.database, dir, num_shards,
                                    policy));
  const std::unique_ptr<ShardSet> set = ShardSet::OpenOnDisk(dir, 64);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->num_shards(), num_shards);
  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());

  const Sequence& query = workload.queries.front();
  for (const double epsilon : {0.1, 0.4}) {
    ExpectSameResult(single.SearchVerified(query.View(), epsilon),
                     coordinator.SearchVerified(query.View(), epsilon),
                     "disk SearchVerified");
  }
  ExpectSameNearest(single.SearchNearest(query.View(), 7),
                    coordinator.SearchNearest(query.View(), 7),
                    "disk SearchNearest");
}

INSTANTIATE_TEST_SUITE_P(
    ShardCountsAndPolicies, ShardDifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values(PlacementPolicy::kHash,
                                         PlacementPolicy::kHilbert)),
    [](const auto& info) {
      return std::string("N") + std::to_string(std::get<0>(info.param)) +
             "_" + PlacementPolicyName(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// HTTP transport: differential over real sockets, keep-alive reuse
// ---------------------------------------------------------------------------

TEST(HttpShardTransportTest, DifferentialOverRealSocketsWithReuse) {
  const Workload workload = SmallWorkload(31, 50);
  SimilaritySearch single(workload.database.get());
  constexpr size_t kShards = 3;
  const std::unique_ptr<ShardSet> set = ShardSet::BuildInMemory(
      *workload.database, kShards, PlacementPolicy::kHash);

  std::vector<std::unique_ptr<obs::http::HttpServer>> servers;
  std::vector<HttpShardTransport::Endpoint> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    auto server = std::make_unique<obs::http::HttpServer>();
    set->node(i)->Register(server.get());
    ASSERT_TRUE(server->Start());
    endpoints.push_back({"127.0.0.1", server->port()});
    servers.push_back(std::move(server));
  }
  HttpShardTransport transport(endpoints);
  Coordinator coordinator(&transport, set->placement());

  const Sequence& query = workload.queries.front();
  ExpectSameResult(single.SearchVerified(query.View(), 0.3),
                   coordinator.SearchVerified(query.View(), 0.3),
                   "http SearchVerified");
  // The fan-out parked one keep-alive connection per shard; the next query
  // must reuse them instead of dialing fresh sockets.
  EXPECT_EQ(transport.idle_connections(), kShards);
  ExpectSameNearest(single.SearchNearest(query.View(), 5),
                    coordinator.SearchNearest(query.View(), 5),
                    "http SearchNearest");
  EXPECT_EQ(transport.idle_connections(), kShards);
}

TEST(HttpShardTransportTest, UnreachableShardIsATransportFailure) {
  // Nothing listens on the endpoint: Call must fail (not hang) and carry a
  // diagnostic.
  HttpShardTransport transport({{"127.0.0.1", 1}});
  ShardRequest request;
  request.rpc = ShardRpc::kStatus;
  request.deadline_us = 50 * 1000;
  ShardResponse response;
  EXPECT_FALSE(transport.Call(0, request, &response));
  EXPECT_FALSE(response.error.empty());
}

// ---------------------------------------------------------------------------
// Failure policies
// ---------------------------------------------------------------------------

/// Wraps a transport, failing every call to one shard.
class OneShardDown : public ShardTransport {
 public:
  OneShardDown(ShardTransport* inner, uint32_t down)
      : inner_(inner), down_(down) {}

  size_t num_shards() const override { return inner_->num_shards(); }
  bool Call(uint32_t shard, const ShardRequest& request,
            ShardResponse* response) override {
    if (shard == down_) {
      response->error = "injected outage";
      return false;
    }
    return inner_->Call(shard, request, response);
  }

 private:
  ShardTransport* inner_;
  uint32_t down_;
};

TEST(CoordinatorFailureTest, FailFastClosesTheQuery) {
  const Workload workload = SmallWorkload(43, 60);
  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*workload.database, 4, PlacementPolicy::kHash);
  LoopbackTransport loopback(set->nodes());
  OneShardDown transport(&loopback, 2);
  Coordinator coordinator(&transport, set->placement());  // default failfast

  const SearchResult result =
      coordinator.SearchVerified(workload.queries.front().View(), 0.4);
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(result.candidates.empty());
  EXPECT_TRUE(result.matches.empty());
  EXPECT_EQ(result.stats.shards_total, 4u);
  EXPECT_EQ(result.stats.shards_failed, 1u);
}

TEST(CoordinatorFailureTest, DegradedReturnsSurvivingShardsAndFlagsCoverage) {
  const Workload workload = SmallWorkload(43, 60);
  SimilaritySearch single(workload.database.get());
  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*workload.database, 4, PlacementPolicy::kHash);
  LoopbackTransport loopback(set->nodes());
  OneShardDown transport(&loopback, 2);
  CoordinatorOptions options;
  options.failure = CoordinatorOptions::FailurePolicy::kDegraded;
  Coordinator coordinator(&transport, set->placement(), options);

  const Sequence& query = workload.queries.front();
  const SearchResult full = single.SearchVerified(query.View(), 0.4);
  const SearchResult partial = coordinator.SearchVerified(query.View(), 0.4);
  EXPECT_FALSE(partial.interrupted);
  EXPECT_EQ(partial.stats.shards_failed, 1u);
  // Every returned match is correct (a subset of the full answer), and no
  // match from a surviving shard is missing.
  std::set<size_t> full_ids;
  for (const SequenceMatch& m : full.matches) full_ids.insert(m.sequence_id);
  size_t surviving = 0;
  for (const SequenceMatch& m : partial.matches) {
    EXPECT_TRUE(full_ids.count(m.sequence_id)) << m.sequence_id;
    EXPECT_NE(set->placement()->ShardOf(m.sequence_id), 2u);
  }
  for (const SequenceMatch& m : full.matches) {
    if (set->placement()->ShardOf(m.sequence_id) != 2) ++surviving;
  }
  EXPECT_EQ(partial.matches.size(), surviving);
}

// ---------------------------------------------------------------------------
// Engine + introspection integration
// ---------------------------------------------------------------------------

TEST(ShardEngineTest, CoordinatorModeServesQueriesAndMetrics) {
  const Workload workload = SmallWorkload(59, 60);
  SimilaritySearch single(workload.database.get());
  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*workload.database, 3, PlacementPolicy::kHash);
  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());

  obs::MetricsRegistry registry;
  EngineOptions options;
  options.num_threads = 2;
  options.metrics = &registry;
  QueryEngine engine(&coordinator, options);
  EXPECT_EQ(engine.coordinator(), &coordinator);

  QueryOptions query_options;
  query_options.epsilon = 0.3;
  query_options.verified = true;
  const Sequence& query = workload.queries.front();
  QueryOutcome outcome =
      engine.Submit(Sequence(query), query_options).get();
  ASSERT_EQ(outcome.status, QueryStatus::kOk);
  ExpectSameResult(single.SearchVerified(query.View(), 0.3), outcome.result,
                   "engine coordinator query");
  EXPECT_EQ(outcome.result.stats.shards_total, 3u);
  EXPECT_EQ(outcome.result.stats.shards_failed, 0u);

  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_GT(stats.fanout_wait_ns, 0u);

  const std::string metrics = registry.PrometheusText();
  EXPECT_NE(metrics.find("mdseq_shard_rpcs_total"), std::string::npos);
  EXPECT_NE(metrics.find("mdseq_shard_count 3"), std::string::npos);
  engine.Shutdown();
}

TEST(ShardEngineTest, DebugJsonReportsEveryShard) {
  const Workload workload = SmallWorkload(61, 40);
  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*workload.database, 2, PlacementPolicy::kHash);
  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());
  const std::string json = coordinator.DebugJson();
  EXPECT_NE(json.find("\"num_shards\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"placement\":\"hash\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Concurrent ingestion into a live shard set
// ---------------------------------------------------------------------------

TEST(ShardLiveTest, QueriesRaceAppendsThenMatchAtRest) {
  const std::string dir = ::testing::TempDir() + "shard_live";
  ASSERT_EQ(std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str()),
            0);
  constexpr size_t kDim = 2;
  constexpr size_t kInitial = 24;
  constexpr size_t kAppended = 40;
  const std::unique_ptr<ShardSet> set =
      ShardSet::CreateLive(dir, kDim, 3, PlacementPolicy::kHash);
  ASSERT_NE(set, nullptr);

  WalkOptions walk;
  walk.dim = kDim;
  Rng rng(97);
  std::vector<Sequence> corpus;
  for (size_t i = 0; i < kInitial + kAppended; ++i) {
    corpus.push_back(GenerateRandomWalk(
        static_cast<size_t>(rng.UniformInt(40, 120)), walk, &rng));
  }
  for (size_t i = 0; i < kInitial; ++i) {
    ASSERT_EQ(set->AppendLive(corpus[i]), i);
  }

  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());
  const Sequence query = GenerateRandomWalk(60, walk, &rng);

  // One writer appends the tail of the corpus (all shards, single ingest
  // writer) while reader threads hammer threshold + top-k queries. Every
  // mid-flight result must be internally consistent: translated ids only,
  // matches sorted ascending, distances within the threshold.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (size_t i = kInitial; i < kInitial + kAppended; ++i) {
      ASSERT_EQ(set->AppendLive(corpus[i]), i);
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const SearchResult result =
            coordinator.SearchVerified(query.View(), 0.5);
        EXPECT_FALSE(result.interrupted);
        for (size_t i = 1; i < result.matches.size(); ++i) {
          EXPECT_LT(result.matches[i - 1].sequence_id,
                    result.matches[i].sequence_id);
        }
        for (const SequenceMatch& m : result.matches) {
          EXPECT_LT(m.sequence_id, kInitial + kAppended);
          EXPECT_LE(m.exact_distance, 0.5);
        }
        const std::vector<SequenceMatch> nearest =
            coordinator.SearchNearest(query.View(), 5);
        EXPECT_LE(nearest.size(), 5u);
        for (size_t i = 1; i < nearest.size(); ++i) {
          EXPECT_LE(nearest[i - 1].exact_distance, nearest[i].exact_distance);
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // At rest the sharded answers must be byte-identical to a single live
  // database holding the same sequences in the same order.
  const std::string single_path = dir + "/single.mdseq";
  ASSERT_TRUE(LiveDatabase::Create(single_path, kDim));
  LiveDatabase single(single_path);
  ASSERT_TRUE(single.valid());
  for (const Sequence& s : corpus) {
    const uint64_t id = single.BeginSequence();
    ASSERT_TRUE(single.AppendPoints(id, s.View()));
    ASSERT_TRUE(single.SealSequence(id));
  }
  ASSERT_TRUE(single.Commit());
  ExpectSameResult(single.SearchVerified(query.View(), 0.5),
                   coordinator.SearchVerified(query.View(), 0.5),
                   "live at rest");
}

}  // namespace
}  // namespace mdseq
