// Crash-recovery torture tests for the ingest WAL and the live database:
// the log is truncated at every byte offset (a simulated torn write) and
// the scan must recover exactly the fully committed prefix; the database
// copies taken mid-ingest must reopen with every acknowledged point — or
// refuse to open at all when the damage is in a header.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/fractal.h"
#include "ingest/live_database.h"
#include "ingest/wal.h"
#include "storage/disk_database.h"
#include "storage/page_file.h"
#include "util/random.h"

namespace mdseq {
namespace {

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

uint64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.is_open() ? static_cast<uint64_t>(in.tellg()) : 0;
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(wal_path_.c_str());
    std::remove(copy_path_.c_str());
  }

  std::string wal_path_ = testing::TempDir() + "/wal_recovery_test.wal";
  std::string copy_path_ = testing::TempDir() + "/wal_recovery_copy.wal";
};

TEST_F(WalRecoveryTest, Crc32KnownValue) {
  // The standard reflected CRC-32 check value.
  EXPECT_EQ(WalCrc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(WalCrc32("", 0), 0u);
}

TEST_F(WalRecoveryTest, RoundTripsRecordsAcrossCommits) {
  WalWriter writer;
  ASSERT_TRUE(writer.Create(wal_path_));
  std::vector<std::vector<uint8_t>> payloads;
  for (int commit = 0; commit < 4; ++commit) {
    for (int r = 0; r < 3; ++r) {
      std::vector<uint8_t> payload(
          static_cast<size_t>(commit * 13 + r * 5 + 1));
      for (size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<uint8_t>(commit * 31 + r * 7 + i);
      }
      ASSERT_TRUE(writer.Append(WalRecordType::kAppendPoints, payload.data(),
                                payload.size()));
      payloads.push_back(std::move(payload));
    }
    ASSERT_TRUE(writer.Commit());
  }
  EXPECT_EQ(writer.commits(), 4u);
  EXPECT_EQ(writer.records(), payloads.size());
  writer.Close();

  const WalScanResult scan = WalScan(wal_path_);
  ASSERT_TRUE(scan.ok);
  EXPECT_FALSE(scan.truncated_tail);
  ASSERT_EQ(scan.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(scan.records[i].type, WalRecordType::kAppendPoints);
    EXPECT_EQ(scan.records[i].payload, payloads[i]);
  }
}

TEST_F(WalRecoveryTest, MissingFileIsAnEmptyLog) {
  const WalScanResult scan = WalScan(wal_path_);
  EXPECT_TRUE(scan.ok);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_TRUE(scan.records.empty());
}

// The torture core: truncate the log at EVERY byte offset and check that
// the scan recovers exactly the records of commits that were fully on disk
// before the cut — never a record of the torn commit, never a lost record
// of an earlier one.
TEST_F(WalRecoveryTest, TruncationAtEveryByteRecoversCommittedPrefix) {
  WalWriter writer;
  ASSERT_TRUE(writer.Create(wal_path_));
  // Record counts and the file length after each commit. Payload sizes mix
  // sub-page and page-spanning records so frames straddle page boundaries.
  std::vector<uint64_t> commit_end;      // file length after commit i
  std::vector<size_t> records_after;     // total records after commit i
  size_t total_records = 0;
  const size_t payload_sizes[] = {9, 100, 5000, 1, 700};
  for (int commit = 0; commit < 3; ++commit) {
    for (int r = 0; r < 2; ++r) {
      const size_t size = payload_sizes[(commit * 2 + r) % 5];
      std::vector<uint8_t> payload(size);
      for (size_t i = 0; i < size; ++i) {
        payload[i] = static_cast<uint8_t>(i ^ (commit * 2 + r));
      }
      ASSERT_TRUE(writer.Append(WalRecordType::kAppendPoints, payload.data(),
                                payload.size()));
      ++total_records;
    }
    ASSERT_TRUE(writer.Commit());
    commit_end.push_back(FileSize(wal_path_));
    records_after.push_back(total_records);
  }
  writer.Close();

  const std::vector<uint8_t> full = ReadFileBytes(wal_path_);
  ASSERT_EQ(full.size(), commit_end.back());
  const WalScanResult reference = WalScan(wal_path_);
  ASSERT_TRUE(reference.ok);
  ASSERT_EQ(reference.records.size(), total_records);

  // Stride 1 near the start (header damage) would make this loop large;
  // the header is all-or-nothing anyway, so sample it and walk every byte
  // of the data region.
  for (uint64_t cut = 0; cut <= full.size();
       cut += (cut < kPageSize ? 512 : 1)) {
    std::vector<uint8_t> torn(full.begin(), full.begin() + cut);
    WriteFileBytes(copy_path_, torn);
    const WalScanResult scan = WalScan(copy_path_);
    if (cut < kPageSize) {
      // Not even a whole header: either rejected or (cut == 0) an empty
      // file, which is indistinguishable from a missing log.
      if (scan.ok) {
        EXPECT_TRUE(scan.records.empty()) << "cut=" << cut;
      }
      continue;
    }
    ASSERT_TRUE(scan.ok) << "cut=" << cut;
    // Durability floor: every record of a commit whose bytes lie entirely
    // before the cut was acknowledged and MUST be recovered. Complete
    // frames of the torn (unacknowledged) commit may also survive — that
    // is harmless, recovery is record-granular — but never a torn frame
    // and never out of order: whatever is recovered must be an exact
    // prefix of the full log.
    size_t floor = 0;
    for (size_t i = 0; i < commit_end.size(); ++i) {
      if (commit_end[i] <= cut) floor = records_after[i];
    }
    ASSERT_GE(scan.records.size(), floor) << "cut=" << cut;
    ASSERT_LE(scan.records.size(), total_records) << "cut=" << cut;
    for (size_t i = 0; i < scan.records.size(); ++i) {
      EXPECT_EQ(scan.records[i].payload, reference.records[i].payload)
          << "cut=" << cut << " record=" << i;
    }
  }
}

// A flipped byte inside a committed frame must stop the scan at that frame
// (CRC mismatch reported as a torn tail), still yielding the clean prefix.
TEST_F(WalRecoveryTest, CorruptedFrameStopsScanAtPriorRecords) {
  WalWriter writer;
  ASSERT_TRUE(writer.Create(wal_path_));
  std::vector<uint8_t> payload(300, 0xAB);
  for (int commit = 0; commit < 3; ++commit) {
    ASSERT_TRUE(writer.Append(WalRecordType::kAppendPoints, payload.data(),
                              payload.size()));
    ASSERT_TRUE(writer.Commit());
  }
  const uint64_t second_commit_page = kPageSize * 2;  // header + commit 0
  writer.Close();

  std::vector<uint8_t> bytes = ReadFileBytes(wal_path_);
  bytes[second_commit_page + 64] ^= 0xFF;  // inside commit 1's frame
  WriteFileBytes(copy_path_, bytes);

  const WalScanResult scan = WalScan(copy_path_);
  ASSERT_TRUE(scan.ok);
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(scan.records.size(), 1u);  // only commit 0 survives
}

// --- PageFile durability regression (satellite: Sync at checkpoints) ----

class PageFileSyncTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(copy_.c_str());
  }
  std::string path_ = testing::TempDir() + "/page_file_sync_test.db";
  std::string copy_ = testing::TempDir() + "/page_file_sync_copy.db";
};

TEST_F(PageFileSyncTest, SyncFlushesWithoutTouchingHeader) {
  PageFile file;
  ASSERT_TRUE(file.Create(path_));
  const uint64_t syncs_before = file.syncs();
  Page page{};
  page.data[0] = 42;
  const PageId id = file.Allocate();
  ASSERT_TRUE(file.Write(id, page));
  ASSERT_TRUE(file.Sync());
  EXPECT_EQ(file.syncs(), syncs_before + 1);
  // The data must be on disk now even though the header (and its page
  // count) has not been republished: a copy of the raw file carries it.
  std::vector<uint8_t> bytes = ReadFileBytes(path_);
  ASSERT_GE(bytes.size(), (id + 2) * kPageSize);
  EXPECT_EQ(bytes[(id + 1) * kPageSize], 42);
  // set_root_hint stays the single commit point for structural changes.
  ASSERT_TRUE(file.set_root_hint(id));
  file.Close();
  PageFile reopened;
  ASSERT_TRUE(reopened.Open(path_));
  EXPECT_EQ(reopened.root_hint(), id);
  Page back{};
  ASSERT_TRUE(reopened.Read(id, &back));
  EXPECT_EQ(back.data[0], 42);
}

// --- LiveDatabase crash recovery ----------------------------------------

class LiveCrashTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p :
         {live_, live_ + ".wal", live_ + ".wal.new", crash_,
          crash_ + ".wal", crash_ + ".wal.new"}) {
      std::remove(p.c_str());
    }
  }

  // Copies the database + WAL as they are on disk right now — exactly the
  // state a crash at this instant would leave behind.
  void SnapshotCrashCopy() {
    WriteFileBytes(crash_, ReadFileBytes(live_));
    if (FileSize(live_ + ".wal") > 0) {
      WriteFileBytes(crash_ + ".wal", ReadFileBytes(live_ + ".wal"));
    } else {
      std::remove((crash_ + ".wal").c_str());
    }
  }

  std::string live_ = testing::TempDir() + "/live_crash_test.db";
  std::string crash_ = testing::TempDir() + "/live_crash_copy.db";
};

// Every acknowledged (committed) point must survive a crash at any commit
// boundary; points appended but not yet committed must simply be absent —
// never corrupt the reopen.
TEST_F(LiveCrashTest, AcknowledgedPointsSurviveEveryCommitBoundary) {
  Rng rng(4242);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 8; ++i) {
    corpus.push_back(GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(30, 90)), FractalOptions(),
        &rng));
  }
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());

  std::vector<std::vector<double>> acknowledged;  // flat points per id
  for (size_t s = 0; s < corpus.size(); ++s) {
    const uint64_t id = live.BeginSequence();
    ASSERT_EQ(id, s);
    acknowledged.emplace_back();
    const Sequence& seq = corpus[s];
    size_t offset = 0;
    while (offset < seq.size()) {
      const size_t chunk = std::min<size_t>(
          static_cast<size_t>(rng.UniformInt(1, 25)), seq.size() - offset);
      ASSERT_TRUE(live.AppendPoints(
          id, seq.View().Slice(offset, offset + chunk)));
      offset += chunk;
    }
    ASSERT_TRUE(live.SealSequence(id));
    ASSERT_TRUE(live.Commit());
    acknowledged.back().assign(seq.data().begin(), seq.data().end());
    if (s == 3) ASSERT_TRUE(live.Checkpoint());  // mid-stream checkpoint

    // Crash now: everything committed so far must reopen intact.
    SnapshotCrashCopy();
    LiveDatabase recovered(crash_);
    ASSERT_TRUE(recovered.valid()) << "after sequence " << s;
    ASSERT_EQ(recovered.num_sequences(), s + 1);
    for (size_t id2 = 0; id2 <= s; ++id2) {
      const auto loaded = recovered.ReadSequence(id2);
      ASSERT_TRUE(loaded.has_value()) << "seq " << id2;
      EXPECT_EQ(loaded->data(), acknowledged[id2]) << "seq " << id2;
    }
  }
}

// Points appended after the last commit are not acknowledged; a crash must
// lose exactly them and nothing else.
TEST_F(LiveCrashTest, UncommittedTailIsDroppedCleanly) {
  Rng rng(77);
  const Sequence seq =
      GenerateFractalSequence(80, FractalOptions(), &rng);
  ASSERT_TRUE(LiveDatabase::Create(live_, seq.dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  const uint64_t id = live.BeginSequence();
  ASSERT_TRUE(live.AppendPoints(id, seq.View().Slice(0, 50)));
  ASSERT_TRUE(live.Commit());
  // These 30 points are never committed — never acknowledged.
  ASSERT_TRUE(live.AppendPoints(id, seq.View().Slice(50, 80)));

  SnapshotCrashCopy();
  LiveDatabase recovered(crash_);
  ASSERT_TRUE(recovered.valid());
  ASSERT_EQ(recovered.num_sequences(), 1u);
  const auto loaded = recovered.ReadSequence(0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 50u);
  // The recovered database keeps accepting appends on the open sequence.
  ASSERT_TRUE(recovered.AppendPoints(0, seq.View().Slice(50, 80)));
  ASSERT_TRUE(recovered.SealSequence(0));
  ASSERT_TRUE(recovered.Commit());
  const auto full = recovered.ReadSequence(0);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->data(), seq.data());
}

// Torn WAL tails at arbitrary byte offsets: recovery must never see a
// record of the in-flight commit, and the database must always reopen.
TEST_F(LiveCrashTest, TornWalTailRecoversAcknowledgedPrefix) {
  Rng rng(99);
  const Sequence seq =
      GenerateFractalSequence(120, FractalOptions(), &rng);
  ASSERT_TRUE(LiveDatabase::Create(live_, seq.dim()));
  {
    LiveDatabase live(live_);
    ASSERT_TRUE(live.valid());
    const uint64_t id = live.BeginSequence();
    ASSERT_TRUE(live.AppendPoints(id, seq.View().Slice(0, 60)));
    ASSERT_TRUE(live.Commit());
    ASSERT_TRUE(live.AppendPoints(id, seq.View().Slice(60, 120)));
    ASSERT_TRUE(live.SealSequence(id));
    ASSERT_TRUE(live.Commit());
  }
  const std::vector<uint8_t> wal = ReadFileBytes(live_ + ".wal");
  ASSERT_GT(wal.size(), kPageSize * 2);
  // Cut the WAL anywhere after the first commit's pages: the first 60
  // points were acknowledged before the cut region, so they must survive.
  for (uint64_t cut = kPageSize * 2; cut <= wal.size(); cut += 97) {
    WriteFileBytes(crash_, ReadFileBytes(live_));
    WriteFileBytes(crash_ + ".wal",
                   std::vector<uint8_t>(wal.begin(), wal.begin() + cut));
    LiveDatabase recovered(crash_);
    ASSERT_TRUE(recovered.valid()) << "cut=" << cut;
    const auto loaded = recovered.ReadSequence(0);
    ASSERT_TRUE(loaded.has_value()) << "cut=" << cut;
    ASSERT_GE(loaded->size(), 60u) << "cut=" << cut;
    EXPECT_TRUE(std::equal(loaded->data().begin(),
                           loaded->data().begin() + 60 * seq.dim(),
                           seq.data().begin()))
        << "cut=" << cut;
  }
}

// Damage to the WAL header is not a crash shape the commit protocol can
// produce — it means the file is foreign or the disk lied. Refuse to open.
TEST_F(LiveCrashTest, ForeignWalHeaderRejectsOpen) {
  ASSERT_TRUE(LiveDatabase::Create(live_, 2));
  {
    LiveDatabase live(live_);
    ASSERT_TRUE(live.valid());
    const uint64_t id = live.BeginSequence();
    Sequence s(2);
    s.Append(Point{1.0, 2.0});
    ASSERT_TRUE(live.AppendPoints(id, s.View()));
    ASSERT_TRUE(live.Commit());
  }
  std::vector<uint8_t> wal = ReadFileBytes(live_ + ".wal");
  ASSERT_GE(wal.size(), kPageSize);
  wal[3] ^= 0xFF;  // corrupt the magic
  SnapshotCrashCopy();
  WriteFileBytes(crash_ + ".wal", wal);
  LiveDatabase recovered(crash_);
  EXPECT_FALSE(recovered.valid());
}

TEST_F(LiveCrashTest, TornDatabaseHeaderRejectsOpen) {
  ASSERT_TRUE(LiveDatabase::Create(live_, 2));
  std::vector<uint8_t> bytes = ReadFileBytes(live_);
  ASSERT_GE(bytes.size(), kPageSize);
  bytes.resize(kPageSize / 2);  // torn mid-header
  WriteFileBytes(crash_, bytes);
  LiveDatabase recovered(crash_);
  EXPECT_FALSE(recovered.valid());
}

}  // namespace
}  // namespace mdseq
