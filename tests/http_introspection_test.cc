// Socket-level tests for the live introspection server (src/obs/http plus
// the engine endpoints in src/engine/introspection.cc): every request here
// goes through a real loopback TCP connection against an engine started
// with `listen_port = 0`, exactly as curl would. Covers the Prometheus
// /metrics exposition, /healthz, the active-query registry, remote
// cancellation via POST /debug/cancel, the slow-query ring, /debug/trace,
// and the HTTP error paths (400/404/405) — including concurrent scrapes
// while a SubmitBatch is in flight.
//
// The binary carries the `http` and `tsan` ctest labels; build with
// -DMDSEQ_SANITIZE=thread and run `ctest -L tsan` to prove the scrape
// path race-free against the worker threads.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "eval/experiment.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace mdseq {
namespace {

// Tests with a 1us slow-query threshold would otherwise spray slow_query
// warn lines over the gtest output.
class QuietGlobalLogger {
 public:
  QuietGlobalLogger() : saved_(obs::Logger::Global().level()) {
    obs::Logger::Global().SetLevel(obs::LogLevel::kError);
  }
  ~QuietGlobalLogger() { obs::Logger::Global().SetLevel(saved_); }

 private:
  obs::LogLevel saved_;
};

// ---------------------------------------------------------------------------
// A minimal blocking HTTP client: one request per connection, opting out of
// keep-alive via `Connection: close` so the response is read to EOF. The
// keep-alive suite below drives a persistent connection by hand instead.
// ---------------------------------------------------------------------------

struct ClientResponse {
  bool ok = false;          // transport-level success
  int status = 0;           // parsed from the status line
  std::string head;         // status line + headers
  std::string body;
  std::string error;        // failed stage + errno, for test diagnostics
};

ClientResponse Fetch(int port, const std::string& request) {
  ClientResponse out;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    out.error = std::string("socket: ") + std::strerror(errno);
    return out;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    out.error = std::string("connect: ") + std::strerror(errno);
    ::close(fd);
    return out;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, 0);
    if (n <= 0) {
      out.error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return out;
    }
    sent += static_cast<size_t>(n);
  }
  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      out.error = std::string("recv: ") + std::strerror(errno);
      ::close(fd);
      return out;
    }
    if (n == 0) break;  // server closed: response complete
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.compare(0, 9, "HTTP/1.1 ") != 0) {
    out.error = "malformed response: [" + raw + "]";
    return out;
  }
  out.head = raw.substr(0, split);
  out.body = raw.substr(split + 4);
  out.status = std::atoi(raw.c_str() + 9);
  out.ok = out.status >= 100;
  return out;
}

ClientResponse Get(int port, const std::string& target) {
  return Fetch(port, "GET " + target +
                         " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                         "Connection: close\r\n\r\n");
}

ClientResponse Post(int port, const std::string& target) {
  return Fetch(port, "POST " + target +
                         " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                         "Content-Length: 0\r\nConnection: close\r\n\r\n");
}

Workload SmallWorkload(uint64_t seed) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 80;
  config.min_length = 56;
  config.max_length = 192;
  config.num_queries = 12;
  config.seed = seed;
  return BuildWorkload(config);
}

// ---------------------------------------------------------------------------
// /metrics and /healthz
// ---------------------------------------------------------------------------

TEST(HttpIntrospectionTest, MetricsEndpointServesPrometheusText) {
  const Workload workload = SmallWorkload(21);
  EngineOptions options;
  options.num_threads = 2;
  options.listen_port = 0;  // ephemeral; engine owns the registry
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto futures = engine.SubmitBatch(workload.queries, query_options);
  for (auto& f : futures) ASSERT_EQ(f.get().status, QueryStatus::kOk);

  const ClientResponse response = Get(port, "/metrics");
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("text/plain; version=0.0.4"),
            std::string::npos);
  // Engine counters and the build-info gauge are both present.
  EXPECT_NE(response.body.find("# TYPE mdseq_queries_submitted_total "
                               "counter"),
            std::string::npos);
  EXPECT_NE(response.body.find("mdseq_build_info{"), std::string::npos);
  EXPECT_NE(response.body.find("mdseq_queries_active"), std::string::npos);
  // The scrape matches what the engine reports directly.
  ASSERT_NE(engine.metrics_registry(), nullptr);
  EXPECT_EQ(response.body, engine.metrics_registry()->PrometheusText());
}

TEST(HttpIntrospectionTest, HealthzReportsCapacityAsJson) {
  const Workload workload = SmallWorkload(22);
  EngineOptions options;
  options.num_threads = 3;
  options.queue_capacity = 17;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  const ClientResponse response = Get(port, "/healthz");
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("application/json"), std::string::npos);
  EXPECT_TRUE(obs::JsonValidate(response.body)) << response.body;
  EXPECT_NE(response.body.find("\"accepting\": true"), std::string::npos);
  EXPECT_NE(response.body.find("\"workers\": 3"), std::string::npos);
  EXPECT_NE(response.body.find("\"queue_capacity\": 17"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"buffer_pool\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// /debug/active and POST /debug/cancel
// ---------------------------------------------------------------------------

TEST(HttpIntrospectionTest, DebugActiveListsQueuedQueries) {
  const Workload workload = SmallWorkload(23);
  EngineOptions options;
  options.num_threads = 1;
  options.start_suspended = true;  // queries stay queued, hence active
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.25;
  auto f1 = engine.Submit(workload.queries[0], query_options);
  auto f2 = engine.Submit(workload.queries[1], query_options);

  const ClientResponse response = Get(port, "/debug/active");
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(obs::JsonValidate(response.body)) << response.body;
  EXPECT_NE(response.body.find("\"id\": 1"), std::string::npos);
  EXPECT_NE(response.body.find("\"id\": 2"), std::string::npos);
  EXPECT_NE(response.body.find("\"phase\": \"queued\""),
            std::string::npos);
  EXPECT_NE(response.body.find("\"epsilon\": 0.25"), std::string::npos);

  engine.Start();
  EXPECT_EQ(f1.get().status, QueryStatus::kOk);
  EXPECT_EQ(f2.get().status, QueryStatus::kOk);

  // Drained: the registry empties once the futures resolve.
  const ClientResponse after = Get(port, "/debug/active");
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_NE(after.body.find("\"active\": []"), std::string::npos);
}

TEST(HttpIntrospectionTest, CancelEndpointTerminatesQueuedQuery) {
  const Workload workload = SmallWorkload(24);
  EngineOptions options;
  options.num_threads = 1;
  options.start_suspended = true;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto future = engine.Submit(workload.queries[0], query_options);

  const ClientResponse response = Post(port, "/debug/cancel?id=1");
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"cancelled_id\": 1"), std::string::npos);

  engine.Start();
  EXPECT_EQ(future.get().status, QueryStatus::kCancelled);
  EXPECT_EQ(engine.stats().cancelled, 1u);
  // The engine-owned registry saw the cancellation too.
  ASSERT_NE(engine.metrics_registry(), nullptr);
  const std::string text = engine.metrics_registry()->PrometheusText();
  EXPECT_NE(text.find("mdseq_queries_cancelled_total 1"),
            std::string::npos);

  // A drained id is no longer in flight.
  const ClientResponse gone = Post(port, "/debug/cancel?id=1");
  EXPECT_EQ(gone.status, 404);
}

// ---------------------------------------------------------------------------
// /debug/slow and /debug/trace
// ---------------------------------------------------------------------------

TEST(HttpIntrospectionTest, SlowQueryRingPopulatesOverHttp) {
  QuietGlobalLogger quiet;
  const Workload workload = SmallWorkload(25);
  EngineOptions options;
  options.num_threads = 2;
  options.listen_port = 0;
  // Every served query is "slow" at a 1us threshold.
  options.slow_query_threshold = std::chrono::microseconds(1);
  options.slow_query_capacity = 8;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto futures = engine.SubmitBatch(workload.queries, query_options);
  for (auto& f : futures) ASSERT_EQ(f.get().status, QueryStatus::kOk);

  const ClientResponse response = Get(port, "/debug/slow");
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(obs::JsonValidate(response.body)) << response.body;
  EXPECT_NE(response.body.find("\"status\": \"ok\""), std::string::npos);
  // EXPLAIN-style stats ride along with each record.
  EXPECT_NE(response.body.find("\"node_accesses\""), std::string::npos);
  EXPECT_NE(response.body.find("\"dnorm_evaluations\""),
            std::string::npos);
  // The ring is bounded: at most slow_query_capacity records serialized.
  EXPECT_EQ(engine.SlowQueries().size(), 8u);
}

TEST(HttpIntrospectionTest, TraceEndpointServesChromeTraceJson) {
  const Workload workload = SmallWorkload(26);
  EngineOptions options;
  options.num_threads = 1;
  options.trace_capacity = 16;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  ASSERT_EQ(engine.Submit(workload.queries[0], query_options).get().status,
            QueryStatus::kOk);

  const ClientResponse hit = Get(port, "/debug/trace?id=1");
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_EQ(hit.status, 200);
  EXPECT_TRUE(obs::JsonValidate(hit.body)) << hit.body;
  EXPECT_NE(hit.body.find("traceEvents"), std::string::npos);

  EXPECT_EQ(Get(port, "/debug/trace?id=424242").status, 404);
  EXPECT_EQ(Get(port, "/debug/trace").status, 400);
  EXPECT_EQ(Get(port, "/debug/trace?id=bogus").status, 400);
}

// ---------------------------------------------------------------------------
// HTTP error paths
// ---------------------------------------------------------------------------

TEST(HttpIntrospectionTest, ErrorStatusesForBadRequests) {
  const Workload workload = SmallWorkload(27);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  EXPECT_EQ(Get(port, "/nope").status, 404);
  // /debug/cancel exists but only as POST.
  EXPECT_EQ(Get(port, "/debug/cancel?id=1").status, 405);
  EXPECT_EQ(Post(port, "/metrics").status, 405);
  EXPECT_EQ(Post(port, "/debug/cancel").status, 400);
  EXPECT_EQ(Post(port, "/debug/cancel?id=").status, 400);
  // Malformed request line.
  const ClientResponse garbage = Fetch(port, "NOT-HTTP\r\n\r\n");
  EXPECT_EQ(garbage.status, 400);
}

// ---------------------------------------------------------------------------
// Keep-alive: persistent connections, pipelining, bodies in pieces
// ---------------------------------------------------------------------------

// A persistent connection under manual control: send arbitrary byte
// chunks, then read exactly one framed response (headers + Content-Length
// body) without relying on the server closing the socket.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads one response; false on EOF/error before it completes.
  bool ReadResponse(ClientResponse* out) {
    while (buffer_.find("\r\n\r\n") == std::string::npos) {
      if (!Fill()) return false;
    }
    const size_t split = buffer_.find("\r\n\r\n");
    out->head = buffer_.substr(0, split);
    if (out->head.compare(0, 9, "HTTP/1.1 ") != 0) return false;
    out->status = std::atoi(out->head.c_str() + 9);

    // Frame the body by Content-Length (every server response carries it).
    const size_t mark = out->head.find("Content-Length: ");
    if (mark == std::string::npos) return false;
    const size_t length = static_cast<size_t>(
        std::atoll(out->head.c_str() + mark + 16));
    while (buffer_.size() < split + 4 + length) {
      if (!Fill()) return false;
    }
    out->body = buffer_.substr(split + 4, length);
    buffer_.erase(0, split + 4 + length);
    out->ok = true;
    return true;
  }

  // True when the server has closed its end: EOF on a blocking read, or a
  // reset — the server closing with unread request bytes still queued
  // (an oversized request it rejected mid-stream) surfaces as ECONNRESET.
  bool ServerClosed() {
    char byte;
    const ssize_t n = ::recv(fd_, &byte, 1, 0);
    return n == 0 || (n < 0 && errno == ECONNRESET);
  }

 private:
  bool Fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

TEST(HttpKeepAliveTest, ServesManyRequestsOnOneConnection) {
  const Workload workload = SmallWorkload(33);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  RawClient client(port);
  ASSERT_TRUE(client.connected());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Send("GET /healthz HTTP/1.1\r\n"
                            "Host: 127.0.0.1\r\n\r\n"));
    ClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response)) << "request " << i;
    EXPECT_EQ(response.status, 200);
    // HTTP/1.1 with no Connection header defaults to keep-alive, and the
    // server says so.
    EXPECT_NE(response.head.find("Connection: keep-alive"),
              std::string::npos);
  }
}

TEST(HttpKeepAliveTest, PipelinedRequestsAnswerInOrder) {
  const Workload workload = SmallWorkload(34);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  RawClient client(port);
  ASSERT_TRUE(client.connected());
  // Both requests land in one write; the server must answer both from the
  // buffered input, the second after flushing the first.
  ASSERT_TRUE(client.Send(
      "GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n"
      "GET /debug/active HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n"));
  ClientResponse first;
  ASSERT_TRUE(client.ReadResponse(&first));
  EXPECT_EQ(first.status, 200);
  EXPECT_NE(first.body.find("\"accepting\""), std::string::npos);
  ClientResponse second;
  ASSERT_TRUE(client.ReadResponse(&second));
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("\"active\""), std::string::npos);
  // The second request asked for close; the server honors it.
  EXPECT_NE(second.head.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.ServerClosed());
}

TEST(HttpKeepAliveTest, PostBodyDeliveredInPiecesAcrossWrites) {
  const Workload workload = SmallWorkload(35);
  EngineOptions options;
  options.num_threads = 1;
  options.start_suspended = true;  // keep query 1 queued and cancellable
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  auto future = engine.Submit(workload.queries[0], query_options);

  RawClient client(port);
  ASSERT_TRUE(client.connected());
  // Head first, then the declared body dribbles in one byte per write; the
  // server must hold the connection open until Content-Length bytes arrive
  // and only then dispatch.
  ASSERT_TRUE(client.Send("POST /debug/cancel?id=1 HTTP/1.1\r\n"
                          "Host: 127.0.0.1\r\nContent-Length: 6\r\n\r\n"));
  for (const char byte : {'c', 'a', 'n', 'c', 'e', 'l'}) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(client.Send(std::string(1, byte)));
  }
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"cancelled_id\": 1"), std::string::npos);

  // The connection survived the slow body: reuse it for another request.
  ASSERT_TRUE(client.Send("GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n"));
  ClientResponse reused;
  ASSERT_TRUE(client.ReadResponse(&reused));
  EXPECT_EQ(reused.status, 200);

  engine.Start();
  EXPECT_EQ(future.get().status, QueryStatus::kCancelled);
}

TEST(HttpKeepAliveTest, ErrorResponsesAndHttp10Close) {
  const Workload workload = SmallWorkload(36);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  {
    // A 404 forces close even under HTTP/1.1 keep-alive defaults.
    RawClient client(port);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send("GET /nope HTTP/1.1\r\nHost: a\r\n\r\n"));
    ClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, 404);
    EXPECT_NE(response.head.find("Connection: close"), std::string::npos);
    EXPECT_TRUE(client.ServerClosed());
  }
  {
    // HTTP/1.0 defaults to close.
    RawClient client(port);
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.Send("GET /healthz HTTP/1.0\r\nHost: a\r\n\r\n"));
    ClientResponse response;
    ASSERT_TRUE(client.ReadResponse(&response));
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.head.find("Connection: close"), std::string::npos);
    EXPECT_TRUE(client.ServerClosed());
  }
}

// ---------------------------------------------------------------------------
// Robustness: oversized requests and unknown methods must produce 4xx
// without wedging the listener or disturbing other connections
// ---------------------------------------------------------------------------

TEST(HttpRobustnessTest, OversizedRequestLineRejectedWithoutWedging) {
  const Workload workload = SmallWorkload(41);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  // An innocent keep-alive connection opened before the abuse.
  RawClient bystander(port);
  ASSERT_TRUE(bystander.connected());
  ASSERT_TRUE(bystander.Send("GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n"));
  ClientResponse before;
  ASSERT_TRUE(bystander.ReadResponse(&before));
  EXPECT_EQ(before.status, 200);

  // A request line larger than max_request_bytes (16 KiB default) with no
  // header terminator: the server must answer 431 and close, not buffer
  // forever.
  RawClient attacker(port);
  ASSERT_TRUE(attacker.connected());
  ASSERT_TRUE(attacker.Send("GET /" + std::string(20 * 1024, 'a')));
  ClientResponse rejected;
  ASSERT_TRUE(attacker.ReadResponse(&rejected));
  EXPECT_EQ(rejected.status, 431);
  EXPECT_NE(rejected.head.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(attacker.ServerClosed());

  // The listener still accepts fresh connections...
  EXPECT_EQ(Get(port, "/healthz").status, 200);
  // ...and the bystander's keep-alive state survived untouched.
  ASSERT_TRUE(bystander.Send("GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n"));
  ClientResponse after;
  ASSERT_TRUE(bystander.ReadResponse(&after));
  EXPECT_EQ(after.status, 200);
  EXPECT_NE(after.head.find("Connection: keep-alive"), std::string::npos);
}

TEST(HttpRobustnessTest, OversizedHeaderBlockRejected431) {
  const Workload workload = SmallWorkload(42);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  // Valid request line, then header lines past the byte cap before the
  // terminating blank line.
  RawClient client(port);
  ASSERT_TRUE(client.connected());
  std::string request = "GET /healthz HTTP/1.1\r\nHost: a\r\n";
  for (int i = 0; i < 600; ++i) {
    request += "X-Filler-" + std::to_string(i) + ": " +
               std::string(32, 'x') + "\r\n";
  }
  ASSERT_TRUE(client.Send(request));  // never sends the final \r\n\r\n
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 431);
  EXPECT_TRUE(client.ServerClosed());
  EXPECT_EQ(Get(port, "/healthz").status, 200);
}

TEST(HttpRobustnessTest, OversizedDeclaredBodyRejected413) {
  const Workload workload = SmallWorkload(43);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  // The head parses, but the declared body would blow the request budget:
  // rejected up front, before any body bytes arrive.
  RawClient client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("POST /debug/cancel?id=1 HTTP/1.1\r\n"
                          "Host: a\r\nContent-Length: 99999999\r\n\r\n"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 413);
  EXPECT_TRUE(client.ServerClosed());
  EXPECT_EQ(Get(port, "/healthz").status, 200);
}

TEST(HttpRobustnessTest, UnknownMethodsGet4xxWithoutWedging) {
  const Workload workload = SmallWorkload(44);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  // Unknown method on a known path: 405 (the path exists under GET).
  ClientResponse brew = Fetch(port, "BREW /metrics HTTP/1.1\r\nHost: a\r\n"
                                    "Connection: close\r\n\r\n");
  EXPECT_EQ(brew.status, 405);
  // Unknown method on an unknown path: 404.
  EXPECT_EQ(Fetch(port, "BREW /nope HTTP/1.1\r\nHost: a\r\n"
                        "Connection: close\r\n\r\n")
                .status,
            404);
  // A method-less garbage line is a parse failure.
  EXPECT_EQ(Fetch(port, "NONSENSE\r\n\r\n").status, 400);
  // The listener is unwedged and keep-alive still works afterwards.
  RawClient client(port);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n"));
  ClientResponse response;
  ASSERT_TRUE(client.ReadResponse(&response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.head.find("Connection: keep-alive"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// ?limit=N on the listing endpoints, and /debug/workload
// ---------------------------------------------------------------------------

TEST(HttpIntrospectionTest, LimitParameterBoundsListings) {
  QuietGlobalLogger quiet;
  const Workload workload = SmallWorkload(45);
  EngineOptions options;
  options.num_threads = 1;
  options.start_suspended = true;
  options.slow_query_threshold = std::chrono::microseconds(1);
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  std::vector<std::future<QueryOutcome>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(engine.Submit(workload.queries[i], query_options));
  }

  // Four queued queries; ?limit=2 serializes exactly two.
  const ClientResponse limited = Get(port, "/debug/active?limit=2");
  ASSERT_TRUE(limited.ok) << limited.error;
  EXPECT_EQ(limited.status, 200);
  size_t ids = 0;
  for (size_t pos = 0;
       (pos = limited.body.find("\"id\":", pos)) != std::string::npos;
       ++pos) {
    ++ids;
  }
  EXPECT_EQ(ids, 2u);

  // Malformed limits are a 400, not a silent full listing.
  EXPECT_EQ(Get(port, "/debug/active?limit=bogus").status, 400);
  EXPECT_EQ(Get(port, "/debug/slow?limit=-1").status, 400);

  engine.Start();
  for (auto& f : futures) ASSERT_EQ(f.get().status, QueryStatus::kOk);

  // All four landed in the slow ring; ?limit=1 returns the newest only.
  const ClientResponse slow = Get(port, "/debug/slow?limit=1");
  ASSERT_TRUE(slow.ok) << slow.error;
  EXPECT_EQ(slow.status, 200);
  size_t rows = 0;
  for (size_t pos = 0;
       (pos = slow.body.find("\"status\":", pos)) != std::string::npos;
       ++pos) {
    ++rows;
  }
  EXPECT_EQ(rows, 1u);
}

TEST(HttpIntrospectionTest, WorkloadEndpointServesRecorderState) {
  const Workload workload = SmallWorkload(46);
  const std::string log_path = "/tmp/mdseq_http_workload_test.mdwl";
  std::remove(log_path.c_str());
  std::remove((log_path + ".1").c_str());
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  options.workload_log_path = log_path;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(engine.Submit(workload.queries[i], query_options)
                  .get()
                  .status,
              QueryStatus::kOk);
  }

  const ClientResponse response = Get(port, "/debug/workload");
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(obs::JsonValidate(response.body)) << response.body;
  EXPECT_NE(response.body.find("\"records_written\": 3"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"result_digest\""), std::string::npos);

  // ?limit bounds the recent tail; malformed limits are 400.
  const ClientResponse limited = Get(port, "/debug/workload?limit=1");
  EXPECT_EQ(limited.status, 200);
  size_t rows = 0;
  for (size_t pos = 0;
       (pos = limited.body.find("\"signature\":", pos)) != std::string::npos;
       ++pos) {
    ++rows;
  }
  EXPECT_EQ(rows, 1u);
  EXPECT_EQ(Get(port, "/debug/workload?limit=x").status, 400);

  std::remove(log_path.c_str());
}

TEST(HttpIntrospectionTest, WorkloadEndpoint404WhenRecorderOff) {
  const Workload workload = SmallWorkload(47);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);
  EXPECT_EQ(Get(port, "/debug/workload").status, 404);
}

TEST(HttpIntrospectionTest, HealthzAndMetricsReportUptime) {
  const Workload workload = SmallWorkload(48);
  EngineOptions options;
  options.num_threads = 1;
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  const ClientResponse health = Get(port, "/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_NE(health.body.find("\"start_unix_ts\":"), std::string::npos);
  EXPECT_NE(health.body.find("\"uptime_seconds\":"), std::string::npos);

  const ClientResponse metrics = Get(port, "/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_NE(metrics.body.find("# TYPE mdseq_uptime_seconds gauge"),
            std::string::npos);

  // Uptime is scrape-refreshed and self-consistent with /healthz.
  const EngineHealth reported = engine.Health();
  EXPECT_GT(reported.start_unix_ts, 0.0);
  EXPECT_GE(reported.uptime_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Concurrent scrapes while a batch is in flight
// ---------------------------------------------------------------------------

TEST(HttpIntrospectionTest, ConcurrentScrapesDuringSubmitBatch) {
  QuietGlobalLogger quiet;
  const Workload workload = SmallWorkload(28);
  EngineOptions options;
  options.num_threads = 4;
  options.trace_capacity = 64;
  options.slow_query_threshold = std::chrono::microseconds(1);
  options.listen_port = 0;
  QueryEngine engine(workload.database.get(), options);
  const int port = engine.introspection_port();
  ASSERT_GT(port, 0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  const char* targets[] = {"/metrics", "/healthz", "/debug/active",
                           "/debug/slow"};
  for (const char* target : targets) {
    scrapers.emplace_back([port, target, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const ClientResponse response = Get(port, target);
        ASSERT_TRUE(response.ok) << target;
        EXPECT_EQ(response.status, 200) << target;
      }
    });
  }

  QueryOptions query_options;
  query_options.epsilon = 0.1;
  for (int round = 0; round < 4; ++round) {
    auto futures = engine.SubmitBatch(workload.queries, query_options);
    for (auto& f : futures) EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : scrapers) t.join();

  EXPECT_EQ(engine.stats().served, 4u * workload.queries.size());
}

}  // namespace
}  // namespace mdseq
