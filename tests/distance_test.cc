#include "core/distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/walk.h"
#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {
namespace {

Sequence RandomSequence(size_t length, size_t dim, Rng* rng) {
  Sequence s(dim);
  Point p(dim);
  for (size_t i = 0; i < length; ++i) {
    for (size_t k = 0; k < dim; ++k) p[k] = rng->Uniform();
    s.Append(p);
  }
  return s;
}

TEST(MeanDistanceTest, IdenticalSequencesHaveZeroDistance) {
  Rng rng(1);
  const Sequence s = RandomSequence(10, 3, &rng);
  EXPECT_DOUBLE_EQ(MeanDistance(s.View(), s.View()), 0.0);
}

TEST(MeanDistanceTest, SinglePointPair) {
  const Sequence a(2, {Point{0.0, 0.0}});
  const Sequence b(2, {Point{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(MeanDistance(a.View(), b.View()), 5.0);
}

TEST(MeanDistanceTest, AveragesPointDistances) {
  // Distances per index: 1 and 3 -> mean 2.
  const Sequence a(1, {Point{0.0}, Point{0.0}});
  const Sequence b(1, {Point{1.0}, Point{3.0}});
  EXPECT_DOUBLE_EQ(MeanDistance(a.View(), b.View()), 2.0);
}

TEST(MeanDistanceTest, SymmetricAndTriangleFriendly) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Sequence a = RandomSequence(8, 3, &rng);
    const Sequence b = RandomSequence(8, 3, &rng);
    const Sequence c = RandomSequence(8, 3, &rng);
    const double ab = MeanDistance(a.View(), b.View());
    const double ba = MeanDistance(b.View(), a.View());
    EXPECT_DOUBLE_EQ(ab, ba);
    // Dmean is a metric on fixed-length sequences (mean of metrics).
    EXPECT_LE(MeanDistance(a.View(), c.View()),
              ab + MeanDistance(b.View(), c.View()) + 1e-12);
  }
}

TEST(WindowDistanceProfileTest, ProfileLengthAndValues) {
  const Sequence q(1, {Point{0.0}, Point{0.0}});
  const Sequence s(1, {Point{0.0}, Point{1.0}, Point{2.0}, Point{3.0}});
  const std::vector<double> profile = WindowDistanceProfile(q.View(),
                                                            s.View());
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_DOUBLE_EQ(profile[0], 0.5);   // |0|,|1| -> 0.5
  EXPECT_DOUBLE_EQ(profile[1], 1.5);   // |1|,|2|
  EXPECT_DOUBLE_EQ(profile[2], 2.5);   // |2|,|3|
}

TEST(WindowDistanceProfileTest, EqualLengthYieldsSingleWindow) {
  Rng rng(3);
  const Sequence a = RandomSequence(6, 2, &rng);
  const Sequence b = RandomSequence(6, 2, &rng);
  const std::vector<double> profile = WindowDistanceProfile(a.View(),
                                                            b.View());
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_DOUBLE_EQ(profile[0], MeanDistance(a.View(), b.View()));
}

TEST(SequenceDistanceTest, EqualLengthEqualsMeanDistance) {
  Rng rng(4);
  const Sequence a = RandomSequence(12, 3, &rng);
  const Sequence b = RandomSequence(12, 3, &rng);
  EXPECT_DOUBLE_EQ(SequenceDistance(a.View(), b.View()),
                   MeanDistance(a.View(), b.View()));
}

TEST(SequenceDistanceTest, FindsEmbeddedSubsequence) {
  Rng rng(5);
  const Sequence data = RandomSequence(50, 3, &rng);
  const Sequence query = data.Slice(17, 29).Materialize();
  EXPECT_DOUBLE_EQ(SequenceDistance(query.View(), data.View()), 0.0);
}

TEST(SequenceDistanceTest, SymmetricInArgumentOrder) {
  Rng rng(6);
  const Sequence a = RandomSequence(20, 2, &rng);
  const Sequence b = RandomSequence(50, 2, &rng);
  EXPECT_DOUBLE_EQ(SequenceDistance(a.View(), b.View()),
                   SequenceDistance(b.View(), a.View()));
}

TEST(SequenceDistanceTest, IsMinimumOverProfile) {
  Rng rng(7);
  const Sequence q = RandomSequence(10, 3, &rng);
  const Sequence s = RandomSequence(40, 3, &rng);
  const std::vector<double> profile = WindowDistanceProfile(q.View(),
                                                            s.View());
  double expected = profile[0];
  for (double v : profile) expected = std::min(expected, v);
  EXPECT_DOUBLE_EQ(SequenceDistance(q.View(), s.View()), expected);
}

// Example 1 of the paper: the *sum* of distances would rank the 9-point
// close pair as more distant than the 3-point far pair; the mean distance
// fixes the semantics.
TEST(SequenceDistanceTest, PaperExampleOneMeanVersusSum) {
  Sequence s1(2);
  Sequence s2(2);
  for (int i = 0; i < 9; ++i) {
    const double x = 0.1 * i;
    s1.Append(Point{x, 0.50});
    s2.Append(Point{x, 0.61});  // constant small gap of 0.11
  }
  Sequence s3(2);
  Sequence s4(2);
  for (int i = 0; i < 3; ++i) {
    const double x = 0.3 * i;
    s3.Append(Point{x, 0.2});
    s4.Append(Point{x, 0.5});  // constant large gap of 0.3
  }
  // The mean distance ranks the visually closer pair (S1, S2) first ...
  const double close_pair = MeanDistance(s1.View(), s2.View());
  const double far_pair = MeanDistance(s3.View(), s4.View());
  EXPECT_LT(close_pair, far_pair);
  // ... while the sum of distances (9 * 0.11 vs 3 * 0.3) inverts the
  // ranking, which is exactly the paper's argument against using it.
  EXPECT_GT(close_pair * 9, far_pair * 3);
}

TEST(SimilarityMappingTest, RoundTripsAndBounds) {
  EXPECT_DOUBLE_EQ(DistanceToSimilarity(0.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(DistanceToSimilarity(std::sqrt(3.0), 3), 0.0);
  for (double d : {0.0, 0.3, 0.9, 1.5}) {
    const double sim = DistanceToSimilarity(d, 3);
    EXPECT_NEAR(SimilarityToDistance(sim, 3), d, 1e-12);
  }
}

TEST(SimilarityMappingTest, MonotoneDecreasingInDistance) {
  double prev = 2.0;
  for (double d = 0.0; d <= 1.7; d += 0.1) {
    const double sim = DistanceToSimilarity(d, 3);
    EXPECT_LT(sim, prev);
    prev = sim;
  }
}

TEST(RandomWalkTest, StaysInUnitCube) {
  Rng rng(8);
  WalkOptions options;
  options.dim = 3;
  options.step_stddev = 0.2;
  const Sequence walk = GenerateRandomWalk(200, options, &rng);
  for (size_t i = 0; i < walk.size(); ++i) {
    for (size_t k = 0; k < 3; ++k) {
      EXPECT_GE(walk[i][k], 0.0);
      EXPECT_LT(walk[i][k], 1.0);
    }
  }
}

}  // namespace
}  // namespace mdseq
