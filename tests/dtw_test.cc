#include "ts/dtw.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "gen/fractal.h"
#include "ts/transforms.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(DtwTest, IdenticalSequencesHaveZeroDistance) {
  Rng rng(1);
  const Sequence s = GenerateFractalSequence(30, FractalOptions(), &rng);
  EXPECT_DOUBLE_EQ(DtwDistance(s.View(), s.View()), 0.0);
}

TEST(DtwTest, SinglePointPair) {
  const Sequence a(2, {Point{0.0, 0.0}});
  const Sequence b(2, {Point{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(DtwDistance(a.View(), b.View()), 5.0);
}

TEST(DtwTest, HandComputedOneDimensionalCase) {
  // a = [0, 1], b = [0, 1, 1]: path (1,1)(2,2)(2,3) has cost 0.
  const Sequence a = Sequence::FromScalars({0.0, 1.0});
  const Sequence b = Sequence::FromScalars({0.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(DtwDistance(a.View(), b.View()), 0.0);

  // a = [0, 2], b = [1]: every point aligns to 1 -> |0-1| + |2-1| = 2.
  const Sequence c = Sequence::FromScalars({0.0, 2.0});
  const Sequence d = Sequence::FromScalars({1.0});
  EXPECT_DOUBLE_EQ(DtwDistance(c.View(), d.View()), 2.0);
}

TEST(DtwTest, SymmetricInArguments) {
  Rng rng(2);
  const Sequence a = GenerateFractalSequence(20, FractalOptions(), &rng);
  const Sequence b = GenerateFractalSequence(33, FractalOptions(), &rng);
  EXPECT_DOUBLE_EQ(DtwDistance(a.View(), b.View()),
                   DtwDistance(b.View(), a.View()));
}

TEST(DtwTest, NeverExceedsDiagonalAlignmentForEqualLengths) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a = GenerateFractalSequence(25, FractalOptions(), &rng);
    const Sequence b = GenerateFractalSequence(25, FractalOptions(), &rng);
    // The diagonal path is one admissible warping path with cost
    // k * Dmean, so DTW can only be smaller.
    EXPECT_LE(DtwDistance(a.View(), b.View()),
              25.0 * MeanDistance(a.View(), b.View()) + 1e-9);
  }
}

TEST(DtwTest, AbsorbsLocalTimeShifts) {
  // The property warping exists for: a stretched copy stays near-zero in
  // DTW while the lock-step mean distance is large.
  Sequence original(1);
  for (int i = 0; i < 32; ++i) {
    const double v = (i / 8) % 2 == 0 ? 0.2 : 0.8;  // square wave
    original.Append(PointView(&v, 1));
  }
  // Stretch: duplicate every 4th point, then trim to the same length.
  Sequence stretched(1);
  for (size_t i = 0; i < original.size() && stretched.size() < 32; ++i) {
    stretched.Append(original[i]);
    if (i % 4 == 0 && stretched.size() < 32) stretched.Append(original[i]);
  }
  const double dtw = DtwDistance(original.View(), stretched.View());
  const double lockstep =
      32.0 * MeanDistance(original.View(), stretched.View());
  EXPECT_LT(dtw, 0.5 * lockstep);
}

TEST(DtwTest, BandConstraintOnlyIncreasesCost) {
  Rng rng(4);
  const Sequence a = GenerateFractalSequence(40, FractalOptions(), &rng);
  const Sequence b = GenerateFractalSequence(40, FractalOptions(), &rng);
  const double unconstrained = DtwDistance(a.View(), b.View());
  double previous = unconstrained;
  for (size_t window : {20u, 5u, 1u, 0u}) {
    DtwOptions options;
    options.window = window;
    const double banded = DtwDistance(a.View(), b.View(), options);
    EXPECT_GE(banded, unconstrained - 1e-12);
    EXPECT_GE(banded, previous - 1e-9);  // tighter band, higher cost
    previous = banded;
  }
  // Zero band on equal lengths = the diagonal path exactly.
  DtwOptions diagonal;
  diagonal.window = 0;
  EXPECT_NEAR(DtwDistance(a.View(), b.View(), diagonal),
              40.0 * MeanDistance(a.View(), b.View()), 1e-9);
}

TEST(DtwTest, ReversalInvariance) {
  // DTW is invariant under reversing both sequences.
  Rng rng(5);
  const Sequence a = GenerateFractalSequence(15, FractalOptions(), &rng);
  const Sequence b = GenerateFractalSequence(22, FractalOptions(), &rng);
  EXPECT_NEAR(DtwDistance(a.View(), b.View()),
              DtwDistance(Reverse(a.View()).View(),
                          Reverse(b.View()).View()),
              1e-9);
}

TEST(DtwTest, NormalizedVariantDividesByPathBound) {
  const Sequence a = Sequence::FromScalars({0.0, 2.0});
  const Sequence b = Sequence::FromScalars({1.0});
  EXPECT_DOUBLE_EQ(NormalizedDtwDistance(a.View(), b.View()), 2.0 / 3.0);
}

}  // namespace
}  // namespace mdseq
