#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace mdseq {
namespace {

TEST(PruningRateTest, PaperFormula) {
  // 100 sequences, 5 relevant, 24 retrieved: pruned 76 of the 95 prunable.
  EXPECT_DOUBLE_EQ(PruningRate(100, 24, 5), 76.0 / 95.0);
}

TEST(PruningRateTest, PerfectPruning) {
  EXPECT_DOUBLE_EQ(PruningRate(100, 5, 5), 1.0);
}

TEST(PruningRateTest, NoPruning) {
  EXPECT_DOUBLE_EQ(PruningRate(100, 100, 5), 0.0);
}

TEST(PruningRateTest, DegenerateEverythingRelevant) {
  EXPECT_DOUBLE_EQ(PruningRate(10, 10, 10), 1.0);
}

TEST(PruningRateTest, RetrievedBelowRelevantClampsToOne) {
  // A method with false dismissals could retrieve less than relevant; the
  // rate is clamped so it stays a rate.
  EXPECT_DOUBLE_EQ(PruningRate(100, 3, 5), 1.0);
}

TEST(SolutionIntervalPruningRateTest, Formula) {
  EXPECT_DOUBLE_EQ(SolutionIntervalPruningRate(1000, 300, 100),
                   700.0 / 900.0);
  EXPECT_DOUBLE_EQ(SolutionIntervalPruningRate(1000, 1000, 1000), 1.0);
}

TEST(RecallTest, Values) {
  EXPECT_DOUBLE_EQ(Recall(98, 100), 0.98);
  EXPECT_DOUBLE_EQ(Recall(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Recall(0, 10), 0.0);
}

TEST(IntervalIntersectionSizeTest, DisjointSets) {
  EXPECT_EQ(IntervalIntersectionSize({{0, 5}}, {{5, 10}}), 0u);
  EXPECT_EQ(IntervalIntersectionSize({}, {{0, 10}}), 0u);
}

TEST(IntervalIntersectionSizeTest, PartialAndNestedOverlap) {
  EXPECT_EQ(IntervalIntersectionSize({{0, 10}}, {{5, 15}}), 5u);
  EXPECT_EQ(IntervalIntersectionSize({{0, 10}}, {{2, 4}, {6, 8}}), 4u);
}

TEST(IntervalIntersectionSizeTest, MultipleRuns) {
  const std::vector<Interval> a = {{0, 4}, {10, 20}, {30, 35}};
  const std::vector<Interval> b = {{2, 12}, {18, 32}};
  // [2,4) + [10,12) + [18,20) + [30,32) = 2 + 2 + 2 + 2.
  EXPECT_EQ(IntervalIntersectionSize(a, b), 8u);
}

TEST(MeanAccumulatorTest, MeanOfValues) {
  MeanAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(6.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 3.0);
  EXPECT_EQ(acc.count(), 3u);
}

}  // namespace
}  // namespace mdseq
