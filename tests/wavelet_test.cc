#include "ts/wavelet.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gen/walk.h"
#include "ts/whole_matching.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(HaarTransformTest, ConstantSeriesConcentratesInAverage) {
  const std::vector<double> series(8, 1.0);
  const std::vector<double> coefficients = HaarTransform(series);
  // Orthonormal Haar: the DC coefficient is sum/sqrt(n) = 8/sqrt(8).
  EXPECT_NEAR(coefficients[0], 8.0 / std::sqrt(8.0), 1e-12);
  for (size_t i = 1; i < coefficients.size(); ++i) {
    EXPECT_NEAR(coefficients[i], 0.0, 1e-12);
  }
}

TEST(HaarTransformTest, TwoPointCase) {
  const std::vector<double> coefficients = HaarTransform({3.0, 1.0});
  EXPECT_NEAR(coefficients[0], 4.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(coefficients[1], 2.0 / std::sqrt(2.0), 1e-12);
}

TEST(HaarTransformTest, SinglePointIsIdentity) {
  EXPECT_EQ(HaarTransform({5.0}), std::vector<double>{5.0});
}

TEST(HaarTransformTest, InverseRoundTrips) {
  Rng rng(1);
  for (size_t n : {1u, 2u, 8u, 64u, 256u}) {
    std::vector<double> series(n);
    for (double& v : series) v = rng.Uniform(-2.0, 2.0);
    const std::vector<double> restored =
        InverseHaarTransform(HaarTransform(series));
    ASSERT_EQ(restored.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(restored[i], series[i], 1e-9);
    }
  }
}

TEST(HaarTransformTest, IsometryPreservesEnergy) {
  Rng rng(2);
  std::vector<double> series(128);
  for (double& v : series) v = rng.Uniform(-1.0, 1.0);
  const std::vector<double> coefficients = HaarTransform(series);
  double time_energy = 0.0;
  double coeff_energy = 0.0;
  for (double v : series) time_energy += v * v;
  for (double c : coefficients) coeff_energy += c * c;
  EXPECT_NEAR(time_energy, coeff_energy, 1e-9);
}

// The property that makes Haar features a valid filter: any coefficient
// prefix lower-bounds the true series distance.
TEST(HaarFeatureTest, PrefixDistanceLowerBoundsSeriesDistance) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence a = GenerateRandomWalk(64, WalkOptions(), &rng);
    const Sequence b = GenerateRandomWalk(64, WalkOptions(), &rng);
    const double exact = WholeSeriesDistance(a.View(), b.View());
    for (size_t fc : {1u, 4u, 16u, 64u}) {
      const Point fa = HaarFeature(a.View(), fc);
      const Point fb = HaarFeature(b.View(), fc);
      EXPECT_LE(PointDistance(fa, fb), exact + 1e-9)
          << "fc=" << fc << " trial=" << trial;
    }
  }
  // Full-length features are exactly distance-preserving.
  const Sequence a = GenerateRandomWalk(32, WalkOptions(), &rng);
  const Sequence b = GenerateRandomWalk(32, WalkOptions(), &rng);
  EXPECT_NEAR(PointDistance(HaarFeature(a.View(), 32),
                            HaarFeature(b.View(), 32)),
              WholeSeriesDistance(a.View(), b.View()), 1e-9);
}

TEST(HaarFeatureTest, CoarseFeatureTracksMean) {
  Sequence s(1);
  for (int i = 0; i < 16; ++i) {
    const double v = 0.25;
    s.Append(PointView(&v, 1));
  }
  const Point feature = HaarFeature(s.View(), 1);
  EXPECT_NEAR(feature[0], 0.25 * 16 / std::sqrt(16.0), 1e-12);
}

}  // namespace
}  // namespace mdseq
