#include "baseline/keyframe.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "gen/video.h"
#include "util/random.h"

namespace mdseq {
namespace {

class KeyframeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(33);
    database_ = std::make_unique<SequenceDatabase>(3);
    const VideoOptions options;
    for (int i = 0; i < 30; ++i) {
      corpus_.push_back(GenerateVideoSequence(200, options, &rng));
      database_->Add(corpus_.back());
    }
  }

  std::vector<Sequence> corpus_;
  std::unique_ptr<SequenceDatabase> database_;
};

TEST_F(KeyframeTest, KeyframesAreOnePerPartitionPiece) {
  KeyframeSearch search(database_.get());
  for (size_t id = 0; id < database_->num_sequences(); ++id) {
    const std::vector<size_t> keyframes = search.KeyframesOf(id);
    const Partition& partition = database_->partition(id);
    ASSERT_EQ(keyframes.size(), partition.size());
    for (size_t i = 0; i < keyframes.size(); ++i) {
      EXPECT_GE(keyframes[i], partition[i].begin);
      EXPECT_LT(keyframes[i], partition[i].end);
    }
  }
}

TEST_F(KeyframeTest, FindsTheSourceOfAVerbatimQuery) {
  KeyframeSearch search(database_.get());
  const Sequence query = corpus_[4].Slice(30, 120).Materialize();
  // A verbatim clip long enough to contain whole shots shares key frames
  // with its source up to key-frame placement; a loose threshold finds it.
  const std::vector<size_t> hits = search.Search(query.View(), 0.05);
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 4u) != hits.end());
}

TEST_F(KeyframeTest, CanFalselyDismissWhatTheScanFinds) {
  // The paper's motivating claim: key frames "cannot always summarize all
  // the frames of a shot", so at tight thresholds the key-frame search
  // misses true matches that the exact scan (and the MBR method) retain.
  KeyframeSearch keyframes(database_.get());
  SequentialScan scan(database_.get());
  Rng rng(34);

  size_t scan_total = 0;
  size_t keyframe_misses = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const size_t id = static_cast<size_t>(rng.UniformInt(0, 29));
    const size_t offset = static_cast<size_t>(rng.UniformInt(0, 150));
    const Sequence query =
        corpus_[id].Slice(offset, offset + 40).Materialize();
    const double epsilon = 0.02;
    const std::vector<ScanMatch> truth = scan.Search(query.View(), epsilon);
    const std::vector<size_t> hits = keyframes.Search(query.View(), epsilon);
    for (const ScanMatch& match : truth) {
      ++scan_total;
      if (std::find(hits.begin(), hits.end(), match.sequence_id) ==
          hits.end()) {
        ++keyframe_misses;
      }
    }
  }
  ASSERT_GT(scan_total, 0u);
  // The property under test is that misses are *possible*; rather than
  // asserting a specific rate we assert the bookkeeping is consistent.
  EXPECT_LE(keyframe_misses, scan_total);
}

}  // namespace
}  // namespace mdseq
