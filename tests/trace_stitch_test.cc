// Distributed tracing and pruning-cascade accounting (src/shard +
// src/engine): trace-context propagation through the wire codec, shard-side
// span recording, coordinator stitching (per-shard lanes, clock rebasing),
// socket-level propagation over HttpShardTransport including the
// retry-once stale-connection path, and the engine-side reporting surfaces
// — `/debug/slow` shard slices, `mdseq_prune_*` / `mdseq_shard_*_seconds`
// histograms, and latency exemplars carrying the trace id.
//
// Labels: `shard`, `obs`, and `tsan`.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/search.h"
#include "engine/introspection.h"
#include "engine/query_engine.h"
#include "eval/experiment.h"
#include "obs/http/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/coordinator.h"
#include "shard/message.h"
#include "shard/placement.h"
#include "shard/shard_node.h"
#include "shard/shard_set.h"
#include "shard/transport.h"

namespace mdseq {
namespace {

Workload SmallWorkload(uint64_t seed, size_t sequences = 90) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = sequences;
  config.min_length = 56;
  config.max_length = 200;
  config.num_queries = 6;
  config.seed = seed;
  return BuildWorkload(config);
}

/// Spans of `trace` with the given name, in begin order.
std::vector<const obs::TraceSpan*> SpansNamed(const obs::Trace& trace,
                                              const std::string& name) {
  std::vector<const obs::TraceSpan*> out;
  for (const obs::TraceSpan& span : trace.spans()) {
    if (name == span.name) out.push_back(&span);
  }
  return out;
}

bool HasLaneName(const obs::Trace& trace, uint64_t lane,
                 const std::string& name) {
  for (const auto& [entry_lane, entry_name] : trace.lane_names()) {
    if (entry_lane == lane && name == entry_name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Wire codec: protocol v2 carries the trace context and shard spans
// ---------------------------------------------------------------------------

TEST(TraceCodecTest, RequestRoundTripsTraceContext) {
  ShardRequest request;
  request.rpc = ShardRpc::kSearch;
  request.epsilon = 0.25;
  request.trace.trace_id = 0xDEADBEEFCAFEull;
  request.trace.parent_span_id = 7;
  request.trace.sampled = true;

  ShardRequest decoded;
  ASSERT_TRUE(DecodeShardRequest(EncodeShardRequest(request), &decoded));
  EXPECT_EQ(decoded.trace.trace_id, 0xDEADBEEFCAFEull);
  EXPECT_EQ(decoded.trace.parent_span_id, 7u);
  EXPECT_TRUE(decoded.trace.sampled);

  // The unsampled default survives too (no accidental always-on sampling).
  request.trace = TraceContext{};
  ASSERT_TRUE(DecodeShardRequest(EncodeShardRequest(request), &decoded));
  EXPECT_EQ(decoded.trace.trace_id, 0u);
  EXPECT_FALSE(decoded.trace.sampled);
}

TEST(TraceCodecTest, ResponseRoundTripsSpansAndRejectsTruncation) {
  ShardResponse response;
  response.ok = true;
  response.num_sequences = 9;
  ShardSpan root;
  root.name = "shard:search";
  root.start_ns = 1000;
  root.end_ns = 9000;
  root.depth = 0;
  root.args = {{"candidates", 4}, {"matches", 2}};
  ShardSpan child;
  child.name = "second_pruning";
  child.start_ns = 2000;
  child.end_ns = 8000;
  child.depth = 1;
  response.spans = {root, child};

  const std::string bytes = EncodeShardResponse(response);
  ShardResponse decoded;
  ASSERT_TRUE(DecodeShardResponse(bytes, &decoded));
  ASSERT_EQ(decoded.spans.size(), 2u);
  EXPECT_EQ(decoded.spans[0].name, "shard:search");
  EXPECT_EQ(decoded.spans[0].start_ns, 1000u);
  EXPECT_EQ(decoded.spans[0].end_ns, 9000u);
  EXPECT_EQ(decoded.spans[0].depth, 0u);
  ASSERT_EQ(decoded.spans[0].args.size(), 2u);
  EXPECT_EQ(decoded.spans[0].args[0].first, "candidates");
  EXPECT_EQ(decoded.spans[0].args[0].second, 4u);
  EXPECT_EQ(decoded.spans[1].name, "second_pruning");
  EXPECT_EQ(decoded.spans[1].depth, 1u);

  // Every strict prefix of a span-bearing payload must fail to decode —
  // the span section extends the fuzzed no-trusted-lengths guarantee.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeShardResponse(bytes.substr(0, cut), &decoded))
        << "cut at " << cut;
  }
  EXPECT_FALSE(DecodeShardResponse(bytes + "x", &decoded));
}

// ---------------------------------------------------------------------------
// Shard-side recording: sampled requests return spans, unsampled are free
// ---------------------------------------------------------------------------

TEST(ShardNodeTraceTest, SampledRequestRecordsVerbRootedSpans) {
  const Workload workload = SmallWorkload(71, 40);
  const ShardNode node(workload.database.get());

  ShardRequest request;
  request.rpc = ShardRpc::kSearchVerified;
  request.epsilon = 0.3;
  request.query = workload.queries.front().View().Materialize();
  request.trace.trace_id = 42;
  request.trace.sampled = true;

  const ShardResponse response = node.Execute(request);
  ASSERT_TRUE(response.ok);
  ASSERT_FALSE(response.spans.empty());
  // The first span is the per-verb root; everything else nests within it.
  const ShardSpan& root = response.spans.front();
  EXPECT_EQ(root.name, "shard:search_verified");
  EXPECT_EQ(root.depth, 0u);
  EXPECT_GE(root.end_ns, root.start_ns);
  for (size_t i = 1; i < response.spans.size(); ++i) {
    const ShardSpan& span = response.spans[i];
    EXPECT_GE(span.depth, 1u) << span.name;
    EXPECT_GE(span.start_ns, root.start_ns) << span.name;
    EXPECT_LE(span.end_ns, root.end_ns) << span.name;
  }

  request.trace.sampled = false;
  const ShardResponse untraced = node.Execute(request);
  ASSERT_TRUE(untraced.ok);
  EXPECT_TRUE(untraced.spans.empty());
  // The numeric answer is identical either way.
  EXPECT_EQ(untraced.candidates, response.candidates);
  EXPECT_EQ(untraced.matches.size(), response.matches.size());
}

// ---------------------------------------------------------------------------
// Coordinator stitching over loopback: one lane per shard, full coverage
// ---------------------------------------------------------------------------

TEST(StitchTest, ThresholdQueryStitchesEveryShardIntoItsOwnLane) {
  const Workload workload = SmallWorkload(73);
  constexpr size_t kShards = 3;
  const std::unique_ptr<ShardSet> set = ShardSet::BuildInMemory(
      *workload.database, kShards, PlacementPolicy::kHash);
  LoopbackTransport transport(set->nodes());
  const Coordinator coordinator(&transport, set->placement());

  obs::Trace trace;
  trace.set_query_id(77);
  SearchControl control;
  control.trace = &trace;
  SearchResult result;
  {
    obs::SpanScope query_span(&trace, "query");
    result = coordinator.SearchVerified(workload.queries.front().View(), 0.3,
                                        control);
  }
  ASSERT_FALSE(result.interrupted);

  uint64_t breakdown_sequences = 0;
  for (size_t shard = 0; shard < kShards; ++shard) {
    const uint64_t lane = 1000000 + shard;
    // The coordinator-side RPC wrapper and the shard-recorded root both
    // land in the shard's display lane, the lane is named, and the shard
    // span was rebased inside its RPC window.
    std::vector<const obs::TraceSpan*> wrappers;
    std::vector<const obs::TraceSpan*> roots;
    for (const obs::TraceSpan* span :
         SpansNamed(trace, "rpc:search_verified")) {
      if (span->lane == lane) wrappers.push_back(span);
    }
    for (const obs::TraceSpan* span :
         SpansNamed(trace, "shard:search_verified")) {
      if (span->lane == lane) roots.push_back(span);
    }
    ASSERT_EQ(wrappers.size(), 1u) << "shard " << shard;
    ASSERT_EQ(roots.size(), 1u) << "shard " << shard;
    EXPECT_TRUE(
        HasLaneName(trace, lane, "shard " + std::to_string(shard)));
    EXPECT_GE(roots[0]->start_ns, wrappers[0]->start_ns) << "shard " << shard;
    EXPECT_LE(roots[0]->end_ns, wrappers[0]->end_ns) << "shard " << shard;
    EXPECT_EQ(roots[0]->depth, 1u);

    // The per-shard breakdown mirrors the fan-out.
    ASSERT_EQ(result.shard_breakdown.size(), kShards);
    const ShardQueryStats& slice = result.shard_breakdown[shard];
    EXPECT_EQ(slice.shard, shard);
    EXPECT_TRUE(slice.ok);
    EXPECT_GT(slice.num_sequences, 0u);
    breakdown_sequences += slice.num_sequences;
  }
  EXPECT_EQ(breakdown_sequences, workload.database->num_sequences());

  // The coordinator's own phases are in the trace too, in the query lane.
  EXPECT_EQ(SpansNamed(trace, "shard_fanout").size(), 1u);
  EXPECT_EQ(SpansNamed(trace, "shard_merge").size(), 1u);

  // One Chrome-trace export shows the whole fan-out: every shard lane is a
  // named track and every event carries the query's trace id.
  const std::string json = obs::ChromeTraceJson({trace});
  EXPECT_NE(json.find("\"query_id\": 77"), std::string::npos);
  for (size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_NE(json.find("shard " + std::to_string(shard)), std::string::npos);
  }
}

TEST(StitchTest, NearestQueryStitchesVerifyRounds) {
  const Workload workload = SmallWorkload(79, 60);
  constexpr size_t kShards = 2;
  const std::unique_ptr<ShardSet> set = ShardSet::BuildInMemory(
      *workload.database, kShards, PlacementPolicy::kHilbert);
  LoopbackTransport transport(set->nodes());
  const Coordinator coordinator(&transport, set->placement());

  obs::Trace trace;
  trace.set_query_id(5);
  SearchControl control;
  control.trace = &trace;
  std::vector<SequenceMatch> nearest;
  {
    obs::SpanScope query_span(&trace, "query");
    nearest =
        coordinator.SearchNearest(workload.queries.front().View(), 5, control);
  }
  ASSERT_EQ(nearest.size(), 5u);

  // The epsilon-doubling rounds and the cutoff-exchange waves are named
  // spans; the kSearch fan-outs and the final kFinalize wave put every
  // shard's work in its lane.
  EXPECT_GE(SpansNamed(trace, "cutoff_round").size(), 1u);
  EXPECT_GE(SpansNamed(trace, "shard_verify_wave").size(), 1u);
  EXPECT_GE(SpansNamed(trace, "rpc:search").size(), kShards);
  EXPECT_GE(SpansNamed(trace, "rpc:finalize").size(), 1u);
  for (size_t shard = 0; shard < kShards; ++shard) {
    const uint64_t lane = 1000000 + shard;
    bool lane_populated = false;
    for (const obs::TraceSpan& span : trace.spans()) {
      lane_populated |= span.lane == lane;
    }
    EXPECT_TRUE(lane_populated) << "shard " << shard;
  }
}

// ---------------------------------------------------------------------------
// Socket-level propagation: spans cross real HTTP connections, and the
// retry-once stale-socket path keeps the trace intact
// ---------------------------------------------------------------------------

TEST(HttpTraceTest, SpansPropagateOverSocketsAndSurviveStaleRetry) {
  const Workload workload = SmallWorkload(83, 50);
  constexpr size_t kShards = 2;
  const std::unique_ptr<ShardSet> set = ShardSet::BuildInMemory(
      *workload.database, kShards, PlacementPolicy::kHash);

  std::vector<std::unique_ptr<obs::http::HttpServer>> servers;
  std::vector<HttpShardTransport::Endpoint> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    auto server = std::make_unique<obs::http::HttpServer>();
    set->node(i)->Register(server.get());
    ASSERT_TRUE(server->Start());
    endpoints.push_back({"127.0.0.1", server->port()});
    servers.push_back(std::move(server));
  }
  HttpShardTransport transport(endpoints);
  const Coordinator coordinator(&transport, set->placement());
  const SequenceView query = workload.queries.front().View();

  const auto run_traced = [&](uint64_t id, obs::Trace* trace) {
    trace->set_query_id(id);
    SearchControl control;
    control.trace = trace;
    obs::SpanScope query_span(trace, "query");
    return coordinator.SearchVerified(query, 0.3, control);
  };
  const auto expect_all_shards_stitched = [&](const obs::Trace& trace) {
    for (size_t shard = 0; shard < kShards; ++shard) {
      const uint64_t lane = 1000000 + shard;
      size_t roots = 0;
      for (const obs::TraceSpan* span :
           SpansNamed(trace, "shard:search_verified")) {
        roots += span->lane == lane ? 1 : 0;
      }
      EXPECT_EQ(roots, 1u) << "shard " << shard;
    }
  };

  obs::Trace first;
  const SearchResult warm = run_traced(11, &first);
  ASSERT_FALSE(warm.interrupted);
  expect_all_shards_stitched(first);
  // Keep-alive parked one connection per shard for the next query.
  EXPECT_EQ(transport.idle_connections(), kShards);

  // Restart every shard server on its old port: the parked sockets are now
  // stale, so the next fan-out must take the retry-once path — and the
  // trace must still come back whole from every shard.
  for (size_t i = 0; i < kShards; ++i) {
    const uint16_t port = servers[i]->port();
    servers[i]->Stop();
    obs::http::HttpServer::Options options;
    options.port = port;
    auto fresh = std::make_unique<obs::http::HttpServer>(options);
    set->node(i)->Register(fresh.get());
    ASSERT_TRUE(fresh->Start()) << "rebind shard " << i << " port " << port;
    servers[i] = std::move(fresh);
  }

  obs::Trace second;
  const SearchResult retried = run_traced(12, &second);
  ASSERT_FALSE(retried.interrupted);
  expect_all_shards_stitched(second);
  // Same answer through the retried connections.
  ASSERT_EQ(retried.matches.size(), warm.matches.size());
  for (size_t i = 0; i < warm.matches.size(); ++i) {
    EXPECT_EQ(retried.matches[i].sequence_id, warm.matches[i].sequence_id);
    EXPECT_EQ(retried.matches[i].exact_distance,
              warm.matches[i].exact_distance);
  }
}

// ---------------------------------------------------------------------------
// Engine reporting: /debug/slow shard slices, cascade metrics, exemplars
// ---------------------------------------------------------------------------

TEST(EngineTraceTest, CoordinatorEngineReportsCascadeShardsAndExemplars) {
  const Workload workload = SmallWorkload(89, 60);
  constexpr size_t kShards = 3;
  const std::unique_ptr<ShardSet> set = ShardSet::BuildInMemory(
      *workload.database, kShards, PlacementPolicy::kHash);
  LoopbackTransport transport(set->nodes());
  Coordinator coordinator(&transport, set->placement());

  obs::MetricsRegistry registry;
  EngineOptions options;
  options.num_threads = 2;
  options.metrics = &registry;
  options.trace_capacity = 16;
  options.slow_query_threshold = std::chrono::microseconds(1);
  QueryEngine engine(&coordinator, options);

  QueryOptions query_options;
  query_options.epsilon = 0.3;
  query_options.verified = true;
  const QueryOutcome outcome =
      engine.Submit(Sequence(workload.queries.front()), query_options).get();
  ASSERT_EQ(outcome.status, QueryStatus::kOk);
  EXPECT_EQ(outcome.result.stats.shards_total, kShards);
  ASSERT_EQ(outcome.result.shard_breakdown.size(), kShards);

  // The slow-query ring keeps the per-shard slices...
  const std::vector<SlowQueryRecord> slow = engine.SlowQueries();
  ASSERT_FALSE(slow.empty());
  const SlowQueryRecord& record = slow.front();
  EXPECT_EQ(record.stats.shards_total, kShards);
  EXPECT_EQ(record.stats.shards_failed, 0u);
  ASSERT_EQ(record.shards.size(), kShards);
  uint64_t slice_sequences = 0;
  for (const ShardQueryStats& slice : record.shards) {
    EXPECT_TRUE(slice.ok);
    slice_sequences += slice.num_sequences;
  }
  EXPECT_EQ(slice_sequences, workload.database->num_sequences());

  // ...and /debug/slow renders coverage plus the per-shard cascade rows.
  const std::string json = SlowQueriesJson(slow);
  EXPECT_NE(json.find("\"shards_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"shards_failed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"shards\": ["), std::string::npos);
  EXPECT_NE(json.find("\"rpc_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"probe_abandons\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_read\""), std::string::npos);

  // Cascade and fan-out histograms are live in the registry, and the
  // latency histogram carries a trace-id exemplar (tracing is on).
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("mdseq_prune_first_survivor_ratio_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("mdseq_prune_second_survivor_ratio_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("mdseq_shard_fanout_wait_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("mdseq_shard_merge_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("mdseq_shard_span_seconds"), std::string::npos);
  EXPECT_NE(text.find("# {trace_id=\""), std::string::npos);

  // The kept trace is the fully stitched one.
  const std::vector<obs::Trace> traces = engine.TakeTraces();
  ASSERT_FALSE(traces.empty());
  bool stitched = false;
  for (const obs::Trace& trace : traces) {
    stitched |= !SpansNamed(trace, "rpc:search_verified").empty();
  }
  EXPECT_TRUE(stitched);
}

TEST(EngineTraceTest, UntracedEngineRendersNoExemplars) {
  const Workload workload = SmallWorkload(91, 40);
  obs::MetricsRegistry registry;
  EngineOptions options;
  options.num_threads = 1;
  options.metrics = &registry;  // tracing off: trace_capacity stays 0
  QueryEngine engine(workload.database.get(), options);

  QueryOptions query_options;
  query_options.epsilon = 0.2;
  const QueryOutcome outcome =
      engine.Submit(Sequence(workload.queries.front()), query_options).get();
  ASSERT_EQ(outcome.status, QueryStatus::kOk);

  // The plain Observe path keeps the exposition byte-identical to the
  // pre-exemplar format: no exemplar suffix anywhere.
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("mdseq_query_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_EQ(text.find("# {trace_id="), std::string::npos);
}

}  // namespace
}  // namespace mdseq
