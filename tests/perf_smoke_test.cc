// Fast performance guardrails (label: perf-smoke): on a fixed seed the new
// kernels must not be slower than the retained reference implementations,
// and the batched R-tree descent must visit at most half the nodes of
// per-probe searches on a clustered multi-probe workload. Workloads are
// sized so the expected advantage is an order of magnitude — an assertion
// failure means a real regression, not timer noise. Meant to run on an
// optimized build (the `release` CMake preset); the relative comparisons
// also hold unoptimized, only with more noise.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/mbr_distance.h"
#include "core/partitioning.h"
#include "core/search.h"
#include "engine/query_engine.h"
#include "eval/experiment.h"
#include "gen/fractal.h"
#include "index/rstar_tree.h"
#include "obs/trace.h"
#include "shard/coordinator.h"
#include "shard/placement.h"
#include "shard/shard_set.h"
#include "shard/transport.h"
#include "util/random.h"

namespace mdseq {
namespace {

using Clock = std::chrono::steady_clock;

template <typename Fn>
int64_t TimeNs(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

// Many small MBRs: the worst case for the naive O(m^2)-per-(probe, j)
// window enumeration and the best case for the prefix-sum context.
TEST(PerfSmokeTest, PrefixSumDnormIsNotSlowerThanReference) {
  Rng rng(7001);
  const Sequence data = GenerateFractalSequence(1024, FractalOptions(), &rng);
  PartitioningOptions part;
  part.max_points = 4;  // ~256 MBRs
  const Partition target = PartitionSequence(data.View(), part);
  ASSERT_GE(target.size(), 128u);
  const Sequence probe_seq =
      GenerateFractalSequence(128, FractalOptions(), &rng);
  const Mbr probe = probe_seq.BoundingBox();
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  const size_t probe_count = 128;

  double ref_sum = 0.0;
  const int64_t ref_ns = TimeNs([&] {
    for (size_t j = 0; j < target.size(); ++j) {
      ref_sum += ReferenceNormalizedDistance(probe_count, target, j, dmbr)
                     .distance;
    }
  });
  double fast_sum = 0.0;
  const int64_t fast_ns = TimeNs([&] {
    const DnormContext context = MakeDnormContext(target, dmbr);
    for (size_t j = 0; j < target.size(); ++j) {
      fast_sum += NormalizedDistance(probe_count, context, j).distance;
    }
  });
  EXPECT_NEAR(fast_sum, ref_sum, 1e-9 * target.size());
  EXPECT_LE(fast_ns, ref_ns)
      << "prefix-sum Dnorm slower than the naive reference";
}

// Clustered probes over a packed tree: the batch descent shares the upper
// levels, so it must visit at most half the nodes the per-probe searches
// touch. Node counts are deterministic for a fixed seed.
TEST(PerfSmokeTest, BatchDescentHalvesNodeVisits) {
  Rng rng(7002);
  std::vector<IndexEntry> entries;
  for (uint64_t i = 0; i < 6000; ++i) {
    Point low{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    Point high = low;
    for (double& v : high) v += 0.02 * rng.Uniform();
    entries.push_back(IndexEntry{Mbr(low, high), i});
  }
  const RStarTree tree = RStarTree::BulkLoad(3, entries);

  // Eight probes clustered in one corner of the space, as the MBRs of one
  // partitioned query sequence would be.
  std::vector<Mbr> probes;
  for (int i = 0; i < 8; ++i) {
    Point low{0.2 + 0.02 * i, 0.2 + 0.01 * i, 0.2};
    Point high{low[0] + 0.05, low[1] + 0.05, 0.3};
    probes.emplace_back(low, high);
  }
  const double epsilon = 0.05;

  std::vector<std::vector<SpatialIndex::BatchHit>> batch;
  const uint64_t batch_visits = tree.RangeSearchBatch(probes, epsilon, &batch);
  uint64_t single_visits = 0;
  for (const Mbr& probe : probes) {
    std::vector<uint64_t> hits;
    single_visits += tree.RangeSearch(probe, epsilon, &hits);
  }
  EXPECT_LE(batch_visits * 2, single_visits)
      << "batch=" << batch_visits << " singles=" << single_visits;
}

// A query that matches nowhere: the bounded profile abandons every window
// after a few points, the unbounded one always pays the full window.
TEST(PerfSmokeTest, BoundedProfileIsNotSlowerThanReference) {
  Rng rng(7003);
  const Sequence data = GenerateFractalSequence(4096, FractalOptions(), &rng);
  const Sequence raw = GenerateFractalSequence(256, FractalOptions(), &rng);
  // Push the query far away so every alignment exceeds the threshold early.
  Sequence query(raw.dim());
  for (size_t i = 0; i < raw.size(); ++i) {
    Point shifted(raw.dim());
    for (size_t t = 0; t < raw.dim(); ++t) shifted[t] = raw[i][t] + 10.0;
    query.Append(shifted);
  }
  const double epsilon = 0.05;

  std::vector<double> ref;
  const int64_t ref_ns =
      TimeNs([&] { ref = WindowDistanceProfile(query.View(), data.View()); });
  std::vector<double> bounded;
  const int64_t bounded_ns = TimeNs([&] {
    bounded = WindowDistanceProfileBounded(query.View(), data.View(), epsilon);
  });
  ASSERT_EQ(bounded.size(), ref.size());
  for (size_t j = 0; j < ref.size(); ++j) {
    EXPECT_GT(ref[j], epsilon);  // nothing qualifies...
  }
  EXPECT_LE(bounded_ns, ref_ns)
      << "bounded profile slower than the unbounded reference";
}

// Cascade soundness and cost guarantee: the centroid/radius prefilter is a
// pure lower-bound stage, so enabling it may only change the cost profile —
// never the answers, the index node visits (it runs after Phase 2), or the
// amount of downstream work (verified candidates, Dnorm evaluations).
TEST(PerfSmokeTest, PrefilterNeverIncreasesWorkOrChangesAnswers) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 120;
  config.min_length = 48;
  config.max_length = 160;
  config.num_queries = 10;
  config.seed = 7006;
  const Workload workload = BuildWorkload(config);
  SearchOptions with_prefilter;  // the default: prefilter on
  SearchOptions without_prefilter;
  without_prefilter.prefilter = false;
  const SimilaritySearch filtered(workload.database.get(), with_prefilter);
  const SimilaritySearch plain(workload.database.get(), without_prefilter);

  uint64_t total_prefilter_abandons = 0;
  for (const Sequence& query : workload.queries) {
    for (const double epsilon : {0.02, 0.1, 0.3}) {
      const SearchResult on = filtered.SearchVerified(query.View(), epsilon);
      const SearchResult off = plain.SearchVerified(query.View(), epsilon);

      // Identical answers, down to the reported bounds and intervals.
      EXPECT_EQ(on.candidates, off.candidates);
      ASSERT_EQ(on.matches.size(), off.matches.size());
      for (size_t m = 0; m < on.matches.size(); ++m) {
        EXPECT_EQ(on.matches[m].sequence_id, off.matches[m].sequence_id);
        EXPECT_DOUBLE_EQ(on.matches[m].min_dnorm, off.matches[m].min_dnorm);
        EXPECT_DOUBLE_EQ(on.matches[m].exact_distance,
                         off.matches[m].exact_distance);
        EXPECT_EQ(on.matches[m].solution_interval,
                  off.matches[m].solution_interval);
      }

      // Never more work: node visits untouched, verified candidates and
      // Dnorm evaluations never increased.
      EXPECT_EQ(on.stats.node_accesses, off.stats.node_accesses);
      EXPECT_LE(on.stats.filter_matches, off.stats.filter_matches);
      EXPECT_LE(on.stats.dnorm_evaluations, off.stats.dnorm_evaluations);
      // Each prefilter drop replaces a min-Dmbr probe abandon one for one.
      EXPECT_EQ(on.stats.prefilter_abandons + on.stats.probe_abandons,
                off.stats.probe_abandons);
      // Every Phase-2 candidate keeps at least one live probe (the pair
      // that put it into the candidate set survives the prefilter).
      EXPECT_EQ(on.stats.prefilter_survivors, on.stats.phase2_candidates);
      // The disabled run reports a pass-through stage: no drops, no cost.
      EXPECT_EQ(off.stats.prefilter_abandons, 0u);
      EXPECT_EQ(off.stats.prefilter_ns, 0u);
      total_prefilter_abandons += on.stats.prefilter_abandons;
    }
  }
  // The workload is sized so the stage demonstrably fires somewhere.
  EXPECT_GT(total_prefilter_abandons, 0u);
}

// An idle introspection server must not tax the query path: the listener
// blocks in poll() and the always-on registry costs one sharded-map insert
// and erase per query. Generous 2x bound — an assertion failure means the
// server thread is interfering with serving, not timer noise.
TEST(PerfSmokeTest, IdleIntrospectionServerDoesNotSlowServing) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 100;
  config.min_length = 56;
  config.max_length = 192;
  config.num_queries = 16;
  config.seed = 7004;
  const Workload workload = BuildWorkload(config);
  QueryOptions query_options;
  query_options.epsilon = 0.1;

  const auto run_batches = [&](int listen_port) {
    EngineOptions options;
    options.num_threads = 2;
    options.listen_port = listen_port;
    QueryEngine engine(workload.database.get(), options);
    if (listen_port >= 0) {
      EXPECT_GT(engine.introspection_port(), 0);
    }
    return TimeNs([&] {
      for (int round = 0; round < 3; ++round) {
        auto futures = engine.SubmitBatch(workload.queries, query_options);
        for (auto& f : futures) {
          EXPECT_EQ(f.get().status, QueryStatus::kOk);
        }
      }
    });
  };

  run_batches(-1);  // warm-up: page in the code and the database
  const int64_t without_server = run_batches(-1);
  const int64_t with_server = run_batches(0);
  EXPECT_LE(with_server, 2 * without_server)
      << "with=" << with_server << "ns without=" << without_server << "ns";
}

// The workload flight recorder runs on every query completion (one encode
// + one buffered framed write off the search hot path); target overhead is
// under 2% of end-to-end serving. The assertion bound is 2x — far above
// the target, but failing even that means the recorder landed on the hot
// path (per-point work or an fsync), not that the timer was noisy.
TEST(PerfSmokeTest, WorkloadRecorderHasBoundedServingOverhead) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 100;
  config.min_length = 56;
  config.max_length = 192;
  config.num_queries = 16;
  config.seed = 7005;
  const Workload workload = BuildWorkload(config);
  QueryOptions query_options;
  query_options.epsilon = 0.1;

  const std::string log_path = "/tmp/mdseq_perf_smoke_workload.mdwl";
  const auto run_batches = [&](bool record) {
    EngineOptions options;
    options.num_threads = 2;
    if (record) options.workload_log_path = log_path;
    QueryEngine engine(workload.database.get(), options);
    return TimeNs([&] {
      for (int round = 0; round < 3; ++round) {
        auto futures = engine.SubmitBatch(workload.queries, query_options);
        for (auto& f : futures) {
          EXPECT_EQ(f.get().status, QueryStatus::kOk);
        }
      }
    });
  };

  run_batches(false);  // warm-up: page in the code and the database
  const int64_t recorder_off = run_batches(false);
  const int64_t recorder_on = run_batches(true);
  std::remove(log_path.c_str());
  EXPECT_LE(recorder_on, 2 * recorder_off)
      << "on=" << recorder_on << "ns off=" << recorder_off << "ns";
}

// The serving QoS subsystem disabled (no cache, no tenant classes, no
// approximate budget) must cost nothing: the cache probe is one
// null-pointer test and the admission queue is the plain FIFO. Compare a
// default engine against one with the cache and tenant classes enabled on
// an all-miss workload (every query distinct per round via epsilon
// jitter, so the cache never hits and its bookkeeping is all overhead).
// Generous 2x bound — failing it means the QoS bookkeeping landed on the
// search hot path, not timer noise.
TEST(PerfSmokeTest, QosDisabledServingPathHasBoundedOverhead) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 100;
  config.min_length = 56;
  config.max_length = 192;
  config.num_queries = 16;
  config.seed = 7007;
  const Workload workload = BuildWorkload(config);

  const auto run_batches = [&](bool qos) {
    EngineOptions options;
    options.num_threads = 2;
    if (qos) {
      options.cache_bytes = 4 << 20;
      options.tenant_classes = {{"gold", 2}, {"bronze", 1}};
    }
    QueryEngine engine(workload.database.get(), options);
    return TimeNs([&] {
      for (int round = 0; round < 3; ++round) {
        QueryOptions query_options;
        query_options.epsilon = 0.1 + 0.001 * round;  // all-miss rounds
        auto futures = engine.SubmitBatch(workload.queries, query_options);
        for (auto& f : futures) {
          EXPECT_EQ(f.get().status, QueryStatus::kOk);
        }
      }
    });
  };

  run_batches(false);  // warm-up: page in the code and the database
  const int64_t disabled = run_batches(false);
  const int64_t enabled_miss = run_batches(true);
  EXPECT_LE(enabled_miss, 2 * disabled)
      << "enabled=" << enabled_miss << "ns disabled=" << disabled << "ns";
}

// With no trace attached, the distributed-tracing instrumentation must
// stay out of the way: every SpanScope inlines to a pointer test, shards
// skip span recording entirely (unsampled context), and responses carry no
// span payload. Generous 2x bound against the fully-traced run — if the
// untraced path costs more than tracing everything, the disabled gate is
// broken, not the timer.
TEST(PerfSmokeTest, TraceDisabledShardingPathHasBoundedOverhead) {
  WorkloadConfig config;
  config.kind = DataKind::kSynthetic;
  config.num_sequences = 80;
  config.min_length = 56;
  config.max_length = 192;
  config.num_queries = 8;
  config.seed = 7005;
  const Workload workload = BuildWorkload(config);
  const std::unique_ptr<ShardSet> set =
      ShardSet::BuildInMemory(*workload.database, 2, PlacementPolicy::kHash);
  LoopbackTransport transport(set->nodes());
  const Coordinator coordinator(&transport, set->placement());

  const auto run_rounds = [&](obs::Trace* trace) {
    SearchControl control;
    control.trace = trace;
    return TimeNs([&] {
      for (int round = 0; round < 3; ++round) {
        for (const Sequence& query : workload.queries) {
          const SearchResult result =
              coordinator.SearchVerified(query.View(), 0.2, control);
          EXPECT_FALSE(result.interrupted);
        }
      }
    });
  };

  run_rounds(nullptr);  // warm-up: page in the code and the shards
  const int64_t untraced_ns = run_rounds(nullptr);
  obs::Trace trace;
  const int64_t traced_ns = run_rounds(&trace);
  EXPECT_FALSE(trace.spans().empty());
  EXPECT_LE(untraced_ns, 2 * traced_ns)
      << "untraced=" << untraced_ns << "ns traced=" << traced_ns << "ns";
}

}  // namespace
}  // namespace mdseq
