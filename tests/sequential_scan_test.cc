#include "baseline/sequential_scan.h"

#include <gtest/gtest.h>

#include "core/distance.h"
#include "gen/fractal.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(ExactSolutionIntervalTest, MarksQualifyingWindows) {
  // data: 0 0 0 5 5 0 0 (1-d); query: 0 0; eps 0.1.
  const Sequence data(1, {Point{0.0}, Point{0.0}, Point{0.0}, Point{5.0},
                          Point{5.0}, Point{0.0}, Point{0.0}});
  const Sequence query(1, {Point{0.0}, Point{0.0}});
  const std::vector<Interval> si =
      ExactSolutionInterval(query.View(), data.View(), 0.1);
  // Windows [0,2) [1,3) qualify -> points 0..2; window [5,7) -> points 5..6.
  EXPECT_EQ(si, (std::vector<Interval>{{0, 3}, {5, 7}}));
}

TEST(ExactSolutionIntervalTest, EmptyWhenNothingQualifies) {
  const Sequence data(1, {Point{0.0}, Point{1.0}});
  const Sequence query(1, {Point{0.5}});
  EXPECT_TRUE(ExactSolutionInterval(query.View(), data.View(), 0.1).empty());
}

TEST(ExactSolutionIntervalTest, WholeSequenceWhenEverythingQualifies) {
  Sequence data(1);
  for (int i = 0; i < 10; ++i) data.Append(Point{0.5});
  const Sequence query(1, {Point{0.5}, Point{0.5}});
  const std::vector<Interval> si =
      ExactSolutionInterval(query.View(), data.View(), 0.0);
  EXPECT_EQ(si, (std::vector<Interval>{{0, 10}}));
}

TEST(ExactSolutionIntervalTest, LongQueryCoversWholeDataSequence) {
  Rng rng(1);
  const Sequence data = GenerateFractalSequence(30, FractalOptions(), &rng);
  Sequence query(3);
  query.Extend(data.View());
  query.Extend(data.View());  // query twice as long as data
  const std::vector<Interval> si =
      ExactSolutionInterval(query.View(), data.View(), 0.01);
  EXPECT_EQ(si, (std::vector<Interval>{{0, data.size()}}));
  EXPECT_TRUE(
      ExactSolutionInterval(query.View(), data.View(), -0.0).size() <= 1);
}

TEST(SequentialScanTest, FindsExactlyTheSequencesWithinThreshold) {
  Rng rng(2);
  SequenceDatabase db(3);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 25; ++i) {
    corpus.push_back(GenerateFractalSequence(100, FractalOptions(), &rng));
    db.Add(corpus.back());
  }
  const Sequence query = corpus[7].Slice(20, 60).Materialize();
  const double epsilon = 0.12;
  SequentialScan scan(&db);
  const std::vector<ScanMatch> matches = scan.Search(query.View(), epsilon);
  // Independently recompute which sequences qualify.
  std::vector<size_t> expected;
  for (size_t id = 0; id < corpus.size(); ++id) {
    if (SequenceDistance(query.View(), corpus[id].View()) <= epsilon) {
      expected.push_back(id);
    }
  }
  ASSERT_EQ(matches.size(), expected.size());
  for (size_t i = 0; i < matches.size(); ++i) {
    EXPECT_EQ(matches[i].sequence_id, expected[i]);
    EXPECT_LE(matches[i].distance, epsilon);
    EXPECT_FALSE(matches[i].solution_interval.empty());
  }
  // Sequence 7 contains the query verbatim; its interval must cover the
  // original window [20, 60).
  bool found_source = false;
  for (const ScanMatch& m : matches) {
    if (m.sequence_id == 7) {
      found_source = true;
      EXPECT_NEAR(m.distance, 0.0, 1e-12);
      bool covers_window = false;
      for (const Interval& iv : m.solution_interval) {
        if (iv.begin <= 20 && iv.end >= 60) covers_window = true;
      }
      EXPECT_TRUE(covers_window);
    }
  }
  EXPECT_TRUE(found_source);
}

}  // namespace
}  // namespace mdseq
