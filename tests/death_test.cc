// Failure-injection tests: programmer errors must trip MDSEQ_CHECK with a
// diagnostic instead of corrupting state. These use gtest death tests, so
// each EXPECT_DEATH runs the statement in a forked child.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/distance.h"
#include "core/partitioning.h"
#include "core/search.h"
#include "geom/mbr.h"
#include "geom/sequence.h"
#include "geom/space_filling.h"
#include "index/rstar_tree.h"
#include "ts/sliding_window.h"
#include "util/random.h"

namespace mdseq {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, MbrRejectsInvertedCorners) {
  EXPECT_DEATH(Mbr(Point{1.0, 1.0}, Point{0.0, 0.0}), "MDSEQ_CHECK");
}

TEST(DeathTest, MbrRejectsDimensionMismatch) {
  Mbr box(Point{0.0, 0.0}, Point{1.0, 1.0});
  EXPECT_DEATH(box.Expand(Point{0.5, 0.5, 0.5}), "MDSEQ_CHECK");
}

TEST(DeathTest, MbrRejectsNegativeInflate) {
  Mbr box(Point{0.0, 0.0}, Point{1.0, 1.0});
  EXPECT_DEATH(box.Inflate(-0.1), "MDSEQ_CHECK");
}

TEST(DeathTest, SequenceRejectsWrongPointDimension) {
  Sequence s(3);
  EXPECT_DEATH(s.Append(Point{0.1, 0.2}), "MDSEQ_CHECK");
}

TEST(DeathTest, SequenceRejectsOutOfRangeSlice) {
  const Sequence s(1, {Point{0.0}, Point{1.0}});
  EXPECT_DEATH(s.Slice(1, 3), "MDSEQ_CHECK");
}

TEST(DeathTest, MeanDistanceRejectsLengthMismatch) {
  const Sequence a(1, {Point{0.0}});
  const Sequence b(1, {Point{0.0}, Point{1.0}});
  EXPECT_DEATH(MeanDistance(a.View(), b.View()), "MDSEQ_CHECK");
}

TEST(DeathTest, SequenceDistanceRejectsEmptyInput) {
  const Sequence a(1);
  const Sequence b(1, {Point{0.0}});
  EXPECT_DEATH(SequenceDistance(a.View(), b.View()), "MDSEQ_CHECK");
}

TEST(DeathTest, DatabaseRejectsWrongDimSequence) {
  SequenceDatabase db(3);
  EXPECT_DEATH(db.Add(Sequence::FromScalars({1.0, 2.0})), "MDSEQ_CHECK");
}

TEST(DeathTest, DatabaseRejectsEmptySequence) {
  SequenceDatabase db(3);
  EXPECT_DEATH(db.Add(Sequence(3)), "MDSEQ_CHECK");
}

TEST(DeathTest, DatabaseRejectsOutOfRangeId) {
  Rng rng(1);
  SequenceDatabase db(1);
  db.Add(Sequence::FromScalars({0.5, 0.6}));
  EXPECT_DEATH(db.sequence(5), "MDSEQ_CHECK");
}

TEST(DeathTest, SearchRejectsNegativeEpsilon) {
  SequenceDatabase db(1);
  db.Add(Sequence::FromScalars({0.5, 0.6}));
  SimilaritySearch engine(&db);
  const Sequence query = Sequence::FromScalars({0.5});
  EXPECT_DEATH(engine.Search(query.View(), -0.1), "MDSEQ_CHECK");
}

TEST(DeathTest, SearchRejectsDimensionMismatchQuery) {
  SequenceDatabase db(3);
  Sequence s(3, {Point{0.1, 0.2, 0.3}});
  db.Add(s);
  SimilaritySearch engine(&db);
  const Sequence query = Sequence::FromScalars({0.5});
  EXPECT_DEATH(engine.Search(query.View(), 0.1), "MDSEQ_CHECK");
}

TEST(DeathTest, RStarTreeRejectsInvalidOptions) {
  RStarTreeOptions options;
  options.max_entries = 8;
  options.min_entries = 5;  // > max/2
  EXPECT_DEATH(RStarTree(2, options), "MDSEQ_CHECK");
}

TEST(DeathTest, RStarTreeRejectsInvalidQueryBox) {
  RStarTree tree(2);
  std::vector<uint64_t> out;
  EXPECT_DEATH(tree.RangeSearch(Mbr(2), 0.1, &out), "MDSEQ_CHECK");
}

TEST(DeathTest, PartitioningRejectsZeroMaxPoints) {
  const Sequence s(1, {Point{0.0}});
  PartitioningOptions options;
  options.max_points = 0;
  EXPECT_DEATH(PartitionSequence(s.View(), options), "MDSEQ_CHECK");
}

TEST(DeathTest, SlidingWindowRejectsMultidimensionalInput) {
  const Sequence s(2, {Point{0.0, 0.0}, Point{1.0, 1.0}});
  EXPECT_DEATH(SlidingWindowEmbed(s.View(), 2), "MDSEQ_CHECK");
}

TEST(DeathTest, HilbertRejectsOutOfRangeCoordinates) {
  EXPECT_DEATH(HilbertIndex(2, 4, 0), "MDSEQ_CHECK");
}

}  // namespace
}  // namespace mdseq
