#include "core/partitioning.h"

#include <gtest/gtest.h>

#include "gen/fractal.h"
#include "gen/walk.h"
#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(EstimatedAccessCostTest, MinkowskiVolumeForm) {
  const Mbr m(Point{0.0, 0.0, 0.0}, Point{0.1, 0.2, 0.3});
  PartitioningOptions options;
  options.side_growth = 0.3;
  EXPECT_DOUBLE_EQ(EstimatedAccessCost(m, options), 0.4 * 0.5 * 0.6);
}

TEST(EstimatedAccessCostTest, AdditiveForm) {
  const Mbr m(Point{0.0, 0.0, 0.0}, Point{0.1, 0.2, 0.3});
  PartitioningOptions options;
  options.side_growth = 0.3;
  options.cost_model = PartitioningOptions::CostModel::kAdditive;
  EXPECT_DOUBLE_EQ(EstimatedAccessCost(m, options), 0.4 + 0.5 + 0.6);
}

TEST(EstimatedAccessCostTest, PointMbrCostsOnlyGrowth) {
  const Mbr m = Mbr::FromPoint(Point{0.5, 0.5});
  PartitioningOptions options;
  options.side_growth = 0.3;
  EXPECT_DOUBLE_EQ(EstimatedAccessCost(m, options), 0.09);
}

TEST(PartitionSequenceTest, EmptySequenceYieldsEmptyPartition) {
  const Sequence s(3);
  EXPECT_TRUE(PartitionSequence(s.View(), PartitioningOptions()).empty());
}

TEST(PartitionSequenceTest, SinglePointSequence) {
  const Sequence s(2, {Point{0.5, 0.5}});
  const Partition p = PartitionSequence(s.View(), PartitioningOptions());
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].begin, 0u);
  EXPECT_EQ(p[0].end, 1u);
  EXPECT_EQ(p[0].count(), 1u);
}

// Structural invariants: pieces are contiguous, non-empty, cover the
// sequence, respect max_points, and each MBR tightly bounds its points.
void CheckPartitionInvariants(SequenceView seq, const Partition& partition,
                              const PartitioningOptions& options) {
  ASSERT_FALSE(partition.empty());
  EXPECT_EQ(partition.front().begin, 0u);
  EXPECT_EQ(partition.back().end, seq.size());
  for (size_t i = 0; i < partition.size(); ++i) {
    const SequenceMbr& piece = partition[i];
    EXPECT_LT(piece.begin, piece.end);
    EXPECT_LE(piece.count(), options.max_points);
    if (i > 0) {
      EXPECT_EQ(partition[i - 1].end, piece.begin);
    }
    const Mbr tight = seq.Slice(piece.begin, piece.end).BoundingBox();
    EXPECT_EQ(piece.mbr, tight) << "piece " << i << " box is not tight";
  }
}

TEST(PartitionSequenceTest, InvariantsOnFractalData) {
  Rng rng(10);
  const PartitioningOptions options;
  for (size_t length : {1u, 2u, 7u, 56u, 300u, 512u}) {
    const Sequence s = GenerateFractalSequence(length, FractalOptions(),
                                               &rng);
    CheckPartitionInvariants(s.View(), PartitionSequence(s.View(), options),
                             options);
  }
}

TEST(PartitionSequenceTest, InvariantsOnRandomWalks) {
  Rng rng(11);
  WalkOptions walk;
  walk.dim = 3;
  PartitioningOptions options;
  options.max_points = 10;
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence s = GenerateRandomWalk(200, walk, &rng);
    CheckPartitionInvariants(s.View(), PartitionSequence(s.View(), options),
                             options);
  }
}

TEST(PartitionSequenceTest, MaxPointsCapIsHonored) {
  // A constant sequence would otherwise grow one MBR forever.
  Sequence s(2);
  for (int i = 0; i < 100; ++i) s.Append(Point{0.5, 0.5});
  PartitioningOptions options;
  options.max_points = 16;
  const Partition p = PartitionSequence(s.View(), options);
  EXPECT_EQ(p.size(), (100 + 15) / 16);
  for (const SequenceMbr& piece : p) EXPECT_LE(piece.count(), 16u);
}

TEST(PartitionSequenceTest, ConstantSequenceMergesUpToCap) {
  Sequence s(2);
  for (int i = 0; i < 16; ++i) s.Append(Point{0.5, 0.5});
  PartitioningOptions options;
  options.max_points = 64;
  const Partition p = PartitionSequence(s.View(), options);
  // Adding an identical point never increases MCOST, so one MBR suffices.
  EXPECT_EQ(p.size(), 1u);
}

TEST(PartitionSequenceTest, JumpStartsNewMbr) {
  // Two tight clusters far apart must not share an MBR: folding the far
  // point into the first MBR raises its marginal cost.
  Sequence s(2);
  for (int i = 0; i < 8; ++i) s.Append(Point{0.1 + 0.001 * i, 0.1});
  for (int i = 0; i < 8; ++i) s.Append(Point{0.9 + 0.001 * i, 0.9});
  const Partition p = PartitionSequence(s.View(), PartitioningOptions());
  ASSERT_GE(p.size(), 2u);
  EXPECT_EQ(p[0].end, 8u);  // the split lands exactly at the jump
}

TEST(PartitionSequenceTest, SmallerGrowthMakesFinerPartitions) {
  Rng rng(12);
  const Sequence s = GenerateFractalSequence(400, FractalOptions(), &rng);
  PartitioningOptions coarse;
  coarse.side_growth = 0.5;
  PartitioningOptions fine;
  fine.side_growth = 0.05;
  const size_t coarse_pieces = PartitionSequence(s.View(), coarse).size();
  const size_t fine_pieces = PartitionSequence(s.View(), fine).size();
  EXPECT_GE(fine_pieces, coarse_pieces);
}

TEST(PartitionFixedTest, ExactDivision) {
  Rng rng(13);
  const Sequence s = GenerateFractalSequence(100, FractalOptions(), &rng);
  const Partition p = PartitionFixed(s.View(), 20);
  ASSERT_EQ(p.size(), 5u);
  for (const SequenceMbr& piece : p) EXPECT_EQ(piece.count(), 20u);
}

// The ingest path's cornerstone: feeding points one at a time through
// IncrementalPartitioner yields pieces byte-identical to the offline
// PartitionSequence run — and at *every* prefix, sealed + partial equals
// the offline partition of exactly that prefix (sealed pieces are final).
TEST(IncrementalPartitionerTest, MatchesOfflineAtEveryPrefix) {
  Rng rng(91);
  PartitioningOptions options;
  for (int round = 0; round < 10; ++round) {
    const size_t length = static_cast<size_t>(rng.UniformInt(1, 300));
    const Sequence s =
        GenerateFractalSequence(length, FractalOptions(), &rng);
    IncrementalPartitioner inc(s.dim(), options);
    Partition online;
    for (size_t i = 0; i < s.size(); ++i) {
      if (auto piece = inc.Add(s.View()[i])) online.push_back(*piece);
      // sealed-so-far + open partial == offline partition of the prefix.
      Partition prefix = online;
      if (auto partial = inc.Partial()) prefix.push_back(*partial);
      const Partition offline =
          PartitionSequence(s.View().Prefix(i + 1), options);
      ASSERT_EQ(prefix.size(), offline.size()) << "prefix " << (i + 1);
      for (size_t k = 0; k < prefix.size(); ++k) {
        ASSERT_EQ(prefix[k].begin, offline[k].begin) << "prefix " << (i + 1);
        ASSERT_EQ(prefix[k].end, offline[k].end) << "prefix " << (i + 1);
        ASSERT_EQ(prefix[k].mbr.low(), offline[k].mbr.low());
        ASSERT_EQ(prefix[k].mbr.high(), offline[k].mbr.high());
      }
    }
    if (auto piece = inc.Finish()) online.push_back(*piece);
    const Partition offline = PartitionSequence(s.View(), options);
    ASSERT_EQ(online.size(), offline.size());
    for (size_t k = 0; k < online.size(); ++k) {
      EXPECT_EQ(online[k].begin, offline[k].begin);
      EXPECT_EQ(online[k].end, offline[k].end);
      EXPECT_EQ(online[k].mbr.low(), offline[k].mbr.low());
      EXPECT_EQ(online[k].mbr.high(), offline[k].mbr.high());
    }
  }
}

TEST(IncrementalPartitionerTest, ChunkingIsIrrelevant) {
  // Whether points arrive one by one or in bursts cannot matter — the
  // partitioner sees a point stream either way. (The ingest layer relies
  // on this to accept arbitrary AppendPoints spans.)
  Rng rng(92);
  PartitioningOptions options;
  const Sequence s = GenerateFractalSequence(257, FractalOptions(), &rng);
  const Partition offline = PartitionSequence(s.View(), options);
  for (int round = 0; round < 5; ++round) {
    IncrementalPartitioner inc(s.dim(), options);
    Partition online;
    size_t offset = 0;
    while (offset < s.size()) {
      const size_t chunk = std::min<size_t>(
          static_cast<size_t>(rng.UniformInt(1, 40)), s.size() - offset);
      for (size_t i = offset; i < offset + chunk; ++i) {
        if (auto piece = inc.Add(s.View()[i])) online.push_back(*piece);
      }
      offset += chunk;
    }
    if (auto piece = inc.Finish()) online.push_back(*piece);
    ASSERT_EQ(online.size(), offline.size());
    for (size_t k = 0; k < online.size(); ++k) {
      EXPECT_EQ(online[k].begin, offline[k].begin);
      EXPECT_EQ(online[k].end, offline[k].end);
    }
  }
}

TEST(IncrementalPartitionerTest, FinishResetsForTheNextSequence) {
  Rng rng(93);
  PartitioningOptions options;
  IncrementalPartitioner inc(3, options);
  const Sequence a = GenerateFractalSequence(40, FractalOptions(), &rng);
  for (size_t i = 0; i < a.size(); ++i) inc.Add(a.View()[i]);
  inc.Finish();
  EXPECT_EQ(inc.points(), a.size());
  EXPECT_FALSE(inc.Partial().has_value());
  // The next piece opens at the running index, as the store layout needs.
  // (One point only: a longer burst could legitimately seal a piece and
  // advance the open piece past the boundary.)
  const Sequence b = GenerateFractalSequence(5, FractalOptions(), &rng);
  EXPECT_FALSE(inc.Add(b.View()[0]).has_value());
  const auto partial = inc.Partial();
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->begin, a.size());
  EXPECT_EQ(partial->end, a.size() + 1);
}

TEST(PartitionFixedTest, RemainderPiece) {
  Rng rng(14);
  const Sequence s = GenerateFractalSequence(103, FractalOptions(), &rng);
  const Partition p = PartitionFixed(s.View(), 20);
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p.back().count(), 3u);
  PartitioningOptions options;
  options.max_points = 20;
  CheckPartitionInvariants(s.View(), p, options);
}

}  // namespace
}  // namespace mdseq
