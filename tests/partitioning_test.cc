#include "core/partitioning.h"

#include <gtest/gtest.h>

#include "gen/fractal.h"
#include "gen/walk.h"
#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(EstimatedAccessCostTest, MinkowskiVolumeForm) {
  const Mbr m(Point{0.0, 0.0, 0.0}, Point{0.1, 0.2, 0.3});
  PartitioningOptions options;
  options.side_growth = 0.3;
  EXPECT_DOUBLE_EQ(EstimatedAccessCost(m, options), 0.4 * 0.5 * 0.6);
}

TEST(EstimatedAccessCostTest, AdditiveForm) {
  const Mbr m(Point{0.0, 0.0, 0.0}, Point{0.1, 0.2, 0.3});
  PartitioningOptions options;
  options.side_growth = 0.3;
  options.cost_model = PartitioningOptions::CostModel::kAdditive;
  EXPECT_DOUBLE_EQ(EstimatedAccessCost(m, options), 0.4 + 0.5 + 0.6);
}

TEST(EstimatedAccessCostTest, PointMbrCostsOnlyGrowth) {
  const Mbr m = Mbr::FromPoint(Point{0.5, 0.5});
  PartitioningOptions options;
  options.side_growth = 0.3;
  EXPECT_DOUBLE_EQ(EstimatedAccessCost(m, options), 0.09);
}

TEST(PartitionSequenceTest, EmptySequenceYieldsEmptyPartition) {
  const Sequence s(3);
  EXPECT_TRUE(PartitionSequence(s.View(), PartitioningOptions()).empty());
}

TEST(PartitionSequenceTest, SinglePointSequence) {
  const Sequence s(2, {Point{0.5, 0.5}});
  const Partition p = PartitionSequence(s.View(), PartitioningOptions());
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0].begin, 0u);
  EXPECT_EQ(p[0].end, 1u);
  EXPECT_EQ(p[0].count(), 1u);
}

// Structural invariants: pieces are contiguous, non-empty, cover the
// sequence, respect max_points, and each MBR tightly bounds its points.
void CheckPartitionInvariants(SequenceView seq, const Partition& partition,
                              const PartitioningOptions& options) {
  ASSERT_FALSE(partition.empty());
  EXPECT_EQ(partition.front().begin, 0u);
  EXPECT_EQ(partition.back().end, seq.size());
  for (size_t i = 0; i < partition.size(); ++i) {
    const SequenceMbr& piece = partition[i];
    EXPECT_LT(piece.begin, piece.end);
    EXPECT_LE(piece.count(), options.max_points);
    if (i > 0) {
      EXPECT_EQ(partition[i - 1].end, piece.begin);
    }
    const Mbr tight = seq.Slice(piece.begin, piece.end).BoundingBox();
    EXPECT_EQ(piece.mbr, tight) << "piece " << i << " box is not tight";
  }
}

TEST(PartitionSequenceTest, InvariantsOnFractalData) {
  Rng rng(10);
  const PartitioningOptions options;
  for (size_t length : {1u, 2u, 7u, 56u, 300u, 512u}) {
    const Sequence s = GenerateFractalSequence(length, FractalOptions(),
                                               &rng);
    CheckPartitionInvariants(s.View(), PartitionSequence(s.View(), options),
                             options);
  }
}

TEST(PartitionSequenceTest, InvariantsOnRandomWalks) {
  Rng rng(11);
  WalkOptions walk;
  walk.dim = 3;
  PartitioningOptions options;
  options.max_points = 10;
  for (int trial = 0; trial < 20; ++trial) {
    const Sequence s = GenerateRandomWalk(200, walk, &rng);
    CheckPartitionInvariants(s.View(), PartitionSequence(s.View(), options),
                             options);
  }
}

TEST(PartitionSequenceTest, MaxPointsCapIsHonored) {
  // A constant sequence would otherwise grow one MBR forever.
  Sequence s(2);
  for (int i = 0; i < 100; ++i) s.Append(Point{0.5, 0.5});
  PartitioningOptions options;
  options.max_points = 16;
  const Partition p = PartitionSequence(s.View(), options);
  EXPECT_EQ(p.size(), (100 + 15) / 16);
  for (const SequenceMbr& piece : p) EXPECT_LE(piece.count(), 16u);
}

TEST(PartitionSequenceTest, ConstantSequenceMergesUpToCap) {
  Sequence s(2);
  for (int i = 0; i < 16; ++i) s.Append(Point{0.5, 0.5});
  PartitioningOptions options;
  options.max_points = 64;
  const Partition p = PartitionSequence(s.View(), options);
  // Adding an identical point never increases MCOST, so one MBR suffices.
  EXPECT_EQ(p.size(), 1u);
}

TEST(PartitionSequenceTest, JumpStartsNewMbr) {
  // Two tight clusters far apart must not share an MBR: folding the far
  // point into the first MBR raises its marginal cost.
  Sequence s(2);
  for (int i = 0; i < 8; ++i) s.Append(Point{0.1 + 0.001 * i, 0.1});
  for (int i = 0; i < 8; ++i) s.Append(Point{0.9 + 0.001 * i, 0.9});
  const Partition p = PartitionSequence(s.View(), PartitioningOptions());
  ASSERT_GE(p.size(), 2u);
  EXPECT_EQ(p[0].end, 8u);  // the split lands exactly at the jump
}

TEST(PartitionSequenceTest, SmallerGrowthMakesFinerPartitions) {
  Rng rng(12);
  const Sequence s = GenerateFractalSequence(400, FractalOptions(), &rng);
  PartitioningOptions coarse;
  coarse.side_growth = 0.5;
  PartitioningOptions fine;
  fine.side_growth = 0.05;
  const size_t coarse_pieces = PartitionSequence(s.View(), coarse).size();
  const size_t fine_pieces = PartitionSequence(s.View(), fine).size();
  EXPECT_GE(fine_pieces, coarse_pieces);
}

TEST(PartitionFixedTest, ExactDivision) {
  Rng rng(13);
  const Sequence s = GenerateFractalSequence(100, FractalOptions(), &rng);
  const Partition p = PartitionFixed(s.View(), 20);
  ASSERT_EQ(p.size(), 5u);
  for (const SequenceMbr& piece : p) EXPECT_EQ(piece.count(), 20u);
}

TEST(PartitionFixedTest, RemainderPiece) {
  Rng rng(14);
  const Sequence s = GenerateFractalSequence(103, FractalOptions(), &rng);
  const Partition p = PartitionFixed(s.View(), 20);
  ASSERT_EQ(p.size(), 6u);
  EXPECT_EQ(p.back().count(), 3u);
  PartitioningOptions options;
  options.max_points = 20;
  CheckPartitionInvariants(s.View(), p, options);
}

}  // namespace
}  // namespace mdseq
