// Cross-configuration property suite: the no-false-dismissal guarantee and
// the result-consistency invariants must hold for every combination of data
// kind, index backend, partitioning granularity, and phase-3 bound.

#include <set>

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "core/search.h"
#include "eval/experiment.h"
#include "gen/query_workload.h"

namespace mdseq {
namespace {

struct EngineConfig {
  DataKind kind;
  DatabaseOptions::IndexKind index;
  size_t max_points;
  bool composite;
  uint64_t seed;
};

std::string ConfigName(const ::testing::TestParamInfo<EngineConfig>& info) {
  const EngineConfig& c = info.param;
  std::string name =
      c.kind == DataKind::kSynthetic ? "synthetic" : "video";
  switch (c.index) {
    case DatabaseOptions::IndexKind::kRStarTree:
      name += "Rstar";
      break;
    case DatabaseOptions::IndexKind::kGuttmanQuadratic:
      name += "GuttmanQ";
      break;
    case DatabaseOptions::IndexKind::kGuttmanLinear:
      name += "GuttmanL";
      break;
    case DatabaseOptions::IndexKind::kLinear:
      name += "Flat";
      break;
  }
  name += "Max" + std::to_string(c.max_points);
  name += c.composite ? "Composite" : "Pairwise";
  return name;
}

class EngineConfigTest : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(EngineConfigTest, NoFalseDismissalAndConsistency) {
  const EngineConfig& config = GetParam();

  WorkloadConfig workload_config;
  workload_config.kind = config.kind;
  workload_config.num_sequences = 60;
  workload_config.min_length = 56;
  workload_config.max_length = 200;
  workload_config.num_queries = 4;
  workload_config.query.min_length = 16;
  workload_config.query.max_length = 64;
  workload_config.query.noise = 0.03;
  workload_config.database.index_kind = config.index;
  workload_config.database.partitioning.max_points = config.max_points;
  workload_config.seed = config.seed;
  const Workload workload = BuildWorkload(workload_config);

  SearchOptions search_options;
  search_options.composite_bound = config.composite;
  const SimilaritySearch engine(workload.database.get(), search_options);
  const SequentialScan scan(workload.database.get());

  for (const Sequence& query : workload.queries) {
    for (double epsilon : {0.05, 0.25}) {
      const SearchResult result = engine.Search(query.View(), epsilon);
      // Candidate and match lists are sorted, unique, and nested.
      std::set<size_t> candidates(result.candidates.begin(),
                                  result.candidates.end());
      ASSERT_EQ(candidates.size(), result.candidates.size());
      std::set<size_t> matched;
      for (const SequenceMatch& m : result.matches) {
        EXPECT_TRUE(candidates.count(m.sequence_id));
        EXPECT_TRUE(matched.insert(m.sequence_id).second);
        EXPECT_FALSE(m.solution_interval.empty());
        EXPECT_LE(m.min_dnorm, epsilon);
      }
      // The guarantee under test: every truly similar sequence survives
      // both pruning phases, in every configuration.
      for (const ScanMatch& truth : scan.Search(query.View(), epsilon)) {
        EXPECT_TRUE(matched.count(truth.sequence_id))
            << ConfigName({GetParam(), 0}) << " dismissed sequence "
            << truth.sequence_id << " at eps " << epsilon;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, EngineConfigTest,
    ::testing::Values(
        EngineConfig{DataKind::kSynthetic,
                     DatabaseOptions::IndexKind::kRStarTree, 64, false, 1},
        EngineConfig{DataKind::kSynthetic,
                     DatabaseOptions::IndexKind::kRStarTree, 64, true, 2},
        EngineConfig{DataKind::kSynthetic,
                     DatabaseOptions::IndexKind::kGuttmanQuadratic, 64,
                     false, 3},
        EngineConfig{DataKind::kSynthetic,
                     DatabaseOptions::IndexKind::kGuttmanLinear, 64, false,
                     4},
        EngineConfig{DataKind::kSynthetic,
                     DatabaseOptions::IndexKind::kLinear, 64, false, 5},
        EngineConfig{DataKind::kSynthetic,
                     DatabaseOptions::IndexKind::kRStarTree, 8, false, 6},
        EngineConfig{DataKind::kSynthetic,
                     DatabaseOptions::IndexKind::kRStarTree, 8, true, 7},
        EngineConfig{DataKind::kVideo,
                     DatabaseOptions::IndexKind::kRStarTree, 64, false, 8},
        EngineConfig{DataKind::kVideo,
                     DatabaseOptions::IndexKind::kRStarTree, 64, true, 9},
        EngineConfig{DataKind::kVideo,
                     DatabaseOptions::IndexKind::kGuttmanQuadratic, 32,
                     false, 10},
        EngineConfig{DataKind::kVideo, DatabaseOptions::IndexKind::kLinear,
                     16, true, 11},
        EngineConfig{DataKind::kVideo,
                     DatabaseOptions::IndexKind::kRStarTree, 128, false,
                     12}),
    ConfigName);

}  // namespace
}  // namespace mdseq
