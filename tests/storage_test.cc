#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "gen/fractal.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_rtree.h"
#include "storage/sequence_store.h"
#include "util/random.h"

namespace mdseq {
namespace {

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

class PageFileTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = TempPath("pages.db");
};

TEST_F(PageFileTest, CreateAllocateWriteReadRoundTrip) {
  PageFile file;
  ASSERT_TRUE(file.Create(path_));
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();
  ASSERT_NE(a, kInvalidPageId);
  ASSERT_NE(b, kInvalidPageId);
  EXPECT_NE(a, b);
  EXPECT_EQ(file.page_count(), 2u);

  Page page;
  std::memset(page.data, 0xab, kPageSize);
  ASSERT_TRUE(file.Write(a, page));
  Page loaded;
  ASSERT_TRUE(file.Read(a, &loaded));
  EXPECT_EQ(std::memcmp(page.data, loaded.data, kPageSize), 0);

  // The other page stays zeroed.
  ASSERT_TRUE(file.Read(b, &loaded));
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(loaded.data[i], 0);
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    const PageId id = file.Allocate();
    Page page;
    std::memset(page.data, 7, kPageSize);
    ASSERT_TRUE(file.Write(id, page));
    ASSERT_TRUE(file.set_root_hint(id));
  }
  PageFile reopened;
  ASSERT_TRUE(reopened.Open(path_));
  EXPECT_EQ(reopened.page_count(), 1u);
  EXPECT_EQ(reopened.root_hint(), 0u);
  Page loaded;
  ASSERT_TRUE(reopened.Read(0, &loaded));
  EXPECT_EQ(loaded.data[123], 7);
}

TEST_F(PageFileTest, RejectsOutOfRangeAccess) {
  PageFile file;
  ASSERT_TRUE(file.Create(path_));
  Page page;
  EXPECT_FALSE(file.Read(0, &page));
  EXPECT_FALSE(file.Write(3, page));
}

TEST_F(PageFileTest, OpenRejectsGarbageFile) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a page file", f);
    std::fclose(f);
  }
  PageFile file;
  EXPECT_FALSE(file.Open(path_));
}

TEST_F(PageFileTest, CountsIo) {
  PageFile file;
  ASSERT_TRUE(file.Create(path_));
  const PageId id = file.Allocate();
  Page page;
  file.Read(id, &page);
  file.Read(id, &page);
  EXPECT_EQ(file.reads(), 2u);
  EXPECT_GE(file.writes(), 1u);  // Allocate zero-fills via Write
}

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(file_.Create(path_)); }
  void TearDown() override {
    file_.Close();
    std::remove(path_.c_str());
  }
  std::string path_ = TempPath("pool.db");
  PageFile file_;
};

TEST_F(BufferPoolTest, HitsAndMisses) {
  BufferPool pool(&file_, 2);
  PageId ids[3];
  for (PageId& id : ids) {
    PageHandle handle = pool.Allocate();
    ASSERT_TRUE(handle.valid());
    id = handle.id();
    handle.mutable_page()->data[0] = static_cast<uint8_t>(id + 1);
    handle.MarkDirty();
  }
  pool.ResetStats();
  // Two fetches of the same page: one miss (capacity 2, three pages, page 0
  // was evicted), then a hit.
  {
    PageHandle handle = pool.Fetch(ids[0]);
    ASSERT_TRUE(handle.valid());
    EXPECT_EQ(handle.page().data[0], 1);
  }
  {
    PageHandle handle = pool.Fetch(ids[0]);
    ASSERT_TRUE(handle.valid());
  }
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, DirtyPagesSurviveEviction) {
  PageId first;
  {
    BufferPool pool(&file_, 1);  // every new fetch evicts
    PageHandle a = pool.Allocate();
    first = a.id();
    a.mutable_page()->data[10] = 42;
    a.MarkDirty();
    a.Release();
    // Allocating another page forces eviction (and write-back) of `first`.
    PageHandle b = pool.Allocate();
    ASSERT_TRUE(b.valid());
    b.Release();
    PageHandle again = pool.Fetch(first);
    ASSERT_TRUE(again.valid());
    EXPECT_EQ(again.page().data[10], 42);
  }
  // Destruction flushed everything; the file sees the data.
  Page page;
  ASSERT_TRUE(file_.Read(first, &page));
  EXPECT_EQ(page.data[10], 42);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(&file_, 1);
  PageHandle pinned = pool.Allocate();
  ASSERT_TRUE(pinned.valid());
  // The single frame is pinned: another allocation cannot find a frame.
  PageHandle overflow = pool.Allocate();
  EXPECT_FALSE(overflow.valid());
  pinned.Release();
  PageHandle now_ok = pool.Fetch(0);
  EXPECT_TRUE(now_ok.valid());
}

TEST_F(BufferPoolTest, MoveTransfersPin) {
  BufferPool pool(&file_, 1);
  PageHandle a = pool.Allocate();
  const PageId id = a.id();
  PageHandle b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): tested
  EXPECT_TRUE(b.valid());
  // While `b` holds the pin, the single frame stays occupied.
  EXPECT_FALSE(pool.Allocate().valid());
  b.Release();
  EXPECT_TRUE(pool.Fetch(id).valid());
}

// Both replacement policies must serve correct data under heavy eviction.
class BufferPoolPolicyTest
    : public ::testing::TestWithParam<BufferPool::Policy> {
 protected:
  void SetUp() override { ASSERT_TRUE(file_.Create(path_)); }
  void TearDown() override {
    file_.Close();
    std::remove(path_.c_str());
  }
  std::string path_ = TempPath("policy.db");
  PageFile file_;
};

TEST_P(BufferPoolPolicyTest, CorrectDataUnderEvictionChurn) {
  BufferPool pool(&file_, 3, GetParam());
  std::vector<PageId> ids;
  for (int i = 0; i < 12; ++i) {
    PageHandle handle = pool.Allocate();
    ASSERT_TRUE(handle.valid());
    handle.mutable_page()->data[0] = static_cast<uint8_t>(i + 1);
    handle.MarkDirty();
    ids.push_back(handle.id());
  }
  Rng rng(99);
  for (int access = 0; access < 200; ++access) {
    const size_t pick = static_cast<size_t>(rng.UniformInt(0, 11));
    PageHandle handle = pool.Fetch(ids[pick]);
    ASSERT_TRUE(handle.valid());
    EXPECT_EQ(handle.page().data[0], static_cast<uint8_t>(pick + 1));
  }
  EXPECT_GT(pool.evictions(), 0u);
}

TEST_P(BufferPoolPolicyTest, RepeatedHotPageStaysResident) {
  BufferPool pool(&file_, 2, GetParam());
  const PageId hot = pool.Allocate().id();
  const PageId cold_a = pool.Allocate().id();
  const PageId cold_b = pool.Allocate().id();
  // Access pattern: hot page touched between every cold access.
  pool.ResetStats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Fetch(hot).valid());
    ASSERT_TRUE(pool.Fetch(i % 2 == 0 ? cold_a : cold_b).valid());
  }
  // Exact LRU keeps the hot page resident every time; Clock's second
  // chance is an approximation, so it may sacrifice the hot page when the
  // hand lands on it right after its bit was cleared — but it still hits
  // for at least half the accesses on this pattern.
  if (GetParam() == BufferPool::Policy::kLru) {
    EXPECT_GE(pool.hits(), 9u);
  } else {
    EXPECT_GE(pool.hits(), 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, BufferPoolPolicyTest,
                         ::testing::Values(BufferPool::Policy::kLru,
                                           BufferPool::Policy::kClock),
                         [](const auto& info) {
                           return info.param == BufferPool::Policy::kLru
                                      ? "Lru"
                                      : "Clock";
                         });

class PagedRTreeTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<IndexEntry> MakeEntries(size_t count, uint64_t seed) {
    Rng rng(seed);
    std::vector<IndexEntry> entries;
    for (uint64_t i = 0; i < count; ++i) {
      Point low{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      Point high = low;
      for (double& v : high) v += 0.05 * rng.Uniform();
      entries.push_back(IndexEntry{Mbr(low, high), i});
    }
    return entries;
  }

  std::string path_ = TempPath("rtree.db");
};

TEST_F(PagedRTreeTest, PageCapacityMatchesLayout) {
  // dim 3: header 8 bytes, entry 56 bytes -> (4096-8)/56 = 73.
  EXPECT_EQ(PagedRTree::PageCapacity(3), 73u);
  EXPECT_GE(PagedRTree::PageCapacity(1), 100u);
}

TEST_F(PagedRTreeTest, BuildQueryMatchesBruteForce) {
  const auto entries = MakeEntries(5000, 1);
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::Build(3, entries, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 64);
  PagedRTree tree(3, &pool, file);
  ASSERT_TRUE(tree.valid());
  EXPECT_GE(tree.height(), 2u);
  EXPECT_EQ(tree.CountEntries(), entries.size());

  Rng rng(2);
  for (int trial = 0; trial < 25; ++trial) {
    Point q{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    const Mbr query = Mbr::FromPoint(q);
    const double epsilon = rng.Uniform() * 0.2;
    const double eps2 = epsilon * epsilon;
    std::vector<uint64_t> expected;
    for (const IndexEntry& e : entries) {
      if (query.MinDist2(e.mbr) <= eps2) expected.push_back(e.value);
    }
    std::sort(expected.begin(), expected.end());
    std::vector<uint64_t> actual;
    ASSERT_TRUE(tree.RangeSearch(query, epsilon, &actual));
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

TEST_F(PagedRTreeTest, EmptyTreeAnswersNothing) {
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::Build(3, {}, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 4);
  PagedRTree tree(3, &pool, file);
  ASSERT_TRUE(tree.valid());
  std::vector<uint64_t> out;
  ASSERT_TRUE(tree.RangeSearch(
      Mbr(Point{0.0, 0.0, 0.0}, Point{1.0, 1.0, 1.0}), 1.0, &out));
  EXPECT_TRUE(out.empty());
}

TEST_F(PagedRTreeTest, SelectiveQueriesMissLessWithBiggerPool) {
  const auto entries = MakeEntries(20000, 3);
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::Build(3, entries, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));

  auto run_queries = [&](size_t pool_size) {
    BufferPool pool(&file, pool_size);
    PagedRTree tree(3, &pool, file);
    Rng rng(4);
    std::vector<uint64_t> out;
    for (int i = 0; i < 50; ++i) {
      out.clear();
      Point q{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      tree.RangeSearch(Mbr::FromPoint(q), 0.05, &out);
    }
    return pool.misses();
  };
  const uint64_t small_pool_misses = run_queries(4);
  const uint64_t large_pool_misses = run_queries(512);
  EXPECT_LT(large_pool_misses, small_pool_misses);
}

TEST_F(PagedRTreeTest, DynamicInsertFromEmptyMatchesBruteForce) {
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::CreateEmpty(3, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 128);
  PagedRTree tree(3, &pool, file);
  ASSERT_TRUE(tree.valid());

  const auto entries = MakeEntries(1200, 7);
  for (const IndexEntry& e : entries) {
    ASSERT_TRUE(tree.Insert(e.mbr, e.value, &file));
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.CountEntries(), entries.size());
  EXPECT_GE(tree.height(), 2u);

  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const Mbr query = Mbr::FromPoint(
        Point{rng.Uniform(), rng.Uniform(), rng.Uniform()});
    const double epsilon = rng.Uniform() * 0.15;
    const double eps2 = epsilon * epsilon;
    std::vector<uint64_t> expected;
    for (const IndexEntry& e : entries) {
      if (query.MinDist2(e.mbr) <= eps2) expected.push_back(e.value);
    }
    std::sort(expected.begin(), expected.end());
    std::vector<uint64_t> actual;
    ASSERT_TRUE(tree.RangeSearch(query, epsilon, &actual));
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST_F(PagedRTreeTest, DynamicInsertsOnTopOfBulkLoad) {
  const auto initial = MakeEntries(800, 9);
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::Build(3, initial, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 128);
  PagedRTree tree(3, &pool, file);
  const auto extra = MakeEntries(400, 10);
  for (const IndexEntry& e : extra) {
    ASSERT_TRUE(tree.Insert(e.mbr, e.value + 100000, &file));
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.CountEntries(), initial.size() + extra.size());

  // Everything is findable.
  std::vector<uint64_t> all;
  Mbr everything(Point{-1.0, -1.0, -1.0}, Point{2.0, 2.0, 2.0});
  ASSERT_TRUE(tree.RangeSearch(everything, 0.0, &all));
  EXPECT_EQ(all.size(), initial.size() + extra.size());
}

TEST_F(PagedRTreeTest, InsertedTreePersistsAfterFlush) {
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::CreateEmpty(3, &file));
    BufferPool pool(&file, 32);
    PagedRTree tree(3, &pool, file);
    for (const IndexEntry& e : MakeEntries(300, 11)) {
      ASSERT_TRUE(tree.Insert(e.mbr, e.value, &file));
    }
    ASSERT_TRUE(pool.Flush());
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 32);
  PagedRTree tree(3, &pool, file);
  ASSERT_TRUE(tree.valid());
  EXPECT_EQ(tree.CountEntries(), 300u);
  EXPECT_TRUE(tree.CheckInvariants());
}

class SequenceStoreTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = TempPath("seqstore.db");
};

TEST_F(SequenceStoreTest, RoundTripsVariableLengthCorpus) {
  Rng rng(11);
  std::vector<Sequence> corpus;
  // Lengths chosen so records span page boundaries (3-d doubles: a
  // 512-point sequence is 12 KiB, three pages).
  for (size_t length : {1u, 56u, 512u, 100u, 300u}) {
    corpus.push_back(GenerateFractalSequence(length, FractalOptions(),
                                             &rng));
  }
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(SequenceStore::Write(corpus, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 8);
  SequenceStore store(&pool, file);
  ASSERT_TRUE(store.valid());
  ASSERT_EQ(store.size(), corpus.size());
  for (size_t id = 0; id < corpus.size(); ++id) {
    const auto loaded = store.Read(id);
    ASSERT_TRUE(loaded.has_value()) << id;
    EXPECT_EQ(loaded->dim(), corpus[id].dim());
    EXPECT_EQ(loaded->data(), corpus[id].data()) << id;
  }
}

TEST_F(SequenceStoreTest, EmptyCorpus) {
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(SequenceStore::Write({}, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 2);
  SequenceStore store(&pool, file);
  EXPECT_TRUE(store.valid());
  EXPECT_EQ(store.size(), 0u);
}

TEST_F(SequenceStoreTest, RandomAccessReadsAreIndependent) {
  Rng rng(12);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back(GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(10, 400)), FractalOptions(),
        &rng));
  }
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(SequenceStore::Write(corpus, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 4);  // tiny pool forces evictions between reads
  SequenceStore store(&pool, file);
  ASSERT_TRUE(store.valid());
  // Read in a scrambled order; every record must still be intact.
  std::vector<size_t> order(corpus.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng.engine());
  for (size_t id : order) {
    const auto loaded = store.Read(id);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->data(), corpus[id].data()) << id;
  }
}

TEST_F(SequenceStoreTest, ReadsAreChargedToTheBufferPool) {
  Rng rng(13);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(GenerateFractalSequence(400, FractalOptions(), &rng));
  }
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(SequenceStore::Write(corpus, &file));
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 64);
  SequenceStore store(&pool, file);
  pool.ResetStats();
  store.Read(5);
  const uint64_t first_misses = pool.misses();
  EXPECT_GT(first_misses, 0u);  // a 400-point 3-d record spans pages
  store.Read(5);
  EXPECT_EQ(pool.misses(), first_misses);  // second read is all hits
  EXPECT_GT(pool.hits(), 0u);
}

TEST_F(PagedRTreeTest, TreePersistsAcrossReopen) {
  const auto entries = MakeEntries(500, 5);
  {
    PageFile file;
    ASSERT_TRUE(file.Create(path_));
    ASSERT_TRUE(PagedRTree::Build(3, entries, &file));
  }
  // Fully fresh process-style reopen.
  PageFile file;
  ASSERT_TRUE(file.Open(path_));
  BufferPool pool(&file, 16);
  PagedRTree tree(3, &pool, file);
  EXPECT_EQ(tree.CountEntries(), 500u);
}

}  // namespace
}  // namespace mdseq
