#include "core/mbr_distance.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/partitioning.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {
namespace {

// Builds a partition from explicit (mbr, begin, end) pieces.
Partition MakePartition(std::vector<SequenceMbr> pieces) { return pieces; }

Mbr BoxAt(double lo, double hi) {
  return Mbr(Point{lo, lo}, Point{hi, hi});
}

TEST(ComputeMbrDistancesTest, MatchesPairwiseMbrDistance) {
  const Mbr probe = BoxAt(0.0, 0.1);
  const Partition target = MakePartition({
      SequenceMbr{BoxAt(0.2, 0.3), 0, 4},
      SequenceMbr{BoxAt(0.5, 0.6), 4, 10},
  });
  const std::vector<double> d = ComputeMbrDistances(probe, target);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], MbrDistance(probe, target[0].mbr));
  EXPECT_DOUBLE_EQ(d[1], MbrDistance(probe, target[1].mbr));
}

TEST(NormalizedDistanceTest, LargeTargetMbrReducesToDmbr) {
  const Partition target = MakePartition({
      SequenceMbr{BoxAt(0.2, 0.3), 0, 20},
  });
  const Mbr probe = BoxAt(0.0, 0.1);
  const std::vector<double> d = ComputeMbrDistances(probe, target);
  const NormalizedDistanceResult r = NormalizedDistance(12, target, 0, d);
  EXPECT_DOUBLE_EQ(r.distance, d[0]);
  EXPECT_EQ(r.point_begin, 0u);
  EXPECT_EQ(r.point_end, 20u);
}

// Example 2 of the paper: counts (4, 6, 5, 5), query 12 points,
// D2 < D1 < D3 < D4. Expect Dnorm(q, mbr2) = (6*D2 + 4*D1 + 2*D3) / 12 and
// the involved points to be all of mbr1, mbr2 and the first 2 of mbr3.
TEST(NormalizedDistanceTest, PaperExampleTwo) {
  // Construct boxes whose distances to the probe are D1=0.2, D2=0.1,
  // D3=0.3, D4=0.4 (gaps along the x axis only).
  const Mbr probe(Point{0.0, 0.0}, Point{0.1, 1.0});
  const Partition target = MakePartition({
      SequenceMbr{Mbr(Point{0.30, 0.0}, Point{0.31, 1.0}), 0, 4},   // D1=0.2
      SequenceMbr{Mbr(Point{0.20, 0.0}, Point{0.21, 1.0}), 4, 10},  // D2=0.1
      SequenceMbr{Mbr(Point{0.40, 0.0}, Point{0.41, 1.0}), 10, 15},  // D3=0.3
      SequenceMbr{Mbr(Point{0.50, 0.0}, Point{0.51, 1.0}), 15, 20},  // D4=0.4
  });
  const std::vector<double> d = ComputeMbrDistances(probe, target);
  ASSERT_NEAR(d[0], 0.2, 1e-12);
  ASSERT_NEAR(d[1], 0.1, 1e-12);
  ASSERT_NEAR(d[2], 0.3, 1e-12);
  ASSERT_NEAR(d[3], 0.4, 1e-12);

  const NormalizedDistanceResult r = NormalizedDistance(12, target, 1, d);
  EXPECT_NEAR(r.distance, (0.1 * 6 + 0.2 * 4 + 0.3 * 2) / 12.0, 1e-12);
  EXPECT_EQ(r.point_begin, 0u);   // all of mbr1
  EXPECT_EQ(r.point_end, 12u);    // ... through the first 2 points of mbr3
}

TEST(NormalizedDistanceTest, PrefersCheaperSideWindow) {
  // Around mbr1 (D=0.1): left neighbor is cheap (0.0), right is expensive
  // (0.9); the minimum window extends left.
  const Mbr probe(Point{0.0, 0.0}, Point{0.1, 1.0});
  const Partition target = MakePartition({
      SequenceMbr{Mbr(Point{0.05, 0.0}, Point{0.1, 1.0}), 0, 10},   // D=0
      SequenceMbr{Mbr(Point{0.20, 0.0}, Point{0.21, 1.0}), 10, 16},  // D=0.1
      SequenceMbr{Mbr(Point{1.0, 0.0}, Point{1.01, 1.0}), 16, 26},  // D=0.9
  });
  const std::vector<double> d = ComputeMbrDistances(probe, target);
  const NormalizedDistanceResult r = NormalizedDistance(10, target, 1, d);
  // RD window: last 4 points of mbr0 + all 6 of mbr1.
  EXPECT_NEAR(r.distance, (0.0 * 4 + 0.1 * 6) / 10.0, 1e-12);
  EXPECT_EQ(r.point_begin, 6u);
  EXPECT_EQ(r.point_end, 16u);
}

TEST(NormalizedDistanceTest, WholeSequenceShorterThanProbeFallsBack) {
  const Mbr probe(Point{0.0, 0.0}, Point{0.1, 1.0});
  const Partition target = MakePartition({
      SequenceMbr{Mbr(Point{0.2, 0.0}, Point{0.3, 1.0}), 0, 3},  // D=0.1
      SequenceMbr{Mbr(Point{0.4, 0.0}, Point{0.5, 1.0}), 3, 7},  // D=0.3
  });
  const std::vector<double> d = ComputeMbrDistances(probe, target);
  for (size_t j = 0; j < target.size(); ++j) {
    const NormalizedDistanceResult r = NormalizedDistance(20, target, j, d);
    EXPECT_NEAR(r.distance, (0.1 * 3 + 0.3 * 4) / 7.0, 1e-12);
    EXPECT_EQ(r.point_begin, 0u);
    EXPECT_EQ(r.point_end, 7u);
  }
}

TEST(NormalizedDistanceTest, MarginalFirstMbrUsesOnlyLdWindows) {
  const Mbr probe(Point{0.0, 0.0}, Point{0.1, 1.0});
  const Partition target = MakePartition({
      SequenceMbr{Mbr(Point{0.2, 0.0}, Point{0.3, 1.0}), 0, 4},    // D=0.1
      SequenceMbr{Mbr(Point{0.4, 0.0}, Point{0.5, 1.0}), 4, 12},   // D=0.3
      SequenceMbr{Mbr(Point{0.6, 0.0}, Point{0.7, 1.0}), 12, 20},  // D=0.5
  });
  const std::vector<double> d = ComputeMbrDistances(probe, target);
  const NormalizedDistanceResult r = NormalizedDistance(6, target, 0, d);
  // Only LD from k=0: 4 points of mbr0 + first 2 of mbr1.
  EXPECT_NEAR(r.distance, (0.1 * 4 + 0.3 * 2) / 6.0, 1e-12);
  EXPECT_EQ(r.point_begin, 0u);
  EXPECT_EQ(r.point_end, 6u);
}

TEST(NormalizedDistanceTest, MarginalLastMbrUsesOnlyRdWindows) {
  const Mbr probe(Point{0.0, 0.0}, Point{0.1, 1.0});
  const Partition target = MakePartition({
      SequenceMbr{Mbr(Point{0.2, 0.0}, Point{0.3, 1.0}), 0, 8},   // D=0.1
      SequenceMbr{Mbr(Point{0.4, 0.0}, Point{0.5, 1.0}), 8, 12},  // D=0.3
  });
  const std::vector<double> d = ComputeMbrDistances(probe, target);
  const NormalizedDistanceResult r = NormalizedDistance(6, target, 1, d);
  // RD: last 2 points of mbr0 + 4 of mbr1.
  EXPECT_NEAR(r.distance, (0.1 * 2 + 0.3 * 4) / 6.0, 1e-12);
  EXPECT_EQ(r.point_begin, 6u);
  EXPECT_EQ(r.point_end, 12u);
}

// --- Lemma property tests on random data -----------------------------------

struct LemmaCase {
  uint64_t seed;
  size_t data_length;
  size_t query_length;
};

class LemmaPropertyTest : public ::testing::TestWithParam<LemmaCase> {};

TEST_P(LemmaPropertyTest, LowerBoundChain) {
  const LemmaCase param = GetParam();
  Rng rng(param.seed);
  const FractalOptions gen;
  const Sequence data =
      GenerateFractalSequence(param.data_length, gen, &rng);
  const std::vector<Sequence> corpus = {data};
  QueryWorkloadOptions query_options;
  query_options.min_length = param.query_length;
  query_options.max_length = param.query_length;
  query_options.noise = 0.05;
  const Sequence query = DrawQuery(corpus, query_options, &rng);

  PartitioningOptions part;
  part.max_points = 16;
  const Partition query_partition = PartitionSequence(query.View(), part);
  const Partition data_partition = PartitionSequence(data.View(), part);

  const double exact = SequenceDistance(query.View(), data.View());
  const double min_dmbr = MinMbrDistance(query_partition, data_partition);

  // Lemma 1: min Dmbr <= D(Q, S).
  EXPECT_LE(min_dmbr, exact + 1e-9);

  // Lemma 3: min Dmbr <= min Dnorm <= D(Q, S). The probe side is the
  // shorter sequence's partition, mirroring Definition 3.
  const bool query_is_shorter = query.size() <= data.size();
  const Partition& probe_partition =
      query_is_shorter ? query_partition : data_partition;
  const Partition& target_partition =
      query_is_shorter ? data_partition : query_partition;
  double min_dnorm = std::numeric_limits<double>::infinity();
  for (const SequenceMbr& probe : probe_partition) {
    min_dnorm = std::min(min_dnorm, MinNormalizedDistance(
                                        probe.mbr, probe.count(),
                                        target_partition));
  }
  EXPECT_LE(min_dmbr, min_dnorm + 1e-9);
  EXPECT_LE(min_dnorm, exact + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, LemmaPropertyTest,
    ::testing::Values(LemmaCase{1, 64, 16}, LemmaCase{2, 64, 64},
                      LemmaCase{3, 128, 32}, LemmaCase{4, 200, 100},
                      LemmaCase{5, 300, 10}, LemmaCase{6, 57, 56},
                      LemmaCase{7, 56, 120},  // long query
                      LemmaCase{8, 100, 200},  // long query
                      LemmaCase{9, 512, 128}, LemmaCase{10, 311, 77},
                      LemmaCase{11, 64, 1},   // single-point query
                      LemmaCase{12, 1, 1},    // single-point both
                      LemmaCase{13, 400, 350}, LemmaCase{14, 512, 512},
                      LemmaCase{15, 90, 33}, LemmaCase{16, 222, 111}));

// Lemma 2: with a single query MBR, min_j Dnorm lower-bounds the distance
// to every equal-length subsequence of S.
TEST(LemmaTwoTest, SingleQueryMbrBoundsEveryAlignment) {
  Rng rng(77);
  const Sequence data = GenerateFractalSequence(120, FractalOptions(), &rng);
  // A short, tight query so it stays in one MBR.
  Sequence query(3);
  for (int i = 0; i < 8; ++i) {
    query.Append(Point{0.4 + 0.001 * i, 0.5, 0.5});
  }
  PartitioningOptions part;
  part.max_points = 16;
  const Partition query_partition = PartitionSequence(query.View(), part);
  ASSERT_EQ(query_partition.size(), 1u);
  const Partition data_partition = PartitionSequence(data.View(), part);

  const double min_dnorm = MinNormalizedDistance(
      query_partition[0].mbr, query_partition[0].count(), data_partition);
  const std::vector<double> profile =
      WindowDistanceProfile(query.View(), data.View());
  for (double window_distance : profile) {
    EXPECT_LE(min_dnorm, window_distance + 1e-9);
  }
}

TEST(MinMbrDistanceTest, ZeroWhenPartitionsOverlap) {
  Rng rng(42);
  const Sequence data = GenerateFractalSequence(64, FractalOptions(), &rng);
  const Partition p = PartitionSequence(data.View(), PartitioningOptions());
  EXPECT_DOUBLE_EQ(MinMbrDistance(p, p), 0.0);
}

}  // namespace
}  // namespace mdseq
