#include "core/database.h"

#include <gtest/gtest.h>

#include "baseline/sequential_scan.h"
#include "core/search.h"
#include "gen/fractal.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(DatabaseTest, PackUnpackRoundTrips) {
  const uint64_t packed = SequenceDatabase::PackEntry(12345, 678);
  EXPECT_EQ(SequenceDatabase::UnpackSequenceId(packed), 12345u);
  EXPECT_EQ(SequenceDatabase::UnpackMbrOrdinal(packed), 678u);
  const uint64_t extremes = SequenceDatabase::PackEntry(0xffffffffu,
                                                        0xffffffffu);
  EXPECT_EQ(SequenceDatabase::UnpackSequenceId(extremes), 0xffffffffu);
  EXPECT_EQ(SequenceDatabase::UnpackMbrOrdinal(extremes), 0xffffffffu);
}

TEST(DatabaseTest, AddAssignsDenseIds) {
  Rng rng(1);
  SequenceDatabase db(3);
  for (size_t i = 0; i < 5; ++i) {
    const Sequence s = GenerateFractalSequence(64, FractalOptions(), &rng);
    EXPECT_EQ(db.Add(s), i);
  }
  EXPECT_EQ(db.num_sequences(), 5u);
}

TEST(DatabaseTest, TotalsAccumulate) {
  Rng rng(2);
  SequenceDatabase db(3);
  size_t expected_points = 0;
  size_t expected_mbrs = 0;
  for (size_t length : {60u, 100u, 256u}) {
    const Sequence s = GenerateFractalSequence(length, FractalOptions(),
                                               &rng);
    const size_t id = db.Add(s);
    expected_points += length;
    expected_mbrs += db.partition(id).size();
  }
  EXPECT_EQ(db.total_points(), expected_points);
  EXPECT_EQ(db.total_mbrs(), expected_mbrs);
}

TEST(DatabaseTest, StoredSequenceAndPartitionAgree) {
  Rng rng(3);
  SequenceDatabase db(3);
  const Sequence s = GenerateFractalSequence(200, FractalOptions(), &rng);
  const size_t id = db.Add(s);
  const Sequence& stored = db.sequence(id);
  EXPECT_EQ(stored.size(), s.size());
  const Partition& partition = db.partition(id);
  ASSERT_FALSE(partition.empty());
  EXPECT_EQ(partition.back().end, stored.size());
  // Every partition MBR bounds exactly its slice of the stored sequence.
  for (const SequenceMbr& piece : partition) {
    EXPECT_EQ(piece.mbr,
              stored.Slice(piece.begin, piece.end).BoundingBox());
  }
}

TEST(DatabaseTest, IndexHoldsEveryPartitionMbr) {
  Rng rng(4);
  SequenceDatabase db(3);
  for (int i = 0; i < 10; ++i) {
    db.Add(GenerateFractalSequence(128, FractalOptions(), &rng));
  }
  // Query the whole space: every (sequence, ordinal) pair must come back.
  std::vector<uint64_t> values;
  db.index().RangeSearch(Mbr(Point{0.0, 0.0, 0.0}, Point{1.0, 1.0, 1.0}),
                         0.0, &values);
  EXPECT_EQ(values.size(), db.total_mbrs());
  for (uint64_t value : values) {
    const size_t id = SequenceDatabase::UnpackSequenceId(value);
    const size_t ordinal = SequenceDatabase::UnpackMbrOrdinal(value);
    ASSERT_LT(id, db.num_sequences());
    ASSERT_LT(ordinal, db.partition(id).size());
  }
}

TEST(DatabaseTest, PartitioningOptionsAreApplied) {
  Rng rng(5);
  DatabaseOptions options;
  options.partitioning.max_points = 8;
  SequenceDatabase db(3, options);
  const size_t id =
      db.Add(GenerateFractalSequence(100, FractalOptions(), &rng));
  for (const SequenceMbr& piece : db.partition(id)) {
    EXPECT_LE(piece.count(), 8u);
  }
}

TEST(DatabaseTest, RemoveTombstonesAndShrinksIndex) {
  Rng rng(7);
  SequenceDatabase db(3);
  std::vector<size_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(db.Add(GenerateFractalSequence(80, FractalOptions(),
                                                 &rng)));
  }
  const size_t mbrs_before = db.total_mbrs();
  const size_t removed_mbrs = db.partition(3).size();
  ASSERT_TRUE(db.Remove(3));
  EXPECT_TRUE(db.is_removed(3));
  EXPECT_FALSE(db.Remove(3));  // second removal reports failure
  EXPECT_EQ(db.num_sequences(), 8u);  // ids are never reused
  EXPECT_EQ(db.num_live_sequences(), 7u);
  EXPECT_EQ(db.total_mbrs(), mbrs_before - removed_mbrs);
  // No index payload mentions the removed id anymore.
  std::vector<uint64_t> values;
  db.index().RangeSearch(Mbr(Point{0.0, 0.0, 0.0}, Point{1.0, 1.0, 1.0}),
                         2.0, &values);
  for (uint64_t value : values) {
    EXPECT_NE(SequenceDatabase::UnpackSequenceId(value), 3u);
  }
}

TEST(DatabaseTest, SearchNeverReturnsRemovedSequences) {
  Rng rng(8);
  SequenceDatabase db(3);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.push_back(GenerateFractalSequence(100, FractalOptions(), &rng));
    db.Add(corpus.back());
  }
  // Query extracted from sequence 11, then remove it.
  const Sequence query = corpus[11].Slice(10, 50).Materialize();
  ASSERT_TRUE(db.Remove(11));
  SimilaritySearch engine(&db);
  const SearchResult result = engine.SearchVerified(query.View(), 0.2);
  for (const SequenceMatch& match : result.matches) {
    EXPECT_NE(match.sequence_id, 11u);
  }
  // Top-k over the shrunken database also skips the tombstone.
  const auto nearest = engine.SearchNearest(query.View(), 19);
  EXPECT_EQ(nearest.size(), 19u);
  for (const SequenceMatch& match : nearest) {
    EXPECT_NE(match.sequence_id, 11u);
  }
}

TEST(DatabaseTest, LinearBackendWorks) {
  Rng rng(6);
  DatabaseOptions options;
  options.index_kind = DatabaseOptions::IndexKind::kLinear;
  SequenceDatabase db(3, options);
  db.Add(GenerateFractalSequence(64, FractalOptions(), &rng));
  EXPECT_GT(db.total_mbrs(), 0u);
}

}  // namespace
}  // namespace mdseq
