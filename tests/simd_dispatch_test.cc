// Dispatch sanity for the SIMD kernel layer (src/util/simd.h): the active
// kernel level must match what the host CPU actually supports, forcing
// scalar must work through both the test hook and the MDSEQ_FORCE_SCALAR
// environment variable, and the dispatched kernels must keep computing
// correct answers at whichever level ends up selected.
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/simd.h"

namespace mdseq {
namespace {

// What ActiveLevel() must report when no runtime override is in effect:
// scalar when the build or environment forces it, otherwise the best level
// the host CPU supports.
void ExpectHostBestLevel() {
  if (simd::ForceScalarConfigured()) {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  } else if (simd::HostSupportsAvx2()) {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
  } else if (simd::HostSupportsNeon()) {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kNeon);
  } else {
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
}

// Runs the three dispatched kernels on a small random workload and checks
// them against their scalar references. Used to prove that whatever level
// is currently active still computes correct answers.
void ExpectKernelsCorrect(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 11;   // deliberately not a multiple of any lane width
  const size_t dim = 3;  // odd: every vector loop has a tail
  std::vector<double> qlo(dim), qhi(dim);
  std::vector<double> lo(dim * n), hi(dim * n);
  for (size_t k = 0; k < dim; ++k) {
    qlo[k] = rng.Uniform();
    qhi[k] = qlo[k] + rng.Uniform();
    for (size_t i = 0; i < n; ++i) {
      lo[k * n + i] = rng.Uniform();
      hi[k * n + i] = lo[k * n + i] + rng.Uniform();
    }
  }
  std::vector<double> got(n), want(n);
  simd::MinDist2Batch(qlo.data(), qhi.data(), lo.data(), hi.data(), n, dim,
                      got.data());
  simd::MinDist2BatchScalar(qlo.data(), qhi.data(), lo.data(), hi.data(), n,
                            dim, want.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "mindist2 column " << i;
  }

  simd::SquaredDistBatch(qlo.data(), lo.data(), n, dim, got.data());
  simd::SquaredDistBatchScalar(qlo.data(), lo.data(), n, dim, want.data());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "sqdist column " << i;
  }

  std::vector<double> a(n * dim), b(n * dim);
  for (double& v : a) v = rng.Uniform();
  for (double& v : b) v = rng.Uniform();
  const double inf = std::numeric_limits<double>::infinity();
  bool abandoned = true;
  const double sum =
      simd::PointSumBounded(a.data(), b.data(), n, dim, inf, &abandoned);
  EXPECT_FALSE(abandoned);
  const double ref =
      simd::PointSumBoundedScalar(a.data(), b.data(), n, dim, inf, nullptr);
  EXPECT_NEAR(sum, ref, 1e-9);
}

// Each test restores the process to "follow the environment" so the suite
// leaves no override behind regardless of execution order.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* env = std::getenv("MDSEQ_FORCE_SCALAR");
    had_env_ = env != nullptr;
    if (had_env_) env_value_ = env;
  }
  void TearDown() override {
    if (had_env_) {
      setenv("MDSEQ_FORCE_SCALAR", env_value_.c_str(), 1);
    } else {
      unsetenv("MDSEQ_FORCE_SCALAR");
    }
    simd::ReinitFromEnvForTesting();
  }

 private:
  bool had_env_ = false;
  std::string env_value_;
};

TEST_F(SimdDispatchTest, ActiveLevelMatchesHostCpuFeatures) {
  simd::ReinitFromEnvForTesting();
  ExpectHostBestLevel();
  // The two architectures are mutually exclusive.
  EXPECT_FALSE(simd::HostSupportsAvx2() && simd::HostSupportsNeon());
  ExpectKernelsCorrect(9001);
}

TEST_F(SimdDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::LevelName(simd::Level::kNeon), "neon");
}

TEST_F(SimdDispatchTest, TestHookForcesScalarAndRestores) {
  simd::SetForceScalarForTesting(true);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_TRUE(simd::ForceScalarConfigured());
  ExpectKernelsCorrect(9002);

  simd::SetForceScalarForTesting(false);
  // Back to the host's best level — unless the build itself pinned scalar
  // (-DMDSEQ_FORCE_SCALAR=ON), which no runtime hook may override.
  ExpectHostBestLevel();
  ExpectKernelsCorrect(9003);
}

TEST_F(SimdDispatchTest, EnvironmentVariableForcesScalar) {
  setenv("MDSEQ_FORCE_SCALAR", "1", 1);
  simd::ReinitFromEnvForTesting();
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_TRUE(simd::ForceScalarConfigured());
  ExpectKernelsCorrect(9004);

  // "0" and unset both mean "do not force".
  setenv("MDSEQ_FORCE_SCALAR", "0", 1);
  simd::ReinitFromEnvForTesting();
  ExpectHostBestLevel();

  unsetenv("MDSEQ_FORCE_SCALAR");
  simd::ReinitFromEnvForTesting();
  ExpectHostBestLevel();
}

}  // namespace
}  // namespace mdseq
