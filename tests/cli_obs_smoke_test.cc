// End-to-end smoke test of the CLI observability surface: `mdseq_cli
// explain` (report, --json, --trace-out) and `mdseq_cli serve-bench`
// (--metrics-out / --metrics-json / --trace-out) must all run and produce
// parseable output — JSON payloads are validated in-test with the obs JSON
// checker, Prometheus text is checked for exposition-format markers.
//
// The binary path is injected at configure time via MDSEQ_CLI_PATH.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "mdseq_cli_obs_" + name;
}

int RunCli(const std::string& args) {
  const std::string command =
      std::string(MDSEQ_CLI_PATH) + " " + args + " > " + TempPath("stdout") +
      " 2>" + TempPath("stderr");
  return std::system(command.c_str());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string Stdout() { return ReadFile(TempPath("stdout")); }

class CliObsSmokeTest : public testing::Test {
 protected:
  // One tiny corpus + query CSV shared by every test in the suite.
  static void SetUpTestSuite() {
    ASSERT_EQ(RunCli("gen --kind=synthetic --count=40 --min_len=48 "
                  "--max_len=96 --out=" +
                  TempPath("corpus.mdsq")),
              0)
        << ReadFile(TempPath("stderr"));
    ASSERT_EQ(RunCli("export --corpus=" + TempPath("corpus.mdsq") +
                  " --id=3 --out=" + TempPath("query.csv")),
              0);
  }
};

TEST_F(CliObsSmokeTest, ExplainPrintsPhaseReport) {
  ASSERT_EQ(RunCli("explain --corpus=" + TempPath("corpus.mdsq") +
                " --query=" + TempPath("query.csv") + " --eps=0.2"),
            0)
      << ReadFile(TempPath("stderr"));
  const std::string report = Stdout();
  EXPECT_NE(report.find("EXPLAIN similarity search"), std::string::npos);
  EXPECT_NE(report.find("phase 1: partition"), std::string::npos);
  EXPECT_NE(report.find("phase 2: first pruning"), std::string::npos);
  EXPECT_NE(report.find("phase 3: second pruning"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST_F(CliObsSmokeTest, ExplainJsonAndTraceAreValidJson) {
  const std::string trace_path = TempPath("explain_trace.json");
  ASSERT_EQ(RunCli("explain --corpus=" + TempPath("corpus.mdsq") +
                " --query=" + TempPath("query.csv") +
                " --eps=0.2 --json --trace-out=" + trace_path),
            0)
      << ReadFile(TempPath("stderr"));
  // stdout is the JSON report followed by the trace confirmation line;
  // the report ends at the first closing brace at column 0.
  const std::string out = Stdout();
  const size_t end = out.find("\n}");
  ASSERT_NE(end, std::string::npos) << out;
  const std::string report = out.substr(0, end + 2);
  std::string error;
  EXPECT_TRUE(mdseq::obs::JsonValidate(report, &error)) << error << report;
  EXPECT_NE(report.find("\"phase2_candidates\""), std::string::npos);

  const std::string trace = ReadFile(trace_path);
  EXPECT_TRUE(mdseq::obs::JsonValidate(trace, &error)) << error;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"query\""), std::string::npos);
}

TEST_F(CliObsSmokeTest, ServeBenchWritesMetricsAndTraces) {
  const std::string prom_path = TempPath("metrics.prom");
  const std::string json_path = TempPath("metrics.json");
  const std::string trace_path = TempPath("bench_trace.json");
  ASSERT_EQ(RunCli("serve-bench --corpus=" + TempPath("corpus.mdsq") +
                " --clients=2 --queries=8 --threads=2 --eps=0.2" +
                " --metrics-out=" + prom_path +
                " --metrics-json=" + json_path +
                " --trace-out=" + trace_path),
            0)
      << ReadFile(TempPath("stderr"));

  const std::string prom = ReadFile(prom_path);
  EXPECT_NE(prom.find("# TYPE mdseq_queries_served_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE mdseq_query_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("mdseq_queries_served_total 16"), std::string::npos);

  std::string error;
  const std::string json = ReadFile(json_path);
  EXPECT_TRUE(mdseq::obs::JsonValidate(json, &error)) << error;
  EXPECT_NE(json.find("\"mdseq_queries_served_total\""), std::string::npos);

  const std::string trace = ReadFile(trace_path);
  EXPECT_TRUE(mdseq::obs::JsonValidate(trace, &error)) << error;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
