#include "geom/sequence.h"

#include <gtest/gtest.h>

#include "geom/point.h"

namespace mdseq {
namespace {

TEST(SequenceTest, EmptySequence) {
  Sequence s(3);
  EXPECT_EQ(s.dim(), 3u);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(SequenceTest, AppendAndAccess) {
  Sequence s(2);
  s.Append(Point{0.1, 0.2});
  s.Append(Point{0.3, 0.4});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0][0], 0.1);
  EXPECT_DOUBLE_EQ(s[0][1], 0.2);
  EXPECT_DOUBLE_EQ(s[1][0], 0.3);
  EXPECT_DOUBLE_EQ(s[1][1], 0.4);
}

TEST(SequenceTest, InitializerListConstruction) {
  const Sequence s(2, {Point{0.0, 0.0}, Point{1.0, 1.0}, Point{2.0, 2.0}});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[2][1], 2.0);
}

TEST(SequenceTest, FromScalarsBuildsOneDimensional) {
  const Sequence s = Sequence::FromScalars({1.0, 2.0, 3.0});
  EXPECT_EQ(s.dim(), 1u);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1][0], 2.0);
}

TEST(SequenceTest, SliceViewsTheRightPoints) {
  const Sequence s(1, {Point{0.0}, Point{1.0}, Point{2.0}, Point{3.0}});
  const SequenceView v = s.Slice(1, 3);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0][0], 1.0);
  EXPECT_DOUBLE_EQ(v[1][0], 2.0);
}

TEST(SequenceTest, SliceOfSliceComposes) {
  const Sequence s(1, {Point{0.0}, Point{1.0}, Point{2.0}, Point{3.0},
                       Point{4.0}});
  const SequenceView v = s.Slice(1, 5).Slice(1, 3);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0][0], 2.0);
  EXPECT_DOUBLE_EQ(v[1][0], 3.0);
}

TEST(SequenceTest, EmptySlice) {
  const Sequence s(1, {Point{0.0}, Point{1.0}});
  EXPECT_TRUE(s.Slice(1, 1).empty());
}

TEST(SequenceTest, ViewCoversWholeSequence) {
  const Sequence s(2, {Point{0.0, 0.0}, Point{1.0, 1.0}});
  const SequenceView v = s.View();
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.dim(), s.dim());
}

TEST(SequenceTest, BoundingBoxIsTight) {
  const Sequence s(2, {Point{0.2, 0.9}, Point{0.7, 0.1}, Point{0.5, 0.5}});
  const Mbr box = s.BoundingBox();
  EXPECT_EQ(box.low(), (Point{0.2, 0.1}));
  EXPECT_EQ(box.high(), (Point{0.7, 0.9}));
}

TEST(SequenceTest, ExtendAppendsAllPoints) {
  Sequence a(1, {Point{0.0}, Point{1.0}});
  const Sequence b(1, {Point{2.0}, Point{3.0}});
  a.Extend(b.View());
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[3][0], 3.0);
}

TEST(SequenceTest, MaterializeCopiesView) {
  const Sequence s(2, {Point{0.0, 1.0}, Point{2.0, 3.0}, Point{4.0, 5.0}});
  const Sequence copy = s.Slice(1, 3).Materialize();
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_DOUBLE_EQ(copy[0][0], 2.0);
  EXPECT_DOUBLE_EQ(copy[1][1], 5.0);
}

TEST(SequenceTest, ClearKeepsDimension) {
  Sequence s(3);
  s.Append(Point{1.0, 2.0, 3.0});
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.dim(), 3u);
}

TEST(PointTest, SquaredAndEuclideanDistance) {
  const Point a{0.0, 0.0, 0.0};
  const Point b{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 9.0);
  EXPECT_DOUBLE_EQ(PointDistance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(PointDistance(a, a), 0.0);
}

}  // namespace
}  // namespace mdseq
