// Live ingestion subsystem: differential proofs that online partitioning,
// snapshot search, and checkpointing agree exactly with the offline
// (`PartitionSequence` / `DiskDatabase::Save`) pipeline on the same data,
// plus the engine-level ingest admission path.

#include "ingest/live_database.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partitioning.h"
#include "engine/introspection.h"
#include "engine/query_engine.h"
#include "gen/fractal.h"
#include "storage/disk_database.h"
#include "util/random.h"

namespace mdseq {
namespace {

void ExpectPartitionsEqual(const Partition& got, const Partition& want,
                           const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].begin, want[i].begin) << context << " piece " << i;
    EXPECT_EQ(got[i].end, want[i].end) << context << " piece " << i;
    EXPECT_EQ(got[i].mbr.low(), want[i].mbr.low())
        << context << " piece " << i;
    EXPECT_EQ(got[i].mbr.high(), want[i].mbr.high())
        << context << " piece " << i;
  }
}

void ExpectResultsEqual(const SearchResult& live, const SearchResult& disk,
                        const std::string& context) {
  EXPECT_EQ(live.candidates, disk.candidates) << context;
  ASSERT_EQ(live.matches.size(), disk.matches.size()) << context;
  for (size_t i = 0; i < live.matches.size(); ++i) {
    EXPECT_EQ(live.matches[i].sequence_id, disk.matches[i].sequence_id)
        << context << " match " << i;
    EXPECT_DOUBLE_EQ(live.matches[i].min_dnorm, disk.matches[i].min_dnorm)
        << context << " match " << i;
    EXPECT_DOUBLE_EQ(live.matches[i].exact_distance,
                     disk.matches[i].exact_distance)
        << context << " match " << i;
    ASSERT_EQ(live.matches[i].solution_interval.size(),
              disk.matches[i].solution_interval.size())
        << context << " match " << i;
    for (size_t k = 0; k < live.matches[i].solution_interval.size(); ++k) {
      EXPECT_EQ(live.matches[i].solution_interval[k].begin,
                disk.matches[i].solution_interval[k].begin)
          << context << " match " << i << " interval " << k;
      EXPECT_EQ(live.matches[i].solution_interval[k].end,
                disk.matches[i].solution_interval[k].end)
          << context << " match " << i << " interval " << k;
    }
  }
}

class LiveDatabaseTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p :
         {live_, live_ + ".wal", live_ + ".wal.new", disk_}) {
      std::remove(p.c_str());
    }
  }

  std::vector<Sequence> MakeCorpus(size_t count, uint64_t seed,
                                   size_t min_len = 30,
                                   size_t max_len = 120) {
    Rng rng(seed);
    std::vector<Sequence> corpus;
    for (size_t i = 0; i < count; ++i) {
      corpus.push_back(GenerateFractalSequence(
          static_cast<size_t>(
              rng.UniformInt(static_cast<int64_t>(min_len),
                             static_cast<int64_t>(max_len))),
          FractalOptions(), &rng));
    }
    return corpus;
  }

  // Appends `seq` to `db` under `id` in random chunks; optionally seals.
  void AppendChunked(LiveDatabase* db, uint64_t id, const Sequence& seq,
                     Rng* rng, bool seal) {
    size_t offset = 0;
    while (offset < seq.size()) {
      const size_t chunk = std::min<size_t>(
          static_cast<size_t>(rng->UniformInt(1, 20)), seq.size() - offset);
      ASSERT_TRUE(db->AppendPoints(id, seq.View().Slice(offset,
                                                        offset + chunk)));
      offset += chunk;
    }
    if (seal) ASSERT_TRUE(db->SealSequence(id));
  }

  std::string live_ = testing::TempDir() + "/ingest_test_live.db";
  std::string disk_ = testing::TempDir() + "/ingest_test_disk.db";
};

TEST_F(LiveDatabaseTest, CreatesAndReopensEmpty) {
  ASSERT_TRUE(LiveDatabase::Create(live_, 3));
  LiveDatabase db(live_);
  ASSERT_TRUE(db.valid());
  EXPECT_EQ(db.dim(), 3u);
  EXPECT_EQ(db.num_sequences(), 0u);
  const SearchResult r = db.Search(MakeCorpus(1, 5)[0].View(), 1.0);
  EXPECT_TRUE(r.candidates.empty());
  EXPECT_TRUE(r.matches.empty());
}

// The tentpole differential: any interleaving of AppendPoints across
// concurrently open sequences, with commits sprinkled anywhere, yields
// partitions byte-identical to the offline PARTITIONING_SEQUENCE run on
// each final sequence. Sealed prefixes are never re-partitioned, so this
// holds mid-stream too: the committed view of an open sequence equals the
// offline partition of exactly the committed prefix.
TEST_F(LiveDatabaseTest, OnlinePartitionsMatchOfflineForAnyInterleaving) {
  Rng rng(1234);
  const std::vector<Sequence> corpus = MakeCorpus(6, 17);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase db(live_);
  ASSERT_TRUE(db.valid());

  // Open all sequences at once and feed them in random round-robin order.
  std::vector<uint64_t> ids;
  std::vector<size_t> sent(corpus.size(), 0);
  for (size_t i = 0; i < corpus.size(); ++i) ids.push_back(db.BeginSequence());
  size_t open = corpus.size();
  while (open > 0) {
    const size_t s = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corpus.size() - 1)));
    if (sent[s] >= corpus[s].size()) continue;
    const size_t chunk = std::min<size_t>(
        static_cast<size_t>(rng.UniformInt(1, 15)),
        corpus[s].size() - sent[s]);
    ASSERT_TRUE(db.AppendPoints(
        ids[s], corpus[s].View().Slice(sent[s], sent[s] + chunk)));
    sent[s] += chunk;
    if (sent[s] == corpus[s].size()) {
      ASSERT_TRUE(db.SealSequence(ids[s]));
      --open;
    }
    if (rng.Uniform() < 0.25) {
      ASSERT_TRUE(db.Commit());
      // Mid-stream check on a random committed prefix.
      const size_t probe = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(corpus.size() - 1)));
      if (sent[probe] > 0) {
        const auto partition = db.PartitionOf(ids[probe]);
        ASSERT_TRUE(partition.has_value());
        ExpectPartitionsEqual(
            *partition,
            PartitionSequence(corpus[probe].View().Prefix(sent[probe]),
                              PartitioningOptions()),
            "mid-stream seq " + std::to_string(probe));
      }
    }
  }
  ASSERT_TRUE(db.Commit());
  for (size_t s = 0; s < corpus.size(); ++s) {
    const auto partition = db.PartitionOf(ids[s]);
    ASSERT_TRUE(partition.has_value());
    ExpectPartitionsEqual(
        *partition,
        PartitionSequence(corpus[s].View(), PartitioningOptions()),
        "final seq " + std::to_string(s));
  }
}

// Search over the live database — base segments, indexed pending pieces,
// AND unindexed partial tails — must agree exactly with a DiskDatabase
// freshly saved from the same corpus.
TEST_F(LiveDatabaseTest, SearchVerifiedMatchesFreshDiskDatabase) {
  Rng rng(555);
  const std::vector<Sequence> corpus = MakeCorpus(24, 31);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  for (size_t s = 0; s < corpus.size(); ++s) {
    const uint64_t id = live.BeginSequence();
    // Leave the last few sequences unsealed: their trailing partial piece
    // exercises the overlay (non-indexed) search path.
    AppendChunked(&live, id, corpus[s], &rng, /*seal=*/s < 20);
    if (s % 5 == 4) ASSERT_TRUE(live.Commit());
    if (s == 11) ASSERT_TRUE(live.Checkpoint());
  }
  ASSERT_TRUE(live.Commit());

  SequenceDatabase memory(corpus[0].dim());
  for (const Sequence& s : corpus) memory.Add(s);
  ASSERT_TRUE(DiskDatabase::Save(memory, disk_));
  DiskDatabase disk(disk_, /*pool_pages=*/128);
  ASSERT_TRUE(disk.valid());

  for (int q = 0; q < 12; ++q) {
    const Sequence probe = GenerateFractalSequence(
        static_cast<size_t>(rng.UniformInt(20, 60)), FractalOptions(), &rng);
    for (double epsilon : {0.4, 1.0, 2.5}) {
      ExpectResultsEqual(live.Search(probe.View(), epsilon),
                         disk.Search(probe.View(), epsilon),
                         "search q" + std::to_string(q));
      ExpectResultsEqual(live.SearchVerified(probe.View(), epsilon),
                         disk.SearchVerified(probe.View(), epsilon),
                         "verified q" + std::to_string(q));
    }
  }
}

// After Checkpoint folds everything, the file IS a DiskDatabase.
TEST_F(LiveDatabaseTest, CheckpointedFileOpensAsDiskDatabase) {
  Rng rng(808);
  const std::vector<Sequence> corpus = MakeCorpus(10, 47);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  {
    LiveDatabase live(live_);
    ASSERT_TRUE(live.valid());
    for (const Sequence& s : corpus) {
      const uint64_t id = live.BeginSequence();
      AppendChunked(&live, id, s, &rng, /*seal=*/true);
    }
    ASSERT_TRUE(live.Checkpoint());
    const IngestStatus status = live.Status();
    EXPECT_EQ(status.base_sequences, corpus.size());
    EXPECT_EQ(status.pending_sequences, 0u);
  }
  DiskDatabase disk(live_, 128);
  ASSERT_TRUE(disk.valid());
  ASSERT_EQ(disk.num_sequences(), corpus.size());
  for (size_t id = 0; id < corpus.size(); ++id) {
    const auto loaded = disk.ReadSequence(id);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->data(), corpus[id].data());
  }
  const Sequence probe = GenerateFractalSequence(40, FractalOptions(), &rng);
  SequenceDatabase memory(corpus[0].dim());
  for (const Sequence& s : corpus) memory.Add(s);
  ASSERT_TRUE(DiskDatabase::Save(memory, disk_));
  DiskDatabase reference(disk_, 128);
  ASSERT_TRUE(reference.valid());
  ExpectResultsEqual(disk.SearchVerified(probe.View(), 1.5),
                     reference.SearchVerified(probe.View(), 1.5),
                     "checkpointed file");
}

// A checkpoint must fold only the maximal *sealed prefix* — a still-open
// sequence with a lower id pins later sealed ones in the pending tail so
// ids stay dense and stable.
TEST_F(LiveDatabaseTest, CheckpointFoldsOnlySealedPrefix) {
  Rng rng(272);
  const std::vector<Sequence> corpus = MakeCorpus(4, 53);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  const uint64_t a = live.BeginSequence();  // sealed
  const uint64_t b = live.BeginSequence();  // stays open
  const uint64_t c = live.BeginSequence();  // sealed, behind b
  AppendChunked(&live, a, corpus[0], &rng, /*seal=*/true);
  AppendChunked(&live, b, corpus[1], &rng, /*seal=*/false);
  AppendChunked(&live, c, corpus[2], &rng, /*seal=*/true);
  ASSERT_TRUE(live.Checkpoint());
  IngestStatus status = live.Status();
  EXPECT_EQ(status.base_sequences, 1u);  // only `a` precedes the open seq
  EXPECT_EQ(status.pending_sequences, 2u);
  EXPECT_EQ(status.total_sequences, 3u);
  // Sealing b unblocks the rest on the next checkpoint.
  ASSERT_TRUE(live.SealSequence(b));
  ASSERT_TRUE(live.Checkpoint());
  status = live.Status();
  EXPECT_EQ(status.base_sequences, 3u);
  EXPECT_EQ(status.pending_sequences, 0u);
  for (uint64_t id : {a, b, c}) {
    const auto loaded = live.ReadSequence(id);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->data(), corpus[id].data());
  }
}

// Clean close with a committed pending tail, then reopen: the WAL replay
// must reconstruct the pending state exactly (data, partitions, and the
// already-indexed piece count — no duplicate index inserts).
TEST_F(LiveDatabaseTest, ReopenReplaysCommittedPendingTail) {
  Rng rng(31337);
  const std::vector<Sequence> corpus = MakeCorpus(5, 61);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  {
    LiveDatabase live(live_);
    ASSERT_TRUE(live.valid());
    for (size_t s = 0; s < corpus.size(); ++s) {
      const uint64_t id = live.BeginSequence();
      AppendChunked(&live, id, corpus[s], &rng, /*seal=*/s < 3);
    }
    ASSERT_TRUE(live.Commit());
  }
  LiveDatabase reopened(live_);
  ASSERT_TRUE(reopened.valid());
  EXPECT_GT(reopened.Status().recovered_records, 0u);
  ASSERT_EQ(reopened.num_sequences(), corpus.size());
  for (size_t s = 0; s < corpus.size(); ++s) {
    const auto loaded = reopened.ReadSequence(s);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->data(), corpus[s].data());
    const auto partition = reopened.PartitionOf(s);
    ASSERT_TRUE(partition.has_value());
    ExpectPartitionsEqual(
        *partition, PartitionSequence(corpus[s].View(), PartitioningOptions()),
        "reopened seq " + std::to_string(s));
  }
  // And the index still agrees with a fresh offline build.
  SequenceDatabase memory(corpus[0].dim());
  for (const Sequence& s : corpus) memory.Add(s);
  ASSERT_TRUE(DiskDatabase::Save(memory, disk_));
  DiskDatabase reference(disk_, 128);
  ASSERT_TRUE(reference.valid());
  const Sequence probe = GenerateFractalSequence(35, FractalOptions(), &rng);
  ExpectResultsEqual(reopened.SearchVerified(probe.View(), 1.2),
                     reference.SearchVerified(probe.View(), 1.2), "reopened");
}

// Snapshot isolation: a snapshot taken before an ingest burst must not see
// it, even while later commits and checkpoints land.
TEST_F(LiveDatabaseTest, SnapshotsAreIsolatedFromLaterCommits) {
  Rng rng(404);
  const std::vector<Sequence> corpus = MakeCorpus(8, 71);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  for (size_t s = 0; s < 4; ++s) {
    const uint64_t id = live.BeginSequence();
    AppendChunked(&live, id, corpus[s], &rng, /*seal=*/true);
  }
  ASSERT_TRUE(live.Commit());
  const size_t before = live.num_sequences();
  EXPECT_EQ(before, 4u);
  // Readers observing sequence counts across a commit see either the old
  // or the new snapshot, never a partial one; after the commit, exactly 8.
  for (size_t s = 4; s < 8; ++s) {
    const uint64_t id = live.BeginSequence();
    AppendChunked(&live, id, corpus[s], &rng, /*seal=*/true);
    EXPECT_EQ(live.num_sequences(), 4u) << "uncommitted ingest visible";
  }
  ASSERT_TRUE(live.Commit());
  EXPECT_EQ(live.num_sequences(), 8u);
  ASSERT_TRUE(live.Checkpoint());
  EXPECT_EQ(live.num_sequences(), 8u);
}

TEST_F(LiveDatabaseTest, IngestSessionCommitsOnDestruction) {
  Rng rng(606);
  const Sequence seq = MakeCorpus(1, 81)[0];
  ASSERT_TRUE(LiveDatabase::Create(live_, seq.dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  {
    IngestSession session(&live);
    const uint64_t id = session.BeginSequence();
    ASSERT_TRUE(session.AppendPoints(id, seq.View()));
    ASSERT_TRUE(session.SealSequence(id));
    EXPECT_EQ(live.num_sequences(), 0u);  // nothing published yet
  }
  EXPECT_EQ(live.num_sequences(), 1u);  // destructor group-committed
  EXPECT_EQ(live.Status().wal_commits, 1u);
}

TEST_F(LiveDatabaseTest, RejectsMismatchedDimensionAndUnknownIds) {
  ASSERT_TRUE(LiveDatabase::Create(live_, 3));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  Sequence wrong(2);
  wrong.Append(Point{1.0, 2.0});
  const uint64_t id = live.BeginSequence();
  EXPECT_FALSE(live.AppendPoints(id, wrong.View()));
  EXPECT_FALSE(live.AppendPoints(id + 7, wrong.View()));
  EXPECT_FALSE(live.SealSequence(id + 7));
  ASSERT_TRUE(live.SealSequence(id));
  EXPECT_FALSE(live.SealSequence(id));  // double seal
}

// --- Engine integration --------------------------------------------------

class EngineIngestTest : public LiveDatabaseTest {};

TEST_F(EngineIngestTest, SubmitIngestAppliesBatchAndServesQueries) {
  Rng rng(909);
  const std::vector<Sequence> corpus = MakeCorpus(6, 97);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  EngineOptions options;
  options.num_threads = 2;
  QueryEngine engine(&live, options);

  IngestBatch batch;
  for (const Sequence& s : corpus) {
    IngestOp op;
    op.points = s;
    op.seal = true;
    batch.ops.push_back(std::move(op));
  }
  batch.checkpoint = true;
  const IngestOutcome outcome = engine.SubmitIngest(std::move(batch)).get();
  EXPECT_FALSE(outcome.rejected);
  EXPECT_TRUE(outcome.ok);
  ASSERT_EQ(outcome.sequence_ids.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(outcome.sequence_ids[i], i);
  }
  EXPECT_EQ(live.num_sequences(), corpus.size());
  EXPECT_EQ(live.Status().checkpoints, 1u);

  // Queries through the engine see the ingested data.
  QueryOptions qopts;
  qopts.epsilon = 2.0;
  qopts.verified = true;
  const QueryOutcome q =
      engine.Submit(corpus[0], qopts).get();
  EXPECT_EQ(q.status, QueryStatus::kOk);
  const SearchResult direct = live.SearchVerified(corpus[0].View(), 2.0);
  EXPECT_EQ(q.result.matches.size(), direct.matches.size());

  // Appending to an existing (open) id through the engine.
  IngestBatch more;
  IngestOp open_op;
  open_op.points = corpus[0];
  more.ops.push_back(std::move(open_op));
  const IngestOutcome out2 = engine.SubmitIngest(std::move(more)).get();
  EXPECT_TRUE(out2.ok);
  ASSERT_EQ(out2.sequence_ids.size(), 1u);
  IngestBatch append_tail;
  IngestOp tail;
  tail.sequence_id = out2.sequence_ids[0];
  tail.points = corpus[1];
  tail.seal = true;
  append_tail.ops.push_back(std::move(tail));
  EXPECT_TRUE(engine.SubmitIngest(std::move(append_tail)).get().ok);
  const auto grown = live.ReadSequence(out2.sequence_ids[0]);
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(grown->size(), corpus[0].size() + corpus[1].size());
}

TEST_F(EngineIngestTest, AdmissionKnobRejectsWithoutApplying) {
  const std::vector<Sequence> corpus = MakeCorpus(1, 103);
  ASSERT_TRUE(LiveDatabase::Create(live_, corpus[0].dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  EngineOptions options;
  options.num_threads = 1;
  options.max_pending_ingest = 0;  // admit nothing
  QueryEngine engine(&live, options);
  IngestBatch batch;
  IngestOp op;
  op.points = corpus[0];
  op.seal = true;
  batch.ops.push_back(std::move(op));
  const IngestOutcome outcome = engine.SubmitIngest(std::move(batch)).get();
  EXPECT_TRUE(outcome.rejected);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(live.num_sequences(), 0u);
  EXPECT_EQ(live.Status().wal_records, 0u);
}

TEST_F(EngineIngestTest, NonLiveEngineRejectsIngest) {
  SequenceDatabase memory(2);
  QueryEngine engine(&memory, EngineOptions{});
  IngestBatch batch;
  const IngestOutcome outcome = engine.SubmitIngest(std::move(batch)).get();
  EXPECT_TRUE(outcome.rejected);
}

TEST_F(EngineIngestTest, IngestStatusJsonCarriesTheRunbookFields) {
  Rng rng(111);
  const Sequence seq = MakeCorpus(1, 113)[0];
  ASSERT_TRUE(LiveDatabase::Create(live_, seq.dim()));
  LiveDatabase live(live_);
  ASSERT_TRUE(live.valid());
  const uint64_t id = live.BeginSequence();
  ASSERT_TRUE(live.AppendPoints(id, seq.View()));
  ASSERT_TRUE(live.SealSequence(id));
  ASSERT_TRUE(live.Commit());
  ASSERT_TRUE(live.Checkpoint());
  const std::string json = IngestStatusJson(live.Status());
  for (const char* key :
       {"\"dim\"", "\"base_sequences\"", "\"pending_sequences\"",
        "\"points_total\"", "\"wal\"", "\"fsyncs\"", "\"checkpoints\"",
        "\"epoch\"", "\"retired_pages\"", "\"free_pages\"",
        "\"recovered_records\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace mdseq
