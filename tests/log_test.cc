// Tests for the structured logger (src/obs/log): JSON-valid output lines,
// the level gate, name parsing, string escaping, the atomic sink swap
// under concurrent writers, and the engine integration — admission
// rejections and cancellations emit `query_rejected` / `query_cancelled`
// events through `Logger::Global()`.
//
// The binary carries the `log` and `tsan` ctest labels; the concurrent
// sink-swap test is the interesting one under -DMDSEQ_SANITIZE=thread.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/query_engine.h"
#include "eval/experiment.h"
#include "obs/json.h"
#include "obs/log.h"

namespace mdseq {
namespace {

TEST(LogTest, EmitsOneValidJsonLinePerRecord) {
  obs::Logger logger(obs::LogLevel::kDebug);
  auto sink = std::make_shared<obs::CaptureLogSink>();
  logger.SetSink(sink);

  logger.Info("query_served")
      .U64("query_id", 7)
      .I64("delta", -3)
      .F64("epsilon", 0.25)
      .Bool("verified", true)
      .Str("status", "ok");
  logger.Warn("slow_query").U64("latency_us", 1234);

  const std::vector<std::string> lines = sink->lines();
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_TRUE(obs::JsonValidate(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"event\": \"query_served\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"level\": \"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"query_id\": 7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"delta\": -3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"verified\": true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts\": "), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\": \"warn\""), std::string::npos);
}

TEST(LogTest, LevelGateSuppressesBelowThreshold) {
  obs::Logger logger(obs::LogLevel::kWarn);
  auto sink = std::make_shared<obs::CaptureLogSink>();
  logger.SetSink(sink);

  EXPECT_FALSE(logger.Enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(logger.Enabled(obs::LogLevel::kError));
  EXPECT_FALSE(logger.Enabled(obs::LogLevel::kOff));

  logger.Debug("dropped").U64("a", 1);
  logger.Info("dropped_too");
  logger.Error("kept");
  EXPECT_EQ(sink->lines().size(), 1u);

  logger.SetLevel(obs::LogLevel::kOff);
  logger.Error("silenced");
  EXPECT_EQ(sink->lines().size(), 1u);

  logger.SetLevel(obs::LogLevel::kDebug);
  logger.Debug("now_kept");
  EXPECT_EQ(sink->lines().size(), 2u);
}

TEST(LogTest, ParseLogLevelRoundTrips) {
  for (obs::LogLevel level :
       {obs::LogLevel::kDebug, obs::LogLevel::kInfo, obs::LogLevel::kWarn,
        obs::LogLevel::kError}) {
    obs::LogLevel parsed = obs::LogLevel::kOff;
    ASSERT_TRUE(obs::ParseLogLevel(obs::LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  obs::LogLevel parsed = obs::LogLevel::kWarn;
  EXPECT_TRUE(obs::ParseLogLevel("off", &parsed));
  EXPECT_EQ(parsed, obs::LogLevel::kOff);
  parsed = obs::LogLevel::kWarn;
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &parsed));
  EXPECT_EQ(parsed, obs::LogLevel::kWarn);  // untouched on failure
  EXPECT_FALSE(obs::ParseLogLevel("", &parsed));
}

TEST(LogTest, StringFieldsAreEscaped) {
  obs::Logger logger(obs::LogLevel::kDebug);
  auto sink = std::make_shared<obs::CaptureLogSink>();
  logger.SetSink(sink);

  logger.Info("escape").Str("path", "a\"b\\c\nd\te");
  const std::vector<std::string> lines = sink->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(obs::JsonValidate(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("a\\\"b\\\\c\\nd\\te"), std::string::npos)
      << lines[0];
}

// Writers hammering the logger while another thread swaps the sink: every
// line must land whole on exactly one sink, and TSan must see no race on
// the shared_ptr handoff.
TEST(LogTest, ConcurrentWritersSurviveSinkSwap) {
  obs::Logger logger(obs::LogLevel::kDebug);
  auto first = std::make_shared<obs::CaptureLogSink>();
  auto second = std::make_shared<obs::CaptureLogSink>();
  logger.SetSink(first);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&logger, t] {
      for (int i = 0; i < kPerThread; ++i) {
        logger.Info("tick").U64("thread", static_cast<uint64_t>(t)).U64(
            "i", static_cast<uint64_t>(i));
      }
    });
  }
  std::thread swapper([&] {
    for (int i = 0; i < 50; ++i) {
      logger.SetSink(i % 2 == 0 ? second : first);
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) t.join();
  swapper.join();

  const std::vector<std::string> a = first->lines();
  const std::vector<std::string> b = second->lines();
  EXPECT_EQ(a.size() + b.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  for (const std::string& line : a) {
    EXPECT_TRUE(obs::JsonValidate(line)) << line;
  }
  for (const std::string& line : b) {
    EXPECT_TRUE(obs::JsonValidate(line)) << line;
  }
}

// ---------------------------------------------------------------------------
// Engine integration: rejections and cancellations reach Logger::Global().
// ---------------------------------------------------------------------------

TEST(LogTest, EngineEmitsAdmissionAndCancellationEvents) {
  obs::Logger& global = obs::Logger::Global();
  const obs::LogLevel saved_level = global.level();
  auto capture = std::make_shared<obs::CaptureLogSink>();
  global.SetSink(capture);
  global.SetLevel(obs::LogLevel::kInfo);

  {
    WorkloadConfig config;
    config.kind = DataKind::kSynthetic;
    config.num_sequences = 60;
    config.min_length = 56;
    config.max_length = 128;
    config.num_queries = 4;
    config.seed = 31;
    const Workload workload = BuildWorkload(config);

    EngineOptions options;
    options.num_threads = 1;
    options.queue_capacity = 1;
    options.policy = OverloadPolicy::kReject;
    options.start_suspended = true;
    QueryEngine engine(workload.database.get(), options);

    QueryOptions query_options;
    query_options.epsilon = 0.1;
    CancellationSource source;
    query_options.cancel = source.token();
    auto f1 = engine.Submit(workload.queries[0], query_options);
    auto f2 = engine.Submit(workload.queries[1], query_options);  // rejected
    EXPECT_EQ(f2.get().status, QueryStatus::kRejected);
    source.Cancel();
    engine.Start();
    EXPECT_EQ(f1.get().status, QueryStatus::kCancelled);
  }

  global.SetLevel(saved_level);
  global.SetSink(nullptr);  // back to stderr

  bool saw_rejected = false;
  bool saw_cancelled = false;
  for (const std::string& line : capture->lines()) {
    EXPECT_TRUE(obs::JsonValidate(line)) << line;
    if (line.find("\"event\": \"query_rejected\"") != std::string::npos) {
      saw_rejected = true;
      EXPECT_NE(line.find("\"query_id\": "), std::string::npos);
    }
    if (line.find("\"event\": \"query_cancelled\"") != std::string::npos) {
      saw_cancelled = true;
    }
  }
  EXPECT_TRUE(saw_rejected);
  EXPECT_TRUE(saw_cancelled);
}

}  // namespace
}  // namespace mdseq
