#include "baseline/shot_detection.h"

#include <gtest/gtest.h>

#include "baseline/keyframe.h"
#include "gen/video.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(ShotDetectionTest, SinglePointSequence) {
  Sequence s(3, {Point{0.5, 0.5, 0.5}});
  const auto shots = DetectShots(s.View());
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0], (std::pair<size_t, size_t>{0, 1}));
}

TEST(ShotDetectionTest, UniformSequenceIsOneShot) {
  Sequence s(3);
  for (int i = 0; i < 50; ++i) s.Append(Point{0.5, 0.5, 0.5});
  const auto shots = DetectShots(s.View());
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0], (std::pair<size_t, size_t>{0, 50}));
}

TEST(ShotDetectionTest, FindsASingleHardCut) {
  Sequence s(3);
  for (int i = 0; i < 20; ++i) s.Append(Point{0.2, 0.2, 0.2});
  for (int i = 0; i < 30; ++i) s.Append(Point{0.8, 0.8, 0.8});
  const auto shots = DetectShots(s.View());
  ASSERT_EQ(shots.size(), 2u);
  EXPECT_EQ(shots[0], (std::pair<size_t, size_t>{0, 20}));
  EXPECT_EQ(shots[1], (std::pair<size_t, size_t>{20, 50}));
}

TEST(ShotDetectionTest, ShotsAlwaysCoverTheSequence) {
  Rng rng(1);
  const Sequence s = GenerateVideoSequence(300, VideoOptions(), &rng);
  const auto shots = DetectShots(s.View());
  ASSERT_FALSE(shots.empty());
  EXPECT_EQ(shots.front().first, 0u);
  EXPECT_EQ(shots.back().second, s.size());
  for (size_t i = 1; i < shots.size(); ++i) {
    EXPECT_EQ(shots[i - 1].second, shots[i].first);
    EXPECT_LT(shots[i].first, shots[i].second);
  }
}

TEST(ShotDetectionTest, RecoversGeneratorCutsOnCutOnlyStreams) {
  Rng rng(2);
  VideoOptions options;
  options.dissolve_probability = 0.0;  // hard cuts only
  const VideoStream stream = GenerateVideoStream(400, options, &rng);
  const Sequence features = ExtractColorFeatures(stream);
  const auto detected = DetectShots(features.View());

  // Count ground-truth boundaries recovered within one frame.
  size_t recovered = 0;
  size_t truth_boundaries = 0;
  for (size_t i = 1; i < stream.shots.size(); ++i) {
    ++truth_boundaries;
    const size_t boundary = stream.shots[i].first;
    for (const auto& [begin, end] : detected) {
      if (begin + 1 >= boundary && begin <= boundary + 1) {
        ++recovered;
        break;
      }
    }
  }
  ASSERT_GT(truth_boundaries, 3u);
  // Most cuts are recovered (adjacent shots share the stream's palette, so
  // some cuts are genuinely small jumps and a perfect score is not
  // expected).
  EXPECT_GE(static_cast<double>(recovered) / truth_boundaries, 0.7);
}

TEST(ShotDetectionTest, MinShotLengthSuppressesRapidBoundaries) {
  Sequence s(3);
  // Alternating colors every 2 frames would produce a boundary at every
  // other step; min_shot_length forbids shots shorter than 10.
  for (int i = 0; i < 40; ++i) {
    const double v = (i / 2) % 2 == 0 ? 0.2 : 0.8;
    s.Append(Point{v, v, v});
  }
  ShotDetectionOptions options;
  options.min_shot_length = 10;
  const auto shots = DetectShots(s.View(), options);
  for (const auto& [begin, end] : shots) {
    EXPECT_GE(end - begin, 10u);
  }
}

TEST(KeyframeSourceTest, DetectedShotKeyframesLieInsideShots) {
  Rng rng(3);
  SequenceDatabase db(3);
  VideoOptions options;
  options.dissolve_probability = 0.0;
  std::vector<VideoStream> streams;
  for (int i = 0; i < 5; ++i) {
    streams.push_back(GenerateVideoStream(200, options, &rng));
    db.Add(ExtractColorFeatures(streams.back()));
  }
  KeyframeOptions keyframe_options;
  keyframe_options.source = KeyframeOptions::Source::kDetectedShots;
  KeyframeSearch search(&db, keyframe_options);
  for (size_t id = 0; id < db.num_sequences(); ++id) {
    const std::vector<size_t> keyframes = search.KeyframesOf(id);
    ASSERT_FALSE(keyframes.empty());
    for (size_t frame : keyframes) {
      EXPECT_LT(frame, db.sequence(id).size());
    }
    // Roughly one key frame per true shot.
    const size_t true_shots = streams[id].shots.size();
    EXPECT_GE(keyframes.size(), true_shots / 2);
    EXPECT_LE(keyframes.size(), true_shots * 2);
  }
}

TEST(KeyframeSourceTest, BothSourcesFindVerbatimClipSource) {
  Rng rng(4);
  SequenceDatabase db(3);
  std::vector<Sequence> corpus;
  for (int i = 0; i < 20; ++i) {
    corpus.push_back(GenerateVideoSequence(200, VideoOptions(), &rng));
    db.Add(corpus.back());
  }
  const Sequence query = corpus[9].Slice(40, 140).Materialize();
  for (auto source : {KeyframeOptions::Source::kPartitions,
                      KeyframeOptions::Source::kDetectedShots}) {
    KeyframeOptions options;
    options.source = source;
    KeyframeSearch search(&db, options);
    const std::vector<size_t> hits = search.Search(query.View(), 0.05);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), 9u) != hits.end());
  }
}

}  // namespace
}  // namespace mdseq
