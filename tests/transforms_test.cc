#include "ts/transforms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "gen/fractal.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(MovingAverageTest, SmoothsScalars) {
  const Sequence s = Sequence::FromScalars({0, 2, 4, 6, 8});
  const Sequence smoothed = MovingAverage(s.View(), 2);
  ASSERT_EQ(smoothed.size(), 4u);
  EXPECT_DOUBLE_EQ(smoothed[0][0], 1.0);
  EXPECT_DOUBLE_EQ(smoothed[1][0], 3.0);
  EXPECT_DOUBLE_EQ(smoothed[3][0], 7.0);
}

TEST(MovingAverageTest, WindowOfOneIsIdentity) {
  Rng rng(1);
  const Sequence s = GenerateFractalSequence(30, FractalOptions(), &rng);
  const Sequence out = MovingAverage(s.View(), 1);
  EXPECT_EQ(out.data(), s.data());
}

TEST(MovingAverageTest, FullWindowYieldsSingleMeanPoint) {
  const Sequence s(2, {Point{0.0, 1.0}, Point{1.0, 3.0}});
  const Sequence out = MovingAverage(s.View(), 2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0][0], 0.5);
  EXPECT_DOUBLE_EQ(out[0][1], 2.0);
}

TEST(MovingAverageTest, MatchesNaiveComputation) {
  Rng rng(2);
  const Sequence s = GenerateFractalSequence(64, FractalOptions(), &rng);
  for (size_t w : {2u, 5u, 16u}) {
    const Sequence fast = MovingAverage(s.View(), w);
    ASSERT_EQ(fast.size(), s.size() - w + 1);
    for (size_t i = 0; i < fast.size(); ++i) {
      for (size_t k = 0; k < s.dim(); ++k) {
        double sum = 0.0;
        for (size_t t = 0; t < w; ++t) sum += s[i + t][k];
        EXPECT_NEAR(fast[i][k], sum / w, 1e-12);
      }
    }
  }
}

TEST(ReverseTest, ReversesAndIsInvolutive) {
  Rng rng(3);
  const Sequence s = GenerateFractalSequence(17, FractalOptions(), &rng);
  const Sequence reversed = Reverse(s.View());
  ASSERT_EQ(reversed.size(), s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(Point(reversed[i].begin(), reversed[i].end()),
              Point(s[s.size() - 1 - i].begin(), s[s.size() - 1 - i].end()));
  }
  EXPECT_EQ(Reverse(reversed.View()).data(), s.data());
}

TEST(ReverseTest, PreservesPairwiseDistances) {
  // Reversal is one of Rafiei's safe transforms: distances between two
  // sequences both reversed are unchanged.
  Rng rng(4);
  const Sequence a = GenerateFractalSequence(20, FractalOptions(), &rng);
  const Sequence b = GenerateFractalSequence(20, FractalOptions(), &rng);
  EXPECT_DOUBLE_EQ(
      MeanDistance(a.View(), b.View()),
      MeanDistance(Reverse(a.View()).View(), Reverse(b.View()).View()));
}

TEST(ShiftTest, TranslatesAndPreservesDistances) {
  Rng rng(5);
  const Sequence a = GenerateFractalSequence(20, FractalOptions(), &rng);
  const Sequence b = GenerateFractalSequence(20, FractalOptions(), &rng);
  const Point offset{0.3, -0.1, 2.0};
  const Sequence sa = Shift(a.View(), offset);
  const Sequence sb = Shift(b.View(), offset);
  EXPECT_DOUBLE_EQ(sa[0][0], a[0][0] + 0.3);
  EXPECT_NEAR(MeanDistance(a.View(), b.View()),
              MeanDistance(sa.View(), sb.View()), 1e-12);
}

TEST(ScaleTest, ScalesDistancesLinearly) {
  Rng rng(6);
  const Sequence a = GenerateFractalSequence(20, FractalOptions(), &rng);
  const Sequence b = GenerateFractalSequence(20, FractalOptions(), &rng);
  const double factor = 2.5;
  EXPECT_NEAR(MeanDistance(Scale(a.View(), factor).View(),
                           Scale(b.View(), factor).View()),
              factor * MeanDistance(a.View(), b.View()), 1e-12);
}

TEST(ZNormalizeTest, ProducesZeroMeanUnitVariance) {
  Rng rng(7);
  const Sequence s = GenerateFractalSequence(100, FractalOptions(), &rng);
  const Sequence normalized = ZNormalize(s.View());
  for (size_t k = 0; k < s.dim(); ++k) {
    double mean = 0.0;
    for (size_t i = 0; i < normalized.size(); ++i) {
      mean += normalized[i][k];
    }
    mean /= normalized.size();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    double var = 0.0;
    for (size_t i = 0; i < normalized.size(); ++i) {
      var += normalized[i][k] * normalized[i][k];
    }
    var /= normalized.size();
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(ZNormalizeTest, ConstantDimensionStaysFinite) {
  Sequence s(2);
  for (int i = 0; i < 10; ++i) {
    s.Append(Point{0.7, 0.1 * i});
  }
  const Sequence normalized = ZNormalize(s.View());
  for (size_t i = 0; i < normalized.size(); ++i) {
    EXPECT_DOUBLE_EQ(normalized[i][0], 0.0);  // centered, not divided
    EXPECT_TRUE(std::isfinite(normalized[i][1]));
  }
}

TEST(ZNormalizeTest, InvariantToShiftAndScaleOfInput) {
  Rng rng(8);
  const Sequence s = GenerateFractalSequence(50, FractalOptions(), &rng);
  const Sequence transformed =
      Scale(Shift(s.View(), Point{1.0, 2.0, 3.0}).View(), 4.0);
  const Sequence na = ZNormalize(s.View());
  const Sequence nb = ZNormalize(transformed.View());
  for (size_t i = 0; i < na.size(); ++i) {
    for (size_t k = 0; k < na.dim(); ++k) {
      EXPECT_NEAR(na[i][k], nb[i][k], 1e-9);
    }
  }
}

}  // namespace
}  // namespace mdseq
