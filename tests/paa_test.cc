#include "ts/paa.h"

#include <gtest/gtest.h>

#include "gen/walk.h"
#include "ts/whole_matching.h"
#include "util/random.h"

namespace mdseq {
namespace {

TEST(PaaTest, AveragesFrames) {
  const Sequence s = Sequence::FromScalars({0, 2, 4, 6, 8, 10});
  const Point feature = PaaFeature(s.View(), 3);
  ASSERT_EQ(feature.size(), 3u);
  EXPECT_DOUBLE_EQ(feature[0], 1.0);
  EXPECT_DOUBLE_EQ(feature[1], 5.0);
  EXPECT_DOUBLE_EQ(feature[2], 9.0);
}

TEST(PaaTest, FullResolutionIsIdentity) {
  const Sequence s = Sequence::FromScalars({0.5, 0.25, 0.75});
  const Point feature = PaaFeature(s.View(), 3);
  EXPECT_DOUBLE_EQ(feature[0], 0.5);
  EXPECT_DOUBLE_EQ(feature[1], 0.25);
  EXPECT_DOUBLE_EQ(feature[2], 0.75);
}

TEST(PaaTest, SingleSegmentIsGlobalMean) {
  const Sequence s = Sequence::FromScalars({1, 2, 3, 4});
  const Point feature = PaaFeature(s.View(), 1);
  ASSERT_EQ(feature.size(), 1u);
  EXPECT_DOUBLE_EQ(feature[0], 2.5);
}

// The filtering guarantee: scaled PAA distance never exceeds the true
// distance, and equals it at full resolution.
TEST(PaaTest, ScaledDistanceLowerBoundsSeriesDistance) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Sequence a = GenerateRandomWalk(48, WalkOptions(), &rng);
    const Sequence b = GenerateRandomWalk(48, WalkOptions(), &rng);
    const double exact = WholeSeriesDistance(a.View(), b.View());
    for (size_t segments : {1u, 2u, 4u, 8u, 16u, 48u}) {
      EXPECT_LE(PaaDistance(a.View(), b.View(), segments), exact + 1e-9)
          << "segments=" << segments;
    }
    EXPECT_NEAR(PaaDistance(a.View(), b.View(), 48), exact, 1e-9);
  }
}

TEST(PaaTest, CoarserSegmentsGiveLooserBounds) {
  Rng rng(2);
  const Sequence a = GenerateRandomWalk(64, WalkOptions(), &rng);
  const Sequence b = GenerateRandomWalk(64, WalkOptions(), &rng);
  // Refining segments can only tighten (monotone for nested frames).
  EXPECT_LE(PaaDistance(a.View(), b.View(), 2),
            PaaDistance(a.View(), b.View(), 4) + 1e-12);
  EXPECT_LE(PaaDistance(a.View(), b.View(), 4),
            PaaDistance(a.View(), b.View(), 8) + 1e-12);
}

}  // namespace
}  // namespace mdseq
