#include "ts/frm.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/walk.h"
#include "util/random.h"

namespace mdseq {
namespace {

Sequence Walk(size_t length, Rng* rng) {
  WalkOptions options;
  options.step_stddev = 0.02;
  return GenerateRandomWalk(length, options, rng);
}

TEST(MinSubsequenceDistanceTest, ZeroForContainedSubsequence) {
  Rng rng(1);
  const Sequence data = Walk(100, &rng);
  const Sequence query = data.Slice(20, 50).Materialize();
  EXPECT_DOUBLE_EQ(MinSubsequenceDistance(query.View(), data.View()), 0.0);
}

TEST(MinSubsequenceDistanceTest, SingleAlignment) {
  const Sequence data = Sequence::FromScalars({0.0, 1.0});
  const Sequence query = Sequence::FromScalars({1.0, 1.0});
  EXPECT_DOUBLE_EQ(MinSubsequenceDistance(query.View(), data.View()), 1.0);
}

TEST(FrmIndexTest, FindsEmbeddedSubsequences) {
  Rng rng(2);
  FrmIndex index(/*window=*/16, /*num_coefficients=*/3);
  std::vector<Sequence> stored;
  for (int i = 0; i < 40; ++i) {
    stored.push_back(Walk(150, &rng));
    index.Add(stored[i]);
  }
  EXPECT_GT(index.total_mbrs(), 0u);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t id = static_cast<size_t>(rng.UniformInt(0, 39));
    const size_t offset = static_cast<size_t>(rng.UniformInt(0, 100));
    const Sequence query =
        stored[id].Slice(offset, offset + 48).Materialize();
    const std::vector<size_t> hits = index.Search(query.View(), 1e-9);
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), id) != hits.end())
        << "trial " << trial;
  }
}

TEST(FrmIndexTest, NoFalseDismissalAgainstBruteForce) {
  Rng rng(3);
  FrmIndex index(8, 2);
  std::vector<Sequence> stored;
  for (int i = 0; i < 60; ++i) {
    stored.push_back(Walk(120, &rng));
    index.Add(stored[i]);
  }
  for (int trial = 0; trial < 5; ++trial) {
    const Sequence query = Walk(32, &rng);
    for (double epsilon : {0.05, 0.2, 0.6}) {
      std::vector<size_t> expected;
      for (size_t id = 0; id < stored.size(); ++id) {
        if (MinSubsequenceDistance(query.View(), stored[id].View()) <=
            epsilon) {
          expected.push_back(id);
        }
      }
      EXPECT_EQ(index.Search(query.View(), epsilon), expected)
          << "eps " << epsilon;
      // The filter keeps a superset of the answers.
      const std::vector<size_t> candidates =
          index.SearchCandidates(query.View(), epsilon);
      for (size_t id : expected) {
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), id) !=
                    candidates.end());
      }
    }
  }
}

TEST(FrmIndexTest, FilterPrunesAtTightThresholds) {
  Rng rng(4);
  FrmIndex index(16, 3);
  for (int i = 0; i < 100; ++i) index.Add(Walk(150, &rng));
  const Sequence query = Walk(64, &rng);
  const std::vector<size_t> candidates =
      index.SearchCandidates(query.View(), 0.05);
  EXPECT_LT(candidates.size(), 60u);
}

TEST(FrmIndexTest, QueriesShorterThanStoredSeriesOnly) {
  Rng rng(5);
  FrmIndex index(8, 2);
  index.Add(Walk(20, &rng));   // short series
  index.Add(Walk(200, &rng));  // long series
  const Sequence query = Walk(50, &rng);
  // A 50-point query can only ever match inside the 200-point series; the
  // 20-point series must be skipped (never crash) during verification.
  const std::vector<size_t> hits = index.Search(query.View(), 10.0);
  for (size_t id : hits) EXPECT_EQ(id, 1u);
}

}  // namespace
}  // namespace mdseq
