#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "core/mbr_distance.h"
#include "core/partitioning.h"
#include "gen/fractal.h"
#include "gen/video.h"
#include "util/random.h"

namespace mdseq {
namespace {

Mbr StripeBox(double lo) {
  return Mbr(Point{lo, 0.0}, Point{lo + 0.01, 1.0});
}

Partition MakeStripes(const std::vector<std::pair<double, size_t>>& pieces) {
  Partition target;
  size_t at = 0;
  for (const auto& [lo, count] : pieces) {
    target.push_back(SequenceMbr{StripeBox(lo), at, at + count});
    at += count;
  }
  return target;
}

TEST(QualifyingDnormWindowsTest, ReturnsMinimumAndAllQualifyingSpans) {
  // Probe at x<=0.1; stripes at distances 0.1, 0.2, 0.5 with counts 6,6,6.
  const Mbr probe(Point{0.0, 0.0}, Point{0.1, 1.0});
  const Partition target =
      MakeStripes({{0.2, 6}, {0.3, 6}, {0.6, 6}});
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);

  std::vector<NormalizedDistanceResult> windows;
  // probe_count 9 around j=1 (distances D = 0.1, 0.2, 0.5):
  //  - LD k=1: (6*0.2 + 3*0.5)/9 = 0.3, span [6, 15)
  //  - LD k=0 is invalid (cumulative count reaches 9 already at l=1=j,
  //    so j would be partially counted)
  //  - RD q=1: (3*0.1 + 6*0.2)/9 = 0.1667, span [3, 12)
  //  - RD q=2 is invalid (the partial MBR would be j itself)
  const double best =
      QualifyingDnormWindows(9, target, 1, dmbr, 0.2, &windows);
  EXPECT_NEAR(best, (3 * 0.1 + 6 * 0.2) / 9.0, 1e-12);
  // Only the RD window qualifies at eps = 0.2.
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_NEAR(windows[0].distance, best, 1e-12);
  EXPECT_EQ(windows[0].point_begin, 3u);
  EXPECT_EQ(windows[0].point_end, 12u);
}

TEST(QualifyingDnormWindowsTest, NoQualifyingWindows) {
  const Mbr probe(Point{0.0, 0.0}, Point{0.1, 1.0});
  const Partition target = MakeStripes({{0.5, 4}, {0.7, 4}});
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  std::vector<NormalizedDistanceResult> windows;
  const double best =
      QualifyingDnormWindows(6, target, 0, dmbr, 0.1, &windows);
  EXPECT_GT(best, 0.1);
  EXPECT_TRUE(windows.empty());
}

TEST(QualifyingDnormWindowsTest, MinimumAgreesWithNormalizedDistance) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    const Sequence data =
        GenerateFractalSequence(120, FractalOptions(), &rng);
    PartitioningOptions part;
    part.max_points = 12;
    const Partition target = PartitionSequence(data.View(), part);
    const Sequence probe_seq =
        GenerateFractalSequence(30, FractalOptions(), &rng);
    const Mbr probe = probe_seq.BoundingBox();
    const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
    const size_t probe_count =
        static_cast<size_t>(rng.UniformInt(1, 40));
    for (size_t j = 0; j < target.size(); ++j) {
      std::vector<NormalizedDistanceResult> windows;
      const double via_windows = QualifyingDnormWindows(
          probe_count, target, j, dmbr, /*epsilon=*/0.25, &windows);
      const NormalizedDistanceResult reference =
          NormalizedDistance(probe_count, target, j, dmbr);
      EXPECT_DOUBLE_EQ(via_windows, reference.distance);
      // The best window is among the qualifying ones whenever it qualifies.
      if (reference.distance <= 0.25) {
        bool found = false;
        for (const NormalizedDistanceResult& w : windows) {
          if (w.distance == reference.distance &&
              w.point_begin == reference.point_begin &&
              w.point_end == reference.point_end) {
            found = true;
          }
        }
        EXPECT_TRUE(found);
      } else {
        EXPECT_TRUE(windows.empty());
      }
    }
  }
}

TEST(QualifyingDnormWindowsTest, SpansStayInsideSequence) {
  Rng rng(78);
  const Sequence data = GenerateVideoSequence(200, VideoOptions(), &rng);
  PartitioningOptions part;
  const Partition target = PartitionSequence(data.View(), part);
  const Mbr probe(Point{0.2, 0.2, 0.2}, Point{0.4, 0.4, 0.4});
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  for (size_t j = 0; j < target.size(); ++j) {
    std::vector<NormalizedDistanceResult> windows;
    QualifyingDnormWindows(64, target, j, dmbr, 1.0, &windows);
    for (const NormalizedDistanceResult& w : windows) {
      EXPECT_LT(w.point_begin, w.point_end);
      EXPECT_LE(w.point_end, data.size());
    }
  }
}

}  // namespace
}  // namespace mdseq
