#include "eval/experiment.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace mdseq {
namespace {

WorkloadConfig SmallConfig(DataKind kind) {
  WorkloadConfig config;
  config.kind = kind;
  config.num_sequences = 40;
  config.min_length = 56;
  config.max_length = 150;
  config.num_queries = 3;
  config.query.min_length = 20;
  config.query.max_length = 50;
  config.seed = 9;
  return config;
}

TEST(BuildWorkloadTest, SyntheticShapes) {
  const WorkloadConfig config = SmallConfig(DataKind::kSynthetic);
  const Workload workload = BuildWorkload(config);
  EXPECT_EQ(workload.database->num_sequences(), 40u);
  EXPECT_EQ(workload.queries.size(), 3u);
  for (size_t id = 0; id < 40; ++id) {
    const size_t length = workload.database->sequence(id).size();
    EXPECT_GE(length, 56u);
    EXPECT_LE(length, 150u);
  }
}

TEST(BuildWorkloadTest, DeterministicForSameSeed) {
  const WorkloadConfig config = SmallConfig(DataKind::kSynthetic);
  const Workload a = BuildWorkload(config);
  const Workload b = BuildWorkload(config);
  ASSERT_EQ(a.database->num_sequences(), b.database->num_sequences());
  for (size_t id = 0; id < a.database->num_sequences(); ++id) {
    EXPECT_EQ(a.database->sequence(id).data(),
              b.database->sequence(id).data());
  }
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].data(), b.queries[i].data());
  }
}

TEST(PaperEpsilonsTest, TableTwoGrid) {
  const std::vector<double> eps = PaperEpsilons();
  ASSERT_EQ(eps.size(), 10u);
  EXPECT_DOUBLE_EQ(eps.front(), 0.05);
  EXPECT_DOUBLE_EQ(eps.back(), 0.50);
}

TEST(RunThresholdSweepTest, ProducesConsistentRows) {
  const Workload workload = BuildWorkload(SmallConfig(DataKind::kVideo));
  SweepOptions options;
  options.measure_time = false;
  const std::vector<double> epsilons = {0.05, 0.2, 0.5};
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, epsilons, options);
  ASSERT_EQ(rows.size(), 3u);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    EXPECT_DOUBLE_EQ(row.epsilon, epsilons[i]);
    EXPECT_GE(row.pr_dmbr, 0.0);
    EXPECT_LE(row.pr_dmbr, 1.0);
    // Dnorm pruning is at least as strong as Dmbr pruning.
    EXPECT_GE(row.pr_dnorm, row.pr_dmbr - 1e-12);
    EXPECT_GE(row.recall, 0.0);
    EXPECT_LE(row.recall, 1.0);
    // Candidates can never undercut the relevant count (no false
    // dismissal), and matches never exceed candidates.
    EXPECT_GE(row.avg_candidates, row.avg_relevant - 1e-9);
    EXPECT_LE(row.avg_matches, row.avg_candidates + 1e-9);
  }
  // Larger thresholds keep at least as many sequences.
  EXPECT_LE(rows[0].avg_candidates, rows[2].avg_candidates + 1e-9);
}

TEST(RunThresholdSweepTest, HandlesQueriesLongerThanDataSequences) {
  // Long queries (Definition 3 swaps the sliding side) must flow through
  // the whole evaluation pipeline without dismissals or crashes.
  WorkloadConfig config = SmallConfig(DataKind::kSynthetic);
  config.min_length = 56;
  config.max_length = 80;  // short data sequences
  const Workload workload = BuildWorkload(config);
  // Queries longer than every data sequence: stored sequences glued
  // together (DrawQuery clamps to the source length, so build by hand).
  std::vector<Sequence> long_queries;
  for (size_t q = 0; q + 1 < 4; ++q) {
    Sequence query(3);
    query.Extend(workload.database->sequence(q).View());
    query.Extend(workload.database->sequence(q + 1).View());
    ASSERT_GT(query.size(), 80u);
    long_queries.push_back(std::move(query));
  }
  SweepOptions options;
  options.measure_time = false;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, long_queries, {0.1, 0.4}, options);
  for (const SweepRow& row : rows) {
    EXPECT_GE(row.avg_candidates, row.avg_relevant - 1e-9);
    EXPECT_GE(row.avg_matches, row.avg_relevant - 1e-9);
    EXPECT_GE(row.recall, 0.99);  // long-query intervals are whole sequences
  }
}

TEST(WriteSweepCsvTest, WritesAllColumns) {
  const Workload workload = BuildWorkload(SmallConfig(DataKind::kSynthetic));
  SweepOptions options;
  options.measure_time = false;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, {0.1}, options);
  const std::string path = testing::TempDir() + "/sweep.csv";
  ASSERT_TRUE(WriteSweepCsv(path, rows));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_NE(header.find("epsilon"), std::string::npos);
  EXPECT_NE(header.find("pr_dnorm"), std::string::npos);
  EXPECT_NE(header.find("avg_search_ms"), std::string::npos);
  std::string row;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, row)));
  std::remove(path.c_str());
}

TEST(RunThresholdSweepTest, TimeMeasurementFillsRatios) {
  const Workload workload = BuildWorkload(SmallConfig(DataKind::kSynthetic));
  SweepOptions options;
  options.measure_time = true;
  options.evaluate_intervals = false;
  const std::vector<SweepRow> rows = RunThresholdSweep(
      *workload.database, workload.queries, {0.1}, options);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].avg_scan_ms, 0.0);
  EXPECT_GT(rows[0].avg_search_ms, 0.0);
  EXPECT_GT(rows[0].time_ratio, 0.0);
}

}  // namespace
}  // namespace mdseq
