#include "geom/space_filling.h"

#include <cstdlib>
#include <set>

#include <gtest/gtest.h>

namespace mdseq {
namespace {

TEST(MortonTest, KnownValues) {
  EXPECT_EQ(MortonIndex(0, 0), 0u);
  EXPECT_EQ(MortonIndex(1, 0), 1u);
  EXPECT_EQ(MortonIndex(0, 1), 2u);
  EXPECT_EQ(MortonIndex(1, 1), 3u);
  EXPECT_EQ(MortonIndex(2, 0), 4u);
  EXPECT_EQ(MortonIndex(7, 7), 63u);
}

TEST(MortonTest, RoundTrips) {
  for (uint32_t x = 0; x < 32; ++x) {
    for (uint32_t y = 0; y < 32; ++y) {
      uint32_t rx = 0;
      uint32_t ry = 0;
      MortonDecode(MortonIndex(x, y), &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(MortonTest, IsBijectiveOnGrid) {
  std::set<uint32_t> seen;
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      const uint32_t index = MortonIndex(x, y);
      EXPECT_LT(index, 256u);
      EXPECT_TRUE(seen.insert(index).second);
    }
  }
}

TEST(HilbertTest, FirstOrderCurve) {
  // Order-1 Hilbert: (0,0) -> (0,1) -> (1,1) -> (1,0).
  EXPECT_EQ(HilbertIndex(1, 0, 0), 0u);
  EXPECT_EQ(HilbertIndex(1, 0, 1), 1u);
  EXPECT_EQ(HilbertIndex(1, 1, 1), 2u);
  EXPECT_EQ(HilbertIndex(1, 1, 0), 3u);
}

TEST(HilbertTest, RoundTrips) {
  const uint32_t order = 5;
  const uint32_t side = 1u << order;
  for (uint32_t x = 0; x < side; ++x) {
    for (uint32_t y = 0; y < side; ++y) {
      uint32_t rx = 0;
      uint32_t ry = 0;
      HilbertDecode(order, HilbertIndex(order, x, y), &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve (and what makes it the best
  // region ordering): successive cells are always adjacent.
  const uint32_t order = 4;
  const uint32_t side = 1u << order;
  uint32_t px = 0;
  uint32_t py = 0;
  HilbertDecode(order, 0, &px, &py);
  for (uint32_t i = 1; i < side * side; ++i) {
    uint32_t x = 0;
    uint32_t y = 0;
    HilbertDecode(order, i, &x, &y);
    const uint32_t manhattan = (x > px ? x - px : px - x) +
                               (y > py ? y - py : py - y);
    EXPECT_EQ(manhattan, 1u) << "jump at index " << i;
    px = x;
    py = y;
  }
}

TEST(GrayCodeTest, NeighborsDifferInOneBit) {
  for (uint32_t i = 0; i + 1 < 256; ++i) {
    const uint32_t diff = GrayCode(i) ^ GrayCode(i + 1);
    EXPECT_EQ(diff & (diff - 1), 0u);  // power of two -> single bit
    EXPECT_NE(diff, 0u);
  }
}

TEST(GrayCodeTest, RoundTrips) {
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(GrayDecode(GrayCode(i)), i);
  }
}

TEST(GridOrderTest, CoversEveryCellOnce) {
  for (CurveKind kind :
       {CurveKind::kRowMajor, CurveKind::kMorton, CurveKind::kHilbert}) {
    const auto cells = GridOrder(8, kind);
    ASSERT_EQ(cells.size(), 64u);
    std::set<std::pair<uint32_t, uint32_t>> unique(cells.begin(),
                                                   cells.end());
    EXPECT_EQ(unique.size(), 64u);
    for (const auto& [x, y] : cells) {
      EXPECT_LT(x, 8u);
      EXPECT_LT(y, 8u);
    }
  }
}

TEST(GridOrderTest, SingleCellGrid) {
  for (CurveKind kind :
       {CurveKind::kRowMajor, CurveKind::kMorton, CurveKind::kHilbert}) {
    const auto cells = GridOrder(1, kind);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0], (std::pair<uint32_t, uint32_t>{0, 0}));
  }
}

// The clustering argument for using these curves at all: the cells of a
// small square window map to fewer contiguous index runs under
// Hilbert/Morton than under a row-major scan (which needs one run per
// window row). Fewer runs = fewer subsequence pieces per image region
// block.
TEST(GridOrderTest, CurvesClusterSquareWindowsIntoFewerRuns) {
  const uint32_t side = 16;
  const uint32_t window = 4;
  auto mean_runs = [&](CurveKind kind) {
    const auto cells = GridOrder(side, kind);
    std::vector<std::vector<size_t>> index_of(side,
                                              std::vector<size_t>(side));
    for (size_t i = 0; i < cells.size(); ++i) {
      index_of[cells[i].second][cells[i].first] = i;
    }
    double total_runs = 0.0;
    size_t windows = 0;
    for (uint32_t y0 = 0; y0 + window <= side; y0 += window) {
      for (uint32_t x0 = 0; x0 + window <= side; x0 += window) {
        std::vector<size_t> indices;
        for (uint32_t y = y0; y < y0 + window; ++y) {
          for (uint32_t x = x0; x < x0 + window; ++x) {
            indices.push_back(index_of[y][x]);
          }
        }
        std::sort(indices.begin(), indices.end());
        size_t runs = 1;
        for (size_t i = 1; i < indices.size(); ++i) {
          if (indices[i] != indices[i - 1] + 1) ++runs;
        }
        total_runs += static_cast<double>(runs);
        ++windows;
      }
    }
    return total_runs / static_cast<double>(windows);
  };
  // Aligned 4x4 windows: row-major needs exactly 4 runs; the recursive
  // curves keep each window in a single run.
  EXPECT_DOUBLE_EQ(mean_runs(CurveKind::kRowMajor), 4.0);
  EXPECT_DOUBLE_EQ(mean_runs(CurveKind::kMorton), 1.0);
  EXPECT_DOUBLE_EQ(mean_runs(CurveKind::kHilbert), 1.0);
}

}  // namespace
}  // namespace mdseq
