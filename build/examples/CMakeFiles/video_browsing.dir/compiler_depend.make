# Empty compiler generated dependencies file for video_browsing.
# This may be replaced when dependencies are built.
