file(REMOVE_RECURSE
  "CMakeFiles/video_browsing.dir/video_browsing.cpp.o"
  "CMakeFiles/video_browsing.dir/video_browsing.cpp.o.d"
  "video_browsing"
  "video_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
