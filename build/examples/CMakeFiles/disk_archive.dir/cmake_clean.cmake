file(REMOVE_RECURSE
  "CMakeFiles/disk_archive.dir/disk_archive.cpp.o"
  "CMakeFiles/disk_archive.dir/disk_archive.cpp.o.d"
  "disk_archive"
  "disk_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
