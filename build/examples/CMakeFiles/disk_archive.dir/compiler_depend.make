# Empty compiler generated dependencies file for disk_archive.
# This may be replaced when dependencies are built.
