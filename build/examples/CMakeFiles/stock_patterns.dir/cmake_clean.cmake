file(REMOVE_RECURSE
  "CMakeFiles/stock_patterns.dir/stock_patterns.cpp.o"
  "CMakeFiles/stock_patterns.dir/stock_patterns.cpp.o.d"
  "stock_patterns"
  "stock_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stock_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
