file(REMOVE_RECURSE
  "CMakeFiles/image_regions.dir/image_regions.cpp.o"
  "CMakeFiles/image_regions.dir/image_regions.cpp.o.d"
  "image_regions"
  "image_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
