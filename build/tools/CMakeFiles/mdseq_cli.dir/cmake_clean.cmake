file(REMOVE_RECURSE
  "CMakeFiles/mdseq_cli.dir/mdseq_cli.cc.o"
  "CMakeFiles/mdseq_cli.dir/mdseq_cli.cc.o.d"
  "mdseq_cli"
  "mdseq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
