# Empty compiler generated dependencies file for mdseq_cli.
# This may be replaced when dependencies are built.
