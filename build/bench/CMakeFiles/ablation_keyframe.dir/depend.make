# Empty dependencies file for ablation_keyframe.
# This may be replaced when dependencies are built.
