file(REMOVE_RECURSE
  "CMakeFiles/ablation_keyframe.dir/ablation_keyframe.cc.o"
  "CMakeFiles/ablation_keyframe.dir/ablation_keyframe.cc.o.d"
  "ablation_keyframe"
  "ablation_keyframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_keyframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
