file(REMOVE_RECURSE
  "CMakeFiles/micro_dnorm.dir/micro_dnorm.cc.o"
  "CMakeFiles/micro_dnorm.dir/micro_dnorm.cc.o.d"
  "micro_dnorm"
  "micro_dnorm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dnorm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
