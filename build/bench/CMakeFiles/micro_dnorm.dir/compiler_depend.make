# Empty compiler generated dependencies file for micro_dnorm.
# This may be replaced when dependencies are built.
