file(REMOVE_RECURSE
  "CMakeFiles/fig8_solution_interval_synthetic.dir/fig8_solution_interval_synthetic.cc.o"
  "CMakeFiles/fig8_solution_interval_synthetic.dir/fig8_solution_interval_synthetic.cc.o.d"
  "fig8_solution_interval_synthetic"
  "fig8_solution_interval_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_solution_interval_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
