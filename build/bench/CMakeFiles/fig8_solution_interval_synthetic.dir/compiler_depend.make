# Empty compiler generated dependencies file for fig8_solution_interval_synthetic.
# This may be replaced when dependencies are built.
