# Empty compiler generated dependencies file for fig7_pruning_video.
# This may be replaced when dependencies are built.
