file(REMOVE_RECURSE
  "CMakeFiles/fig7_pruning_video.dir/fig7_pruning_video.cc.o"
  "CMakeFiles/fig7_pruning_video.dir/fig7_pruning_video.cc.o.d"
  "fig7_pruning_video"
  "fig7_pruning_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pruning_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
