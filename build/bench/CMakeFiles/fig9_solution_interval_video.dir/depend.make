# Empty dependencies file for fig9_solution_interval_video.
# This may be replaced when dependencies are built.
