file(REMOVE_RECURSE
  "CMakeFiles/fig9_solution_interval_video.dir/fig9_solution_interval_video.cc.o"
  "CMakeFiles/fig9_solution_interval_video.dir/fig9_solution_interval_video.cc.o.d"
  "fig9_solution_interval_video"
  "fig9_solution_interval_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_solution_interval_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
