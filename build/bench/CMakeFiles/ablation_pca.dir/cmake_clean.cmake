file(REMOVE_RECURSE
  "CMakeFiles/ablation_pca.dir/ablation_pca.cc.o"
  "CMakeFiles/ablation_pca.dir/ablation_pca.cc.o.d"
  "ablation_pca"
  "ablation_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
