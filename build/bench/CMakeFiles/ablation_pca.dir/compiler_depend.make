# Empty compiler generated dependencies file for ablation_pca.
# This may be replaced when dependencies are built.
