# Empty dependencies file for micro_gen.
# This may be replaced when dependencies are built.
