file(REMOVE_RECURSE
  "CMakeFiles/micro_gen.dir/micro_gen.cc.o"
  "CMakeFiles/micro_gen.dir/micro_gen.cc.o.d"
  "micro_gen"
  "micro_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
