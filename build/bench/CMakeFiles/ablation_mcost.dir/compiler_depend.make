# Empty compiler generated dependencies file for ablation_mcost.
# This may be replaced when dependencies are built.
