file(REMOVE_RECURSE
  "CMakeFiles/ablation_mcost.dir/ablation_mcost.cc.o"
  "CMakeFiles/ablation_mcost.dir/ablation_mcost.cc.o.d"
  "ablation_mcost"
  "ablation_mcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
