file(REMOVE_RECURSE
  "CMakeFiles/micro_ts.dir/micro_ts.cc.o"
  "CMakeFiles/micro_ts.dir/micro_ts.cc.o.d"
  "micro_ts"
  "micro_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
