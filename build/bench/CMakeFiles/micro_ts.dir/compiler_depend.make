# Empty compiler generated dependencies file for micro_ts.
# This may be replaced when dependencies are built.
