# Empty compiler generated dependencies file for fig4_5_sample_sequences.
# This may be replaced when dependencies are built.
