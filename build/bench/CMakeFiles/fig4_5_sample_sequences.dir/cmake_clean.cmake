file(REMOVE_RECURSE
  "CMakeFiles/fig4_5_sample_sequences.dir/fig4_5_sample_sequences.cc.o"
  "CMakeFiles/fig4_5_sample_sequences.dir/fig4_5_sample_sequences.cc.o.d"
  "fig4_5_sample_sequences"
  "fig4_5_sample_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_5_sample_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
