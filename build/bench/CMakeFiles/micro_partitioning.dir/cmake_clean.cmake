file(REMOVE_RECURSE
  "CMakeFiles/micro_partitioning.dir/micro_partitioning.cc.o"
  "CMakeFiles/micro_partitioning.dir/micro_partitioning.cc.o.d"
  "micro_partitioning"
  "micro_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
