# Empty compiler generated dependencies file for micro_partitioning.
# This may be replaced when dependencies are built.
