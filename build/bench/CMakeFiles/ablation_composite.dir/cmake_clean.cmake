file(REMOVE_RECURSE
  "CMakeFiles/ablation_composite.dir/ablation_composite.cc.o"
  "CMakeFiles/ablation_composite.dir/ablation_composite.cc.o.d"
  "ablation_composite"
  "ablation_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
