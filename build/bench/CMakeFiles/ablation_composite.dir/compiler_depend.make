# Empty compiler generated dependencies file for ablation_composite.
# This may be replaced when dependencies are built.
