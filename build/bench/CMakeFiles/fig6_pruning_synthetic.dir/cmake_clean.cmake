file(REMOVE_RECURSE
  "CMakeFiles/fig6_pruning_synthetic.dir/fig6_pruning_synthetic.cc.o"
  "CMakeFiles/fig6_pruning_synthetic.dir/fig6_pruning_synthetic.cc.o.d"
  "fig6_pruning_synthetic"
  "fig6_pruning_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pruning_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
