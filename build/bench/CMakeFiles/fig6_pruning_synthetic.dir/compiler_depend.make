# Empty compiler generated dependencies file for fig6_pruning_synthetic.
# This may be replaced when dependencies are built.
