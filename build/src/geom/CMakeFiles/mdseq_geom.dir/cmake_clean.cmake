file(REMOVE_RECURSE
  "CMakeFiles/mdseq_geom.dir/mbr.cc.o"
  "CMakeFiles/mdseq_geom.dir/mbr.cc.o.d"
  "CMakeFiles/mdseq_geom.dir/sequence.cc.o"
  "CMakeFiles/mdseq_geom.dir/sequence.cc.o.d"
  "CMakeFiles/mdseq_geom.dir/space_filling.cc.o"
  "CMakeFiles/mdseq_geom.dir/space_filling.cc.o.d"
  "libmdseq_geom.a"
  "libmdseq_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
