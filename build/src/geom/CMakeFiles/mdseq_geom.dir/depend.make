# Empty dependencies file for mdseq_geom.
# This may be replaced when dependencies are built.
