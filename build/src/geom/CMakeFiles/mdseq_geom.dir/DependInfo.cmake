
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/mbr.cc" "src/geom/CMakeFiles/mdseq_geom.dir/mbr.cc.o" "gcc" "src/geom/CMakeFiles/mdseq_geom.dir/mbr.cc.o.d"
  "/root/repo/src/geom/sequence.cc" "src/geom/CMakeFiles/mdseq_geom.dir/sequence.cc.o" "gcc" "src/geom/CMakeFiles/mdseq_geom.dir/sequence.cc.o.d"
  "/root/repo/src/geom/space_filling.cc" "src/geom/CMakeFiles/mdseq_geom.dir/space_filling.cc.o" "gcc" "src/geom/CMakeFiles/mdseq_geom.dir/space_filling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mdseq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
