file(REMOVE_RECURSE
  "libmdseq_geom.a"
)
