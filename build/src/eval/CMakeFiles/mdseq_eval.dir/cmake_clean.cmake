file(REMOVE_RECURSE
  "CMakeFiles/mdseq_eval.dir/experiment.cc.o"
  "CMakeFiles/mdseq_eval.dir/experiment.cc.o.d"
  "CMakeFiles/mdseq_eval.dir/metrics.cc.o"
  "CMakeFiles/mdseq_eval.dir/metrics.cc.o.d"
  "CMakeFiles/mdseq_eval.dir/table.cc.o"
  "CMakeFiles/mdseq_eval.dir/table.cc.o.d"
  "libmdseq_eval.a"
  "libmdseq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
