# Empty compiler generated dependencies file for mdseq_eval.
# This may be replaced when dependencies are built.
