file(REMOVE_RECURSE
  "libmdseq_eval.a"
)
