file(REMOVE_RECURSE
  "CMakeFiles/mdseq_util.dir/csv.cc.o"
  "CMakeFiles/mdseq_util.dir/csv.cc.o.d"
  "libmdseq_util.a"
  "libmdseq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
