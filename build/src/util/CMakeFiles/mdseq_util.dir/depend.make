# Empty dependencies file for mdseq_util.
# This may be replaced when dependencies are built.
