file(REMOVE_RECURSE
  "libmdseq_util.a"
)
