file(REMOVE_RECURSE
  "libmdseq_ts.a"
)
