file(REMOVE_RECURSE
  "CMakeFiles/mdseq_ts.dir/dft.cc.o"
  "CMakeFiles/mdseq_ts.dir/dft.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/dtw.cc.o"
  "CMakeFiles/mdseq_ts.dir/dtw.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/frm.cc.o"
  "CMakeFiles/mdseq_ts.dir/frm.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/paa.cc.o"
  "CMakeFiles/mdseq_ts.dir/paa.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/pca.cc.o"
  "CMakeFiles/mdseq_ts.dir/pca.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/sliding_window.cc.o"
  "CMakeFiles/mdseq_ts.dir/sliding_window.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/transforms.cc.o"
  "CMakeFiles/mdseq_ts.dir/transforms.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/wavelet.cc.o"
  "CMakeFiles/mdseq_ts.dir/wavelet.cc.o.d"
  "CMakeFiles/mdseq_ts.dir/whole_matching.cc.o"
  "CMakeFiles/mdseq_ts.dir/whole_matching.cc.o.d"
  "libmdseq_ts.a"
  "libmdseq_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
