
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/dft.cc" "src/ts/CMakeFiles/mdseq_ts.dir/dft.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/dft.cc.o.d"
  "/root/repo/src/ts/dtw.cc" "src/ts/CMakeFiles/mdseq_ts.dir/dtw.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/dtw.cc.o.d"
  "/root/repo/src/ts/frm.cc" "src/ts/CMakeFiles/mdseq_ts.dir/frm.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/frm.cc.o.d"
  "/root/repo/src/ts/paa.cc" "src/ts/CMakeFiles/mdseq_ts.dir/paa.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/paa.cc.o.d"
  "/root/repo/src/ts/pca.cc" "src/ts/CMakeFiles/mdseq_ts.dir/pca.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/pca.cc.o.d"
  "/root/repo/src/ts/sliding_window.cc" "src/ts/CMakeFiles/mdseq_ts.dir/sliding_window.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/sliding_window.cc.o.d"
  "/root/repo/src/ts/transforms.cc" "src/ts/CMakeFiles/mdseq_ts.dir/transforms.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/transforms.cc.o.d"
  "/root/repo/src/ts/wavelet.cc" "src/ts/CMakeFiles/mdseq_ts.dir/wavelet.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/wavelet.cc.o.d"
  "/root/repo/src/ts/whole_matching.cc" "src/ts/CMakeFiles/mdseq_ts.dir/whole_matching.cc.o" "gcc" "src/ts/CMakeFiles/mdseq_ts.dir/whole_matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdseq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mdseq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mdseq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdseq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
