# Empty compiler generated dependencies file for mdseq_ts.
# This may be replaced when dependencies are built.
