# Empty compiler generated dependencies file for mdseq_baseline.
# This may be replaced when dependencies are built.
