file(REMOVE_RECURSE
  "libmdseq_baseline.a"
)
