file(REMOVE_RECURSE
  "CMakeFiles/mdseq_baseline.dir/keyframe.cc.o"
  "CMakeFiles/mdseq_baseline.dir/keyframe.cc.o.d"
  "CMakeFiles/mdseq_baseline.dir/sequential_scan.cc.o"
  "CMakeFiles/mdseq_baseline.dir/sequential_scan.cc.o.d"
  "CMakeFiles/mdseq_baseline.dir/shot_detection.cc.o"
  "CMakeFiles/mdseq_baseline.dir/shot_detection.cc.o.d"
  "libmdseq_baseline.a"
  "libmdseq_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
