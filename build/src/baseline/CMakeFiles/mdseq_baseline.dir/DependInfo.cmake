
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/keyframe.cc" "src/baseline/CMakeFiles/mdseq_baseline.dir/keyframe.cc.o" "gcc" "src/baseline/CMakeFiles/mdseq_baseline.dir/keyframe.cc.o.d"
  "/root/repo/src/baseline/sequential_scan.cc" "src/baseline/CMakeFiles/mdseq_baseline.dir/sequential_scan.cc.o" "gcc" "src/baseline/CMakeFiles/mdseq_baseline.dir/sequential_scan.cc.o.d"
  "/root/repo/src/baseline/shot_detection.cc" "src/baseline/CMakeFiles/mdseq_baseline.dir/shot_detection.cc.o" "gcc" "src/baseline/CMakeFiles/mdseq_baseline.dir/shot_detection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdseq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mdseq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mdseq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdseq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
