file(REMOVE_RECURSE
  "libmdseq_io.a"
)
