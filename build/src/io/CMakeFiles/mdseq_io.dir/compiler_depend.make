# Empty compiler generated dependencies file for mdseq_io.
# This may be replaced when dependencies are built.
