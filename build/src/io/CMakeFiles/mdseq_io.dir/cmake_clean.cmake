file(REMOVE_RECURSE
  "CMakeFiles/mdseq_io.dir/serialization.cc.o"
  "CMakeFiles/mdseq_io.dir/serialization.cc.o.d"
  "libmdseq_io.a"
  "libmdseq_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
