# Empty compiler generated dependencies file for mdseq_core.
# This may be replaced when dependencies are built.
