file(REMOVE_RECURSE
  "libmdseq_core.a"
)
