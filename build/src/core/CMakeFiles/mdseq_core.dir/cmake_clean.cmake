file(REMOVE_RECURSE
  "CMakeFiles/mdseq_core.dir/database.cc.o"
  "CMakeFiles/mdseq_core.dir/database.cc.o.d"
  "CMakeFiles/mdseq_core.dir/distance.cc.o"
  "CMakeFiles/mdseq_core.dir/distance.cc.o.d"
  "CMakeFiles/mdseq_core.dir/mbr_distance.cc.o"
  "CMakeFiles/mdseq_core.dir/mbr_distance.cc.o.d"
  "CMakeFiles/mdseq_core.dir/partitioning.cc.o"
  "CMakeFiles/mdseq_core.dir/partitioning.cc.o.d"
  "CMakeFiles/mdseq_core.dir/search.cc.o"
  "CMakeFiles/mdseq_core.dir/search.cc.o.d"
  "libmdseq_core.a"
  "libmdseq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
