
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/database.cc" "src/core/CMakeFiles/mdseq_core.dir/database.cc.o" "gcc" "src/core/CMakeFiles/mdseq_core.dir/database.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/core/CMakeFiles/mdseq_core.dir/distance.cc.o" "gcc" "src/core/CMakeFiles/mdseq_core.dir/distance.cc.o.d"
  "/root/repo/src/core/mbr_distance.cc" "src/core/CMakeFiles/mdseq_core.dir/mbr_distance.cc.o" "gcc" "src/core/CMakeFiles/mdseq_core.dir/mbr_distance.cc.o.d"
  "/root/repo/src/core/partitioning.cc" "src/core/CMakeFiles/mdseq_core.dir/partitioning.cc.o" "gcc" "src/core/CMakeFiles/mdseq_core.dir/partitioning.cc.o.d"
  "/root/repo/src/core/search.cc" "src/core/CMakeFiles/mdseq_core.dir/search.cc.o" "gcc" "src/core/CMakeFiles/mdseq_core.dir/search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/mdseq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mdseq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdseq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
