file(REMOVE_RECURSE
  "CMakeFiles/mdseq_index.dir/linear_index.cc.o"
  "CMakeFiles/mdseq_index.dir/linear_index.cc.o.d"
  "CMakeFiles/mdseq_index.dir/rstar_tree.cc.o"
  "CMakeFiles/mdseq_index.dir/rstar_tree.cc.o.d"
  "libmdseq_index.a"
  "libmdseq_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
