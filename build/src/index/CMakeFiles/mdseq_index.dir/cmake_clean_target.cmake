file(REMOVE_RECURSE
  "libmdseq_index.a"
)
