# Empty compiler generated dependencies file for mdseq_index.
# This may be replaced when dependencies are built.
