file(REMOVE_RECURSE
  "CMakeFiles/mdseq_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/mdseq_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/mdseq_storage.dir/disk_database.cc.o"
  "CMakeFiles/mdseq_storage.dir/disk_database.cc.o.d"
  "CMakeFiles/mdseq_storage.dir/page_file.cc.o"
  "CMakeFiles/mdseq_storage.dir/page_file.cc.o.d"
  "CMakeFiles/mdseq_storage.dir/paged_rtree.cc.o"
  "CMakeFiles/mdseq_storage.dir/paged_rtree.cc.o.d"
  "CMakeFiles/mdseq_storage.dir/sequence_store.cc.o"
  "CMakeFiles/mdseq_storage.dir/sequence_store.cc.o.d"
  "libmdseq_storage.a"
  "libmdseq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
