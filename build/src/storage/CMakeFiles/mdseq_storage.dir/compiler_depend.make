# Empty compiler generated dependencies file for mdseq_storage.
# This may be replaced when dependencies are built.
