
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/mdseq_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/mdseq_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_database.cc" "src/storage/CMakeFiles/mdseq_storage.dir/disk_database.cc.o" "gcc" "src/storage/CMakeFiles/mdseq_storage.dir/disk_database.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/storage/CMakeFiles/mdseq_storage.dir/page_file.cc.o" "gcc" "src/storage/CMakeFiles/mdseq_storage.dir/page_file.cc.o.d"
  "/root/repo/src/storage/paged_rtree.cc" "src/storage/CMakeFiles/mdseq_storage.dir/paged_rtree.cc.o" "gcc" "src/storage/CMakeFiles/mdseq_storage.dir/paged_rtree.cc.o.d"
  "/root/repo/src/storage/sequence_store.cc" "src/storage/CMakeFiles/mdseq_storage.dir/sequence_store.cc.o" "gcc" "src/storage/CMakeFiles/mdseq_storage.dir/sequence_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mdseq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mdseq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mdseq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdseq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
