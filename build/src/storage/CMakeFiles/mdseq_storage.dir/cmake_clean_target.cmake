file(REMOVE_RECURSE
  "libmdseq_storage.a"
)
