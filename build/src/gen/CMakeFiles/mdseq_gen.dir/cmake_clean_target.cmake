file(REMOVE_RECURSE
  "libmdseq_gen.a"
)
