# Empty dependencies file for mdseq_gen.
# This may be replaced when dependencies are built.
