file(REMOVE_RECURSE
  "CMakeFiles/mdseq_gen.dir/fractal.cc.o"
  "CMakeFiles/mdseq_gen.dir/fractal.cc.o.d"
  "CMakeFiles/mdseq_gen.dir/image.cc.o"
  "CMakeFiles/mdseq_gen.dir/image.cc.o.d"
  "CMakeFiles/mdseq_gen.dir/query_workload.cc.o"
  "CMakeFiles/mdseq_gen.dir/query_workload.cc.o.d"
  "CMakeFiles/mdseq_gen.dir/video.cc.o"
  "CMakeFiles/mdseq_gen.dir/video.cc.o.d"
  "CMakeFiles/mdseq_gen.dir/walk.cc.o"
  "CMakeFiles/mdseq_gen.dir/walk.cc.o.d"
  "libmdseq_gen.a"
  "libmdseq_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdseq_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
