
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/fractal.cc" "src/gen/CMakeFiles/mdseq_gen.dir/fractal.cc.o" "gcc" "src/gen/CMakeFiles/mdseq_gen.dir/fractal.cc.o.d"
  "/root/repo/src/gen/image.cc" "src/gen/CMakeFiles/mdseq_gen.dir/image.cc.o" "gcc" "src/gen/CMakeFiles/mdseq_gen.dir/image.cc.o.d"
  "/root/repo/src/gen/query_workload.cc" "src/gen/CMakeFiles/mdseq_gen.dir/query_workload.cc.o" "gcc" "src/gen/CMakeFiles/mdseq_gen.dir/query_workload.cc.o.d"
  "/root/repo/src/gen/video.cc" "src/gen/CMakeFiles/mdseq_gen.dir/video.cc.o" "gcc" "src/gen/CMakeFiles/mdseq_gen.dir/video.cc.o.d"
  "/root/repo/src/gen/walk.cc" "src/gen/CMakeFiles/mdseq_gen.dir/walk.cc.o" "gcc" "src/gen/CMakeFiles/mdseq_gen.dir/walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/mdseq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdseq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
