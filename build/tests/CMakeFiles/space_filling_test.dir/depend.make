# Empty dependencies file for space_filling_test.
# This may be replaced when dependencies are built.
