file(REMOVE_RECURSE
  "CMakeFiles/sequential_scan_test.dir/sequential_scan_test.cc.o"
  "CMakeFiles/sequential_scan_test.dir/sequential_scan_test.cc.o.d"
  "sequential_scan_test"
  "sequential_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
