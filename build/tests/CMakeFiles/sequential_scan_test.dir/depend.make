# Empty dependencies file for sequential_scan_test.
# This may be replaced when dependencies are built.
