
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ts_test.cc" "tests/CMakeFiles/ts_test.dir/ts_test.cc.o" "gcc" "tests/CMakeFiles/ts_test.dir/ts_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/mdseq_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mdseq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mdseq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/mdseq_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/mdseq_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mdseq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/mdseq_io.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mdseq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/mdseq_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mdseq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
