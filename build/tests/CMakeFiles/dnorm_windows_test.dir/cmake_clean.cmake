file(REMOVE_RECURSE
  "CMakeFiles/dnorm_windows_test.dir/dnorm_windows_test.cc.o"
  "CMakeFiles/dnorm_windows_test.dir/dnorm_windows_test.cc.o.d"
  "dnorm_windows_test"
  "dnorm_windows_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnorm_windows_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
