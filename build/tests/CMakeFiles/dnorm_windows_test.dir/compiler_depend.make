# Empty compiler generated dependencies file for dnorm_windows_test.
# This may be replaced when dependencies are built.
