file(REMOVE_RECURSE
  "CMakeFiles/keyframe_test.dir/keyframe_test.cc.o"
  "CMakeFiles/keyframe_test.dir/keyframe_test.cc.o.d"
  "keyframe_test"
  "keyframe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyframe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
