# Empty dependencies file for independent_reference_test.
# This may be replaced when dependencies are built.
