file(REMOVE_RECURSE
  "CMakeFiles/independent_reference_test.dir/independent_reference_test.cc.o"
  "CMakeFiles/independent_reference_test.dir/independent_reference_test.cc.o.d"
  "independent_reference_test"
  "independent_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/independent_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
