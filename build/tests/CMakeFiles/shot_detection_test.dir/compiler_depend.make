# Empty compiler generated dependencies file for shot_detection_test.
# This may be replaced when dependencies are built.
