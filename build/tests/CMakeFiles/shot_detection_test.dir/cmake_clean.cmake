file(REMOVE_RECURSE
  "CMakeFiles/shot_detection_test.dir/shot_detection_test.cc.o"
  "CMakeFiles/shot_detection_test.dir/shot_detection_test.cc.o.d"
  "shot_detection_test"
  "shot_detection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shot_detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
