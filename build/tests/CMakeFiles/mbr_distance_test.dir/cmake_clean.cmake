file(REMOVE_RECURSE
  "CMakeFiles/mbr_distance_test.dir/mbr_distance_test.cc.o"
  "CMakeFiles/mbr_distance_test.dir/mbr_distance_test.cc.o.d"
  "mbr_distance_test"
  "mbr_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
