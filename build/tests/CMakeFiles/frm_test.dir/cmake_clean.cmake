file(REMOVE_RECURSE
  "CMakeFiles/frm_test.dir/frm_test.cc.o"
  "CMakeFiles/frm_test.dir/frm_test.cc.o.d"
  "frm_test"
  "frm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
