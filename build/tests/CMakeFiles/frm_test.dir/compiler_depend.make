# Empty compiler generated dependencies file for frm_test.
# This may be replaced when dependencies are built.
