# Empty dependencies file for disk_database_test.
# This may be replaced when dependencies are built.
