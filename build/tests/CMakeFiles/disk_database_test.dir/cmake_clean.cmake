file(REMOVE_RECURSE
  "CMakeFiles/disk_database_test.dir/disk_database_test.cc.o"
  "CMakeFiles/disk_database_test.dir/disk_database_test.cc.o.d"
  "disk_database_test"
  "disk_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
