file(REMOVE_RECURSE
  "CMakeFiles/paa_test.dir/paa_test.cc.o"
  "CMakeFiles/paa_test.dir/paa_test.cc.o.d"
  "paa_test"
  "paa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
