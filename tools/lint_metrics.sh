#!/usr/bin/env bash
# Keeps the metric catalog honest: every `mdseq_*` metric name registered
# in src/ must have a row in the docs/observability.md catalog table, and
# every catalog row must correspond to a registration. Run from anywhere:
#
#   tools/lint_metrics.sh [repo-root]
#
# Wired into ctest as `lint_metrics` (label: lint). Exits non-zero and
# prints the drift when the two sets disagree.
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
docs="$root/docs/observability.md"

if [[ ! -d "$root/src" || ! -f "$docs" ]]; then
  echo "lint_metrics: bad repo root '$root'" >&2
  exit 2
fi

# Registered names: quoted mdseq_* string literals in library code. The
# grep in the test above (tests/CMakeLists.txt) guarantees src/ holds no
# other mdseq_-prefixed strings.
code_names=$(grep -rhoE '"mdseq_[a-zA-Z0-9_:]+"' "$root/src" \
  | tr -d '"' | sort -u)

# Documented names: backticked first column of catalog table rows.
doc_names=$(grep -hoE '^\|[[:space:]]*`mdseq_[a-zA-Z0-9_:]+`' "$docs" \
  | grep -oE 'mdseq_[a-zA-Z0-9_:]+' | sort -u)

status=0

undocumented=$(comm -23 <(printf '%s\n' "$code_names") \
                        <(printf '%s\n' "$doc_names"))
if [[ -n "$undocumented" ]]; then
  echo "metrics registered in src/ but missing from $docs:" >&2
  printf '  %s\n' $undocumented >&2
  status=1
fi

unregistered=$(comm -13 <(printf '%s\n' "$code_names") \
                        <(printf '%s\n' "$doc_names"))
if [[ -n "$unregistered" ]]; then
  echo "metrics documented in $docs but never registered in src/:" >&2
  printf '  %s\n' $unregistered >&2
  status=1
fi

# Pruning-cascade stage names: every stage literal CascadeOf assigns
# (src/core/search.cc) must be mentioned (backticked) in the docs, so a
# new cascade stage cannot ship without documentation.
stage_names=$(grep -hoE '\.name = "[a-z_]+"' "$root/src/core/search.cc" \
  | grep -oE '"[a-z_]+"' | tr -d '"' | sort -u)
for stage in $stage_names; do
  if ! grep -q "\`$stage\`" "$docs"; then
    echo "cascade stage '$stage' emitted by src/core/search.cc but not" \
         "documented in $docs" >&2
    status=1
  fi
done

if [[ "$status" -eq 0 ]]; then
  count=$(printf '%s\n' "$code_names" | wc -l)
  stages=$(printf '%s\n' "$stage_names" | wc -l)
  echo "lint_metrics: $count metric names, $stages cascade stages in sync"
fi
exit "$status"
