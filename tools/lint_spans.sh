#!/usr/bin/env bash
# Keeps the span catalog honest: every span name emitted in src/ must have
# a row in the docs/observability.md span-catalog table, and every catalog
# row must correspond to an emission. Span names come from two places:
#
#   - string literals at `SpanScope` construction sites, and
#   - `// span-name: <name>` annotations next to names returned from
#     functions (e.g. the per-verb ShardVerbSpanName/RpcSpanName switches),
#     where no literal appears at the construction site.
#
# The catalog rows are the backticked first column of the table between the
# `<!-- span-catalog:begin -->` / `<!-- span-catalog:end -->` markers.
# Run from anywhere:
#
#   tools/lint_spans.sh [repo-root]
#
# Wired into ctest as `lint_spans` (label: lint). Exits non-zero and
# prints the drift when the two sets disagree.
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
docs="$root/docs/observability.md"

if [[ ! -d "$root/src" || ! -f "$docs" ]]; then
  echo "lint_spans: bad repo root '$root'" >&2
  exit 2
fi

# Emitted names: literals at SpanScope construction sites plus the
# span-name annotations.
scope_names=$(grep -rhoE 'SpanScope [A-Za-z_]+\([^)"]*"[a-z_:]+"' \
  "$root/src" | grep -oE '"[a-z_:]+"' | tr -d '"')
annotated_names=$(grep -rhoE '// span-name: [a-z_:]+' "$root/src" \
  | sed 's|.*// span-name: ||')
code_names=$(printf '%s\n%s\n' "$scope_names" "$annotated_names" \
  | grep -v '^$' | sort -u)

# Documented names: backticked first column of table rows inside the
# span-catalog markers.
doc_names=$(awk '/<!-- span-catalog:begin -->/{in_table=1; next}
                 /<!-- span-catalog:end -->/{in_table=0}
                 in_table' "$docs" \
  | grep -hoE '^\|[[:space:]]*`[a-z_:]+`' \
  | grep -oE '`[a-z_:]+`' | tr -d '`' | sort -u || true)

status=0

undocumented=$(comm -23 <(printf '%s\n' "$code_names") \
                        <(printf '%s\n' "$doc_names"))
if [[ -n "$undocumented" ]]; then
  echo "spans emitted in src/ but missing from the $docs catalog:" >&2
  printf '  %s\n' $undocumented >&2
  status=1
fi

unemitted=$(comm -13 <(printf '%s\n' "$code_names") \
                     <(printf '%s\n' "$doc_names"))
if [[ -n "$unemitted" ]]; then
  echo "spans cataloged in $docs but never emitted in src/:" >&2
  printf '  %s\n' $unemitted >&2
  status=1
fi

if [[ "$status" -eq 0 ]]; then
  count=$(printf '%s\n' "$code_names" | wc -l)
  echo "lint_spans: $count span names in sync"
fi
exit "$status"
