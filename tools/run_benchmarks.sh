#!/usr/bin/env bash
# Runs the kernel microbenchmarks in JSON mode and assembles one baseline
# file (BENCH_kernels.json by default): the old-vs-new kernel pairs
# introduced by the hot-path overhaul plus the per-phase timings a full
# search reports through SearchStats. The summary block at the top records
# the headline ratios:
#   - dnorm_speedup_*:       naive window re-accumulation vs prefix-sum
#                            context on a finely partitioned target,
#   - rtree_visit_ratio_*:   R-tree nodes visited by per-probe descents vs
#                            one batched descent (the paper's disk-access
#                            proxy),
#   - profile_speedup_*:     unbounded vs threshold-aware window profile on
#                            non-qualifying candidates,
#   - simd_speedup_*:        scalar vs dispatched SIMD kernels (Dmbr
#                            MINDIST batch, window point-sum, prefilter
#                            centroid batch) at dim 4; `simd_level` records
#                            the dispatched level (0 scalar, 1 avx2,
#                            2 neon) and the >=2x bar only applies when it
#                            is non-scalar.
#
# A second file (BENCH_ingest.json by default) captures the live-ingestion
# subsystem: append+group-commit throughput (points/s, fsyncs/commit),
# checkpoint cost, and the p99 SearchVerified latency with a concurrent
# writer on vs. off.
#
# A third file (BENCH_shard.json by default) baselines the scatter-gather
# serving layer: the coordinator tax at one shard (fan-out machinery +
# wire-codec round trip vs calling the search directly), threshold and
# top-k latency across loopback shard counts, and the codec throughput
# floor per RPC.
#
# A fourth file (BENCH_replay.json by default) baselines the workload
# flight recorder and replay harness: record encode/append/scan
# throughput from micro_workload, plus an end-to-end record -> replay ->
# diff loop through mdseq_cli — a same-build replay must be CLEAN
# (byte-identical digests and cascade counters), and an injected
# regression (prefilter disabled) must surface as counter divergences
# with digests intact.
#
# A fifth file (BENCH_cache.json by default) baselines the serving QoS
# subsystem: result-cache hit vs miss latency through the full engine
# Submit path (hits must be >=10x faster at p50), the all-miss overhead
# of an enabled cache + tenant classes over the plain engine (<=5%, so
# exact serving pays nothing for the subsystem), and the approximate
# tier's speedup-vs-quality curve across Phase-3 candidate budgets with
# the certified error bounds it achieved (speedup and bound both
# monotone in the budget).
#
# Usage: tools/run_benchmarks.sh [build-dir] [out.json] [ingest-out.json] \
#                                [shard-out.json] [replay-out.json] \
#                                [cache-out.json]
# Build an optimized tree first:  cmake --preset release &&
#                                 cmake --build --preset release -j
set -euo pipefail

BUILD_DIR="${1:-build-release}"
OUT="${2:-BENCH_kernels.json}"
OUT_INGEST="${3:-BENCH_ingest.json}"
OUT_SHARD="${4:-BENCH_shard.json}"
OUT_REPLAY="${5:-BENCH_replay.json}"
OUT_CACHE="${6:-BENCH_cache.json}"

if [[ ! -x "$BUILD_DIR/bench/micro_dnorm" ]]; then
  echo "error: $BUILD_DIR/bench/micro_dnorm not found or not executable." >&2
  echo "Build it with: cmake --preset release && cmake --build --preset release -j" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$BUILD_DIR/bench/micro_dnorm" --json \
  --benchmark_filter='DnormManyMbrs|FullSearchPhases|PrefilterKernel' \
  >"$tmp/dnorm.json"
"$BUILD_DIR/bench/micro_rtree" --json \
  --benchmark_filter='MultiProbe|MinDist2Kernel' >"$tmp/rtree.json"
"$BUILD_DIR/bench/micro_distance" --json \
  --benchmark_filter='WindowProfile_|PointSumKernel' >"$tmp/distance.json"

jq -s '
  def bench(n): (map(.benchmarks[] | select(.name == n)) | first);
  {
    summary: {
      dnorm_speedup_64:
        (bench("BM_DnormManyMbrs_Reference/64").real_time /
         bench("BM_DnormManyMbrs_PrefixSum/64").real_time),
      dnorm_speedup_256:
        (bench("BM_DnormManyMbrs_Reference/256").real_time /
         bench("BM_DnormManyMbrs_PrefixSum/256").real_time),
      rtree_visit_ratio_8:
        (bench("BM_RStarMultiProbe_PerQuery/8").node_visits /
         bench("BM_RStarMultiProbe_Batch/8").node_visits),
      rtree_visit_ratio_16:
        (bench("BM_RStarMultiProbe_PerQuery/16").node_visits /
         bench("BM_RStarMultiProbe_Batch/16").node_visits),
      profile_speedup_64:
        (bench("BM_WindowProfile_Unbounded/64").real_time /
         bench("BM_WindowProfile_Bounded/64").real_time),
      profile_speedup_256:
        (bench("BM_WindowProfile_Unbounded/256").real_time /
         bench("BM_WindowProfile_Bounded/256").real_time),
      simd_level: bench("BM_MinDist2Kernel_Simd/1024").simd_level,
      simd_speedup_mindist2_256:
        (bench("BM_MinDist2Kernel_Scalar/256").real_time /
         bench("BM_MinDist2Kernel_Simd/256").real_time),
      simd_speedup_mindist2_1024:
        (bench("BM_MinDist2Kernel_Scalar/1024").real_time /
         bench("BM_MinDist2Kernel_Simd/1024").real_time),
      simd_speedup_pointsum_64:
        (bench("BM_PointSumKernel_Scalar/64").real_time /
         bench("BM_PointSumKernel_Simd/64").real_time),
      simd_speedup_pointsum_256:
        (bench("BM_PointSumKernel_Scalar/256").real_time /
         bench("BM_PointSumKernel_Simd/256").real_time),
      simd_speedup_prefilter_1024:
        (bench("BM_PrefilterKernel_Scalar/1024").real_time /
         bench("BM_PrefilterKernel_Simd/1024").real_time)
    },
    context: (.[0].context | del(.date, .load_avg)),
    benchmarks: (map(.benchmarks) | add)
  }' "$tmp/dnorm.json" "$tmp/rtree.json" "$tmp/distance.json" >"$OUT"

echo "wrote $OUT"
jq '.summary' "$OUT"

# Regression guardrails mirroring the perf-smoke acceptance bars.
jq -e '.summary.dnorm_speedup_256 >= 3 and .summary.rtree_visit_ratio_8 >= 2' \
  "$OUT" >/dev/null || {
  echo "error: kernel speedups below the acceptance bars (>=3x dnorm, >=2x fewer node visits)" >&2
  exit 1
}

# SIMD guardrail: when a vector level dispatched (simd_level > 0), the Dmbr
# and window point-sum kernels must beat their scalar references by >=2x at
# dim 4. A scalar-only host (or MDSEQ_FORCE_SCALAR) skips the bar.
jq -e '(.summary.simd_level == 0) or
       (.summary.simd_speedup_mindist2_1024 >= 2 and
        .summary.simd_speedup_pointsum_256 >= 2)' "$OUT" >/dev/null || {
  echo "error: SIMD kernel speedups below the 2x acceptance bar" >&2
  exit 1
}

# --- Live ingestion baseline ------------------------------------------------

"$BUILD_DIR/bench/micro_ingest" --json \
  --benchmark_filter='LiveIngest_|LiveQuery_' >"$tmp/ingest.json"

jq '
  def bench(n): (.benchmarks[] | select(.name == n));
  {
    summary: {
      ingest_points_per_sec:
        bench("BM_LiveIngest_CommitEvery/8").items_per_second,
      fsyncs_per_commit_1:
        bench("BM_LiveIngest_CommitEvery/1").fsyncs_per_commit,
      fsyncs_per_commit_8:
        bench("BM_LiveIngest_CommitEvery/8").fsyncs_per_commit,
      checkpoint_ms_32:
        (bench("BM_LiveIngest_Checkpoint/32").real_time),
      query_p99_us_quiescent: bench("BM_LiveQuery_Quiescent").p99_us,
      query_p99_us_under_ingest: bench("BM_LiveQuery_UnderIngest").p99_us,
      query_p99_ingest_tax:
        (bench("BM_LiveQuery_UnderIngest").p99_us /
         bench("BM_LiveQuery_Quiescent").p99_us)
    },
    context: (.context | del(.date, .load_avg)),
    benchmarks: .benchmarks
  }' "$tmp/ingest.json" >"$OUT_INGEST"

echo "wrote $OUT_INGEST"
jq '.summary' "$OUT_INGEST"

# --- Sharded scatter-gather baseline ----------------------------------------

"$BUILD_DIR/bench/micro_scatter" --json \
  --benchmark_filter='SingleThreshold|ScatterThreshold|SingleNearest|ScatterNearest|ShardCodec' \
  >"$tmp/scatter.json"

jq '
  def bench(n): (.benchmarks[] | select(.name == n));
  {
    summary: {
      # Coordinator tax: one loopback shard (full fan-out + codec round
      # trip) vs calling SimilaritySearch directly. ~1.0 means the
      # scatter-gather machinery is nearly free on top of the search.
      scatter_overhead_1:
        (bench("BM_ScatterThreshold/1").real_time /
         bench("BM_SingleThreshold").real_time),
      scatter_threshold_scaling_4:
        (bench("BM_ScatterThreshold/1").real_time /
         bench("BM_ScatterThreshold/4").real_time),
      scatter_nearest_overhead_1:
        (bench("BM_ScatterNearest/1").real_time /
         bench("BM_SingleNearest").real_time),
      fanout_wait_share_4:
        (bench("BM_ScatterThreshold/4").fanout_wait_ns_per_query /
         bench("BM_ScatterThreshold/4").real_time),
      merge_ns_per_query_4: bench("BM_ScatterThreshold/4").merge_ns_per_query,
      codec_roundtrip_us:
        (bench("BM_ShardCodec_ResponseRoundTrip").real_time / 1000)
    },
    context: (.context | del(.date, .load_avg)),
    benchmarks: .benchmarks
  }' "$tmp/scatter.json" >"$OUT_SHARD"

echo "wrote $OUT_SHARD"
jq '.summary' "$OUT_SHARD"

# Guardrail: the coordinator at one loopback shard must stay within 2x of
# the direct search (it adds one codec round trip and a pool hop).
jq -e '.summary.scatter_overhead_1 <= 2' "$OUT_SHARD" >/dev/null || {
  echo "error: single-shard coordinator overhead above the 2x acceptance bar" >&2
  exit 1
}

# --- Workload record/replay baseline ----------------------------------------

CLI="$BUILD_DIR/tools/mdseq_cli"
"$BUILD_DIR/bench/micro_workload" --json \
  --benchmark_filter='WorkloadRecord|WorkloadLogScan' >"$tmp/workload.json"

# End-to-end determinism loop: record a served workload, replay it on the
# same build (must be CLEAN), then replay with the prefilter disabled (the
# injected regression — counters must move, digests must not).
"$CLI" gen --kind=walk --dim=2 --count=48 --min_len=64 --max_len=192 \
  --seed=7 --out="$tmp/replay_corpus.mdsq" >/dev/null
"$CLI" serve-bench --corpus="$tmp/replay_corpus.mdsq" --clients=2 \
  --queries=24 --eps=0.15 --verified --seed=7 \
  --record="$tmp/replay_workload.mdwl" >/dev/null
"$CLI" replay --log="$tmp/replay_workload.mdwl" \
  --corpus="$tmp/replay_corpus.mdsq" \
  --json-out="$tmp/replay_same.json" >/dev/null
"$CLI" replay --log="$tmp/replay_workload.mdwl" \
  --corpus="$tmp/replay_corpus.mdsq" --prefilter=off \
  --json-out="$tmp/replay_regression.json" >/dev/null

jq -s '
  def bench(n): (.[0].benchmarks[] | select(.name == n));
  {
    summary: {
      record_encode_ns: bench("BM_WorkloadRecordEncode").real_time,
      record_append_ns: bench("BM_WorkloadRecordAppend").real_time,
      recorder_record_ns: bench("BM_WorkloadRecorderRecord").real_time,
      record_bytes: bench("BM_WorkloadRecordEncode").bytes_per_record,
      scan_records_per_sec:
        bench("BM_WorkloadLogScan/1024").items_per_second,
      replay_same_build: .[1].summary,
      replay_prefilter_off: .[2].summary
    },
    context: (.[0].context | del(.date, .load_avg)),
    benchmarks: .[0].benchmarks
  }' "$tmp/workload.json" "$tmp/replay_same.json" \
  "$tmp/replay_regression.json" >"$OUT_REPLAY"

echo "wrote $OUT_REPLAY"
jq '.summary' "$OUT_REPLAY"

# Guardrails: a same-build replay reproduces digests and counters exactly;
# the injected regression is flagged by counters while digests stay intact
# (the prefilter is sound — it changes work, never answers).
jq -e '.summary.replay_same_build.clean == true' "$OUT_REPLAY" \
  >/dev/null || {
  echo "error: same-build replay diverged (digests/counters not reproducible)" >&2
  exit 1
}
jq -e '.summary.replay_prefilter_off.counter_divergences > 0 and
       .summary.replay_prefilter_off.digest_divergences == 0' \
  "$OUT_REPLAY" >/dev/null || {
  echo "error: prefilter-off replay was not flagged (or changed answers)" >&2
  exit 1
}

# --- Serving QoS baseline ----------------------------------------------------

"$BUILD_DIR/bench/micro_serve" --json \
  --benchmark_filter='ServeCache|ServeBatch|ServeApprox' >"$tmp/serve.json"

jq '
  def bench(n): (.benchmarks[] | select(.name == n));
  {
    summary: {
      cache_hit_p50_us: (bench("BM_ServeCacheHit").real_time / 1000),
      cache_miss_p50_us: (bench("BM_ServeCacheMiss").real_time / 1000),
      cache_hit_speedup:
        (bench("BM_ServeCacheMiss").real_time /
         bench("BM_ServeCacheHit").real_time),
      # All-miss serving with the cache + tenant classes enabled, relative
      # to the plain engine: the price exact serving pays for the QoS
      # subsystem when nothing hits.
      qos_all_miss_overhead:
        (bench("BM_ServeBatchEnabledMiss").real_time /
         bench("BM_ServeBatchDisabled").real_time),
      # Approximate tier: speedup over exact, and the certified error
      # bound / skipped-candidate count each budget achieved.
      approx_speedup_4:
        (bench("BM_ServeApprox/0").real_time /
         bench("BM_ServeApprox/4").real_time),
      approx_speedup_16:
        (bench("BM_ServeApprox/0").real_time /
         bench("BM_ServeApprox/16").real_time),
      approx_speedup_64:
        (bench("BM_ServeApprox/0").real_time /
         bench("BM_ServeApprox/64").real_time),
      approx_certified_epsilon_4:
        bench("BM_ServeApprox/4").certified_epsilon,
      approx_certified_epsilon_16:
        bench("BM_ServeApprox/16").certified_epsilon,
      approx_certified_epsilon_64:
        bench("BM_ServeApprox/64").certified_epsilon,
      approx_skipped_4: bench("BM_ServeApprox/4").skipped_per_query,
      approx_skipped_16: bench("BM_ServeApprox/16").skipped_per_query,
      approx_skipped_64: bench("BM_ServeApprox/64").skipped_per_query
    },
    context: (.context | del(.date, .load_avg)),
    benchmarks: .benchmarks
  }' "$tmp/serve.json" >"$OUT_CACHE"

echo "wrote $OUT_CACHE"
jq '.summary' "$OUT_CACHE"

# Guardrail: cache hits skip the queue and the search entirely — at least
# 10x faster than the all-miss path at p50.
jq -e '.summary.cache_hit_speedup >= 10' "$OUT_CACHE" >/dev/null || {
  echo "error: cache-hit speedup below the 10x acceptance bar" >&2
  exit 1
}

# Guardrail: with the subsystem enabled but nothing hitting, exact serving
# stays within 5% of the plain engine.
jq -e '.summary.qos_all_miss_overhead <= 1.05' "$OUT_CACHE" >/dev/null || {
  echo "error: QoS all-miss overhead above the 5% acceptance bar" >&2
  exit 1
}

# Guardrail: the approximate curve is monotone — a tighter budget is never
# slower, and its certified error bound is never better (larger) than a
# looser budget's; every bound stays at or below the requested epsilon.
jq -e '.summary.approx_speedup_4 >= .summary.approx_speedup_16 * 0.9 and
       .summary.approx_speedup_16 >= .summary.approx_speedup_64 * 0.9 and
       .summary.approx_speedup_64 >= 0.95 and
       .summary.approx_certified_epsilon_4
         <= .summary.approx_certified_epsilon_16 + 1e-12 and
       .summary.approx_certified_epsilon_16
         <= .summary.approx_certified_epsilon_64 + 1e-12 and
       .summary.approx_certified_epsilon_64 <= 0.15 and
       .summary.approx_skipped_4 >= .summary.approx_skipped_16 and
       .summary.approx_skipped_16 >= .summary.approx_skipped_64' \
  "$OUT_CACHE" >/dev/null || {
  echo "error: approximate speedup/quality curve is not monotone (or a bound exceeded epsilon)" >&2
  exit 1
}
