#!/usr/bin/env bash
# Runs the kernel microbenchmarks in JSON mode and assembles one baseline
# file (BENCH_kernels.json by default): the old-vs-new kernel pairs
# introduced by the hot-path overhaul plus the per-phase timings a full
# search reports through SearchStats. The summary block at the top records
# the headline ratios:
#   - dnorm_speedup_*:       naive window re-accumulation vs prefix-sum
#                            context on a finely partitioned target,
#   - rtree_visit_ratio_*:   R-tree nodes visited by per-probe descents vs
#                            one batched descent (the paper's disk-access
#                            proxy),
#   - profile_speedup_*:     unbounded vs threshold-aware window profile on
#                            non-qualifying candidates.
#
# Usage: tools/run_benchmarks.sh [build-dir] [out.json]
# Build an optimized tree first:  cmake --preset release &&
#                                 cmake --build --preset release -j
set -euo pipefail

BUILD_DIR="${1:-build-release}"
OUT="${2:-BENCH_kernels.json}"

if [[ ! -x "$BUILD_DIR/bench/micro_dnorm" ]]; then
  echo "error: $BUILD_DIR/bench/micro_dnorm not found or not executable." >&2
  echo "Build it with: cmake --preset release && cmake --build --preset release -j" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$BUILD_DIR/bench/micro_dnorm" --json \
  --benchmark_filter='DnormManyMbrs|FullSearchPhases' >"$tmp/dnorm.json"
"$BUILD_DIR/bench/micro_rtree" --json \
  --benchmark_filter='MultiProbe' >"$tmp/rtree.json"
"$BUILD_DIR/bench/micro_distance" --json \
  --benchmark_filter='WindowProfile_' >"$tmp/distance.json"

jq -s '
  def bench(n): (map(.benchmarks[] | select(.name == n)) | first);
  {
    summary: {
      dnorm_speedup_64:
        (bench("BM_DnormManyMbrs_Reference/64").real_time /
         bench("BM_DnormManyMbrs_PrefixSum/64").real_time),
      dnorm_speedup_256:
        (bench("BM_DnormManyMbrs_Reference/256").real_time /
         bench("BM_DnormManyMbrs_PrefixSum/256").real_time),
      rtree_visit_ratio_8:
        (bench("BM_RStarMultiProbe_PerQuery/8").node_visits /
         bench("BM_RStarMultiProbe_Batch/8").node_visits),
      rtree_visit_ratio_16:
        (bench("BM_RStarMultiProbe_PerQuery/16").node_visits /
         bench("BM_RStarMultiProbe_Batch/16").node_visits),
      profile_speedup_64:
        (bench("BM_WindowProfile_Unbounded/64").real_time /
         bench("BM_WindowProfile_Bounded/64").real_time),
      profile_speedup_256:
        (bench("BM_WindowProfile_Unbounded/256").real_time /
         bench("BM_WindowProfile_Bounded/256").real_time)
    },
    context: (.[0].context | del(.date, .load_avg)),
    benchmarks: (map(.benchmarks) | add)
  }' "$tmp/dnorm.json" "$tmp/rtree.json" "$tmp/distance.json" >"$OUT"

echo "wrote $OUT"
jq '.summary' "$OUT"

# Regression guardrails mirroring the perf-smoke acceptance bars.
jq -e '.summary.dnorm_speedup_256 >= 3 and .summary.rtree_visit_ratio_8 >= 2' \
  "$OUT" >/dev/null || {
  echo "error: kernel speedups below the acceptance bars (>=3x dnorm, >=2x fewer node visits)" >&2
  exit 1
}
