#!/usr/bin/env bash
# Keeps the HTTP route catalog honest: every `Handle("METHOD", "/path",
# ...)` registration in src/ must have a row in the endpoint-catalog table
# of docs/observability.md (between the endpoint-catalog:begin/end
# markers), and every catalog row must correspond to a registration. Run
# from anywhere:
#
#   tools/lint_endpoints.sh [repo-root]
#
# Wired into ctest as `lint_endpoints` (label: lint). Exits non-zero and
# prints the drift when the two sets disagree.
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
docs="$root/docs/observability.md"

if [[ ! -d "$root/src" || ! -f "$docs" ]]; then
  echo "lint_endpoints: bad repo root '$root'" >&2
  exit 2
fi

# Registered routes: Handle("METHOD", "/path", ...) call sites. The match
# is multi-line aware (-z) because clang-format may break after `Handle(`.
code_routes=$(grep -rzhoE \
    'Handle\([[:space:]]*"(GET|POST|PUT|DELETE)",[[:space:]]*"/[^"]*"' \
    "$root/src" \
  | tr '\n\0' ' \n' \
  | sed -E 's/.*"(GET|POST|PUT|DELETE)",[[:space:]]*"([^"]*)"/\1 \2/' \
  | sort -u)

# Documented routes: backticked `METHOD /path` first column of table rows
# between the catalog markers.
doc_routes=$(awk '/endpoint-catalog:begin/,/endpoint-catalog:end/' "$docs" \
  | grep -oE '^\|[[:space:]]*`(GET|POST|PUT|DELETE) /[^`]*`' \
  | grep -oE '(GET|POST|PUT|DELETE) /[^`]*' | sort -u)

if [[ -z "$code_routes" || -z "$doc_routes" ]]; then
  echo "lint_endpoints: extraction came up empty (catalog markers moved?)" >&2
  exit 2
fi

status=0

undocumented=$(comm -23 <(printf '%s\n' "$code_routes") \
                        <(printf '%s\n' "$doc_routes"))
if [[ -n "$undocumented" ]]; then
  echo "routes registered in src/ but missing from the $docs catalog:" >&2
  printf '  %s\n' "$undocumented" >&2
  status=1
fi

unregistered=$(comm -13 <(printf '%s\n' "$code_routes") \
                        <(printf '%s\n' "$doc_routes"))
if [[ -n "$unregistered" ]]; then
  echo "routes documented in $docs but never registered in src/:" >&2
  printf '  %s\n' "$unregistered" >&2
  status=1
fi

if [[ "$status" -eq 0 ]]; then
  count=$(printf '%s\n' "$code_routes" | wc -l)
  echo "lint_endpoints: $count routes in sync"
fi
exit "$status"
