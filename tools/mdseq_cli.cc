// mdseq_cli — command-line front end for the library.
//
// Subcommands:
//   gen     generate a corpus file
//             mdseq_cli gen --kind=synthetic|video|walk --count=100
//                           [--min_len=56 --max_len=512 --seed=42]
//                           --out=corpus.mdsq
//   info    summarize a corpus file
//             mdseq_cli info --corpus=corpus.mdsq
//   export  dump one sequence as CSV (e.g. for plotting or as a query)
//             mdseq_cli export --corpus=corpus.mdsq --id=7 --out=seq.csv
//   query   range query: load the corpus, index it, search
//             mdseq_cli query --corpus=corpus.mdsq --query=seq.csv
//                             --eps=0.1 [--filter-only] [--max_rows=20]
//   topk    k-nearest query
//             mdseq_cli topk --corpus=corpus.mdsq --query=seq.csv --k=5
//   builddb build a disk-resident database (paged index + sequence store)
//             mdseq_cli builddb --corpus=corpus.mdsq --out=corpus.db
//   querydb range query against a disk database, reporting page I/O
//             mdseq_cli querydb --db=corpus.db --query=seq.csv --eps=0.1
//                               [--pool=256] [--filter-only] [--max_rows=20]
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.

#include <cstdio>
#include <string>
#include <vector>

#include "core/search.h"
#include "gen/fractal.h"
#include "gen/video.h"
#include "gen/walk.h"
#include "io/serialization.h"
#include "storage/disk_database.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

using namespace mdseq;

int Usage() {
  std::fprintf(stderr,
               "usage: mdseq_cli <gen|info|export|query|topk> [--flags]\n"
               "see the header of tools/mdseq_cli.cc for details\n");
  return 2;
}

int RunGen(const Flags& flags) {
  const std::string kind = flags.GetString("kind", "synthetic");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out is required\n");
    return 2;
  }
  const size_t count = flags.GetSize("count", 100);
  const size_t min_len = flags.GetSize("min_len", 56);
  const size_t max_len = flags.GetSize("max_len", 512);
  if (min_len < 1 || min_len > max_len) {
    std::fprintf(stderr, "gen: invalid length range\n");
    return 2;
  }
  Rng rng(flags.GetSize("seed", 42));

  std::vector<Sequence> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t length = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(min_len), static_cast<int64_t>(max_len)));
    if (kind == "synthetic") {
      corpus.push_back(GenerateFractalSequence(length, FractalOptions(),
                                               &rng));
    } else if (kind == "video") {
      corpus.push_back(GenerateVideoSequence(length, VideoOptions(), &rng));
    } else if (kind == "walk") {
      WalkOptions options;
      options.dim = flags.GetSize("dim", 1);
      corpus.push_back(GenerateRandomWalk(length, options, &rng));
    } else {
      std::fprintf(stderr, "gen: unknown --kind=%s\n", kind.c_str());
      return 2;
    }
  }
  if (!WriteSequences(out, corpus)) {
    std::fprintf(stderr, "gen: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s sequence(s) to %s\n", corpus.size(),
              kind.c_str(), out.c_str());
  return 0;
}

std::optional<std::vector<Sequence>> LoadCorpus(const Flags& flags) {
  const std::string path = flags.GetString("corpus", "");
  if (path.empty()) {
    std::fprintf(stderr, "--corpus is required\n");
    return std::nullopt;
  }
  auto corpus = ReadSequences(path);
  if (!corpus.has_value()) {
    std::fprintf(stderr, "failed to read corpus %s\n", path.c_str());
  }
  return corpus;
}

int RunInfo(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  size_t points = 0;
  size_t min_len = SIZE_MAX;
  size_t max_len = 0;
  for (const Sequence& s : *corpus) {
    points += s.size();
    min_len = std::min(min_len, s.size());
    max_len = std::max(max_len, s.size());
  }
  std::printf("sequences : %zu\n", corpus->size());
  if (!corpus->empty()) {
    std::printf("dimension : %zu\n", corpus->front().dim());
    std::printf("points    : %zu (lengths %zu-%zu)\n", points, min_len,
                max_len);
  }
  return 0;
}

int RunExport(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  const size_t id = flags.GetSize("id", 0);
  const std::string out = flags.GetString("out", "");
  if (out.empty() || id >= corpus->size()) {
    std::fprintf(stderr, "export: need --out and a valid --id (< %zu)\n",
                 corpus->size());
    return 2;
  }
  if (!WriteSequenceCsv(out, (*corpus)[id].View())) {
    std::fprintf(stderr, "export: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote sequence %zu (%zu points) to %s\n", id,
              (*corpus)[id].size(), out.c_str());
  return 0;
}

// Loads the corpus into an indexed database and parses the query CSV.
struct QuerySetup {
  SequenceDatabase database;
  Sequence query;
};

std::optional<QuerySetup> PrepareQuery(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value() || corpus->empty()) return std::nullopt;
  const std::string query_path = flags.GetString("query", "");
  if (query_path.empty()) {
    std::fprintf(stderr, "--query=<csv> is required\n");
    return std::nullopt;
  }
  auto query = ReadSequenceCsv(query_path);
  if (!query.has_value()) {
    std::fprintf(stderr, "failed to read query CSV %s\n",
                 query_path.c_str());
    return std::nullopt;
  }
  if (query->dim() != corpus->front().dim()) {
    std::fprintf(stderr, "query dimension %zu != corpus dimension %zu\n",
                 query->dim(), corpus->front().dim());
    return std::nullopt;
  }
  QuerySetup setup{SequenceDatabase(corpus->front().dim()),
                   std::move(*query)};
  for (const Sequence& s : *corpus) setup.database.Add(s);
  return setup;
}

void PrintMatch(const SequenceMatch& match, bool verified) {
  if (verified) {
    std::printf("  sequence %zu  distance %.6f  intervals:",
                match.sequence_id, match.exact_distance);
  } else {
    std::printf("  sequence %zu  min Dnorm %.6f  intervals:",
                match.sequence_id, match.min_dnorm);
  }
  for (const Interval& iv : match.solution_interval) {
    std::printf(" [%zu, %zu)", iv.begin, iv.end);
  }
  std::printf("\n");
}

int RunQuery(const Flags& flags) {
  auto setup = PrepareQuery(flags);
  if (!setup.has_value()) return 1;
  const double epsilon = flags.GetDouble("eps", 0.1);
  const bool filter_only = flags.Has("filter-only");
  const size_t max_rows = flags.GetSize("max_rows", 20);

  SimilaritySearch engine(&setup->database);
  const SearchResult result =
      filter_only ? engine.Search(setup->query.View(), epsilon)
                  : engine.SearchVerified(setup->query.View(), epsilon);
  std::printf("query: %zu points, eps %.4f%s\n", setup->query.size(),
              epsilon, filter_only ? " (filter only, no verification)" : "");
  std::printf("candidates after Dmbr: %zu; %s: %zu\n",
              result.candidates.size(),
              filter_only ? "after Dnorm" : "verified matches",
              result.matches.size());
  for (size_t i = 0; i < result.matches.size() && i < max_rows; ++i) {
    PrintMatch(result.matches[i], !filter_only);
  }
  if (result.matches.size() > max_rows) {
    std::printf("  ... %zu more (raise --max_rows)\n",
                result.matches.size() - max_rows);
  }
  return 0;
}

int RunBuildDb(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  if (corpus->empty()) {
    std::fprintf(stderr, "builddb: corpus is empty\n");
    return 2;
  }
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "builddb: --out is required\n");
    return 2;
  }
  SequenceDatabase database(corpus->front().dim());
  for (const Sequence& s : *corpus) database.Add(s);
  if (!DiskDatabase::Save(database, out)) {
    std::fprintf(stderr, "builddb: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote disk database: %zu sequences, %zu points, %zu MBRs "
              "-> %s\n",
              database.num_sequences(), database.total_points(),
              database.total_mbrs(), out.c_str());
  return 0;
}

int RunQueryDb(const Flags& flags) {
  const std::string db_path = flags.GetString("db", "");
  const std::string query_path = flags.GetString("query", "");
  if (db_path.empty() || query_path.empty()) {
    std::fprintf(stderr, "querydb: --db and --query are required\n");
    return 2;
  }
  DiskDatabase database(db_path, flags.GetSize("pool", 256));
  if (!database.valid()) {
    std::fprintf(stderr, "querydb: failed to open %s\n", db_path.c_str());
    return 1;
  }
  auto query = ReadSequenceCsv(query_path);
  if (!query.has_value() || query->dim() != database.dim()) {
    std::fprintf(stderr, "querydb: bad query CSV (need dimension %zu)\n",
                 database.dim());
    return 1;
  }
  const double epsilon = flags.GetDouble("eps", 0.1);
  const bool filter_only = flags.Has("filter-only");
  const size_t max_rows = flags.GetSize("max_rows", 20);

  database.mutable_pool()->ResetStats();
  const SearchResult result =
      filter_only ? database.Search(query->View(), epsilon)
                  : database.SearchVerified(query->View(), epsilon);
  std::printf("query: %zu points, eps %.4f over %zu sequences on disk\n",
              query->size(), epsilon, database.num_sequences());
  std::printf("candidates after Dmbr: %zu; %s: %zu\n",
              result.candidates.size(),
              filter_only ? "after Dnorm" : "verified matches",
              result.matches.size());
  for (size_t i = 0; i < result.matches.size() && i < max_rows; ++i) {
    PrintMatch(result.matches[i], !filter_only);
  }
  std::printf("page I/O: %llu misses (real reads), %llu pool hits\n",
              static_cast<unsigned long long>(database.pool().misses()),
              static_cast<unsigned long long>(database.pool().hits()));
  return 0;
}

int RunTopk(const Flags& flags) {
  auto setup = PrepareQuery(flags);
  if (!setup.has_value()) return 1;
  const size_t k = flags.GetSize("k", 5);
  SimilaritySearch engine(&setup->database);
  const std::vector<SequenceMatch> nearest =
      engine.SearchNearest(setup->query.View(), k);
  std::printf("top-%zu nearest sequences:\n", k);
  for (const SequenceMatch& match : nearest) PrintMatch(match, true);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  if (command == "gen") return RunGen(flags);
  if (command == "info") return RunInfo(flags);
  if (command == "export") return RunExport(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "topk") return RunTopk(flags);
  if (command == "builddb") return RunBuildDb(flags);
  if (command == "querydb") return RunQueryDb(flags);
  return Usage();
}
