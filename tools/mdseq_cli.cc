// mdseq_cli — command-line front end for the library.
//
// Subcommands:
//   gen     generate a corpus file
//             mdseq_cli gen --kind=synthetic|video|walk --count=100
//                           [--min_len=56 --max_len=512 --seed=42]
//                           --out=corpus.mdsq
//   info    summarize a corpus file
//             mdseq_cli info --corpus=corpus.mdsq
//   export  dump one sequence as CSV (e.g. for plotting or as a query)
//             mdseq_cli export --corpus=corpus.mdsq --id=7 --out=seq.csv
//   query   range query: load the corpus, index it, search
//             mdseq_cli query --corpus=corpus.mdsq --query=seq.csv
//                             --eps=0.1 [--filter-only] [--max_rows=20]
//   topk    k-nearest query
//             mdseq_cli topk --corpus=corpus.mdsq --query=seq.csv --k=5
//   builddb build a disk-resident database (paged index + sequence store)
//             mdseq_cli builddb --corpus=corpus.mdsq --out=corpus.db
//   querydb range query against a disk database, reporting page I/O
//             mdseq_cli querydb --db=corpus.db --query=seq.csv --eps=0.1
//                               [--pool=256] [--filter-only] [--max_rows=20]
//   explain run one query and print an EXPLAIN-style per-phase report
//             mdseq_cli explain --corpus=corpus.mdsq | --db=corpus.db
//                               --query=seq.csv [--eps=0.1 --verified
//                               --pool=256 --json --trace-out=trace.json
//                               --shards=0 --placement=hash|hilbert]
//             --json prints the report as one JSON object; --trace-out
//             writes the query's span trace as Chrome trace_event JSON
//             (load in Perfetto or chrome://tracing). --shards=N (requires
//             --corpus) splits the corpus into N in-memory shards and runs
//             the query through the scatter-gather coordinator instead:
//             the report gains the fan-out summary and the per-shard
//             pruning-cascade table, and the trace gains the stitched
//             shard spans (one track per shard).
//   ingest  stream a corpus into a live (WAL-backed) database
//             mdseq_cli ingest --db=live.db --corpus=corpus.mdsq
//                              [--create --pool=256 --commit-every=8
//                               --checkpoint-every=0 --no-checkpoint]
//             Each sequence is opened, appended, sealed; --commit-every
//             sets the group-commit batch (sequences per WAL fsync);
//             --checkpoint-every folds every N sequences; a final
//             checkpoint (unless --no-checkpoint) leaves the file openable
//             as a plain disk database. Reports points/s and fsyncs/commit.
//   shard-build  split a corpus into an on-disk shard set (per-shard disk
//             databases + manifest) for scatter-gather serving
//             mdseq_cli shard-build --corpus=corpus.mdsq --out=shards/
//                                   [--shards=2 --placement=hash|hilbert]
//   replay  re-execute a recorded workload log against a build, or diff
//           two recordings offline
//             mdseq_cli replay --log=workload.mdwl
//                              --corpus=corpus.mdsq | --db=corpus.db
//                              [--shards=0 --placement=hash|hilbert
//                               --pace=max|recorded --speed=1.0
//                               --apply-deadlines --prefilter=on|off
//                               --composite=on|off --pool=256 --threads=0
//                               --out=replayed.mdwl --json-out=diff.json
//                               --max_rows=20]
//             mdseq_cli replay --log=a.mdwl --diff=b.mdwl
//                              [--json-out=diff.json --max_rows=20]
//             Run mode re-executes every record (same query, epsilon,
//             verified flag) against the given corpus/database — or, with
//             --shards=N, against an N-way in-memory shard coordinator —
//             and diffs the replayed run against the recording: result
//             digests exactly, pruning-cascade counters over the
//             deterministic subset only (never wall times or buffer-pool
//             hits). --pace=recorded recreates the captured arrival
//             spacing (divided by --speed; 2.0 = twice as fast);
//             --pace=max is a closed loop measuring max throughput.
//             --prefilter/--composite pin the engine's SearchOptions to
//             probe a knob (e.g. --prefilter=off shows up as per-query
//             counter divergences, localized per shard for sharded runs).
//             --out writes the replayed run as a new workload log, so
//             builds can be compared transitively. --diff skips execution
//             and compares two existing logs. --json-out writes the diff
//             as JSON (the BENCH_replay.json payload); exit code is 0
//             even when runs diverge — divergence is the report, not an
//             error.
//   serve-bench  drive the concurrent query engine with N client threads
//             mdseq_cli serve-bench --corpus=corpus.mdsq | --db=corpus.db
//                            [--threads=0 --clients=4 --queries=64
//                             --eps=0.1 --queue=1024
//                             --policy=block|reject|shed
//                             --deadline_ms=0 --verified --pool=256
//                             --seed=42 --min_qlen=32 --max_qlen=128
//                             --shards=0 --placement=hash|hilbert
//                             --shard-failure=failfast|degraded
//                             --ingest-rate=0 --ingest-checkpoint-every=0
//                             --metrics-out=metrics.prom
//                             --metrics-json=metrics.json
//                             --trace-out=trace.json --trace-cap=4096
//                             --listen=8080 --slow_ms=50 --linger_s=0
//                             --log-level=warn
//                             --record=workload.mdwl
//                             --record-sample-every=1
//                             --record-max-bytes=67108864
//                             --cache-bytes=0 --approx-budget=0
//                             --tenants=0 --tenant-mix=""]
//             --shards=N (requires --corpus) splits the corpus into N
//             self-contained shards under the chosen --placement and
//             serves queries through the scatter-gather coordinator
//             (loopback transport); the report then breaks coordinator
//             time into fan-out wait vs merge, and the introspection
//             server gains /debug/shards. --shard-failure picks the
//             partial-failure policy (fail closed vs degrade open).
//             --ingest-rate=<points/s> (requires --db) opens the database
//             live (WAL-backed) and runs a background writer that ingests
//             freshly generated sealed sequences at the target rate while
//             the query clients run — the read-while-write scenario. The
//             report then includes acknowledged ingest throughput and WAL
//             fsyncs; --ingest-checkpoint-every checkpoints every N
//             batches.
//             Reports end-to-end QPS and the engine's admission/latency
//             counters (p50/p99 from the lock-free histogram).
//             --metrics-out snapshots the engine's metrics registry in
//             Prometheus text format every 500 ms while the bench runs
//             (atomic temp-file + rename writes, plus a final snapshot);
//             --metrics-json writes the final registry state as JSON;
//             --trace-out collects per-query phase traces and writes
//             Chrome trace_event JSON. --listen=<port> starts the live
//             introspection server on 127.0.0.1 (<port> 0 picks an
//             ephemeral port, printed at startup) with /metrics /healthz
//             /debug/active /debug/cancel /debug/slow /debug/trace
//             (+ /debug/ingest when live-backed);
//             --slow_ms sets the slow-query ring threshold; --linger_s
//             keeps the server up that many seconds after the bench
//             drains for manual curl; --log-level=debug|info|warn|error
//             sets the structured-log threshold (JSON lines on stderr).
//             --record=<path> turns on the workload flight recorder: every
//             completed query is appended to a rotating CRC-framed log
//             replayable with `mdseq_cli replay`; --record-sample-every=N
//             keeps every Nth query, --record-max-bytes caps the log file
//             before rotation. The introspection server then also serves
//             /debug/workload.
//             Serving QoS (docs/serving.md): --cache-bytes=N turns on the
//             snapshot-stamped result cache with an N-byte budget (report
//             gains hit/miss/invalidation counters; server gains
//             /debug/cache); --approx-budget=N caps Phase-3 candidates per
//             query (the approximate tier — results stay exact below the
//             certified bound each query reports); --tenants=N spreads the
//             clients round-robin over N equal-weight admission classes,
//             --tenant-mix="4,2,1" sets explicit class weights instead
//             (report gains per-class served/shed rows; server gains
//             /debug/tenants).
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.

#include <sys/stat.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/search.h"
#include "engine/query_engine.h"
#include "engine/workload_recorder.h"
#include "engine/workload_replay.h"
#include "ingest/live_database.h"
#include "gen/fractal.h"
#include "gen/query_workload.h"
#include "gen/video.h"
#include "gen/walk.h"
#include "io/serialization.h"
#include "obs/explain.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/coordinator.h"
#include "shard/shard_set.h"
#include "obs/workload_log.h"
#include "shard/transport.h"
#include "storage/disk_database.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

using namespace mdseq;

int Usage() {
  std::fprintf(stderr,
               "usage: mdseq_cli "
               "<gen|info|export|query|topk|builddb|querydb|explain|"
               "ingest|shard-build|replay|serve-bench> [--flags]\n"
               "see the header of tools/mdseq_cli.cc for details\n");
  return 2;
}

int RunGen(const Flags& flags) {
  const std::string kind = flags.GetString("kind", "synthetic");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out is required\n");
    return 2;
  }
  const size_t count = flags.GetSize("count", 100);
  const size_t min_len = flags.GetSize("min_len", 56);
  const size_t max_len = flags.GetSize("max_len", 512);
  if (min_len < 1 || min_len > max_len) {
    std::fprintf(stderr, "gen: invalid length range\n");
    return 2;
  }
  Rng rng(flags.GetSize("seed", 42));

  std::vector<Sequence> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t length = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(min_len), static_cast<int64_t>(max_len)));
    if (kind == "synthetic") {
      corpus.push_back(GenerateFractalSequence(length, FractalOptions(),
                                               &rng));
    } else if (kind == "video") {
      corpus.push_back(GenerateVideoSequence(length, VideoOptions(), &rng));
    } else if (kind == "walk") {
      WalkOptions options;
      options.dim = flags.GetSize("dim", 1);
      corpus.push_back(GenerateRandomWalk(length, options, &rng));
    } else {
      std::fprintf(stderr, "gen: unknown --kind=%s\n", kind.c_str());
      return 2;
    }
  }
  if (!WriteSequences(out, corpus)) {
    std::fprintf(stderr, "gen: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s sequence(s) to %s\n", corpus.size(),
              kind.c_str(), out.c_str());
  return 0;
}

std::optional<std::vector<Sequence>> LoadCorpus(const Flags& flags) {
  const std::string path = flags.GetString("corpus", "");
  if (path.empty()) {
    std::fprintf(stderr, "--corpus is required\n");
    return std::nullopt;
  }
  auto corpus = ReadSequences(path);
  if (!corpus.has_value()) {
    std::fprintf(stderr, "failed to read corpus %s\n", path.c_str());
  }
  return corpus;
}

int RunInfo(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  size_t points = 0;
  size_t min_len = SIZE_MAX;
  size_t max_len = 0;
  for (const Sequence& s : *corpus) {
    points += s.size();
    min_len = std::min(min_len, s.size());
    max_len = std::max(max_len, s.size());
  }
  std::printf("sequences : %zu\n", corpus->size());
  if (!corpus->empty()) {
    std::printf("dimension : %zu\n", corpus->front().dim());
    std::printf("points    : %zu (lengths %zu-%zu)\n", points, min_len,
                max_len);
  }
  return 0;
}

int RunExport(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  const size_t id = flags.GetSize("id", 0);
  const std::string out = flags.GetString("out", "");
  if (out.empty() || id >= corpus->size()) {
    std::fprintf(stderr, "export: need --out and a valid --id (< %zu)\n",
                 corpus->size());
    return 2;
  }
  if (!WriteSequenceCsv(out, (*corpus)[id].View())) {
    std::fprintf(stderr, "export: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote sequence %zu (%zu points) to %s\n", id,
              (*corpus)[id].size(), out.c_str());
  return 0;
}

// Loads the corpus into an indexed database and parses the query CSV.
struct QuerySetup {
  SequenceDatabase database;
  Sequence query;
};

std::optional<QuerySetup> PrepareQuery(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value() || corpus->empty()) return std::nullopt;
  const std::string query_path = flags.GetString("query", "");
  if (query_path.empty()) {
    std::fprintf(stderr, "--query=<csv> is required\n");
    return std::nullopt;
  }
  auto query = ReadSequenceCsv(query_path);
  if (!query.has_value()) {
    std::fprintf(stderr, "failed to read query CSV %s\n",
                 query_path.c_str());
    return std::nullopt;
  }
  if (query->dim() != corpus->front().dim()) {
    std::fprintf(stderr, "query dimension %zu != corpus dimension %zu\n",
                 query->dim(), corpus->front().dim());
    return std::nullopt;
  }
  QuerySetup setup{SequenceDatabase(corpus->front().dim()),
                   std::move(*query)};
  for (const Sequence& s : *corpus) setup.database.Add(s);
  return setup;
}

void PrintMatch(const SequenceMatch& match, bool verified) {
  if (verified) {
    std::printf("  sequence %zu  distance %.6f  intervals:",
                match.sequence_id, match.exact_distance);
  } else {
    std::printf("  sequence %zu  min Dnorm %.6f  intervals:",
                match.sequence_id, match.min_dnorm);
  }
  for (const Interval& iv : match.solution_interval) {
    std::printf(" [%zu, %zu)", iv.begin, iv.end);
  }
  std::printf("\n");
}

int RunQuery(const Flags& flags) {
  auto setup = PrepareQuery(flags);
  if (!setup.has_value()) return 1;
  const double epsilon = flags.GetDouble("eps", 0.1);
  const bool filter_only = flags.Has("filter-only");
  const size_t max_rows = flags.GetSize("max_rows", 20);

  SimilaritySearch engine(&setup->database);
  const SearchResult result =
      filter_only ? engine.Search(setup->query.View(), epsilon)
                  : engine.SearchVerified(setup->query.View(), epsilon);
  std::printf("query: %zu points, eps %.4f%s\n", setup->query.size(),
              epsilon, filter_only ? " (filter only, no verification)" : "");
  std::printf("candidates after Dmbr: %zu; %s: %zu\n",
              result.candidates.size(),
              filter_only ? "after Dnorm" : "verified matches",
              result.matches.size());
  for (size_t i = 0; i < result.matches.size() && i < max_rows; ++i) {
    PrintMatch(result.matches[i], !filter_only);
  }
  if (result.matches.size() > max_rows) {
    std::printf("  ... %zu more (raise --max_rows)\n",
                result.matches.size() - max_rows);
  }
  return 0;
}

int RunBuildDb(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  if (corpus->empty()) {
    std::fprintf(stderr, "builddb: corpus is empty\n");
    return 2;
  }
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "builddb: --out is required\n");
    return 2;
  }
  SequenceDatabase database(corpus->front().dim());
  for (const Sequence& s : *corpus) database.Add(s);
  if (!DiskDatabase::Save(database, out)) {
    std::fprintf(stderr, "builddb: failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote disk database: %zu sequences, %zu points, %zu MBRs "
              "-> %s\n",
              database.num_sequences(), database.total_points(),
              database.total_mbrs(), out.c_str());
  return 0;
}

int RunQueryDb(const Flags& flags) {
  const std::string db_path = flags.GetString("db", "");
  const std::string query_path = flags.GetString("query", "");
  if (db_path.empty() || query_path.empty()) {
    std::fprintf(stderr, "querydb: --db and --query are required\n");
    return 2;
  }
  DiskDatabase database(db_path, flags.GetSize("pool", 256));
  if (!database.valid()) {
    std::fprintf(stderr, "querydb: failed to open %s\n", db_path.c_str());
    return 1;
  }
  auto query = ReadSequenceCsv(query_path);
  if (!query.has_value() || query->dim() != database.dim()) {
    std::fprintf(stderr, "querydb: bad query CSV (need dimension %zu)\n",
                 database.dim());
    return 1;
  }
  const double epsilon = flags.GetDouble("eps", 0.1);
  const bool filter_only = flags.Has("filter-only");
  const size_t max_rows = flags.GetSize("max_rows", 20);

  database.mutable_pool()->ResetStats();
  const SearchResult result =
      filter_only ? database.Search(query->View(), epsilon)
                  : database.SearchVerified(query->View(), epsilon);
  std::printf("query: %zu points, eps %.4f over %zu sequences on disk\n",
              query->size(), epsilon, database.num_sequences());
  std::printf("candidates after Dmbr: %zu; %s: %zu\n",
              result.candidates.size(),
              filter_only ? "after Dnorm" : "verified matches",
              result.matches.size());
  for (size_t i = 0; i < result.matches.size() && i < max_rows; ++i) {
    PrintMatch(result.matches[i], !filter_only);
  }
  std::printf("page I/O: %llu misses (real reads), %llu pool hits\n",
              static_cast<unsigned long long>(database.pool().misses()),
              static_cast<unsigned long long>(database.pool().hits()));
  return 0;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

// Atomic replace: write to a sibling temp file, then rename over the
// target. A tailer or scraper reading `path` concurrently sees either the
// previous snapshot or the new one in full — never a torn write.
bool WriteTextFileAtomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  if (!WriteTextFile(tmp, text)) return false;
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

// explain: run one query with tracing on and print the per-phase report.
// Works against an in-memory corpus (--corpus) or a disk database (--db).
int RunExplain(const Flags& flags) {
  const std::string corpus_path = flags.GetString("corpus", "");
  const std::string db_path = flags.GetString("db", "");
  if (corpus_path.empty() == db_path.empty()) {
    std::fprintf(stderr,
                 "explain: exactly one of --corpus / --db is required\n");
    return 2;
  }
  const std::string query_path = flags.GetString("query", "");
  if (query_path.empty()) {
    std::fprintf(stderr, "explain: --query=<csv> is required\n");
    return 2;
  }
  auto query = ReadSequenceCsv(query_path);
  if (!query.has_value()) {
    std::fprintf(stderr, "explain: failed to read query CSV %s\n",
                 query_path.c_str());
    return 1;
  }
  const double epsilon = flags.GetDouble("eps", 0.1);
  const bool verified = flags.Has("verified");
  const bool disk = !db_path.empty();
  const size_t num_shards = flags.GetSize("shards", 0);
  if (num_shards > 0 && disk) {
    std::fprintf(stderr, "explain: --shards requires --corpus\n");
    return 2;
  }
  PlacementPolicy placement_policy = PlacementPolicy::kHash;
  const std::string placement_name = flags.GetString("placement", "hash");
  if (!ParsePlacementPolicy(placement_name.c_str(), &placement_policy)) {
    std::fprintf(stderr, "explain: unknown --placement=%s\n",
                 placement_name.c_str());
    return 2;
  }

  obs::Trace trace;
  trace.set_query_id(1);
  SearchControl control;
  control.trace = &trace;

  SearchResult result;
  size_t database_sequences = 0;
  size_t dim = 0;
  if (!disk) {
    auto corpus = ReadSequences(corpus_path);
    if (!corpus.has_value() || corpus->empty()) {
      std::fprintf(stderr, "explain: failed to read corpus %s\n",
                   corpus_path.c_str());
      return 1;
    }
    dim = corpus->front().dim();
    if (query->dim() != dim) {
      std::fprintf(stderr, "explain: query dimension %zu != corpus %zu\n",
                   query->dim(), dim);
      return 1;
    }
    SequenceDatabase database(dim);
    for (const Sequence& s : *corpus) database.Add(s);
    database_sequences = database.num_sequences();
    if (num_shards > 0) {
      // Sharded explain: the same corpus split over in-memory shards and
      // queried through the coordinator, so the report shows the fan-out
      // summary and the per-shard cascade, and the trace carries every
      // shard's stitched spans.
      const std::unique_ptr<ShardSet> shard_set =
          ShardSet::BuildInMemory(database, num_shards, placement_policy);
      LoopbackTransport transport(shard_set->nodes());
      const Coordinator coordinator(&transport, shard_set->placement());
      obs::SpanScope query_span(control.trace, "query");
      result = verified
                   ? coordinator.SearchVerified(query->View(), epsilon,
                                                control)
                   : coordinator.Search(query->View(), epsilon, control);
    } else {
      SimilaritySearch engine(&database);
      obs::SpanScope query_span(control.trace, "query");
      result = verified
                   ? engine.SearchVerified(query->View(), epsilon, control)
                   : engine.Search(query->View(), epsilon, control);
    }
  } else {
    DiskDatabase database(db_path, flags.GetSize("pool", 256));
    if (!database.valid()) {
      std::fprintf(stderr, "explain: failed to open %s\n", db_path.c_str());
      return 1;
    }
    dim = database.dim();
    if (query->dim() != dim) {
      std::fprintf(stderr, "explain: query dimension %zu != database %zu\n",
                   query->dim(), dim);
      return 1;
    }
    database_sequences = database.num_sequences();
    obs::SpanScope query_span(control.trace, "query");
    result = verified
                 ? database.SearchVerified(query->View(), epsilon, control)
                 : database.Search(query->View(), epsilon, control);
  }

  const obs::ExplainStats stats =
      ToExplainStats(result, query->size(), dim, epsilon, verified, disk,
                     database_sequences);
  if (flags.Has("json")) {
    std::printf("%s\n", obs::ExplainJson(stats).c_str());
  } else {
    std::printf("%s", obs::RenderExplainReport(stats).c_str());
  }

  const std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) {
    std::vector<obs::Trace> traces;
    traces.push_back(std::move(trace));
    if (!WriteTextFile(trace_out, obs::ChromeTraceJson(traces))) {
      std::fprintf(stderr, "explain: failed to write %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("trace: %zu spans -> %s\n", traces.front().spans().size(),
                trace_out.c_str());
  }
  return 0;
}

// ingest: stream a corpus into a live database through the WAL-backed
// write path, reporting acknowledged throughput and fsync economics.
int RunIngest(const Flags& flags) {
  const std::string db_path = flags.GetString("db", "");
  if (db_path.empty()) {
    std::fprintf(stderr, "ingest: --db is required\n");
    return 2;
  }
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  if (corpus->empty()) {
    std::fprintf(stderr, "ingest: corpus is empty\n");
    return 2;
  }
  const size_t dim = corpus->front().dim();
  if (flags.Has("create") && !LiveDatabase::Create(db_path, dim)) {
    std::fprintf(stderr, "ingest: failed to create %s\n", db_path.c_str());
    return 1;
  }
  LiveDatabaseOptions options;
  options.pool_pages = flags.GetSize("pool", 256);
  LiveDatabase database(db_path, options);
  if (!database.valid()) {
    std::fprintf(stderr,
                 "ingest: failed to open %s (missing? pass --create; torn "
                 "WAL headers are rejected)\n",
                 db_path.c_str());
    return 1;
  }
  if (database.dim() != dim) {
    std::fprintf(stderr, "ingest: corpus dimension %zu != database %zu\n",
                 dim, database.dim());
    return 2;
  }
  const size_t commit_every = flags.GetSize("commit-every", 8);
  const size_t checkpoint_every = flags.GetSize("checkpoint-every", 0);

  const auto start = std::chrono::steady_clock::now();
  size_t points = 0;
  size_t since_commit = 0;
  for (size_t i = 0; i < corpus->size(); ++i) {
    const Sequence& s = (*corpus)[i];
    if (s.dim() != dim) {
      std::fprintf(stderr, "ingest: sequence %zu has dimension %zu\n", i,
                   s.dim());
      return 1;
    }
    const uint64_t id = database.BeginSequence();
    if (!database.AppendPoints(id, s.View()) ||
        !database.SealSequence(id)) {
      std::fprintf(stderr, "ingest: append/seal failed for sequence %zu\n",
                   i);
      return 1;
    }
    points += s.size();
    if (++since_commit >= commit_every) {
      if (!database.Commit()) {
        std::fprintf(stderr, "ingest: commit failed at sequence %zu\n", i);
        return 1;
      }
      since_commit = 0;
    }
    if (checkpoint_every > 0 && (i + 1) % checkpoint_every == 0 &&
        !database.Checkpoint()) {
      std::fprintf(stderr, "ingest: checkpoint failed at sequence %zu\n", i);
      return 1;
    }
  }
  if (!database.Commit()) {
    std::fprintf(stderr, "ingest: final commit failed\n");
    return 1;
  }
  if (!flags.Has("no-checkpoint") && !database.Checkpoint()) {
    std::fprintf(stderr, "ingest: final checkpoint failed\n");
    return 1;
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  const IngestStatus status = database.Status();
  std::printf("ingested  : %zu sequences, %zu points -> %s\n",
              corpus->size(), points, db_path.c_str());
  std::printf("throughput: %.0f points/s (%.3f s acknowledged)\n",
              static_cast<double>(points) / elapsed_s, elapsed_s);
  std::printf("wal       : %llu records, %llu commits, %llu fsyncs "
              "(%.2f fsyncs/commit), %llu bytes\n",
              static_cast<unsigned long long>(status.wal_records),
              static_cast<unsigned long long>(status.wal_commits),
              static_cast<unsigned long long>(status.wal_fsyncs),
              status.wal_commits > 0
                  ? static_cast<double>(status.wal_fsyncs) /
                        static_cast<double>(status.wal_commits)
                  : 0.0,
              static_cast<unsigned long long>(status.wal_bytes));
  std::printf("checkpoint: %llu run(s), last %.3f s; %llu base + %llu "
              "pending sequences, %llu file pages\n",
              static_cast<unsigned long long>(status.checkpoints),
              status.last_checkpoint_seconds,
              static_cast<unsigned long long>(status.base_sequences),
              static_cast<unsigned long long>(status.pending_sequences),
              static_cast<unsigned long long>(status.file_pages));
  return 0;
}

// shard-build: split a corpus into an on-disk shard set — one disk
// database per shard plus a manifest recording the placement — ready to
// be served by the scatter-gather coordinator.
int RunShardBuild(const Flags& flags) {
  const auto corpus = LoadCorpus(flags);
  if (!corpus.has_value()) return 1;
  if (corpus->empty()) {
    std::fprintf(stderr, "shard-build: corpus is empty\n");
    return 2;
  }
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "shard-build: --out=<dir> is required\n");
    return 2;
  }
  const size_t shards = flags.GetSize("shards", 2);
  if (shards == 0) {
    std::fprintf(stderr, "shard-build: --shards must be >= 1\n");
    return 2;
  }
  const std::string placement_name = flags.GetString("placement", "hash");
  PlacementPolicy policy;
  if (!ParsePlacementPolicy(placement_name.c_str(), &policy)) {
    std::fprintf(stderr, "shard-build: unknown --placement=%s\n",
                 placement_name.c_str());
    return 2;
  }
  ::mkdir(out.c_str(), 0755);  // fine if it already exists

  SequenceDatabase database(corpus->front().dim());
  for (const Sequence& s : *corpus) database.Add(s);
  if (!ShardSet::BuildOnDisk(database, out, shards, policy)) {
    std::fprintf(stderr, "shard-build: failed to write shard set to %s\n",
                 out.c_str());
    return 1;
  }
  const std::unique_ptr<ShardPlacement> placement =
      ShardPlacement::Build(database.num_sequences(), shards, policy);
  std::printf("wrote shard set: %zu sequences over %zu shard(s), "
              "%s placement -> %s\n",
              database.num_sequences(), shards, placement_name.c_str(),
              out.c_str());
  for (size_t i = 0; i < shards; ++i) {
    std::printf("  shard %zu: %zu sequence(s)\n", i,
                placement->shard_size(static_cast<uint32_t>(i)));
  }
  return 0;
}

// Parses an on/off knob flag; leaves *value untouched when absent.
bool ParseOnOff(const Flags& flags, const char* name, const char* command,
                bool* value, bool* ok) {
  const std::string text = flags.GetString(name, "");
  if (text.empty()) return true;
  if (text == "on") {
    *value = true;
  } else if (text == "off") {
    *value = false;
  } else {
    std::fprintf(stderr, "%s: --%s must be on or off (got %s)\n", command,
                 name, text.c_str());
    *ok = false;
    return false;
  }
  return true;
}

void PrintReplayDiff(const ReplayDiff& diff, size_t max_rows) {
  std::printf("diff      : %llu compared, %llu unmatched; divergences: "
              "%llu outcome, %llu digest, %llu counter -> %s\n",
              static_cast<unsigned long long>(diff.compared),
              static_cast<unsigned long long>(diff.unmatched),
              static_cast<unsigned long long>(diff.outcome_divergences),
              static_cast<unsigned long long>(diff.digest_divergences),
              static_cast<unsigned long long>(diff.counter_divergences),
              diff.clean() ? "CLEAN" : "DIVERGED");
  size_t shown = 0;
  for (const ReplayDivergence& d : diff.divergences) {
    if (shown++ >= max_rows) {
      std::printf("  ... %zu more diverging quer(ies) (raise --max_rows)\n",
                  diff.divergences.size() - max_rows);
      break;
    }
    std::printf("  query %llu: outcome %s -> %s",
                static_cast<unsigned long long>(d.id), d.outcome_a,
                d.outcome_b);
    if (d.digest_differs) {
      std::printf(", digest %016llx -> %016llx (%llu vs %llu matches)",
                  static_cast<unsigned long long>(d.digest_a),
                  static_cast<unsigned long long>(d.digest_b),
                  static_cast<unsigned long long>(d.matches_a),
                  static_cast<unsigned long long>(d.matches_b));
    }
    if (!d.diverging_shards.empty()) {
      std::printf(", shards");
      for (const uint32_t shard : d.diverging_shards) {
        std::printf(" %u", shard);
      }
    }
    std::printf("\n");
    for (const std::string& row : d.counter_diffs) {
      std::printf("    %s\n", row.c_str());
    }
  }
}

bool WriteWorkloadLogFile(const std::string& path,
                          const std::vector<WorkloadQueryRecord>& records) {
  std::remove(path.c_str());  // start a fresh log, not an append
  obs::WorkloadLogWriter writer;
  if (!writer.Open(path)) return false;
  for (const WorkloadQueryRecord& record : records) {
    const std::vector<uint8_t> payload = EncodeWorkloadRecord(record);
    if (!writer.Append(kWorkloadQueryFrame, payload.data(),
                       payload.size())) {
      return false;
    }
  }
  writer.Close();
  return true;
}

// replay: re-execute a recorded workload log against a build (in-memory,
// disk, or sharded) and diff the run against the recording — or, with
// --diff, compare two recordings offline without executing anything.
int RunReplayCmd(const Flags& flags) {
  const std::string log_path = flags.GetString("log", "");
  if (log_path.empty()) {
    std::fprintf(stderr, "replay: --log=<workload log> is required\n");
    return 2;
  }
  const WorkloadReadResult recording = ReadWorkloadRecords(log_path);
  if (recording.records.empty()) {
    std::fprintf(stderr, "replay: no records in %s%s\n", log_path.c_str(),
                 recording.clean ? "" : " (torn or corrupt log)");
    return 1;
  }
  std::printf("recording : %zu record(s) from %s%s%s\n",
              recording.records.size(), log_path.c_str(),
              recording.clean ? "" : " (torn tail dropped)",
              recording.skipped > 0 ? " (unknown frames skipped)" : "");
  const size_t max_rows = flags.GetSize("max_rows", 20);
  const std::string json_out = flags.GetString("json-out", "");

  const std::string diff_path = flags.GetString("diff", "");
  if (!diff_path.empty()) {
    // Offline mode: compare two logs record-by-record, no execution.
    const WorkloadReadResult other = ReadWorkloadRecords(diff_path);
    if (other.records.empty()) {
      std::fprintf(stderr, "replay: no records in %s\n", diff_path.c_str());
      return 1;
    }
    std::printf("against   : %zu record(s) from %s\n", other.records.size(),
                diff_path.c_str());
    const ReplayDiff diff =
        DiffWorkloads(recording.records, other.records);
    PrintReplayDiff(diff, max_rows);
    if (!json_out.empty() &&
        !WriteTextFile(json_out, ReplayDiffJson(diff))) {
      std::fprintf(stderr, "replay: failed to write %s\n", json_out.c_str());
      return 1;
    }
    return 0;
  }

  const std::string corpus_path = flags.GetString("corpus", "");
  const std::string db_path = flags.GetString("db", "");
  if (corpus_path.empty() == db_path.empty()) {
    std::fprintf(stderr,
                 "replay: exactly one of --corpus / --db is required "
                 "(or --diff for offline mode)\n");
    return 2;
  }
  const size_t num_shards = flags.GetSize("shards", 0);
  if (num_shards > 0 && corpus_path.empty()) {
    std::fprintf(stderr, "replay: --shards requires --corpus\n");
    return 2;
  }
  PlacementPolicy placement_policy = PlacementPolicy::kHash;
  const std::string placement_name = flags.GetString("placement", "hash");
  if (!ParsePlacementPolicy(placement_name.c_str(), &placement_policy)) {
    std::fprintf(stderr, "replay: unknown --placement=%s\n",
                 placement_name.c_str());
    return 2;
  }

  ReplayOptions replay_options;
  const std::string pace = flags.GetString("pace", "max");
  if (pace == "max") {
    replay_options.pace = ReplayOptions::Pace::kMax;
  } else if (pace == "recorded") {
    replay_options.pace = ReplayOptions::Pace::kRecorded;
  } else {
    std::fprintf(stderr, "replay: unknown --pace=%s\n", pace.c_str());
    return 2;
  }
  replay_options.speed = flags.GetDouble("speed", 1.0);
  if (replay_options.speed <= 0) {
    std::fprintf(stderr, "replay: --speed must be > 0\n");
    return 2;
  }
  replay_options.apply_deadlines = flags.Has("apply-deadlines");

  EngineOptions options;
  options.num_threads = flags.GetSize("threads", 0);
  options.queue_capacity = flags.GetSize("queue", 1024);
  bool knobs_ok = true;
  ParseOnOff(flags, "prefilter", "replay", &options.search.prefilter,
             &knobs_ok);
  ParseOnOff(flags, "composite", "replay", &options.search.composite_bound,
             &knobs_ok);
  if (!knobs_ok) return 2;

  // Build the replay target the same way serve-bench does.
  std::unique_ptr<SequenceDatabase> memory_database;
  std::unique_ptr<DiskDatabase> disk_database;
  std::unique_ptr<ShardSet> shard_set;
  std::unique_ptr<LoopbackTransport> shard_transport;
  std::unique_ptr<Coordinator> coordinator;
  if (!corpus_path.empty()) {
    auto loaded = ReadSequences(corpus_path);
    if (!loaded.has_value() || loaded->empty()) {
      std::fprintf(stderr, "replay: failed to read corpus %s\n",
                   corpus_path.c_str());
      return 1;
    }
    if (num_shards > 0) {
      SequenceDatabase full(loaded->front().dim());
      for (const Sequence& s : *loaded) full.Add(s);
      // The knob flags must reach the shard nodes too: each shard runs its
      // own SimilaritySearch with the options it was built with.
      shard_set = ShardSet::BuildInMemory(full, num_shards,
                                          placement_policy, options.search);
      shard_transport =
          std::make_unique<LoopbackTransport>(shard_set->nodes());
      coordinator = std::make_unique<Coordinator>(shard_transport.get(),
                                                  shard_set->placement());
    } else {
      memory_database =
          std::make_unique<SequenceDatabase>(loaded->front().dim());
      for (const Sequence& s : *loaded) memory_database->Add(s);
    }
  } else {
    disk_database = std::make_unique<DiskDatabase>(
        db_path, flags.GetSize("pool", 256));
    if (!disk_database->valid()) {
      std::fprintf(stderr, "replay: failed to open %s\n", db_path.c_str());
      return 1;
    }
  }

  std::unique_ptr<QueryEngine> engine;
  if (coordinator != nullptr) {
    engine = std::make_unique<QueryEngine>(coordinator.get(), options);
  } else if (memory_database != nullptr) {
    engine = std::make_unique<QueryEngine>(memory_database.get(), options);
  } else {
    engine = std::make_unique<QueryEngine>(disk_database.get(), options);
  }

  const ReplayReport report =
      RunReplay(engine.get(), recording.records, replay_options);
  engine->Shutdown();
  std::printf("replayed  : %llu quer(ies), %llu ok, %.3f s (%s pace) "
              "-> %.0f queries/s\n",
              static_cast<unsigned long long>(report.replayed),
              static_cast<unsigned long long>(report.ok),
              report.wall_seconds, pace.c_str(),
              report.wall_seconds > 0
                  ? static_cast<double>(report.replayed) /
                        report.wall_seconds
                  : 0.0);

  const ReplayDiff diff = DiffWorkloads(recording.records, report.records);
  PrintReplayDiff(diff, max_rows);

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    if (!WriteWorkloadLogFile(out, report.records)) {
      std::fprintf(stderr, "replay: failed to write %s\n", out.c_str());
      return 1;
    }
    std::printf("replay log: %zu record(s) -> %s\n", report.records.size(),
                out.c_str());
  }
  if (!json_out.empty() && !WriteTextFile(json_out, ReplayDiffJson(diff))) {
    std::fprintf(stderr, "replay: failed to write %s\n", json_out.c_str());
    return 1;
  }
  return 0;
}

// serve-bench: N client threads submit batches of drawn queries into the
// concurrent engine; reports QPS and the engine counters. Works against an
// in-memory corpus (--corpus) or a disk database (--db). With
// --ingest-rate a background writer ingests into the (live-opened)
// database while the clients query it.
int RunServeBench(const Flags& flags) {
  const std::string corpus_path = flags.GetString("corpus", "");
  const std::string db_path = flags.GetString("db", "");
  if (corpus_path.empty() == db_path.empty()) {
    std::fprintf(stderr,
                 "serve-bench: exactly one of --corpus / --db is required\n");
    return 2;
  }
  const size_t ingest_rate = flags.GetSize("ingest-rate", 0);
  if (ingest_rate > 0 && db_path.empty()) {
    std::fprintf(stderr, "serve-bench: --ingest-rate requires --db\n");
    return 2;
  }
  const size_t num_shards = flags.GetSize("shards", 0);
  if (num_shards > 0 && corpus_path.empty()) {
    std::fprintf(stderr, "serve-bench: --shards requires --corpus\n");
    return 2;
  }
  PlacementPolicy placement_policy = PlacementPolicy::kHash;
  const std::string placement_name = flags.GetString("placement", "hash");
  if (!ParsePlacementPolicy(placement_name.c_str(), &placement_policy)) {
    std::fprintf(stderr, "serve-bench: unknown --placement=%s\n",
                 placement_name.c_str());
    return 2;
  }
  CoordinatorOptions coordinator_options;
  const std::string failure = flags.GetString("shard-failure", "failfast");
  if (failure == "failfast") {
    coordinator_options.failure = CoordinatorOptions::FailurePolicy::kFailFast;
  } else if (failure == "degraded") {
    coordinator_options.failure = CoordinatorOptions::FailurePolicy::kDegraded;
  } else {
    std::fprintf(stderr, "serve-bench: unknown --shard-failure=%s\n",
                 failure.c_str());
    return 2;
  }

  EngineOptions options;
  options.num_threads = flags.GetSize("threads", 0);
  options.queue_capacity = flags.GetSize("queue", 1024);
  if (options.queue_capacity == 0) {
    std::fprintf(stderr, "serve-bench: --queue must be >= 1\n");
    return 2;
  }
  const std::string policy = flags.GetString("policy", "block");
  if (policy == "block") {
    options.policy = OverloadPolicy::kBlock;
  } else if (policy == "reject") {
    options.policy = OverloadPolicy::kReject;
  } else if (policy == "shed") {
    options.policy = OverloadPolicy::kShedOldest;
  } else {
    std::fprintf(stderr, "serve-bench: unknown --policy=%s\n",
                 policy.c_str());
    return 2;
  }

  // Serving QoS subsystem knobs: result cache, approximate tier, and
  // per-tenant admission classes (docs/serving.md).
  options.cache_bytes = flags.GetSize("cache-bytes", 0);
  options.search.max_candidates = flags.GetSize("approx-budget", 0);
  const std::string tenant_mix = flags.GetString("tenant-mix", "");
  size_t num_tenants = flags.GetSize("tenants", 0);
  if (!tenant_mix.empty()) {
    // "4,2,1" = three classes with weights 4, 2, 1 (overrides --tenants).
    std::vector<TenantClassSpec> classes;
    size_t pos = 0;
    while (pos <= tenant_mix.size()) {
      size_t comma = tenant_mix.find(',', pos);
      if (comma == std::string::npos) comma = tenant_mix.size();
      const std::string token = tenant_mix.substr(pos, comma - pos);
      char* end = nullptr;
      const unsigned long weight = std::strtoul(token.c_str(), &end, 10);
      if (token.empty() || end == nullptr || *end != '\0' || weight == 0) {
        std::fprintf(stderr,
                     "serve-bench: --tenant-mix wants comma-separated "
                     "positive weights, got %s\n",
                     tenant_mix.c_str());
        return 2;
      }
      TenantClassSpec spec;
      spec.name = "t" + std::to_string(classes.size());
      spec.weight = static_cast<uint32_t>(weight);
      classes.push_back(std::move(spec));
      pos = comma + 1;
    }
    options.tenant_classes = std::move(classes);
  } else if (num_tenants > 0) {
    for (size_t i = 0; i < num_tenants; ++i) {
      TenantClassSpec spec;
      spec.name = "t" + std::to_string(i);
      spec.weight = 1;
      options.tenant_classes.push_back(std::move(spec));
    }
  }
  const size_t num_classes = options.tenant_classes.size();

  QueryOptions query_options;
  query_options.epsilon = flags.GetDouble("eps", 0.1);
  query_options.verified = flags.Has("verified");
  const size_t deadline_ms = flags.GetSize("deadline_ms", 0);
  if (deadline_ms > 0) {
    query_options.deadline = std::chrono::milliseconds(deadline_ms);
  }

  const std::string log_level = flags.GetString("log-level", "");
  if (!log_level.empty()) {
    obs::LogLevel level;
    if (!obs::ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr, "serve-bench: unknown --log-level=%s\n",
                   log_level.c_str());
      return 2;
    }
    obs::Logger::Global().SetLevel(level);
  }

  const bool listen = flags.Has("listen");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string metrics_json = flags.GetString("metrics-json", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  obs::MetricsRegistry registry;
  if (listen || !metrics_out.empty() || !metrics_json.empty()) {
    options.metrics = &registry;
  }
  if (listen) {
    // 0 binds an ephemeral port; the actual one is printed below.
    options.listen_port = static_cast<int>(flags.GetSize("listen", 0));
    if (options.listen_port > 65535) {
      std::fprintf(stderr, "serve-bench: --listen must be <= 65535\n");
      return 2;
    }
  }
  const size_t slow_ms = flags.GetSize("slow_ms", 0);
  if (slow_ms > 0) {
    options.slow_query_threshold = std::chrono::milliseconds(slow_ms);
  }
  if (!trace_out.empty() || listen) {
    options.trace_capacity = flags.GetSize("trace-cap", 4096);
  }
  const std::string record_path = flags.GetString("record", "");
  if (!record_path.empty()) {
    options.workload_log_path = record_path;
    options.workload_sample_every =
        flags.GetSize("record-sample-every", 1);
    options.workload_max_bytes =
        flags.GetSize("record-max-bytes", 64ull << 20);
    if (options.workload_sample_every == 0) {
      std::fprintf(stderr,
                   "serve-bench: --record-sample-every must be >= 1\n");
      return 2;
    }
  }

  // The query set is drawn from the stored sequences either way; for a
  // disk database the raw sequences are read back through the pool first.
  std::vector<Sequence> corpus;
  std::unique_ptr<SequenceDatabase> memory_database;
  std::unique_ptr<DiskDatabase> disk_database;
  std::unique_ptr<LiveDatabase> live_database;
  // Sharded serving (--shards): the engine is declared after these, so it
  // shuts down before the coordinator, transport, and shards tear down.
  std::unique_ptr<ShardSet> shard_set;
  std::unique_ptr<LoopbackTransport> shard_transport;
  std::unique_ptr<Coordinator> coordinator;
  if (ingest_rate > 0) {
    LiveDatabaseOptions live_options;
    live_options.pool_pages = flags.GetSize("pool", 256);
    live_database = std::make_unique<LiveDatabase>(db_path, live_options);
    if (!live_database->valid()) {
      std::fprintf(stderr, "serve-bench: failed to open %s live\n",
                   db_path.c_str());
      return 1;
    }
    corpus.reserve(live_database->num_sequences());
    for (size_t id = 0; id < live_database->num_sequences(); ++id) {
      auto sequence = live_database->ReadSequence(id);
      if (!sequence.has_value()) {
        std::fprintf(stderr, "serve-bench: failed to read sequence %zu\n",
                     id);
        return 1;
      }
      corpus.push_back(std::move(*sequence));
    }
    if (corpus.empty()) {
      std::fprintf(stderr, "serve-bench: database %s is empty\n",
                   db_path.c_str());
      return 1;
    }
  } else if (!corpus_path.empty()) {
    auto loaded = ReadSequences(corpus_path);
    if (!loaded.has_value() || loaded->empty()) {
      std::fprintf(stderr, "serve-bench: failed to read corpus %s\n",
                   corpus_path.c_str());
      return 1;
    }
    corpus = std::move(*loaded);
    if (num_shards > 0) {
      SequenceDatabase full(corpus.front().dim());
      for (const Sequence& s : corpus) full.Add(s);
      // Shard nodes run with the engine's SearchOptions so an
      // --approx-budget is enforced shard-side too.
      shard_set = ShardSet::BuildInMemory(full, num_shards, placement_policy,
                                          options.search);
      shard_transport =
          std::make_unique<LoopbackTransport>(shard_set->nodes());
      coordinator = std::make_unique<Coordinator>(shard_transport.get(),
                                                  shard_set->placement(),
                                                  coordinator_options);
    } else {
      memory_database =
          std::make_unique<SequenceDatabase>(corpus.front().dim());
      for (const Sequence& s : corpus) memory_database->Add(s);
    }
  } else {
    disk_database = std::make_unique<DiskDatabase>(
        db_path, flags.GetSize("pool", 256));
    if (!disk_database->valid()) {
      std::fprintf(stderr, "serve-bench: failed to open %s\n",
                   db_path.c_str());
      return 1;
    }
    corpus.reserve(disk_database->num_sequences());
    for (size_t id = 0; id < disk_database->num_sequences(); ++id) {
      auto sequence = disk_database->ReadSequence(id);
      if (!sequence.has_value()) {
        std::fprintf(stderr, "serve-bench: failed to read sequence %zu\n",
                     id);
        return 1;
      }
      corpus.push_back(std::move(*sequence));
    }
  }

  const size_t clients = flags.GetSize("clients", 4);
  const size_t queries_per_client = flags.GetSize("queries", 64);
  QueryWorkloadOptions workload;
  workload.min_length = flags.GetSize("min_qlen", 32);
  workload.max_length = flags.GetSize("max_qlen", 128);
  Rng rng(flags.GetSize("seed", 42));
  std::vector<std::vector<Sequence>> per_client(clients);
  for (size_t c = 0; c < clients; ++c) {
    per_client[c] = DrawQueries(corpus, queries_per_client, workload, &rng);
  }

  std::unique_ptr<QueryEngine> engine;
  if (coordinator != nullptr) {
    engine = std::make_unique<QueryEngine>(coordinator.get(), options);
  } else if (live_database != nullptr) {
    engine = std::make_unique<QueryEngine>(live_database.get(), options);
  } else if (memory_database != nullptr) {
    engine = std::make_unique<QueryEngine>(memory_database.get(), options);
  } else {
    engine = std::make_unique<QueryEngine>(disk_database.get(), options);
  }
  if (listen) {
    if (engine->introspection_port() < 0) {
      std::fprintf(stderr, "serve-bench: failed to bind --listen port %d\n",
                   options.listen_port);
      return 1;
    }
    std::printf("listening : http://127.0.0.1:%d  "
                "(/metrics /healthz /debug/active /debug/cancel "
                "/debug/slow /debug/trace%s%s%s%s%s)\n",
                engine->introspection_port(),
                ingest_rate > 0 ? " /debug/ingest" : "",
                coordinator != nullptr ? " /debug/shards" : "",
                record_path.empty() ? "" : " /debug/workload",
                options.cache_bytes > 0 ? " /debug/cache" : "",
                num_classes > 0 ? " /debug/tenants" : "");
    std::fflush(stdout);
  }

  // Periodic metrics exposition while the bench runs: the registry is
  // snapshotted every 500 ms (what a Prometheus scraper would see), with a
  // guaranteed final snapshot after the workload drains. Snapshots are
  // written via temp-file + rename so a concurrent reader never sees a
  // torn file.
  std::mutex snapshot_mutex;
  std::condition_variable snapshot_cv;
  bool snapshot_stop = false;
  std::thread snapshot_thread;
  if (!metrics_out.empty()) {
    snapshot_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(snapshot_mutex);
      while (!snapshot_stop) {
        snapshot_cv.wait_for(lock, std::chrono::milliseconds(500));
        WriteTextFileAtomic(metrics_out, registry.PrometheusText());
      }
    });
  }

  // Background writer (read-while-write): sealed random-walk sequences of
  // workload length are submitted as ingest batches, paced to the target
  // point rate. Each batch's future is awaited, so `ingest_points` counts
  // only durable (acknowledged) points.
  std::atomic<bool> ingest_stop{false};
  std::thread ingest_thread;
  uint64_t ingest_points = 0;
  uint64_t ingest_batches = 0;
  uint64_t ingest_rejected = 0;
  const size_t ingest_checkpoint_every =
      flags.GetSize("ingest-checkpoint-every", 0);

  const auto start = std::chrono::steady_clock::now();
  if (ingest_rate > 0) {
    ingest_thread = std::thread([&] {
      Rng ingest_rng(flags.GetSize("seed", 42) + 0x9e3779b9u);
      WalkOptions walk;
      walk.dim = corpus.front().dim();
      uint64_t sent_points = 0;
      while (!ingest_stop.load(std::memory_order_acquire)) {
        const size_t length = static_cast<size_t>(ingest_rng.UniformInt(
            static_cast<int64_t>(workload.min_length),
            static_cast<int64_t>(workload.max_length)));
        IngestBatch batch;
        IngestOp op;
        op.points = GenerateRandomWalk(length, walk, &ingest_rng);
        op.seal = true;
        batch.ops.push_back(std::move(op));
        batch.checkpoint =
            ingest_checkpoint_every > 0 &&
            (ingest_batches + 1) % ingest_checkpoint_every == 0;
        IngestOutcome outcome = engine->SubmitIngest(std::move(batch)).get();
        if (outcome.rejected) {
          ++ingest_rejected;
        } else {
          ++ingest_batches;
          ingest_points += outcome.points;
        }
        sent_points += length;
        // Pace to the target: sleep until the point budget catches up.
        const double target_elapsed =
            static_cast<double>(sent_points) /
            static_cast<double>(ingest_rate);
        const double actual_elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (target_elapsed > actual_elapsed) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              target_elapsed - actual_elapsed));
        }
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      QueryOptions client_options = query_options;
      if (num_classes > 0) {
        // Round-robin clients over the admission classes.
        client_options.tenant = static_cast<uint32_t>(c % num_classes);
      }
      auto futures =
          engine->SubmitBatch(std::move(per_client[c]), client_options);
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : threads) t.join();
  if (ingest_thread.joinable()) {
    ingest_stop.store(true, std::memory_order_release);
    ingest_thread.join();
  }

  if (snapshot_thread.joinable()) {
    {
      std::lock_guard<std::mutex> lock(snapshot_mutex);
      snapshot_stop = true;
    }
    snapshot_cv.notify_all();
    snapshot_thread.join();
    if (!WriteTextFileAtomic(metrics_out, registry.PrometheusText())) {
      std::fprintf(stderr, "serve-bench: failed to write %s\n",
                   metrics_out.c_str());
      return 1;
    }
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  const EngineStats stats = engine->stats();
  const uint64_t total = clients * queries_per_client;
  std::printf("serve-bench: %zu sequences, %zu client(s) x %zu queries, "
              "%zu worker(s), queue %zu (%s)\n",
              corpus.size(), clients, queries_per_client,
              engine->num_threads(), options.queue_capacity,
              policy.c_str());
  std::printf("elapsed   : %.3f s  (%.0f queries/s end-to-end)\n",
              elapsed_s, static_cast<double>(total) / elapsed_s);
  std::printf("outcomes  : %llu served, %llu rejected, %llu shed, "
              "%llu deadline-expired, %llu cancelled\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.deadline_expired),
              static_cast<unsigned long long>(stats.cancelled));
  std::printf("latency   : p50 %llu us, p99 %llu us, max %llu us, "
              "mean %.0f us\n",
              static_cast<unsigned long long>(stats.p50_latency_us),
              static_cast<unsigned long long>(stats.p99_latency_us),
              static_cast<unsigned long long>(stats.max_latency_us),
              stats.mean_latency_us);
  std::printf("work      : %llu node accesses, %llu Dnorm evaluations, "
              "%llu phase-2 candidates, %llu phase-3 matches\n",
              static_cast<unsigned long long>(stats.node_accesses),
              static_cast<unsigned long long>(stats.dnorm_evaluations),
              static_cast<unsigned long long>(stats.phase2_candidates),
              static_cast<unsigned long long>(stats.phase3_matches));
  std::printf("phases    : partition %.1f ms, first pruning %.1f ms, "
              "second pruning %.1f ms, verify %.1f ms (summed over "
              "queries)\n",
              static_cast<double>(stats.partition_ns) / 1e6,
              static_cast<double>(stats.first_pruning_ns) / 1e6,
              static_cast<double>(stats.second_pruning_ns) / 1e6,
              static_cast<double>(stats.verify_ns) / 1e6);
  if (coordinator != nullptr) {
    // Coordinator phase breakdown: time blocked on the slowest shard per
    // fan-out vs time merging shard results, summed over queries. The
    // shard-side phase totals above already include all shards' work.
    std::printf("shards    : %zu shard(s), %s placement, %s policy; "
                "fan-out wait %.1f ms, merge %.1f ms (summed over "
                "queries)\n",
                coordinator->num_shards(), placement_name.c_str(),
                FailurePolicyName(coordinator_options.failure),
                static_cast<double>(stats.fanout_wait_ns) / 1e6,
                static_cast<double>(stats.merge_ns) / 1e6);
  }
  if (num_classes > 0) {
    for (const TenantClassStats& c : engine->TenantStats()) {
      std::printf("tenant %-4s: weight %u, quota %llu; %llu submitted, "
                  "%llu served, %llu shed, %llu rejected\n",
                  c.name.c_str(), c.weight,
                  static_cast<unsigned long long>(c.quota),
                  static_cast<unsigned long long>(c.submitted),
                  static_cast<unsigned long long>(c.popped),
                  static_cast<unsigned long long>(c.shed),
                  static_cast<unsigned long long>(c.rejected));
    }
  }
  if (engine->result_cache() != nullptr) {
    const ResultCache::Stats cache = engine->result_cache()->GetStats();
    std::printf("cache     : %llu hits, %llu misses, %llu insertions, "
                "%llu evictions, %llu invalidations, %llu single-flight "
                "waits; %zu entries, %zu / %zu bytes\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.insertions),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(cache.invalidations),
                static_cast<unsigned long long>(cache.singleflight_waits),
                cache.entries, cache.bytes,
                engine->result_cache()->capacity_bytes());
  }
  if (options.search.max_candidates > 0) {
    std::printf("approx    : budget %llu candidates/query\n",
                static_cast<unsigned long long>(
                    options.search.max_candidates));
  }
  if (ingest_rate > 0) {
    const IngestStatus ingest_status = live_database->Status();
    std::printf("ingest    : %llu points in %llu batch(es) (%llu rejected) "
                "-> %.0f points/s acknowledged (target %zu)\n",
                static_cast<unsigned long long>(ingest_points),
                static_cast<unsigned long long>(ingest_batches),
                static_cast<unsigned long long>(ingest_rejected),
                static_cast<double>(ingest_points) / elapsed_s, ingest_rate);
    std::printf("wal       : %llu fsyncs, %llu commits, %llu checkpoint(s), "
                "%llu pending sequences\n",
                static_cast<unsigned long long>(ingest_status.wal_fsyncs),
                static_cast<unsigned long long>(ingest_status.wal_commits),
                static_cast<unsigned long long>(ingest_status.checkpoints),
                static_cast<unsigned long long>(
                    ingest_status.pending_sequences));
  }

  if (!metrics_out.empty()) {
    std::printf("metrics   : Prometheus text -> %s\n", metrics_out.c_str());
  }
  if (!metrics_json.empty()) {
    if (!WriteTextFile(metrics_json, registry.JsonText())) {
      std::fprintf(stderr, "serve-bench: failed to write %s\n",
                   metrics_json.c_str());
      return 1;
    }
    std::printf("metrics   : JSON -> %s\n", metrics_json.c_str());
  }
  if (!trace_out.empty()) {
    const std::vector<obs::Trace> traces = engine->TakeTraces();
    if (!WriteTextFile(trace_out, obs::ChromeTraceJson(traces))) {
      std::fprintf(stderr, "serve-bench: failed to write %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("traces    : %zu kept (%llu dropped) -> %s\n", traces.size(),
                static_cast<unsigned long long>(stats.traces_dropped),
                trace_out.c_str());
  }

  if (!record_path.empty()) {
    const WorkloadRecorder* recorder = engine->workload_recorder();
    if (recorder == nullptr || !recorder->ok()) {
      std::fprintf(stderr, "serve-bench: failed to open --record=%s\n",
                   record_path.c_str());
      return 1;
    }
    std::printf("recorded  : %llu record(s), %llu bytes (%llu sampled out, "
                "%llu rotation(s)) -> %s\n",
                static_cast<unsigned long long>(recorder->records_written()),
                static_cast<unsigned long long>(recorder->bytes_written()),
                static_cast<unsigned long long>(recorder->sampled_out()),
                static_cast<unsigned long long>(recorder->rotations()),
                record_path.c_str());
  }

  // --linger_s keeps the engine (and its introspection server) alive after
  // the workload drains, so the endpoints can be probed manually.
  const size_t linger_s = flags.GetSize("linger_s", 0);
  if (linger_s > 0 && listen) {
    std::printf("linger    : serving introspection for %zu s\n", linger_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_s));
  }
  // Drain the worker pool before any teardown (databases, registry,
  // lingering server state): without this, a query still in flight when
  // linger elapsed would race the destructors — the source of
  // nondeterministic TSan CLI smoke failures.
  engine->Shutdown();
  return 0;
}

int RunTopk(const Flags& flags) {
  auto setup = PrepareQuery(flags);
  if (!setup.has_value()) return 1;
  const size_t k = flags.GetSize("k", 5);
  SimilaritySearch engine(&setup->database);
  const std::vector<SequenceMatch> nearest =
      engine.SearchNearest(setup->query.View(), k);
  std::printf("top-%zu nearest sequences:\n", k);
  for (const SequenceMatch& match : nearest) PrintMatch(match, true);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc - 1, argv + 1);
  if (command == "gen") return RunGen(flags);
  if (command == "info") return RunInfo(flags);
  if (command == "export") return RunExport(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "topk") return RunTopk(flags);
  if (command == "builddb") return RunBuildDb(flags);
  if (command == "querydb") return RunQueryDb(flags);
  if (command == "explain") return RunExplain(flags);
  if (command == "ingest") return RunIngest(flags);
  if (command == "shard-build") return RunShardBuild(flags);
  if (command == "replay") return RunReplayCmd(flags);
  if (command == "serve-bench") return RunServeBench(flags);
  return Usage();
}
