#include "ingest/wal.h"

#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace mdseq {

namespace {

// Frame header: crc u32 | length u32 | type u8.
constexpr size_t kFrameHeader = 9;
// Sanity bound on a single record; anything larger is treated as a torn
// frame (the writer never produces records near this size).
constexpr uint32_t kMaxRecordBytes = 1u << 30;

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      entries[i] = crc;
    }
    return entries;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  const size_t at = out->size();
  out->resize(at + sizeof(value));
  std::memcpy(out->data() + at, &value, sizeof(value));
}

uint32_t ReadU32(const uint8_t* at) {
  uint32_t value = 0;
  std::memcpy(&value, at, sizeof(value));
  return value;
}

}  // namespace

uint32_t WalCrc32(const void* bytes, size_t count) {
  const uint32_t* table = Crc32Table();
  const uint8_t* at = static_cast<const uint8_t*>(bytes);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < count; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ at[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

bool WalWriter::Create(const std::string& path) {
  pending_.clear();
  records_ = 0;
  commits_ = 0;
  bytes_committed_ = 0;
  return file_.Create(path);
}

bool WalWriter::OpenExisting(const std::string& path) {
  pending_.clear();
  records_ = 0;
  commits_ = 0;
  bytes_committed_ = 0;
  return file_.Open(path);
}

bool WalWriter::Append(WalRecordType type, const void* payload,
                       size_t bytes) {
  if (!file_.is_open()) return false;
  MDSEQ_CHECK(bytes > 0);  // zero-length frames are the padding sentinel
  MDSEQ_CHECK(bytes < kMaxRecordBytes);
  // Frame body (length | type | payload) first, so the crc can cover it.
  std::vector<uint8_t> body;
  body.reserve(sizeof(uint32_t) + 1 + bytes);
  PutU32(&body, static_cast<uint32_t>(bytes));
  body.push_back(static_cast<uint8_t>(type));
  const size_t at = body.size();
  body.resize(at + bytes);
  std::memcpy(body.data() + at, payload, bytes);

  PutU32(&pending_, WalCrc32(body.data(), body.size()));
  pending_.insert(pending_.end(), body.begin(), body.end());
  ++records_;
  return true;
}

bool WalWriter::Commit() {
  if (!file_.is_open()) return false;
  if (pending_.empty()) return true;
  const uint64_t payload_bytes = pending_.size();
  // Pad to a page multiple: every commit occupies freshly allocated whole
  // pages, so a torn write can never reach back into acknowledged pages.
  const size_t padded =
      (pending_.size() + kPageSize - 1) / kPageSize * kPageSize;
  pending_.resize(padded, 0);
  Page page;
  for (size_t at = 0; at < padded; at += kPageSize) {
    const PageId id = file_.Allocate();
    if (id == kInvalidPageId) {
      pending_.resize(payload_bytes);
      return false;
    }
    std::memcpy(page.data, pending_.data() + at, kPageSize);
    if (!file_.Write(id, page)) {
      pending_.resize(payload_bytes);
      return false;
    }
  }
  if (!file_.Sync()) {
    pending_.resize(payload_bytes);
    return false;
  }
  pending_.clear();
  ++commits_;
  bytes_committed_ += payload_bytes;
  return true;
}

WalScanResult WalScan(const std::string& path) {
  WalScanResult result;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    result.ok = true;  // no log: nothing to replay
    return result;
  }
  std::vector<uint8_t> bytes;
  {
    if (std::fseek(file, 0, SEEK_END) != 0) {
      std::fclose(file);
      return result;
    }
    const long size = std::ftell(file);
    if (size < 0 || std::fseek(file, 0, SEEK_SET) != 0) {
      std::fclose(file);
      return result;
    }
    bytes.resize(static_cast<size_t>(size));
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
      std::fclose(file);
      return result;
    }
  }
  std::fclose(file);

  // The header page must carry the page-file magic; the stored page count
  // is stale by design (see WalWriter) and is ignored — the log is sized
  // by the raw file length.
  constexpr char kMagic[8] = {'M', 'D', 'S', 'Q', 'P', 'A', 'G', 'E'};
  if (bytes.size() < kPageSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return result;  // torn or foreign header: refuse
  }
  result.ok = true;

  const uint8_t* data = bytes.data() + kPageSize;
  const size_t size = bytes.size() - kPageSize;
  size_t offset = 0;
  while (true) {
    const size_t page_room = kPageSize - offset % kPageSize;
    if (page_room < kFrameHeader) {
      offset += page_room;  // a frame header never straddles this sliver
      continue;
    }
    if (offset + kFrameHeader > size) {
      for (size_t i = offset; i < size; ++i) {
        if (data[i] != 0) {
          result.truncated_tail = true;
          break;
        }
      }
      break;
    }
    const uint32_t crc = ReadU32(data + offset);
    const uint32_t length = ReadU32(data + offset + 4);
    if (crc == 0 && length == 0) {
      if (offset % kPageSize == 0) break;  // untouched page: end of log
      offset += page_room;  // tail padding of a commit
      continue;
    }
    if (length == 0 || length >= kMaxRecordBytes ||
        offset + kFrameHeader + length > size) {
      result.truncated_tail = true;
      break;
    }
    const uint8_t* body = data + offset + 4;
    if (WalCrc32(body, sizeof(uint32_t) + 1 + length) != crc) {
      result.truncated_tail = true;
      break;
    }
    const uint8_t type = body[4];
    if (type < static_cast<uint8_t>(WalRecordType::kBeginSequence) ||
        type > static_cast<uint8_t>(WalRecordType::kIndexedPieces)) {
      result.truncated_tail = true;
      break;
    }
    WalRecord record;
    record.type = static_cast<WalRecordType>(type);
    record.payload.assign(body + 5, body + 5 + length);
    result.records.push_back(std::move(record));
    offset += kFrameHeader + length;
  }
  result.bytes_scanned = offset;
  return result;
}

}  // namespace mdseq
