#ifndef MDSEQ_INGEST_WAL_H_
#define MDSEQ_INGEST_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/page_file.h"

namespace mdseq {

/// Record types of the ingest write-ahead log.
enum class WalRecordType : uint8_t {
  /// A new sequence was opened: payload `u64 id | u64 dim`.
  kBeginSequence = 1,
  /// Points arrived: payload `u64 id | u64 dim | u64 count | count*dim f64`.
  kAppendPoints = 2,
  /// The sequence is complete: payload `u64 id`.
  kSealSequence = 3,
  /// Replay hint written when the WAL is rewritten (checkpoint/recovery):
  /// the first `pieces` sealed pieces of sequence `id` are already present
  /// in the persisted index, so replay must not re-insert them. Payload
  /// `u64 id | u64 pieces`.
  kIndexedPieces = 4,
};

/// One decoded WAL record.
struct WalRecord {
  WalRecordType type;
  std::vector<uint8_t> payload;
};

/// Result of scanning a WAL file back from disk.
struct WalScanResult {
  /// False when the file exists but is not a page file with WAL framing
  /// (e.g. a torn header) — the caller must refuse to open rather than
  /// silently ignore it.
  bool ok = false;
  /// True when the scan ended at a CRC mismatch or a half-written frame
  /// (the expected state after a crash mid-commit; the torn tail was never
  /// acknowledged, so stopping there is correct).
  bool truncated_tail = false;
  std::vector<WalRecord> records;
  uint64_t bytes_scanned = 0;
};

/// CRC-32 (reflected, polynomial 0xEDB88320) over `bytes`; the checksum
/// guarding every WAL frame. Exposed for tests.
uint32_t WalCrc32(const void* bytes, size_t count);

/// Append-only write-ahead log over a `PageFile`.
///
/// Frame format, packed back to back in the data pages:
///   u32 crc | u32 length | u8 type | length bytes payload
/// where `crc` covers `length | type | payload`. A frame header whose
/// crc and length are both zero is tail padding: the reader skips to the
/// next page boundary. Frames may span pages within one commit.
///
/// `Commit()` is the group-commit boundary: all records appended since the
/// previous commit are written to freshly allocated pages (a commit always
/// starts on a page boundary, so a torn write can only damage records of
/// the in-flight — unacknowledged — commit), then a single `Sync()` makes
/// them durable. Only after `Commit` returns are the records acknowledged.
///
/// The `PageFile` header is deliberately never rewritten after `Create`
/// (its page count is stale on disk); recovery sizes the log from the raw
/// file length instead, so no per-commit header write can tear the log.
class WalWriter {
 public:
  /// Creates (truncating) the log at `path`. Returns false on I/O failure.
  bool Create(const std::string& path);

  /// Re-attaches to a cleanly closed log to continue appending — used
  /// after the checkpoint rewrite renames a fresh log into place. Counters
  /// restart at zero.
  bool OpenExisting(const std::string& path);

  /// Buffers one record for the next commit. Returns false when the log
  /// is not open.
  bool Append(WalRecordType type, const void* payload, size_t bytes);

  /// Writes and fsyncs all buffered records (one fsync per call — the
  /// group commit). A commit with no buffered records is a no-op. Returns
  /// false on I/O failure; buffered records are kept for retry.
  bool Commit();

  void Close() { file_.Close(); }
  bool is_open() const { return file_.is_open(); }

  /// Records appended (buffered or committed) since `Create`.
  uint64_t records() const { return records_; }
  /// Successful `Commit` calls that reached the disk.
  uint64_t commits() const { return commits_; }
  /// Fsyncs issued (== commits(); separate for clarity at call sites).
  uint64_t fsyncs() const { return file_.syncs(); }
  /// Committed log payload bytes (frame headers included, padding not).
  uint64_t bytes_committed() const { return bytes_committed_; }
  /// Data pages the log occupies.
  uint64_t pages() const { return file_.page_count(); }

 private:
  PageFile file_;
  std::vector<uint8_t> pending_;
  uint64_t records_ = 0;
  uint64_t commits_ = 0;
  uint64_t bytes_committed_ = 0;
};

/// Scans a WAL file written by `WalWriter`, returning every record of
/// every fully durable commit prefix. Reads the raw file (not the page
/// file header, whose page count is stale by design) and stops cleanly at
/// the first torn frame. A missing file yields `ok == true` with no
/// records (an empty log).
WalScanResult WalScan(const std::string& path);

}  // namespace mdseq

#endif  // MDSEQ_INGEST_WAL_H_
