#include "ingest/live_database.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/database.h"
#include "core/distance.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "storage/disk_format.h"
#include "storage/page_stream.h"
#include "util/check.h"

namespace mdseq {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedNs(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - start)
          .count());
}

void PutU64(std::vector<uint8_t>* out, uint64_t value) {
  const size_t at = out->size();
  out->resize(at + sizeof(value));
  std::memcpy(out->data() + at, &value, sizeof(value));
}

// Cursor over a WAL record payload; `ok` latches false on short reads so
// a malformed record is skipped instead of crashing recovery.
struct PayloadReader {
  const std::vector<uint8_t>& bytes;
  size_t at = 0;
  bool ok = true;

  uint64_t U64() {
    uint64_t value = 0;
    if (at + sizeof(value) > bytes.size()) {
      ok = false;
      return 0;
    }
    std::memcpy(&value, bytes.data() + at, sizeof(value));
    at += sizeof(value);
    return value;
  }
  bool Doubles(double* out, size_t count) {
    const size_t want = count * sizeof(double);
    if (at + want > bytes.size()) {
      ok = false;
      return false;
    }
    std::memcpy(out, bytes.data() + at, want);
    at += want;
    return true;
  }
};

}  // namespace

bool LiveDatabase::Create(const std::string& path, size_t dim,
                          const PartitioningOptions& partitioning) {
  MDSEQ_CHECK(dim > 0);
  // A stale log from a previous database at this path must not be
  // replayed into the fresh one.
  std::remove((path + ".wal").c_str());

  PageFile file;
  if (!file.Create(path)) return false;
  const PageId master_page = file.Allocate();
  if (master_page == kInvalidPageId) return false;
  const PageId store_meta =
      SequenceStore::WriteInto(std::vector<Sequence>(), &file);
  if (store_meta == kInvalidPageId) return false;
  PageStreamWriter partitions(&file);
  if (!partitions.Finish()) return false;
  const PageId index_root =
      PagedRTree::BuildInto(dim, std::vector<IndexEntry>(), &file);
  if (index_root == kInvalidPageId) return false;

  Page master;
  std::memset(master.data, 0, kPageSize);
  diskfmt::MasterLayout layout;
  std::memset(&layout, 0, sizeof(layout));
  layout.dim = dim;
  layout.sequence_count = 0;
  layout.store_meta_page = store_meta;
  layout.index_root_page = index_root;
  layout.partitions_first_page = partitions.first_page();
  layout.partitions_page_count = partitions.page_count();
  layout.side_growth = partitioning.side_growth;
  layout.max_points = partitioning.max_points;
  layout.cost_model = static_cast<uint8_t>(partitioning.cost_model);
  std::memcpy(master.data, &layout, sizeof(layout));
  if (!file.Write(master_page, master)) return false;
  if (!file.set_root_hint(master_page)) return false;
  return file.Sync();
}

LiveDatabase::LiveDatabase(const std::string& path,
                           const LiveDatabaseOptions& options)
    : wal_path_(path + ".wal"), options_(options.search) {
  if (!file_.Open(path)) return;
  pool_ = std::make_unique<BufferPool>(&file_, options.pool_pages);

  const PageId master_page = file_.root_hint();
  if (master_page == kInvalidPageId) return;
  diskfmt::MasterLayout layout;
  {
    PageHandle master = pool_->Fetch(master_page);
    if (!master.valid()) return;
    std::memcpy(&layout, master.page().data, sizeof(layout));
  }
  dim_ = static_cast<size_t>(layout.dim);
  if (dim_ == 0) return;
  partitioning_.side_growth = layout.side_growth;
  partitioning_.max_points = static_cast<size_t>(layout.max_points);
  partitioning_.cost_model =
      static_cast<PartitioningOptions::CostModel>(layout.cost_model);

  auto base = std::make_shared<BaseState>();
  base->store =
      std::make_unique<SequenceStore>(pool_.get(), layout.store_meta_page);
  if (!base->store->valid() ||
      base->store->size() != layout.sequence_count) {
    return;
  }
  base->partitions.resize(layout.sequence_count);
  base->lengths.resize(layout.sequence_count);
  PageStreamReader reader(pool_.get(), layout.partitions_first_page, 0);
  for (uint64_t id = 0; id < layout.sequence_count; ++id) {
    if (!diskfmt::ReadPartition(&reader, dim_, &base->partitions[id])) {
      return;
    }
    base->lengths[id] =
        base->partitions[id].empty() ? 0 : base->partitions[id].back().end;
  }
  base_ = std::move(base);
  base_count_ = layout.sequence_count;
  next_id_ = base_count_;

  tree_ = std::make_unique<PagedRTree>(dim_, pool_.get(),
                                       layout.index_root_page);
  if (!tree_->valid()) return;

  // Replay the WAL tail over the checkpoint. A torn log *header* rejects
  // the open; a torn tail is the normal crash shape — everything before
  // the tear was acknowledged and is recovered, the tear itself never was.
  const WalScanResult scan = WalScan(wal_path_);
  if (!scan.ok) return;
  for (const WalRecord& record : scan.records) {
    PayloadReader in{record.payload};
    switch (record.type) {
      case WalRecordType::kBeginSequence: {
        const uint64_t id = in.U64();
        const uint64_t rdim = in.U64();
        if (!in.ok || id < base_count_) break;
        if (rdim != dim_) return;  // foreign log: refuse
        pending_.emplace(id, PendingSeq(dim_, partitioning_));
        next_id_ = std::max(next_id_, id + 1);
        break;
      }
      case WalRecordType::kAppendPoints: {
        const uint64_t id = in.U64();
        const uint64_t rdim = in.U64();
        const uint64_t count = in.U64();
        if (!in.ok || id < base_count_) break;
        if (rdim != dim_) return;
        auto it = pending_.find(id);
        if (it == pending_.end()) break;
        std::vector<double> point(dim_);
        for (uint64_t i = 0; i < count; ++i) {
          if (!in.Doubles(point.data(), dim_)) break;
          const PointView p(point.data(), dim_);
          it->second.data.Append(p);
          if (std::optional<SequenceMbr> piece =
                  it->second.partitioner.Add(p)) {
            it->second.sealed.push_back(*piece);
          }
        }
        break;
      }
      case WalRecordType::kSealSequence: {
        const uint64_t id = in.U64();
        if (!in.ok || id < base_count_) break;
        auto it = pending_.find(id);
        if (it == pending_.end()) break;
        if (std::optional<SequenceMbr> tail =
                it->second.partitioner.Finish()) {
          it->second.sealed.push_back(*tail);
        }
        it->second.sealed_done = true;
        break;
      }
      case WalRecordType::kIndexedPieces: {
        const uint64_t id = in.U64();
        const uint64_t pieces = in.U64();
        if (!in.ok || id < base_count_) break;
        auto it = pending_.find(id);
        if (it == pending_.end()) break;
        it->second.tree_pieces =
            std::min(static_cast<size_t>(pieces), it->second.sealed.size());
        break;
      }
    }
  }
  recovered_records_.store(scan.records.size(), std::memory_order_relaxed);
  uint64_t recovered_points = 0;
  for (auto& [id, seq] : pending_) {
    recovered_points += seq.data.size();
    // Pieces beyond the kIndexedPieces hint were sealed after the last
    // checkpoint; the persisted root predates them, so re-insert.
    if (!IndexSealedLocked(id, &seq)) return;
  }
  points_total_.store(recovered_points, std::memory_order_relaxed);

  // Re-found the log on the recovered state (also creates it on first
  // open) so replay work is not repeated next time.
  if (!RewriteWalLocked()) return;
  PublishLocked();
  valid_ = true;

  if (!scan.records.empty() || scan.truncated_tail) {
    obs::Logger::Global()
        .Info("wal_recovered")
        .U64("records", scan.records.size())
        .U64("pending_sequences", pending_.size())
        .U64("points", recovered_points)
        .Bool("truncated_tail", scan.truncated_tail);
  }
}

LiveDatabase::~LiveDatabase() {
  // Uncheckpointed state stays in the WAL; the next open replays it. Only
  // push dirty pages out so the file matches the last checkpoint barrier.
  if (pool_ != nullptr) pool_->Flush();
}

uint64_t LiveDatabase::BeginSequence() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  MDSEQ_CHECK(valid_);
  const uint64_t id = next_id_++;
  std::vector<uint8_t> payload;
  PutU64(&payload, id);
  PutU64(&payload, dim_);
  wal_.Append(WalRecordType::kBeginSequence, payload.data(), payload.size());
  wal_records_.fetch_add(1, std::memory_order_relaxed);
  pending_.emplace(id, PendingSeq(dim_, partitioning_));
  return id;
}

bool LiveDatabase::AppendPoints(uint64_t sequence_id, SequenceView span) {
  if (span.empty()) return true;
  if (span.dim() != dim_) return false;  // caller data, not an invariant
  std::lock_guard<std::mutex> lock(writer_mutex_);
  MDSEQ_CHECK(valid_);
  auto it = pending_.find(sequence_id);
  if (it == pending_.end() || it->second.sealed_done) return false;
  PendingSeq& seq = it->second;

  std::vector<uint8_t> payload;
  payload.reserve(24 + span.size() * dim_ * sizeof(double));
  PutU64(&payload, sequence_id);
  PutU64(&payload, dim_);
  PutU64(&payload, span.size());
  const size_t at = payload.size();
  payload.resize(at + span.size() * dim_ * sizeof(double));
  std::memcpy(payload.data() + at, &span[0][0],
              span.size() * dim_ * sizeof(double));
  if (!wal_.Append(WalRecordType::kAppendPoints, payload.data(),
                   payload.size())) {
    return false;
  }
  wal_records_.fetch_add(1, std::memory_order_relaxed);

  for (size_t i = 0; i < span.size(); ++i) {
    seq.data.Append(span[i]);
    if (std::optional<SequenceMbr> piece = seq.partitioner.Add(span[i])) {
      seq.sealed.push_back(*piece);
    }
  }
  seq.dirty = true;
  points_total_.fetch_add(span.size(), std::memory_order_relaxed);
  return IndexSealedLocked(sequence_id, &seq);
}

bool LiveDatabase::SealSequence(uint64_t sequence_id) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  MDSEQ_CHECK(valid_);
  auto it = pending_.find(sequence_id);
  if (it == pending_.end() || it->second.sealed_done) return false;
  PendingSeq& seq = it->second;

  std::vector<uint8_t> payload;
  PutU64(&payload, sequence_id);
  if (!wal_.Append(WalRecordType::kSealSequence, payload.data(),
                   payload.size())) {
    return false;
  }
  wal_records_.fetch_add(1, std::memory_order_relaxed);

  if (std::optional<SequenceMbr> tail = seq.partitioner.Finish()) {
    seq.sealed.push_back(*tail);
  }
  seq.sealed_done = true;
  seq.dirty = true;
  return IndexSealedLocked(sequence_id, &seq);
}

bool LiveDatabase::IndexSealedLocked(uint64_t id, PendingSeq* seq) {
  while (seq->tree_pieces < seq->sealed.size()) {
    const size_t ordinal = seq->tree_pieces;
    if (!tree_->InsertCow(seq->sealed[ordinal].mbr,
                          SequenceDatabase::PackEntry(
                              static_cast<size_t>(id), ordinal),
                          &file_, &retired_batch_, &free_pages_)) {
      return false;
    }
    ++seq->tree_pieces;
    tree_inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  free_count_.store(free_pages_.size(), std::memory_order_relaxed);
  return true;
}

bool LiveDatabase::Commit() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  MDSEQ_CHECK(valid_);
  const uint64_t before = wal_.bytes_committed();
  if (!wal_.Commit()) return false;
  if (wal_.bytes_committed() > before) {
    wal_commits_.fetch_add(1, std::memory_order_relaxed);
    wal_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    wal_bytes_.fetch_add(wal_.bytes_committed() - before,
                         std::memory_order_relaxed);
  }
  wal_pages_.store(wal_.pages(), std::memory_order_relaxed);
  PublishLocked();
  return true;
}

void LiveDatabase::PublishLocked() {
  std::shared_ptr<const Snapshot> prev = CurrentSnapshot();
  auto snap = std::make_shared<Snapshot>();
  snap->base = base_;
  snap->root = tree_->root();
  snap->sequence_count = next_id_;
  snap->pending.reserve(pending_.size());
  for (auto& [id, seq] : pending_) {
    if (!seq.dirty && prev != nullptr) {
      if (const PendingView* old = FindPending(*prev, id)) {
        snap->pending.push_back(*old);
        continue;
      }
    }
    PendingView view;
    view.id = id;
    if (!seq.data.empty()) {
      view.data = std::make_shared<const Sequence>(seq.data);
    }
    view.partition = seq.sealed;
    if (std::optional<SequenceMbr> partial = seq.partitioner.Partial()) {
      view.partition.push_back(*partial);
    }
    view.length = seq.data.size();
    view.sealed = seq.sealed_done;
    view.tree_pieces = seq.tree_pieces;
    snap->pending.push_back(std::move(view));
    seq.dirty = false;
  }
  epochs_.Retire(std::move(retired_batch_));
  retired_batch_.clear();
  snap->pin = epochs_.PinCurrent();
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = std::move(snap);
  }
  // Bump after the swap: a cache stamp is captured before its query
  // executes, so the stamp can never run ahead of the data it describes.
  snapshot_version_.fetch_add(1, std::memory_order_acq_rel);
}

bool LiveDatabase::RewriteWalLocked() {
  // Build the replacement log beside the live one and rename it into
  // place, so a crash mid-rewrite leaves the old (complete) log intact.
  const std::string fresh_path = wal_path_ + ".new";
  WalWriter fresh;
  if (!fresh.Create(fresh_path)) return false;
  for (const auto& [id, seq] : pending_) {
    std::vector<uint8_t> payload;
    PutU64(&payload, id);
    PutU64(&payload, dim_);
    if (!fresh.Append(WalRecordType::kBeginSequence, payload.data(),
                      payload.size())) {
      return false;
    }
    if (!seq.data.empty()) {
      payload.clear();
      PutU64(&payload, id);
      PutU64(&payload, dim_);
      PutU64(&payload, seq.data.size());
      const size_t at = payload.size();
      payload.resize(at + seq.data.data().size() * sizeof(double));
      std::memcpy(payload.data() + at, seq.data.data().data(),
                  seq.data.data().size() * sizeof(double));
      if (!fresh.Append(WalRecordType::kAppendPoints, payload.data(),
                        payload.size())) {
        return false;
      }
    }
    if (seq.sealed_done) {
      payload.clear();
      PutU64(&payload, id);
      if (!fresh.Append(WalRecordType::kSealSequence, payload.data(),
                        payload.size())) {
        return false;
      }
    }
    if (seq.tree_pieces > 0) {
      payload.clear();
      PutU64(&payload, id);
      PutU64(&payload, seq.tree_pieces);
      if (!fresh.Append(WalRecordType::kIndexedPieces, payload.data(),
                        payload.size())) {
        return false;
      }
    }
  }
  if (!fresh.Commit()) return false;
  fresh.Close();
  wal_.Close();
  if (std::rename(fresh_path.c_str(), wal_path_.c_str()) != 0) return false;
  if (!wal_.OpenExisting(wal_path_)) return false;
  wal_pages_.store(wal_.pages(), std::memory_order_relaxed);
  return true;
}

bool LiveDatabase::Checkpoint() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  MDSEQ_CHECK(valid_);
  const auto start = SteadyClock::now();

  // Make the tail durable first; the fold below must not outrun the log.
  const uint64_t before = wal_.bytes_committed();
  if (!wal_.Commit()) return false;
  if (wal_.bytes_committed() > before) {
    wal_commits_.fetch_add(1, std::memory_order_relaxed);
    wal_fsyncs_.fetch_add(1, std::memory_order_relaxed);
    wal_bytes_.fetch_add(wal_.bytes_committed() - before,
                         std::memory_order_relaxed);
  }

  // Fold the maximal sealed prefix so ids stay dense and stable: a sealed
  // sequence behind an unsealed gap waits for the gap to seal.
  uint64_t fold_end = base_count_;
  while (true) {
    auto it = pending_.find(fold_end);
    if (it == pending_.end() || !it->second.sealed_done) break;
    ++fold_end;
  }

  std::vector<Sequence> corpus;
  std::vector<Partition> partitions;
  corpus.reserve(fold_end);
  partitions.reserve(fold_end);
  for (uint64_t id = 0; id < base_count_; ++id) {
    std::optional<Sequence> seq = base_->store->Read(id);
    if (!seq.has_value()) return false;
    corpus.push_back(std::move(*seq));
    partitions.push_back(base_->partitions[id]);
  }
  for (uint64_t id = base_count_; id < fold_end; ++id) {
    const PendingSeq& seq = pending_.at(id);
    corpus.push_back(seq.data);
    partitions.push_back(seq.sealed);
  }

  // New store + partition segments (old regions become garbage; the file
  // is append-mostly and space is reclaimed by copying the database).
  const PageId store_meta = SequenceStore::WriteInto(corpus, &file_);
  if (store_meta == kInvalidPageId) return false;
  PageStreamWriter partition_stream(&file_);
  for (const Partition& partition : partitions) {
    if (!diskfmt::AppendPartition(&partition_stream, partition, dim_)) {
      return false;
    }
  }
  if (!partition_stream.Finish()) return false;

  // Durability barrier for every dirty index page and the new segments,
  // then the master flip — the checkpoint's single commit point.
  if (!pool_->Flush()) return false;
  if (!file_.Sync()) return false;
  const PageId master_page = file_.Allocate();
  if (master_page == kInvalidPageId) return false;
  Page master;
  std::memset(master.data, 0, kPageSize);
  diskfmt::MasterLayout layout;
  std::memset(&layout, 0, sizeof(layout));
  layout.dim = dim_;
  layout.sequence_count = fold_end;
  layout.store_meta_page = store_meta;
  layout.index_root_page = tree_->root();
  layout.partitions_first_page = partition_stream.first_page();
  layout.partitions_page_count = partition_stream.page_count();
  layout.side_growth = partitioning_.side_growth;
  layout.max_points = partitioning_.max_points;
  layout.cost_model = static_cast<uint8_t>(partitioning_.cost_model);
  std::memcpy(master.data, &layout, sizeof(layout));
  if (!file_.Write(master_page, master)) return false;
  if (!file_.Sync()) return false;
  if (!file_.set_root_hint(master_page)) return false;
  if (!file_.Sync()) return false;

  // Swap in the new base and drop the folded pending sequences.
  auto base = std::make_shared<BaseState>();
  base->store = std::make_unique<SequenceStore>(pool_.get(), store_meta);
  if (!base->store->valid()) return false;
  base->lengths.reserve(partitions.size());
  for (const Partition& partition : partitions) {
    base->lengths.push_back(partition.empty() ? 0 : partition.back().end);
  }
  base->partitions = std::move(partitions);
  base_ = std::move(base);
  base_count_ = fold_end;
  pending_.erase(pending_.begin(), pending_.lower_bound(fold_end));

  // Truncate the log to the surviving tail.
  if (!RewriteWalLocked()) return false;

  // Recycle copy-on-write pages that are both reader-drained and
  // superseded before this (now durable) checkpoint.
  std::vector<PageId> reclaimed = epochs_.DrainReclaimable();
  free_pages_.insert(free_pages_.end(), reclaimed.begin(), reclaimed.end());
  free_count_.store(free_pages_.size(), std::memory_order_relaxed);

  PublishLocked();
  const uint64_t elapsed_us = ElapsedNs(start) / 1000;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_us_.store(elapsed_us, std::memory_order_relaxed);
  obs::Logger::Global()
      .Info("checkpoint")
      .U64("folded_sequences", fold_end)
      .U64("pending_sequences", pending_.size())
      .U64("reclaimed_pages", reclaimed.size())
      .U64("elapsed_us", elapsed_us);
  return true;
}

std::shared_ptr<const LiveDatabase::Snapshot> LiveDatabase::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

const LiveDatabase::PendingView* LiveDatabase::FindPending(
    const Snapshot& snap, uint64_t id) const {
  auto it = std::lower_bound(
      snap.pending.begin(), snap.pending.end(), id,
      [](const PendingView& view, uint64_t key) { return view.id < key; });
  if (it == snap.pending.end() || it->id != id) return nullptr;
  return &*it;
}

SearchResult LiveDatabase::Search(SequenceView query, double epsilon,
                                  const SearchControl& control) const {
  MDSEQ_CHECK(valid_);
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.dim() == dim_);
  MDSEQ_CHECK(epsilon >= 0.0);

  const std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  MDSEQ_CHECK(snap != nullptr);
  const BaseState& base = *snap->base;
  SearchResult result;

  // Phase 1: query partitioning with the stored options.
  control.SetPhase(SearchPhase::kPartition);
  Partition query_partition;
  {
    obs::SpanScope span(control.trace, "partition");
    const auto start = SteadyClock::now();
    query_partition = PartitionSequence(query, partitioning_);
    result.stats.partition_ns += ElapsedNs(start);
    result.stats.query_mbrs = query_partition.size();
    span.Arg("query_mbrs", query_partition.size());
  }

  // Phase 2: one batched index descent against the snapshot's root, plus
  // a linear probe of the overlay pieces the snapshot has not indexed
  // (the open partial piece of each pending sequence, and any sealed
  // piece whose insert was published after this snapshot).
  control.SetPhase(SearchPhase::kFirstPruning);
  std::vector<double> candidate_min_dist2;
  {
    obs::SpanScope span(control.trace, "first_pruning");
    const auto start = SteadyClock::now();
    std::vector<Mbr> queries;
    queries.reserve(query_partition.size());
    for (const SequenceMbr& piece : query_partition) {
      queries.push_back(piece.mbr);
    }
    std::vector<std::vector<SpatialIndex::BatchHit>> hits;
    {
      obs::SpanScope search_span(control.trace, "range_search");
      const PagedRTree tree(dim_, pool_.get(), snap->root);
      tree.RangeSearchBatch(queries, epsilon, &hits,
                            &result.stats.node_accesses,
                            &result.stats.page_misses);
      search_span.Arg("probes", queries.size());
      search_span.Arg("node_visits", result.stats.node_accesses);
      search_span.Arg("pool_misses", result.stats.page_misses);
    }
    result.stats.page_hits =
        result.stats.node_accesses - result.stats.page_misses;
    std::vector<std::pair<size_t, double>> scored;
    for (const auto& per_query : hits) {
      for (const SpatialIndex::BatchHit& hit : per_query) {
        scored.emplace_back(SequenceDatabase::UnpackSequenceId(hit.value),
                            hit.dist2);
      }
    }
    const double eps2 = epsilon * epsilon;
    for (const PendingView& view : snap->pending) {
      for (size_t ordinal = view.tree_pieces;
           ordinal < view.partition.size(); ++ordinal) {
        const Mbr& box = view.partition[ordinal].mbr;
        for (const Mbr& probe : queries) {
          const double d2 = probe.MinDist2(box);
          if (d2 <= eps2) {
            scored.emplace_back(static_cast<size_t>(view.id), d2);
          }
        }
      }
    }
    std::sort(scored.begin(), scored.end());
    for (const auto& [id, dist2] : scored) {
      if (!result.candidates.empty() && result.candidates.back() == id) {
        candidate_min_dist2.back() =
            std::min(candidate_min_dist2.back(), dist2);
      } else {
        result.candidates.push_back(id);
        candidate_min_dist2.push_back(dist2);
      }
    }
    result.stats.phase2_candidates = result.candidates.size();
    if (control.progress != nullptr) {
      control.progress->phase2_candidates.store(result.candidates.size(),
                                                std::memory_order_relaxed);
    }
    result.stats.first_pruning_ns += ElapsedNs(start);
    span.Arg("node_accesses", result.stats.node_accesses);
    span.Arg("pool_hits", result.stats.page_hits);
    span.Arg("pool_misses", result.stats.page_misses);
    span.Arg("candidates", result.candidates.size());
  }

  // Phase 3 on the snapshot's partition catalogs, most promising
  // candidates first.
  {
    obs::SpanScope span(control.trace, "second_pruning");
    control.SetPhase(SearchPhase::kSecondPruning);
    const auto start = SteadyClock::now();
    std::vector<size_t> order(result.candidates.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidate_min_dist2[a] != candidate_min_dist2[b]) {
        return candidate_min_dist2[a] < candidate_min_dist2[b];
      }
      return result.candidates[a] < result.candidates[b];
    });
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const size_t slot = order[pos];
      const size_t id = result.candidates[slot];
      if (options_.max_candidates > 0 && pos == options_.max_candidates) {
        // Budget cut: candidates are ordered by ascending minimum Dmbr, so
        // every skipped candidate's distance is at least this slot's bound
        // — the result stays exact below the certified threshold.
        result.stats.approx_candidates_skipped = order.size() - pos;
        result.stats.approx_certified_epsilon =
            std::min(epsilon, std::sqrt(candidate_min_dist2[slot]));
        break;
      }
      if (control.ShouldStop()) {
        result.interrupted = true;
        break;
      }
      const Partition* partition = nullptr;
      size_t length = 0;
      if (id < base.partitions.size()) {
        partition = &base.partitions[id];
        length = base.lengths[id];
      } else if (const PendingView* view = FindPending(*snap, id)) {
        partition = &view->partition;
        length = view->length;
      }
      if (partition == nullptr || partition->empty()) continue;
      obs::SpanScope candidate_span(control.trace, "candidate");
      candidate_span.Arg("sequence_id", id);
      const size_t evals_before = result.stats.dnorm_evaluations;
      SequenceMatch match;
      match.sequence_id = id;
      const bool qualified = internal::EvaluatePhase3(
          query_partition, query.size(), *partition, length, epsilon,
          options_, &match, &result.stats, control.trace);
      candidate_span.Arg("dnorm_evaluations",
                         result.stats.dnorm_evaluations - evals_before);
      candidate_span.Arg("qualified", qualified ? 1 : 0);
      if (qualified) {
        result.matches.push_back(std::move(match));
        if (control.progress != nullptr) {
          control.progress->phase3_matches.store(result.matches.size(),
                                                 std::memory_order_relaxed);
        }
      }
    }
    std::sort(result.matches.begin(), result.matches.end(),
              [](const SequenceMatch& a, const SequenceMatch& b) {
                return a.sequence_id < b.sequence_id;
              });
    result.stats.second_pruning_ns += ElapsedNs(start);
    span.Arg("matches", result.matches.size());
  }
  result.stats.phase3_matches = result.matches.size();
  result.stats.filter_matches = result.matches.size();
  if (result.stats.approx_candidates_skipped == 0) {
    result.stats.approx_certified_epsilon = epsilon;
  }
  return result;
}

SearchResult LiveDatabase::SearchVerified(SequenceView query, double epsilon,
                                          const SearchControl& control) const {
  // Verification must read the same snapshot the filter phases used, so
  // the phases are inlined over one snapshot fetch rather than chaining
  // Search() + a second fetch.
  const std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  SearchResult result = Search(query, epsilon, control);
  control.SetPhase(SearchPhase::kVerify);
  obs::SpanScope span(control.trace, "verify");
  const auto start = SteadyClock::now();
  std::vector<SequenceMatch> verified;
  verified.reserve(result.matches.size());
  for (SequenceMatch& match : result.matches) {
    if (control.ShouldStop()) {
      result.interrupted = true;
      break;
    }
    obs::SpanScope candidate_span(control.trace, "verify_candidate");
    candidate_span.Arg("sequence_id", match.sequence_id);
    std::optional<Sequence> owned;
    SequenceView view;
    if (match.sequence_id < snap->base->partitions.size()) {
      owned = snap->base->store->Read(match.sequence_id);
      if (!owned.has_value()) continue;  // I/O failure: drop conservatively
      view = owned->View();
    } else if (const PendingView* pending =
                   FindPending(*snap, match.sequence_id)) {
      if (pending->data == nullptr) continue;
      view = pending->data->View();
    } else {
      continue;
    }
    result.stats.bytes_read += view.size() * view.dim() * sizeof(double);
    const double exact = SequenceDistance(query, view);
    if (exact > epsilon) {
      ++result.stats.verify_abandons;
      continue;
    }
    match.exact_distance = exact;
    match.solution_interval = ExactSolutionInterval(query, view, epsilon);
    verified.push_back(std::move(match));
  }
  result.matches = std::move(verified);
  result.stats.phase3_matches = result.matches.size();
  result.stats.verify_ns += ElapsedNs(start);
  span.Arg("verified_matches", result.matches.size());
  return result;
}

std::optional<Sequence> LiveDatabase::ReadSequence(uint64_t id) const {
  MDSEQ_CHECK(valid_);
  const std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  if (id < snap->base->partitions.size()) {
    return snap->base->store->Read(static_cast<size_t>(id));
  }
  if (const PendingView* view = FindPending(*snap, id)) {
    if (view->data == nullptr) return Sequence(dim_);
    return *view->data;
  }
  return std::nullopt;
}

std::optional<Partition> LiveDatabase::PartitionOf(uint64_t id) const {
  MDSEQ_CHECK(valid_);
  const std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  if (id < snap->base->partitions.size()) {
    return snap->base->partitions[static_cast<size_t>(id)];
  }
  if (const PendingView* view = FindPending(*snap, id)) {
    return view->partition;
  }
  return std::nullopt;
}

size_t LiveDatabase::num_sequences() const {
  const std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  return snap == nullptr ? 0 : snap->sequence_count;
}

IngestStatus LiveDatabase::Status() const {
  IngestStatus status;
  status.dim = dim_;
  const std::shared_ptr<const Snapshot> snap = CurrentSnapshot();
  if (snap != nullptr) {
    status.base_sequences = snap->base->partitions.size();
    status.pending_sequences = snap->pending.size();
    status.total_sequences = snap->sequence_count;
  }
  status.points_total = points_total_.load(std::memory_order_relaxed);
  status.wal_records = wal_records_.load(std::memory_order_relaxed);
  status.wal_commits = wal_commits_.load(std::memory_order_relaxed);
  status.wal_fsyncs = wal_fsyncs_.load(std::memory_order_relaxed);
  status.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  status.wal_pages = wal_pages_.load(std::memory_order_relaxed);
  status.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  status.last_checkpoint_seconds =
      static_cast<double>(
          last_checkpoint_us_.load(std::memory_order_relaxed)) /
      1e6;
  status.epoch = epochs_.current();
  status.retired_pages = epochs_.retired_count();
  status.free_pages = free_count_.load(std::memory_order_relaxed);
  status.tree_inserts = tree_inserts_.load(std::memory_order_relaxed);
  status.file_pages = file_.page_count();
  status.recovered_records =
      recovered_records_.load(std::memory_order_relaxed);
  return status;
}

}  // namespace mdseq
