#ifndef MDSEQ_INGEST_EPOCH_H_
#define MDSEQ_INGEST_EPOCH_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "storage/page_file.h"
#include "util/check.h"

namespace mdseq {

/// Epoch-based reclamation for copy-on-write index pages.
///
/// The writer works in the current epoch. Publishing a snapshot tags the
/// pages its inserts superseded with the current epoch (`Retire`, which
/// also advances the epoch) and pins the new epoch for the snapshot's
/// lifetime. A page tagged with epoch E is referenced only by snapshots
/// pinned at epochs <= E, so it becomes reclaimable once every such pin is
/// released (`DrainReclaimable`).
///
/// Crash-safety note: the live database calls `DrainReclaimable` only
/// inside `Checkpoint`, *after* the new master page is durable — a page
/// retired after the last checkpoint may still be referenced by the
/// on-disk root that recovery would load, so draining it earlier could let
/// the writer overwrite a page the crash-recovery tree still needs.
class EpochManager {
 public:
  /// RAII pin of one epoch; movable, not copyable. A default-constructed
  /// pin holds nothing.
  class Pin {
   public:
    Pin() = default;
    Pin(EpochManager* manager, uint64_t epoch)
        : manager_(manager), epoch_(epoch) {}
    ~Pin() { Release(); }
    Pin(Pin&& other) noexcept
        : manager_(other.manager_), epoch_(other.epoch_) {
      other.manager_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = other.manager_;
        epoch_ = other.epoch_;
        other.manager_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    void Release() {
      if (manager_ != nullptr) {
        manager_->Unpin(epoch_);
        manager_ = nullptr;
      }
    }
    uint64_t epoch() const { return epoch_; }

   private:
    EpochManager* manager_ = nullptr;
    uint64_t epoch_ = 0;
  };

  /// Pins the current epoch (a reader snapshot holds this).
  Pin PinCurrent() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pins_[current_];
    return Pin(this, current_);
  }

  /// Tags `pages` with the current epoch and advances to the next one.
  /// Call at snapshot-publish time with the pages superseded since the
  /// previous publish.
  void Retire(std::vector<PageId> pages) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pages.empty()) {
      retired_.emplace_back(current_, std::move(pages));
      retired_count_ += retired_.back().second.size();
    }
    ++current_;
  }

  /// Pages whose tag epoch is below every live pin — no reader can reach
  /// them anymore. See the class comment for when it is safe to call.
  std::vector<PageId> DrainReclaimable() {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t min_pinned =
        pins_.empty() ? current_ : pins_.begin()->first;
    std::vector<PageId> out;
    while (!retired_.empty() && retired_.front().first < min_pinned) {
      std::vector<PageId>& pages = retired_.front().second;
      retired_count_ -= pages.size();
      out.insert(out.end(), pages.begin(), pages.end());
      retired_.pop_front();
    }
    return out;
  }

  uint64_t current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
  }
  size_t retired_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return retired_count_;
  }
  size_t pinned_epochs() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pins_.size();
  }

 private:
  friend class Pin;

  void Unpin(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pins_.find(epoch);
    MDSEQ_CHECK(it != pins_.end() && it->second > 0);
    if (--it->second == 0) pins_.erase(it);
  }

  mutable std::mutex mutex_;
  uint64_t current_ = 0;
  std::map<uint64_t, size_t> pins_;
  std::deque<std::pair<uint64_t, std::vector<PageId>>> retired_;
  size_t retired_count_ = 0;
};

}  // namespace mdseq

#endif  // MDSEQ_INGEST_EPOCH_H_
