#ifndef MDSEQ_INGEST_LIVE_DATABASE_H_
#define MDSEQ_INGEST_LIVE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/partitioning.h"
#include "core/search.h"
#include "ingest/epoch.h"
#include "ingest/wal.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/paged_rtree.h"
#include "storage/sequence_store.h"

namespace mdseq {

/// Point-in-time view of the ingest path for `/debug/ingest` and tests.
struct IngestStatus {
  uint64_t dim = 0;
  /// Sequences folded into the on-disk segments by the last checkpoint.
  uint64_t base_sequences = 0;
  /// Sequences whose tail still lives in the WAL + memory.
  uint64_t pending_sequences = 0;
  uint64_t total_sequences = 0;
  uint64_t points_total = 0;
  uint64_t wal_records = 0;
  uint64_t wal_commits = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_pages = 0;
  uint64_t checkpoints = 0;
  double last_checkpoint_seconds = 0.0;
  uint64_t epoch = 0;
  /// Superseded index pages awaiting reader drain + checkpoint.
  uint64_t retired_pages = 0;
  /// Reclaimed pages available for reuse by copy-on-write inserts.
  uint64_t free_pages = 0;
  uint64_t tree_inserts = 0;
  uint64_t file_pages = 0;
  /// WAL records replayed when this instance opened the database.
  uint64_t recovered_records = 0;
};

struct LiveDatabaseOptions {
  size_t pool_pages = 256;
  SearchOptions search;
};

/// A live (append-capable) similarity-search database over the same file
/// format as `DiskDatabase`: after `Checkpoint`, the file is a valid
/// `DiskDatabase`. Ingest runs the paper's marginal-cost partitioning
/// criterion incrementally per arriving point (`IncrementalPartitioner`),
/// so partitions are byte-identical to an offline `PartitionSequence` over
/// the final sequence — sealed prefixes are never re-partitioned.
///
/// Durability: every mutation is framed into the WAL first; `Commit`
/// group-commits (one fsync) and only then publishes the points to
/// readers — a point is acknowledged iff its commit returned. On open, the
/// WAL tail is replayed over the last checkpoint.
///
/// Isolation: readers never block on the writer. Queries run against an
/// immutable published snapshot (shared_ptr swap): index inserts are
/// copy-on-write (`PagedRTree::InsertCow`), snapshots pin an epoch, and
/// superseded pages are recycled only after the last reader of their
/// epoch drains *and* a later checkpoint commits (see `EpochManager`).
///
/// Writer methods (`BeginSequence`/`AppendPoints`/`SealSequence`/`Commit`/
/// `Checkpoint`) serialize on an internal mutex and may be called from any
/// thread; the read path is lock-free apart from the snapshot fetch and
/// the shared buffer-pool latch.
class LiveDatabase {
 public:
  /// Creates an empty live database file at `path` (truncating). Returns
  /// false on I/O failure.
  static bool Create(const std::string& path, size_t dim,
                     const PartitioningOptions& partitioning =
                         PartitioningOptions());

  /// Opens `path` (a `DiskDatabase`/`LiveDatabase` file), replaying the
  /// WAL at `path + ".wal"` if one exists. Check `valid()`; a torn
  /// checkpoint or a foreign WAL header is rejected cleanly (never a
  /// partial open).
  LiveDatabase(const std::string& path,
               const LiveDatabaseOptions& options = LiveDatabaseOptions());
  ~LiveDatabase();

  LiveDatabase(const LiveDatabase&) = delete;
  LiveDatabase& operator=(const LiveDatabase&) = delete;

  bool valid() const { return valid_; }
  size_t dim() const { return dim_; }

  // --- Write path -------------------------------------------------------

  /// Opens a new sequence and returns its id (ids are dense and stable).
  uint64_t BeginSequence();

  /// Appends `span` to an open sequence. The points are durable and
  /// visible to readers only after the next `Commit`.
  bool AppendPoints(uint64_t sequence_id, SequenceView span);

  /// Marks a sequence complete: its trailing partial piece is sealed and
  /// indexed, and the next checkpoint may fold it into the base segments.
  bool SealSequence(uint64_t sequence_id);

  /// Group commit: one WAL fsync for everything appended since the last
  /// commit, then a new reader snapshot is published. Returns false on
  /// I/O failure (nothing is acknowledged or published then).
  bool Commit();

  /// Folds the maximal sealed prefix of pending sequences into fresh
  /// `SequenceStore`/partition segments, persists the current index root
  /// in a new master page (the commit point), truncates + rewrites the
  /// WAL to the surviving tail, and recycles drained copy-on-write pages.
  /// Implies `Commit` for any uncommitted records.
  bool Checkpoint();

  // --- Read path (snapshot-isolated) ------------------------------------

  /// Same three-phase semantics as `DiskDatabase::Search`, over the last
  /// published snapshot: base + committed pending points, including
  /// not-yet-sealed partial pieces.
  SearchResult Search(SequenceView query, double epsilon,
                      const SearchControl& control = SearchControl()) const;
  SearchResult SearchVerified(
      SequenceView query, double epsilon,
      const SearchControl& control = SearchControl()) const;

  /// Reads one sequence as of the last published snapshot.
  std::optional<Sequence> ReadSequence(uint64_t id) const;

  /// The partition of sequence `id` as of the last published snapshot
  /// (sealed pieces plus the open partial piece). For tests.
  std::optional<Partition> PartitionOf(uint64_t id) const;

  /// Sequences visible in the last published snapshot.
  size_t num_sequences() const;

  IngestStatus Status() const;

  const BufferPool& pool() const { return *pool_; }
  BufferPool* mutable_pool() { return pool_.get(); }
  const PageFile& file() const { return file_; }

  /// Monotone snapshot epoch: bumped once per published snapshot (commit,
  /// checkpoint, recovery). Result-cache entries are stamped with the value
  /// read before their query executed, so an entry is fresh iff its stamp
  /// still matches.
  uint64_t snapshot_version() const {
    return snapshot_version_.load(std::memory_order_acquire);
  }

 private:
  // Immutable per-checkpoint state; snapshots share it.
  struct BaseState {
    std::unique_ptr<SequenceStore> store;
    std::vector<Partition> partitions;
    std::vector<size_t> lengths;
  };

  // Committed view of one pending (not yet folded) sequence.
  struct PendingView {
    uint64_t id = 0;
    std::shared_ptr<const Sequence> data;
    Partition partition;  // sealed pieces + trailing partial piece
    size_t length = 0;
    bool sealed = false;
    size_t tree_pieces = 0;  // prefix of pieces findable via the index
  };

  struct Snapshot {
    std::shared_ptr<const BaseState> base;
    PageId root = kInvalidPageId;
    std::vector<PendingView> pending;  // ascending id
    uint64_t sequence_count = 0;
    EpochManager::Pin pin;
  };

  // Writer-side state of one pending sequence.
  struct PendingSeq {
    Sequence data;
    Partition sealed;
    IncrementalPartitioner partitioner;
    bool sealed_done = false;
    size_t tree_pieces = 0;
    bool dirty = true;  // changed since the last published snapshot

    PendingSeq(size_t dim, const PartitioningOptions& options)
        : data(dim), partitioner(dim, options) {}
  };

  std::shared_ptr<const Snapshot> CurrentSnapshot() const;
  const PendingView* FindPending(const Snapshot& snap, uint64_t id) const;
  // Requires writer_mutex_. Publishes the current writer state as a new
  // snapshot, reusing unchanged pending views from the previous one.
  void PublishLocked();
  // Requires writer_mutex_. Inserts sealed-but-unindexed pieces of `seq`.
  bool IndexSealedLocked(uint64_t id, PendingSeq* seq);
  // Requires writer_mutex_. Rewrites a fresh WAL holding the pending tail.
  bool RewriteWalLocked();

  bool valid_ = false;
  size_t dim_ = 0;
  std::string wal_path_;
  PartitioningOptions partitioning_;
  SearchOptions options_;
  PageFile file_;
  std::unique_ptr<BufferPool> pool_;

  // Writer state, guarded by writer_mutex_.
  mutable std::mutex writer_mutex_;
  std::unique_ptr<PagedRTree> tree_;  // writer's (newest) root
  std::shared_ptr<const BaseState> base_;
  uint64_t base_count_ = 0;
  std::map<uint64_t, PendingSeq> pending_;
  uint64_t next_id_ = 0;
  WalWriter wal_;
  std::vector<PageId> retired_batch_;  // superseded since last publish
  std::vector<PageId> free_pages_;
  EpochManager epochs_;

  // Published snapshot, swapped under its own short lock.
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const Snapshot> snapshot_;

  // Monotonic stats, readable without the writer lock.
  std::atomic<uint64_t> snapshot_version_{0};
  std::atomic<uint64_t> points_total_{0};
  std::atomic<uint64_t> tree_inserts_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> recovered_records_{0};
  std::atomic<uint64_t> wal_records_{0};
  std::atomic<uint64_t> wal_commits_{0};
  std::atomic<uint64_t> wal_fsyncs_{0};
  std::atomic<uint64_t> wal_bytes_{0};
  std::atomic<uint64_t> wal_pages_{0};
  std::atomic<uint64_t> free_count_{0};
  std::atomic<uint64_t> last_checkpoint_us_{0};
};

/// Scoped ingest batch over a `LiveDatabase`: appends are buffered by the
/// database as usual and group-committed when the session is committed or
/// destroyed, so one session == one WAL fsync in the common case.
class IngestSession {
 public:
  explicit IngestSession(LiveDatabase* database) : database_(database) {}
  ~IngestSession() {
    if (dirty_) database_->Commit();
  }
  IngestSession(const IngestSession&) = delete;
  IngestSession& operator=(const IngestSession&) = delete;

  uint64_t BeginSequence() {
    dirty_ = true;
    return database_->BeginSequence();
  }
  bool AppendPoints(uint64_t sequence_id, SequenceView span) {
    dirty_ = true;
    return database_->AppendPoints(sequence_id, span);
  }
  bool SealSequence(uint64_t sequence_id) {
    dirty_ = true;
    return database_->SealSequence(sequence_id);
  }
  bool Commit() {
    dirty_ = false;
    return database_->Commit();
  }

 private:
  LiveDatabase* database_;
  bool dirty_ = false;
};

}  // namespace mdseq

#endif  // MDSEQ_INGEST_LIVE_DATABASE_H_
