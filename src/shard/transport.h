#ifndef MDSEQ_SHARD_TRANSPORT_H_
#define MDSEQ_SHARD_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "shard/message.h"

namespace mdseq {

class ShardNode;

/// The narrow seam between the coordinator and its shards: one synchronous
/// request/response exchange per call. Implementations must be safe for
/// concurrent calls from many threads (the coordinator fans one query out
/// to every shard at once, and the engine runs many queries at once).
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  virtual size_t num_shards() const = 0;

  /// Executes `request` against `shard`. Returns false on a *transport*
  /// failure (unreachable shard, timeout, malformed reply) with
  /// `response->error` describing it; a shard-side application error comes
  /// back as a decoded response with `ok == false` and the call returning
  /// true.
  virtual bool Call(uint32_t shard, const ShardRequest& request,
                    ShardResponse* response) = 0;
};

/// In-process transport over direct `ShardNode` pointers. Every call still
/// round-trips both payloads through the wire codec, so tests running on
/// loopback exercise exactly the bytes a networked deployment would.
class LoopbackTransport : public ShardTransport {
 public:
  explicit LoopbackTransport(std::vector<const ShardNode*> nodes);

  size_t num_shards() const override { return nodes_.size(); }
  bool Call(uint32_t shard, const ShardRequest& request,
            ShardResponse* response) override;

 private:
  std::vector<const ShardNode*> nodes_;
};

/// HTTP transport: `POST /shard/rpc` against each shard's embedded
/// introspection server (`src/obs/http`), bodies in the binary shard codec.
/// Connections are kept alive and pooled per shard — a call pops an idle
/// connection (or dials a new one), and returns it to the pool when the
/// server agreed to keep-alive. A request that fails on a reused connection
/// is retried once on a fresh one, since the server may have closed the
/// idle socket between calls.
class HttpShardTransport : public ShardTransport {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
  };

  explicit HttpShardTransport(std::vector<Endpoint> endpoints);
  ~HttpShardTransport() override;

  HttpShardTransport(const HttpShardTransport&) = delete;
  HttpShardTransport& operator=(const HttpShardTransport&) = delete;

  size_t num_shards() const override { return endpoints_.size(); }
  bool Call(uint32_t shard, const ShardRequest& request,
            ShardResponse* response) override;

  /// Idle pooled connections across all shards (tests assert reuse).
  size_t idle_connections() const;

 private:
  struct Pool {
    std::mutex mutex;
    std::vector<int> idle;
  };

  /// -1 when the shard cannot be dialed. `reused` reports whether the fd
  /// came from the pool.
  int Acquire(uint32_t shard, uint64_t timeout_us, bool* reused);
  void Release(uint32_t shard, int fd);

  /// One request/response exchange on `fd`. False on any socket or parse
  /// failure; `keep_alive` reports whether the server will accept another
  /// request on this connection.
  bool Exchange(int fd, const std::string& body, uint64_t timeout_us,
                std::string* response_body, bool* keep_alive,
                std::string* error);

  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<Pool>> pools_;
};

}  // namespace mdseq

#endif  // MDSEQ_SHARD_TRANSPORT_H_
