#include "shard/shard_set.h"

#include <cstdint>
#include <cstdio>

#include "ingest/live_database.h"
#include "storage/disk_database.h"
#include "util/check.h"

namespace mdseq {

namespace {

constexpr uint32_t kManifestMagic = 0x4d445348;  // "MDSH"
constexpr uint32_t kManifestVersion = 1;

struct Manifest {
  uint64_t num_shards = 0;
  uint32_t policy = 0;
  uint64_t dim = 0;
  uint64_t count = 0;
};

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.mdsh";
}

std::string ShardPath(const std::string& dir, size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".mdseq";
}

bool WriteManifest(const std::string& dir, const Manifest& manifest) {
  std::FILE* f = std::fopen(ManifestPath(dir).c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(&kManifestMagic, sizeof(kManifestMagic), 1, f) == 1 &&
            std::fwrite(&kManifestVersion, sizeof(kManifestVersion), 1, f) ==
                1 &&
            std::fwrite(&manifest, sizeof(manifest), 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool ReadManifest(const std::string& dir, Manifest* manifest) {
  std::FILE* f = std::fopen(ManifestPath(dir).c_str(), "rb");
  if (f == nullptr) return false;
  uint32_t magic = 0;
  uint32_t version = 0;
  const bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 &&
                  std::fread(&version, sizeof(version), 1, f) == 1 &&
                  std::fread(manifest, sizeof(*manifest), 1, f) == 1 &&
                  magic == kManifestMagic && version == kManifestVersion;
  std::fclose(f);
  return ok && manifest->num_shards > 0 && manifest->policy <= 1;
}

/// Splits `corpus` into per-shard in-memory databases with the corpus's
/// own options, so shard-local partitioning matches the unsharded build.
std::vector<std::unique_ptr<SequenceDatabase>> SplitCorpus(
    const SequenceDatabase& corpus, const ShardPlacement& placement) {
  std::vector<std::unique_ptr<SequenceDatabase>> shards;
  shards.reserve(placement.num_shards());
  for (size_t i = 0; i < placement.num_shards(); ++i) {
    shards.push_back(std::make_unique<SequenceDatabase>(corpus.dim(),
                                                        corpus.options()));
  }
  for (size_t id = 0; id < corpus.num_sequences(); ++id) {
    MDSEQ_CHECK(!corpus.is_removed(id));  // sharding a compacted corpus
    const uint32_t shard = placement.ShardOf(id);
    const size_t local = shards[shard]->Add(corpus.sequence(id));
    MDSEQ_CHECK(local == placement.LocalOf(id));
  }
  return shards;
}

}  // namespace

ShardSet::~ShardSet() = default;

std::vector<const ShardNode*> ShardSet::nodes() const {
  std::vector<const ShardNode*> out;
  out.reserve(nodes_.size());
  for (const std::unique_ptr<ShardNode>& node : nodes_) {
    out.push_back(node.get());
  }
  return out;
}

std::unique_ptr<ShardSet> ShardSet::BuildInMemory(
    const SequenceDatabase& corpus, size_t num_shards, PlacementPolicy policy,
    const SearchOptions& search_options) {
  MDSEQ_CHECK(num_shards > 0);
  auto set = std::unique_ptr<ShardSet>(new ShardSet());
  set->dim_ = corpus.dim();
  set->placement_ =
      ShardPlacement::Build(corpus.num_sequences(), num_shards, policy);
  set->memory_shards_ = SplitCorpus(corpus, *set->placement_);
  for (const std::unique_ptr<SequenceDatabase>& shard : set->memory_shards_) {
    set->nodes_.push_back(
        std::make_unique<ShardNode>(shard.get(), search_options));
  }
  return set;
}

bool ShardSet::BuildOnDisk(const SequenceDatabase& corpus,
                           const std::string& dir, size_t num_shards,
                           PlacementPolicy policy) {
  MDSEQ_CHECK(num_shards > 0);
  const std::unique_ptr<ShardPlacement> placement =
      ShardPlacement::Build(corpus.num_sequences(), num_shards, policy);
  const std::vector<std::unique_ptr<SequenceDatabase>> shards =
      SplitCorpus(corpus, *placement);
  for (size_t i = 0; i < num_shards; ++i) {
    if (!DiskDatabase::Save(*shards[i], ShardPath(dir, i))) return false;
  }
  Manifest manifest;
  manifest.num_shards = num_shards;
  manifest.policy = static_cast<uint32_t>(policy);
  manifest.dim = corpus.dim();
  manifest.count = corpus.num_sequences();
  return WriteManifest(dir, manifest);
}

std::unique_ptr<ShardSet> ShardSet::OpenOnDisk(
    const std::string& dir, size_t pool_pages,
    const SearchOptions& search_options) {
  Manifest manifest;
  if (!ReadManifest(dir, &manifest)) return nullptr;
  auto set = std::unique_ptr<ShardSet>(new ShardSet());
  set->dim_ = static_cast<size_t>(manifest.dim);
  set->placement_ = ShardPlacement::Build(
      static_cast<size_t>(manifest.count),
      static_cast<size_t>(manifest.num_shards),
      static_cast<PlacementPolicy>(manifest.policy));
  for (size_t i = 0; i < manifest.num_shards; ++i) {
    auto shard = std::make_unique<DiskDatabase>(ShardPath(dir, i), pool_pages,
                                                search_options);
    if (!shard->valid()) return nullptr;
    set->nodes_.push_back(std::make_unique<ShardNode>(shard.get()));
    set->disk_shards_.push_back(std::move(shard));
  }
  return set;
}

std::unique_ptr<ShardSet> ShardSet::CreateLive(const std::string& dir,
                                               size_t dim, size_t num_shards,
                                               PlacementPolicy policy) {
  MDSEQ_CHECK(num_shards > 0 && dim > 0);
  auto set = std::unique_ptr<ShardSet>(new ShardSet());
  set->dim_ = dim;
  set->placement_ = std::make_unique<ShardPlacement>(num_shards, policy);
  for (size_t i = 0; i < num_shards; ++i) {
    const std::string path = ShardPath(dir, i);
    if (!LiveDatabase::Create(path, dim)) return nullptr;
    auto shard = std::make_unique<LiveDatabase>(path);
    if (!shard->valid()) return nullptr;
    set->nodes_.push_back(std::make_unique<ShardNode>(shard.get()));
    set->live_shards_.push_back(std::move(shard));
  }
  return set;
}

uint64_t ShardSet::AppendLive(const Sequence& sequence) {
  MDSEQ_CHECK(!live_shards_.empty());
  MDSEQ_CHECK(sequence.dim() == dim_ && !sequence.empty());
  // Register-first: the (shard, local) slot exists in the placement before
  // the shard publishes the sequence, so a concurrent query can always
  // translate whatever local ids the shard returns. Single ingest writer;
  // searches may run concurrently (LiveDatabase snapshots isolate them).
  const ShardPlacement::Placed placed = placement_->AddSequence();
  LiveDatabase* live = live_shards_[placed.shard].get();
  const uint64_t local = live->BeginSequence();
  MDSEQ_CHECK(local == placed.local_id);
  MDSEQ_CHECK(live->AppendPoints(local, sequence.View()));
  MDSEQ_CHECK(live->SealSequence(local));
  MDSEQ_CHECK(live->Commit());
  return placed.global_id;
}

}  // namespace mdseq
