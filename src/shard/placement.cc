#include "shard/placement.h"

#include <cstring>
#include <mutex>

#include "geom/space_filling.h"
#include "util/check.h"

namespace mdseq {

namespace {

/// splitmix64 finalizer — a full-avalanche mix so dense ids spread
/// uniformly across shards.
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Rank of `id` along the Hilbert curve: the low 32 id bits are treated as
/// a Morton code of a 2^16 x 2^16 grid cell, and that cell's Hilbert index
/// is the rank. The first 4^k ids fill the origin-corner 2^k x 2^k block,
/// whose Hilbert ranks are a permutation of [0, 4^k) — so dealing ranks
/// round-robin balances shard sizes for dense id spaces of any size while
/// sending curve-adjacent ids to different shards (declustering).
uint32_t HilbertRank(uint64_t id) {
  uint32_t x = 0;
  uint32_t y = 0;
  MortonDecode(static_cast<uint32_t>(id), &x, &y);
  return HilbertIndex(16, x, y);
}

}  // namespace

bool ParsePlacementPolicy(const char* name, PlacementPolicy* policy) {
  if (std::strcmp(name, "hash") == 0) {
    *policy = PlacementPolicy::kHash;
    return true;
  }
  if (std::strcmp(name, "hilbert") == 0) {
    *policy = PlacementPolicy::kHilbert;
    return true;
  }
  return false;
}

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kHash:
      return "hash";
    case PlacementPolicy::kHilbert:
      return "hilbert";
  }
  return "unknown";
}

uint32_t PlaceSequence(uint64_t global_id, size_t num_shards,
                       PlacementPolicy policy) {
  MDSEQ_CHECK(num_shards > 0);
  if (num_shards == 1) return 0;
  switch (policy) {
    case PlacementPolicy::kHash:
      return static_cast<uint32_t>(MixId(global_id) % num_shards);
    case PlacementPolicy::kHilbert:
      return static_cast<uint32_t>(HilbertRank(global_id) % num_shards);
  }
  return 0;
}

ShardPlacement::ShardPlacement(size_t num_shards, PlacementPolicy policy)
    : num_shards_(num_shards), policy_(policy), global_of_(num_shards) {
  MDSEQ_CHECK(num_shards > 0);
}

std::unique_ptr<ShardPlacement> ShardPlacement::Build(size_t count,
                                                      size_t num_shards,
                                                      PlacementPolicy policy) {
  auto placement = std::make_unique<ShardPlacement>(num_shards, policy);
  placement->shard_of_.reserve(count);
  placement->local_of_.reserve(count);
  for (size_t i = 0; i < count; ++i) placement->AddSequenceLocked();
  return placement;
}

ShardPlacement::Placed ShardPlacement::AddSequenceLocked() {
  Placed placed;
  placed.global_id = shard_of_.size();
  placed.shard = PlaceSequence(placed.global_id, num_shards_, policy_);
  placed.local_id = global_of_[placed.shard].size();
  shard_of_.push_back(placed.shard);
  local_of_.push_back(placed.local_id);
  global_of_[placed.shard].push_back(placed.global_id);
  return placed;
}

ShardPlacement::Placed ShardPlacement::AddSequence() {
  std::unique_lock lock(mutex_);
  return AddSequenceLocked();
}

uint64_t ShardPlacement::GlobalOf(uint32_t shard, uint64_t local_id) const {
  std::shared_lock lock(mutex_);
  if (shard >= num_shards_ || local_id >= global_of_[shard].size()) {
    return kInvalidId;
  }
  return global_of_[shard][local_id];
}

uint32_t ShardPlacement::ShardOf(uint64_t global_id) const {
  std::shared_lock lock(mutex_);
  MDSEQ_CHECK(global_id < shard_of_.size());
  return shard_of_[global_id];
}

uint64_t ShardPlacement::LocalOf(uint64_t global_id) const {
  std::shared_lock lock(mutex_);
  MDSEQ_CHECK(global_id < local_of_.size());
  return local_of_[global_id];
}

size_t ShardPlacement::num_sequences() const {
  std::shared_lock lock(mutex_);
  return shard_of_.size();
}

size_t ShardPlacement::shard_size(uint32_t shard) const {
  std::shared_lock lock(mutex_);
  MDSEQ_CHECK(shard < num_shards_);
  return global_of_[shard].size();
}

}  // namespace mdseq
