#include "shard/shard_node.h"

#include <chrono>

#include "core/distance.h"
#include "ingest/live_database.h"
#include "obs/http/server.h"
#include "obs/trace.h"
#include "storage/disk_database.h"
#include "util/check.h"

namespace mdseq {

namespace {

// Root span of a shard-side RPC execution, one name per verb so the
// stitched coordinator trace reads as "which verb ran where". Cataloged in
// docs/observability.md (checked by tools/lint_spans.sh via the
// annotations below).
const char* ShardVerbSpanName(ShardRpc rpc) {
  switch (rpc) {
    case ShardRpc::kSearch:
      return "shard:search";  // span-name: shard:search
    case ShardRpc::kSearchVerified:
      return "shard:search_verified";  // span-name: shard:search_verified
    case ShardRpc::kVerify:
      return "shard:verify";  // span-name: shard:verify
    case ShardRpc::kFinalize:
      return "shard:finalize";  // span-name: shard:finalize
    case ShardRpc::kStatus:
      return "shard:status";  // span-name: shard:status
  }
  return "shard:unknown";
}

}  // namespace

ShardNode::ShardNode(const SequenceDatabase* memory,
                     const SearchOptions& options)
    : memory_(memory) {
  MDSEQ_CHECK(memory != nullptr);
  memory_search_.emplace(memory, options);
}

ShardNode::ShardNode(const DiskDatabase* disk) : disk_(disk) {
  MDSEQ_CHECK(disk != nullptr && disk->valid());
}

ShardNode::ShardNode(const LiveDatabase* live) : live_(live) {
  MDSEQ_CHECK(live != nullptr && live->valid());
}

size_t ShardNode::dim() const {
  if (memory_ != nullptr) return memory_->dim();
  if (disk_ != nullptr) return disk_->dim();
  return live_->dim();
}

size_t ShardNode::num_sequences() const {
  if (memory_ != nullptr) return memory_->num_sequences();
  if (disk_ != nullptr) return disk_->num_sequences();
  return live_->num_sequences();
}

SearchResult ShardNode::RunSearch(SequenceView query, double epsilon,
                                  bool verify,
                                  const SearchControl& control) const {
  if (memory_ != nullptr) {
    return verify ? memory_search_->SearchVerified(query, epsilon, control)
                  : memory_search_->Search(query, epsilon, control);
  }
  if (disk_ != nullptr) {
    return verify ? disk_->SearchVerified(query, epsilon, control)
                  : disk_->Search(query, epsilon, control);
  }
  return verify ? live_->SearchVerified(query, epsilon, control)
                : live_->Search(query, epsilon, control);
}

std::optional<Sequence> ShardNode::ReadOne(uint64_t local_id) const {
  if (memory_ != nullptr) {
    if (local_id >= memory_->num_sequences() ||
        memory_->is_removed(static_cast<size_t>(local_id))) {
      return std::nullopt;
    }
    return memory_->sequence(static_cast<size_t>(local_id));
  }
  if (disk_ != nullptr) {
    return disk_->ReadSequence(static_cast<size_t>(local_id));
  }
  return live_->ReadSequence(local_id);
}

ShardResponse ShardNode::Execute(const ShardRequest& request) const {
  // Unsampled requests skip tracing entirely — the zero-overhead default.
  if (!request.trace.sampled) return Run(request, nullptr);

  obs::Trace trace;
  trace.set_query_id(request.trace.trace_id);
  ShardResponse response;
  {
    obs::SpanScope root(&trace, ShardVerbSpanName(request.rpc));
    response = Run(request, &trace);
    root.Arg("num_sequences", response.num_sequences);
  }
  // Ship the recorded spans back for the coordinator to stitch; the names
  // cross a process boundary, so they are copied into owned strings.
  response.spans.reserve(trace.spans().size());
  for (const obs::TraceSpan& span : trace.spans()) {
    ShardSpan out;
    out.name = span.name;
    out.start_ns = span.start_ns;
    out.end_ns = span.end_ns;
    out.depth = span.depth;
    out.args.reserve(span.args.size());
    for (const auto& [key, value] : span.args) {
      out.args.emplace_back(key, value);
    }
    response.spans.push_back(std::move(out));
  }
  return response;
}

ShardResponse ShardNode::Run(const ShardRequest& request,
                             obs::Trace* trace) const {
  ShardResponse response;
  response.num_sequences = num_sequences();

  if (request.rpc == ShardRpc::kStatus) {
    response.ok = true;
    return response;
  }

  if (request.query.size() == 0 || request.query.dim() != dim()) {
    response.error = "query dimensionality mismatch";
    return response;
  }
  SearchControl control;
  control.trace = trace;
  if (request.deadline_us > 0) {
    control.deadline = std::chrono::steady_clock::now() +
                       std::chrono::microseconds(request.deadline_us);
  }
  const SequenceView query = request.query.View();

  switch (request.rpc) {
    case ShardRpc::kSearch:
    case ShardRpc::kSearchVerified: {
      SearchResult result = RunSearch(
          query, request.epsilon, request.rpc == ShardRpc::kSearchVerified,
          control);
      response.interrupted = result.interrupted;
      response.stats = result.stats;
      response.candidates.assign(result.candidates.begin(),
                                 result.candidates.end());
      response.matches.reserve(result.matches.size());
      for (SequenceMatch& match : result.matches) {
        ShardMatch out;
        out.local_id = match.sequence_id;
        out.min_dnorm = match.min_dnorm;
        out.exact_distance = match.exact_distance;
        out.intervals = std::move(match.solution_interval);
        response.matches.push_back(std::move(out));
      }
      response.ok = true;
      return response;
    }

    case ShardRpc::kVerify: {
      // Exact distances, early-abandoned past min(epsilon, cutoff): a
      // value beyond that bound can neither be admitted at this threshold
      // nor enter the global top-k, so the coordinator only trusts returns
      // within the bound.
      double bound = request.epsilon;
      if (request.cutoff >= 0.0 && request.cutoff < bound) {
        bound = request.cutoff;
      }
      response.matches.reserve(request.ids.size());
      for (uint64_t id : request.ids) {
        if (control.ShouldStop()) {
          response.interrupted = true;
          break;
        }
        std::optional<Sequence> sequence = ReadOne(id);
        if (!sequence.has_value()) {
          response.error = "unknown local id in verify";
          return response;
        }
        response.stats.bytes_read +=
            sequence->size() * sequence->dim() * sizeof(double);
        ShardMatch match;
        match.local_id = id;
        match.exact_distance =
            SequenceDistanceBounded(query, sequence->View(), bound);
        if (match.exact_distance > bound) ++response.stats.verify_abandons;
        response.matches.push_back(std::move(match));
      }
      response.ok = true;
      return response;
    }

    case ShardRpc::kFinalize: {
      response.matches.reserve(request.ids.size());
      for (uint64_t id : request.ids) {
        std::optional<Sequence> sequence = ReadOne(id);
        if (!sequence.has_value()) {
          response.error = "unknown local id in finalize";
          return response;
        }
        ShardMatch match;
        match.local_id = id;
        match.intervals =
            ExactSolutionInterval(query, sequence->View(), request.epsilon);
        response.matches.push_back(std::move(match));
      }
      response.ok = true;
      return response;
    }

    case ShardRpc::kStatus:
      break;  // handled above
  }
  response.error = "unhandled rpc";
  return response;
}

void ShardNode::Register(obs::http::HttpServer* server) const {
  server->Handle(
      "POST", "/shard/rpc", [this](const obs::http::HttpRequest& http) {
        ShardRequest request;
        if (!DecodeShardRequest(http.body, &request)) {
          return obs::http::TextResponse(400, "undecodable shard request\n");
        }
        obs::http::HttpResponse out;
        out.status = 200;
        out.content_type = "application/octet-stream";
        out.body = EncodeShardResponse(Execute(request));
        return out;
      });
}

}  // namespace mdseq
