#ifndef MDSEQ_SHARD_COORDINATOR_H_
#define MDSEQ_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/search.h"
#include "shard/placement.h"
#include "shard/transport.h"

namespace mdseq {

namespace obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
}  // namespace obs

struct CoordinatorOptions {
  /// Threads fanning RPCs out to shards; 0 sizes the pool to the shard
  /// count (capped at 16). The pool is shared by all concurrent queries.
  size_t fanout_threads = 0;

  /// Execution budget handed to each shard per RPC, in microseconds;
  /// 0 = none. A coordinator-side `SearchControl` deadline additionally
  /// tightens this to the time remaining.
  uint64_t shard_deadline_us = 0;

  /// What a shard failure (unreachable, shard-side error, or a reply
  /// flagged interrupted by the shard deadline) does to the query.
  enum class FailurePolicy : uint32_t {
    /// The query fails closed: empty results, `interrupted` set.
    kFailFast = 0,
    /// The query degrades open: results merge whatever responded, and
    /// `stats.shards_failed > 0` flags the partial coverage.
    kDegraded = 1,
  };
  FailurePolicy failure = FailurePolicy::kFailFast;

  /// Ids verified per round-trip wave of the distributed `SearchNearest`
  /// cutoff exchange. Smaller waves tighten the cutoff sooner (more skips);
  /// larger waves spend fewer round trips.
  size_t verify_wave = 64;

  /// Approximate tier: cap on epsilon-doubling rounds for the distributed
  /// `SearchNearest` (0 = unlimited). A binding cap can return fewer than
  /// `k` neighbors, but every reported neighbor is exact. Mirrors
  /// `SearchOptions::max_epsilon_rounds` on the single-database path.
  uint32_t max_epsilon_rounds = 0;
};

const char* FailurePolicyName(CoordinatorOptions::FailurePolicy policy);

/// Scatter-gather query execution over a set of shards. The coordinator
/// owns global semantics only — every distance, filter decision, and
/// interval is computed shard-side by the unchanged single-database code:
///
///  - `Search` / `SearchVerified` fan the threshold query out to every
///    shard and union the results (the filter predicate is per-sequence,
///    so the union over disjoint subsets IS the single-database answer).
///  - `SearchNearest` runs the same epsilon-doubling schedule as
///    `SimilaritySearch::SearchNearest`, with verification distributed as
///    a *cutoff exchange*: each round fans out the filter, then verifies
///    unverified matches in waves ordered by their Dnorm lower bound,
///    re-broadcasting the current global k-th best exact distance as a
///    cutoff after every wave so shards early-abandon hopeless
///    verifications. Results are byte-identical to the single-database
///    algorithm (a skipped candidate has exact > cutoff >= final k-th
///    best, and a cutoff exists only once the stop condition already
///    holds).
///
/// All query methods are const and safe to call from many threads at once;
/// fan-outs share one worker pool. Per-query fan-out wait and merge time
/// land in `SearchStats::fanout_wait_ns` / `merge_ns`, shard coverage in
/// `shards_total` / `shards_failed`.
class Coordinator {
 public:
  /// `transport` and `placement` must outlive the coordinator and agree on
  /// the shard count.
  Coordinator(ShardTransport* transport, const ShardPlacement* placement,
              const CoordinatorOptions& options = CoordinatorOptions());
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  SearchResult Search(SequenceView query, double epsilon,
                      const SearchControl& control = SearchControl()) const;
  SearchResult SearchVerified(
      SequenceView query, double epsilon,
      const SearchControl& control = SearchControl()) const;

  /// Distributed top-k; same contract as
  /// `SimilaritySearch::SearchNearest`, ids are global. On interruption
  /// (control) or fail-fast shard failure the partial best-so-far is
  /// returned (possibly fewer than `k`).
  std::vector<SequenceMatch> SearchNearest(
      SequenceView query, size_t k,
      const SearchControl& control = SearchControl()) const;

  size_t num_shards() const { return placement_->num_shards(); }
  size_t num_sequences() const { return placement_->num_sequences(); }
  const CoordinatorOptions& options() const { return options_; }

  /// Registers the `mdseq_shard_*` metrics and starts driving them.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  /// Live shard health for `/debug/shards`: fans a status probe out and
  /// reports per-shard reachability, visible sequence counts, and the
  /// placement's view of each shard's share.
  std::string DebugJson() const;

 private:
  class Pool;

  struct FanoutCall {
    uint32_t shard = 0;
    ShardRequest request;
    ShardResponse response;
    bool transport_ok = false;
    /// Coordinator-observed RPC window (steady-clock ns), recorded around
    /// the transport call — the anchor shard spans are rebased into.
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
  };

  /// Runs every call concurrently on the pool; returns nanoseconds blocked
  /// waiting for the slowest shard.
  uint64_t FanOut(std::vector<FanoutCall>* calls) const;

  /// Stamps the trace context of `control` onto a request (sampled iff the
  /// control carries a trace).
  static void StampTrace(const SearchControl& control, ShardRequest* request);

  /// Stitches the shard-recorded spans of completed calls into the parent
  /// trace: one `rpc:<verb>` wrapper span per call in a per-shard lane,
  /// shard spans rebased into the coordinator's clock domain underneath.
  /// No-op when `control.trace` is null.
  void StitchCalls(const std::vector<FanoutCall>& calls,
                   const SearchControl& control) const;

  /// Shard RPC deadline for a query under `control`, in microseconds.
  uint64_t DeadlineUs(const SearchControl& control) const;

  /// True when the call failed for merge purposes under the failure
  /// policy (transport error, shard error, or shard-side interruption).
  static bool CallFailed(const FanoutCall& call);

  SearchResult RunThreshold(SequenceView query, double epsilon, bool verify,
                            const SearchControl& control) const;

  ShardTransport* transport_;
  const ShardPlacement* placement_;
  CoordinatorOptions options_;
  std::unique_ptr<Pool> pool_;

  struct {
    obs::Counter* rpcs = nullptr;
    obs::Counter* rpc_failures = nullptr;
    obs::Counter* queries_degraded = nullptr;
    obs::Counter* fanout_wait_ns = nullptr;
    obs::Counter* merge_ns = nullptr;
    obs::Counter* cutoff_rounds = nullptr;
    obs::Counter* cutoff_skipped = nullptr;
    obs::Gauge* shard_count = nullptr;
    obs::Histogram* span_seconds = nullptr;
  } metrics_;
};

}  // namespace mdseq

#endif  // MDSEQ_SHARD_COORDINATOR_H_
