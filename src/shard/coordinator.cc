#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace mdseq {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

/// Sums one shard's execution counters into the merged query stats.
void AccumulateStats(const SearchStats& in, SearchStats* out) {
  out->node_accesses += in.node_accesses;
  out->phase2_candidates += in.phase2_candidates;
  out->phase3_matches += in.phase3_matches;
  out->filter_matches += in.filter_matches;
  out->dnorm_evaluations += in.dnorm_evaluations;
  out->query_mbrs += in.query_mbrs;
  out->page_hits += in.page_hits;
  out->page_misses += in.page_misses;
  out->partition_ns += in.partition_ns;
  out->first_pruning_ns += in.first_pruning_ns;
  out->second_pruning_ns += in.second_pruning_ns;
  out->interval_assembly_ns += in.interval_assembly_ns;
  out->verify_ns += in.verify_ns;
  out->probe_abandons += in.probe_abandons;
  out->verify_abandons += in.verify_abandons;
  out->bytes_read += in.bytes_read;
  out->prefilter_abandons += in.prefilter_abandons;
  out->prefilter_survivors += in.prefilter_survivors;
  out->prefilter_ns += in.prefilter_ns;
  out->approx_candidates_skipped += in.approx_candidates_skipped;
}

// Wrapper span for one shard RPC as the coordinator observed it, one name
// per verb; rendered in the shard's own lane of the stitched trace.
// Cataloged in docs/observability.md (tools/lint_spans.sh reads the
// annotations).
const char* RpcSpanName(ShardRpc rpc) {
  switch (rpc) {
    case ShardRpc::kSearch:
      return "rpc:search";  // span-name: rpc:search
    case ShardRpc::kSearchVerified:
      return "rpc:search_verified";  // span-name: rpc:search_verified
    case ShardRpc::kVerify:
      return "rpc:verify";  // span-name: rpc:verify
    case ShardRpc::kFinalize:
      return "rpc:finalize";  // span-name: rpc:finalize
    case ShardRpc::kStatus:
      return "rpc:status";  // span-name: rpc:status
  }
  return "rpc:unknown";
}

void AppendJsonEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out->push_back(c);
    }
  }
}

}  // namespace

const char* FailurePolicyName(CoordinatorOptions::FailurePolicy policy) {
  switch (policy) {
    case CoordinatorOptions::FailurePolicy::kFailFast:
      return "fail_fast";
    case CoordinatorOptions::FailurePolicy::kDegraded:
      return "degraded";
  }
  return "unknown";
}

/// Fixed worker pool shared by every concurrent fan-out. Tasks are
/// independent shard RPCs — no task ever submits or waits on another task,
/// so a pool smaller than the number of outstanding RPCs only serializes,
/// never deadlocks.
class Coordinator::Pool {
 public:
  explicit Pool(size_t threads) {
    MDSEQ_CHECK(threads > 0);
    threads_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { Worker(); });
    }
  }

  ~Pool() {
    {
      std::lock_guard lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }

  void Submit(std::function<void()> fn) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

 private:
  void Worker() {
    while (true) {
      std::function<void()> fn;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ with a drained queue
        fn = std::move(queue_.front());
        queue_.pop_front();
      }
      fn();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

Coordinator::Coordinator(ShardTransport* transport,
                         const ShardPlacement* placement,
                         const CoordinatorOptions& options)
    : transport_(transport), placement_(placement), options_(options) {
  MDSEQ_CHECK(transport_ != nullptr && placement_ != nullptr);
  MDSEQ_CHECK(transport_->num_shards() == placement_->num_shards());
  size_t threads = options_.fanout_threads;
  if (threads == 0) threads = std::min<size_t>(placement_->num_shards(), 16);
  pool_ = std::make_unique<Pool>(std::max<size_t>(threads, 1));
}

Coordinator::~Coordinator() = default;

void Coordinator::RegisterMetrics(obs::MetricsRegistry* registry) {
  metrics_.rpcs = registry->GetCounter("mdseq_shard_rpcs_total",
                                       "Shard RPCs issued by the coordinator");
  metrics_.rpc_failures = registry->GetCounter(
      "mdseq_shard_rpc_failures_total",
      "Shard RPCs that failed (transport error or shard-side error)");
  metrics_.queries_degraded = registry->GetCounter(
      "mdseq_shard_queries_degraded_total",
      "Queries that returned partial coverage under the degraded policy");
  metrics_.fanout_wait_ns = registry->GetCounter(
      "mdseq_shard_fanout_wait_ns_total",
      "Nanoseconds the coordinator blocked waiting on its slowest shard");
  metrics_.merge_ns = registry->GetCounter(
      "mdseq_shard_merge_ns_total",
      "Nanoseconds the coordinator spent merging shard responses");
  metrics_.cutoff_rounds = registry->GetCounter(
      "mdseq_shard_cutoff_rounds_total",
      "Filter rounds executed by the distributed SearchNearest");
  metrics_.cutoff_skipped = registry->GetCounter(
      "mdseq_shard_cutoff_skipped_total",
      "Verifications skipped because the Dnorm bound exceeded the cutoff");
  metrics_.shard_count =
      registry->GetGauge("mdseq_shard_count", "Shards behind the coordinator");
  metrics_.shard_count->Set(static_cast<double>(placement_->num_shards()));
  metrics_.span_seconds = registry->GetHistogram(
      "mdseq_shard_span_seconds",
      "Coordinator-observed round-trip time of individual shard RPCs",
      obs::DefaultLatencyBoundsSeconds());
}

uint64_t Coordinator::FanOut(std::vector<FanoutCall>* calls) const {
  if (calls->empty()) return 0;
  const Clock::time_point start = Clock::now();
  std::mutex mutex;
  std::condition_variable cv;
  size_t remaining = calls->size();
  for (FanoutCall& call : *calls) {
    pool_->Submit([this, &call, &mutex, &cv, &remaining] {
      call.start_ns = obs::Trace::NowNs();
      call.transport_ok =
          transport_->Call(call.shard, call.request, &call.response);
      call.end_ns = obs::Trace::NowNs();
      if (metrics_.rpcs != nullptr) metrics_.rpcs->Increment();
      if (metrics_.span_seconds != nullptr) {
        metrics_.span_seconds->Observe(
            static_cast<double>(call.end_ns - call.start_ns) / 1e9);
      }
      if ((!call.transport_ok || !call.response.ok) &&
          metrics_.rpc_failures != nullptr) {
        metrics_.rpc_failures->Increment();
      }
      std::lock_guard lock(mutex);
      if (--remaining == 0) cv.notify_one();
    });
  }
  std::unique_lock lock(mutex);
  cv.wait(lock, [&remaining] { return remaining == 0; });
  const uint64_t wait_ns = ElapsedNs(start);
  if (metrics_.fanout_wait_ns != nullptr) {
    metrics_.fanout_wait_ns->Increment(wait_ns);
  }
  return wait_ns;
}

uint64_t Coordinator::DeadlineUs(const SearchControl& control) const {
  uint64_t budget = options_.shard_deadline_us;
  if (control.deadline != Clock::time_point::max()) {
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        control.deadline - Clock::now());
    const uint64_t remaining_us =
        remaining.count() > 0 ? static_cast<uint64_t>(remaining.count()) : 1;
    budget = budget > 0 ? std::min(budget, remaining_us) : remaining_us;
  }
  return budget;
}

bool Coordinator::CallFailed(const FanoutCall& call) {
  return !call.transport_ok || !call.response.ok || call.response.interrupted;
}

void Coordinator::StampTrace(const SearchControl& control,
                             ShardRequest* request) {
  if (control.trace == nullptr) return;
  request->trace.sampled = true;
  request->trace.trace_id = control.trace->query_id();
}

void Coordinator::StitchCalls(const std::vector<FanoutCall>& calls,
                              const SearchControl& control) const {
  obs::Trace* trace = control.trace;
  if (trace == nullptr) return;
  for (const FanoutCall& call : calls) {
    // One display lane per shard, offset past the worker-thread lanes
    // (trace.tid() % 1000000), so every shard gets its own track.
    const uint64_t lane = 1000000 + call.shard;
    char lane_name[32];
    std::snprintf(lane_name, sizeof(lane_name), "shard %u", call.shard);
    trace->SetLaneName(lane, trace->Intern(lane_name));

    obs::TraceSpan wrapper;
    wrapper.name = RpcSpanName(call.request.rpc);
    wrapper.start_ns = call.start_ns;
    wrapper.end_ns = call.end_ns;
    wrapper.lane = lane;
    wrapper.args.emplace_back("shard", call.shard);
    wrapper.args.emplace_back("transport_ok", call.transport_ok ? 1 : 0);
    trace->AddSpan(std::move(wrapper));
    if (call.response.spans.empty()) continue;

    // Rebase shard timestamps into the coordinator's clock domain. An
    // in-process shard shares the steady clock, so its spans already sit
    // inside the observed RPC window and keep their real timestamps; a
    // remote shard's clock has an arbitrary offset, so its root span is
    // aligned midpoint-to-midpoint with the RPC window (the best estimate
    // without a clock-sync protocol — one-way delays are unknowable).
    const ShardSpan& root = call.response.spans.front();
    int64_t delta = 0;
    if (root.start_ns < call.start_ns || root.end_ns > call.end_ns) {
      const uint64_t rpc_mid =
          call.start_ns + (call.end_ns - call.start_ns) / 2;
      const uint64_t root_mid =
          root.start_ns + (root.end_ns - root.start_ns) / 2;
      delta = static_cast<int64_t>(rpc_mid) - static_cast<int64_t>(root_mid);
    }
    for (const ShardSpan& span : call.response.spans) {
      obs::TraceSpan out;
      out.name = trace->Intern(span.name);
      out.start_ns = static_cast<uint64_t>(
          static_cast<int64_t>(span.start_ns) + delta);
      out.end_ns =
          static_cast<uint64_t>(static_cast<int64_t>(span.end_ns) + delta);
      out.depth = span.depth + 1;
      out.lane = lane;
      out.args.reserve(span.args.size());
      for (const auto& [key, value] : span.args) {
        out.args.emplace_back(trace->Intern(key), value);
      }
      trace->AddSpan(std::move(out));
    }
  }
}

SearchResult Coordinator::RunThreshold(SequenceView query, double epsilon,
                                       bool verify,
                                       const SearchControl& control) const {
  SearchResult out;
  const size_t shards = placement_->num_shards();
  out.stats.shards_total = static_cast<uint32_t>(shards);
  // A merged approximate answer is only as good as its weakest shard:
  // start at the requested threshold and take the min over every merged
  // shard's certified bound (an exact shard reports epsilon itself).
  out.stats.approx_certified_epsilon = epsilon;

  std::vector<FanoutCall> calls(shards);
  ShardRequest base;
  base.rpc = verify ? ShardRpc::kSearchVerified : ShardRpc::kSearch;
  base.epsilon = epsilon;
  base.deadline_us = DeadlineUs(control);
  base.query = query.Materialize();
  StampTrace(control, &base);

  {
    obs::SpanScope span(control.trace, "shard_fanout");
    base.trace.parent_span_id = span.index();
    for (size_t i = 0; i < shards; ++i) {
      calls[i].shard = static_cast<uint32_t>(i);
      calls[i].request = base;
    }
    out.stats.fanout_wait_ns = FanOut(&calls);
    span.Arg("shards", shards);
    span.Arg("wait_ns", out.stats.fanout_wait_ns);
  }
  StitchCalls(calls, control);

  const Clock::time_point merge_start = Clock::now();
  obs::SpanScope merge_span(control.trace, "shard_merge");
  uint32_t failed = 0;
  out.shard_breakdown.reserve(shards);
  for (const FanoutCall& call : calls) {
    ShardQueryStats slice;
    slice.shard = call.shard;
    slice.ok = call.transport_ok && call.response.ok;
    slice.interrupted = call.response.interrupted;
    slice.rpc_ns = call.end_ns - call.start_ns;
    slice.num_sequences = call.response.num_sequences;
    if (slice.ok) slice.stats = call.response.stats;
    out.shard_breakdown.push_back(std::move(slice));
    if (CallFailed(call)) {
      ++failed;
      if (call.response.interrupted) out.interrupted = true;
      if (!call.transport_ok || !call.response.ok) continue;
      // An interrupted shard still merged its partial work below in
      // degraded mode; fail-fast discards everything at the end anyway.
    }
    AccumulateStats(call.response.stats, &out.stats);
    out.stats.approx_certified_epsilon =
        std::min(out.stats.approx_certified_epsilon,
                 call.response.stats.approx_certified_epsilon);
    for (uint64_t local : call.response.candidates) {
      const uint64_t global = placement_->GlobalOf(call.shard, local);
      if (global == ShardPlacement::kInvalidId) continue;
      out.candidates.push_back(static_cast<size_t>(global));
    }
    const size_t matches_before = out.matches.size();
    for (const ShardMatch& in : call.response.matches) {
      const uint64_t global = placement_->GlobalOf(call.shard, in.local_id);
      if (global == ShardPlacement::kInvalidId) continue;
      SequenceMatch match;
      match.sequence_id = static_cast<size_t>(global);
      match.min_dnorm = in.min_dnorm;
      match.exact_distance = in.exact_distance;
      match.solution_interval = in.intervals;
      out.matches.push_back(std::move(match));
    }
    // Per-shard digest over this shard's slice of the merged matches
    // (global ids — ResultDigest sorts internally). Lets the workload
    // replay diff pin a divergence to one shard.
    out.shard_breakdown.back().digest =
        ResultDigest(out.matches.data() + matches_before,
                     out.matches.size() - matches_before, verify);
  }
  std::sort(out.candidates.begin(), out.candidates.end());
  std::sort(out.matches.begin(), out.matches.end(),
            [](const SequenceMatch& a, const SequenceMatch& b) {
              return a.sequence_id < b.sequence_id;
            });
  out.stats.shards_failed = failed;
  out.stats.merge_ns = ElapsedNs(merge_start);
  if (metrics_.merge_ns != nullptr) {
    metrics_.merge_ns->Increment(out.stats.merge_ns);
  }
  merge_span.Arg("failed", failed);
  merge_span.Arg("matches", out.matches.size());
  return out;
}

SearchResult Coordinator::Search(SequenceView query, double epsilon,
                                 const SearchControl& control) const {
  SearchResult out = RunThreshold(query, epsilon, /*verify=*/false, control);
  if (out.stats.shards_failed > 0) {
    if (options_.failure == CoordinatorOptions::FailurePolicy::kFailFast) {
      out.candidates.clear();
      out.matches.clear();
      out.interrupted = true;
    } else if (metrics_.queries_degraded != nullptr) {
      metrics_.queries_degraded->Increment();
    }
  }
  return out;
}

SearchResult Coordinator::SearchVerified(SequenceView query, double epsilon,
                                         const SearchControl& control) const {
  SearchResult out = RunThreshold(query, epsilon, /*verify=*/true, control);
  if (out.stats.shards_failed > 0) {
    if (options_.failure == CoordinatorOptions::FailurePolicy::kFailFast) {
      out.candidates.clear();
      out.matches.clear();
      out.interrupted = true;
    } else if (metrics_.queries_degraded != nullptr) {
      metrics_.queries_degraded->Increment();
    }
  }
  return out;
}

std::vector<SequenceMatch> Coordinator::SearchNearest(
    SequenceView query, size_t k, const SearchControl& control) const {
  k = std::min(k, placement_->num_sequences());
  if (k == 0 || query.size() == 0) return {};

  // Same schedule as SimilaritySearch::SearchNearest: epsilon doubles from
  // 0.05 until k matches are verified or the threshold covers the whole
  // unit space. Verified exact distances are cached across rounds.
  const double max_epsilon = std::sqrt(static_cast<double>(query.dim()));
  std::map<uint64_t, double> verified;  // global id -> exact distance
  double epsilon = 0.05;
  double cutoff = -1.0;  // global k-th best exact distance; < 0 = none yet
  bool stop_early = false;

  // k-th smallest verified distance, or -1 while fewer than k exist.
  const auto CurrentCutoff = [&verified, k]() -> double {
    if (verified.size() < k) return -1.0;
    std::vector<double> values;
    values.reserve(verified.size());
    for (const auto& [id, exact] : verified) values.push_back(exact);
    std::nth_element(values.begin(), values.begin() + (k - 1), values.end());
    return values[k - 1];
  };

  uint32_t rounds = 0;
  while (true) {
    ++rounds;
    // One epsilon-doubling round: filter fan-out plus its verify waves.
    obs::SpanScope round_span(control.trace, "cutoff_round");
    round_span.Arg("epsilon_milli",
                   static_cast<uint64_t>(epsilon * 1000.0));
    SearchResult round =
        RunThreshold(query, epsilon, /*verify=*/false, control);
    if (metrics_.cutoff_rounds != nullptr) metrics_.cutoff_rounds->Increment();
    if (round.stats.shards_failed > 0 &&
        options_.failure == CoordinatorOptions::FailurePolicy::kFailFast) {
      stop_early = true;
    }

    // Unverified filter matches, cheapest lower bound first, so the cutoff
    // tightens as fast as possible once it exists.
    struct Candidate {
      double min_dnorm;
      uint64_t global_id;
    };
    std::vector<Candidate> pending;
    pending.reserve(round.matches.size());
    for (const SequenceMatch& match : round.matches) {
      if (verified.count(match.sequence_id) != 0) continue;
      pending.push_back(
          {match.min_dnorm, static_cast<uint64_t>(match.sequence_id)});
    }
    std::sort(pending.begin(), pending.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.min_dnorm != b.min_dnorm
                           ? a.min_dnorm < b.min_dnorm
                           : a.global_id < b.global_id;
              });

    const uint64_t deadline_us = DeadlineUs(control);
    size_t index = 0;
    while (index < pending.size() && !stop_early) {
      if (control.ShouldStop()) {
        stop_early = true;
        break;
      }
      // Cutoff exchange: once k global matches are verified, any candidate
      // whose Dnorm lower bound exceeds the k-th best exact distance can
      // never enter the top-k — and since `pending` is sorted by that
      // bound, everything from the first such candidate on is skipped.
      if (cutoff >= 0.0 && pending[index].min_dnorm > cutoff) {
        if (metrics_.cutoff_skipped != nullptr) {
          metrics_.cutoff_skipped->Increment(pending.size() - index);
        }
        break;
      }
      size_t wave_end =
          std::min(index + std::max<size_t>(options_.verify_wave, 1),
                   pending.size());
      if (cutoff >= 0.0) {
        while (wave_end > index && pending[wave_end - 1].min_dnorm > cutoff) {
          --wave_end;
        }
      }

      // Group the wave by shard and broadcast the current cutoff with it.
      std::unordered_map<uint32_t, std::vector<uint64_t>> by_shard;
      for (size_t i = index; i < wave_end; ++i) {
        const uint64_t global = pending[i].global_id;
        by_shard[placement_->ShardOf(global)].push_back(
            placement_->LocalOf(global));
      }
      std::vector<FanoutCall> calls;
      calls.reserve(by_shard.size());
      for (auto& [shard, locals] : by_shard) {
        FanoutCall call;
        call.shard = shard;
        call.request.rpc = ShardRpc::kVerify;
        call.request.epsilon = epsilon;
        call.request.cutoff = cutoff;
        call.request.deadline_us = deadline_us;
        call.request.query = query.Materialize();
        call.request.ids = std::move(locals);
        calls.push_back(std::move(call));
      }
      {
        obs::SpanScope span(control.trace, "shard_verify_wave");
        for (FanoutCall& call : calls) {
          StampTrace(control, &call.request);
          call.request.trace.parent_span_id = span.index();
        }
        FanOut(&calls);
        span.Arg("wave", wave_end - index);
        span.Arg("cutoff_known", cutoff >= 0.0 ? 1 : 0);
      }
      StitchCalls(calls, control);
      const double trust_bound =
          cutoff >= 0.0 ? std::min(epsilon, cutoff) : epsilon;
      for (const FanoutCall& call : calls) {
        if (CallFailed(call)) {
          if (options_.failure ==
              CoordinatorOptions::FailurePolicy::kFailFast) {
            stop_early = true;
          }
          if (!call.transport_ok || !call.response.ok) continue;
        }
        for (const ShardMatch& match : call.response.matches) {
          if (match.exact_distance < 0.0 ||
              match.exact_distance > trust_bound) {
            continue;  // early-abandoned shard-side; not a real distance
          }
          const uint64_t global =
              placement_->GlobalOf(call.shard, match.local_id);
          if (global == ShardPlacement::kInvalidId) continue;
          verified.emplace(global, match.exact_distance);
        }
      }
      cutoff = CurrentCutoff();
      index = wave_end;
    }

    // Approximate tier: a bounded round budget may stop before k verified
    // neighbors exist; everything reported is still exact.
    const bool budget_cut = options_.max_epsilon_rounds > 0 &&
                            rounds >= options_.max_epsilon_rounds;
    if (verified.size() >= k || epsilon >= max_epsilon || stop_early ||
        budget_cut) {
      // Rank by (exact distance, id), report the top k with the min_dnorm
      // each carried in the final round's filter and its exact solution
      // intervals at the final threshold.
      std::vector<std::pair<double, uint64_t>> ranked;
      ranked.reserve(verified.size());
      for (const auto& [id, exact] : verified) ranked.emplace_back(exact, id);
      std::sort(ranked.begin(), ranked.end());
      if (ranked.size() > k) ranked.resize(k);

      std::unordered_map<uint64_t, double> dnorm_of;
      dnorm_of.reserve(round.matches.size());
      for (const SequenceMatch& match : round.matches) {
        dnorm_of[match.sequence_id] = match.min_dnorm;
      }

      std::unordered_map<uint32_t, std::vector<uint64_t>> by_shard;
      for (const auto& [exact, id] : ranked) {
        by_shard[placement_->ShardOf(id)].push_back(placement_->LocalOf(id));
      }
      std::vector<FanoutCall> calls;
      calls.reserve(by_shard.size());
      for (auto& [shard, locals] : by_shard) {
        FanoutCall call;
        call.shard = shard;
        call.request.rpc = ShardRpc::kFinalize;
        call.request.epsilon = epsilon;
        call.request.deadline_us = DeadlineUs(control);
        call.request.query = query.Materialize();
        call.request.ids = std::move(locals);
        StampTrace(control, &call.request);
        calls.push_back(std::move(call));
      }
      FanOut(&calls);
      StitchCalls(calls, control);
      std::unordered_map<uint64_t, std::vector<Interval>> intervals_of;
      for (const FanoutCall& call : calls) {
        if (!call.transport_ok || !call.response.ok) continue;
        for (const ShardMatch& match : call.response.matches) {
          const uint64_t global =
              placement_->GlobalOf(call.shard, match.local_id);
          if (global == ShardPlacement::kInvalidId) continue;
          intervals_of[global] = match.intervals;
        }
      }

      std::vector<SequenceMatch> nearest;
      nearest.reserve(ranked.size());
      for (const auto& [exact, id] : ranked) {
        SequenceMatch match;
        match.sequence_id = static_cast<size_t>(id);
        match.exact_distance = exact;
        const auto dnorm = dnorm_of.find(id);
        if (dnorm != dnorm_of.end()) match.min_dnorm = dnorm->second;
        const auto intervals = intervals_of.find(id);
        if (intervals != intervals_of.end()) {
          match.solution_interval = std::move(intervals->second);
        }
        nearest.push_back(std::move(match));
      }
      return nearest;
    }
    epsilon *= 2.0;
  }
}

std::string Coordinator::DebugJson() const {
  const size_t shards = placement_->num_shards();
  std::vector<FanoutCall> calls(shards);
  for (size_t i = 0; i < shards; ++i) {
    calls[i].shard = static_cast<uint32_t>(i);
    calls[i].request.rpc = ShardRpc::kStatus;
    calls[i].request.deadline_us = 2 * 1000 * 1000;
  }
  const uint64_t wait_ns = FanOut(&calls);

  std::string out = "{";
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "\"num_shards\":%zu,\"sequences\":%zu,", shards,
                placement_->num_sequences());
  out += buffer;
  out += "\"placement\":\"";
  out += PlacementPolicyName(placement_->policy());
  out += "\",\"failure_policy\":\"";
  out += FailurePolicyName(options_.failure);
  std::snprintf(buffer, sizeof(buffer), "\",\"probe_wait_ns\":%llu,",
                static_cast<unsigned long long>(wait_ns));
  out += buffer;
  out += "\"shards\":[";
  for (size_t i = 0; i < shards; ++i) {
    const FanoutCall& call = calls[i];
    if (i > 0) out += ",";
    const bool ok = call.transport_ok && call.response.ok;
    std::snprintf(buffer, sizeof(buffer),
                  "{\"shard\":%zu,\"ok\":%s,\"sequences\":%llu,"
                  "\"placed\":%zu",
                  i, ok ? "true" : "false",
                  static_cast<unsigned long long>(call.response.num_sequences),
                  placement_->shard_size(static_cast<uint32_t>(i)));
    out += buffer;
    if (!ok) {
      out += ",\"error\":\"";
      AppendJsonEscaped(&out, call.response.error);
      out += "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace mdseq
