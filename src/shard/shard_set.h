#ifndef MDSEQ_SHARD_SHARD_SET_H_
#define MDSEQ_SHARD_SHARD_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "shard/placement.h"
#include "shard/shard_node.h"

namespace mdseq {

class DiskDatabase;
class LiveDatabase;

/// A sharded corpus: the placement map plus one self-contained shard
/// database (and its `ShardNode`) per shard. Three backends:
///
///  - `BuildInMemory` splits an existing `SequenceDatabase` into N
///    in-memory shard databases (same `DatabaseOptions`, so per-sequence
///    partitions — and therefore query results — are byte-identical to the
///    unsharded corpus).
///  - `BuildOnDisk` + `OpenOnDisk` persist the split as one
///    `DiskDatabase` file per shard plus a small manifest recording the
///    shard count, placement policy, and corpus size.
///  - `CreateLive` makes N empty `LiveDatabase` shards; `AppendLive`
///    routes whole sequences to their shard (register-first: the global id
///    is placed before the shard publishes it, so every local id a shard
///    can return is translatable while ingest runs).
class ShardSet {
 public:
  static std::unique_ptr<ShardSet> BuildInMemory(
      const SequenceDatabase& corpus, size_t num_shards,
      PlacementPolicy policy,
      const SearchOptions& search_options = SearchOptions());

  /// Writes `dir/manifest.mdsh` plus `dir/shard-<i>.mdseq`. The directory
  /// must exist. Returns false on I/O failure.
  static bool BuildOnDisk(const SequenceDatabase& corpus,
                          const std::string& dir, size_t num_shards,
                          PlacementPolicy policy);

  /// Opens a `BuildOnDisk` directory; each shard gets its own buffer pool
  /// of `pool_pages` frames. Null when the manifest or a shard file is
  /// missing or corrupt.
  static std::unique_ptr<ShardSet> OpenOnDisk(
      const std::string& dir, size_t pool_pages,
      const SearchOptions& search_options = SearchOptions());

  /// N empty live shards under `dir` (which must exist).
  static std::unique_ptr<ShardSet> CreateLive(const std::string& dir,
                                              size_t dim, size_t num_shards,
                                              PlacementPolicy policy);

  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  /// Live backends only: places, appends, seals, and commits one sequence;
  /// returns its global id. Safe to call concurrently with searches.
  uint64_t AppendLive(const Sequence& sequence);

  size_t num_shards() const { return placement_->num_shards(); }
  size_t dim() const { return dim_; }
  const ShardPlacement* placement() const { return placement_.get(); }
  ShardPlacement* mutable_placement() { return placement_.get(); }
  const ShardNode* node(size_t shard) const { return nodes_[shard].get(); }

  /// Borrowed node pointers in shard order (feeds `LoopbackTransport`).
  std::vector<const ShardNode*> nodes() const;

 private:
  ShardSet() = default;

  size_t dim_ = 0;
  std::unique_ptr<ShardPlacement> placement_;
  std::vector<std::unique_ptr<SequenceDatabase>> memory_shards_;
  std::vector<std::unique_ptr<DiskDatabase>> disk_shards_;
  std::vector<std::unique_ptr<LiveDatabase>> live_shards_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
};

}  // namespace mdseq

#endif  // MDSEQ_SHARD_SHARD_SET_H_
