#ifndef MDSEQ_SHARD_MESSAGE_H_
#define MDSEQ_SHARD_MESSAGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/search.h"
#include "geom/sequence.h"

namespace mdseq {

/// The shard protocol verbs. One coordinator round trip is one request +
/// one response; the coordinator composes global semantics out of them:
///
///  - kSearch / kSearchVerified: the paper's three-phase search on the
///    shard's subset, local ids in the response. Threshold queries are one
///    such fan-out; SearchNearest uses kSearch rounds as its filter stage.
///  - kVerify: exact `SequenceDistance` of the listed local ids against the
///    query, bounded by `epsilon` — the distributed cutoff exchange sends
///    the current global k-th best distance in `cutoff` so a shard can
///    early-abandon past it (the returned value is only trusted when
///    `<= epsilon`).
///  - kFinalize: exact solution intervals of the listed ids at the final
///    threshold (the last step of a distributed SearchNearest).
///  - kStatus: shard liveness + sequence count, for /debug/shards.
enum class ShardRpc : uint8_t {
  kSearch = 0,
  kSearchVerified = 1,
  kVerify = 2,
  kFinalize = 3,
  kStatus = 4,
};

const char* ShardRpcName(ShardRpc rpc);

/// Distributed-tracing context carried by every request. When `sampled`,
/// the shard records its execution as spans and returns them in the
/// response for the coordinator to stitch into the parent trace; when not,
/// shard-side tracing is skipped entirely (zero overhead). `trace_id` is
/// the coordinator's query id; `parent_span_id` is the index of the
/// coordinator span the shard's work nests under.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = false;
};

struct ShardRequest {
  ShardRpc rpc = ShardRpc::kStatus;
  /// Per-shard execution budget in microseconds from receipt; 0 = none.
  uint64_t deadline_us = 0;
  TraceContext trace;
  double epsilon = 0.0;
  /// Current global k-th best exact distance (cutoff exchange); < 0 when
  /// no cutoff is known yet. Verification may early-abandon beyond
  /// min(epsilon, cutoff) for ids whose result can no longer enter the
  /// global top-k.
  double cutoff = -1.0;
  /// The query sequence (empty for kStatus).
  Sequence query{1};
  /// Local ids for kVerify / kFinalize.
  std::vector<uint64_t> ids;
};

/// One matched (or verified) sequence in a shard response; ids are
/// shard-local and translated by the coordinator via the placement map.
struct ShardMatch {
  uint64_t local_id = 0;
  double min_dnorm = 0.0;
  /// Exact distance; -1 when the RPC did not verify (plain kSearch).
  double exact_distance = -1.0;
  std::vector<Interval> intervals;
};

/// One shard-recorded span shipped back in a response. Unlike
/// `obs::TraceSpan` the name is owned (it crossed a process boundary);
/// the coordinator interns it into the parent trace when stitching.
/// Timestamps are the shard's own steady-clock nanoseconds — the stitcher
/// rebases them into the coordinator's clock domain.
struct ShardSpan {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t depth = 0;
  std::vector<std::pair<std::string, uint64_t>> args;
};

struct ShardResponse {
  bool ok = false;
  /// True when the shard-side search stopped on its deadline.
  bool interrupted = false;
  std::string error;
  /// Live sequences on the shard (every response carries it; also the
  /// whole payload of kStatus).
  uint64_t num_sequences = 0;
  /// Local ids surviving first pruning (kSearch*, ascending).
  std::vector<uint64_t> candidates;
  std::vector<ShardMatch> matches;
  SearchStats stats;
  /// Shard-side spans, filled only when the request's trace context was
  /// sampled; begin order, depth 0 = the per-verb root span.
  std::vector<ShardSpan> spans;
};

/// Wire codec — little-endian binary with a magic/version header, used by
/// the HTTP transport (and round-tripped by the loopback transport so
/// in-process tests exercise the same bytes a real deployment would).
/// Decode never trusts lengths: truncated or oversized payloads fail
/// cleanly.
std::string EncodeShardRequest(const ShardRequest& request);
bool DecodeShardRequest(const std::string& bytes, ShardRequest* request);
std::string EncodeShardResponse(const ShardResponse& response);
bool DecodeShardResponse(const std::string& bytes, ShardResponse* response);

}  // namespace mdseq

#endif  // MDSEQ_SHARD_MESSAGE_H_
