#include "shard/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>

#include "shard/shard_node.h"
#include "util/check.h"

namespace mdseq {

namespace {

/// Socket timeout when the request carries no deadline.
constexpr uint64_t kDefaultTimeoutUs = 30ull * 1000 * 1000;
/// Slack beyond the shard's own execution budget so a shard that answers
/// exactly at its deadline still gets its response through.
constexpr uint64_t kTimeoutGraceUs = 2ull * 1000 * 1000;

bool SetSocketTimeout(int fd, uint64_t timeout_us) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_us / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(timeout_us % 1000000);
  return setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string LowerCopy(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

LoopbackTransport::LoopbackTransport(std::vector<const ShardNode*> nodes)
    : nodes_(std::move(nodes)) {
  for (const ShardNode* node : nodes_) MDSEQ_CHECK(node != nullptr);
}

bool LoopbackTransport::Call(uint32_t shard, const ShardRequest& request,
                             ShardResponse* response) {
  if (shard >= nodes_.size()) {
    response->error = "unknown shard";
    return false;
  }
  // Encode/decode both directions so loopback covers the codec end to end.
  ShardRequest decoded;
  if (!DecodeShardRequest(EncodeShardRequest(request), &decoded)) {
    response->error = "request codec round-trip failed";
    return false;
  }
  const std::string wire = EncodeShardResponse(nodes_[shard]->Execute(decoded));
  if (!DecodeShardResponse(wire, response)) {
    response->error = "response codec round-trip failed";
    return false;
  }
  return true;
}

HttpShardTransport::HttpShardTransport(std::vector<Endpoint> endpoints)
    : endpoints_(std::move(endpoints)) {
  pools_.reserve(endpoints_.size());
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    pools_.push_back(std::make_unique<Pool>());
  }
}

HttpShardTransport::~HttpShardTransport() {
  for (const std::unique_ptr<Pool>& pool : pools_) {
    std::lock_guard lock(pool->mutex);
    for (int fd : pool->idle) close(fd);
    pool->idle.clear();
  }
}

size_t HttpShardTransport::idle_connections() const {
  size_t total = 0;
  for (const std::unique_ptr<Pool>& pool : pools_) {
    std::lock_guard lock(pool->mutex);
    total += pool->idle.size();
  }
  return total;
}

int HttpShardTransport::Acquire(uint32_t shard, uint64_t timeout_us,
                                bool* reused) {
  {
    Pool* pool = pools_[shard].get();
    std::lock_guard lock(pool->mutex);
    if (!pool->idle.empty()) {
      const int fd = pool->idle.back();
      pool->idle.pop_back();
      *reused = true;
      SetSocketTimeout(fd, timeout_us);
      return fd;
    }
  }
  *reused = false;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoints_[shard].port);
  if (inet_pton(AF_INET, endpoints_[shard].host.c_str(), &addr.sin_addr) !=
      1) {
    close(fd);
    return -1;
  }
  if (!SetSocketTimeout(fd, timeout_us) ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void HttpShardTransport::Release(uint32_t shard, int fd) {
  Pool* pool = pools_[shard].get();
  std::lock_guard lock(pool->mutex);
  pool->idle.push_back(fd);
}

bool HttpShardTransport::Exchange(int fd, const std::string& body,
                                  uint64_t timeout_us,
                                  std::string* response_body, bool* keep_alive,
                                  std::string* error) {
  (void)timeout_us;  // applied to the socket in Acquire
  char head[256];
  const int head_size = std::snprintf(
      head, sizeof(head),
      "POST /shard/rpc HTTP/1.1\r\n"
      "Host: shard\r\n"
      "Content-Type: application/octet-stream\r\n"
      "Content-Length: %zu\r\n"
      "Connection: keep-alive\r\n\r\n",
      body.size());
  if (!SendAll(fd, head, static_cast<size_t>(head_size)) ||
      !SendAll(fd, body.data(), body.size())) {
    *error = "send failed";
    return false;
  }

  std::string in;
  size_t head_end = std::string::npos;
  char buffer[4096];
  while (true) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      *error = in.empty() ? "connection closed before response"
                          : "truncated response head";
      return false;
    }
    in.append(buffer, static_cast<size_t>(n));
    head_end = in.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (in.size() > 64 * 1024) {
      *error = "oversized response head";
      return false;
    }
  }

  // Status line + headers (Content-Length and Connection are all we need).
  const std::string head_text = LowerCopy(in.substr(0, head_end));
  if (head_text.rfind("http/1.1 200", 0) != 0 &&
      head_text.rfind("http/1.0 200", 0) != 0) {
    *error = "shard answered " + in.substr(0, in.find("\r\n"));
    return false;
  }
  size_t content_length = 0;
  {
    const size_t pos = head_text.find("content-length:");
    if (pos == std::string::npos) {
      *error = "response missing content-length";
      return false;
    }
    content_length = std::strtoull(head_text.c_str() + pos + 15, nullptr, 10);
  }
  *keep_alive = head_text.find("connection: keep-alive") != std::string::npos;

  const size_t body_start = head_end + 4;
  while (in.size() - body_start < content_length) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      *error = "truncated response body";
      return false;
    }
    in.append(buffer, static_cast<size_t>(n));
  }
  response_body->assign(in, body_start, content_length);
  return true;
}

bool HttpShardTransport::Call(uint32_t shard, const ShardRequest& request,
                              ShardResponse* response) {
  if (shard >= endpoints_.size()) {
    response->error = "unknown shard";
    return false;
  }
  const uint64_t timeout_us =
      request.deadline_us > 0 ? request.deadline_us + kTimeoutGraceUs
                              : kDefaultTimeoutUs;
  const std::string body = EncodeShardRequest(request);

  // Two attempts: a pooled connection may have been closed by the server
  // while idle, so a failure on a reused fd is retried on a fresh dial.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool reused = false;
    const int fd = Acquire(shard, timeout_us, &reused);
    if (fd < 0) {
      response->error = "shard unreachable";
      return false;
    }
    std::string wire;
    bool keep_alive = false;
    std::string error;
    if (Exchange(fd, body, timeout_us, &wire, &keep_alive, &error)) {
      if (keep_alive) {
        Release(shard, fd);
      } else {
        close(fd);
      }
      if (!DecodeShardResponse(wire, response)) {
        response->error = "undecodable shard response";
        return false;
      }
      return true;
    }
    close(fd);
    if (!reused) {
      response->error = error;
      return false;
    }
  }
  response->error = "retry exhausted";
  return false;
}

}  // namespace mdseq
