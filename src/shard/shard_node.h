#ifndef MDSEQ_SHARD_SHARD_NODE_H_
#define MDSEQ_SHARD_SHARD_NODE_H_

#include <cstdint>
#include <optional>

#include "core/database.h"
#include "core/search.h"
#include "shard/message.h"

namespace mdseq {

class DiskDatabase;
class LiveDatabase;

namespace obs::http {
class HttpServer;
}  // namespace obs::http

/// One self-contained shard: a database holding its subset of the corpus
/// (ids are shard-local) plus the RPC surface the coordinator drives. The
/// node is a thin adapter — searches, verifications, and interval
/// finalization all run the exact same code paths a single-database
/// deployment uses, which is what makes sharded results byte-identical to
/// unsharded ones.
///
/// Backends: an in-memory `SequenceDatabase`, a paged `DiskDatabase`, or an
/// append-capable `LiveDatabase` (snapshot-isolated, so RPCs may run while
/// the shard ingests). The backing database must outlive the node.
/// `Execute` is const and thread-safe; any number of RPCs may run at once.
class ShardNode {
 public:
  explicit ShardNode(const SequenceDatabase* memory,
                     const SearchOptions& options = SearchOptions());
  explicit ShardNode(const DiskDatabase* disk);
  explicit ShardNode(const LiveDatabase* live);

  ShardResponse Execute(const ShardRequest& request) const;

  /// Registers `POST /shard/rpc` (binary shard codec both ways) on the
  /// shard's embedded server. Call before `HttpServer::Start`; the node
  /// must outlive the server.
  void Register(obs::http::HttpServer* server) const;

  size_t dim() const;
  /// Sequences visible to searches right now (for `LiveDatabase` backends
  /// this is the last published snapshot).
  size_t num_sequences() const;

 private:
  /// The verb dispatch; `trace` (nullable) collects shard-side spans when
  /// the request's trace context is sampled.
  ShardResponse Run(const ShardRequest& request, obs::Trace* trace) const;
  SearchResult RunSearch(SequenceView query, double epsilon, bool verify,
                         const SearchControl& control) const;
  std::optional<Sequence> ReadOne(uint64_t local_id) const;

  const SequenceDatabase* memory_ = nullptr;
  const DiskDatabase* disk_ = nullptr;
  const LiveDatabase* live_ = nullptr;
  std::optional<SimilaritySearch> memory_search_;
};

}  // namespace mdseq

#endif  // MDSEQ_SHARD_SHARD_NODE_H_
