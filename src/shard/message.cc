#include "shard/message.h"

#include <cstring>

namespace mdseq {

namespace {

constexpr uint32_t kRequestMagic = 0x4d535251;   // "MSRQ"
constexpr uint32_t kResponseMagic = 0x4d535253;  // "MSRS"
// v2: trace context on requests, pruning-cascade stats fields and
// shard-recorded spans on responses. v3: prefilter-stage counters
// (abandons, survivors, ns) appended to the stats block. v4: approximate
// tier — skipped-candidate count and certified distance bound appended to
// the stats block, so the coordinator can report the weakest shard bound.
// Both ends ship in one binary, so the version is bumped cleanly rather
// than negotiated.
constexpr uint16_t kVersion = 4;

/// Sanity bound on decoded element counts: a count larger than the
/// remaining payload could even theoretically hold is rejected before any
/// allocation, so a corrupt length prefix cannot balloon memory.
constexpr uint64_t kMaxElements = 1ull << 32;

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked sequential reader over an encoded message.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : data_(bytes) {}

  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U16(uint16_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

  bool Bytes(std::string* out, size_t n) {
    if (data_.size() - pos_ < n) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  /// A count field that must leave at least `element_bytes * count` in the
  /// payload.
  bool Count(uint64_t* count, size_t element_bytes) {
    if (!U64(count)) return false;
    if (*count > kMaxElements) return false;
    return data_.size() - pos_ >= *count * element_bytes;
  }

  bool Doubles(std::vector<double>* out, size_t count) {
    if (data_.size() - pos_ < count * sizeof(double)) return false;
    out->resize(count);
    std::memcpy(out->data(), data_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  bool Raw(void* out, size_t n) {
    if (data_.size() - pos_ < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
};

void PutStats(std::string* out, const SearchStats& stats) {
  PutU64(out, stats.node_accesses);
  PutU64(out, stats.phase2_candidates);
  PutU64(out, stats.phase3_matches);
  PutU64(out, stats.filter_matches);
  PutU64(out, stats.dnorm_evaluations);
  PutU64(out, stats.query_mbrs);
  PutU64(out, stats.page_hits);
  PutU64(out, stats.page_misses);
  PutU64(out, stats.partition_ns);
  PutU64(out, stats.first_pruning_ns);
  PutU64(out, stats.second_pruning_ns);
  PutU64(out, stats.interval_assembly_ns);
  PutU64(out, stats.verify_ns);
  PutU64(out, stats.probe_abandons);
  PutU64(out, stats.verify_abandons);
  PutU64(out, stats.bytes_read);
  PutU64(out, stats.prefilter_abandons);
  PutU64(out, stats.prefilter_survivors);
  PutU64(out, stats.prefilter_ns);
  PutU64(out, stats.approx_candidates_skipped);
  PutF64(out, stats.approx_certified_epsilon);
}

bool ReadStats(Reader* in, SearchStats* stats) {
  uint64_t node_accesses = 0;
  uint64_t phase2_candidates = 0;
  uint64_t phase3_matches = 0;
  uint64_t filter_matches = 0;
  uint64_t dnorm_evaluations = 0;
  uint64_t query_mbrs = 0;
  if (!in->U64(&node_accesses) || !in->U64(&phase2_candidates) ||
      !in->U64(&phase3_matches) || !in->U64(&filter_matches) ||
      !in->U64(&dnorm_evaluations) || !in->U64(&query_mbrs) ||
      !in->U64(&stats->page_hits) || !in->U64(&stats->page_misses) ||
      !in->U64(&stats->partition_ns) || !in->U64(&stats->first_pruning_ns) ||
      !in->U64(&stats->second_pruning_ns) ||
      !in->U64(&stats->interval_assembly_ns) || !in->U64(&stats->verify_ns) ||
      !in->U64(&stats->probe_abandons) || !in->U64(&stats->verify_abandons) ||
      !in->U64(&stats->bytes_read) || !in->U64(&stats->prefilter_abandons) ||
      !in->U64(&stats->prefilter_survivors) ||
      !in->U64(&stats->prefilter_ns) ||
      !in->U64(&stats->approx_candidates_skipped) ||
      !in->F64(&stats->approx_certified_epsilon)) {
    return false;
  }
  stats->node_accesses = node_accesses;
  stats->phase2_candidates = static_cast<size_t>(phase2_candidates);
  stats->phase3_matches = static_cast<size_t>(phase3_matches);
  stats->filter_matches = static_cast<size_t>(filter_matches);
  stats->dnorm_evaluations = static_cast<size_t>(dnorm_evaluations);
  stats->query_mbrs = static_cast<size_t>(query_mbrs);
  return true;
}

}  // namespace

const char* ShardRpcName(ShardRpc rpc) {
  switch (rpc) {
    case ShardRpc::kSearch:
      return "search";
    case ShardRpc::kSearchVerified:
      return "search_verified";
    case ShardRpc::kVerify:
      return "verify";
    case ShardRpc::kFinalize:
      return "finalize";
    case ShardRpc::kStatus:
      return "status";
  }
  return "unknown";
}

std::string EncodeShardRequest(const ShardRequest& request) {
  std::string out;
  PutU32(&out, kRequestMagic);
  PutU16(&out, kVersion);
  out.push_back(static_cast<char>(request.rpc));
  out.push_back(0);  // reserved
  PutU64(&out, request.trace.trace_id);
  PutU64(&out, request.trace.parent_span_id);
  out.push_back(request.trace.sampled ? 1 : 0);
  PutU64(&out, request.deadline_us);
  PutF64(&out, request.epsilon);
  PutF64(&out, request.cutoff);
  PutU64(&out, request.query.dim());
  PutU64(&out, request.query.size());
  const std::vector<double>& data = request.query.data();
  out.append(reinterpret_cast<const char*>(data.data()),
             data.size() * sizeof(double));
  PutU64(&out, request.ids.size());
  for (uint64_t id : request.ids) PutU64(&out, id);
  return out;
}

bool DecodeShardRequest(const std::string& bytes, ShardRequest* request) {
  Reader in(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t rpc_and_reserved = 0;
  if (!in.U32(&magic) || magic != kRequestMagic) return false;
  if (!in.U16(&version) || version != kVersion) return false;
  if (!in.U16(&rpc_and_reserved)) return false;
  const uint8_t rpc = static_cast<uint8_t>(rpc_and_reserved & 0xff);
  if (rpc > static_cast<uint8_t>(ShardRpc::kStatus)) return false;
  request->rpc = static_cast<ShardRpc>(rpc);
  if (!in.U64(&request->trace.trace_id)) return false;
  if (!in.U64(&request->trace.parent_span_id)) return false;
  uint8_t sampled = 0;
  if (!in.U8(&sampled) || sampled > 1) return false;
  request->trace.sampled = sampled != 0;
  if (!in.U64(&request->deadline_us)) return false;
  if (!in.F64(&request->epsilon)) return false;
  if (!in.F64(&request->cutoff)) return false;
  uint64_t dim = 0;
  uint64_t size = 0;
  if (!in.U64(&dim) || dim == 0 || dim > kMaxElements) return false;
  if (!in.U64(&size) || size > kMaxElements) return false;
  std::vector<double> data;
  if (!in.Doubles(&data, static_cast<size_t>(dim * size))) return false;
  Sequence query(static_cast<size_t>(dim));
  for (size_t i = 0; i < size; ++i) {
    query.Append(PointView(data.data() + i * dim, static_cast<size_t>(dim)));
  }
  request->query = std::move(query);
  uint64_t id_count = 0;
  if (!in.Count(&id_count, sizeof(uint64_t))) return false;
  request->ids.resize(static_cast<size_t>(id_count));
  for (uint64_t& id : request->ids) {
    if (!in.U64(&id)) return false;
  }
  return in.done();
}

std::string EncodeShardResponse(const ShardResponse& response) {
  std::string out;
  PutU32(&out, kResponseMagic);
  PutU16(&out, kVersion);
  out.push_back(static_cast<char>((response.ok ? 1 : 0) |
                                  (response.interrupted ? 2 : 0)));
  out.push_back(0);  // reserved
  PutU32(&out, static_cast<uint32_t>(response.error.size()));
  out.append(response.error);
  PutU64(&out, response.num_sequences);
  PutStats(&out, response.stats);
  PutU64(&out, response.candidates.size());
  for (uint64_t id : response.candidates) PutU64(&out, id);
  PutU64(&out, response.matches.size());
  for (const ShardMatch& match : response.matches) {
    PutU64(&out, match.local_id);
    PutF64(&out, match.min_dnorm);
    PutF64(&out, match.exact_distance);
    PutU64(&out, match.intervals.size());
    for (const Interval& interval : match.intervals) {
      PutU64(&out, interval.begin);
      PutU64(&out, interval.end);
    }
  }
  PutU64(&out, response.spans.size());
  for (const ShardSpan& span : response.spans) {
    PutU64(&out, span.name.size());
    out.append(span.name);
    PutU64(&out, span.start_ns);
    PutU64(&out, span.end_ns);
    PutU32(&out, span.depth);
    PutU64(&out, span.args.size());
    for (const auto& [key, value] : span.args) {
      PutU64(&out, key.size());
      out.append(key);
      PutU64(&out, value);
    }
  }
  return out;
}

bool DecodeShardResponse(const std::string& bytes, ShardResponse* response) {
  Reader in(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t flags_and_reserved = 0;
  if (!in.U32(&magic) || magic != kResponseMagic) return false;
  if (!in.U16(&version) || version != kVersion) return false;
  if (!in.U16(&flags_and_reserved)) return false;
  response->ok = (flags_and_reserved & 1) != 0;
  response->interrupted = (flags_and_reserved & 2) != 0;
  uint32_t error_size = 0;
  if (!in.U32(&error_size)) return false;
  if (!in.Bytes(&response->error, error_size)) return false;
  if (!in.U64(&response->num_sequences)) return false;
  if (!ReadStats(&in, &response->stats)) return false;
  uint64_t candidate_count = 0;
  if (!in.Count(&candidate_count, sizeof(uint64_t))) return false;
  response->candidates.resize(static_cast<size_t>(candidate_count));
  for (uint64_t& id : response->candidates) {
    if (!in.U64(&id)) return false;
  }
  uint64_t match_count = 0;
  if (!in.Count(&match_count, 3 * sizeof(uint64_t))) return false;
  response->matches.clear();
  response->matches.reserve(static_cast<size_t>(match_count));
  for (uint64_t m = 0; m < match_count; ++m) {
    ShardMatch match;
    if (!in.U64(&match.local_id)) return false;
    if (!in.F64(&match.min_dnorm)) return false;
    if (!in.F64(&match.exact_distance)) return false;
    uint64_t interval_count = 0;
    if (!in.Count(&interval_count, 2 * sizeof(uint64_t))) return false;
    match.intervals.resize(static_cast<size_t>(interval_count));
    for (Interval& interval : match.intervals) {
      uint64_t begin = 0;
      uint64_t end = 0;
      if (!in.U64(&begin) || !in.U64(&end)) return false;
      interval.begin = static_cast<size_t>(begin);
      interval.end = static_cast<size_t>(end);
    }
    response->matches.push_back(std::move(match));
  }
  // Spans: name length + bytes, timestamps, depth, then args. The minimum
  // footprint of one span (empty name, no args) bounds the count check.
  uint64_t span_count = 0;
  if (!in.Count(&span_count, 3 * sizeof(uint64_t) + sizeof(uint32_t) +
                                sizeof(uint64_t))) {
    return false;
  }
  response->spans.clear();
  response->spans.reserve(static_cast<size_t>(span_count));
  for (uint64_t i = 0; i < span_count; ++i) {
    ShardSpan span;
    uint64_t name_size = 0;
    if (!in.Count(&name_size, 1)) return false;
    if (!in.Bytes(&span.name, static_cast<size_t>(name_size))) return false;
    if (!in.U64(&span.start_ns) || !in.U64(&span.end_ns)) return false;
    if (!in.U32(&span.depth)) return false;
    uint64_t arg_count = 0;
    if (!in.Count(&arg_count, 2 * sizeof(uint64_t))) return false;
    span.args.reserve(static_cast<size_t>(arg_count));
    for (uint64_t a = 0; a < arg_count; ++a) {
      uint64_t key_size = 0;
      std::string key;
      uint64_t value = 0;
      if (!in.Count(&key_size, 1)) return false;
      if (!in.Bytes(&key, static_cast<size_t>(key_size))) return false;
      if (!in.U64(&value)) return false;
      span.args.emplace_back(std::move(key), value);
    }
    response->spans.push_back(std::move(span));
  }
  return in.done();
}

}  // namespace mdseq
