#ifndef MDSEQ_SHARD_PLACEMENT_H_
#define MDSEQ_SHARD_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace mdseq {

/// How global sequence ids are mapped onto shards.
enum class PlacementPolicy : uint32_t {
  /// Mixing hash of the id — uniform spread, no locality. The default.
  kHash = 0,
  /// Hilbert-curve declustering: the id's bits are Morton-decoded into
  /// grid coordinates and ranked along the Hilbert curve
  /// (`src/geom/space_filling`), then curve positions are dealt
  /// round-robin across the shards. Ids that are adjacent on the curve —
  /// and therefore likely to co-occur in one query's candidate set — land
  /// on *different* shards, so a single query's work spreads evenly over
  /// the fleet instead of hammering one shard.
  kHilbert = 1,
};

/// "hash" / "hilbert"; false on unknown names.
bool ParsePlacementPolicy(const char* name, PlacementPolicy* policy);
const char* PlacementPolicyName(PlacementPolicy policy);

/// The shard a given global sequence id lives on. Pure function of
/// (id, num_shards, policy) — placement is stable as the corpus grows, so
/// an id routed at ingest time stays routable forever without a lookup
/// table.
uint32_t PlaceSequence(uint64_t global_id, size_t num_shards,
                       PlacementPolicy policy);

/// The placement map of a sharded corpus: global id -> (shard, local id)
/// and the per-shard inverse. Local ids are dense per shard in ascending
/// global-id order — exactly the ids a shard-local database assigns when
/// the corpus subset is added in order.
///
/// `AddSequence` extends the map (ingest path) under an internal writer
/// lock; lookups take a shared lock, so the coordinator may translate ids
/// while a writer registers new sequences.
class ShardPlacement {
 public:
  static constexpr uint64_t kInvalidId = ~0ull;

  ShardPlacement(size_t num_shards, PlacementPolicy policy);

  /// Builds the map for global ids `[0, count)`. (Heap-allocated — the
  /// internal mutex makes the type immovable.)
  static std::unique_ptr<ShardPlacement> Build(size_t count,
                                               size_t num_shards,
                                               PlacementPolicy policy);

  size_t num_shards() const { return num_shards_; }
  PlacementPolicy policy() const { return policy_; }

  struct Placed {
    uint64_t global_id = 0;
    uint32_t shard = 0;
    uint64_t local_id = 0;
  };

  /// Assigns the next global id, places it, and returns the mapping.
  /// Register the id here *before* making the sequence visible on its
  /// shard, so every id a shard can ever return is translatable.
  Placed AddSequence();

  /// Global id of `(shard, local_id)`; `kInvalidId` when unknown.
  uint64_t GlobalOf(uint32_t shard, uint64_t local_id) const;

  /// Shard of a known global id.
  uint32_t ShardOf(uint64_t global_id) const;

  /// Local id of a known global id on its shard.
  uint64_t LocalOf(uint64_t global_id) const;

  /// Global ids ever assigned.
  size_t num_sequences() const;

  /// Sequences placed on `shard`.
  size_t shard_size(uint32_t shard) const;

 private:
  Placed AddSequenceLocked();

  size_t num_shards_;
  PlacementPolicy policy_;
  mutable std::shared_mutex mutex_;
  std::vector<uint32_t> shard_of_;               // global -> shard
  std::vector<uint64_t> local_of_;               // global -> local
  std::vector<std::vector<uint64_t>> global_of_; // shard -> local -> global
};

}  // namespace mdseq

#endif  // MDSEQ_SHARD_PLACEMENT_H_
