#ifndef MDSEQ_CORE_DISTANCE_H_
#define MDSEQ_CORE_DISTANCE_H_

#include <cstddef>
#include <vector>

#include "geom/sequence.h"

namespace mdseq {

/// Mean distance between two sequences of equal length (Definition 2):
/// `Dmean(S1, S2) = (1/k) * sum_i d(S1[i], S2[i])`.
///
/// Requires `a.size() == b.size() > 0` and matching dimensionality.
double MeanDistance(SequenceView a, SequenceView b);

/// Distance between two sequences of arbitrary lengths (Definitions 2-3).
///
/// Equal lengths: `Dmean`. Different lengths: the shorter sequence is slid
/// along the longer one and the minimum mean distance over all alignments is
/// returned. Both arguments must be non-empty and share a dimensionality.
double SequenceDistance(SequenceView a, SequenceView b);

/// The mean distance of every alignment of `query` inside `data`
/// (`query.size() <= data.size()`): element `j` is
/// `Dmean(query, data[j : j+query.size()-1])`, for
/// `j in [0, data.size() - query.size()]`.
///
/// This is the kernel both of `SequenceDistance` and of the exact
/// solution-interval ground truth (Definition 6).
std::vector<double> WindowDistanceProfile(SequenceView query,
                                          SequenceView data);

/// Threshold-aware `WindowDistanceProfile`: a window's point-distance sum
/// is abandoned as soon as it provably exceeds `epsilon * k` (point
/// distances are non-negative, so partial sums only grow), and the window
/// reports +infinity instead of its mean. Windows that complete carry the
/// bit-identical value `WindowDistanceProfile` would compute (same terms,
/// same order), and every window whose true mean is within `epsilon`
/// always completes — the abandon bound carries enough slack to absorb the
/// final division's rounding, so `profile[j] <= epsilon` decisions are
/// exactly those of the unbounded profile. The inner loop runs over the
/// raw contiguous point storage so it auto-vectorizes.
std::vector<double> WindowDistanceProfileBounded(SequenceView query,
                                                 SequenceView data,
                                                 double epsilon);

/// Threshold-aware `SequenceDistance`: returns the exact distance when it
/// is within `epsilon` (bit-identical to `SequenceDistance`), +infinity
/// otherwise. Built on `WindowDistanceProfileBounded`, so alignments that
/// cannot qualify are abandoned early.
double SequenceDistanceBounded(SequenceView a, SequenceView b,
                               double epsilon);

/// Maps a distance in the normalized `[0,1]^n` data space to a similarity in
/// `[0, 1]` (Section 3.1): the maximum possible distance is the cube
/// diagonal `sqrt(n)`, so `similarity = 1 - distance / sqrt(n)`, clamped to
/// `[0, 1]`.
double DistanceToSimilarity(double distance, size_t dim);

/// Inverse of `DistanceToSimilarity`.
double SimilarityToDistance(double similarity, size_t dim);

}  // namespace mdseq

#endif  // MDSEQ_CORE_DISTANCE_H_
