#include "core/mbr_distance.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace mdseq {

std::vector<double> ComputeMbrDistances(const Mbr& probe,
                                        const Partition& target) {
  std::vector<double> dmbr;
  dmbr.reserve(target.size());
  for (const SequenceMbr& piece : target) {
    dmbr.push_back(MbrDistance(probe, piece.mbr));
  }
  return dmbr;
}

namespace {

// Total number of sequence points covered by the partition.
size_t TotalPoints(const Partition& target) {
  return target.empty() ? 0 : target.back().end - target.front().begin;
}

}  // namespace

namespace {

// Enumerates every window of Definition 5 for the pair (probe, target[j])
// and invokes `visit(distance, point_begin, point_end)` for each. Shared by
// the minimum and the qualifying-window queries below.
template <typename Visitor>
void VisitDnormWindows(size_t probe_count, const Partition& target, size_t j,
                       const std::vector<double>& dmbr,
                       const Visitor& visit) {
  MDSEQ_CHECK(!target.empty());
  MDSEQ_CHECK(j < target.size());
  MDSEQ_CHECK(probe_count >= 1);
  MDSEQ_CHECK(dmbr.size() == target.size());

  const double probe_points = static_cast<double>(probe_count);

  // Case 1 (Example 2): the target MBR alone holds enough points.
  if (target[j].count() >= probe_count) {
    visit(dmbr[j], target[j].begin, target[j].end);
    return;
  }

  // Case 3 (fallback, see header): the whole sequence is smaller than the
  // probe; weight every MBR fully and normalize by the sequence length.
  const size_t total = TotalPoints(target);
  if (total < probe_count) {
    double weighted = 0.0;
    for (size_t t = 0; t < target.size(); ++t) {
      weighted += dmbr[t] * static_cast<double>(target[t].count());
    }
    visit(weighted / static_cast<double>(total), target.front().begin,
          target.back().end);
    return;
  }

  // Case 2 (Definition 5): grow windows around j until the participating
  // point count reaches probe_count.

  // LD windows: start at k <= j, fully count MBRs k..l-1 and take the first
  // `partial` points of MBR l, with j < l (j fully counted).
  for (size_t k = j + 1; k-- > 0;) {
    // Accumulate full counts from k rightward until reaching probe_count.
    double weighted = 0.0;
    size_t accumulated = 0;
    size_t l = k;
    while (l < target.size() &&
           accumulated + target[l].count() < probe_count) {
      weighted += dmbr[l] * static_cast<double>(target[l].count());
      accumulated += target[l].count();
      ++l;
    }
    if (l >= target.size()) continue;  // tail too short for this start
    if (l <= j) break;  // j would not be fully counted; smaller k only worse
    const size_t partial = probe_count - accumulated;
    weighted += dmbr[l] * static_cast<double>(partial);
    visit(weighted / probe_points, target[k].begin,
          target[l].begin + partial);
  }

  // RD windows: end at q >= j, fully count MBRs p+1..q and take the last
  // `partial` points of MBR p, with p < j (j fully counted).
  for (size_t q = j; q < target.size(); ++q) {
    double weighted = 0.0;
    size_t accumulated = 0;
    size_t p = q + 1;
    while (p > 0 && accumulated + target[p - 1].count() < probe_count) {
      --p;
      weighted += dmbr[p] * static_cast<double>(target[p].count());
      accumulated += target[p].count();
    }
    if (p == 0) continue;  // head too short for this end
    --p;
    if (p >= j) break;  // j would not be fully counted; larger q only worse
    const size_t partial = probe_count - accumulated;
    weighted += dmbr[p] * static_cast<double>(partial);
    visit(weighted / probe_points, target[p].end - partial, target[q].end);
  }
}

}  // namespace

NormalizedDistanceResult NormalizedDistance(size_t probe_count,
                                            const Partition& target, size_t j,
                                            const std::vector<double>& dmbr) {
  NormalizedDistanceResult best;
  best.distance = std::numeric_limits<double>::infinity();
  VisitDnormWindows(probe_count, target, j, dmbr,
                    [&best](double distance, size_t begin, size_t end) {
                      if (distance < best.distance) {
                        best.distance = distance;
                        best.point_begin = begin;
                        best.point_end = end;
                      }
                    });
  MDSEQ_CHECK(best.distance < std::numeric_limits<double>::infinity());
  return best;
}

double QualifyingDnormWindows(size_t probe_count, const Partition& target,
                              size_t j, const std::vector<double>& dmbr,
                              double epsilon,
                              std::vector<NormalizedDistanceResult>* out) {
  MDSEQ_CHECK(out != nullptr);
  double best = std::numeric_limits<double>::infinity();
  VisitDnormWindows(
      probe_count, target, j, dmbr,
      [&](double distance, size_t begin, size_t end) {
        best = std::min(best, distance);
        if (distance <= epsilon) {
          out->push_back(NormalizedDistanceResult{distance, begin, end});
        }
      });
  MDSEQ_CHECK(best < std::numeric_limits<double>::infinity());
  return best;
}

double MinNormalizedDistance(const Mbr& probe, size_t probe_count,
                             const Partition& target) {
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  double best = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < target.size(); ++j) {
    best = std::min(best,
                    NormalizedDistance(probe_count, target, j, dmbr).distance);
  }
  return best;
}

double MinMbrDistance(const Partition& a, const Partition& b) {
  MDSEQ_CHECK(!a.empty() && !b.empty());
  double best = std::numeric_limits<double>::infinity();
  for (const SequenceMbr& pa : a) {
    for (const SequenceMbr& pb : b) {
      best = std::min(best, MbrDistance(pa.mbr, pb.mbr));
    }
  }
  return best;
}

}  // namespace mdseq
