#include "core/mbr_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/simd.h"

namespace mdseq {

std::vector<double> ComputeMbrDistances(const Mbr& probe,
                                        const Partition& target) {
  std::vector<double> dmbr;
  dmbr.reserve(target.size());
  for (const SequenceMbr& piece : target) {
    dmbr.push_back(MbrDistance(probe, piece.mbr));
  }
  return dmbr;
}

PartitionLayout MakePartitionLayout(const Partition& target) {
  PartitionLayout layout;
  layout.n = target.size();
  if (target.empty()) return layout;
  const size_t n = layout.n;
  const size_t dim = target.front().mbr.dim();
  layout.dim = dim;
  layout.low.resize(n * dim);
  layout.high.resize(n * dim);
  layout.center.resize(n * dim);
  layout.radius.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Mbr& mbr = target[i].mbr;
    double diag2 = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double lo = mbr.low()[k];
      const double hi = mbr.high()[k];
      layout.low[k * n + i] = lo;
      layout.high[k * n + i] = hi;
      layout.center[k * n + i] = 0.5 * (lo + hi);
      const double side = hi - lo;
      diag2 += side * side;
    }
    layout.radius[i] = 0.5 * std::sqrt(diag2);
  }
  return layout;
}

std::vector<double> ComputeMbrDistances(const Mbr& probe,
                                        const PartitionLayout& layout) {
  std::vector<double> dmbr(layout.n);
  if (layout.n == 0) return dmbr;
  simd::MinDist2Batch(probe.low().data(), probe.high().data(),
                      layout.low.data(), layout.high.data(), layout.n,
                      layout.dim, dmbr.data());
  for (double& d : dmbr) d = std::sqrt(d);
  return dmbr;
}

double MbrCenterAndRadius(const Mbr& mbr, double* center) {
  const size_t dim = mbr.dim();
  double diag2 = 0.0;
  for (size_t k = 0; k < dim; ++k) {
    const double lo = mbr.low()[k];
    const double hi = mbr.high()[k];
    center[k] = 0.5 * (lo + hi);
    const double side = hi - lo;
    diag2 += side * side;
  }
  return 0.5 * std::sqrt(diag2);
}

bool PrefilterProbe(const double* probe_center, double probe_radius,
                    const PartitionLayout& layout, double epsilon,
                    std::vector<double>* scratch) {
  MDSEQ_CHECK(scratch != nullptr);
  const size_t n = layout.n;
  if (n == 0) return false;
  scratch->resize(n);
  simd::SquaredDistBatch(probe_center, layout.center.data(), n, layout.dim,
                         scratch->data());
  // Survive iff ||c_p - c_i||^2 <= ((epsilon + r_p + r_i) * (1 + slack))^2
  // for some i — comparing squares avoids n square roots, and the relative
  // slack absorbs the rounding of the centroid-distance and radius
  // computations so rounding can only keep probes, never drop them.
  for (size_t i = 0; i < n; ++i) {
    const double reach =
        (epsilon + probe_radius + layout.radius[i]) * (1.0 + 1e-9);
    if ((*scratch)[i] <= reach * reach) return true;
  }
  return false;
}

DnormContext MakeDnormContext(const Partition& target,
                              const std::vector<double>& dmbr) {
  MDSEQ_CHECK(!target.empty());
  MDSEQ_CHECK(dmbr.size() == target.size());
  DnormContext context;
  context.target = &target;
  context.dmbr = &dmbr;
  const size_t m = target.size();
  context.prefix_weighted.resize(m + 1);
  context.prefix_count.resize(m + 1);
  context.prefix_weighted[0] = 0.0;
  context.prefix_count[0] = 0;
  double min_dmbr = std::numeric_limits<double>::infinity();
  for (size_t t = 0; t < m; ++t) {
    const size_t count = target[t].count();
    context.prefix_weighted[t + 1] =
        context.prefix_weighted[t] + dmbr[t] * static_cast<double>(count);
    context.prefix_count[t + 1] = context.prefix_count[t] + count;
    min_dmbr = std::min(min_dmbr, dmbr[t]);
  }
  context.total_points = context.prefix_count[m];
  context.min_dmbr = min_dmbr;
  return context;
}

namespace {

// Total number of sequence points covered by the partition.
size_t TotalPoints(const Partition& target) {
  return target.empty() ? 0 : target.back().end - target.front().begin;
}

// Enumerates every window of Definition 5 for the pair (probe, target[j])
// and invokes `visit(distance, point_begin, point_end)` for each, by
// re-accumulating each window's weighted sum from scratch. Retained as the
// reference the fast path is differentially tested against.
template <typename Visitor>
void VisitDnormWindowsReference(size_t probe_count, const Partition& target,
                                size_t j, const std::vector<double>& dmbr,
                                const Visitor& visit) {
  MDSEQ_CHECK(!target.empty());
  MDSEQ_CHECK(j < target.size());
  MDSEQ_CHECK(probe_count >= 1);
  MDSEQ_CHECK(dmbr.size() == target.size());

  const double probe_points = static_cast<double>(probe_count);

  // Case 1 (Example 2): the target MBR alone holds enough points.
  if (target[j].count() >= probe_count) {
    visit(dmbr[j], target[j].begin, target[j].end);
    return;
  }

  // Case 3 (fallback, see header): the whole sequence is smaller than the
  // probe; weight every MBR fully and normalize by the sequence length.
  const size_t total = TotalPoints(target);
  if (total < probe_count) {
    double weighted = 0.0;
    for (size_t t = 0; t < target.size(); ++t) {
      weighted += dmbr[t] * static_cast<double>(target[t].count());
    }
    visit(weighted / static_cast<double>(total), target.front().begin,
          target.back().end);
    return;
  }

  // Case 2 (Definition 5): grow windows around j until the participating
  // point count reaches probe_count.

  // LD windows: start at k <= j, fully count MBRs k..l-1 and take the first
  // `partial` points of MBR l, with j < l (j fully counted).
  for (size_t k = j + 1; k-- > 0;) {
    // Accumulate full counts from k rightward until reaching probe_count.
    double weighted = 0.0;
    size_t accumulated = 0;
    size_t l = k;
    while (l < target.size() &&
           accumulated + target[l].count() < probe_count) {
      weighted += dmbr[l] * static_cast<double>(target[l].count());
      accumulated += target[l].count();
      ++l;
    }
    if (l >= target.size()) continue;  // tail too short for this start
    if (l <= j) break;  // j would not be fully counted; smaller k only worse
    const size_t partial = probe_count - accumulated;
    weighted += dmbr[l] * static_cast<double>(partial);
    visit(weighted / probe_points, target[k].begin,
          target[l].begin + partial);
  }

  // RD windows: end at q >= j, fully count MBRs p+1..q and take the last
  // `partial` points of MBR p, with p < j (j fully counted).
  for (size_t q = j; q < target.size(); ++q) {
    double weighted = 0.0;
    size_t accumulated = 0;
    size_t p = q + 1;
    while (p > 0 && accumulated + target[p - 1].count() < probe_count) {
      --p;
      weighted += dmbr[p] * static_cast<double>(target[p].count());
      accumulated += target[p].count();
    }
    if (p == 0) continue;  // head too short for this end
    --p;
    if (p >= j) break;  // j would not be fully counted; larger q only worse
    const size_t partial = probe_count - accumulated;
    weighted += dmbr[p] * static_cast<double>(partial);
    visit(weighted / probe_points, target[p].end - partial, target[q].end);
  }
}

// Prefix-sum window enumeration: same windows in the same order as the
// reference above, but each one in O(1). A window's fully counted span is a
// difference of two prefix sums and its boundary MBR is found by a
// two-pointer that only ever moves in one direction across the loop,
// because the boundary index is monotone in the window start (LD) / end
// (RD) — `prefix_count` is non-decreasing.
template <typename Visitor>
void VisitDnormWindowsFast(size_t probe_count, const DnormContext& context,
                           size_t j, const Visitor& visit) {
  const Partition& target = *context.target;
  const std::vector<double>& dmbr = *context.dmbr;
  MDSEQ_CHECK(j < target.size());
  MDSEQ_CHECK(probe_count >= 1);

  const double probe_points = static_cast<double>(probe_count);
  const size_t m = target.size();

  // Case 1: the target MBR alone holds enough points.
  if (target[j].count() >= probe_count) {
    visit(dmbr[j], target[j].begin, target[j].end);
    return;
  }

  // Case 3: the whole sequence is smaller than the probe.
  if (context.total_points < probe_count) {
    visit(context.prefix_weighted[m] /
              static_cast<double>(context.total_points),
          target.front().begin, target.back().end);
    return;
  }

  const std::vector<size_t>& pc = context.prefix_count;
  const std::vector<double>& pw = context.prefix_weighted;

  // LD windows: for each start k <= j the boundary l(k) is the smallest l
  // with pc[l+1] - pc[k] >= probe_count; it only decreases as k decreases.
  {
    size_t l = m - 1;
    for (size_t k = j + 1; k-- > 0;) {
      if (pc[m] - pc[k] < probe_count) continue;  // tail too short
      while (l > 0 && pc[l] - pc[k] >= probe_count) --l;
      if (l <= j) break;  // j would not be fully counted
      const size_t accumulated = pc[l] - pc[k];
      const size_t partial = probe_count - accumulated;
      const double weighted =
          (pw[l] - pw[k]) + dmbr[l] * static_cast<double>(partial);
      visit(weighted / probe_points, target[k].begin,
            target[l].begin + partial);
    }
  }

  // RD windows: for each end q >= j the boundary p(q) is the largest p
  // with pc[q+1] - pc[p] >= probe_count; it only increases as q increases.
  {
    size_t p = 0;
    for (size_t q = j; q < m; ++q) {
      if (pc[q + 1] < probe_count) continue;  // head too short
      while (p + 1 < m && pc[q + 1] - pc[p + 1] >= probe_count) ++p;
      if (p >= j) break;  // j would not be fully counted
      const size_t accumulated = pc[q + 1] - pc[p + 1];
      const size_t partial = probe_count - accumulated;
      const double weighted =
          (pw[q + 1] - pw[p + 1]) + dmbr[p] * static_cast<double>(partial);
      visit(weighted / probe_points, target[p].end - partial, target[q].end);
    }
  }
}

template <typename Visitor>
NormalizedDistanceResult MinimumWindow(const Visitor& enumerate) {
  NormalizedDistanceResult best;
  best.distance = std::numeric_limits<double>::infinity();
  enumerate([&best](double distance, size_t begin, size_t end) {
    if (distance < best.distance) {
      best.distance = distance;
      best.point_begin = begin;
      best.point_end = end;
    }
  });
  MDSEQ_CHECK(best.distance < std::numeric_limits<double>::infinity());
  return best;
}

template <typename Visitor>
double CollectQualifyingWindows(double epsilon,
                                std::vector<NormalizedDistanceResult>* out,
                                const Visitor& enumerate) {
  MDSEQ_CHECK(out != nullptr);
  double best = std::numeric_limits<double>::infinity();
  enumerate([&](double distance, size_t begin, size_t end) {
    best = std::min(best, distance);
    if (distance <= epsilon) {
      out->push_back(NormalizedDistanceResult{distance, begin, end});
    }
  });
  MDSEQ_CHECK(best < std::numeric_limits<double>::infinity());
  return best;
}

}  // namespace

NormalizedDistanceResult NormalizedDistance(size_t probe_count,
                                            const DnormContext& context,
                                            size_t j) {
  return MinimumWindow([&](const auto& visit) {
    VisitDnormWindowsFast(probe_count, context, j, visit);
  });
}

NormalizedDistanceResult NormalizedDistance(size_t probe_count,
                                            const Partition& target, size_t j,
                                            const std::vector<double>& dmbr) {
  const DnormContext context = MakeDnormContext(target, dmbr);
  return NormalizedDistance(probe_count, context, j);
}

double QualifyingDnormWindows(size_t probe_count, const DnormContext& context,
                              size_t j, double epsilon,
                              std::vector<NormalizedDistanceResult>* out) {
  return CollectQualifyingWindows(epsilon, out, [&](const auto& visit) {
    VisitDnormWindowsFast(probe_count, context, j, visit);
  });
}

double QualifyingDnormWindows(size_t probe_count, const Partition& target,
                              size_t j, const std::vector<double>& dmbr,
                              double epsilon,
                              std::vector<NormalizedDistanceResult>* out) {
  const DnormContext context = MakeDnormContext(target, dmbr);
  return QualifyingDnormWindows(probe_count, context, j, epsilon, out);
}

NormalizedDistanceResult ReferenceNormalizedDistance(
    size_t probe_count, const Partition& target, size_t j,
    const std::vector<double>& dmbr) {
  return MinimumWindow([&](const auto& visit) {
    VisitDnormWindowsReference(probe_count, target, j, dmbr, visit);
  });
}

double ReferenceQualifyingDnormWindows(
    size_t probe_count, const Partition& target, size_t j,
    const std::vector<double>& dmbr, double epsilon,
    std::vector<NormalizedDistanceResult>* out) {
  return CollectQualifyingWindows(epsilon, out, [&](const auto& visit) {
    VisitDnormWindowsReference(probe_count, target, j, dmbr, visit);
  });
}

double MinNormalizedDistance(const Mbr& probe, size_t probe_count,
                             const Partition& target) {
  const std::vector<double> dmbr = ComputeMbrDistances(probe, target);
  const DnormContext context = MakeDnormContext(target, dmbr);
  double best = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < target.size(); ++j) {
    best = std::min(best,
                    NormalizedDistance(probe_count, context, j).distance);
  }
  return best;
}

double MinMbrDistance(const Partition& a, const Partition& b) {
  MDSEQ_CHECK(!a.empty() && !b.empty());
  double best = std::numeric_limits<double>::infinity();
  for (const SequenceMbr& pa : a) {
    for (const SequenceMbr& pb : b) {
      best = std::min(best, MbrDistance(pa.mbr, pb.mbr));
    }
  }
  return best;
}

}  // namespace mdseq
