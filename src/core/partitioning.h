#ifndef MDSEQ_CORE_PARTITIONING_H_
#define MDSEQ_CORE_PARTITIONING_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "geom/mbr.h"
#include "geom/sequence.h"

namespace mdseq {

/// One subsequence of a partitioned sequence together with its enclosing
/// MBR: points `[begin, end)` of the owning sequence (zero-based,
/// half-open; the paper's `S[begin+1 : end]`).
struct SequenceMbr {
  Mbr mbr;
  size_t begin = 0;
  size_t end = 0;

  size_t count() const { return end - begin; }
};

/// A partitioning of a sequence into consecutive subsequences; `begin/end`
/// ranges are contiguous and cover the whole sequence.
using Partition = std::vector<SequenceMbr>;

/// Options of the marginal-cost partitioning algorithm (Section 3.4.3).
struct PartitioningOptions {
  /// How the estimated number of disk accesses `DA` of an MBR with sides
  /// `L` is computed. The paper adapts FRM's marginal cost; FRM uses the
  /// Minkowski-sum volume, and the paper's printed formula is ambiguous
  /// between a product and a sum, so both are provided (see DESIGN.md; the
  /// ablation bench shows the conclusions are insensitive).
  enum class CostModel {
    /// `DA = prod_k (L_k + side_growth)` — FRM-style volume (default).
    kMinkowskiVolume,
    /// `DA = sum_k (L_k + side_growth)` — the literal additive reading.
    kAdditive,
  };

  /// The per-side growth `Q_k + epsilon` accounting for the query MBR extent
  /// and the search threshold; the paper adopts 0.3 after tuning.
  double side_growth = 0.3;

  /// Hard cap on points per MBR (the algorithm's `max`).
  size_t max_points = 64;

  CostModel cost_model = CostModel::kMinkowskiVolume;
};

/// Estimated disk accesses of an MBR under the given options (the `DA` term
/// of the marginal cost `MCOST = DA / m`).
double EstimatedAccessCost(const Mbr& mbr, const PartitioningOptions& options);

/// Streaming form of the paper's greedy marginal-cost rule: feed points one
/// at a time; a piece is emitted exactly when the criterion cuts. Because
/// the offline `PartitionSequence` delegates to this class, an online
/// consumer (the ingest path) produces byte-identical pieces to the offline
/// run on the final sequence, for any interleaving of `Add` calls.
class IncrementalPartitioner {
 public:
  IncrementalPartitioner(size_t dim, const PartitioningOptions& options);

  /// Feeds the next point. If appending it to the open piece would raise
  /// MCOST (or overflow `max_points`), the open piece is sealed and
  /// returned, and `p` starts a new piece; otherwise `p` joins the open
  /// piece and nothing is emitted.
  std::optional<SequenceMbr> Add(PointView p);

  /// Seals and returns the trailing open piece (empty if no points were
  /// fed since construction/the last `Finish`). Leaves the partitioner
  /// ready for a fresh sequence starting at index `points()`.
  std::optional<SequenceMbr> Finish();

  /// The open (not yet sealed) trailing piece, if any points are pending.
  std::optional<SequenceMbr> Partial() const;

  /// Total points fed so far (index of the next point).
  size_t points() const { return total_; }

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  PartitioningOptions options_;
  Mbr current_;
  size_t begin_ = 0;
  size_t count_ = 0;  // points in the open piece; 0 = no open piece
  double current_mcost_ = 0.0;
  size_t total_ = 0;
};

/// Partitions `seq` into subsequences using the paper's greedy marginal-cost
/// rule: a point joins the current MBR unless doing so would increase the
/// per-point cost `MCOST` (or overflow `max_points`), in which case a new
/// MBR is started (algorithm PARTITIONING_SEQUENCE).
///
/// The result covers `seq` exactly with contiguous, non-empty pieces.
/// An empty sequence yields an empty partition.
Partition PartitionSequence(SequenceView seq,
                            const PartitioningOptions& options);

/// Splits `seq` into fixed-length pieces of `piece_length` points (the last
/// piece may be shorter). A simple alternative partitioner used by ablation
/// benchmarks to quantify the value of the MCOST heuristic.
Partition PartitionFixed(SequenceView seq, size_t piece_length);

}  // namespace mdseq

#endif  // MDSEQ_CORE_PARTITIONING_H_
