#ifndef MDSEQ_CORE_PARTITIONING_H_
#define MDSEQ_CORE_PARTITIONING_H_

#include <cstddef>
#include <vector>

#include "geom/mbr.h"
#include "geom/sequence.h"

namespace mdseq {

/// One subsequence of a partitioned sequence together with its enclosing
/// MBR: points `[begin, end)` of the owning sequence (zero-based,
/// half-open; the paper's `S[begin+1 : end]`).
struct SequenceMbr {
  Mbr mbr;
  size_t begin = 0;
  size_t end = 0;

  size_t count() const { return end - begin; }
};

/// A partitioning of a sequence into consecutive subsequences; `begin/end`
/// ranges are contiguous and cover the whole sequence.
using Partition = std::vector<SequenceMbr>;

/// Options of the marginal-cost partitioning algorithm (Section 3.4.3).
struct PartitioningOptions {
  /// How the estimated number of disk accesses `DA` of an MBR with sides
  /// `L` is computed. The paper adapts FRM's marginal cost; FRM uses the
  /// Minkowski-sum volume, and the paper's printed formula is ambiguous
  /// between a product and a sum, so both are provided (see DESIGN.md; the
  /// ablation bench shows the conclusions are insensitive).
  enum class CostModel {
    /// `DA = prod_k (L_k + side_growth)` — FRM-style volume (default).
    kMinkowskiVolume,
    /// `DA = sum_k (L_k + side_growth)` — the literal additive reading.
    kAdditive,
  };

  /// The per-side growth `Q_k + epsilon` accounting for the query MBR extent
  /// and the search threshold; the paper adopts 0.3 after tuning.
  double side_growth = 0.3;

  /// Hard cap on points per MBR (the algorithm's `max`).
  size_t max_points = 64;

  CostModel cost_model = CostModel::kMinkowskiVolume;
};

/// Estimated disk accesses of an MBR under the given options (the `DA` term
/// of the marginal cost `MCOST = DA / m`).
double EstimatedAccessCost(const Mbr& mbr, const PartitioningOptions& options);

/// Partitions `seq` into subsequences using the paper's greedy marginal-cost
/// rule: a point joins the current MBR unless doing so would increase the
/// per-point cost `MCOST` (or overflow `max_points`), in which case a new
/// MBR is started (algorithm PARTITIONING_SEQUENCE).
///
/// The result covers `seq` exactly with contiguous, non-empty pieces.
/// An empty sequence yields an empty partition.
Partition PartitionSequence(SequenceView seq,
                            const PartitioningOptions& options);

/// Splits `seq` into fixed-length pieces of `piece_length` points (the last
/// piece may be shorter). A simple alternative partitioner used by ablation
/// benchmarks to quantify the value of the MCOST heuristic.
Partition PartitionFixed(SequenceView seq, size_t piece_length);

}  // namespace mdseq

#endif  // MDSEQ_CORE_PARTITIONING_H_
