#include "core/database.h"

#include "index/linear_index.h"
#include "index/rstar_tree.h"
#include "util/check.h"

namespace mdseq {

SequenceDatabase::SequenceDatabase(size_t dim, const DatabaseOptions& options)
    : dim_(dim), options_(options) {
  MDSEQ_CHECK(dim > 0);
  switch (options_.index_kind) {
    case DatabaseOptions::IndexKind::kRStarTree:
      index_ = std::make_unique<RStarTree>(
          dim, RStarTreeOptions::ForFanout(options_.index_fanout));
      break;
    case DatabaseOptions::IndexKind::kGuttmanQuadratic:
      index_ = std::make_unique<RStarTree>(
          dim, RStarTreeOptions::ForFanout(
                   options_.index_fanout,
                   RTreeVariant::kGuttmanQuadratic));
      break;
    case DatabaseOptions::IndexKind::kGuttmanLinear:
      index_ = std::make_unique<RStarTree>(
          dim, RStarTreeOptions::ForFanout(options_.index_fanout,
                                           RTreeVariant::kGuttmanLinear));
      break;
    case DatabaseOptions::IndexKind::kLinear:
      index_ = std::make_unique<LinearIndex>(options_.index_fanout);
      break;
  }
}

size_t SequenceDatabase::Add(Sequence sequence) {
  MDSEQ_CHECK(sequence.dim() == dim_);
  MDSEQ_CHECK(!sequence.empty());
  const size_t id = sequences_.size();
  Partition partition =
      PartitionSequence(sequence.View(), options_.partitioning);
  for (size_t ordinal = 0; ordinal < partition.size(); ++ordinal) {
    index_->Insert(partition[ordinal].mbr, PackEntry(id, ordinal));
  }
  total_points_ += sequence.size();
  sequences_.push_back(std::move(sequence));
  partitions_.push_back(std::move(partition));
  removed_.push_back(false);
  return id;
}

bool SequenceDatabase::Remove(size_t id) {
  MDSEQ_CHECK(id < sequences_.size());
  if (removed_[id]) return false;
  const Partition& partition = partitions_[id];
  for (size_t ordinal = 0; ordinal < partition.size(); ++ordinal) {
    const bool removed =
        index_->Remove(partition[ordinal].mbr, PackEntry(id, ordinal));
    MDSEQ_CHECK(removed);
  }
  total_points_ -= sequences_[id].size();
  sequences_[id].Clear();
  partitions_[id].clear();
  removed_[id] = true;
  ++removed_count_;
  return true;
}

bool SequenceDatabase::is_removed(size_t id) const {
  MDSEQ_CHECK(id < removed_.size());
  return removed_[id];
}

const Sequence& SequenceDatabase::sequence(size_t id) const {
  MDSEQ_CHECK(id < sequences_.size());
  MDSEQ_CHECK(!removed_[id]);
  return sequences_[id];
}

const Partition& SequenceDatabase::partition(size_t id) const {
  MDSEQ_CHECK(id < partitions_.size());
  MDSEQ_CHECK(!removed_[id]);
  return partitions_[id];
}

}  // namespace mdseq
