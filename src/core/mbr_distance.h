#ifndef MDSEQ_CORE_MBR_DISTANCE_H_
#define MDSEQ_CORE_MBR_DISTANCE_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "core/partitioning.h"
#include "geom/mbr.h"

namespace mdseq {

/// Result of one normalized-distance evaluation `Dnorm(probe, target[j])`.
///
/// Besides the distance itself, it records the contiguous run of target
/// sequence points `[point_begin, point_end)` that participated in the
/// winning window — the paper approximates the solution interval by exactly
/// this set (Section 3.3, Example 3).
struct NormalizedDistanceResult {
  double distance = 0.0;
  size_t point_begin = 0;
  size_t point_end = 0;
};

/// Precomputes `Dmbr(probe, target[t])` for every MBR of `target` — the
/// inputs shared by all `Dnorm` evaluations of one (probe MBR, sequence)
/// pair.
std::vector<double> ComputeMbrDistances(const Mbr& probe,
                                        const Partition& target);

/// Dimension-major SoA mirror of a partition's MBRs plus the O(1) per-MBR
/// summaries the lower-bound cascade prefilter reads. Coordinate `k` of MBR
/// `i` lives at `[k * n + i]` (the `util/simd.h` layout contract), so the
/// batched kernels stream one coordinate of adjacent MBRs per instruction.
///
/// Built once per (candidate, query) pair and reused by every probe; the
/// source partition may be discarded afterwards (the layout owns copies).
struct PartitionLayout {
  size_t n = 0;    ///< number of MBRs
  size_t dim = 0;  ///< dimensionality
  std::vector<double> low;     ///< `low[k * n + i]`
  std::vector<double> high;    ///< `high[k * n + i]`
  std::vector<double> center;  ///< `center[k * n + i]` — MBR centroids
  /// `radius[i]` — half the MBR's diagonal: the max distance from the
  /// centroid to any point of the rectangle. Together with `center` it
  /// yields the cascade's cheapest Dmbr lower bound
  /// (`PrefilterProbe`).
  std::vector<double> radius;
};

/// Gathers `target` into SoA form. O(m * dim).
PartitionLayout MakePartitionLayout(const Partition& target);

/// SIMD `ComputeMbrDistances`: identical output (bit-for-bit — the batched
/// rectangle kernel matches `Mbr::MinDist2` per pair and `sqrt` is
/// correctly rounded), computed in one pass over the layout's contiguous
/// lo/hi arrays. `layout` must be `MakePartitionLayout(target)`.
std::vector<double> ComputeMbrDistances(const Mbr& probe,
                                        const PartitionLayout& layout);

/// The cascade's O(1)-per-pair prefilter: from centroid/radius summaries
/// alone, `||c_probe - c_i|| - r_probe - r_i` lower-bounds
/// `Dmbr(probe, target[i])` (triangle inequality; every point of a
/// rectangle is within its half-diagonal of its centroid). Returns true iff
/// some target MBR *might* come within `epsilon` of the probe — i.e. the
/// probe survives into the full Dmbr evaluation. A false return proves
/// `min_t Dmbr > epsilon`, the exact condition of the existing probe-level
/// abandon, so skipping the probe is sound.
///
/// The comparison carries 1e-9 relative slack so floating-point rounding
/// can only make the prefilter keep a probe it could have dropped, never
/// drop one it must keep. `probe_center` is `dim` doubles; `scratch` is
/// caller-provided to keep the per-probe cost allocation-free.
bool PrefilterProbe(const double* probe_center, double probe_radius,
                    const PartitionLayout& layout, double epsilon,
                    std::vector<double>* scratch);

/// Centroid (into `center`, `dim` doubles) and half-diagonal radius of one
/// MBR — the probe-side summaries `PrefilterProbe` consumes.
double MbrCenterAndRadius(const Mbr& mbr, double* center);

/// Precomputed prefix sums over one (probe MBR, target partition) pair that
/// turn every Definition-5 window evaluation into O(1) work: a window's
/// weighted distance is a difference of two `prefix_weighted` entries plus
/// the partially counted boundary MBR, and its boundary is located with a
/// monotone two-pointer because `prefix_count` is non-decreasing.
///
/// Borrowed: `target` and `dmbr` must outlive the context and stay
/// unmodified. The target partition must cover a contiguous point range
/// (the `Partition` contract).
struct DnormContext {
  const Partition* target = nullptr;
  const std::vector<double>* dmbr = nullptr;
  /// `prefix_weighted[t] = sum_{u<t} dmbr[u] * count[u]` (size m+1,
  /// accumulated left to right, so `prefix_weighted[m]` is bit-identical to
  /// the naive full-sequence sum).
  std::vector<double> prefix_weighted;
  /// `prefix_count[t] = sum_{u<t} count[u]` (size m+1).
  std::vector<size_t> prefix_count;
  /// Total points of the partition (== `prefix_count[m]`).
  size_t total_points = 0;
  /// `min_t dmbr[t]`; every window's weighted average is >= this, so a
  /// probe whose `min_dmbr` exceeds the threshold cannot contribute a
  /// qualifying window (probe-level early abandon).
  double min_dmbr = std::numeric_limits<double>::infinity();
};

/// Builds the prefix-sum context for one probe. O(m). `dmbr` must be
/// `ComputeMbrDistances(probe, target)`; both must outlive the context.
DnormContext MakeDnormContext(const Partition& target,
                              const std::vector<double>& dmbr);

/// The paper's normalized distance `Dnorm` (Definition 5) between a probe
/// MBR holding `probe_count` points (a query MBR in the usual direction) and
/// the `j`-th MBR of the partitioned data sequence `target`.
///
/// When `target[j]` holds at least `probe_count` points, `Dnorm` equals
/// `Dmbr(probe, target[j])`. Otherwise neighboring MBRs of `target[j]` are
/// folded in until the participating point count reaches `probe_count`:
/// every window of consecutive MBRs that contains `j` fully counted and is
/// grown rightward (`LD`, the last MBR partially counted) or leftward
/// (`RD`, the first MBR partially counted) is evaluated as the point-count
/// weighted average of member `Dmbr`s, and the minimum is returned.
///
/// If the whole sequence holds fewer than `probe_count` points, all MBRs
/// participate with full weight and the average is normalized by the
/// sequence's point count — the lower-bounding property versus
/// `SequenceDistance` is preserved because Definition 3 then slides the
/// (shorter) data sequence over the query and averages over its length.
///
/// `dmbr` must be `ComputeMbrDistances(probe, target)`.
/// Requires a non-empty partition, `j < target.size()` and
/// `probe_count >= 1`.
NormalizedDistanceResult NormalizedDistance(size_t probe_count,
                                            const Partition& target, size_t j,
                                            const std::vector<double>& dmbr);

/// As above, but amortized over a prebuilt `DnormContext`: every window is
/// evaluated in O(1), so one call is O(windows) instead of
/// O(windows * window length). Evaluating all `j` of one probe costs O(m^2)
/// instead of O(m^3).
NormalizedDistanceResult NormalizedDistance(size_t probe_count,
                                            const DnormContext& context,
                                            size_t j);

/// Appends to `out` one entry per Definition-5 window of the pair
/// (probe, target[j]) whose weighted distance is within `epsilon`, and
/// returns the minimum window distance (the `Dnorm` value). The union of
/// the appended spans is the paper's solution-interval contribution of this
/// pair (Section 3.3): *all* points involved in qualifying `Dnorm`
/// computations.
double QualifyingDnormWindows(size_t probe_count, const Partition& target,
                              size_t j, const std::vector<double>& dmbr,
                              double epsilon,
                              std::vector<NormalizedDistanceResult>* out);

/// Context-based variant of `QualifyingDnormWindows` (see
/// `NormalizedDistance` overloads for the cost argument).
double QualifyingDnormWindows(size_t probe_count, const DnormContext& context,
                              size_t j, double epsilon,
                              std::vector<NormalizedDistanceResult>* out);

/// Reference implementations of the two queries above: the naive
/// re-accumulating window enumeration (O(window length) per window). Kept
/// for the differential tests (tests/kernel_equivalence_test.cc) and the
/// old-vs-new microbenchmarks; production code uses the prefix-sum path.
/// The fast path enumerates windows in the same order and produces the same
/// spans; window sums agree to within reassociation error (~1 ulp).
NormalizedDistanceResult ReferenceNormalizedDistance(
    size_t probe_count, const Partition& target, size_t j,
    const std::vector<double>& dmbr);
double ReferenceQualifyingDnormWindows(
    size_t probe_count, const Partition& target, size_t j,
    const std::vector<double>& dmbr, double epsilon,
    std::vector<NormalizedDistanceResult>* out);

/// Minimum of `NormalizedDistance` over every target MBR `j`. Convenience
/// used by tests and by candidate checks that do not need intervals.
double MinNormalizedDistance(const Mbr& probe, size_t probe_count,
                             const Partition& target);

/// Minimum `Dmbr` between any probe MBR of `a` and any MBR of `b` — the
/// quantity of Lemma 1.
double MinMbrDistance(const Partition& a, const Partition& b);

}  // namespace mdseq

#endif  // MDSEQ_CORE_MBR_DISTANCE_H_
