#include "core/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/simd.h"

namespace mdseq {

// All three profile kernels below run through the one dispatched
// simd::PointSumBounded (bound = +infinity for the unbounded callers), so
// their mutual identities — profile[0] == MeanDistance for equal lengths,
// completed bounded windows bit-identical to the unbounded profile — hold
// under every dispatch level, not just scalar.

double MeanDistance(SequenceView a, SequenceView b) {
  MDSEQ_CHECK(a.size() == b.size());
  MDSEQ_CHECK(!a.empty());
  MDSEQ_CHECK(a.dim() == b.dim());
  bool abandoned = false;
  const double sum = simd::PointSumBounded(
      a[0].data(), b[0].data(), a.size(), a.dim(),
      std::numeric_limits<double>::infinity(), &abandoned);
  return sum / static_cast<double>(a.size());
}

std::vector<double> WindowDistanceProfile(SequenceView query,
                                          SequenceView data) {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.size() <= data.size());
  MDSEQ_CHECK(query.dim() == data.dim());
  const size_t k = query.size();
  const size_t dim = query.dim();
  const size_t num_windows = data.size() - k + 1;
  const double* query_base = query[0].data();
  const double* data_base = data[0].data();
  std::vector<double> profile(num_windows);
  for (size_t j = 0; j < num_windows; ++j) {
    bool abandoned = false;
    const double sum = simd::PointSumBounded(
        query_base, data_base + j * dim, k, dim,
        std::numeric_limits<double>::infinity(), &abandoned);
    profile[j] = sum / static_cast<double>(k);
  }
  return profile;
}

std::vector<double> WindowDistanceProfileBounded(SequenceView query,
                                                 SequenceView data,
                                                 double epsilon) {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.size() <= data.size());
  MDSEQ_CHECK(query.dim() == data.dim());
  MDSEQ_CHECK(epsilon >= 0.0);
  const size_t k = query.size();
  const size_t dim = query.dim();
  const size_t num_windows = data.size() - k + 1;
  const double points = static_cast<double>(k);
  // Abandon only when the partial sum exceeds epsilon*k with margin: the
  // relative slack (1e-12, orders of magnitude above the 2^-53 rounding of
  // the final division) guarantees an abandoned window's mean rounds
  // strictly above epsilon, and the absolute floor covers epsilon == 0.
  const double bound = epsilon * points * (1.0 + 1e-12) + 1e-280;
  const double* query_base = query[0].data();
  const double* data_base = data[0].data();
  std::vector<double> profile(num_windows,
                              std::numeric_limits<double>::infinity());
  for (size_t j = 0; j < num_windows; ++j) {
    bool abandoned = false;
    const double sum = simd::PointSumBounded(query_base, data_base + j * dim,
                                             k, dim, bound, &abandoned);
    if (!abandoned) profile[j] = sum / points;
  }
  return profile;
}

double SequenceDistanceBounded(SequenceView a, SequenceView b,
                               double epsilon) {
  MDSEQ_CHECK(!a.empty() && !b.empty());
  SequenceView shorter = a.size() <= b.size() ? a : b;
  SequenceView longer = a.size() <= b.size() ? b : a;
  const std::vector<double> profile =
      WindowDistanceProfileBounded(shorter, longer, epsilon);
  // Alignments within epsilon are never abandoned and carry their exact
  // mean, so when the minimum completed value qualifies it is the exact
  // SequenceDistance; otherwise the true distance provably exceeds epsilon.
  const double best = *std::min_element(profile.begin(), profile.end());
  return best <= epsilon ? best : std::numeric_limits<double>::infinity();
}

double SequenceDistance(SequenceView a, SequenceView b) {
  MDSEQ_CHECK(!a.empty() && !b.empty());
  // Definition 3 slides the shorter sequence along the longer one.
  SequenceView shorter = a.size() <= b.size() ? a : b;
  SequenceView longer = a.size() <= b.size() ? b : a;
  const std::vector<double> profile = WindowDistanceProfile(shorter, longer);
  return *std::min_element(profile.begin(), profile.end());
}

double DistanceToSimilarity(double distance, size_t dim) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(distance >= 0.0);
  const double diagonal = std::sqrt(static_cast<double>(dim));
  return std::clamp(1.0 - distance / diagonal, 0.0, 1.0);
}

double SimilarityToDistance(double similarity, size_t dim) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(similarity >= 0.0 && similarity <= 1.0);
  const double diagonal = std::sqrt(static_cast<double>(dim));
  return (1.0 - similarity) * diagonal;
}

}  // namespace mdseq
