#include "core/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace mdseq {

double MeanDistance(SequenceView a, SequenceView b) {
  MDSEQ_CHECK(a.size() == b.size());
  MDSEQ_CHECK(!a.empty());
  MDSEQ_CHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum += PointDistance(a[i], b[i]);
  }
  return sum / static_cast<double>(a.size());
}

std::vector<double> WindowDistanceProfile(SequenceView query,
                                          SequenceView data) {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.size() <= data.size());
  MDSEQ_CHECK(query.dim() == data.dim());
  const size_t k = query.size();
  const size_t num_windows = data.size() - k + 1;
  std::vector<double> profile(num_windows);
  for (size_t j = 0; j < num_windows; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < k; ++i) {
      sum += PointDistance(query[i], data[j + i]);
    }
    profile[j] = sum / static_cast<double>(k);
  }
  return profile;
}

double SequenceDistance(SequenceView a, SequenceView b) {
  MDSEQ_CHECK(!a.empty() && !b.empty());
  // Definition 3 slides the shorter sequence along the longer one.
  SequenceView shorter = a.size() <= b.size() ? a : b;
  SequenceView longer = a.size() <= b.size() ? b : a;
  const std::vector<double> profile = WindowDistanceProfile(shorter, longer);
  return *std::min_element(profile.begin(), profile.end());
}

double DistanceToSimilarity(double distance, size_t dim) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(distance >= 0.0);
  const double diagonal = std::sqrt(static_cast<double>(dim));
  return std::clamp(1.0 - distance / diagonal, 0.0, 1.0);
}

double SimilarityToDistance(double similarity, size_t dim) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(similarity >= 0.0 && similarity <= 1.0);
  const double diagonal = std::sqrt(static_cast<double>(dim));
  return (1.0 - similarity) * diagonal;
}

}  // namespace mdseq
