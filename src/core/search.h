#ifndef MDSEQ_CORE_SEARCH_H_
#define MDSEQ_CORE_SEARCH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/database.h"
#include "geom/sequence.h"
#include "obs/explain.h"

namespace mdseq {

namespace obs {
class Trace;
}  // namespace obs

/// A half-open run of point indices `[begin, end)` within one sequence.
struct Interval {
  size_t begin = 0;
  size_t end = 0;

  size_t length() const { return end - begin; }
  friend bool operator==(const Interval& a, const Interval& b) = default;
};

/// Sorts and coalesces overlapping/adjacent intervals in place.
void MergeIntervals(std::vector<Interval>* intervals);

/// Total number of points covered by a set of disjoint intervals.
size_t CoveredPoints(const std::vector<Interval>& intervals);

/// One sequence that survived both pruning phases.
struct SequenceMatch {
  size_t sequence_id = 0;
  /// Minimum `Dnorm` over all (query MBR, data MBR) pairs — a lower bound of
  /// the true `SequenceDistance` to the query.
  double min_dnorm = 0.0;
  /// Approximated solution interval (Definition 6 / Section 3.3): merged,
  /// disjoint, ascending runs of points involved in qualifying `Dnorm`
  /// evaluations. For `SearchVerified` results these are the *exact*
  /// intervals instead.
  std::vector<Interval> solution_interval;
  /// Exact `SequenceDistance` to the query; only set (>= 0) by
  /// `SearchVerified`, -1 for plain `Search` results.
  double exact_distance = -1.0;
};

/// Exact solution interval of `data` with respect to `query` (Definition
/// 6): every point covered by some alignment window whose mean distance is
/// within the threshold. Long queries slide the data sequence inside the
/// query instead (Definition 3); the whole data sequence is then the
/// interval whenever some alignment qualifies.
std::vector<Interval> ExactSolutionInterval(SequenceView query,
                                            SequenceView data,
                                            double epsilon);

/// Counters describing one query's execution.
struct SearchStats {
  /// Index node accesses during Phase 2.
  uint64_t node_accesses = 0;
  /// Sequences surviving Phase 2 (the paper's ASmbr).
  size_t phase2_candidates = 0;
  /// Sequences surviving Phase 3 (the paper's ASnorm). For `SearchVerified`
  /// this is the count *after* verification; `filter_matches` keeps the
  /// pre-verification |ASnorm|.
  size_t phase3_matches = 0;
  /// Sequences surviving the Dnorm filter before any verification
  /// (== `phase3_matches` for plain `Search`).
  size_t filter_matches = 0;
  /// `Dnorm` evaluations performed in Phase 3.
  size_t dnorm_evaluations = 0;
  /// Query MBRs produced by Phase 1 partitioning.
  size_t query_mbrs = 0;

  /// Buffer-pool attribution of the index traversal on disk databases
  /// (in-memory searches leave both 0): `page_misses` are real page reads,
  /// `page_hits` were served from the pool. hits + misses == node_accesses.
  uint64_t page_hits = 0;
  uint64_t page_misses = 0;

  /// Per-phase wall-clock nanoseconds, always measured (a handful of clock
  /// reads per query — the figure benches and EXPLAIN read these instead of
  /// re-timing around calls). `second_pruning_ns` covers the whole Phase-3
  /// loop; `interval_assembly_ns` is the sub-slice of it spent merging
  /// qualifying windows into solution intervals. `verify_ns` is only
  /// filled by `SearchVerified`.
  uint64_t partition_ns = 0;
  uint64_t first_pruning_ns = 0;
  uint64_t second_pruning_ns = 0;
  uint64_t interval_assembly_ns = 0;
  uint64_t verify_ns = 0;

  /// Pruning-cascade cost accounting (the per-stage pruning-power signal
  /// the Hydra-style tuning work reads). `probe_abandons` counts Phase-3
  /// candidates dismissed by the cheap min-Dmbr probe before any Dnorm
  /// evaluation; `verify_abandons` counts verification distance
  /// computations abandoned early (exact distance proved > threshold);
  /// `bytes_read` is the raw sequence payload materialized for
  /// verification (points × dim × sizeof(double)).
  uint64_t probe_abandons = 0;
  uint64_t verify_abandons = 0;
  uint64_t bytes_read = 0;

  /// The cascade's cheapest stage: the O(1)-per-pair centroid/radius
  /// prefilter that runs before any full Dmbr evaluation (see
  /// `PrefilterProbe`). `prefilter_abandons` counts query probes dropped by
  /// it across all Phase-3 candidates; `prefilter_survivors` counts
  /// candidates with at least one surviving probe (the second-pruning
  /// stage's effective input); `prefilter_ns` is the sub-slice of
  /// `second_pruning_ns` the prefilter prepass itself cost.
  uint64_t prefilter_abandons = 0;
  uint64_t prefilter_survivors = 0;
  uint64_t prefilter_ns = 0;

  /// Coordinator attribution of sharded queries (see src/shard): time
  /// blocked waiting on the slowest shard, time merging shard responses,
  /// and shard coverage. Single-database queries leave all four zero;
  /// `shards_failed > 0` flags a degraded (partial-coverage) result.
  uint64_t fanout_wait_ns = 0;
  uint64_t merge_ns = 0;
  uint32_t shards_total = 0;
  uint32_t shards_failed = 0;

  /// Approximate-tier quality accounting (see `SearchOptions::
  /// max_candidates`). `approx_candidates_skipped` counts Phase-3
  /// candidates left unevaluated because the candidate budget bound; it is
  /// deterministic (a function of the query, data, and options only), so
  /// the replay harness diffs it like the other cascade counters.
  /// `approx_certified_epsilon` is the largest threshold for which the
  /// result is provably complete: `epsilon` when the budget did not bind
  /// (the result is exact), otherwise the smallest minimum Dmbr among the
  /// skipped candidates — every skipped sequence's distance is at least
  /// that, so no sequence within the certified threshold was missed. For
  /// coordinator-merged results this is the weakest (smallest) bound any
  /// surviving shard reported. Interrupted results are partial regardless;
  /// the bound is only meaningful when `interrupted` is false.
  uint64_t approx_candidates_skipped = 0;
  double approx_certified_epsilon = 0.0;

  /// Wall time of the whole search as the phase sum (assembly is inside
  /// the second-pruning slice, so it is not added again).
  uint64_t TotalPhaseNs() const {
    return partition_ns + first_pruning_ns + second_pruning_ns + verify_ns;
  }
};

/// The pruning funnel of one query as explicit per-stage rows: how many
/// candidates entered each stage, how many survived, how many were killed
/// by an early-abandon shortcut, and what the stage cost. Derived from
/// `SearchStats` by `CascadeOf` — this is the per-stage pruning-power
/// signal EXPLAIN, `/debug/slow`, and the `mdseq_prune_*` metrics report.
struct PruningCascadeStats {
  struct Stage {
    /// Stable stage name: "first_pruning", "prefilter", "second_pruning",
    /// "verify".
    const char* name = "";
    uint64_t candidates_in = 0;
    uint64_t candidates_out = 0;
    /// Early-abandon wins inside the stage (min-Dmbr probe dismissals in
    /// second pruning, bounded-distance abandons in verify).
    uint64_t abandons = 0;
    /// Raw sequence bytes the stage materialized (verify only).
    uint64_t bytes_read = 0;
    uint64_t ns = 0;

    /// Fraction of entering candidates that survived (1.0 when nothing
    /// entered, so an empty funnel reads as "nothing pruned").
    double SurvivorRatio() const {
      return candidates_in == 0
                 ? 1.0
                 : static_cast<double>(candidates_out) /
                       static_cast<double>(candidates_in);
    }
  };

  /// Stages in execution order; verify is present only for verified
  /// queries.
  std::vector<Stage> stages;
};

/// Builds the cascade view of one query. `total_sequences` is the corpus
/// size the first stage filtered (a shard's subset shard-side); `verified`
/// adds the verify stage.
PruningCascadeStats CascadeOf(const SearchStats& stats,
                              uint64_t total_sequences, bool verified);

/// Per-shard slice of a coordinator query's execution: identity, outcome,
/// round-trip time, and the shard's own `SearchStats` — kept un-summed so
/// EXPLAIN and `/debug/slow` can show per-shard skew.
struct ShardQueryStats {
  uint32_t shard = 0;
  bool ok = true;
  bool interrupted = false;
  /// Coordinator-observed round trip of the shard's primary search RPC.
  uint64_t rpc_ns = 0;
  /// Sequences the shard holds (its stage-1 input).
  uint64_t num_sequences = 0;
  /// `ResultDigest` of this shard's slice of the merged matches (global
  /// ids). Lets a replay diff localize a divergence to one shard without
  /// re-running per-shard queries. 0 for failed shards.
  uint64_t digest = 0;
  SearchStats stats;
};

/// Full result of one similarity query.
struct SearchResult {
  /// Ids of Phase-2 candidates (ASmbr), ascending.
  std::vector<size_t> candidates;
  /// Phase-3 matches (ASnorm) with their solution intervals, ascending id.
  std::vector<SequenceMatch> matches;
  SearchStats stats;
  /// Coordinator queries only: one entry per shard (failed shards carry
  /// `ok == false` and zeroed stats). Empty for single-database queries.
  std::vector<ShardQueryStats> shard_breakdown;
  /// True when the search stopped early because its `SearchControl` fired
  /// (cancellation or deadline); candidates/matches are then partial.
  bool interrupted = false;
};

/// Where a query currently is in the three-phase funnel. The numeric order
/// matches execution order, so monitoring code may compare values.
enum class SearchPhase : uint32_t {
  kQueued = 0,
  kPartition = 1,
  kFirstPruning = 2,
  kSecondPruning = 3,
  kVerify = 4,
  kDone = 5,
};

/// "queued" / "partition" / "first_pruning" / ... — stable names used by
/// `/debug/active` and the structured log.
const char* SearchPhaseName(SearchPhase phase);

/// Live progress of one in-flight query, written by the searching thread at
/// the same instrumentation points `SearchStats` uses and read concurrently
/// by introspection endpoints. All fields are relaxed atomics: readers get
/// a coherent *recent* view, not a snapshot — that is enough for a
/// monitoring probe and costs the hot path one store per phase transition.
struct QueryProgress {
  std::atomic<uint32_t> phase{0};
  std::atomic<uint64_t> phase2_candidates{0};
  std::atomic<uint64_t> phase3_matches{0};

  void SetPhase(SearchPhase p) {
    phase.store(static_cast<uint32_t>(p), std::memory_order_relaxed);
  }
  SearchPhase CurrentPhase() const {
    return static_cast<SearchPhase>(phase.load(std::memory_order_relaxed));
  }
};

/// Cooperative interruption of a running query: a cancellation flag (shared
/// with the submitter) and an absolute deadline. Polled at the phase
/// boundaries of the three-phase search — after Phase 2 and between
/// Phase-3 candidates — so a worker thread abandons an expensive query
/// within one candidate evaluation of the signal. Cheap to copy; the
/// atomic (if any) must outlive the search call.
struct SearchControl {
  /// When non-null and set, the search stops at the next checkpoint.
  const std::atomic<bool>* cancel = nullptr;
  /// Second cancellation flag, same semantics as `cancel`. The engine wires
  /// the submitter's token into `cancel` and its own `/debug/cancel`-driven
  /// flag here, so either party can interrupt the query without sharing a
  /// token.
  const std::atomic<bool>* cancel2 = nullptr;
  /// Absolute deadline; `max()` means none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Optional per-query span sink (see src/obs/trace.h). When null —
  /// the default — instrumentation inlines to a pointer test and the
  /// search runs untraced at full speed. The trace must outlive the call
  /// and is written only by the searching thread.
  obs::Trace* trace = nullptr;
  /// Optional live-progress sink (see `QueryProgress`). When null — the
  /// default — progress updates inline to a pointer test.
  QueryProgress* progress = nullptr;

  bool ShouldStop() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    if (cancel2 != nullptr && cancel2->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline != std::chrono::steady_clock::time_point::max() &&
           std::chrono::steady_clock::now() >= deadline;
  }

  void SetPhase(SearchPhase p) const {
    if (progress != nullptr) progress->SetPhase(p);
  }
};

/// Knobs of the search algorithm beyond the paper's defaults.
struct SearchOptions {
  /// The paper's Phase 3 admits a sequence as soon as *one* (query MBR,
  /// data MBR) pair satisfies `Dnorm <= epsilon`. When enabled, this
  /// applies the tighter *composite* test as well: for an equal-length
  /// alignment, `D(Q,S') = sum_i |q_i| * Dmean(Q_i, S_i) / |Q|`, and each
  /// term is lower-bounded by that query MBR's own minimum Dnorm
  /// (Lemma 2), so
  ///
  ///   (sum_i |q_i| * min_j Dnorm(i, j)) / |Q|  <=  D(Q, S)
  ///
  /// is a valid — and strictly larger — lower bound than the single best
  /// pair. Still no false dismissals; strictly better pruning (see
  /// bench/ablation_composite).
  bool composite_bound = false;

  /// Runs the O(1)-per-pair centroid/radius prefilter in front of the full
  /// Dmbr evaluation of every Phase-3 probe (the cascade's cheapest lower
  /// bound; see `PrefilterProbe`). Sound — a dropped probe provably has
  /// `min Dmbr > epsilon` — so results are identical with it on or off;
  /// only the cost profile changes. Ignored (treated as off) under
  /// `composite_bound`, which needs every probe's exact minimum Dnorm.
  bool prefilter = true;

  /// Approximate tier (src/serve): caps the Phase-3 candidates evaluated
  /// per query (0 = unlimited = exact). Candidates are processed in
  /// ascending minimum-Dmbr order, so a budget cut skips only candidates
  /// whose distance is at least the first skipped candidate's minimum
  /// Dmbr; the result is therefore *exact* for every threshold up to
  /// `SearchStats::approx_certified_epsilon` — no false dismissals below
  /// the certified bound, ever.
  uint64_t max_candidates = 0;

  /// Caps the epsilon-doubling rounds of `SearchNearest` (0 = unlimited).
  /// Under the cap the returned neighbors may be fewer than `k`, but every
  /// reported match is still exact and correctly ranked.
  uint32_t max_epsilon_rounds = 0;
};

/// The paper's three-phase SIMILARITY_SEARCH algorithm (Section 3.4.2):
///
///  1. the query sequence is partitioned into MBRs with the same
///     marginal-cost algorithm used for data sequences;
///  2. *first pruning*: for every query MBR, the spatial index returns the
///     data MBRs within `Dmbr <= epsilon`, yielding candidate sequences
///     (no false dismissal by Lemma 1);
///  3. *second pruning*: candidates are re-checked with the tighter `Dnorm`
///     (no false dismissal by Lemmas 2-3), and the solution intervals of
///     surviving sequences are assembled from the points involved in
///     qualifying `Dnorm` windows.
///
/// Queries may be longer than data sequences ("long queries", Section 1);
/// the roles of the two sides are swapped per pair, mirroring Definition 3.
class SimilaritySearch {
 public:
  /// The database must outlive this object.
  explicit SimilaritySearch(const SequenceDatabase* database,
                            const SearchOptions& options = SearchOptions());

  /// Runs the full three-phase search. `query` must be non-empty and of the
  /// database dimensionality; `epsilon >= 0`.
  ///
  /// Faithful to the paper, the result is the *pruned candidate set*: every
  /// truly similar sequence is present (no false dismissal), but false hits
  /// may remain — the evaluation section measures precisely how few.
  ///
  /// The query path is const and touches no shared mutable state, so any
  /// number of threads may search one database concurrently (the engine in
  /// src/engine relies on this). The `control` overload polls for
  /// cancellation/deadline between phases; see `SearchControl`.
  SearchResult Search(SequenceView query, double epsilon) const;
  SearchResult Search(SequenceView query, double epsilon,
                      const SearchControl& control) const;

  /// Filter-and-refine: runs `Search`, then verifies every match against
  /// the raw stored sequence — matches whose exact `SequenceDistance`
  /// exceeds `epsilon` are dropped, survivors carry their exact distance
  /// and the exact solution intervals. This is the step a complete
  /// retrieval system adds on top of the paper's filter.
  SearchResult SearchVerified(SequenceView query, double epsilon) const;
  SearchResult SearchVerified(SequenceView query, double epsilon,
                              const SearchControl& control) const;

  /// Runs Phase 1+2 only and returns candidate sequence ids (ASmbr),
  /// ascending. Used by evaluation to measure the phases separately.
  std::vector<size_t> SearchCandidates(SequenceView query, double epsilon,
                                       SearchStats* stats = nullptr) const;

  /// The `k` most similar sequences by exact `SequenceDistance`, nearest
  /// first (fewer if the database holds fewer than `k` sequences). Runs the
  /// filter at a growing threshold until `k` verified matches exist — every
  /// reported distance is exact. Solution intervals are relative to the
  /// final (grown) threshold, i.e. they cover everything at least that
  /// similar.
  std::vector<SequenceMatch> SearchNearest(SequenceView query,
                                           size_t k) const;

 private:
  const SequenceDatabase* database_;
  SearchOptions options_;
};

/// Order-insensitive stable digest of a result's match set: FNV-1a over the
/// (sequence id, quantized distance) pairs sorted by id. The distance is the
/// reported one — `exact_distance` for verified results, `min_dnorm`
/// otherwise — quantized to 1e-9 so bit-for-bit-equal runs hash equal while
/// the digest stays stable across serialization round trips through text.
/// Two runs of the same query against the same data on the same build must
/// produce the same digest; the workload replay harness (src/engine)
/// compares digests to prove it.
uint64_t ResultDigest(const SequenceMatch* matches, size_t count,
                      bool verified);
uint64_t ResultDigest(const std::vector<SequenceMatch>& matches,
                      bool verified);

/// Copies one query's counters into the flat struct the obs layer renders
/// (`obs::RenderExplainReport` / `obs::ExplainJson`). Derives the
/// solution-interval totals from `result.matches`; `verified` must say
/// whether `result` came from `SearchVerified`.
obs::ExplainStats ToExplainStats(const SearchResult& result,
                                 size_t query_points, size_t dim,
                                 double epsilon, bool verified, bool disk,
                                 size_t database_sequences);

namespace internal {

/// Evaluates the paper's Phase 3 (Dnorm pruning + solution-interval
/// assembly) for one candidate pair. Returns true when the candidate
/// qualifies and fills `match` (everything except `sequence_id`). Shared by
/// the in-memory `SimilaritySearch` and the disk-backed engine. `trace`
/// (optional) receives the assembly span.
bool EvaluatePhase3(const Partition& query_partition, size_t query_length,
                    const Partition& data_partition, size_t data_length,
                    double epsilon, const SearchOptions& options,
                    SequenceMatch* match, SearchStats* stats,
                    obs::Trace* trace = nullptr);

}  // namespace internal

}  // namespace mdseq

#endif  // MDSEQ_CORE_SEARCH_H_
