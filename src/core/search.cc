#include "core/search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/distance.h"
#include "core/mbr_distance.h"
#include "util/check.h"

namespace mdseq {

void MergeIntervals(std::vector<Interval>* intervals) {
  if (intervals->size() <= 1) return;
  std::sort(intervals->begin(), intervals->end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::vector<Interval> merged;
  merged.push_back(intervals->front());
  for (size_t i = 1; i < intervals->size(); ++i) {
    const Interval& next = (*intervals)[i];
    if (next.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, next.end);
    } else {
      merged.push_back(next);
    }
  }
  *intervals = std::move(merged);
}

size_t CoveredPoints(const std::vector<Interval>& intervals) {
  size_t covered = 0;
  for (const Interval& iv : intervals) covered += iv.length();
  return covered;
}

std::vector<Interval> ExactSolutionInterval(SequenceView query,
                                            SequenceView data,
                                            double epsilon) {
  MDSEQ_CHECK(!query.empty() && !data.empty());
  MDSEQ_CHECK(epsilon >= 0.0);
  std::vector<Interval> intervals;
  if (query.size() > data.size()) {
    // Long query: Definition 3 slides `data` along `query`; when any
    // alignment qualifies, the whole data sequence participates.
    const std::vector<double> profile = WindowDistanceProfile(data, query);
    if (*std::min_element(profile.begin(), profile.end()) <= epsilon) {
      intervals.push_back(Interval{0, data.size()});
    }
    return intervals;
  }
  const size_t k = query.size();
  const std::vector<double> profile = WindowDistanceProfile(query, data);
  for (size_t j = 0; j < profile.size(); ++j) {
    if (profile[j] <= epsilon) {
      intervals.push_back(Interval{j, j + k});
    }
  }
  MergeIntervals(&intervals);
  return intervals;
}

SimilaritySearch::SimilaritySearch(const SequenceDatabase* database,
                                   const SearchOptions& options)
    : database_(database), options_(options) {
  MDSEQ_CHECK(database != nullptr);
}

std::vector<size_t> SimilaritySearch::SearchCandidates(
    SequenceView query, double epsilon, SearchStats* stats) const {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.dim() == database_->dim());
  MDSEQ_CHECK(epsilon >= 0.0);

  // Phase 1: partition the query with the database's partitioning options.
  const Partition query_partition = PartitionSequence(
      query, database_->options().partitioning);

  // Phase 2: one index range search per query MBR; a sequence is a candidate
  // as soon as one of its MBRs lies within Dmbr <= epsilon of one query MBR.
  // Accounting uses the per-call visit counts returned by RangeSearch, not
  // the index's cumulative counter, so concurrent queries stay exact.
  const SpatialIndex& index = database_->index();
  uint64_t accesses = 0;
  std::vector<uint64_t> hits;
  std::vector<size_t> candidates;
  for (const SequenceMbr& piece : query_partition) {
    hits.clear();
    accesses += index.RangeSearch(piece.mbr, epsilon, &hits);
    for (uint64_t value : hits) {
      candidates.push_back(SequenceDatabase::UnpackSequenceId(value));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (stats != nullptr) {
    stats->node_accesses += accesses;
    stats->phase2_candidates = candidates.size();
  }
  return candidates;
}

namespace internal {

bool EvaluatePhase3(const Partition& query_partition, size_t query_length,
                    const Partition& data_partition, size_t data_length,
                    double epsilon, const SearchOptions& options,
                    SequenceMatch* match, SearchStats* stats) {
  MDSEQ_CHECK(match != nullptr && stats != nullptr);
  match->min_dnorm = std::numeric_limits<double>::infinity();
  match->solution_interval.clear();
  bool qualified = false;

  // Definition 3 slides the shorter side, so the shorter side's MBRs act
  // as probes; for long queries the roles swap and a qualifying data MBR
  // contributes its own span to the reported interval instead.
  const bool swapped = query_length > data_length;
  const Partition& probes = swapped ? data_partition : query_partition;
  const Partition& targets = swapped ? query_partition : data_partition;

  // Per-probe minimum Dnorm, for the optional composite bound.
  double composite_weighted = 0.0;
  size_t composite_points = 0;

  std::vector<NormalizedDistanceResult> windows;
  for (const SequenceMbr& probe : probes) {
    const std::vector<double> dmbr = ComputeMbrDistances(probe.mbr, targets);
    double probe_min = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < targets.size(); ++j) {
      ++stats->dnorm_evaluations;
      windows.clear();
      const double dnorm = QualifyingDnormWindows(
          probe.count(), targets, j, dmbr, epsilon, &windows);
      probe_min = std::min(probe_min, dnorm);
      if (!windows.empty()) {
        qualified = true;
        if (swapped) {
          match->solution_interval.push_back(
              Interval{probe.begin, probe.end});
        } else {
          for (const NormalizedDistanceResult& w : windows) {
            match->solution_interval.push_back(
                Interval{w.point_begin, w.point_end});
          }
        }
      }
    }
    match->min_dnorm = std::min(match->min_dnorm, probe_min);
    composite_weighted += probe_min * static_cast<double>(probe.count());
    composite_points += probe.count();
  }

  if (qualified && options.composite_bound && composite_points > 0) {
    // The alignment-weighted average of per-probe minima also lower-bounds
    // D(Q, S); prune when it already exceeds the threshold.
    const double composite =
        composite_weighted / static_cast<double>(composite_points);
    if (composite > epsilon) qualified = false;
  }

  if (qualified) MergeIntervals(&match->solution_interval);
  return qualified;
}

}  // namespace internal

SearchResult SimilaritySearch::Search(SequenceView query,
                                      double epsilon) const {
  return Search(query, epsilon, SearchControl());
}

SearchResult SimilaritySearch::Search(SequenceView query, double epsilon,
                                      const SearchControl& control) const {
  SearchResult result;
  result.candidates = SearchCandidates(query, epsilon, &result.stats);

  const Partition query_partition = PartitionSequence(
      query, database_->options().partitioning);

  // Phase 3: second pruning with Dnorm plus solution-interval assembly.
  // The control is polled per candidate — the unit of abandonable work.
  for (size_t id : result.candidates) {
    if (control.ShouldStop()) {
      result.interrupted = true;
      break;
    }
    SequenceMatch match;
    match.sequence_id = id;
    if (internal::EvaluatePhase3(query_partition, query.size(),
                                 database_->partition(id),
                                 database_->sequence(id).size(), epsilon,
                                 options_, &match, &result.stats)) {
      result.matches.push_back(std::move(match));
    }
  }
  result.stats.phase3_matches = result.matches.size();
  return result;
}

SearchResult SimilaritySearch::SearchVerified(SequenceView query,
                                              double epsilon) const {
  return SearchVerified(query, epsilon, SearchControl());
}

SearchResult SimilaritySearch::SearchVerified(
    SequenceView query, double epsilon, const SearchControl& control) const {
  SearchResult result = Search(query, epsilon, control);
  std::vector<SequenceMatch> verified;
  verified.reserve(result.matches.size());
  for (SequenceMatch& match : result.matches) {
    if (control.ShouldStop()) {
      result.interrupted = true;
      break;
    }
    const SequenceView data = database_->sequence(match.sequence_id).View();
    const double exact = SequenceDistance(query, data);
    if (exact > epsilon) continue;
    match.exact_distance = exact;
    match.solution_interval = ExactSolutionInterval(query, data, epsilon);
    verified.push_back(std::move(match));
  }
  result.matches = std::move(verified);
  result.stats.phase3_matches = result.matches.size();
  return result;
}

std::vector<SequenceMatch> SimilaritySearch::SearchNearest(SequenceView query,
                                                           size_t k) const {
  k = std::min(k, database_->num_live_sequences());
  if (k == 0) return {};
  // Grow the threshold until k verified matches exist. SearchVerified
  // returns *every* sequence within the threshold, so once it holds at
  // least k the global top-k is among them.
  const double max_epsilon =
      std::sqrt(static_cast<double>(database_->dim()));
  double epsilon = 0.05;
  while (true) {
    SearchResult result = SearchVerified(query, epsilon);
    if (result.matches.size() >= k || epsilon >= max_epsilon) {
      std::sort(result.matches.begin(), result.matches.end(),
                [](const SequenceMatch& a, const SequenceMatch& b) {
                  return a.exact_distance < b.exact_distance ||
                         (a.exact_distance == b.exact_distance &&
                          a.sequence_id < b.sequence_id);
                });
      if (result.matches.size() > k) result.matches.resize(k);
      return std::move(result.matches);
    }
    epsilon *= 2.0;
  }
}

}  // namespace mdseq
