#include "core/search.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>

#include "core/distance.h"
#include "core/mbr_distance.h"
#include "obs/trace.h"
#include "util/check.h"

namespace mdseq {

namespace {

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedNs(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - start)
          .count());
}

// Phase-2 output: deduplicated candidate ids (ascending) plus, aligned with
// them, the minimum squared Dmbr any (query MBR, hit MBR) pair achieved —
// the key Phase 3 uses to process the most promising candidates first.
struct FirstPruningResult {
  std::vector<size_t> candidates;
  std::vector<double> min_dist2;
};

// Turns per-probe batch hits into the deduplicated candidate list with
// per-candidate minimum squared Dmbr. Shared by the in-memory and disk
// Phase-2 paths.
FirstPruningResult AggregateCandidates(
    const std::vector<std::vector<SpatialIndex::BatchHit>>& hits) {
  std::vector<std::pair<size_t, double>> scored;
  for (const auto& per_query : hits) {
    for (const SpatialIndex::BatchHit& hit : per_query) {
      scored.emplace_back(SequenceDatabase::UnpackSequenceId(hit.value),
                          hit.dist2);
    }
  }
  std::sort(scored.begin(), scored.end());
  FirstPruningResult result;
  for (const auto& [id, dist2] : scored) {
    if (!result.candidates.empty() && result.candidates.back() == id) {
      result.min_dist2.back() = std::min(result.min_dist2.back(), dist2);
    } else {
      result.candidates.push_back(id);
      result.min_dist2.push_back(dist2);
    }
  }
  return result;
}

// Phase 2 against any spatial index: one batched descent for all query
// MBRs (each index node is visited once per query *batch*, not once per
// query MBR). Shared by `Search` (which already holds the partition) and
// the public `SearchCandidates`.
FirstPruningResult FirstPruning(const SpatialIndex& index,
                                const Partition& query_partition,
                                double epsilon, SearchStats* stats,
                                obs::Trace* trace) {
  obs::SpanScope phase_span(trace, "first_pruning");
  const auto start = SteadyClock::now();
  std::vector<Mbr> queries;
  queries.reserve(query_partition.size());
  for (const SequenceMbr& piece : query_partition) {
    queries.push_back(piece.mbr);
  }
  std::vector<std::vector<SpatialIndex::BatchHit>> hits;
  uint64_t accesses = 0;
  {
    obs::SpanScope search_span(trace, "range_search");
    accesses = index.RangeSearchBatch(queries, epsilon, &hits);
    size_t hit_count = 0;
    for (const auto& per_query : hits) hit_count += per_query.size();
    search_span.Arg("probes", queries.size());
    search_span.Arg("node_visits", accesses);
    search_span.Arg("hits", hit_count);
  }
  FirstPruningResult result = AggregateCandidates(hits);
  if (stats != nullptr) {
    stats->node_accesses += accesses;
    stats->phase2_candidates = result.candidates.size();
    stats->first_pruning_ns += ElapsedNs(start);
  }
  phase_span.Arg("node_accesses", accesses);
  phase_span.Arg("candidates", result.candidates.size());
  return result;
}

// Candidate processing order for Phase 3: ascending minimum Dmbr (ties by
// id, so the order — and every downstream counter — is deterministic). An
// interrupted query then spent its budget on the most promising
// candidates.
std::vector<size_t> CandidateOrder(const FirstPruningResult& pruned) {
  std::vector<size_t> order(pruned.candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&pruned](size_t a, size_t b) {
    if (pruned.min_dist2[a] != pruned.min_dist2[b]) {
      return pruned.min_dist2[a] < pruned.min_dist2[b];
    }
    return pruned.candidates[a] < pruned.candidates[b];
  });
  return order;
}

bool MatchIdLess(const SequenceMatch& a, const SequenceMatch& b) {
  return a.sequence_id < b.sequence_id;
}

}  // namespace

void MergeIntervals(std::vector<Interval>* intervals) {
  if (intervals->size() <= 1) return;
  std::sort(intervals->begin(), intervals->end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::vector<Interval> merged;
  merged.push_back(intervals->front());
  for (size_t i = 1; i < intervals->size(); ++i) {
    const Interval& next = (*intervals)[i];
    if (next.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, next.end);
    } else {
      merged.push_back(next);
    }
  }
  *intervals = std::move(merged);
}

size_t CoveredPoints(const std::vector<Interval>& intervals) {
  size_t covered = 0;
  for (const Interval& iv : intervals) covered += iv.length();
  return covered;
}

std::vector<Interval> ExactSolutionInterval(SequenceView query,
                                            SequenceView data,
                                            double epsilon) {
  MDSEQ_CHECK(!query.empty() && !data.empty());
  MDSEQ_CHECK(epsilon >= 0.0);
  std::vector<Interval> intervals;
  // The bounded profile abandons alignments that provably exceed the
  // threshold (they report +inf); alignments within epsilon always
  // complete with their exact mean, so the intervals are identical to the
  // unbounded computation.
  if (query.size() > data.size()) {
    // Long query: Definition 3 slides `data` along `query`; when any
    // alignment qualifies, the whole data sequence participates.
    const std::vector<double> profile =
        WindowDistanceProfileBounded(data, query, epsilon);
    if (*std::min_element(profile.begin(), profile.end()) <= epsilon) {
      intervals.push_back(Interval{0, data.size()});
    }
    return intervals;
  }
  const size_t k = query.size();
  const std::vector<double> profile =
      WindowDistanceProfileBounded(query, data, epsilon);
  for (size_t j = 0; j < profile.size(); ++j) {
    if (profile[j] <= epsilon) {
      intervals.push_back(Interval{j, j + k});
    }
  }
  MergeIntervals(&intervals);
  return intervals;
}

SimilaritySearch::SimilaritySearch(const SequenceDatabase* database,
                                   const SearchOptions& options)
    : database_(database), options_(options) {
  MDSEQ_CHECK(database != nullptr);
}

std::vector<size_t> SimilaritySearch::SearchCandidates(
    SequenceView query, double epsilon, SearchStats* stats) const {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.dim() == database_->dim());
  MDSEQ_CHECK(epsilon >= 0.0);

  // Phase 1: partition the query with the database's partitioning options.
  const auto partition_start = SteadyClock::now();
  const Partition query_partition = PartitionSequence(
      query, database_->options().partitioning);
  if (stats != nullptr) {
    stats->partition_ns += ElapsedNs(partition_start);
    stats->query_mbrs = query_partition.size();
  }

  // Phase 2: one batched index descent for all query MBRs; a sequence is a
  // candidate as soon as one of its MBRs lies within Dmbr <= epsilon of one
  // query MBR. Accounting uses the per-call visit count returned by
  // RangeSearchBatch, not the index's cumulative counter, so concurrent
  // queries stay exact.
  return FirstPruning(database_->index(), query_partition, epsilon, stats,
                      nullptr)
      .candidates;
}

namespace internal {

bool EvaluatePhase3(const Partition& query_partition, size_t query_length,
                    const Partition& data_partition, size_t data_length,
                    double epsilon, const SearchOptions& options,
                    SequenceMatch* match, SearchStats* stats,
                    obs::Trace* trace) {
  MDSEQ_CHECK(match != nullptr && stats != nullptr);
  match->min_dnorm = std::numeric_limits<double>::infinity();
  match->solution_interval.clear();
  bool qualified = false;

  // Definition 3 slides the shorter side, so the shorter side's MBRs act
  // as probes; for long queries the roles swap and a qualifying data MBR
  // contributes its own span to the reported interval instead.
  const bool swapped = query_length > data_length;
  const Partition& probes = swapped ? data_partition : query_partition;
  const Partition& targets = swapped ? query_partition : data_partition;

  // SoA mirror of the target MBRs: one gather serves the prefilter, every
  // probe's batched Dmbr pass, and their centroid/radius summaries.
  const PartitionLayout layout = MakePartitionLayout(targets);

  // Cascade stage "prefilter": the O(1)-per-pair centroid/radius lower
  // bound drops probes that provably satisfy min Dmbr > epsilon before the
  // full Dmbr pass. Disabled under the composite bound (which needs every
  // probe's exact minimum); when disabled every probe passes through, so
  // the stage reads as a no-op rather than a wall.
  const bool use_prefilter = options.prefilter && !options.composite_bound;
  std::vector<uint8_t> probe_skipped;
  size_t surviving_probes = probes.size();
  if (use_prefilter) {
    const auto prefilter_start = SteadyClock::now();
    probe_skipped.assign(probes.size(), 0);
    std::vector<double> center(layout.dim);
    std::vector<double> scratch;
    for (size_t p = 0; p < probes.size(); ++p) {
      const double radius = MbrCenterAndRadius(probes[p].mbr, center.data());
      if (!PrefilterProbe(center.data(), radius, layout, epsilon, &scratch)) {
        probe_skipped[p] = 1;
        --surviving_probes;
        ++stats->prefilter_abandons;
      }
    }
    stats->prefilter_ns += ElapsedNs(prefilter_start);
  }
  if (surviving_probes == 0) return false;
  ++stats->prefilter_survivors;

  // Per-probe minimum Dnorm, for the optional composite bound.
  double composite_weighted = 0.0;
  size_t composite_points = 0;

  std::vector<NormalizedDistanceResult> windows;
  for (size_t probe_index = 0; probe_index < probes.size(); ++probe_index) {
    const SequenceMbr& probe = probes[probe_index];
    if (use_prefilter && probe_skipped[probe_index] != 0) {
      // A dropped probe provably has min Dmbr > epsilon: no qualifying
      // window, and (as with the min-Dmbr abandon below) it cannot carry
      // the reported min_dnorm of a match that qualifies via another
      // probe.
      continue;
    }
    const std::vector<double> dmbr = ComputeMbrDistances(probe.mbr, layout);
    const DnormContext context = MakeDnormContext(targets, dmbr);
    if (!options.composite_bound && context.min_dmbr > epsilon) {
      // Probe-level early abandon: every Dnorm window is a weighted
      // average of Dmbr values, so this probe has no qualifying window,
      // and for a match that qualifies via another probe the reported
      // min_dnorm (<= epsilon) cannot come from this probe either. Not
      // taken under the composite bound, which needs every probe's exact
      // minimum.
      ++stats->probe_abandons;
      continue;
    }
    double probe_min = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < targets.size(); ++j) {
      ++stats->dnorm_evaluations;
      windows.clear();
      const double dnorm = QualifyingDnormWindows(
          probe.count(), context, j, epsilon, &windows);
      probe_min = std::min(probe_min, dnorm);
      if (!windows.empty()) {
        qualified = true;
        if (swapped) {
          match->solution_interval.push_back(
              Interval{probe.begin, probe.end});
        } else {
          for (const NormalizedDistanceResult& w : windows) {
            match->solution_interval.push_back(
                Interval{w.point_begin, w.point_end});
          }
        }
      }
    }
    match->min_dnorm = std::min(match->min_dnorm, probe_min);
    composite_weighted += probe_min * static_cast<double>(probe.count());
    composite_points += probe.count();
  }

  if (qualified && options.composite_bound && composite_points > 0) {
    // The alignment-weighted average of per-probe minima also lower-bounds
    // D(Q, S); prune when it already exceeds the threshold.
    const double composite =
        composite_weighted / static_cast<double>(composite_points);
    if (composite > epsilon) qualified = false;
  }

  if (qualified) {
    obs::SpanScope assembly_span(trace, "assemble_intervals");
    const auto assembly_start = SteadyClock::now();
    MergeIntervals(&match->solution_interval);
    stats->interval_assembly_ns += ElapsedNs(assembly_start);
    assembly_span.Arg("intervals", match->solution_interval.size());
  }
  return qualified;
}

}  // namespace internal

const char* SearchPhaseName(SearchPhase phase) {
  switch (phase) {
    case SearchPhase::kQueued:
      return "queued";
    case SearchPhase::kPartition:
      return "partition";
    case SearchPhase::kFirstPruning:
      return "first_pruning";
    case SearchPhase::kSecondPruning:
      return "second_pruning";
    case SearchPhase::kVerify:
      return "verify";
    case SearchPhase::kDone:
      return "done";
  }
  return "unknown";
}

PruningCascadeStats CascadeOf(const SearchStats& stats,
                              uint64_t total_sequences, bool verified) {
  PruningCascadeStats cascade;
  PruningCascadeStats::Stage first;
  first.name = "first_pruning";
  first.candidates_in = total_sequences;
  first.candidates_out = stats.phase2_candidates;
  first.ns = stats.partition_ns + stats.first_pruning_ns;
  cascade.stages.push_back(first);

  // The prefilter prepass runs inside the Phase-3 loop, so its time is a
  // sub-slice of second_pruning_ns; the second stage reports the exclusive
  // remainder. A candidate "survives" the prefilter when at least one of
  // its probes does (with the prefilter off every candidate passes
  // through).
  PruningCascadeStats::Stage prefilter;
  prefilter.name = "prefilter";
  prefilter.candidates_in = stats.phase2_candidates;
  prefilter.candidates_out = stats.prefilter_survivors;
  prefilter.abandons = stats.prefilter_abandons;
  prefilter.ns = stats.prefilter_ns;
  cascade.stages.push_back(prefilter);

  PruningCascadeStats::Stage second;
  second.name = "second_pruning";
  second.candidates_in = stats.prefilter_survivors;
  second.candidates_out = stats.filter_matches;
  second.abandons = stats.probe_abandons;
  second.ns = stats.second_pruning_ns >= stats.prefilter_ns
                  ? stats.second_pruning_ns - stats.prefilter_ns
                  : 0;
  cascade.stages.push_back(second);

  if (verified) {
    PruningCascadeStats::Stage verify;
    verify.name = "verify";
    verify.candidates_in = stats.filter_matches;
    verify.candidates_out = stats.phase3_matches;
    verify.abandons = stats.verify_abandons;
    verify.bytes_read = stats.bytes_read;
    verify.ns = stats.verify_ns;
    cascade.stages.push_back(verify);
  }
  return cascade;
}

SearchResult SimilaritySearch::Search(SequenceView query,
                                      double epsilon) const {
  return Search(query, epsilon, SearchControl());
}

SearchResult SimilaritySearch::Search(SequenceView query, double epsilon,
                                      const SearchControl& control) const {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.dim() == database_->dim());
  MDSEQ_CHECK(epsilon >= 0.0);
  SearchResult result;

  // Phase 1: one partitioning pass shared by both pruning phases.
  control.SetPhase(SearchPhase::kPartition);
  Partition query_partition;
  {
    obs::SpanScope span(control.trace, "partition");
    const auto start = SteadyClock::now();
    query_partition = PartitionSequence(query,
                                        database_->options().partitioning);
    result.stats.partition_ns += ElapsedNs(start);
    result.stats.query_mbrs = query_partition.size();
    span.Arg("query_mbrs", query_partition.size());
  }

  control.SetPhase(SearchPhase::kFirstPruning);
  FirstPruningResult pruned = FirstPruning(
      database_->index(), query_partition, epsilon, &result.stats,
      control.trace);
  result.candidates = pruned.candidates;
  if (control.progress != nullptr) {
    control.progress->phase2_candidates.store(result.candidates.size(),
                                              std::memory_order_relaxed);
  }

  // Phase 3: second pruning with Dnorm plus solution-interval assembly,
  // processing candidates by ascending minimum Dmbr so an interrupted
  // query covered the most promising ones. The control is polled per
  // candidate — the unit of abandonable work.
  {
    obs::SpanScope span(control.trace, "second_pruning");
    control.SetPhase(SearchPhase::kSecondPruning);
    const auto start = SteadyClock::now();
    const std::vector<size_t> order = CandidateOrder(pruned);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      const size_t slot = order[pos];
      const size_t id = pruned.candidates[slot];
      if (options_.max_candidates > 0 &&
          pos == options_.max_candidates) {
        // Budget cut: candidates are ordered by ascending minimum Dmbr, so
        // every skipped candidate's distance is at least this slot's bound
        // — the result stays exact below the certified threshold.
        result.stats.approx_candidates_skipped = order.size() - pos;
        result.stats.approx_certified_epsilon =
            std::min(epsilon, std::sqrt(pruned.min_dist2[slot]));
        break;
      }
      if (control.ShouldStop()) {
        result.interrupted = true;
        break;
      }
      obs::SpanScope candidate_span(control.trace, "candidate");
      candidate_span.Arg("sequence_id", id);
      const size_t evals_before = result.stats.dnorm_evaluations;
      SequenceMatch match;
      match.sequence_id = id;
      const bool qualified = internal::EvaluatePhase3(
          query_partition, query.size(), database_->partition(id),
          database_->sequence(id).size(), epsilon, options_, &match,
          &result.stats, control.trace);
      candidate_span.Arg("dnorm_evaluations",
                         result.stats.dnorm_evaluations - evals_before);
      candidate_span.Arg("qualified", qualified ? 1 : 0);
      if (qualified) {
        result.matches.push_back(std::move(match));
        if (control.progress != nullptr) {
          control.progress->phase3_matches.store(
              result.matches.size(), std::memory_order_relaxed);
        }
      }
    }
    // The result contract keeps matches ascending by id regardless of the
    // processing order.
    std::sort(result.matches.begin(), result.matches.end(), MatchIdLess);
    result.stats.second_pruning_ns += ElapsedNs(start);
    span.Arg("matches", result.matches.size());
  }
  result.stats.phase3_matches = result.matches.size();
  result.stats.filter_matches = result.matches.size();
  if (result.stats.approx_candidates_skipped == 0) {
    // The budget did not bind (or none was set): the full answer at the
    // requested threshold.
    result.stats.approx_certified_epsilon = epsilon;
  }
  return result;
}

SearchResult SimilaritySearch::SearchVerified(SequenceView query,
                                              double epsilon) const {
  return SearchVerified(query, epsilon, SearchControl());
}

SearchResult SimilaritySearch::SearchVerified(
    SequenceView query, double epsilon, const SearchControl& control) const {
  SearchResult result = Search(query, epsilon, control);
  control.SetPhase(SearchPhase::kVerify);
  obs::SpanScope span(control.trace, "verify");
  const auto start = SteadyClock::now();
  std::vector<SequenceMatch> verified;
  verified.reserve(result.matches.size());
  for (SequenceMatch& match : result.matches) {
    if (control.ShouldStop()) {
      result.interrupted = true;
      break;
    }
    obs::SpanScope candidate_span(control.trace, "verify_candidate");
    candidate_span.Arg("sequence_id", match.sequence_id);
    const SequenceView data = database_->sequence(match.sequence_id).View();
    result.stats.bytes_read += data.size() * data.dim() * sizeof(double);
    // Early-abandoning verification: exact distance when within epsilon,
    // +inf (dropped below) when it provably is not.
    const double exact = SequenceDistanceBounded(query, data, epsilon);
    if (exact > epsilon) {
      ++result.stats.verify_abandons;
      continue;
    }
    match.exact_distance = exact;
    match.solution_interval = ExactSolutionInterval(query, data, epsilon);
    verified.push_back(std::move(match));
  }
  result.matches = std::move(verified);
  result.stats.phase3_matches = result.matches.size();
  result.stats.verify_ns += ElapsedNs(start);
  span.Arg("verified_matches", result.matches.size());
  return result;
}

obs::ExplainStats ToExplainStats(const SearchResult& result,
                                 size_t query_points, size_t dim,
                                 double epsilon, bool verified, bool disk,
                                 size_t database_sequences) {
  obs::ExplainStats out;
  out.query_points = query_points;
  out.dim = dim;
  out.epsilon = epsilon;
  out.verified = verified;
  out.disk = disk;
  out.interrupted = result.interrupted;
  out.database_sequences = database_sequences;

  const SearchStats& stats = result.stats;
  out.query_mbrs = stats.query_mbrs;
  out.partition_ns = stats.partition_ns;
  out.phase2_candidates = stats.phase2_candidates;
  out.node_accesses = stats.node_accesses;
  out.page_hits = stats.page_hits;
  out.page_misses = stats.page_misses;
  out.first_pruning_ns = stats.first_pruning_ns;
  out.phase3_matches = stats.filter_matches;
  out.dnorm_evaluations = stats.dnorm_evaluations;
  out.second_pruning_ns = stats.second_pruning_ns;
  out.interval_assembly_ns = stats.interval_assembly_ns;
  out.verified_matches = verified ? stats.phase3_matches : 0;
  out.verify_ns = stats.verify_ns;
  out.probe_abandons = stats.probe_abandons;
  out.verify_abandons = stats.verify_abandons;
  out.bytes_read = stats.bytes_read;
  out.prefilter_abandons = stats.prefilter_abandons;
  out.prefilter_survivors = stats.prefilter_survivors;
  out.prefilter_ns = stats.prefilter_ns;
  out.approx_candidates_skipped = stats.approx_candidates_skipped;
  out.approx_certified_epsilon = stats.approx_certified_epsilon;
  out.shards_total = stats.shards_total;
  out.shards_failed = stats.shards_failed;
  out.fanout_wait_ns = stats.fanout_wait_ns;
  out.merge_ns = stats.merge_ns;
  for (const ShardQueryStats& shard : result.shard_breakdown) {
    obs::ExplainStats::ShardRow row;
    row.shard = shard.shard;
    row.ok = shard.ok;
    row.interrupted = shard.interrupted;
    row.rpc_ns = shard.rpc_ns;
    row.sequences = shard.num_sequences;
    row.phase2_candidates = shard.stats.phase2_candidates;
    row.filter_matches = shard.stats.filter_matches;
    row.phase3_matches = shard.stats.phase3_matches;
    row.dnorm_evaluations = shard.stats.dnorm_evaluations;
    row.probe_abandons = shard.stats.probe_abandons;
    row.verify_abandons = shard.stats.verify_abandons;
    row.bytes_read = shard.stats.bytes_read;
    row.prefilter_abandons = shard.stats.prefilter_abandons;
    row.prefilter_survivors = shard.stats.prefilter_survivors;
    row.total_ns = shard.stats.TotalPhaseNs();
    out.shards.push_back(row);
  }

  for (const SequenceMatch& match : result.matches) {
    out.solution_intervals += match.solution_interval.size();
    out.solution_points += CoveredPoints(match.solution_interval);
  }
  return out;
}

std::vector<SequenceMatch> SimilaritySearch::SearchNearest(SequenceView query,
                                                           size_t k) const {
  k = std::min(k, database_->num_live_sequences());
  if (k == 0) return {};
  // Grow the threshold until k verified matches exist. The filter returns
  // *every* sequence within the threshold, so once k are verified the
  // global top-k is among them. Exact distances verified in earlier
  // (smaller-threshold) rounds are cached and reused — a sequence within
  // an earlier epsilon is within every later one, so each sequence is
  // verified at most once across the doublings.
  const double max_epsilon =
      std::sqrt(static_cast<double>(database_->dim()));
  std::map<size_t, double> verified;  // id -> exact SequenceDistance
  double epsilon = 0.05;
  uint32_t rounds = 0;
  while (true) {
    ++rounds;
    SearchResult filtered = Search(query, epsilon);
    for (const SequenceMatch& match : filtered.matches) {
      if (verified.count(match.sequence_id) != 0) continue;
      const double exact = SequenceDistanceBounded(
          query, database_->sequence(match.sequence_id).View(), epsilon);
      if (exact <= epsilon) verified.emplace(match.sequence_id, exact);
    }
    // The approximate tier's round cap stops the doubling early: the
    // matches found so far are exact and correctly ranked, there may just
    // be fewer than k of them.
    const bool budget_cut = options_.max_epsilon_rounds > 0 &&
                            rounds >= options_.max_epsilon_rounds;
    if (verified.size() >= k || epsilon >= max_epsilon || budget_cut) {
      // Every cached id re-qualifies at the final (largest) threshold, so
      // `filtered.matches` carries its current min_dnorm; the exact
      // solution intervals are computed only for the reported top-k.
      std::vector<std::pair<double, size_t>> ranked;
      ranked.reserve(verified.size());
      for (const auto& [id, exact] : verified) {
        ranked.emplace_back(exact, id);
      }
      std::sort(ranked.begin(), ranked.end());
      if (ranked.size() > k) ranked.resize(k);
      std::vector<SequenceMatch> nearest;
      nearest.reserve(ranked.size());
      for (const auto& [exact, id] : ranked) {
        SequenceMatch match;
        match.sequence_id = id;
        match.exact_distance = exact;
        for (const SequenceMatch& filter_match : filtered.matches) {
          if (filter_match.sequence_id == id) {
            match.min_dnorm = filter_match.min_dnorm;
            break;
          }
        }
        match.solution_interval = ExactSolutionInterval(
            query, database_->sequence(id).View(), epsilon);
        nearest.push_back(std::move(match));
      }
      return nearest;
    }
    epsilon *= 2.0;
  }
}

uint64_t ResultDigest(const SequenceMatch* matches, size_t count,
                      bool verified) {
  // (id, quantized distance), sorted by id so the digest is insensitive to
  // merge order (shard fan-ins append in completion order before sorting).
  std::vector<std::pair<uint64_t, int64_t>> entries;
  entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const double distance =
        verified ? matches[i].exact_distance : matches[i].min_dnorm;
    entries.emplace_back(static_cast<uint64_t>(matches[i].sequence_id),
                         llround(distance * 1e9));
  }
  std::sort(entries.begin(), entries.end());
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a offset basis.
  const auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xff;
      hash *= 1099511628211ULL;  // FNV-1a prime.
    }
  };
  mix(static_cast<uint64_t>(count));
  for (const auto& [id, quantized] : entries) {
    mix(id);
    mix(static_cast<uint64_t>(quantized));
  }
  return hash;
}

uint64_t ResultDigest(const std::vector<SequenceMatch>& matches,
                      bool verified) {
  return ResultDigest(matches.data(), matches.size(), verified);
}

}  // namespace mdseq
