#ifndef MDSEQ_CORE_DATABASE_H_
#define MDSEQ_CORE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/partitioning.h"
#include "geom/sequence.h"
#include "index/spatial_index.h"

namespace mdseq {

/// Configuration of a `SequenceDatabase`.
struct DatabaseOptions {
  /// Which spatial index stores the subsequence MBRs (the paper's "R-tree
  /// or its variants").
  enum class IndexKind {
    kRStarTree,         ///< default
    kGuttmanQuadratic,  ///< classic R-tree, quadratic split
    kGuttmanLinear,     ///< classic R-tree, linear split
    kLinear,            ///< flat page scan, used by the index ablation
  };

  PartitioningOptions partitioning;
  IndexKind index_kind = IndexKind::kRStarTree;
  /// Index page fanout (entries per node).
  size_t index_fanout = 32;
};

/// The stored collection the paper searches: every added sequence is
/// partitioned into subsequences (Section 3.4.1 "Index construction"), each
/// subsequence's MBR is inserted into the spatial index, and the raw
/// sequence is retained for interval reporting and exact post-processing.
///
/// Index entry payloads pack `(sequence id, MBR ordinal)`; see `PackEntry`.
class SequenceDatabase {
 public:
  explicit SequenceDatabase(size_t dim,
                            const DatabaseOptions& options = DatabaseOptions());

  /// Adds a sequence (must be non-empty and of the database dimensionality);
  /// returns its id. Ids are dense, starting at 0, and are never reused.
  size_t Add(Sequence sequence);

  /// Removes a sequence: its MBRs leave the index immediately (queries can
  /// no longer return it) and its id becomes a tombstone. Returns false if
  /// the id was already removed. Removing does not invalidate other ids.
  bool Remove(size_t id);

  /// True when `id` has been removed; `sequence()`/`partition()` must not
  /// be called for removed ids.
  bool is_removed(size_t id) const;

  size_t dim() const { return dim_; }

  /// Number of ids ever assigned (including tombstones); iterate
  /// `[0, num_sequences())` and skip `is_removed` ids.
  size_t num_sequences() const { return sequences_.size(); }

  /// Number of live (non-removed) sequences.
  size_t num_live_sequences() const { return sequences_.size() - removed_count_; }

  /// Total number of points across all stored sequences.
  size_t total_points() const { return total_points_; }

  /// Total number of subsequence MBRs across all stored sequences.
  size_t total_mbrs() const { return index_->size(); }

  const Sequence& sequence(size_t id) const;
  const Partition& partition(size_t id) const;

  const SpatialIndex& index() const { return *index_; }
  SpatialIndex* mutable_index() { return index_.get(); }

  const DatabaseOptions& options() const { return options_; }

  /// Packs a (sequence id, MBR ordinal) pair into an index payload.
  static uint64_t PackEntry(size_t sequence_id, size_t mbr_ordinal) {
    return (static_cast<uint64_t>(sequence_id) << 32) |
           static_cast<uint64_t>(mbr_ordinal);
  }
  static size_t UnpackSequenceId(uint64_t value) {
    return static_cast<size_t>(value >> 32);
  }
  static size_t UnpackMbrOrdinal(uint64_t value) {
    return static_cast<size_t>(value & 0xffffffffULL);
  }

 private:
  size_t dim_;
  DatabaseOptions options_;
  std::unique_ptr<SpatialIndex> index_;
  std::vector<Sequence> sequences_;
  std::vector<Partition> partitions_;
  std::vector<bool> removed_;
  size_t removed_count_ = 0;
  size_t total_points_ = 0;
};

}  // namespace mdseq

#endif  // MDSEQ_CORE_DATABASE_H_
