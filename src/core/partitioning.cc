#include "core/partitioning.h"

#include <algorithm>

#include "util/check.h"

namespace mdseq {

double EstimatedAccessCost(const Mbr& mbr,
                           const PartitioningOptions& options) {
  MDSEQ_CHECK(mbr.is_valid());
  MDSEQ_CHECK(options.side_growth >= 0.0);
  if (options.cost_model == PartitioningOptions::CostModel::kAdditive) {
    double sum = 0.0;
    for (size_t k = 0; k < mbr.dim(); ++k) {
      sum += mbr.Side(k) + options.side_growth;
    }
    return sum;
  }
  double volume = 1.0;
  for (size_t k = 0; k < mbr.dim(); ++k) {
    volume *= mbr.Side(k) + options.side_growth;
  }
  return volume;
}

Partition PartitionSequence(SequenceView seq,
                            const PartitioningOptions& options) {
  MDSEQ_CHECK(options.max_points >= 1);
  Partition partition;
  if (seq.empty()) return partition;

  Mbr current(seq.dim());
  current.Expand(seq[0]);
  size_t begin = 0;
  size_t count = 1;
  double current_mcost =
      EstimatedAccessCost(current, options) / static_cast<double>(count);

  for (size_t i = 1; i < seq.size(); ++i) {
    Mbr grown = current;
    grown.Expand(seq[i]);
    const double grown_mcost =
        EstimatedAccessCost(grown, options) / static_cast<double>(count + 1);
    if (grown_mcost > current_mcost || count + 1 > options.max_points) {
      // Close the current subsequence and start another MBR at this point.
      partition.push_back(SequenceMbr{current, begin, i});
      current = Mbr(seq.dim());
      current.Expand(seq[i]);
      begin = i;
      count = 1;
      current_mcost =
          EstimatedAccessCost(current, options) / static_cast<double>(count);
    } else {
      current = grown;
      ++count;
      current_mcost = grown_mcost;
    }
  }
  partition.push_back(SequenceMbr{current, begin, seq.size()});
  return partition;
}

Partition PartitionFixed(SequenceView seq, size_t piece_length) {
  MDSEQ_CHECK(piece_length >= 1);
  Partition partition;
  for (size_t begin = 0; begin < seq.size(); begin += piece_length) {
    const size_t end = std::min(begin + piece_length, seq.size());
    partition.push_back(
        SequenceMbr{seq.Slice(begin, end).BoundingBox(), begin, end});
  }
  return partition;
}

}  // namespace mdseq
