#include "core/partitioning.h"

#include <algorithm>

#include "util/check.h"

namespace mdseq {

double EstimatedAccessCost(const Mbr& mbr,
                           const PartitioningOptions& options) {
  MDSEQ_CHECK(mbr.is_valid());
  MDSEQ_CHECK(options.side_growth >= 0.0);
  if (options.cost_model == PartitioningOptions::CostModel::kAdditive) {
    double sum = 0.0;
    for (size_t k = 0; k < mbr.dim(); ++k) {
      sum += mbr.Side(k) + options.side_growth;
    }
    return sum;
  }
  double volume = 1.0;
  for (size_t k = 0; k < mbr.dim(); ++k) {
    volume *= mbr.Side(k) + options.side_growth;
  }
  return volume;
}

IncrementalPartitioner::IncrementalPartitioner(
    size_t dim, const PartitioningOptions& options)
    : dim_(dim), options_(options), current_(dim) {
  MDSEQ_CHECK(options.max_points >= 1);
}

std::optional<SequenceMbr> IncrementalPartitioner::Add(PointView p) {
  MDSEQ_CHECK(p.size() == dim_);
  std::optional<SequenceMbr> sealed;
  if (count_ == 0) {
    current_ = Mbr(dim_);
    current_.Expand(p);
    begin_ = total_;
    count_ = 1;
    current_mcost_ = EstimatedAccessCost(current_, options_);
  } else {
    Mbr grown = current_;
    grown.Expand(p);
    const double grown_mcost = EstimatedAccessCost(grown, options_) /
                               static_cast<double>(count_ + 1);
    if (grown_mcost > current_mcost_ || count_ + 1 > options_.max_points) {
      // Close the current subsequence and start another MBR at this point.
      sealed = SequenceMbr{current_, begin_, total_};
      current_ = Mbr(dim_);
      current_.Expand(p);
      begin_ = total_;
      count_ = 1;
      current_mcost_ = EstimatedAccessCost(current_, options_);
    } else {
      current_ = grown;
      ++count_;
      current_mcost_ = grown_mcost;
    }
  }
  ++total_;
  return sealed;
}

std::optional<SequenceMbr> IncrementalPartitioner::Finish() {
  if (count_ == 0) return std::nullopt;
  SequenceMbr tail{current_, begin_, total_};
  count_ = 0;
  return tail;
}

std::optional<SequenceMbr> IncrementalPartitioner::Partial() const {
  if (count_ == 0) return std::nullopt;
  return SequenceMbr{current_, begin_, total_};
}

Partition PartitionSequence(SequenceView seq,
                            const PartitioningOptions& options) {
  Partition partition;
  if (seq.empty()) {
    MDSEQ_CHECK(options.max_points >= 1);
    return partition;
  }
  IncrementalPartitioner partitioner(seq.dim(), options);
  for (size_t i = 0; i < seq.size(); ++i) {
    if (std::optional<SequenceMbr> sealed = partitioner.Add(seq[i])) {
      partition.push_back(*sealed);
    }
  }
  partition.push_back(*partitioner.Finish());
  return partition;
}

Partition PartitionFixed(SequenceView seq, size_t piece_length) {
  MDSEQ_CHECK(piece_length >= 1);
  Partition partition;
  for (size_t begin = 0; begin < seq.size(); begin += piece_length) {
    const size_t end = std::min(begin + piece_length, seq.size());
    partition.push_back(
        SequenceMbr{seq.Slice(begin, end).BoundingBox(), begin, end});
  }
  return partition;
}

}  // namespace mdseq
