#include "baseline/shot_detection.h"

#include <cmath>

#include "util/check.h"

namespace mdseq {

std::vector<std::pair<size_t, size_t>> DetectShots(
    SequenceView features, const ShotDetectionOptions& options) {
  MDSEQ_CHECK(!features.empty());
  std::vector<std::pair<size_t, size_t>> shots;
  if (features.size() == 1) {
    shots.emplace_back(0, 1);
    return shots;
  }

  // Step lengths between consecutive frames.
  std::vector<double> steps(features.size() - 1);
  double mean = 0.0;
  for (size_t i = 0; i + 1 < features.size(); ++i) {
    steps[i] = PointDistance(features[i], features[i + 1]);
    mean += steps[i];
  }
  mean /= static_cast<double>(steps.size());
  double variance = 0.0;
  for (double s : steps) variance += (s - mean) * (s - mean);
  variance /= static_cast<double>(steps.size());
  const double threshold =
      std::max(options.min_absolute_jump,
               mean + options.threshold_sigmas * std::sqrt(variance));

  size_t shot_begin = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    const size_t boundary = i + 1;  // a cut between frame i and i+1
    if (steps[i] > threshold &&
        boundary - shot_begin >= options.min_shot_length) {
      shots.emplace_back(shot_begin, boundary);
      shot_begin = boundary;
    }
  }
  shots.emplace_back(shot_begin, features.size());
  return shots;
}

}  // namespace mdseq
