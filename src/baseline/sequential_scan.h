#ifndef MDSEQ_BASELINE_SEQUENTIAL_SCAN_H_
#define MDSEQ_BASELINE_SEQUENTIAL_SCAN_H_

#include <cstddef>
#include <vector>

#include "core/database.h"
#include "core/search.h"
#include "geom/sequence.h"

namespace mdseq {

/// One exact match produced by the sequential scan.
struct ScanMatch {
  size_t sequence_id = 0;
  /// Exact `SequenceDistance` (Definition 3) between query and sequence.
  double distance = 0.0;
  /// Exact solution interval (Definition 6): every point covered by some
  /// alignment window whose mean distance is within the threshold.
  std::vector<Interval> solution_interval;
};

/// The brute-force baseline every experiment compares against: computes the
/// exact `SequenceDistance` to every stored sequence and the exact solution
/// intervals of qualifying sequences, with no index and no MBR bounds.
class SequentialScan {
 public:
  /// The database must outlive this object. Only the raw sequences are used.
  explicit SequentialScan(const SequenceDatabase* database);

  /// Returns all sequences with `SequenceDistance(query, S) <= epsilon`,
  /// ascending by id, with exact solution intervals.
  std::vector<ScanMatch> Search(SequenceView query, double epsilon) const;

 private:
  const SequenceDatabase* database_;
};

}  // namespace mdseq

#endif  // MDSEQ_BASELINE_SEQUENTIAL_SCAN_H_
