#include "baseline/sequential_scan.h"

#include <algorithm>

#include "core/distance.h"
#include "util/check.h"

namespace mdseq {

SequentialScan::SequentialScan(const SequenceDatabase* database)
    : database_(database) {
  MDSEQ_CHECK(database != nullptr);
}

std::vector<ScanMatch> SequentialScan::Search(SequenceView query,
                                              double epsilon) const {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.dim() == database_->dim());
  std::vector<ScanMatch> matches;
  for (size_t id = 0; id < database_->num_sequences(); ++id) {
    if (database_->is_removed(id)) continue;
    const SequenceView data = database_->sequence(id).View();
    const double distance = SequenceDistance(query, data);
    if (distance > epsilon) continue;
    ScanMatch match;
    match.sequence_id = id;
    match.distance = distance;
    match.solution_interval = ExactSolutionInterval(query, data, epsilon);
    matches.push_back(std::move(match));
  }
  return matches;
}

}  // namespace mdseq
