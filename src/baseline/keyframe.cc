#include "baseline/keyframe.h"

#include "core/partitioning.h"
#include "geom/point.h"
#include "util/check.h"

namespace mdseq {

KeyframeSearch::KeyframeSearch(const SequenceDatabase* database,
                               const KeyframeOptions& options)
    : database_(database), options_(options) {
  MDSEQ_CHECK(database != nullptr);
}

std::vector<size_t> KeyframeSearch::KeyframesOfSequence(
    SequenceView sequence, const Partition& partition) const {
  std::vector<size_t> keyframes;
  switch (options_.source) {
    case KeyframeOptions::Source::kPartitions:
      keyframes.reserve(partition.size());
      for (const SequenceMbr& piece : partition) {
        keyframes.push_back(piece.begin + piece.count() / 2);
      }
      break;
    case KeyframeOptions::Source::kDetectedShots:
      for (const auto& [begin, end] :
           DetectShots(sequence, options_.detection)) {
        keyframes.push_back(begin + (end - begin) / 2);
      }
      break;
  }
  return keyframes;
}

std::vector<size_t> KeyframeSearch::KeyframesOf(size_t id) const {
  return KeyframesOfSequence(database_->sequence(id).View(),
                             database_->partition(id));
}

std::vector<size_t> KeyframeSearch::Search(SequenceView query,
                                           double epsilon) const {
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.dim() == database_->dim());
  MDSEQ_CHECK(epsilon >= 0.0);

  const Partition query_partition = PartitionSequence(
      query, database_->options().partitioning);
  const std::vector<size_t> query_keyframes =
      KeyframesOfSequence(query, query_partition);

  const double eps2 = epsilon * epsilon;
  std::vector<size_t> results;
  for (size_t id = 0; id < database_->num_sequences(); ++id) {
    if (database_->is_removed(id)) continue;
    const Sequence& data = database_->sequence(id);
    const std::vector<size_t> data_keyframes = KeyframesOf(id);
    bool hit = false;
    for (size_t qi : query_keyframes) {
      for (size_t di : data_keyframes) {
        if (SquaredDistance(query[qi], data[di]) <= eps2) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) results.push_back(id);
  }
  return results;
}

}  // namespace mdseq
