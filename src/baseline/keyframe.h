#ifndef MDSEQ_BASELINE_KEYFRAME_H_
#define MDSEQ_BASELINE_KEYFRAME_H_

#include <cstddef>
#include <vector>

#include "baseline/shot_detection.h"
#include "core/partitioning.h"
#include "core/database.h"
#include "geom/sequence.h"

namespace mdseq {

/// How the key-frame baseline picks its key frames.
struct KeyframeOptions {
  enum class Source {
    /// One key frame per MCOST partition piece (cheap stand-in).
    kPartitions,
    /// One key frame per *detected shot* — the practice the paper
    /// describes; shots are found by feature-space cut detection.
    kDetectedShots,
  };
  Source source = Source::kPartitions;
  ShotDetectionOptions detection;
};

/// The key-frame search the paper's introduction argues against: "It is
/// usual in video search that a key frame is selected for each shot, and a
/// query is processed on the selected frames. But the search by a key frame
/// does not guarantee the correctness since it cannot always summarize all
/// the frames of a shot."
///
/// Each data sequence is summarized by one key frame per partitioned
/// subsequence (the middle point of each MCOST piece, standing in for "one
/// key frame per shot"); a query is summarized the same way. A sequence is
/// reported when any (query key frame, data key frame) pair lies within the
/// threshold. The ablation benchmark measures the false dismissals this
/// incurs relative to the exact scan.
class KeyframeSearch {
 public:
  /// The database must outlive this object.
  explicit KeyframeSearch(const SequenceDatabase* database,
                          const KeyframeOptions& options = KeyframeOptions());

  /// Returns ids of sequences with a key-frame pair within `epsilon`,
  /// ascending.
  std::vector<size_t> Search(SequenceView query, double epsilon) const;

  /// The key frames (point indices) chosen for sequence `id`.
  std::vector<size_t> KeyframesOf(size_t id) const;

 private:
  std::vector<size_t> KeyframesOfSequence(SequenceView sequence,
                                          const Partition& partition) const;

  const SequenceDatabase* database_;
  KeyframeOptions options_;
};

}  // namespace mdseq

#endif  // MDSEQ_BASELINE_KEYFRAME_H_
