#ifndef MDSEQ_BASELINE_SHOT_DETECTION_H_
#define MDSEQ_BASELINE_SHOT_DETECTION_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "geom/sequence.h"

namespace mdseq {

/// Parameters of the feature-space shot detector.
struct ShotDetectionOptions {
  /// A boundary is declared where the distance between consecutive feature
  /// points exceeds `threshold_sigmas` standard deviations above the mean
  /// (the deviation estimate includes the cut outliers themselves, so the
  /// multiplier is small)
  /// step length (adaptive thresholding), and also exceeds
  /// `min_absolute_jump`.
  double threshold_sigmas = 1.5;
  double min_absolute_jump = 0.05;
  /// Boundaries closer than this to the previous one are suppressed
  /// (shots shorter than a few frames are noise).
  size_t min_shot_length = 4;
};

/// Classic cut detection on a feature sequence: the practice the paper's
/// introduction describes ("a key frame is selected for each shot") needs
/// shots first; real systems find them as jumps in consecutive frame
/// features. Returns half-open [begin, end) frame ranges covering the
/// sequence (a single range when no boundary is found). Requires a
/// non-empty sequence.
std::vector<std::pair<size_t, size_t>> DetectShots(
    SequenceView features, const ShotDetectionOptions& options = {});

}  // namespace mdseq

#endif  // MDSEQ_BASELINE_SHOT_DETECTION_H_
