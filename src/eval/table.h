#ifndef MDSEQ_EVAL_TABLE_H_
#define MDSEQ_EVAL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace mdseq {

/// Fixed-width plain-text table used by the benchmark harnesses to print
/// paper-style result rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void AddNumericRow(const std::vector<double>& cells, int precision = 3);

  /// Renders the table with a separator under the header.
  std::string ToString() const;

  /// Prints to `out` (stdout by default).
  void Print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mdseq

#endif  // MDSEQ_EVAL_TABLE_H_
