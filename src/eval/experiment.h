#ifndef MDSEQ_EVAL_EXPERIMENT_H_
#define MDSEQ_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "gen/query_workload.h"
#include "geom/sequence.h"

namespace mdseq {

/// Which generator populates a workload's database.
enum class DataKind {
  kSynthetic,  ///< fractal sequences (paper Section 4.1, Figure 4)
  kVideo,      ///< synthetic video streams + color features (Figure 5)
};

/// A paper-style experimental setup (Table 2): a database of variable-length
/// sequences plus a set of query sequences drawn from the same corpus.
struct WorkloadConfig {
  DataKind kind = DataKind::kSynthetic;
  /// 1600 synthetic / 1408 video sequences in the paper.
  size_t num_sequences = 1600;
  /// Sequence lengths are uniform in [min_length, max_length] (56-512).
  size_t min_length = 56;
  size_t max_length = 512;
  /// Queries per threshold (20 in the paper; we reuse the same queries
  /// across thresholds, which matches averaging over random queries).
  size_t num_queries = 20;
  QueryWorkloadOptions query;
  DatabaseOptions database;
  uint64_t seed = 42;
};

/// A built workload: the populated database and the query set.
struct Workload {
  std::unique_ptr<SequenceDatabase> database;
  std::vector<Sequence> queries;
};

/// Generates the data set, loads the database, and draws the queries.
Workload BuildWorkload(const WorkloadConfig& config);

/// One row of a threshold sweep — everything Figures 6-10 plot at one
/// epsilon, averaged over the query set.
struct SweepRow {
  double epsilon = 0.0;
  /// Pruning rate of the Dmbr phase (Figures 6-7, "Dmbr" series).
  double pr_dmbr = 0.0;
  /// Pruning rate after the Dnorm phase (Figures 6-7, "Dnorm" series).
  double pr_dnorm = 0.0;
  /// Solution-interval pruning rate (Figures 8-9, "Pruning Rate").
  double pr_si = 0.0;
  /// Solution-interval recall (Figures 8-9, "Recall").
  double recall = 1.0;
  /// Sequential-scan time divided by the method's time (Figure 10).
  double time_ratio = 0.0;

  // Raw averages backing the ratios, for EXPERIMENTS.md and debugging.
  double avg_relevant = 0.0;
  double avg_candidates = 0.0;
  double avg_matches = 0.0;
  double avg_node_accesses = 0.0;
  double avg_scan_ms = 0.0;
  /// Sum of the per-phase times below — the method's time comes from the
  /// engine's own `SearchStats` phase clocks, not an external stopwatch,
  /// so Figure 10 and EXPLAIN report the same numbers.
  double avg_search_ms = 0.0;
  double avg_partition_ms = 0.0;
  double avg_first_pruning_ms = 0.0;
  double avg_second_pruning_ms = 0.0;
};

/// Options of `RunThresholdSweep`.
struct SweepOptions {
  /// Measure wall-clock times and fill `time_ratio` (costs one extra timed
  /// scan per query).
  bool measure_time = true;
  /// Evaluate solution-interval quality (`pr_si`, `recall`).
  bool evaluate_intervals = true;
};

/// Runs the full evaluation protocol of Section 4.2 over one workload:
/// for every query, the exact scan provides ground truth (relevant
/// sequences and exact solution intervals); the three-phase engine is then
/// run at every threshold and its pruning rates, interval quality, and
/// speedup are averaged over the queries.
std::vector<SweepRow> RunThresholdSweep(const SequenceDatabase& database,
                                        const std::vector<Sequence>& queries,
                                        const std::vector<double>& epsilons,
                                        const SweepOptions& options = {});

/// The paper's threshold grid: 0.05, 0.10, ..., 0.50 (Table 2).
std::vector<double> PaperEpsilons();

/// Prints the Table-2-style parameter block for a workload.
void PrintWorkloadSummary(const WorkloadConfig& config,
                          const SequenceDatabase& database,
                          const std::vector<Sequence>& queries);

/// Prints sweep rows as a fixed-width table with the given title.
void PrintSweepRows(const std::string& title,
                    const std::vector<SweepRow>& rows, bool with_time);

/// Prints the per-phase wall-time breakdown (partition / first pruning /
/// second pruning, as measured by the engine's SearchStats clocks) of a
/// timed sweep. Only meaningful when the sweep ran with `measure_time`.
void PrintPhaseBreakdown(const std::string& title,
                         const std::vector<SweepRow>& rows);

/// Writes sweep rows as CSV (all columns) for external plotting. Returns
/// false on I/O failure.
bool WriteSweepCsv(const std::string& path,
                   const std::vector<SweepRow>& rows);

}  // namespace mdseq

#endif  // MDSEQ_EVAL_EXPERIMENT_H_
