#include "eval/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace mdseq {

namespace {

double Rate(size_t total, size_t kept, size_t floor) {
  MDSEQ_CHECK(kept <= total);
  MDSEQ_CHECK(floor <= total);
  const size_t prunable = total - floor;
  if (prunable == 0) return kept <= floor ? 1.0 : 0.0;
  const size_t pruned = total > kept ? total - kept : 0;
  return std::min(1.0, static_cast<double>(pruned) /
                           static_cast<double>(prunable));
}

}  // namespace

double PruningRate(size_t total, size_t retrieved, size_t relevant) {
  return Rate(total, retrieved, relevant);
}

double SolutionIntervalPruningRate(size_t total_points, size_t norm_points,
                                   size_t scan_points) {
  return Rate(total_points, norm_points, scan_points);
}

double Recall(size_t intersection_points, size_t scan_points) {
  MDSEQ_CHECK(intersection_points <= scan_points);
  if (scan_points == 0) return 1.0;
  return static_cast<double>(intersection_points) /
         static_cast<double>(scan_points);
}

size_t IntervalIntersectionSize(const std::vector<Interval>& a,
                                const std::vector<Interval>& b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const size_t lo = std::max(a[i].begin, b[j].begin);
    const size_t hi = std::min(a[i].end, b[j].end);
    if (hi > lo) count += hi - lo;
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace mdseq
