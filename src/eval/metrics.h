#ifndef MDSEQ_EVAL_METRICS_H_
#define MDSEQ_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "core/search.h"

namespace mdseq {

/// The paper's pruning rate (Section 4.2.1):
/// `PR = (|total| - |retrieved|) / (|total| - |relevant|)` — the fraction of
/// prunable sequences the method actually pruned. Returns 1.0 when nothing
/// is prunable (`total == relevant`) and the method retrieved only relevant
/// sequences, 0.0 when nothing is prunable but extra sequences were
/// retrieved anyway (degenerate; cannot happen for correct methods).
double PruningRate(size_t total, size_t retrieved, size_t relevant);

/// The paper's solution-interval pruning rate (Section 4.2.2):
/// `PR_SI = (|Ptotal| - |Pnorm|) / (|Ptotal| - |Pscan|)`, with the same
/// degenerate-case conventions as `PruningRate`.
double SolutionIntervalPruningRate(size_t total_points, size_t norm_points,
                                   size_t scan_points);

/// The paper's recall of the approximated solution interval:
/// `|Pscan ∩ Pnorm| / |Pscan|`; 1.0 when the exact interval is empty.
double Recall(size_t intersection_points, size_t scan_points);

/// Number of points common to two sets of disjoint, sorted intervals.
size_t IntervalIntersectionSize(const std::vector<Interval>& a,
                                const std::vector<Interval>& b);

/// Incremental mean helper used by the experiment harness.
class MeanAccumulator {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
  }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  size_t count() const { return count_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace mdseq

#endif  // MDSEQ_EVAL_METRICS_H_
