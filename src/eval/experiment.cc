#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>

#include "baseline/sequential_scan.h"
#include "core/distance.h"
#include "core/search.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "util/csv.h"
#include "gen/fractal.h"
#include "gen/video.h"
#include "util/check.h"

namespace mdseq {

namespace {

using Clock = std::chrono::steady_clock;

double MillisecondsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

Workload BuildWorkload(const WorkloadConfig& config) {
  MDSEQ_CHECK(config.num_sequences >= 1);
  MDSEQ_CHECK(config.min_length >= 1);
  MDSEQ_CHECK(config.min_length <= config.max_length);
  Rng rng(config.seed);

  std::vector<Sequence> corpus;
  corpus.reserve(config.num_sequences);
  const FractalOptions fractal_options;
  const VideoOptions video_options;
  for (size_t i = 0; i < config.num_sequences; ++i) {
    const size_t length = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(config.min_length),
                       static_cast<int64_t>(config.max_length)));
    switch (config.kind) {
      case DataKind::kSynthetic:
        corpus.push_back(GenerateFractalSequence(length, fractal_options,
                                                 &rng));
        break;
      case DataKind::kVideo:
        corpus.push_back(GenerateVideoSequence(length, video_options, &rng));
        break;
    }
  }

  Workload workload;
  workload.database = std::make_unique<SequenceDatabase>(3, config.database);
  for (const Sequence& seq : corpus) {
    workload.database->Add(seq);
  }
  workload.queries = DrawQueries(corpus, config.num_queries, config.query,
                                 &rng);
  return workload;
}

std::vector<double> PaperEpsilons() {
  std::vector<double> epsilons;
  for (int i = 1; i <= 10; ++i) epsilons.push_back(0.05 * i);
  return epsilons;
}

std::vector<SweepRow> RunThresholdSweep(const SequenceDatabase& database,
                                        const std::vector<Sequence>& queries,
                                        const std::vector<double>& epsilons,
                                        const SweepOptions& options) {
  MDSEQ_CHECK(!queries.empty());
  MDSEQ_CHECK(!epsilons.empty());
  const size_t total = database.num_sequences();
  const SimilaritySearch engine(&database);

  struct RowAccumulator {
    MeanAccumulator pr_dmbr, pr_dnorm, pr_si, recall, time_ratio;
    MeanAccumulator relevant, candidates, matches, node_accesses;
    MeanAccumulator scan_ms, search_ms;
    MeanAccumulator partition_ms, first_pruning_ms, second_pruning_ms;
  };
  std::vector<RowAccumulator> acc(epsilons.size());

  for (const Sequence& query : queries) {
    const SequenceView q = query.View();

    // Ground truth: one exact pass over the database computes, for every
    // stored sequence, the full alignment profile (Definition 3's inner
    // values). Everything threshold-dependent is derived from the profiles.
    // The timed portion is exactly the work a sequential scan cannot avoid.
    const auto scan_start = Clock::now();
    std::vector<std::vector<double>> profiles(total);
    std::vector<double> exact_distance(total);
    std::vector<bool> swapped(total, false);  // long-query pairs
    for (size_t id = 0; id < total; ++id) {
      if (database.is_removed(id)) {
        exact_distance[id] = std::numeric_limits<double>::infinity();
        continue;
      }
      const SequenceView data = database.sequence(id).View();
      if (q.size() <= data.size()) {
        profiles[id] = WindowDistanceProfile(q, data);
      } else {
        profiles[id] = WindowDistanceProfile(data, q);
        swapped[id] = true;
      }
      exact_distance[id] = *std::min_element(profiles[id].begin(),
                                             profiles[id].end());
    }
    const double scan_ms = MillisecondsSince(scan_start);

    for (size_t e = 0; e < epsilons.size(); ++e) {
      const double epsilon = epsilons[e];
      RowAccumulator& row = acc[e];

      size_t relevant = 0;
      for (size_t id = 0; id < total; ++id) {
        if (exact_distance[id] <= epsilon) ++relevant;
      }

      const SearchResult result = engine.Search(q, epsilon);
      // The method's time is the sum of the engine's own per-phase clocks
      // (SearchStats), so the Figure-10 speedup and the EXPLAIN report are
      // computed from one source of truth instead of a second stopwatch.
      const double search_ms =
          static_cast<double>(result.stats.TotalPhaseNs()) / 1e6;

      row.pr_dmbr.Add(PruningRate(total, result.candidates.size(), relevant));
      row.pr_dnorm.Add(PruningRate(total, result.matches.size(), relevant));
      row.relevant.Add(static_cast<double>(relevant));
      row.candidates.Add(static_cast<double>(result.candidates.size()));
      row.matches.Add(static_cast<double>(result.matches.size()));
      row.node_accesses.Add(static_cast<double>(result.stats.node_accesses));
      if (options.measure_time) {
        row.scan_ms.Add(scan_ms);
        row.search_ms.Add(search_ms);
        row.partition_ms.Add(
            static_cast<double>(result.stats.partition_ns) / 1e6);
        row.first_pruning_ms.Add(
            static_cast<double>(result.stats.first_pruning_ns) / 1e6);
        row.second_pruning_ms.Add(
            static_cast<double>(result.stats.second_pruning_ns) / 1e6);
        if (search_ms > 0.0) row.time_ratio.Add(scan_ms / search_ms);
      }

      if (options.evaluate_intervals) {
        // Interval quality over the sequences the method selected: how much
        // of those sequences must still be browsed (PR_SI) and how much of
        // the true answer the approximation covers (Recall).
        size_t total_points = 0;
        size_t norm_points = 0;
        size_t scan_points = 0;
        size_t intersection = 0;
        for (const SequenceMatch& match : result.matches) {
          const size_t id = match.sequence_id;
          const size_t length = database.sequence(id).size();
          total_points += length;
          norm_points += CoveredPoints(match.solution_interval);
          std::vector<Interval> exact;
          if (swapped[id]) {
            if (exact_distance[id] <= epsilon) {
              exact.push_back(Interval{0, length});
            }
          } else {
            const size_t k = q.size();
            for (size_t j = 0; j < profiles[id].size(); ++j) {
              if (profiles[id][j] <= epsilon) {
                exact.push_back(Interval{j, j + k});
              }
            }
            MergeIntervals(&exact);
          }
          scan_points += CoveredPoints(exact);
          intersection +=
              IntervalIntersectionSize(exact, match.solution_interval);
        }
        row.pr_si.Add(SolutionIntervalPruningRate(total_points, norm_points,
                                                  scan_points));
        row.recall.Add(Recall(intersection, scan_points));
      }
    }
  }

  std::vector<SweepRow> rows(epsilons.size());
  for (size_t e = 0; e < epsilons.size(); ++e) {
    SweepRow& row = rows[e];
    row.epsilon = epsilons[e];
    row.pr_dmbr = acc[e].pr_dmbr.Mean();
    row.pr_dnorm = acc[e].pr_dnorm.Mean();
    row.pr_si = acc[e].pr_si.Mean();
    row.recall = options.evaluate_intervals ? acc[e].recall.Mean() : 1.0;
    row.time_ratio = acc[e].time_ratio.Mean();
    row.avg_relevant = acc[e].relevant.Mean();
    row.avg_candidates = acc[e].candidates.Mean();
    row.avg_matches = acc[e].matches.Mean();
    row.avg_node_accesses = acc[e].node_accesses.Mean();
    row.avg_scan_ms = acc[e].scan_ms.Mean();
    row.avg_search_ms = acc[e].search_ms.Mean();
    row.avg_partition_ms = acc[e].partition_ms.Mean();
    row.avg_first_pruning_ms = acc[e].first_pruning_ms.Mean();
    row.avg_second_pruning_ms = acc[e].second_pruning_ms.Mean();
  }
  return rows;
}

void PrintWorkloadSummary(const WorkloadConfig& config,
                          const SequenceDatabase& database,
                          const std::vector<Sequence>& queries) {
  std::printf("Workload (paper Table 2):\n");
  std::printf("  data kind            : %s\n",
              config.kind == DataKind::kSynthetic ? "synthetic (fractal)"
                                                  : "video (synthetic shots)");
  std::printf("  # of data sequences  : %zu\n", database.num_sequences());
  std::printf("  sequence length      : %zu-%zu points\n", config.min_length,
              config.max_length);
  std::printf("  total points         : %zu\n", database.total_points());
  std::printf("  total MBRs indexed   : %zu\n", database.total_mbrs());
  std::printf("  # of query sequences : %zu (length %zu-%zu)\n",
              queries.size(), config.query.min_length,
              config.query.max_length);
  std::printf("  seed                 : %llu\n",
              static_cast<unsigned long long>(config.seed));
  std::printf("\n");
}

bool WriteSweepCsv(const std::string& path,
                   const std::vector<SweepRow>& rows) {
  CsvWriter csv({"epsilon", "pr_dmbr", "pr_dnorm", "pr_si", "recall",
                 "time_ratio", "avg_relevant", "avg_candidates",
                 "avg_matches", "avg_node_accesses", "avg_scan_ms",
                 "avg_search_ms", "avg_partition_ms", "avg_first_pruning_ms",
                 "avg_second_pruning_ms"});
  for (const SweepRow& row : rows) {
    csv.AddRow(std::vector<double>{
        row.epsilon, row.pr_dmbr, row.pr_dnorm, row.pr_si, row.recall,
        row.time_ratio, row.avg_relevant, row.avg_candidates,
        row.avg_matches, row.avg_node_accesses, row.avg_scan_ms,
        row.avg_search_ms, row.avg_partition_ms, row.avg_first_pruning_ms,
        row.avg_second_pruning_ms});
  }
  return csv.WriteFile(path);
}

void PrintSweepRows(const std::string& title,
                    const std::vector<SweepRow>& rows, bool with_time) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> header = {"eps",     "PR(Dmbr)", "PR(Dnorm)",
                                     "PR_SI",   "Recall",   "relevant",
                                     "cand",    "matched",  "nodes"};
  if (with_time) {
    header.push_back("scan ms");
    header.push_back("ours ms");
    header.push_back("speedup");
  }
  TextTable table(header);
  for (const SweepRow& row : rows) {
    std::vector<double> cells = {row.epsilon,        row.pr_dmbr,
                                 row.pr_dnorm,       row.pr_si,
                                 row.recall,         row.avg_relevant,
                                 row.avg_candidates, row.avg_matches,
                                 row.avg_node_accesses};
    if (with_time) {
      cells.push_back(row.avg_scan_ms);
      cells.push_back(row.avg_search_ms);
      cells.push_back(row.time_ratio);
    }
    table.AddNumericRow(cells, 3);
  }
  table.Print();
  std::printf("\n");
}

void PrintPhaseBreakdown(const std::string& title,
                         const std::vector<SweepRow>& rows) {
  std::printf("%s\n", title.c_str());
  TextTable table({"eps", "partition ms", "phase2 ms", "phase3 ms",
                   "total ms"});
  for (const SweepRow& row : rows) {
    table.AddNumericRow({row.epsilon, row.avg_partition_ms,
                         row.avg_first_pruning_ms, row.avg_second_pruning_ms,
                         row.avg_search_ms},
                        3);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace mdseq
