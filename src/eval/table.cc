#include "eval/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace mdseq {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  MDSEQ_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddNumericRow(const std::vector<double>& cells,
                              int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  char buf[64];
  for (double v : cells) {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    formatted.emplace_back(buf);
  }
  AddRow(std::move(formatted));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto append_row = [&](std::string* out,
                        const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) *out += "  ";
      out->append(widths[c] - cells[c].size(), ' ');
      *out += cells[c];
    }
    *out += '\n';
  };
  std::string out;
  append_row(&out, header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

void TextTable::Print(std::FILE* out) const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
}

}  // namespace mdseq
