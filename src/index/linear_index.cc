#include "index/linear_index.h"

#include "util/check.h"
#include "util/simd.h"

namespace mdseq {

LinearIndex::LinearIndex(size_t page_capacity)
    : page_capacity_(page_capacity) {
  MDSEQ_CHECK(page_capacity > 0);
}

void LinearIndex::Insert(const Mbr& mbr, uint64_t value) {
  MDSEQ_CHECK(mbr.is_valid());
  entries_.push_back(IndexEntry{mbr, value});
}

bool LinearIndex::Remove(const Mbr& mbr, uint64_t value) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].value == value && entries_[i].mbr == mbr) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

uint64_t LinearIndex::RangeSearch(const Mbr& query, double epsilon,
                                  std::vector<uint64_t>* out) const {
  MDSEQ_CHECK(epsilon >= 0.0);
  const double eps2 = epsilon * epsilon;
  const uint64_t visited =
      (entries_.size() + page_capacity_ - 1) / page_capacity_;
  node_accesses_.fetch_add(visited, std::memory_order_relaxed);
  for (const IndexEntry& e : entries_) {
    if (query.MinDist2(e.mbr) <= eps2) out->push_back(e.value);
  }
  return visited;
}

uint64_t LinearIndex::RangeSearchBatch(
    const std::vector<Mbr>& queries, double epsilon,
    std::vector<std::vector<BatchHit>>* out) const {
  MDSEQ_CHECK(out != nullptr);
  MDSEQ_CHECK(epsilon >= 0.0);
  out->assign(queries.size(), {});
  if (queries.empty()) return 0;
  const double eps2 = epsilon * epsilon;
  // A single scan serves every probe, so the simulated pages are read once.
  const uint64_t visited =
      (entries_.size() + page_capacity_ - 1) / page_capacity_;
  node_accesses_.fetch_add(visited, std::memory_order_relaxed);
  if (entries_.empty()) return visited;
  // One dimension-major SoA gather of all entries, then one batched
  // rectangle-kernel pass per query (bit-identical to Mbr::MinDist2, so
  // hit sets and their entry order match the scalar scan).
  const size_t n = entries_.size();
  const size_t dim = entries_.front().mbr.dim();
  std::vector<double> lo(n * dim);
  std::vector<double> hi(n * dim);
  for (size_t i = 0; i < n; ++i) {
    const Mbr& box = entries_[i].mbr;
    for (size_t k = 0; k < dim; ++k) {
      lo[k * n + i] = box.low()[k];
      hi[k * n + i] = box.high()[k];
    }
  }
  std::vector<double> d2(n);
  for (size_t q = 0; q < queries.size(); ++q) {
    simd::MinDist2Batch(queries[q].low().data(), queries[q].high().data(),
                        lo.data(), hi.data(), n, dim, d2.data());
    std::vector<BatchHit>& hits = (*out)[q];
    for (size_t i = 0; i < n; ++i) {
      if (d2[i] <= eps2) hits.push_back(BatchHit{entries_[i].value, d2[i]});
    }
  }
  return visited;
}

}  // namespace mdseq
