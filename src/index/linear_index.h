#ifndef MDSEQ_INDEX_LINEAR_INDEX_H_
#define MDSEQ_INDEX_LINEAR_INDEX_H_

#include <atomic>
#include <vector>

#include "index/spatial_index.h"

namespace mdseq {

/// Flat-array baseline implementation of `SpatialIndex`.
///
/// Every query scans all entries; node accesses are accounted as one access
/// per simulated page of `page_capacity` entries so the ablation benchmark
/// can compare its "disk" cost against the R*-tree on equal terms.
class LinearIndex : public SpatialIndex {
 public:
  /// `page_capacity` is the number of entries per simulated page (defaults
  /// to the R*-tree's default fanout).
  explicit LinearIndex(size_t page_capacity = 32);

  void Insert(const Mbr& mbr, uint64_t value) override;
  bool Remove(const Mbr& mbr, uint64_t value) override;
  uint64_t RangeSearch(const Mbr& query, double epsilon,
                       std::vector<uint64_t>* out) const override;
  /// One scan (and one set of simulated page accesses) for all probes.
  uint64_t RangeSearchBatch(
      const std::vector<Mbr>& queries, double epsilon,
      std::vector<std::vector<BatchHit>>* out) const override;
  size_t size() const override { return entries_.size(); }
  uint64_t node_accesses() const override {
    return node_accesses_.load(std::memory_order_relaxed);
  }
  void ResetNodeAccesses() override {
    node_accesses_.store(0, std::memory_order_relaxed);
  }

 private:
  size_t page_capacity_;
  std::vector<IndexEntry> entries_;
  mutable std::atomic<uint64_t> node_accesses_{0};
};

}  // namespace mdseq

#endif  // MDSEQ_INDEX_LINEAR_INDEX_H_
