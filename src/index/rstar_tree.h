#ifndef MDSEQ_INDEX_RSTAR_TREE_H_
#define MDSEQ_INDEX_RSTAR_TREE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "index/spatial_index.h"

namespace mdseq {

/// Which classic R-tree flavor the tree behaves as. The paper indexes MBRs
/// "by using the R-tree or its variants"; all three are provided so the
/// index ablation can compare them.
enum class RTreeVariant {
  /// Beckmann et al. 1990: overlap-aware ChooseSubtree, margin-driven
  /// split, forced reinsertion (default).
  kRStar,
  /// Guttman 1984 with the quadratic split: ChooseLeaf by minimum area
  /// enlargement, quadratic PickSeeds/PickNext, no reinsertion.
  kGuttmanQuadratic,
  /// Guttman 1984 with the linear split.
  kGuttmanLinear,
};

/// Tuning parameters of the R*-tree.
struct RStarTreeOptions {
  /// Maximum entries per node (fanout, the paper's page capacity).
  size_t max_entries = 32;
  /// Minimum fill; Beckmann et al. recommend 40% of the fanout. Must satisfy
  /// `2 <= min_entries <= max_entries / 2`.
  size_t min_entries = 13;
  /// Entries removed and re-inserted on the first overflow of a level
  /// (forced reinsertion); Beckmann et al. recommend 30% of the fanout.
  /// Ignored by the Guttman variants.
  size_t reinsert_entries = 9;
  /// Tree flavor; see `RTreeVariant`.
  RTreeVariant variant = RTreeVariant::kRStar;

  /// Derives the recommended min/reinsert counts for a given fanout.
  static RStarTreeOptions ForFanout(
      size_t fanout, RTreeVariant variant = RTreeVariant::kRStar);
};

/// In-memory R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990) —
/// the "R-tree variant" the paper indexes subsequence MBRs with.
///
/// Implements ChooseSubtree with minimum overlap enlargement at the leaf
/// level, the R* topological split (margin-driven axis choice, then
/// overlap-driven distribution choice), forced reinsertion on first overflow
/// per level per insertion, deletion with tree condensation, and an
/// STR-based bulk loader. Queries count node accesses as a proxy for disk
/// accesses.
class RStarTree : public SpatialIndex {
 public:
  explicit RStarTree(size_t dim,
                     const RStarTreeOptions& options = RStarTreeOptions());
  ~RStarTree() override;

  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;
  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Builds a tree bottom-up from `entries` with the Sort-Tile-Recursive
  /// packing algorithm (Leutenegger et al., 1997). Much faster than repeated
  /// insertion and produces better-packed pages for static data sets.
  static RStarTree BulkLoad(size_t dim, std::vector<IndexEntry> entries,
                            const RStarTreeOptions& options =
                                RStarTreeOptions());

  void Insert(const Mbr& mbr, uint64_t value) override;
  bool Remove(const Mbr& mbr, uint64_t value) override;
  uint64_t RangeSearch(const Mbr& query, double epsilon,
                       std::vector<uint64_t>* out) const override;
  /// Single descent for all probes: each node is visited once and tested
  /// against the queries still active for its subtree (see
  /// `SpatialIndex::RangeSearchBatch`).
  uint64_t RangeSearchBatch(
      const std::vector<Mbr>& queries, double epsilon,
      std::vector<std::vector<BatchHit>>* out) const override;
  size_t size() const override { return size_; }
  uint64_t node_accesses() const override {
    return node_accesses_.load(std::memory_order_relaxed);
  }
  void ResetNodeAccesses() override {
    node_accesses_.store(0, std::memory_order_relaxed);
  }

  /// Appends payloads of every entry whose rectangle intersects `query`
  /// (equivalent to `RangeSearch(query, 0, out)` but without the epsilon
  /// arithmetic).
  void IntersectSearch(const Mbr& query, std::vector<uint64_t>* out) const;

  /// The `k` stored entries with the smallest `Dmbr` to `query`, nearest
  /// first (fewer if the tree holds fewer). Best-first traversal
  /// (Hjaltason & Samet): nodes are visited in mindist order, so only the
  /// necessary subtrees are opened.
  std::vector<IndexEntry> NearestNeighbors(const Mbr& query, size_t k) const;

  /// Height of the tree: 1 for a single leaf, 0 only conceptually (an empty
  /// tree still has a leaf root, so height is >= 1).
  size_t height() const;

  /// Number of nodes (pages) currently allocated.
  size_t node_count() const;

  /// Verifies the structural invariants (entry containment, fill factors,
  /// uniform leaf depth). Returns false and prints the violated invariant to
  /// stderr when the tree is corrupt; used by tests.
  bool CheckInvariants() const;

  size_t dim() const { return dim_; }
  const RStarTreeOptions& options() const { return options_; }

 private:
  struct Node;
  struct NodeEntry;
  struct PendingInsert;

  Node* ChooseSubtree(Node* node, const Mbr& mbr, size_t target_level) const;
  bool InsertRecursive(Node* node, NodeEntry&& entry, size_t target_level,
                       std::vector<PendingInsert>* pending,
                       std::vector<bool>* reinserted_levels,
                       std::unique_ptr<Node>* split_out);
  void ForcedReinsert(Node* node, std::vector<PendingInsert>* pending);
  std::unique_ptr<Node> SplitNode(Node* node);
  std::unique_ptr<Node> SplitNodeRStar(Node* node);
  std::unique_ptr<Node> SplitNodeQuadratic(Node* node);
  std::unique_ptr<Node> SplitNodeLinear(Node* node);
  std::unique_ptr<Node> DistributeGuttman(Node* node, size_t seed_a,
                                          size_t seed_b, bool quadratic_pick);
  void InsertEntryAtLevel(NodeEntry&& entry, size_t target_level,
                          std::vector<bool>* reinserted_levels);
  bool RemoveRecursive(Node* node, const Mbr& mbr, uint64_t value,
                       std::vector<PendingInsert>* orphans);
  void GrowRoot(std::unique_ptr<Node> sibling);

  size_t dim_;
  RStarTreeOptions options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  mutable std::atomic<uint64_t> node_accesses_{0};
};

}  // namespace mdseq

#endif  // MDSEQ_INDEX_RSTAR_TREE_H_
