#ifndef MDSEQ_INDEX_SPATIAL_INDEX_H_
#define MDSEQ_INDEX_SPATIAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/mbr.h"

namespace mdseq {

/// One indexed rectangle with an opaque payload. The search engine stores
/// `(sequence id, MBR ordinal)` packed into the value.
struct IndexEntry {
  Mbr mbr;
  uint64_t value;
};

/// Abstract interface of the MBR index the paper builds in its
/// pre-processing step ("Every MBR is indexed and stored into a database by
/// using any R-tree variant", Section 3.4.1).
///
/// Two implementations are provided: `RStarTree` (the R* variant of the
/// R-tree) and `LinearIndex` (a flat page-scan baseline used by the index
/// ablation). Implementations are not thread-safe for concurrent mutation;
/// concurrent read-only queries from any number of threads are safe (the
/// cumulative node-access counter is atomic, and per-query accounting is
/// returned by value from `RangeSearch`).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Inserts one rectangle with its payload.
  virtual void Insert(const Mbr& mbr, uint64_t value) = 0;

  /// Removes one previously inserted (mbr, value) pair. Returns false if no
  /// exactly matching pair is present.
  virtual bool Remove(const Mbr& mbr, uint64_t value) = 0;

  /// Appends to `out` the payloads of every entry whose rectangle lies
  /// within Euclidean distance `epsilon` of `query` — i.e. every stored `B`
  /// with `Dmbr(query, B) <= epsilon` (paper Phase 2). Output order is
  /// implementation-defined. Returns the number of nodes (pages) this call
  /// visited, so concurrent queries get exact per-query accounting without
  /// reading the shared counter.
  virtual uint64_t RangeSearch(const Mbr& query, double epsilon,
                               std::vector<uint64_t>* out) const = 0;

  /// One leaf hit of `RangeSearchBatch`: the entry's payload plus the
  /// squared `Dmbr` between the entry's rectangle and the probing query
  /// MBR — already computed by the traversal's distance test, and used by
  /// the search layer to order Phase-3 candidates most-promising first.
  struct BatchHit {
    uint64_t value = 0;
    double dist2 = 0.0;
  };

  /// Multi-probe range search: `(*out)[i]` receives, for `queries[i]`,
  /// exactly the hits a single `RangeSearch(queries[i], epsilon, ...)`
  /// call would produce (per-query hit *sets* are identical; order within
  /// a query is implementation-defined). Tree-backed implementations
  /// descend once, testing each node against all still-active queries, so
  /// a node shared by several probes is visited (and counted) once — this
  /// is where batched first pruning gets its node-access reduction. The
  /// returned visit count covers the whole batch.
  ///
  /// The default implementation falls back to one `RangeSearch` per query
  /// (no visit sharing) and reports `dist2 = 0` — a valid lower bound,
  /// since `RangeSearch` does not surface distances.
  virtual uint64_t RangeSearchBatch(
      const std::vector<Mbr>& queries, double epsilon,
      std::vector<std::vector<BatchHit>>* out) const {
    out->assign(queries.size(), {});
    uint64_t visited = 0;
    std::vector<uint64_t> hits;
    for (size_t i = 0; i < queries.size(); ++i) {
      hits.clear();
      visited += RangeSearch(queries[i], epsilon, &hits);
      (*out)[i].reserve(hits.size());
      for (uint64_t value : hits) (*out)[i].push_back(BatchHit{value, 0.0});
    }
    return visited;
  }

  /// Number of stored entries.
  virtual size_t size() const = 0;

  /// Node (page) accesses performed by queries since the last reset; the
  /// in-memory analogue of the paper's disk-access cost. Cumulative across
  /// all threads.
  virtual uint64_t node_accesses() const = 0;
  virtual void ResetNodeAccesses() = 0;
};

}  // namespace mdseq

#endif  // MDSEQ_INDEX_SPATIAL_INDEX_H_
