#include "index/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <queue>

#include "util/check.h"
#include "util/simd.h"

namespace mdseq {

// An entry of a tree node: leaf entries carry a payload value and no child;
// internal entries carry the child subtree whose bounding box is `mbr`.
struct RStarTree::NodeEntry {
  Mbr mbr;
  uint64_t value = 0;
  std::unique_ptr<Node> child;

  NodeEntry(Mbr m, uint64_t v) : mbr(std::move(m)), value(v) {}
  NodeEntry(Mbr m, std::unique_ptr<Node> c)
      : mbr(std::move(m)), child(std::move(c)) {}
};

// Level 0 is the leaf level; a node at level L holds children at level L-1.
struct RStarTree::Node {
  size_t level;
  std::vector<NodeEntry> entries;

  explicit Node(size_t lvl) : level(lvl) {}
  bool is_leaf() const { return level == 0; }

  Mbr BoundingBox(size_t dim) const {
    Mbr box(dim);
    for (const NodeEntry& e : entries) box.Expand(e.mbr);
    return box;
  }
};

// An entry waiting to be (re-)inserted at a specific level.
struct RStarTree::PendingInsert {
  NodeEntry entry;
  size_t target_level;
};

RStarTreeOptions RStarTreeOptions::ForFanout(size_t fanout,
                                             RTreeVariant variant) {
  RStarTreeOptions o;
  o.max_entries = fanout;
  o.min_entries = std::max<size_t>(2, fanout * 2 / 5);    // 40%
  o.reinsert_entries = std::max<size_t>(1, fanout * 3 / 10);  // 30%
  o.variant = variant;
  return o;
}

RStarTree::RStarTree(size_t dim, const RStarTreeOptions& options)
    : dim_(dim), options_(options), root_(std::make_unique<Node>(0)) {
  MDSEQ_CHECK(dim > 0);
  MDSEQ_CHECK(options_.max_entries >= 4);
  MDSEQ_CHECK(options_.min_entries >= 2);
  MDSEQ_CHECK(options_.min_entries <= options_.max_entries / 2);
  MDSEQ_CHECK(options_.reinsert_entries >= 1);
  MDSEQ_CHECK(options_.reinsert_entries + options_.min_entries <=
              options_.max_entries);
}

RStarTree::~RStarTree() = default;
// Hand-written because the atomic access counter is not movable.
RStarTree::RStarTree(RStarTree&& other) noexcept
    : dim_(other.dim_),
      options_(other.options_),
      root_(std::move(other.root_)),
      size_(other.size_),
      node_accesses_(other.node_accesses_.load(std::memory_order_relaxed)) {
  other.size_ = 0;
}

RStarTree& RStarTree::operator=(RStarTree&& other) noexcept {
  if (this != &other) {
    dim_ = other.dim_;
    options_ = other.options_;
    root_ = std::move(other.root_);
    size_ = other.size_;
    other.size_ = 0;
    node_accesses_.store(other.node_accesses_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  return *this;
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

void RStarTree::Insert(const Mbr& mbr, uint64_t value) {
  MDSEQ_CHECK(mbr.is_valid());
  MDSEQ_CHECK(mbr.dim() == dim_);
  // Forced reinsertion is allowed once per level within one logical insert
  // (Beckmann et al., Section 4.3).
  std::vector<bool> reinserted_levels(root_->level + 1, false);
  InsertEntryAtLevel(NodeEntry(mbr, value), 0, &reinserted_levels);
  ++size_;
}

void RStarTree::InsertEntryAtLevel(NodeEntry&& entry, size_t target_level,
                                   std::vector<bool>* reinserted_levels) {
  std::vector<PendingInsert> pending;
  pending.push_back(PendingInsert{std::move(entry), target_level});
  while (!pending.empty()) {
    PendingInsert item = std::move(pending.back());
    pending.pop_back();
    std::unique_ptr<Node> split;
    InsertRecursive(root_.get(), std::move(item.entry), item.target_level,
                    &pending, reinserted_levels, &split);
    if (split != nullptr) {
      GrowRoot(std::move(split));
      reinserted_levels->resize(root_->level + 1, false);
    }
  }
}

void RStarTree::GrowRoot(std::unique_ptr<Node> sibling) {
  auto new_root = std::make_unique<Node>(root_->level + 1);
  new_root->entries.emplace_back(root_->BoundingBox(dim_), std::move(root_));
  new_root->entries.emplace_back(sibling->BoundingBox(dim_),
                                 std::move(sibling));
  root_ = std::move(new_root);
}

RStarTree::Node* RStarTree::ChooseSubtree(Node* node, const Mbr& mbr,
                                          size_t target_level) const {
  MDSEQ_DCHECK(node->level > target_level);
  // At the level just above the target, R* picks the child with the minimum
  // *overlap* enlargement; higher up, the minimum volume enlargement.
  // Guttman's ChooseLeaf uses minimum volume enlargement at every level.
  const bool use_overlap = options_.variant == RTreeVariant::kRStar &&
                           node->level == target_level + 1;
  size_t best = 0;
  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->entries.size(); ++i) {
    const Mbr& child_mbr = node->entries[i].mbr;
    Mbr enlarged = child_mbr;
    enlarged.Expand(mbr);
    const double volume = child_mbr.Volume();
    const double enlargement = enlarged.Volume() - volume;
    double primary;
    if (use_overlap) {
      // Overlap enlargement of child i: sum over siblings of the growth in
      // pairwise overlap if `mbr` were added to child i.
      double overlap_delta = 0.0;
      for (size_t j = 0; j < node->entries.size(); ++j) {
        if (j == i) continue;
        const Mbr& sibling = node->entries[j].mbr;
        overlap_delta +=
            enlarged.OverlapVolume(sibling) - child_mbr.OverlapVolume(sibling);
      }
      primary = overlap_delta;
    } else {
      primary = enlargement;
    }
    const double secondary = use_overlap ? enlargement : volume;
    const double tertiary = volume;
    if (primary < best_primary ||
        (primary == best_primary && secondary < best_secondary) ||
        (primary == best_primary && secondary == best_secondary &&
         tertiary < best_volume)) {
      best = i;
      best_primary = primary;
      best_secondary = secondary;
      best_volume = tertiary;
    }
  }
  return node->entries[best].child.get();
}

bool RStarTree::InsertRecursive(Node* node, NodeEntry&& entry,
                                size_t target_level,
                                std::vector<PendingInsert>* pending,
                                std::vector<bool>* reinserted_levels,
                                std::unique_ptr<Node>* split_out) {
  if (node->level == target_level) {
    node->entries.push_back(std::move(entry));
  } else {
    Node* child = ChooseSubtree(node, entry.mbr, target_level);
    // Locate the parent entry of `child` to refresh its box afterwards.
    size_t child_index = 0;
    for (; child_index < node->entries.size(); ++child_index) {
      if (node->entries[child_index].child.get() == child) break;
    }
    MDSEQ_DCHECK(child_index < node->entries.size());
    std::unique_ptr<Node> child_split;
    InsertRecursive(child, std::move(entry), target_level, pending,
                    reinserted_levels, &child_split);
    // Recompute rather than merely expand: forced reinsertion below may have
    // *shrunk* the child.
    node->entries[child_index].mbr = child->BoundingBox(dim_);
    if (child_split != nullptr) {
      Mbr split_box = child_split->BoundingBox(dim_);
      node->entries.emplace_back(std::move(split_box), std::move(child_split));
    }
  }

  if (node->entries.size() <= options_.max_entries) return true;

  // Overflow treatment: forced reinsert the first time a level overflows
  // during this logical insertion (never at the root), split otherwise.
  // The Guttman variants always split.
  if (options_.variant == RTreeVariant::kRStar && node != root_.get() &&
      node->level < reinserted_levels->size() &&
      !(*reinserted_levels)[node->level]) {
    (*reinserted_levels)[node->level] = true;
    ForcedReinsert(node, pending);
  } else {
    *split_out = SplitNode(node);
  }
  return true;
}

void RStarTree::ForcedReinsert(Node* node,
                               std::vector<PendingInsert>* pending) {
  const Mbr box = node->BoundingBox(dim_);
  std::vector<double> center(dim_);
  for (size_t k = 0; k < dim_; ++k) center[k] = box.Center(k);

  auto center_dist2 = [&](const NodeEntry& e) {
    double sum = 0.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double d = e.mbr.Center(k) - center[k];
      sum += d * d;
    }
    return sum;
  };

  // Sort ascending by center distance; the tail holds the entries farthest
  // from the node center, which are removed and reinserted.
  std::sort(node->entries.begin(), node->entries.end(),
            [&](const NodeEntry& a, const NodeEntry& b) {
              return center_dist2(a) < center_dist2(b);
            });
  const size_t keep = node->entries.size() - options_.reinsert_entries;
  for (size_t i = keep; i < node->entries.size(); ++i) {
    pending->push_back(
        PendingInsert{std::move(node->entries[i]), node->level});
  }
  node->entries.erase(node->entries.begin() + static_cast<ptrdiff_t>(keep),
                      node->entries.end());
}

std::unique_ptr<RStarTree::Node> RStarTree::SplitNode(Node* node) {
  switch (options_.variant) {
    case RTreeVariant::kRStar:
      return SplitNodeRStar(node);
    case RTreeVariant::kGuttmanQuadratic:
      return SplitNodeQuadratic(node);
    case RTreeVariant::kGuttmanLinear:
      return SplitNodeLinear(node);
  }
  return nullptr;  // unreachable
}

std::unique_ptr<RStarTree::Node> RStarTree::SplitNodeRStar(Node* node) {
  const size_t total = node->entries.size();
  const size_t m = options_.min_entries;
  MDSEQ_DCHECK(total == options_.max_entries + 1);

  // For each axis and each of the two sorts (by low value, by high value),
  // the R* split considers the distributions that put the first
  // k ∈ [m, total - m] entries into the first group.
  std::vector<size_t> order(total);

  auto sort_order = [&](size_t axis, bool by_high) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const Mbr& ma = node->entries[a].mbr;
      const Mbr& mb = node->entries[b].mbr;
      const double ka = by_high ? ma.high()[axis] : ma.low()[axis];
      const double kb = by_high ? mb.high()[axis] : mb.low()[axis];
      if (ka != kb) return ka < kb;
      const double sa = by_high ? ma.low()[axis] : ma.high()[axis];
      const double sb = by_high ? mb.low()[axis] : mb.high()[axis];
      return sa < sb;
    });
  };

  struct Candidate {
    size_t axis = 0;
    bool by_high = false;
    size_t split_at = 0;  // first group = order[0 .. split_at)
    double overlap = std::numeric_limits<double>::infinity();
    double volume = std::numeric_limits<double>::infinity();
  };

  // Prefix/suffix boxes for the current `order`.
  std::vector<Mbr> prefix(total, Mbr(dim_));
  std::vector<Mbr> suffix(total, Mbr(dim_));
  auto compute_boxes = [&]() {
    Mbr acc(dim_);
    for (size_t i = 0; i < total; ++i) {
      acc.Expand(node->entries[order[i]].mbr);
      prefix[i] = acc;
    }
    acc = Mbr(dim_);
    for (size_t i = total; i-- > 0;) {
      acc.Expand(node->entries[order[i]].mbr);
      suffix[i] = acc;
    }
  };

  // Choose the split axis: the one minimizing the sum of group margins over
  // all candidate distributions of both sorts.
  size_t best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (size_t axis = 0; axis < dim_; ++axis) {
    double margin_sum = 0.0;
    for (bool by_high : {false, true}) {
      sort_order(axis, by_high);
      compute_boxes();
      for (size_t k = m; k + m <= total; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }

  // Choose the distribution on the winning axis: minimum overlap volume,
  // ties broken by minimum combined volume.
  Candidate best;
  for (bool by_high : {false, true}) {
    sort_order(best_axis, by_high);
    compute_boxes();
    for (size_t k = m; k + m <= total; ++k) {
      const double overlap = prefix[k - 1].OverlapVolume(suffix[k]);
      const double volume = prefix[k - 1].Volume() + suffix[k].Volume();
      if (overlap < best.overlap ||
          (overlap == best.overlap && volume < best.volume)) {
        best = Candidate{best_axis, by_high, k, overlap, volume};
      }
    }
  }

  sort_order(best.axis, best.by_high);
  auto sibling = std::make_unique<Node>(node->level);
  std::vector<NodeEntry> first_group;
  first_group.reserve(best.split_at);
  for (size_t i = 0; i < total; ++i) {
    if (i < best.split_at) {
      first_group.push_back(std::move(node->entries[order[i]]));
    } else {
      sibling->entries.push_back(std::move(node->entries[order[i]]));
    }
  }
  node->entries = std::move(first_group);
  return sibling;
}

std::unique_ptr<RStarTree::Node> RStarTree::SplitNodeQuadratic(Node* node) {
  // Guttman's quadratic PickSeeds: the pair that would waste the most
  // volume if put in one group.
  const size_t total = node->entries.size();
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < total; ++i) {
    for (size_t j = i + 1; j < total; ++j) {
      Mbr cover = node->entries[i].mbr;
      cover.Expand(node->entries[j].mbr);
      const double waste = cover.Volume() - node->entries[i].mbr.Volume() -
                           node->entries[j].mbr.Volume();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  return DistributeGuttman(node, seed_a, seed_b, /*quadratic_pick=*/true);
}

std::unique_ptr<RStarTree::Node> RStarTree::SplitNodeLinear(Node* node) {
  // Guttman's linear PickSeeds: per dimension, the entry with the highest
  // low side and the one with the lowest high side; the dimension with the
  // greatest normalized separation supplies the seeds.
  const size_t total = node->entries.size();
  size_t seed_a = 0;
  size_t seed_b = 1;
  double best_separation = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < dim_; ++k) {
    size_t highest_low = 0;
    size_t lowest_high = 0;
    double min_low = std::numeric_limits<double>::infinity();
    double max_high = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < total; ++i) {
      const Mbr& m = node->entries[i].mbr;
      if (m.low()[k] > node->entries[highest_low].mbr.low()[k]) {
        highest_low = i;
      }
      if (m.high()[k] < node->entries[lowest_high].mbr.high()[k]) {
        lowest_high = i;
      }
      min_low = std::min(min_low, m.low()[k]);
      max_high = std::max(max_high, m.high()[k]);
    }
    const double width = max_high - min_low;
    if (width <= 0.0 || highest_low == lowest_high) continue;
    const double separation =
        (node->entries[highest_low].mbr.low()[k] -
         node->entries[lowest_high].mbr.high()[k]) /
        width;
    if (separation > best_separation) {
      best_separation = separation;
      seed_a = lowest_high;
      seed_b = highest_low;
    }
  }
  if (seed_a == seed_b) seed_b = seed_a == 0 ? 1 : 0;
  return DistributeGuttman(node, seed_a, seed_b, /*quadratic_pick=*/false);
}

std::unique_ptr<RStarTree::Node> RStarTree::DistributeGuttman(
    Node* node, size_t seed_a, size_t seed_b, bool quadratic_pick) {
  const size_t m = options_.min_entries;
  std::vector<NodeEntry> pool;
  pool.swap(node->entries);

  auto sibling = std::make_unique<Node>(node->level);
  Mbr box_a = pool[seed_a].mbr;
  Mbr box_b = pool[seed_b].mbr;
  node->entries.push_back(std::move(pool[seed_a]));
  sibling->entries.push_back(std::move(pool[seed_b]));

  std::vector<size_t> remaining;
  remaining.reserve(pool.size() - 2);
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(i);
  }

  while (!remaining.empty()) {
    // Min-fill forcing: if one group needs every remaining entry to reach
    // the minimum, hand them all over.
    if (node->entries.size() + remaining.size() == m) {
      for (size_t i : remaining) {
        box_a.Expand(pool[i].mbr);
        node->entries.push_back(std::move(pool[i]));
      }
      break;
    }
    if (sibling->entries.size() + remaining.size() == m) {
      for (size_t i : remaining) {
        box_b.Expand(pool[i].mbr);
        sibling->entries.push_back(std::move(pool[i]));
      }
      break;
    }

    // PickNext: quadratic takes the entry with the strongest group
    // preference; linear takes any (the first).
    size_t pick_position = 0;
    if (quadratic_pick) {
      double best_diff = -1.0;
      for (size_t p = 0; p < remaining.size(); ++p) {
        const Mbr& entry_box = pool[remaining[p]].mbr;
        const double d1 = box_a.Enlargement(entry_box);
        const double d2 = box_b.Enlargement(entry_box);
        const double diff = std::abs(d1 - d2);
        if (diff > best_diff) {
          best_diff = diff;
          pick_position = p;
        }
      }
    }
    const size_t index = remaining[pick_position];
    remaining.erase(remaining.begin() +
                    static_cast<ptrdiff_t>(pick_position));

    const Mbr& entry_box = pool[index].mbr;
    const double d1 = box_a.Enlargement(entry_box);
    const double d2 = box_b.Enlargement(entry_box);
    bool to_a;
    if (d1 != d2) {
      to_a = d1 < d2;
    } else if (box_a.Volume() != box_b.Volume()) {
      to_a = box_a.Volume() < box_b.Volume();
    } else {
      to_a = node->entries.size() <= sibling->entries.size();
    }
    if (to_a) {
      box_a.Expand(entry_box);
      node->entries.push_back(std::move(pool[index]));
    } else {
      box_b.Expand(entry_box);
      sibling->entries.push_back(std::move(pool[index]));
    }
  }
  return sibling;
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

bool RStarTree::Remove(const Mbr& mbr, uint64_t value) {
  MDSEQ_CHECK(mbr.is_valid());
  std::vector<PendingInsert> orphans;
  if (!RemoveRecursive(root_.get(), mbr, value, &orphans)) return false;
  --size_;
  // Reinsert subtrees orphaned by condensation, deepest levels first so that
  // higher entries find a tree of sufficient height.
  std::sort(orphans.begin(), orphans.end(),
            [](const PendingInsert& a, const PendingInsert& b) {
              return a.target_level < b.target_level;
            });
  for (PendingInsert& orphan : orphans) {
    std::vector<bool> reinserted_levels(root_->level + 1, true);  // no FR
    InsertEntryAtLevel(std::move(orphan.entry), orphan.target_level,
                       &reinserted_levels);
  }
  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf() && root_->entries.size() == 1) {
    root_ = std::move(root_->entries.front().child);
  }
  return true;
}

bool RStarTree::RemoveRecursive(Node* node, const Mbr& mbr, uint64_t value,
                                std::vector<PendingInsert>* orphans) {
  if (node->is_leaf()) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].value == value && node->entries[i].mbr == mbr) {
        node->entries.erase(node->entries.begin() +
                            static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    NodeEntry& e = node->entries[i];
    if (!e.mbr.Contains(mbr)) continue;
    if (!RemoveRecursive(e.child.get(), mbr, value, orphans)) continue;
    Node* child = e.child.get();
    const bool child_underfull = child->entries.size() < options_.min_entries;
    // The root's children may underflow freely only if the root is the
    // parent and still has >= 2 children after condensation; standard
    // condensation removes underfull nodes and reinserts their entries.
    if (child_underfull) {
      const size_t entry_level = child->level;
      for (NodeEntry& grand : child->entries) {
        orphans->push_back(PendingInsert{std::move(grand), entry_level});
      }
      node->entries.erase(node->entries.begin() + static_cast<ptrdiff_t>(i));
    } else {
      e.mbr = child->BoundingBox(dim_);
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

uint64_t RStarTree::RangeSearch(const Mbr& query, double epsilon,
                                std::vector<uint64_t>* out) const {
  MDSEQ_CHECK(query.is_valid());
  MDSEQ_CHECK(query.dim() == dim_);
  MDSEQ_CHECK(epsilon >= 0.0);
  const double eps2 = epsilon * epsilon;
  uint64_t visited = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++visited;
    for (const NodeEntry& e : node->entries) {
      // mindist(query, e.mbr) <= eps is exactly the Dmbr test of the paper's
      // Phase 2, applied at every level: an internal box farther than eps
      // cannot contain a leaf box within eps.
      if (query.MinDist2(e.mbr) > eps2) continue;
      if (node->is_leaf()) {
        out->push_back(e.value);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  node_accesses_.fetch_add(visited, std::memory_order_relaxed);
  return visited;
}

uint64_t RStarTree::RangeSearchBatch(
    const std::vector<Mbr>& queries, double epsilon,
    std::vector<std::vector<BatchHit>>* out) const {
  MDSEQ_CHECK(out != nullptr);
  MDSEQ_CHECK(epsilon >= 0.0);
  out->assign(queries.size(), {});
  if (queries.empty()) return 0;
  for (const Mbr& query : queries) {
    MDSEQ_CHECK(query.is_valid());
    MDSEQ_CHECK(query.dim() == dim_);
  }
  const double eps2 = epsilon * epsilon;

  // Depth-first descent where each level carries the subset of queries
  // whose search region still intersects the node — every query of the
  // subset would have visited the node on its own, but the batch pays for
  // it once. Each level's scratch additionally holds a dimension-major SoA
  // gather of the node's entry rectangles and the query × entry
  // squared-distance matrix, filled by one batched rectangle-kernel pass
  // per active query (util/simd.h) instead of a scalar MinDist2 per pair.
  // The kernel is bit-identical to Mbr::MinDist2, so hit sets, hit order,
  // and visit counts match the scalar walk exactly. Siblings reuse their
  // level's scratch, so the walk allocates nothing once the scratch is
  // warm.
  struct LevelScratch {
    std::vector<uint32_t> active;
    std::vector<double> lo;  // lo[k * n + i]: coordinate k of entry i
    std::vector<double> hi;
    std::vector<double> d2;  // row r: squared distances of query active[r]
  };
  std::vector<LevelScratch> scratch(height() + 1);
  scratch[0].active.resize(queries.size());
  for (uint32_t i = 0; i < queries.size(); ++i) scratch[0].active[i] = i;
  const size_t dim = dim_;
  uint64_t visited = 0;
  const auto descend = [&](const auto& self, const Node* node,
                           size_t depth) -> void {
    ++visited;
    LevelScratch& s = scratch[depth];
    const std::vector<uint32_t>& active = s.active;
    const size_t n = node->entries.size();
    s.lo.resize(n * dim);
    s.hi.resize(n * dim);
    for (size_t i = 0; i < n; ++i) {
      const Mbr& box = node->entries[i].mbr;
      for (size_t k = 0; k < dim; ++k) {
        s.lo[k * n + i] = box.low()[k];
        s.hi[k * n + i] = box.high()[k];
      }
    }
    s.d2.resize(active.size() * n);
    for (size_t r = 0; r < active.size(); ++r) {
      const Mbr& query = queries[active[r]];
      simd::MinDist2Batch(query.low().data(), query.high().data(),
                          s.lo.data(), s.hi.data(), n, dim,
                          s.d2.data() + r * n);
    }
    if (node->is_leaf()) {
      // Query-major order keeps one query's hit vector hot per row.
      for (size_t r = 0; r < active.size(); ++r) {
        std::vector<BatchHit>& hits = (*out)[active[r]];
        const double* row = s.d2.data() + r * n;
        for (size_t i = 0; i < n; ++i) {
          if (row[i] <= eps2) {
            hits.push_back(BatchHit{node->entries[i].value, row[i]});
          }
        }
      }
      return;
    }
    std::vector<uint32_t>& child_active = scratch[depth + 1].active;
    for (size_t i = 0; i < n; ++i) {
      child_active.clear();
      for (size_t r = 0; r < active.size(); ++r) {
        if (s.d2[r * n + i] <= eps2) child_active.push_back(active[r]);
      }
      if (!child_active.empty()) {
        self(self, node->entries[i].child.get(), depth + 1);
      }
    }
  };
  descend(descend, root_.get(), 0);
  node_accesses_.fetch_add(visited, std::memory_order_relaxed);
  return visited;
}

void RStarTree::IntersectSearch(const Mbr& query,
                                std::vector<uint64_t>* out) const {
  RangeSearch(query, 0.0, out);
}

std::vector<IndexEntry> RStarTree::NearestNeighbors(const Mbr& query,
                                                    size_t k) const {
  MDSEQ_CHECK(query.is_valid());
  MDSEQ_CHECK(query.dim() == dim_);
  std::vector<IndexEntry> results;
  if (k == 0) return results;

  // Best-first search over a min-heap keyed by mindist; an element is
  // either an internal node or a leaf entry (node == nullptr).
  struct QueueItem {
    double dist2;
    const Node* node;
    const NodeEntry* entry;
  };
  auto later = [](const QueueItem& a, const QueueItem& b) {
    return a.dist2 > b.dist2;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(later)>
      queue(later);
  queue.push(QueueItem{0.0, root_.get(), nullptr});

  while (!queue.empty() && results.size() < k) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      results.push_back(IndexEntry{item.entry->mbr, item.entry->value});
      continue;
    }
    node_accesses_.fetch_add(1, std::memory_order_relaxed);
    for (const NodeEntry& e : item.node->entries) {
      const double dist2 = query.MinDist2(e.mbr);
      if (item.node->is_leaf()) {
        queue.push(QueueItem{dist2, nullptr, &e});
      } else {
        queue.push(QueueItem{dist2, e.child.get(), nullptr});
      }
    }
  }
  return results;
}

// ---------------------------------------------------------------------------
// Bulk load (Sort-Tile-Recursive)
// ---------------------------------------------------------------------------

namespace {

// Splits [begin, end) into `parts` consecutive ranges whose sizes differ by
// at most one, so no trailing remainder range ends up pathologically small
// (which would violate the tree's minimum-fill invariant).
std::vector<std::pair<size_t, size_t>> EvenRanges(size_t begin, size_t end,
                                                  size_t parts) {
  std::vector<std::pair<size_t, size_t>> ranges;
  const size_t count = end - begin;
  const size_t base = count / parts;
  const size_t extra = count % parts;
  size_t at = begin;
  for (size_t i = 0; i < parts; ++i) {
    const size_t size = base + (i < extra ? 1 : 0);
    if (size == 0) continue;
    ranges.emplace_back(at, at + size);
    at += size;
  }
  return ranges;
}

// Recursively tiles `items` (any type exposing a center per axis through
// `center_of`) into runs of at most `capacity`, filling `runs` with
// [begin, end) index pairs into the sorted `items`. Run sizes are balanced
// so every run holds at least `capacity / 2` items whenever more than one
// run is needed.
template <typename T, typename CenterOf>
void StrTile(std::vector<T>& items, size_t begin, size_t end, size_t axis,
             size_t dim, size_t capacity, const CenterOf& center_of,
             std::vector<std::pair<size_t, size_t>>* runs) {
  const size_t count = end - begin;
  if (count <= capacity) {
    if (count > 0) runs->emplace_back(begin, end);
    return;
  }
  std::sort(items.begin() + static_cast<ptrdiff_t>(begin),
            items.begin() + static_cast<ptrdiff_t>(end),
            [&](const T& a, const T& b) {
              return center_of(a, axis) < center_of(b, axis);
            });
  const size_t pages = (count + capacity - 1) / capacity;
  if (axis + 1 == dim) {
    // Last axis: chop into `pages` balanced runs.
    for (const auto& range : EvenRanges(begin, end, pages)) {
      runs->push_back(range);
    }
    return;
  }
  const size_t remaining_axes = dim - axis;
  const auto slabs = static_cast<size_t>(std::ceil(
      std::pow(static_cast<double>(pages), 1.0 / remaining_axes)));
  for (const auto& [slab_begin, slab_end] :
       EvenRanges(begin, end, std::max<size_t>(1, slabs))) {
    StrTile(items, slab_begin, slab_end, axis + 1, dim, capacity, center_of,
            runs);
  }
}

}  // namespace

RStarTree RStarTree::BulkLoad(size_t dim, std::vector<IndexEntry> entries,
                              const RStarTreeOptions& options) {
  RStarTree tree(dim, options);
  tree.size_ = entries.size();
  if (entries.empty()) return tree;

  const size_t capacity = options.max_entries;
  auto entry_center = [](const IndexEntry& e, size_t axis) {
    return e.mbr.Center(axis);
  };

  // Build the leaf level.
  std::vector<std::pair<size_t, size_t>> runs;
  StrTile(entries, 0, entries.size(), 0, dim, capacity, entry_center, &runs);
  std::vector<std::unique_ptr<Node>> level_nodes;
  for (const auto& [begin, end] : runs) {
    auto node = std::make_unique<Node>(0);
    for (size_t i = begin; i < end; ++i) {
      node->entries.emplace_back(std::move(entries[i].mbr),
                                 entries[i].value);
    }
    level_nodes.push_back(std::move(node));
  }

  // Build internal levels until one node remains.
  size_t level = 1;
  while (level_nodes.size() > 1) {
    struct ChildItem {
      Mbr mbr;
      std::unique_ptr<Node> node;
    };
    std::vector<ChildItem> children;
    children.reserve(level_nodes.size());
    for (auto& n : level_nodes) {
      Mbr box = n->BoundingBox(dim);
      children.push_back(ChildItem{std::move(box), std::move(n)});
    }
    auto child_center = [](const ChildItem& c, size_t axis) {
      return c.mbr.Center(axis);
    };
    runs.clear();
    StrTile(children, 0, children.size(), 0, dim, capacity, child_center,
            &runs);
    std::vector<std::unique_ptr<Node>> next_level;
    for (const auto& [begin, end] : runs) {
      auto node = std::make_unique<Node>(level);
      for (size_t i = begin; i < end; ++i) {
        node->entries.emplace_back(std::move(children[i].mbr),
                                   std::move(children[i].node));
      }
      next_level.push_back(std::move(node));
    }
    level_nodes = std::move(next_level);
    ++level;
  }
  tree.root_ = std::move(level_nodes.front());
  return tree;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t RStarTree::height() const { return root_->level + 1; }

size_t RStarTree::node_count() const {
  // Iterative count to avoid exposing Node in the header.
  size_t count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    if (!node->is_leaf()) {
      for (const NodeEntry& e : node->entries) stack.push_back(e.child.get());
    }
  }
  return count;
}

bool RStarTree::CheckInvariants() const {
  bool ok = true;
  size_t leaf_entries = 0;
  auto fail = [&ok](const char* what) {
    std::fprintf(stderr, "RStarTree invariant violated: %s\n", what);
    ok = false;
  };

  struct Frame {
    const Node* node;
    const Mbr* parent_box;  // nullptr for root
  };
  std::vector<Frame> stack{{root_.get(), nullptr}};
  const size_t root_level = root_->level;
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Node* node = frame.node;
    if (node != root_.get() && node->entries.size() < options_.min_entries) {
      fail("non-root node below minimum fill");
    }
    if (node->entries.size() > options_.max_entries) {
      fail("node above maximum fill");
    }
    if (node == root_.get() && !node->is_leaf() && node->entries.size() < 2) {
      fail("internal root with fewer than 2 children");
    }
    if (node->level > root_level) fail("node level above root level");
    if (frame.parent_box != nullptr) {
      for (const NodeEntry& e : node->entries) {
        if (!frame.parent_box->Contains(e.mbr)) {
          fail("entry not contained in parent box");
        }
      }
    }
    for (const NodeEntry& e : node->entries) {
      if (node->is_leaf()) {
        if (e.child != nullptr) fail("leaf entry with child pointer");
        ++leaf_entries;
      } else {
        if (e.child == nullptr) {
          fail("internal entry without child");
          continue;
        }
        if (e.child->level + 1 != node->level) {
          fail("child level mismatch (non-uniform leaf depth)");
        }
        if (!(e.mbr == e.child->BoundingBox(dim_))) {
          fail("stored child box is not the tight bounding box");
        }
        stack.push_back(Frame{e.child.get(), &e.mbr});
      }
    }
  }
  if (leaf_entries != size_) fail("size() does not match stored entries");
  return ok;
}

}  // namespace mdseq
