#ifndef MDSEQ_GEN_VIDEO_H_
#define MDSEQ_GEN_VIDEO_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {

/// One synthetic video frame: a small interleaved 8-bit RGB raster.
struct Frame {
  size_t width = 0;
  size_t height = 0;
  std::vector<uint8_t> rgb;  ///< `3 * width * height` bytes, row-major

  /// Mean of channel `c` (0=R, 1=G, 2=B) over all pixels, scaled to [0, 1].
  double AverageChannel(size_t c) const;
};

/// Parameters of the synthetic video source.
///
/// The paper evaluates on real TV news/drama/documentary streams whose
/// frames, mapped to average-color features, form tightly clustered trails —
/// one cluster per shot (Figure 5). This generator reproduces that
/// structure: a stream is a series of shots; each shot renders frames around
/// a slowly drifting anchor color with per-pixel texture and noise, and
/// shots are joined by cuts or gradual dissolves. Features are then
/// extracted from the rendered pixels exactly as the paper does (averaging
/// color values of the pixels of a frame, Section 1).
struct VideoOptions {
  size_t frame_width = 16;
  size_t frame_height = 12;
  /// Shot lengths are drawn uniformly from [min, max] frames.
  size_t min_shot_length = 8;
  size_t max_shot_length = 48;
  /// Per-frame random drift of the shot anchor color.
  double anchor_drift = 0.004;
  /// Amplitude of the static spatial gradient texture within a shot.
  double texture_amplitude = 0.08;
  /// Per-pixel uniform noise amplitude.
  double pixel_noise = 0.03;
  /// Probability that a shot boundary is a gradual dissolve, not a cut.
  double dissolve_probability = 0.25;
  /// Length of a dissolve in frames.
  size_t dissolve_frames = 5;
  /// Shot anchor colors are drawn within `palette_spread` of a per-stream
  /// base color: a program (one news broadcast, one drama episode) has a
  /// consistent look, so its shots cluster in a sub-region of color space
  /// rather than uniformly over the cube. This is what makes different
  /// streams separable and is the property the paper's pruning rates rely
  /// on (Figure 5 / Section 4.2.2).
  double palette_spread = 0.18;
};

/// A rendered stream plus its ground-truth shot boundaries.
struct VideoStream {
  std::vector<Frame> frames;
  /// Half-open frame ranges, one per shot, covering the stream.
  std::vector<std::pair<size_t, size_t>> shots;
};

/// Renders a synthetic stream with `num_frames` frames.
VideoStream GenerateVideoStream(size_t num_frames, const VideoOptions& options,
                                Rng* rng);

/// The paper's video feature pipeline: one 3-d point per frame holding the
/// frame's average (R, G, B) in [0, 1].
Point ExtractFrameFeature(const Frame& frame);

/// Applies `ExtractFrameFeature` to every frame of the stream, yielding the
/// multidimensional data sequence the paper indexes.
Sequence ExtractColorFeatures(const VideoStream& stream);

/// Convenience: render a stream and return its feature sequence directly.
Sequence GenerateVideoSequence(size_t num_frames, const VideoOptions& options,
                               Rng* rng);

}  // namespace mdseq

#endif  // MDSEQ_GEN_VIDEO_H_
