#include "gen/walk.h"

#include <algorithm>

#include "util/check.h"

namespace mdseq {

Sequence GenerateRandomWalk(size_t length, const WalkOptions& options,
                            Rng* rng) {
  MDSEQ_CHECK(length >= 1);
  MDSEQ_CHECK(options.dim >= 1);
  MDSEQ_CHECK(rng != nullptr);
  MDSEQ_CHECK(options.start_min <= options.start_max);

  constexpr double kUnitCubeMax = 0x1.fffffffffffffp-1;
  Sequence seq(options.dim);
  Point current(options.dim);
  for (size_t k = 0; k < options.dim; ++k) {
    current[k] = rng->Uniform(options.start_min, options.start_max);
  }
  seq.Append(current);
  for (size_t i = 1; i < length; ++i) {
    for (size_t k = 0; k < options.dim; ++k) {
      current[k] = std::clamp(
          current[k] + rng->Normal(0.0, options.step_stddev), 0.0,
          kUnitCubeMax);
    }
    seq.Append(current);
  }
  return seq;
}

}  // namespace mdseq
