#ifndef MDSEQ_GEN_WALK_H_
#define MDSEQ_GEN_WALK_H_

#include <cstddef>

#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {

/// Parameters of a clamped Gaussian random walk in the unit cube.
struct WalkOptions {
  size_t dim = 1;
  /// Standard deviation of each step per dimension.
  double step_stddev = 0.01;
  /// Starting point is drawn uniformly from [start_min, start_max)^dim.
  double start_min = 0.2;
  double start_max = 0.8;
};

/// Generates a random-walk sequence of `length` points clamped to [0, 1).
/// With `dim == 1` this models the classic stock-price-style time series of
/// the related work (Agrawal '93, Faloutsos '94).
Sequence GenerateRandomWalk(size_t length, const WalkOptions& options,
                            Rng* rng);

}  // namespace mdseq

#endif  // MDSEQ_GEN_WALK_H_
