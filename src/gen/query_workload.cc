#include "gen/query_workload.h"

#include <algorithm>

#include "util/check.h"

namespace mdseq {

Sequence DrawQuery(const std::vector<Sequence>& corpus,
                   const QueryWorkloadOptions& options, Rng* rng) {
  MDSEQ_CHECK(!corpus.empty());
  MDSEQ_CHECK(options.min_length >= 1);
  MDSEQ_CHECK(options.min_length <= options.max_length);
  MDSEQ_CHECK(rng != nullptr);

  constexpr double kUnitCubeMax = 0x1.fffffffffffffp-1;
  const Sequence& source = corpus[static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(corpus.size()) - 1))];
  const size_t length = std::min(
      source.size(),
      static_cast<size_t>(rng->UniformInt(
          static_cast<int64_t>(options.min_length),
          static_cast<int64_t>(options.max_length))));
  const size_t offset = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(source.size() - length)));

  Sequence query(source.dim());
  Point buffer(source.dim());
  for (size_t i = 0; i < length; ++i) {
    const PointView p = source[offset + i];
    for (size_t k = 0; k < p.size(); ++k) {
      buffer[k] = std::clamp(
          p[k] + rng->Uniform(-options.noise, options.noise), 0.0,
          kUnitCubeMax);
    }
    query.Append(buffer);
  }
  return query;
}

std::vector<Sequence> DrawQueries(const std::vector<Sequence>& corpus,
                                  size_t count,
                                  const QueryWorkloadOptions& options,
                                  Rng* rng) {
  std::vector<Sequence> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(DrawQuery(corpus, options, rng));
  }
  return queries;
}

}  // namespace mdseq
