#include "gen/video.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace mdseq {

double Frame::AverageChannel(size_t c) const {
  MDSEQ_CHECK(c < 3);
  MDSEQ_CHECK(rgb.size() == 3 * width * height);
  const size_t pixels = width * height;
  uint64_t sum = 0;
  for (size_t i = 0; i < pixels; ++i) sum += rgb[3 * i + c];
  return static_cast<double>(sum) / (255.0 * static_cast<double>(pixels));
}

namespace {

uint8_t QuantizeChannel(double value) {
  return static_cast<uint8_t>(
      std::clamp(value, 0.0, 1.0) * 255.0 + 0.5);
}

// A shot's visual model: an anchor color plus a fixed linear gradient. The
// anchor is drawn around the stream's base palette color.
struct ShotModel {
  double anchor[3];
  double gradient_x[3];
  double gradient_y[3];

  static ShotModel Random(const double (&palette)[3],
                          const VideoOptions& options, Rng* rng) {
    ShotModel m;
    for (size_t c = 0; c < 3; ++c) {
      m.anchor[c] = std::clamp(
          palette[c] + rng->Uniform(-options.palette_spread,
                                    options.palette_spread),
          0.05, 0.95);
      m.gradient_x[c] = rng->Uniform(-1.0, 1.0) * options.texture_amplitude;
      m.gradient_y[c] = rng->Uniform(-1.0, 1.0) * options.texture_amplitude;
    }
    return m;
  }
};

// Renders one frame: `blend` in [0,1] mixes `model` toward `next` (used for
// dissolves; blend == 0 renders `model` alone).
Frame RenderFrame(const ShotModel& model, const ShotModel& next, double blend,
                  const VideoOptions& options, Rng* rng) {
  Frame frame;
  frame.width = options.frame_width;
  frame.height = options.frame_height;
  frame.rgb.resize(3 * frame.width * frame.height);
  const double wx = frame.width > 1 ? 1.0 / (frame.width - 1) : 0.0;
  const double wy = frame.height > 1 ? 1.0 / (frame.height - 1) : 0.0;
  size_t i = 0;
  for (size_t y = 0; y < frame.height; ++y) {
    for (size_t x = 0; x < frame.width; ++x) {
      const double fx = static_cast<double>(x) * wx - 0.5;
      const double fy = static_cast<double>(y) * wy - 0.5;
      for (size_t c = 0; c < 3; ++c) {
        const double a = model.anchor[c] + model.gradient_x[c] * fx +
                         model.gradient_y[c] * fy;
        const double b = next.anchor[c] + next.gradient_x[c] * fx +
                         next.gradient_y[c] * fy;
        double value = (1.0 - blend) * a + blend * b;
        value += rng->Uniform(-options.pixel_noise, options.pixel_noise);
        frame.rgb[i++] = QuantizeChannel(value);
      }
    }
  }
  return frame;
}

}  // namespace

VideoStream GenerateVideoStream(size_t num_frames, const VideoOptions& options,
                                Rng* rng) {
  MDSEQ_CHECK(num_frames >= 1);
  MDSEQ_CHECK(rng != nullptr);
  MDSEQ_CHECK(options.frame_width >= 1 && options.frame_height >= 1);
  MDSEQ_CHECK(options.min_shot_length >= 1);
  MDSEQ_CHECK(options.min_shot_length <= options.max_shot_length);

  VideoStream stream;
  stream.frames.reserve(num_frames);

  // Per-stream palette: each channel leans dark or bright (dim dramas,
  // bright studio shows), giving programs distinct looks; see VideoOptions.
  double palette[3];
  for (double& c : palette) {
    c = rng->Bernoulli(0.5) ? rng->Uniform(0.12, 0.38)
                            : rng->Uniform(0.62, 0.88);
  }
  ShotModel current = ShotModel::Random(palette, options, rng);
  size_t frame_index = 0;
  while (frame_index < num_frames) {
    const size_t shot_begin = frame_index;
    const size_t shot_length = static_cast<size_t>(rng->UniformInt(
        static_cast<int64_t>(options.min_shot_length),
        static_cast<int64_t>(options.max_shot_length)));
    const size_t shot_end = std::min(frame_index + shot_length, num_frames);

    // Steady portion of the shot: anchor drifts slowly, texture is fixed.
    for (; frame_index < shot_end; ++frame_index) {
      stream.frames.push_back(
          RenderFrame(current, current, 0.0, options, rng));
      for (size_t c = 0; c < 3; ++c) {
        current.anchor[c] = std::clamp(
            current.anchor[c] +
                rng->Uniform(-options.anchor_drift, options.anchor_drift),
            0.05, 0.95);
      }
    }
    stream.shots.emplace_back(shot_begin, shot_end);
    if (frame_index >= num_frames) break;

    ShotModel next = ShotModel::Random(palette, options, rng);
    if (rng->Bernoulli(options.dissolve_probability) &&
        options.dissolve_frames > 0) {
      // Gradual transition: blend toward the next shot. The dissolve frames
      // are attributed to the next shot's range.
      const size_t dissolve_end =
          std::min(frame_index + options.dissolve_frames, num_frames);
      const size_t dissolve_begin = frame_index;
      for (; frame_index < dissolve_end; ++frame_index) {
        const double blend =
            static_cast<double>(frame_index - dissolve_begin + 1) /
            static_cast<double>(options.dissolve_frames + 1);
        stream.frames.push_back(
            RenderFrame(current, next, blend, options, rng));
      }
      if (frame_index > dissolve_begin) {
        stream.shots.emplace_back(dissolve_begin, frame_index);
      }
    }
    current = next;
  }
  return stream;
}

Point ExtractFrameFeature(const Frame& frame) {
  return Point{frame.AverageChannel(0), frame.AverageChannel(1),
               frame.AverageChannel(2)};
}

Sequence ExtractColorFeatures(const VideoStream& stream) {
  Sequence seq(3);
  for (const Frame& frame : stream.frames) {
    seq.Append(ExtractFrameFeature(frame));
  }
  return seq;
}

Sequence GenerateVideoSequence(size_t num_frames, const VideoOptions& options,
                               Rng* rng) {
  return ExtractColorFeatures(GenerateVideoStream(num_frames, options, rng));
}

}  // namespace mdseq
