#ifndef MDSEQ_GEN_QUERY_WORKLOAD_H_
#define MDSEQ_GEN_QUERY_WORKLOAD_H_

#include <cstddef>
#include <vector>

#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {

/// How query sequences are derived from a data set (Section 4.2 issues
/// "randomly selected" queries against the stored sequences).
struct QueryWorkloadOptions {
  /// Query lengths are drawn uniformly from [min_length, max_length].
  size_t min_length = 32;
  size_t max_length = 128;
  /// Per-coordinate uniform noise amplitude added to the extracted
  /// subsequence, so queries are near — but not identical to — stored data.
  double noise = 0.01;
};

/// Draws one query: picks a random source sequence, extracts a random
/// subsequence of a random length (clamped to the source length), and
/// perturbs each coordinate with uniform noise, clamping back to [0, 1).
Sequence DrawQuery(const std::vector<Sequence>& corpus,
                   const QueryWorkloadOptions& options, Rng* rng);

/// Draws `count` queries.
std::vector<Sequence> DrawQueries(const std::vector<Sequence>& corpus,
                                  size_t count,
                                  const QueryWorkloadOptions& options,
                                  Rng* rng);

}  // namespace mdseq

#endif  // MDSEQ_GEN_QUERY_WORKLOAD_H_
