#include "gen/image.h"

#include <cmath>

#include "util/check.h"

namespace mdseq {

RegionGrid SynthesizeImage(const ImageOptions& options, Rng* rng) {
  MDSEQ_CHECK(rng != nullptr);
  MDSEQ_CHECK(options.side >= 1);
  MDSEQ_CHECK((options.side & (options.side - 1)) == 0);
  MDSEQ_CHECK(options.min_blobs <= options.max_blobs);
  MDSEQ_CHECK(options.min_radius > 0.0);
  MDSEQ_CHECK(options.min_radius <= options.max_radius);

  RegionGrid grid;
  grid.side = options.side;
  grid.colors.assign(options.side * options.side, Point{0.5, 0.5, 0.5});

  const auto blobs = static_cast<size_t>(
      rng->UniformInt(static_cast<int64_t>(options.min_blobs),
                      static_cast<int64_t>(options.max_blobs)));
  for (size_t b = 0; b < blobs; ++b) {
    const double cx = rng->Uniform() * static_cast<double>(options.side);
    const double cy = rng->Uniform() * static_cast<double>(options.side);
    const double radius =
        rng->Uniform(options.min_radius, options.max_radius);
    const Point color{rng->Uniform(0.1, 0.9), rng->Uniform(0.1, 0.9),
                      rng->Uniform(0.1, 0.9)};
    for (size_t y = 0; y < options.side; ++y) {
      for (size_t x = 0; x < options.side; ++x) {
        const double dx = (static_cast<double>(x) + 0.5) - cx;
        const double dy = (static_cast<double>(y) + 0.5) - cy;
        const double w =
            std::exp(-(dx * dx + dy * dy) / (radius * radius));
        Point& region = grid.colors[y * options.side + x];
        for (size_t c = 0; c < 3; ++c) {
          region[c] = (1.0 - w) * region[c] + w * color[c];
        }
      }
    }
  }
  return grid;
}

Sequence RegionsToSequence(const RegionGrid& grid, CurveKind curve) {
  MDSEQ_CHECK(grid.colors.size() == grid.side * grid.side);
  Sequence sequence(3);
  for (const auto& [x, y] :
       GridOrder(static_cast<uint32_t>(grid.side), curve)) {
    sequence.Append(grid.at(x, y));
  }
  return sequence;
}

Sequence GenerateImageSequence(const ImageOptions& options, CurveKind curve,
                               Rng* rng) {
  return RegionsToSequence(SynthesizeImage(options, rng), curve);
}

}  // namespace mdseq
