#ifndef MDSEQ_GEN_FRACTAL_H_
#define MDSEQ_GEN_FRACTAL_H_

#include <cstddef>

#include "geom/sequence.h"
#include "util/random.h"

namespace mdseq {

/// Parameters of the paper's synthetic generator (Section 4.1): recursive
/// midpoint displacement ("Fractal function") inside the unit cube.
struct FractalOptions {
  /// Dimensionality of the generated points (the paper uses 3).
  size_t dim = 3;
  /// Initial displacement amplitude `dev`, drawn per sequence from
  /// [dev_min, dev_max) (the paper selects dev in [0, 1) to control the
  /// amplitude).
  double dev_min = 0.05;
  double dev_max = 0.35;
  /// Geometric decay of `dev` per recursion level, in [0, 1).
  double scale = 0.55;
  /// The paper's formula adds `dev * random()` with random() in [0, 1),
  /// which biases the trail upward before clamping; the default centers the
  /// displacement (`dev * (2*random() - 1)`), which matches the look of the
  /// paper's Figure 4. Set to false for the literal formula.
  bool centered_displacement = true;
  /// Maximum per-dimension offset of the end point from the start point.
  /// The paper draws both uniformly from the unit cube; a full-cube span
  /// makes every trail cross most of the space, which collapses
  /// inter-sequence distances and with them the pruning rates the paper
  /// reports. Localizing each trail to a sub-region (while keeping the
  /// start uniform) restores the separation; 1.0 reproduces the literal
  /// uniform-end behaviour. See DESIGN.md.
  double max_span = 0.35;
};

/// Generates one fractal sequence with `length` points in [0, 1)^dim:
/// random start and end points, then recursive midpoint displacement with
/// geometrically decaying amplitude, clamped to the unit cube.
Sequence GenerateFractalSequence(size_t length, const FractalOptions& options,
                                 Rng* rng);

}  // namespace mdseq

#endif  // MDSEQ_GEN_FRACTAL_H_
