#ifndef MDSEQ_GEN_IMAGE_H_
#define MDSEQ_GEN_IMAGE_H_

#include <cstddef>
#include <vector>

#include "geom/sequence.h"
#include "geom/space_filling.h"
#include "util/random.h"

namespace mdseq {

/// Parameters of the synthetic segmented-image source (the paper's second
/// data model, Section 1: an image is segmented into regions, the regions
/// are ordered along a space-filling curve, and each region contributes a
/// feature vector).
struct ImageOptions {
  /// The image is segmented into a side x side grid of regions; `side`
  /// must be a power of two so the space-filling curves apply.
  size_t side = 8;
  /// Number of color blobs composited over the neutral background.
  size_t min_blobs = 3;
  size_t max_blobs = 6;
  /// Blob radius range, in region units.
  double min_radius = 1.5;
  double max_radius = 4.0;
};

/// A segmented image: one average color (3-d point in [0,1]^3) per region,
/// row-major.
struct RegionGrid {
  size_t side = 0;
  std::vector<Point> colors;  ///< side * side region colors

  const Point& at(size_t x, size_t y) const { return colors[y * side + x]; }
};

/// Synthesizes a segmented image from a few soft color blobs, so that
/// neighboring regions correlate the way real segmentations do.
RegionGrid SynthesizeImage(const ImageOptions& options, Rng* rng);

/// Serializes the region grid into a multidimensional data sequence along
/// the chosen space-filling curve.
Sequence RegionsToSequence(const RegionGrid& grid, CurveKind curve);

/// Convenience: synthesize and serialize in one step.
Sequence GenerateImageSequence(const ImageOptions& options, CurveKind curve,
                               Rng* rng);

}  // namespace mdseq

#endif  // MDSEQ_GEN_IMAGE_H_
