#include "gen/fractal.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace mdseq {

namespace {

// Largest representable value strictly below 1.0, so clamped coordinates
// stay inside the half-open unit cube [0, 1) the paper works in.
constexpr double kUnitCubeMax = 0x1.fffffffffffffp-1;

// Recursively fills points (lo, hi) exclusive by displacing the midpoint of
// the segment between the already-fixed endpoints.
void Subdivide(std::vector<Point>* points, size_t lo, size_t hi, double dev,
               const FractalOptions& options, Rng* rng) {
  if (hi - lo <= 1) return;
  const size_t mid = lo + (hi - lo) / 2;
  Point& p = (*points)[mid];
  const Point& a = (*points)[lo];
  const Point& b = (*points)[hi];
  for (size_t k = 0; k < options.dim; ++k) {
    const double displacement = options.centered_displacement
                                    ? dev * (2.0 * rng->Uniform() - 1.0)
                                    : dev * rng->Uniform();
    p[k] = std::clamp(0.5 * (a[k] + b[k]) + displacement, 0.0, kUnitCubeMax);
  }
  const double next_dev = dev * options.scale;
  Subdivide(points, lo, mid, next_dev, options, rng);
  Subdivide(points, mid, hi, next_dev, options, rng);
}

}  // namespace

Sequence GenerateFractalSequence(size_t length, const FractalOptions& options,
                                 Rng* rng) {
  MDSEQ_CHECK(length >= 1);
  MDSEQ_CHECK(options.dim >= 1);
  MDSEQ_CHECK(rng != nullptr);
  MDSEQ_CHECK(options.dev_min >= 0.0 && options.dev_min <= options.dev_max);
  MDSEQ_CHECK(options.scale >= 0.0 && options.scale < 1.0);

  std::vector<Point> points(length, Point(options.dim, 0.0));
  for (size_t k = 0; k < options.dim; ++k) {
    points.front()[k] = rng->Uniform();
  }
  if (length > 1) {
    for (size_t k = 0; k < options.dim; ++k) {
      const double offset =
          rng->Uniform(-options.max_span, options.max_span);
      points.back()[k] =
          std::clamp(points.front()[k] + offset, 0.0, kUnitCubeMax);
    }
    const double dev = rng->Uniform(options.dev_min, options.dev_max);
    Subdivide(&points, 0, length - 1, dev, options, rng);
  }

  Sequence seq(options.dim);
  for (const Point& p : points) seq.Append(p);
  return seq;
}

}  // namespace mdseq
