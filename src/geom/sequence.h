#ifndef MDSEQ_GEOM_SEQUENCE_H_
#define MDSEQ_GEOM_SEQUENCE_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "geom/mbr.h"
#include "geom/point.h"

namespace mdseq {

class SequenceView;

/// A multidimensional data sequence (paper Definition 1): a series of
/// component vectors `S = (S[1], ..., S[k])` where each `S[i]` is an
/// n-dimensional point. A one-dimensional time series is the special case
/// `dim() == 1`.
///
/// Points are stored contiguously (row-major) so window scans touch memory
/// linearly; `operator[]` hands out borrowed `PointView`s. Indexing is
/// zero-based throughout the library (the paper counts from 1).
class Sequence {
 public:
  /// Creates an empty sequence of points with dimensionality `dim`.
  explicit Sequence(size_t dim);

  /// Creates a sequence from a list of equally sized points.
  Sequence(size_t dim, std::initializer_list<Point> points);

  /// Creates a 1-dimensional sequence from scalar values.
  static Sequence FromScalars(const std::vector<double>& values);

  /// Dimensionality of every point in the sequence.
  size_t dim() const { return dim_; }

  /// Number of points.
  size_t size() const { return data_.size() / dim_; }

  bool empty() const { return data_.empty(); }

  /// Borrowed view of the i-th point (zero-based).
  PointView operator[](size_t i) const {
    MDSEQ_DCHECK(i < size());
    return PointView(data_.data() + i * dim_, dim_);
  }

  /// Appends one point; its size must equal `dim()`.
  void Append(PointView p);

  /// Appends every point of `other` (dimensions must match).
  void Extend(const SequenceView& other);

  /// Removes all points, keeping the dimensionality.
  void Clear() { data_.clear(); }

  /// Borrowed view of points [begin, end) — paper notation `S[begin+1:end]`.
  SequenceView Slice(size_t begin, size_t end) const;

  /// Borrowed view of the whole sequence.
  SequenceView View() const;

  /// The MBR tightly enclosing every point. Requires a non-empty sequence.
  Mbr BoundingBox() const;

  /// Raw contiguous storage (size() * dim() doubles, row-major).
  const std::vector<double>& data() const { return data_; }

 private:
  size_t dim_;
  std::vector<double> data_;
};

/// A borrowed, contiguous run of points inside a `Sequence` (a subsequence
/// `S[i:j]` in the paper's notation). Cheap to copy; valid only while the
/// owning sequence is alive and unmodified.
class SequenceView {
 public:
  /// Empty view (dim from context; size 0).
  SequenceView() : data_(nullptr), size_(0), dim_(1) {}

  /// View over `size` points of dimension `dim` starting at `data`.
  SequenceView(const double* data, size_t size, size_t dim)
      : data_(data), size_(size), dim_(dim) {
    MDSEQ_DCHECK(dim > 0);
  }

  size_t dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Borrowed view of the i-th point of the run (zero-based).
  PointView operator[](size_t i) const {
    MDSEQ_DCHECK(i < size_);
    return PointView(data_ + i * dim_, dim_);
  }

  /// Sub-view of points [begin, end) relative to this view.
  SequenceView Slice(size_t begin, size_t end) const {
    MDSEQ_DCHECK(begin <= end && end <= size_);
    return SequenceView(data_ + begin * dim_, end - begin, dim_);
  }

  /// First `k` points.
  SequenceView Prefix(size_t k) const { return Slice(0, k); }

  /// The MBR tightly enclosing every point of the view (view must be
  /// non-empty).
  Mbr BoundingBox() const;

  /// Materializes the view as an owning `Sequence`.
  Sequence Materialize() const;

 private:
  const double* data_;
  size_t size_;
  size_t dim_;
};

}  // namespace mdseq

#endif  // MDSEQ_GEOM_SEQUENCE_H_
