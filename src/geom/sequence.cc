#include "geom/sequence.h"

#include "util/check.h"

namespace mdseq {

Sequence::Sequence(size_t dim) : dim_(dim) { MDSEQ_CHECK(dim > 0); }

Sequence::Sequence(size_t dim, std::initializer_list<Point> points)
    : Sequence(dim) {
  for (const Point& p : points) Append(p);
}

Sequence Sequence::FromScalars(const std::vector<double>& values) {
  Sequence s(1);
  for (double v : values) s.Append(PointView(&v, 1));
  return s;
}

void Sequence::Append(PointView p) {
  MDSEQ_CHECK(p.size() == dim_);
  data_.insert(data_.end(), p.begin(), p.end());
}

void Sequence::Extend(const SequenceView& other) {
  MDSEQ_CHECK(other.dim() == dim_);
  for (size_t i = 0; i < other.size(); ++i) Append(other[i]);
}

SequenceView Sequence::Slice(size_t begin, size_t end) const {
  MDSEQ_CHECK(begin <= end && end <= size());
  return SequenceView(data_.data() + begin * dim_, end - begin, dim_);
}

SequenceView Sequence::View() const {
  return SequenceView(data_.data(), size(), dim_);
}

Mbr Sequence::BoundingBox() const { return View().BoundingBox(); }

Mbr SequenceView::BoundingBox() const {
  MDSEQ_CHECK(!empty());
  Mbr box(dim_);
  for (size_t i = 0; i < size_; ++i) box.Expand((*this)[i]);
  return box;
}

Sequence SequenceView::Materialize() const {
  Sequence s(dim_);
  for (size_t i = 0; i < size_; ++i) s.Append((*this)[i]);
  return s;
}

}  // namespace mdseq
