#ifndef MDSEQ_GEOM_MBR_H_
#define MDSEQ_GEOM_MBR_H_

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "geom/point.h"

namespace mdseq {

/// A minimum bounding rectangle (hyper-rectangle) in n-dimensional space,
/// represented by the two endpoints L (low) and H (high) of its major
/// diagonal, following the paper's Section 3.2: `M = (L, H)` with
/// `l_i <= h_i` for every dimension.
///
/// An `Mbr` is also the unit stored in the spatial index: every subsequence
/// produced by the partitioning algorithm is enclosed by one Mbr.
class Mbr {
 public:
  /// Creates an empty (invalid) MBR of the given dimensionality; expanding it
  /// with the first point makes it valid.
  explicit Mbr(size_t dim);

  /// Creates an MBR from explicit corner points (must satisfy low <= high).
  Mbr(Point low, Point high);

  /// Creates the degenerate MBR covering a single point.
  static Mbr FromPoint(PointView p);

  /// Dimensionality of the space the rectangle lives in.
  size_t dim() const { return low_.size(); }

  /// True once at least one point or rectangle has been accumulated.
  bool is_valid() const { return valid_; }

  /// Low / high diagonal endpoints. Undefined content while `!is_valid()`.
  const Point& low() const { return low_; }
  const Point& high() const { return high_; }

  /// Grows the rectangle to cover `p`.
  void Expand(PointView p);

  /// Grows the rectangle to cover `other`.
  void Expand(const Mbr& other);

  /// Grows every side outward by `delta` (Minkowski sum with an L∞ ball),
  /// used by range queries that search with threshold `delta`.
  void Inflate(double delta);

  /// Side length along dimension `k` (`h_k - l_k`).
  double Side(size_t k) const { return high_[k] - low_[k]; }

  /// Product of side lengths (area / volume / hyper-volume).
  double Volume() const;

  /// Sum of side lengths (the R*-tree "margin" criterion).
  double Margin() const;

  /// Center coordinate along dimension `k`.
  double Center(size_t k) const { return 0.5 * (low_[k] + high_[k]); }

  /// True iff the rectangles share at least one point.
  bool Intersects(const Mbr& other) const;

  /// True iff `p` lies inside the rectangle (boundaries inclusive).
  bool Contains(PointView p) const;

  /// True iff `other` lies fully inside this rectangle.
  bool Contains(const Mbr& other) const;

  /// Volume of the intersection with `other` (0 when disjoint).
  double OverlapVolume(const Mbr& other) const;

  /// Volume increase required to also cover `other`.
  double Enlargement(const Mbr& other) const;

  /// Squared minimum Euclidean distance between this rectangle and `other`.
  ///
  /// This is the square of the paper's `Dmbr` (Definition 4): per dimension
  /// the gap is `l_B - h_A` if A lies fully below B, `l_A - h_B` if above,
  /// and 0 when the projections overlap.
  double MinDist2(const Mbr& other) const;

  /// Squared minimum Euclidean distance from `p` to this rectangle.
  double MinDist2(PointView p) const;

  /// Squared *maximum* Euclidean distance to `other` (distance between the
  /// farthest pair of points). Used by upper-bound pruning diagnostics.
  double MaxDist2(const Mbr& other) const;

  /// Human-readable form, e.g. "[(0, 0), (1, 0.5)]".
  std::string ToString() const;

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.valid_ == b.valid_ && a.low_ == b.low_ && a.high_ == b.high_;
  }

 private:
  Point low_;
  Point high_;
  bool valid_ = false;
};

/// The paper's `Dmbr` (Definition 4): minimum Euclidean distance between two
/// hyper-rectangles. Zero when they intersect.
inline double MbrDistance(const Mbr& a, const Mbr& b) {
  return std::sqrt(a.MinDist2(b));
}

}  // namespace mdseq

#endif  // MDSEQ_GEOM_MBR_H_
