#ifndef MDSEQ_GEOM_SPACE_FILLING_H_
#define MDSEQ_GEOM_SPACE_FILLING_H_

#include <cstdint>
#include <vector>

namespace mdseq {

/// Space-filling curve orderings of a 2-d grid, used to serialize image
/// regions into a sequence (paper Section 1: "regions ... can be ordered
/// appropriately, based on space filling curves such as the Z-curve, gray
/// coding, or the Hilbert curve").
///
/// Coordinates are cell indices in a 2^order x 2^order grid.

/// Morton (Z-curve) index of cell (x, y): bit interleaving. Both
/// coordinates must fit in 16 bits.
uint32_t MortonIndex(uint32_t x, uint32_t y);

/// Inverse of `MortonIndex`.
void MortonDecode(uint32_t index, uint32_t* x, uint32_t* y);

/// Hilbert curve index of cell (x, y) on a 2^order x 2^order grid
/// (0 < order <= 16; x, y < 2^order).
uint32_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y);

/// Inverse of `HilbertIndex`.
void HilbertDecode(uint32_t order, uint32_t index, uint32_t* x, uint32_t* y);

/// Gray code of `i` — the third ordering the paper names. Consecutive codes
/// differ in exactly one bit.
uint32_t GrayCode(uint32_t i);

/// Inverse of `GrayCode`.
uint32_t GrayDecode(uint32_t code);

/// Convenience: the (x, y) cells of a side x side grid (side a power of
/// two) in the given curve order.
enum class CurveKind { kRowMajor, kMorton, kHilbert };
std::vector<std::pair<uint32_t, uint32_t>> GridOrder(uint32_t side,
                                                     CurveKind kind);

}  // namespace mdseq

#endif  // MDSEQ_GEOM_SPACE_FILLING_H_
