#ifndef MDSEQ_GEOM_POINT_H_
#define MDSEQ_GEOM_POINT_H_

#include <cmath>
#include <span>
#include <vector>

#include "util/check.h"

namespace mdseq {

/// An owning n-dimensional point. Sequences store their points contiguously,
/// so most APIs traffic in `PointView` (a borrowed span of coordinates);
/// `Point` is the owning spelling used at construction sites and in tests.
using Point = std::vector<double>;

/// A borrowed view of one point's coordinates. Valid only as long as the
/// owning `Point` or `Sequence` is alive and unmodified.
using PointView = std::span<const double>;

/// Squared Euclidean distance between two points of equal dimensionality.
///
/// This is the innermost kernel of every distance in the paper; it is kept
/// header-inline so the compiler can vectorize the loop at call sites.
inline double SquaredDistance(PointView a, PointView b) {
  MDSEQ_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t t = 0; t < a.size(); ++t) {
    const double diff = a[t] - b[t];
    sum += diff * diff;
  }
  return sum;
}

/// Euclidean distance `d(a, b)` between two points (paper Section 3.1).
inline double PointDistance(PointView a, PointView b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace mdseq

#endif  // MDSEQ_GEOM_POINT_H_
