#include "geom/mbr.h"

#include <algorithm>

#include "util/check.h"
#include "util/csv.h"

namespace mdseq {

Mbr::Mbr(size_t dim) : low_(dim, 0.0), high_(dim, 0.0), valid_(false) {
  MDSEQ_CHECK(dim > 0);
}

Mbr::Mbr(Point low, Point high)
    : low_(std::move(low)), high_(std::move(high)), valid_(true) {
  MDSEQ_CHECK(!low_.empty());
  MDSEQ_CHECK(low_.size() == high_.size());
  for (size_t k = 0; k < low_.size(); ++k) MDSEQ_CHECK(low_[k] <= high_[k]);
}

Mbr Mbr::FromPoint(PointView p) {
  Mbr m(p.size());
  m.Expand(p);
  return m;
}

void Mbr::Expand(PointView p) {
  MDSEQ_CHECK(p.size() == dim());
  if (!valid_) {
    std::copy(p.begin(), p.end(), low_.begin());
    std::copy(p.begin(), p.end(), high_.begin());
    valid_ = true;
    return;
  }
  for (size_t k = 0; k < p.size(); ++k) {
    low_[k] = std::min(low_[k], p[k]);
    high_[k] = std::max(high_[k], p[k]);
  }
}

void Mbr::Expand(const Mbr& other) {
  MDSEQ_CHECK(other.dim() == dim());
  if (!other.valid_) return;
  if (!valid_) {
    *this = other;
    return;
  }
  for (size_t k = 0; k < dim(); ++k) {
    low_[k] = std::min(low_[k], other.low_[k]);
    high_[k] = std::max(high_[k], other.high_[k]);
  }
}

void Mbr::Inflate(double delta) {
  MDSEQ_CHECK(valid_);
  MDSEQ_CHECK(delta >= 0.0);
  for (size_t k = 0; k < dim(); ++k) {
    low_[k] -= delta;
    high_[k] += delta;
  }
}

double Mbr::Volume() const {
  MDSEQ_DCHECK(valid_);
  double v = 1.0;
  for (size_t k = 0; k < dim(); ++k) v *= Side(k);
  return v;
}

double Mbr::Margin() const {
  MDSEQ_DCHECK(valid_);
  double m = 0.0;
  for (size_t k = 0; k < dim(); ++k) m += Side(k);
  return m;
}

bool Mbr::Intersects(const Mbr& other) const {
  MDSEQ_DCHECK(valid_ && other.valid_);
  for (size_t k = 0; k < dim(); ++k) {
    if (high_[k] < other.low_[k] || other.high_[k] < low_[k]) return false;
  }
  return true;
}

bool Mbr::Contains(PointView p) const {
  MDSEQ_DCHECK(valid_);
  MDSEQ_DCHECK(p.size() == dim());
  for (size_t k = 0; k < dim(); ++k) {
    if (p[k] < low_[k] || p[k] > high_[k]) return false;
  }
  return true;
}

bool Mbr::Contains(const Mbr& other) const {
  MDSEQ_DCHECK(valid_ && other.valid_);
  for (size_t k = 0; k < dim(); ++k) {
    if (other.low_[k] < low_[k] || other.high_[k] > high_[k]) return false;
  }
  return true;
}

double Mbr::OverlapVolume(const Mbr& other) const {
  MDSEQ_DCHECK(valid_ && other.valid_);
  double v = 1.0;
  for (size_t k = 0; k < dim(); ++k) {
    const double lo = std::max(low_[k], other.low_[k]);
    const double hi = std::min(high_[k], other.high_[k]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

double Mbr::Enlargement(const Mbr& other) const {
  MDSEQ_DCHECK(valid_ && other.valid_);
  double enlarged = 1.0;
  for (size_t k = 0; k < dim(); ++k) {
    const double lo = std::min(low_[k], other.low_[k]);
    const double hi = std::max(high_[k], other.high_[k]);
    enlarged *= hi - lo;
  }
  return enlarged - Volume();
}

double Mbr::MinDist2(const Mbr& other) const {
  MDSEQ_DCHECK(valid_ && other.valid_);
  MDSEQ_DCHECK(other.dim() == dim());
  double sum = 0.0;
  for (size_t k = 0; k < dim(); ++k) {
    double gap = 0.0;
    if (high_[k] < other.low_[k]) {
      gap = other.low_[k] - high_[k];
    } else if (other.high_[k] < low_[k]) {
      gap = low_[k] - other.high_[k];
    }
    sum += gap * gap;
  }
  return sum;
}

double Mbr::MinDist2(PointView p) const {
  MDSEQ_DCHECK(valid_);
  MDSEQ_DCHECK(p.size() == dim());
  double sum = 0.0;
  for (size_t k = 0; k < dim(); ++k) {
    double gap = 0.0;
    if (p[k] < low_[k]) {
      gap = low_[k] - p[k];
    } else if (p[k] > high_[k]) {
      gap = p[k] - high_[k];
    }
    sum += gap * gap;
  }
  return sum;
}

double Mbr::MaxDist2(const Mbr& other) const {
  MDSEQ_DCHECK(valid_ && other.valid_);
  double sum = 0.0;
  for (size_t k = 0; k < dim(); ++k) {
    const double span = std::max(other.high_[k] - low_[k],
                                 high_[k] - other.low_[k]);
    sum += span * span;
  }
  return sum;
}

std::string Mbr::ToString() const {
  if (!valid_) return "[invalid]";
  std::string out = "[(";
  for (size_t k = 0; k < dim(); ++k) {
    if (k > 0) out += ", ";
    out += FormatDouble(low_[k]);
  }
  out += "), (";
  for (size_t k = 0; k < dim(); ++k) {
    if (k > 0) out += ", ";
    out += FormatDouble(high_[k]);
  }
  out += ")]";
  return out;
}

}  // namespace mdseq
