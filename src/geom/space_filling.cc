#include "geom/space_filling.h"

#include <utility>

#include "util/check.h"

namespace mdseq {

namespace {

uint32_t SpreadBits(uint32_t v) {
  v &= 0xffff;
  v = (v | (v << 8)) & 0x00ff00ff;
  v = (v | (v << 4)) & 0x0f0f0f0f;
  v = (v | (v << 2)) & 0x33333333;
  v = (v | (v << 1)) & 0x55555555;
  return v;
}

uint32_t CompactBits(uint32_t v) {
  v &= 0x55555555;
  v = (v | (v >> 1)) & 0x33333333;
  v = (v | (v >> 2)) & 0x0f0f0f0f;
  v = (v | (v >> 4)) & 0x00ff00ff;
  v = (v | (v >> 8)) & 0x0000ffff;
  return v;
}

}  // namespace

uint32_t MortonIndex(uint32_t x, uint32_t y) {
  MDSEQ_CHECK(x <= 0xffff && y <= 0xffff);
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

void MortonDecode(uint32_t index, uint32_t* x, uint32_t* y) {
  MDSEQ_CHECK(x != nullptr && y != nullptr);
  *x = CompactBits(index);
  *y = CompactBits(index >> 1);
}

uint32_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y) {
  MDSEQ_CHECK(order >= 1 && order <= 16);
  MDSEQ_CHECK(x < (1u << order) && y < (1u << order));
  // Classic iterative d2xy/xy2d conversion (Hilbert curve via quadrant
  // rotation).
  uint32_t rx = 0;
  uint32_t ry = 0;
  uint32_t d = 0;
  for (uint32_t s = 1u << (order - 1); s > 0; s /= 2) {
    rx = (x & s) > 0 ? 1 : 0;
    ry = (y & s) > 0 ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

void HilbertDecode(uint32_t order, uint32_t index, uint32_t* x, uint32_t* y) {
  MDSEQ_CHECK(order >= 1 && order <= 16);
  MDSEQ_CHECK(x != nullptr && y != nullptr);
  uint32_t t = index;
  *x = 0;
  *y = 0;
  for (uint32_t s = 1; s < (1u << order); s *= 2) {
    const uint32_t rx = 1 & (t / 2);
    const uint32_t ry = 1 & (t ^ rx);
    if (ry == 0) {
      if (rx == 1) {
        *x = s - 1 - *x;
        *y = s - 1 - *y;
      }
      std::swap(*x, *y);
    }
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint32_t GrayCode(uint32_t i) { return i ^ (i >> 1); }

uint32_t GrayDecode(uint32_t code) {
  uint32_t value = 0;
  for (; code != 0; code >>= 1) value ^= code;
  return value;
}

std::vector<std::pair<uint32_t, uint32_t>> GridOrder(uint32_t side,
                                                     CurveKind kind) {
  MDSEQ_CHECK(side >= 1);
  MDSEQ_CHECK((side & (side - 1)) == 0);  // power of two
  uint32_t order = 0;
  while ((1u << order) < side) ++order;

  std::vector<std::pair<uint32_t, uint32_t>> cells;
  cells.reserve(static_cast<size_t>(side) * side);
  switch (kind) {
    case CurveKind::kRowMajor:
      for (uint32_t y = 0; y < side; ++y) {
        for (uint32_t x = 0; x < side; ++x) cells.emplace_back(x, y);
      }
      break;
    case CurveKind::kMorton:
      for (uint32_t i = 0; i < side * side; ++i) {
        uint32_t x = 0;
        uint32_t y = 0;
        MortonDecode(i, &x, &y);
        cells.emplace_back(x, y);
      }
      break;
    case CurveKind::kHilbert:
      if (side == 1) {
        cells.emplace_back(0, 0);
        break;
      }
      for (uint32_t i = 0; i < side * side; ++i) {
        uint32_t x = 0;
        uint32_t y = 0;
        HilbertDecode(order, i, &x, &y);
        cells.emplace_back(x, y);
      }
      break;
  }
  return cells;
}

}  // namespace mdseq
