#ifndef MDSEQ_TS_WHOLE_MATCHING_H_
#define MDSEQ_TS_WHOLE_MATCHING_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "geom/sequence.h"
#include "index/rstar_tree.h"

namespace mdseq {

/// The F-index of Agrawal, Faloutsos & Swami (FODO 1993) — the related-work
/// baseline for *whole* matching of equal-length 1-d time series
/// (Section 2): every series is mapped to the first few DFT coefficients,
/// the low-dimensional features are indexed in an R-tree variant, and range
/// queries in feature space produce a candidate set that is verified
/// exactly. Parseval's theorem makes feature-space distance a lower bound of
/// series distance, so the candidate set has no false dismissals.
///
/// Distances here are *root-sum-square* over the whole series (the classic
/// formulation), not the paper's mean distance.
class WholeMatchingIndex {
 public:
  /// Which lower-bounding feature the filter indexes. Each is a
  /// contraction of the series distance, so each guarantees no false
  /// dismissals; selectivity differs by data (see bench/ablation_features).
  enum class Feature {
    kDft,   ///< first DFT coefficients (Agrawal '93); 2x real dimensions
    kHaar,  ///< first Haar wavelet coefficients; requires power-of-two
            ///< series length
    kPaa,   ///< sqrt(frame)-scaled piecewise aggregate means; requires the
            ///< coefficient count to divide the series length
  };

  /// `series_length` is the common length of every stored series;
  /// `num_coefficients` feature coefficients are indexed.
  WholeMatchingIndex(size_t series_length, size_t num_coefficients,
                     Feature feature = Feature::kDft);

  /// Adds a 1-d series of exactly `series_length` points; returns its id.
  size_t Add(Sequence series);

  /// Ids of stored series within Euclidean distance `epsilon` of `query`
  /// after exact verification, ascending.
  std::vector<size_t> Search(SequenceView query, double epsilon) const;

  /// Ids surviving the feature-space filter only (superset of `Search`);
  /// exposed so tests and benchmarks can measure the filter's selectivity.
  std::vector<size_t> SearchCandidates(SequenceView query,
                                       double epsilon) const;

  size_t size() const { return series_.size(); }

 private:
  Point FeatureOf(SequenceView series) const;

  size_t series_length_;
  size_t num_coefficients_;
  Feature feature_;
  RStarTree tree_;
  std::vector<Sequence> series_;
};

/// Root-sum-square Euclidean distance between two equal-length 1-d series.
double WholeSeriesDistance(SequenceView a, SequenceView b);

}  // namespace mdseq

#endif  // MDSEQ_TS_WHOLE_MATCHING_H_
