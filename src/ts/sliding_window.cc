#include "ts/sliding_window.h"

#include <vector>

#include "util/check.h"

namespace mdseq {

Sequence SlidingWindowEmbed(SequenceView series, size_t w) {
  MDSEQ_CHECK(series.dim() == 1);
  MDSEQ_CHECK(w >= 1);
  MDSEQ_CHECK(series.size() >= w);
  Sequence embedded(w);
  std::vector<double> window(w);
  for (size_t i = 0; i + w <= series.size(); ++i) {
    for (size_t t = 0; t < w; ++t) window[t] = series[i + t][0];
    embedded.Append(window);
  }
  return embedded;
}

Sequence SlidingWindowRestore(SequenceView embedded) {
  MDSEQ_CHECK(!embedded.empty());
  const size_t w = embedded.dim();
  Sequence series(1);
  for (size_t i = 0; i < embedded.size(); ++i) {
    const double v = embedded[i][0];
    series.Append(PointView(&v, 1));
  }
  const PointView last = embedded[embedded.size() - 1];
  for (size_t t = 1; t < w; ++t) {
    const double v = last[t];
    series.Append(PointView(&v, 1));
  }
  return series;
}

}  // namespace mdseq
