#ifndef MDSEQ_TS_PAA_H_
#define MDSEQ_TS_PAA_H_

#include <cstddef>

#include "geom/point.h"
#include "geom/sequence.h"

namespace mdseq {

/// Piecewise Aggregate Approximation (Keogh et al. / Yi & Faloutsos): a
/// 1-d series of length n is reduced to `segments` means of equal-length
/// frames. The third classic reduction besides DFT and wavelets, and the
/// cheapest: one pass, no trigonometry.
///
/// Lower-bounding property (what makes it a valid filter): with frames of
/// length `f = n / segments`,
///
///   sqrt(f) * |PAA(a) - PAA(b)|  <=  |a - b|
///
/// `PaaDistance` applies the sqrt(f) scaling so callers can compare it to
/// series distance directly. Requires `segments` to divide the length.
Point PaaFeature(SequenceView series, size_t segments);

/// The scaled feature-space distance described above (a lower bound of the
/// root-sum-square distance between the full series).
double PaaDistance(SequenceView a, SequenceView b, size_t segments);

}  // namespace mdseq

#endif  // MDSEQ_TS_PAA_H_
