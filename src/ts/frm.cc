#include "ts/frm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ts/dft.h"
#include "util/check.h"

namespace mdseq {

double MinSubsequenceDistance(SequenceView query, SequenceView data) {
  MDSEQ_CHECK(query.dim() == 1 && data.dim() == 1);
  MDSEQ_CHECK(!query.empty());
  MDSEQ_CHECK(query.size() <= data.size());
  double best = std::numeric_limits<double>::infinity();
  for (size_t offset = 0; offset + query.size() <= data.size(); ++offset) {
    double sum = 0.0;
    for (size_t i = 0; i < query.size(); ++i) {
      const double diff = query[i][0] - data[offset + i][0];
      sum += diff * diff;
    }
    best = std::min(best, sum);
  }
  return std::sqrt(best);
}

namespace {

// The feature trail of a series: one 2*fc-dimensional point per window
// position (the ST-index's "trail" that is then partitioned into MBRs).
Sequence FeatureTrail(SequenceView series, size_t window,
                      size_t num_coefficients) {
  Sequence trail(2 * num_coefficients);
  for (size_t i = 0; i + window <= series.size(); ++i) {
    trail.Append(DftFeature(series.Slice(i, i + window), num_coefficients));
  }
  return trail;
}

}  // namespace

FrmIndex::FrmIndex(size_t window, size_t num_coefficients)
    : window_(window),
      num_coefficients_(num_coefficients),
      database_(2 * num_coefficients) {
  MDSEQ_CHECK(window >= 1);
  MDSEQ_CHECK(num_coefficients >= 1);
  MDSEQ_CHECK(num_coefficients <= window);
}

size_t FrmIndex::Add(Sequence series) {
  MDSEQ_CHECK(series.dim() == 1);
  MDSEQ_CHECK(series.size() >= window_);
  const size_t id = database_.Add(
      FeatureTrail(series.View(), window_, num_coefficients_));
  series_.push_back(std::move(series));
  MDSEQ_CHECK(id + 1 == series_.size());
  return id;
}

std::vector<size_t> FrmIndex::SearchCandidates(SequenceView query,
                                               double epsilon) const {
  MDSEQ_CHECK(query.dim() == 1);
  MDSEQ_CHECK(query.size() >= window_);
  MDSEQ_CHECK(epsilon >= 0.0);
  // PrefixSearch: p disjoint windows, each searched at eps / sqrt(p).
  const size_t p = query.size() / window_;
  const double per_window_epsilon =
      epsilon / std::sqrt(static_cast<double>(p));

  std::vector<size_t> candidates;
  std::vector<uint64_t> hits;
  for (size_t t = 0; t < p; ++t) {
    const Point feature = DftFeature(
        query.Slice(t * window_, (t + 1) * window_), num_coefficients_);
    hits.clear();
    database_.index().RangeSearch(Mbr::FromPoint(feature),
                                  per_window_epsilon, &hits);
    for (uint64_t value : hits) {
      candidates.push_back(SequenceDatabase::UnpackSequenceId(value));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

std::vector<size_t> FrmIndex::Search(SequenceView query,
                                     double epsilon) const {
  std::vector<size_t> results;
  for (size_t id : SearchCandidates(query, epsilon)) {
    if (series_[id].size() < query.size()) continue;
    if (MinSubsequenceDistance(query, series_[id].View()) <= epsilon) {
      results.push_back(id);
    }
  }
  return results;
}

}  // namespace mdseq
